# Extracts the \code ... \endcode block from a Doxygen header comment and
# writes it as a standalone source file. Used by tests/core to compile the
# laps.h usage example verbatim, so the docs cannot drift from the API.
#
# Usage: cmake -DINPUT=<header> -DOUTPUT=<source> -P ExtractDocExample.cmake

if(NOT INPUT OR NOT OUTPUT)
  message(FATAL_ERROR "ExtractDocExample: INPUT and OUTPUT are required")
endif()

file(READ "${INPUT}" content)

string(FIND "${content}" "\\code" code_start)
string(FIND "${content}" "\\endcode" code_end)
if(code_start EQUAL -1 OR code_end EQUAL -1)
  message(FATAL_ERROR "ExtractDocExample: no \\code block found in ${INPUT}")
endif()

# This script extracts exactly one block; a second \code in the header
# would silently corrupt the output, so refuse instead.
string(FIND "${content}" "\\code" last_code_start REVERSE)
if(NOT last_code_start EQUAL code_start)
  message(FATAL_ERROR
    "ExtractDocExample: ${INPUT} has multiple \\code blocks; this script "
    "extracts exactly one")
endif()

math(EXPR code_start "${code_start} + 5")  # skip past "\code" itself
math(EXPR block_length "${code_end} - ${code_start}")
string(SUBSTRING "${content}" ${code_start} ${block_length} block)

# Strip the Doxygen comment prefix ("/// " or bare "///") from every line.
string(REGEX REPLACE "\n/// ?" "\n" code "${block}")

file(WRITE "${OUTPUT}" "${code}")

// Fixture: the wall-clock rule must fire on time sources.
#include <chrono>
#include <cstdint>

namespace laps {
inline std::int64_t seedFromClock() {
  const auto now = std::chrono::steady_clock::now();  // flagged
  return now.time_since_epoch().count();
}
}  // namespace laps

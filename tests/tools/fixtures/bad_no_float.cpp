// Fixture: the no-float rule must fire on floating-point declarations
// in model code.
namespace laps {
inline long long scaleLatency(long long cycles) {
  double factor = 1.5;  // flagged
  return static_cast<long long>(static_cast<double>(cycles) * factor);
}
inline float halfRate(float rate) { return rate / 2; }  // flagged
}  // namespace laps

// Fixture: the unordered-container rule must fire on hash containers.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace laps {
struct Tracker {
  std::unordered_map<std::uint64_t, std::int64_t> counts;  // flagged
  std::unordered_set<std::uint64_t> seen;                  // flagged
};
}  // namespace laps

// Fixture: a LINT-ALLOW with no matching finding nearby must be
// reported as stale-suppression.
#include <cstdint>

namespace laps {
// LINT-ALLOW(no-float): claims a hazard that no longer exists here
inline std::int64_t addOne(std::int64_t v) { return v + 1; }
}  // namespace laps

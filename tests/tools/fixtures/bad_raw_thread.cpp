// Fixture: the raw-thread rule must fire on threading outside
// util/parallel.
#include <thread>

namespace laps {
inline void spawn() {
  std::thread worker([] {});  // flagged
  worker.join();
}
}  // namespace laps

// Fixture: must produce zero findings. Exercises the comment and
// string stripper: every banned token below appears only in comments,
// string literals or raw strings, where the linter must not look.
//
// double float std::unordered_map std::thread rand() std::chrono
#include <cstdint>
#include <map>
#include <string>

namespace laps {
/* block comment mentioning double and std::random_device */
inline std::int64_t tally(const std::map<std::int64_t, std::int64_t>& m) {
  const std::string note = "double trouble with std::unordered_set";
  const std::string raw = R"(std::thread inside a raw "string" literal)";
  const char quote = '"';  // a lone quote character must not desync
  std::int64_t sum = static_cast<std::int64_t>(note.size() + raw.size());
  if (quote == '"') ++sum;
  for (const auto& [k, v] : m) sum += k + v;
  return sum;  // runtime / real time / each time: prose, not time()
}
}  // namespace laps

// Fixture: properly justified suppressions — must produce zero
// findings. Exercises both placements (same line, preceding line).
#include <cstdint>
#include <unordered_set>

namespace laps {
struct Probe {
  // LINT-ALLOW(unordered-container): contains-only membership probe, never iterated
  std::unordered_set<std::uint64_t> seen;

  double rate = 0.0;  // LINT-ALLOW(no-float): presentation-only readout field
};
}  // namespace laps

// Fixture: a LINT-ALLOW without a real justification must be reported
// as bad-suppression (and must NOT suppress the finding).
namespace laps {
inline double half(double v) { return v / 2; }  // LINT-ALLOW(no-float): ok
}  // namespace laps

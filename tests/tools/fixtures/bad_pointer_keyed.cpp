// Fixture: the pointer-keyed rule must fire on pointer-ordered state.
#include <cstdint>
#include <map>
#include <set>

namespace laps {
struct Task;
struct Registry {
  std::set<Task*> live;                    // flagged
  std::map<const Task*, int> priorities;   // flagged
};
inline std::uintptr_t ident(const Task* task) {
  return reinterpret_cast<std::uintptr_t>(task);  // flagged
}
}  // namespace laps

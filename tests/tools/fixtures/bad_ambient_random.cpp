// Fixture: the ambient-random rule must fire on non-Rng randomness.
#include <cstdlib>
#include <random>

namespace laps {
inline int ambient() {
  std::random_device device;              // flagged
  std::mt19937_64 engine(device());       // flagged
  return static_cast<int>(engine()) + rand();  // flagged
}
}  // namespace laps

#!/usr/bin/env python3
"""Self-test for tools/determinism_lint.py.

Proves every rule is live (fires on a dedicated bad fixture), that the
comment/string stripper does not produce false positives, and that the
suppression machinery accepts justified LINT-ALLOWs while reporting
stale or unjustified ones. Run via CTest (lint_selftest) or directly:

    python3 tests/tools/lint_selftest.py
"""

from __future__ import annotations

import pathlib
import re
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parent.parent
LINT = REPO / "tools" / "determinism_lint.py"
FIXTURES = HERE / "fixtures"

# fixture -> (expected exit code, {rule: minimum finding count})
EXPECTATIONS = {
    "bad_no_float.cpp": (1, {"no-float": 2}),
    "bad_unordered.cpp": (1, {"unordered-container": 2}),
    "bad_wall_clock.cpp": (1, {"wall-clock": 1}),
    "bad_ambient_random.cpp": (1, {"ambient-random": 3}),
    "bad_pointer_keyed.cpp": (1, {"pointer-keyed": 3}),
    "bad_raw_thread.cpp": (1, {"raw-thread": 1}),
    "clean.cpp": (0, {}),
    "suppressed.cpp": (0, {}),
    "stale_suppression.cpp": (1, {"stale-suppression": 1}),
    # The malformed annotation is reported AND the underlying finding
    # still fires — an unjustified suppression suppresses nothing.
    "unjustified_suppression.cpp": (1, {"bad-suppression": 1, "no-float": 1}),
}

FINDING_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): \[(?P<rule>[a-z-]+)\]")


def run_lint(fixture: pathlib.Path) -> tuple[int, dict[str, int]]:
    proc = subprocess.run(
        [sys.executable, str(LINT), "--no-policy", "--engine", "token",
         str(fixture)],
        capture_output=True, text=True, check=False)
    counts: dict[str, int] = {}
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            counts[m.group("rule")] = counts.get(m.group("rule"), 0) + 1
    return proc.returncode, counts


def main() -> int:
    failures: list[str] = []
    for name, (expected_rc, expected_rules) in sorted(EXPECTATIONS.items()):
        fixture = FIXTURES / name
        if not fixture.exists():
            failures.append(f"{name}: fixture missing")
            continue
        rc, counts = run_lint(fixture)
        if rc != expected_rc:
            failures.append(f"{name}: exit {rc}, expected {expected_rc} "
                            f"(findings: {counts})")
        for rule, minimum in expected_rules.items():
            if counts.get(rule, 0) < minimum:
                failures.append(f"{name}: expected >= {minimum} "
                                f"[{rule}] finding(s), got {counts.get(rule, 0)}")
        unexpected = set(counts) - set(expected_rules)
        if unexpected:
            failures.append(f"{name}: unexpected rule(s) fired: "
                            f"{sorted(unexpected)}")
        status = "FAIL" if any(f.startswith(name) for f in failures) else "ok"
        print(f"  {status}  {name}: rc={rc} findings={counts}")

    # --list-rules must enumerate every rule the fixtures exercise, so a
    # renamed rule cannot silently orphan its fixture.
    listed = subprocess.run(
        [sys.executable, str(LINT), "--list-rules"],
        capture_output=True, text=True, check=False).stdout
    for rule in ("no-float", "unordered-container", "wall-clock",
                 "ambient-random", "pointer-keyed", "raw-thread"):
        if f"{rule}:" not in listed:
            failures.append(f"--list-rules does not list '{rule}'")

    if failures:
        print("lint_selftest: FAILED", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"lint_selftest: all {len(EXPECTATIONS)} fixtures behaved")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#include "layout/conflict.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace laps {
namespace {

CacheConfig paperCache() { return CacheConfig{8192, 2, 32, 2}; }  // 128 sets

TEST(SetOccupancy, SingleLineInterval) {
  const CacheConfig cache = paperCache();
  // Bytes [0, 32) = line 0 = set 0.
  const auto occ = setOccupancy(IntervalSet::range(0, 32), cache);
  ASSERT_EQ(occ.size(), 128u);
  EXPECT_EQ(occ[0], 1);
  for (std::size_t s = 1; s < occ.size(); ++s) EXPECT_EQ(occ[s], 0);
}

TEST(SetOccupancy, StraddlingLineCountedOnce) {
  const CacheConfig cache = paperCache();
  // Bytes [30, 34) straddles lines 0 and 1.
  const auto occ = setOccupancy(IntervalSet::range(30, 34), cache);
  EXPECT_EQ(occ[0], 1);
  EXPECT_EQ(occ[1], 1);
}

TEST(SetOccupancy, FullWrapTouchesEverySetOnce) {
  const CacheConfig cache = paperCache();
  // One full cache page: 128 sets * 32 B.
  const auto occ = setOccupancy(IntervalSet::range(0, 128 * 32), cache);
  for (const auto o : occ) EXPECT_EQ(o, 1);
}

TEST(SetOccupancy, TwoWrapsTouchEverySetTwice) {
  const CacheConfig cache = paperCache();
  const auto occ = setOccupancy(IntervalSet::range(0, 2 * 128 * 32), cache);
  for (const auto o : occ) EXPECT_EQ(o, 2);
}

TEST(SetOccupancy, PartialWrapDistributesRemainder) {
  const CacheConfig cache = paperCache();
  // 1.5 wraps starting at set 0: sets [0,64) get 2 lines, rest get 1.
  const auto occ = setOccupancy(IntervalSet::range(0, 192 * 32), cache);
  for (std::size_t s = 0; s < 64; ++s) EXPECT_EQ(occ[s], 2) << s;
  for (std::size_t s = 64; s < 128; ++s) EXPECT_EQ(occ[s], 1) << s;
}

TEST(SetOccupancy, StartsMidPage) {
  const CacheConfig cache = paperCache();
  // 4 lines starting at line 126: sets 126, 127, 0, 1.
  const auto occ = setOccupancy(IntervalSet::range(126 * 32, 130 * 32), cache);
  EXPECT_EQ(occ[126], 1);
  EXPECT_EQ(occ[127], 1);
  EXPECT_EQ(occ[0], 1);
  EXPECT_EQ(occ[1], 1);
  EXPECT_EQ(occ[5], 0);
}

/// Two same-size arrays at page-aligned bases fully collide; after
/// re-layout with opposite phases they must not collide at all.
TEST(ConflictMatrix, CollisionVanishesUnderOppositePhases) {
  const CacheConfig cache = paperCache();
  ArrayTable arrays;
  const ArrayId k1 = arrays.add("K1", {1024}, 4);  // 4096 B = one page
  const ArrayId k2 = arrays.add("K2", {1024}, 4);

  std::vector<Footprint> fps(2);
  fps[0].add(k1, IntervalSet::range(0, 1024));
  fps[1].add(k2, IntervalSet::range(0, 1024));

  AddressSpace space(arrays, {.dataBase = 0x10000, .alignBytes = 4096});
  const ConflictMatrix before =
      ConflictMatrix::compute(arrays, fps, space, cache);
  // Both arrays cover every set once: 128 colliding line pairs.
  EXPECT_EQ(before.at(0, 1), 128);
  EXPECT_EQ(before.at(1, 0), 128);
  EXPECT_EQ(before.at(0, 0), 0);  // self-conflicts not counted

  space.setTransform(k1, LayoutTransform::interleave(4096, 0));
  space.setTransform(k2, LayoutTransform::interleave(4096, 2048));
  const ConflictMatrix after =
      ConflictMatrix::compute(arrays, fps, space, cache);
  EXPECT_EQ(after.at(0, 1), 0);
}

TEST(ConflictMatrix, DisjointSetRangesNoConflict) {
  const CacheConfig cache = paperCache();
  ArrayTable arrays;
  const ArrayId a = arrays.add("A", {512}, 4);  // 2048 B: sets [0, 64)
  const ArrayId b = arrays.add("B", {512}, 4);  // next 2048 B: sets [64, 128)
  std::vector<Footprint> fps(2);
  fps[0].add(a, IntervalSet::range(0, 512));
  fps[1].add(b, IntervalSet::range(0, 512));
  // Pack contiguously from a page boundary: B starts at set 64.
  const AddressSpace space(arrays, {.dataBase = 0x10000, .alignBytes = 64});
  const ConflictMatrix m = ConflictMatrix::compute(arrays, fps, space, cache);
  EXPECT_EQ(m.at(0, 1), 0);
}

TEST(ConflictMatrix, AveragePairConflicts) {
  ConflictMatrix m(3);
  m.set(0, 1, 30);
  m.set(1, 0, 30);
  m.set(0, 2, 60);
  m.set(2, 0, 60);
  // pairs: (0,1)=30, (0,2)=60, (1,2)=0 -> mean 30.
  EXPECT_EQ(m.averagePairConflicts(), 30);
  EXPECT_EQ(ConflictMatrix(1).averagePairConflicts(), 0);
  EXPECT_EQ(ConflictMatrix().averagePairConflicts(), 0);
}

TEST(ConflictMatrix, OnlyOverlappingFootprintPortionCounts) {
  const CacheConfig cache = paperCache();
  ArrayTable arrays;
  const ArrayId a = arrays.add("A", {2048}, 4);
  const ArrayId b = arrays.add("B", {2048}, 4);
  std::vector<Footprint> fps(2);
  // A's processes touch only its first 32 lines' worth of elements.
  fps[0].add(a, IntervalSet::range(0, 32 * 8));  // 8 elems per 32B line
  fps[1].add(b, IntervalSet::range(0, 32 * 8));
  const AddressSpace space(arrays, {.dataBase = 0x10000, .alignBytes = 8192});
  const ConflictMatrix m = ConflictMatrix::compute(arrays, fps, space, cache);
  // Both footprints occupy sets [0,32) once each (8KB-aligned bases).
  EXPECT_EQ(m.at(0, 1), 32);
}

TEST(ConflictMatrix, IndexChecks) {
  ConflictMatrix m(2);
  EXPECT_THROW((void)m.at(2, 0), Error);
  EXPECT_THROW(m.set(0, 5, 1), Error);
}

TEST(ConflictMatrix, ToTableUsesArrayNames) {
  ArrayTable arrays;
  arrays.add("alpha", {16}, 4);
  arrays.add("beta", {16}, 4);
  ConflictMatrix m(2);
  m.set(0, 1, 7);
  m.set(1, 0, 7);
  const std::string out = m.toTable(arrays).ascii();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_NE(out.find("7"), std::string::npos);
}

}  // namespace
}  // namespace laps

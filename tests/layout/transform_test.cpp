#include "layout/transform.h"

#include <gtest/gtest.h>

#include <set>

#include "util/error.h"

namespace laps {
namespace {

constexpr std::int64_t kPage = 4096;  // paper default: 8KB/2-way
constexpr std::int64_t kHalf = kPage / 2;

TEST(LayoutTransform, IdentityByDefault) {
  const LayoutTransform t;
  EXPECT_TRUE(t.isIdentity());
  EXPECT_EQ(t.apply(0), 0);
  EXPECT_EQ(t.apply(12345), 12345);
  EXPECT_EQ(t.spanBytes(1000), 1000);
}

TEST(LayoutTransform, InterleaveFormulaMatchesPaper) {
  // addr' = 2*addr - addr mod (C/2) + b
  const LayoutTransform t0 = LayoutTransform::interleave(kPage, 0);
  const LayoutTransform t1 = LayoutTransform::interleave(kPage, kHalf);
  for (const std::int64_t addr : {std::int64_t{0}, std::int64_t{1},
                                  kHalf - 1, kHalf, kHalf + 7, 3 * kHalf}) {
    EXPECT_EQ(t0.apply(addr), 2 * addr - addr % kHalf + 0);
    EXPECT_EQ(t1.apply(addr), 2 * addr - addr % kHalf + kHalf);
  }
}

TEST(LayoutTransform, ChunkQMapsToPageQ) {
  // Chunk q of the original array must land in [q*C + b, q*C + b + C/2).
  const LayoutTransform t = LayoutTransform::interleave(kPage, kHalf);
  for (std::int64_t q = 0; q < 5; ++q) {
    const std::int64_t lo = t.apply(q * kHalf);
    const std::int64_t hi = t.apply(q * kHalf + kHalf - 1);
    EXPECT_EQ(lo, q * kPage + kHalf);
    EXPECT_EQ(hi, q * kPage + kPage - 1);
  }
}

TEST(LayoutTransform, OppositePhasesNeverSharePageOffsets) {
  // The no-conflict guarantee: offsets mod C of phase-0 and phase-C/2
  // arrays are disjoint halves of the page.
  const LayoutTransform t0 = LayoutTransform::interleave(kPage, 0);
  const LayoutTransform t1 = LayoutTransform::interleave(kPage, kHalf);
  std::set<std::int64_t> res0;
  std::set<std::int64_t> res1;
  for (std::int64_t addr = 0; addr < 6 * kHalf; addr += 13) {
    res0.insert(t0.apply(addr) % kPage);
    res1.insert(t1.apply(addr) % kPage);
  }
  for (const auto r : res0) EXPECT_LT(r, kHalf);
  for (const auto r : res1) EXPECT_GE(r, kHalf);
}

TEST(LayoutTransform, ApplyIsInjective) {
  const LayoutTransform t = LayoutTransform::interleave(256, 0);
  std::set<std::int64_t> images;
  for (std::int64_t addr = 0; addr < 2048; ++addr) {
    EXPECT_TRUE(images.insert(t.apply(addr)).second) << "addr=" << addr;
  }
}

TEST(LayoutTransform, SpanBytesRoundsUpToChunks) {
  const LayoutTransform t = LayoutTransform::interleave(kPage, 0);
  EXPECT_EQ(t.spanBytes(kHalf), kPage);          // exactly one chunk
  EXPECT_EQ(t.spanBytes(kHalf + 1), 2 * kPage);  // spills into chunk 2
  EXPECT_EQ(t.spanBytes(10 * kHalf), 10 * kPage);
}

TEST(LayoutTransform, RejectsBadArguments) {
  EXPECT_THROW(LayoutTransform::interleave(0, 0), Error);
  EXPECT_THROW(LayoutTransform::interleave(-4, 0), Error);
  EXPECT_THROW(LayoutTransform::interleave(kPage, 17), Error);  // bad phase
  EXPECT_THROW(LayoutTransform::interleave(kPage, kPage), Error);
  EXPECT_NO_THROW(LayoutTransform::interleave(kPage, kHalf));
}

}  // namespace
}  // namespace laps

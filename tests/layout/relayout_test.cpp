#include "layout/relayout.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>

namespace laps {
namespace {

CacheConfig paperCache() { return CacheConfig{8192, 2, 32, 2}; }  // page 4096

ConflictMatrix matrixOf(std::size_t n,
                        std::initializer_list<std::tuple<int, int, std::int64_t>> entries) {
  ConflictMatrix m(n);
  for (const auto& [x, y, v] : entries) {
    m.set(static_cast<std::size_t>(x), static_cast<std::size_t>(y), v);
    m.set(static_cast<std::size_t>(y), static_cast<std::size_t>(x), v);
  }
  return m;
}

TEST(PlanRelayout, HottestPairGetsOppositePhases) {
  const auto m = matrixOf(3, {{0, 1, 100}, {0, 2, 10}, {1, 2, 5}});
  // T defaults to mean = (100+10+5)/3 = 38: only (0,1) qualifies.
  const RelayoutPlan plan = planRelayout(m, paperCache(), alwaysEligible());
  EXPECT_EQ(plan.threshold, 38);
  EXPECT_EQ(plan.relayoutCount(), 2u);
  EXPECT_FALSE(plan.transforms[0].isIdentity());
  EXPECT_FALSE(plan.transforms[1].isIdentity());
  EXPECT_TRUE(plan.transforms[2].isIdentity());
  EXPECT_NE(plan.transforms[0].phase(), plan.transforms[1].phase());
  EXPECT_EQ(plan.transforms[0].pageBytes(), 4096);
}

TEST(PlanRelayout, ChainsPhasesThroughSharedArray) {
  // (0,1) hottest, then (1,2): 2 must get the opposite phase of 1.
  const auto m = matrixOf(3, {{0, 1, 100}, {1, 2, 90}, {0, 2, 1}});
  const RelayoutPlan plan =
      planRelayout(m, paperCache(), alwaysEligible(), /*threshold=*/50);
  EXPECT_EQ(plan.relayoutCount(), 3u);
  EXPECT_NE(plan.transforms[0].phase(), plan.transforms[1].phase());
  EXPECT_NE(plan.transforms[1].phase(), plan.transforms[2].phase());
  // With two phases, 0 and 2 necessarily coincide.
  EXPECT_EQ(plan.transforms[0].phase(), plan.transforms[2].phase());
}

TEST(PlanRelayout, ThresholdStopsSelection) {
  const auto m = matrixOf(3, {{0, 1, 100}, {0, 2, 10}, {1, 2, 5}});
  const RelayoutPlan plan =
      planRelayout(m, paperCache(), alwaysEligible(), /*threshold=*/1000);
  EXPECT_EQ(plan.relayoutCount(), 0u);
  EXPECT_TRUE(plan.examinedPairs.empty());
}

TEST(PlanRelayout, IneligiblePairsSkippedButConsumed) {
  const auto m = matrixOf(2, {{0, 1, 100}});
  const RelayoutPlan plan = planRelayout(
      m, paperCache(), [](ArrayId, ArrayId) { return false; }, 10);
  EXPECT_EQ(plan.relayoutCount(), 0u);
  ASSERT_EQ(plan.examinedPairs.size(), 1u);  // pair was examined, not acted on
}

TEST(PlanRelayout, PairWithBothRelayoutedNotRevisited) {
  // After (0,1) and (2,3) are re-layouted, the (0,2) pair (both already
  // transformed) must not be selected again.
  const auto m =
      matrixOf(4, {{0, 1, 100}, {2, 3, 90}, {0, 2, 80}, {1, 3, 1}});
  const RelayoutPlan plan =
      planRelayout(m, paperCache(), alwaysEligible(), /*threshold=*/50);
  EXPECT_EQ(plan.relayoutCount(), 4u);
  for (const auto& [x, y] : plan.examinedPairs) {
    EXPECT_NE(std::make_pair(ArrayId{0}, ArrayId{2}), std::make_pair(x, y));
  }
}

TEST(PlanRelayout, EmptyAndSingletonMatrices) {
  EXPECT_EQ(planRelayout(ConflictMatrix(), paperCache(), alwaysEligible())
                .relayoutCount(),
            0u);
  EXPECT_EQ(planRelayout(ConflictMatrix(1), paperCache(), alwaysEligible())
                .relayoutCount(),
            0u);
}

TEST(PlanRelayout, ZeroConflictsNothingToDo) {
  const ConflictMatrix m(4);
  const RelayoutPlan plan = planRelayout(m, paperCache(), alwaysEligible());
  EXPECT_EQ(plan.relayoutCount(), 0u);
  EXPECT_EQ(plan.threshold, 0);
}

TEST(ScheduleEligibility, SameProcessArraysCompete) {
  std::vector<Footprint> fps(1);
  fps[0].add(0, IntervalSet::range(0, 10));
  fps[0].add(1, IntervalSet::range(0, 10));
  const auto eligible =
      scheduleEligibility({{0}}, fps, /*arrayCount=*/3);
  EXPECT_TRUE(eligible(0, 1));
  EXPECT_TRUE(eligible(1, 0));
  EXPECT_FALSE(eligible(0, 2));
  EXPECT_FALSE(eligible(0, 0));  // self never competes
}

TEST(ScheduleEligibility, SuccessiveProcessesOnSameCoreCompete) {
  std::vector<Footprint> fps(3);
  fps[0].add(0, IntervalSet::range(0, 10));
  fps[1].add(1, IntervalSet::range(0, 10));
  fps[2].add(2, IntervalSet::range(0, 10));
  // Core 0 runs P0 then P1; core 1 runs P2 alone.
  const auto eligible = scheduleEligibility({{0, 1}, {2}}, fps, 3);
  EXPECT_TRUE(eligible(0, 1));
  EXPECT_FALSE(eligible(0, 2));
  EXPECT_FALSE(eligible(1, 2));
}

TEST(ScheduleEligibility, NonAdjacentProcessesDoNotCompete) {
  std::vector<Footprint> fps(3);
  fps[0].add(0, IntervalSet::range(0, 10));
  fps[1].add(1, IntervalSet::range(0, 10));
  fps[2].add(2, IntervalSet::range(0, 10));
  // Core 0 runs P0, P1, P2: (0,1) and (1,2) compete, (0,2) does not.
  const auto eligible = scheduleEligibility({{0, 1, 2}}, fps, 3);
  EXPECT_TRUE(eligible(0, 1));
  EXPECT_TRUE(eligible(1, 2));
  EXPECT_FALSE(eligible(0, 2));
}

TEST(ScheduleEligibility, EligibilityOrderInsensitive) {
  // The determinism contract's LINT-ALLOW on relayout.cpp's packed
  // unordered_set rests on the set being contains-only. This pins the
  // claim: the predicate must agree exactly with an ordered std::set
  // oracle built by the same pair-collection walk, for every query —
  // if hash order could leak into any answer, some (x, y) would differ.
  constexpr std::size_t kProcesses = 12;
  constexpr std::size_t kArrays = 20;
  std::vector<Footprint> fps(kProcesses);
  for (std::size_t p = 0; p < kProcesses; ++p) {
    // Overlapping array sets: process p touches arrays p..p+4 (mod 20).
    for (std::size_t a = 0; a < 5; ++a) {
      fps[p].add(static_cast<ArrayId>((p + a * 3) % kArrays),
                 IntervalSet::range(0, 10));
    }
  }
  const std::vector<std::vector<std::uint32_t>> plans = {
      {0, 3, 6, 9}, {1, 4, 7, 10}, {2, 5, 8, 11}};
  const auto eligible = scheduleEligibility(plans, fps, kArrays);

  // Order-insensitive oracle of the documented semantics.
  std::set<std::pair<ArrayId, ArrayId>> oracle;
  const auto addPairs = [&](const std::vector<ArrayId>& a,
                            const std::vector<ArrayId>& b) {
    for (const ArrayId x : a) {
      for (const ArrayId y : b) {
        if (x != y) oracle.emplace(std::min(x, y), std::max(x, y));
      }
    }
  };
  for (const auto& plan : plans) {
    for (std::size_t i = 0; i < plan.size(); ++i) {
      addPairs(fps[plan[i]].arrays(), fps[plan[i]].arrays());
      if (i + 1 < plan.size()) {
        addPairs(fps[plan[i]].arrays(), fps[plan[i + 1]].arrays());
      }
    }
  }
  for (ArrayId x = 0; x < kArrays; ++x) {
    for (ArrayId y = 0; y < kArrays; ++y) {
      const bool expected =
          x != y && oracle.count({std::min(x, y), std::max(x, y)}) > 0;
      EXPECT_EQ(eligible(x, y), expected) << "x=" << x << " y=" << y;
    }
  }
}

}  // namespace
}  // namespace laps

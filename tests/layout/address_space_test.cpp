#include "layout/address_space.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace laps {
namespace {

ArrayTable twoArrays() {
  ArrayTable t;
  t.add("K1", {1000}, 4);  // 4000 B
  t.add("K2", {500}, 8);   // 4000 B
  return t;
}

TEST(AddressSpace, SequentialAlignedBases) {
  const ArrayTable arrays = twoArrays();
  const AddressSpace space(arrays, {.dataBase = 0x1000, .alignBytes = 64});
  EXPECT_EQ(space.baseOf(0), 0x1000u);
  // K1 is 4000 bytes; next base aligned up to 64.
  EXPECT_EQ(space.baseOf(1), 0x1000u + 4032u);
  EXPECT_EQ(space.arrayCount(), 2u);
  EXPECT_EQ(space.end(), 0x1000u + 4032u + 4000u);
}

TEST(AddressSpace, ElementAddressIdentity) {
  const ArrayTable arrays = twoArrays();
  const AddressSpace space(arrays, {.dataBase = 0x1000, .alignBytes = 64});
  EXPECT_EQ(space.elementAddress(0, 0), 0x1000u);
  EXPECT_EQ(space.elementAddress(0, 10), 0x1000u + 40u);
  EXPECT_EQ(space.elementAddress(1, 3), space.baseOf(1) + 24u);
}

TEST(AddressSpace, SetTransformRealignsToPage) {
  const ArrayTable arrays = twoArrays();
  AddressSpace space(arrays, {.dataBase = 0x1000, .alignBytes = 64});
  space.setTransform(1, LayoutTransform::interleave(4096, 2048));
  EXPECT_EQ(space.baseOf(1) % 4096, 0u);
  // Span of transformed K2 (4000 natural bytes, 2048-byte chunks -> 2
  // chunks -> 2 pages).
  EXPECT_EQ(space.spanOf(1), 2 * 4096);
  EXPECT_EQ(space.spanOf(0), 4000);
}

TEST(AddressSpace, TransformedElementAddress) {
  const ArrayTable arrays = twoArrays();
  AddressSpace space(arrays, {.dataBase = 0x1000, .alignBytes = 64});
  space.setTransform(0, LayoutTransform::interleave(4096, 0));
  const std::uint64_t base = space.baseOf(0);
  // Element 0 -> offset 0; element at byte 2048 (elem 512) starts chunk 1
  // which maps to page 1.
  EXPECT_EQ(space.elementAddress(0, 0), base);
  EXPECT_EQ(space.elementAddress(0, 512), base + 4096);
}

TEST(AddressSpace, UnknownArrayThrows) {
  const ArrayTable arrays = twoArrays();
  const AddressSpace space(arrays);
  EXPECT_THROW((void)space.baseOf(2), Error);
  EXPECT_THROW((void)space.transformOf(9), Error);
  EXPECT_THROW((void)space.spanOf(5), Error);
}

TEST(AddressSpace, ByteIntervalsIdentity) {
  const ArrayTable arrays = twoArrays();
  const AddressSpace space(arrays, {.dataBase = 0x1000, .alignBytes = 64});
  const IntervalSet elems({{0, 10}, {20, 30}});
  const IntervalSet bytes = space.byteIntervals(0, elems);
  EXPECT_EQ(bytes.cardinality(), 2 * 10 * 4);
  EXPECT_TRUE(bytes.contains(0x1000));
  EXPECT_TRUE(bytes.contains(0x1000 + 39));
  EXPECT_FALSE(bytes.contains(0x1000 + 40));
  EXPECT_TRUE(bytes.contains(0x1000 + 80));
}

TEST(AddressSpace, ByteIntervalsInterleavedSplitsAtChunks) {
  ArrayTable arrays;
  arrays.add("A", {2048}, 4);  // 8192 B = 4 chunks of 2048
  AddressSpace space(arrays, {.dataBase = 0, .alignBytes = 64});
  space.setTransform(0, LayoutTransform::interleave(4096, 2048));
  const std::uint64_t base = space.baseOf(0);
  // Elements [0, 1024) = bytes [0, 4096) = chunks 0 and 1.
  const IntervalSet bytes = space.byteIntervals(0, IntervalSet::range(0, 1024));
  EXPECT_EQ(bytes.cardinality(), 4096);
  // Chunk 0 -> [2048, 4096), chunk 1 -> [4096+2048, 8192).
  EXPECT_TRUE(bytes.contains(static_cast<std::int64_t>(base) + 2048));
  EXPECT_FALSE(bytes.contains(static_cast<std::int64_t>(base) + 0));
  EXPECT_TRUE(bytes.contains(static_cast<std::int64_t>(base) + 4096 + 2048));
  EXPECT_FALSE(bytes.contains(static_cast<std::int64_t>(base) + 4096));
}

TEST(AddressSpace, RepackPreservesOrderAndDisjointness) {
  ArrayTable arrays;
  arrays.add("A", {1000}, 4);
  arrays.add("B", {1000}, 4);
  arrays.add("C", {1000}, 4);
  AddressSpace space(arrays, {.dataBase = 0x2000, .alignBytes = 64});
  space.setTransform(1, LayoutTransform::interleave(4096, 0));
  // Spans must not overlap and must be ordered A < B < C.
  for (ArrayId a = 0; a + 1 < 3; ++a) {
    EXPECT_LE(space.baseOf(a) + static_cast<std::uint64_t>(space.spanOf(a)),
              space.baseOf(a + 1));
  }
}

TEST(AddressSpace, BadAlignmentRejected) {
  const ArrayTable arrays = twoArrays();
  EXPECT_THROW(AddressSpace(arrays, {.dataBase = 0, .alignBytes = 0}), Error);
}

}  // namespace
}  // namespace laps

#include "trace/cursor.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "taskgraph/validate.h"

namespace laps {
namespace {

struct Rig {
  Workload workload;
  ArrayId v = 0;

  Rig() { v = workload.arrays.add("V", {4096}, 4); }

  ProcessId addSimpleProcess(std::int64_t lo, std::int64_t hi,
                             std::int64_t cyclesPerIter = 1) {
    ProcessSpec p;
    p.name = "p";
    p.nests.push_back(LoopNest{
        IterationSpace::box({{lo, hi}}),
        {ArrayAccess{v, AffineMap{AffineExpr({1}, 0)}, AccessKind::Read}},
        cyclesPerIter});
    return workload.graph.addProcess(std::move(p));
  }
};

std::vector<TraceStep> drain(ProcessTraceCursor& cursor) {
  std::vector<TraceStep> steps;
  TraceStep s;
  while (cursor.next(s)) steps.push_back(s);
  return steps;
}

TEST(ProcessTraceCursor, EmitsEveryReferenceInOrder) {
  Rig rig;
  const ProcessId id = rig.addSimpleProcess(0, 100);
  const AddressSpace space(rig.workload.arrays);
  ProcessTraceCursor cursor(rig.workload.graph.process(id),
                            rig.workload.arrays, space);
  const auto steps = drain(cursor);
  ASSERT_EQ(steps.size(), 100u);
  const std::uint64_t base = space.baseOf(rig.v);
  for (std::size_t i = 0; i < steps.size(); ++i) {
    EXPECT_TRUE(steps[i].isRef);
    EXPECT_FALSE(steps[i].isWrite);
    EXPECT_EQ(steps[i].dataAddr, base + i * 4);
    EXPECT_EQ(steps[i].computeCycles, 1);
  }
  EXPECT_TRUE(cursor.done());
  EXPECT_EQ(cursor.stepsEmitted(), 100u);
}

TEST(ProcessTraceCursor, MultipleAccessesPerIteration) {
  Rig rig;
  ProcessSpec p;
  p.name = "two-ref";
  p.nests.push_back(LoopNest{
      IterationSpace::box({{0, 10}}),
      {ArrayAccess{rig.v, AffineMap{AffineExpr({1}, 0)}, AccessKind::Read},
       ArrayAccess{rig.v, AffineMap{AffineExpr({1}, 100)}, AccessKind::Write}},
      /*computeCyclesPerIter=*/7});
  const ProcessId id = rig.workload.graph.addProcess(std::move(p));
  const AddressSpace space(rig.workload.arrays);
  ProcessTraceCursor cursor(rig.workload.graph.process(id),
                            rig.workload.arrays, space);
  const auto steps = drain(cursor);
  ASSERT_EQ(steps.size(), 20u);
  // Compute cycles ride on the last access of each iteration only.
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const bool last = (i % 2) == 1;
    EXPECT_EQ(steps[i].computeCycles, last ? 7 : 0) << i;
    EXPECT_EQ(steps[i].isWrite, last);
  }
}

TEST(ProcessTraceCursor, PureComputeNestOneStepPerIteration) {
  Rig rig;
  ProcessSpec p;
  p.name = "compute";
  p.nests.push_back(LoopNest{IterationSpace::box({{0, 25}}), {}, 40});
  const ProcessId id = rig.workload.graph.addProcess(std::move(p));
  const AddressSpace space(rig.workload.arrays);
  ProcessTraceCursor cursor(rig.workload.graph.process(id),
                            rig.workload.arrays, space);
  const auto steps = drain(cursor);
  ASSERT_EQ(steps.size(), 25u);
  std::int64_t total = 0;
  for (const auto& s : steps) {
    EXPECT_FALSE(s.isRef);
    total += s.computeCycles;
  }
  EXPECT_EQ(total, 1000);
}

TEST(ProcessTraceCursor, MultiNestSequencing) {
  Rig rig;
  ProcessSpec p;
  p.name = "multi";
  p.nests.push_back(LoopNest{
      IterationSpace::box({{0, 5}}),
      {ArrayAccess{rig.v, AffineMap{AffineExpr({1}, 0)}, AccessKind::Read}},
      1});
  p.nests.push_back(LoopNest{IterationSpace::box({{0, 0}}), {}, 1});  // empty
  p.nests.push_back(LoopNest{
      IterationSpace::box({{0, 3}}),
      {ArrayAccess{rig.v, AffineMap{AffineExpr({1}, 50)}, AccessKind::Write}},
      1});
  const ProcessId id = rig.workload.graph.addProcess(std::move(p));
  const AddressSpace space(rig.workload.arrays);
  ProcessTraceCursor cursor(rig.workload.graph.process(id),
                            rig.workload.arrays, space);
  const auto steps = drain(cursor);
  ASSERT_EQ(steps.size(), 8u);
  EXPECT_FALSE(steps[4].isWrite);
  EXPECT_TRUE(steps[5].isWrite);
  const std::uint64_t base = space.baseOf(rig.v);
  EXPECT_EQ(steps[5].dataAddr, base + 50 * 4);
}

TEST(ProcessTraceCursor, EmptyProcessIsDoneImmediately) {
  Rig rig;
  ProcessSpec p;
  p.name = "empty";
  const ProcessId id = rig.workload.graph.addProcess(std::move(p));
  const AddressSpace space(rig.workload.arrays);
  ProcessTraceCursor cursor(rig.workload.graph.process(id),
                            rig.workload.arrays, space);
  EXPECT_TRUE(cursor.done());
  TraceStep s;
  EXPECT_FALSE(cursor.next(s));
}

TEST(ProcessTraceCursor, CopyResumesMidStream) {
  Rig rig;
  const ProcessId id = rig.addSimpleProcess(0, 50);
  const AddressSpace space(rig.workload.arrays);
  ProcessTraceCursor cursor(rig.workload.graph.process(id),
                            rig.workload.arrays, space);
  TraceStep s;
  for (int i = 0; i < 20; ++i) cursor.next(s);
  // A copy must continue exactly where the original would.
  ProcessTraceCursor copy = cursor;
  TraceStep a;
  TraceStep b;
  while (true) {
    const bool moreA = cursor.next(a);
    const bool moreB = copy.next(b);
    ASSERT_EQ(moreA, moreB);
    if (!moreA) break;
    EXPECT_EQ(a.dataAddr, b.dataAddr);
    EXPECT_EQ(a.instrAddr, b.instrAddr);
  }
}

TEST(ProcessTraceCursor, LayoutTransformChangesAddresses) {
  Rig rig;
  const ProcessId id = rig.addSimpleProcess(0, 1024);
  AddressSpace plain(rig.workload.arrays);
  AddressSpace transformed(rig.workload.arrays);
  transformed.setTransform(rig.v, LayoutTransform::interleave(4096, 2048));

  ProcessTraceCursor c1(rig.workload.graph.process(id), rig.workload.arrays,
                        plain);
  ProcessTraceCursor c2(rig.workload.graph.process(id), rig.workload.arrays,
                        transformed);
  TraceStep s1;
  TraceStep s2;
  // Element k at byte 4k: transformed addresses stay in the upper half of
  // each page.
  while (c1.next(s1) && c2.next(s2)) {
    const std::uint64_t off2 = (s2.dataAddr - transformed.baseOf(rig.v)) % 4096;
    EXPECT_GE(off2, 2048u);
    EXPECT_NE(s1.dataAddr, s2.dataAddr);
  }
}

TEST(ProcessTraceCursor, InstructionAddressesCycleThroughBody) {
  Rig rig;
  const ProcessId id = rig.addSimpleProcess(0, 100);
  const AddressSpace space(rig.workload.arrays);
  ProcessTraceCursor cursor(rig.workload.graph.process(id),
                            rig.workload.arrays, space);
  std::set<std::uint64_t> instrAddrs;
  TraceStep s;
  while (cursor.next(s)) {
    instrAddrs.insert(s.instrAddr);
    EXPECT_GE(s.instrAddr, kCodeSegmentBase);
    EXPECT_LT(s.instrAddr, 0x1000'0000u);  // below the data segment
  }
  // Body of a 1-access nest: 64 bytes = 2 fetch lines.
  EXPECT_EQ(instrAddrs.size(), 2u);
}

TEST(ProcessTraceCursor, SameTaskSharesCodeDifferentTasksDoNot) {
  Rig rig;
  const ProcessId a = rig.addSimpleProcess(0, 10);
  const ProcessId b = rig.addSimpleProcess(10, 20);
  ProcessSpec other;
  other.name = "other-task";
  other.task = 7;
  other.nests.push_back(LoopNest{
      IterationSpace::box({{0, 10}}),
      {ArrayAccess{rig.v, AffineMap{AffineExpr({1}, 0)}, AccessKind::Read}},
      1});
  const ProcessId c = rig.workload.graph.addProcess(std::move(other));

  const AddressSpace space(rig.workload.arrays);
  const auto firstInstr = [&](ProcessId id) {
    ProcessTraceCursor cursor(rig.workload.graph.process(id),
                              rig.workload.arrays, space);
    TraceStep s;
    EXPECT_TRUE(cursor.next(s));
    return s.instrAddr;
  };
  EXPECT_EQ(firstInstr(a), firstInstr(b));  // same task, same stage
  EXPECT_NE(firstInstr(a), firstInstr(c));  // different task
}

TEST(ValidateWorkload, AcceptsWellFormed) {
  Rig rig;
  rig.addSimpleProcess(0, 100);
  EXPECT_NO_THROW(validateWorkload(rig.workload));
}

TEST(ValidateWorkload, RejectsOutOfBounds) {
  Rig rig;
  ProcessSpec p;
  p.name = "oob";
  p.nests.push_back(LoopNest{
      IterationSpace::box({{0, 10}}),
      {ArrayAccess{rig.v, AffineMap{AffineExpr({1}, 4090)}, AccessKind::Read}},
      1});
  rig.workload.graph.addProcess(std::move(p));
  EXPECT_THROW(validateWorkload(rig.workload), Error);
}

TEST(ValidateWorkload, RejectsUnknownArray) {
  Rig rig;
  ProcessSpec p;
  p.name = "bad-array";
  p.nests.push_back(LoopNest{
      IterationSpace::box({{0, 10}}),
      {ArrayAccess{99, AffineMap{AffineExpr({1}, 0)}, AccessKind::Read}},
      1});
  rig.workload.graph.addProcess(std::move(p));
  EXPECT_THROW(validateWorkload(rig.workload), Error);
}

TEST(ValidateWorkload, RejectsCycle) {
  Rig rig;
  const ProcessId a = rig.addSimpleProcess(0, 10);
  const ProcessId b = rig.addSimpleProcess(10, 20);
  rig.workload.graph.addDependence(a, b);
  rig.workload.graph.addDependence(b, a);
  EXPECT_THROW(validateWorkload(rig.workload), Error);
}

}  // namespace
}  // namespace laps

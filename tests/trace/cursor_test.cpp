#include "trace/cursor.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "taskgraph/validate.h"
#include "util/rng.h"

namespace laps {
namespace {

struct Rig {
  Workload workload;
  ArrayId v = 0;

  Rig() { v = workload.arrays.add("V", {4096}, 4); }

  ProcessId addSimpleProcess(std::int64_t lo, std::int64_t hi,
                             std::int64_t cyclesPerIter = 1) {
    ProcessSpec p;
    p.name = "p";
    p.nests.push_back(LoopNest{
        IterationSpace::box({{lo, hi}}),
        {ArrayAccess{v, AffineMap{AffineExpr({1}, 0)}, AccessKind::Read}},
        cyclesPerIter});
    return workload.graph.addProcess(std::move(p));
  }
};

std::vector<TraceStep> drain(ProcessTraceCursor& cursor) {
  std::vector<TraceStep> steps;
  TraceStep s;
  while (cursor.next(s)) steps.push_back(s);
  return steps;
}

TEST(ProcessTraceCursor, EmitsEveryReferenceInOrder) {
  Rig rig;
  const ProcessId id = rig.addSimpleProcess(0, 100);
  const AddressSpace space(rig.workload.arrays);
  ProcessTraceCursor cursor(rig.workload.graph.process(id),
                            rig.workload.arrays, space);
  const auto steps = drain(cursor);
  ASSERT_EQ(steps.size(), 100u);
  const std::uint64_t base = space.baseOf(rig.v);
  for (std::size_t i = 0; i < steps.size(); ++i) {
    EXPECT_TRUE(steps[i].isRef);
    EXPECT_FALSE(steps[i].isWrite);
    EXPECT_EQ(steps[i].dataAddr, base + i * 4);
    EXPECT_EQ(steps[i].computeCycles, 1);
  }
  EXPECT_TRUE(cursor.done());
  EXPECT_EQ(cursor.stepsEmitted(), 100u);
}

TEST(ProcessTraceCursor, MultipleAccessesPerIteration) {
  Rig rig;
  ProcessSpec p;
  p.name = "two-ref";
  p.nests.push_back(LoopNest{
      IterationSpace::box({{0, 10}}),
      {ArrayAccess{rig.v, AffineMap{AffineExpr({1}, 0)}, AccessKind::Read},
       ArrayAccess{rig.v, AffineMap{AffineExpr({1}, 100)}, AccessKind::Write}},
      /*computeCyclesPerIter=*/7});
  const ProcessId id = rig.workload.graph.addProcess(std::move(p));
  const AddressSpace space(rig.workload.arrays);
  ProcessTraceCursor cursor(rig.workload.graph.process(id),
                            rig.workload.arrays, space);
  const auto steps = drain(cursor);
  ASSERT_EQ(steps.size(), 20u);
  // Compute cycles ride on the last access of each iteration only.
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const bool last = (i % 2) == 1;
    EXPECT_EQ(steps[i].computeCycles, last ? 7 : 0) << i;
    EXPECT_EQ(steps[i].isWrite, last);
  }
}

TEST(ProcessTraceCursor, PureComputeNestOneStepPerIteration) {
  Rig rig;
  ProcessSpec p;
  p.name = "compute";
  p.nests.push_back(LoopNest{IterationSpace::box({{0, 25}}), {}, 40});
  const ProcessId id = rig.workload.graph.addProcess(std::move(p));
  const AddressSpace space(rig.workload.arrays);
  ProcessTraceCursor cursor(rig.workload.graph.process(id),
                            rig.workload.arrays, space);
  const auto steps = drain(cursor);
  ASSERT_EQ(steps.size(), 25u);
  std::int64_t total = 0;
  for (const auto& s : steps) {
    EXPECT_FALSE(s.isRef);
    total += s.computeCycles;
  }
  EXPECT_EQ(total, 1000);
}

TEST(ProcessTraceCursor, MultiNestSequencing) {
  Rig rig;
  ProcessSpec p;
  p.name = "multi";
  p.nests.push_back(LoopNest{
      IterationSpace::box({{0, 5}}),
      {ArrayAccess{rig.v, AffineMap{AffineExpr({1}, 0)}, AccessKind::Read}},
      1});
  p.nests.push_back(LoopNest{IterationSpace::box({{0, 0}}), {}, 1});  // empty
  p.nests.push_back(LoopNest{
      IterationSpace::box({{0, 3}}),
      {ArrayAccess{rig.v, AffineMap{AffineExpr({1}, 50)}, AccessKind::Write}},
      1});
  const ProcessId id = rig.workload.graph.addProcess(std::move(p));
  const AddressSpace space(rig.workload.arrays);
  ProcessTraceCursor cursor(rig.workload.graph.process(id),
                            rig.workload.arrays, space);
  const auto steps = drain(cursor);
  ASSERT_EQ(steps.size(), 8u);
  EXPECT_FALSE(steps[4].isWrite);
  EXPECT_TRUE(steps[5].isWrite);
  const std::uint64_t base = space.baseOf(rig.v);
  EXPECT_EQ(steps[5].dataAddr, base + 50 * 4);
}

TEST(ProcessTraceCursor, EmptyProcessIsDoneImmediately) {
  Rig rig;
  ProcessSpec p;
  p.name = "empty";
  const ProcessId id = rig.workload.graph.addProcess(std::move(p));
  const AddressSpace space(rig.workload.arrays);
  ProcessTraceCursor cursor(rig.workload.graph.process(id),
                            rig.workload.arrays, space);
  EXPECT_TRUE(cursor.done());
  TraceStep s;
  EXPECT_FALSE(cursor.next(s));
}

TEST(ProcessTraceCursor, CopyResumesMidStream) {
  Rig rig;
  const ProcessId id = rig.addSimpleProcess(0, 50);
  const AddressSpace space(rig.workload.arrays);
  ProcessTraceCursor cursor(rig.workload.graph.process(id),
                            rig.workload.arrays, space);
  TraceStep s;
  for (int i = 0; i < 20; ++i) cursor.next(s);
  // A copy must continue exactly where the original would.
  ProcessTraceCursor copy = cursor;
  TraceStep a;
  TraceStep b;
  while (true) {
    const bool moreA = cursor.next(a);
    const bool moreB = copy.next(b);
    ASSERT_EQ(moreA, moreB);
    if (!moreA) break;
    EXPECT_EQ(a.dataAddr, b.dataAddr);
    EXPECT_EQ(a.instrAddr, b.instrAddr);
  }
}

TEST(ProcessTraceCursor, LayoutTransformChangesAddresses) {
  Rig rig;
  const ProcessId id = rig.addSimpleProcess(0, 1024);
  AddressSpace plain(rig.workload.arrays);
  AddressSpace transformed(rig.workload.arrays);
  transformed.setTransform(rig.v, LayoutTransform::interleave(4096, 2048));

  ProcessTraceCursor c1(rig.workload.graph.process(id), rig.workload.arrays,
                        plain);
  ProcessTraceCursor c2(rig.workload.graph.process(id), rig.workload.arrays,
                        transformed);
  TraceStep s1;
  TraceStep s2;
  // Element k at byte 4k: transformed addresses stay in the upper half of
  // each page.
  while (c1.next(s1) && c2.next(s2)) {
    const std::uint64_t off2 = (s2.dataAddr - transformed.baseOf(rig.v)) % 4096;
    EXPECT_GE(off2, 2048u);
    EXPECT_NE(s1.dataAddr, s2.dataAddr);
  }
}

TEST(ProcessTraceCursor, InstructionAddressesCycleThroughBody) {
  Rig rig;
  const ProcessId id = rig.addSimpleProcess(0, 100);
  const AddressSpace space(rig.workload.arrays);
  ProcessTraceCursor cursor(rig.workload.graph.process(id),
                            rig.workload.arrays, space);
  std::set<std::uint64_t> instrAddrs;
  TraceStep s;
  while (cursor.next(s)) {
    instrAddrs.insert(s.instrAddr);
    EXPECT_GE(s.instrAddr, kCodeSegmentBase);
    EXPECT_LT(s.instrAddr, 0x1000'0000u);  // below the data segment
  }
  // Body of a 1-access nest: 64 bytes = 2 fetch lines.
  EXPECT_EQ(instrAddrs.size(), 2u);
}

TEST(ProcessTraceCursor, SameTaskSharesCodeDifferentTasksDoNot) {
  Rig rig;
  const ProcessId a = rig.addSimpleProcess(0, 10);
  const ProcessId b = rig.addSimpleProcess(10, 20);
  ProcessSpec other;
  other.name = "other-task";
  other.task = 7;
  other.nests.push_back(LoopNest{
      IterationSpace::box({{0, 10}}),
      {ArrayAccess{rig.v, AffineMap{AffineExpr({1}, 0)}, AccessKind::Read}},
      1});
  const ProcessId c = rig.workload.graph.addProcess(std::move(other));

  const AddressSpace space(rig.workload.arrays);
  const auto firstInstr = [&](ProcessId id) {
    ProcessTraceCursor cursor(rig.workload.graph.process(id),
                              rig.workload.arrays, space);
    TraceStep s;
    EXPECT_TRUE(cursor.next(s));
    return s.instrAddr;
  };
  EXPECT_EQ(firstInstr(a), firstInstr(b));  // same task, same stage
  EXPECT_NE(firstInstr(a), firstInstr(c));  // different task
}

TEST(ValidateWorkload, AcceptsWellFormed) {
  Rig rig;
  rig.addSimpleProcess(0, 100);
  EXPECT_NO_THROW(validateWorkload(rig.workload));
}

TEST(ValidateWorkload, RejectsOutOfBounds) {
  Rig rig;
  ProcessSpec p;
  p.name = "oob";
  p.nests.push_back(LoopNest{
      IterationSpace::box({{0, 10}}),
      {ArrayAccess{rig.v, AffineMap{AffineExpr({1}, 4090)}, AccessKind::Read}},
      1});
  rig.workload.graph.addProcess(std::move(p));
  EXPECT_THROW(validateWorkload(rig.workload), Error);
}

TEST(ValidateWorkload, RejectsUnknownArray) {
  Rig rig;
  ProcessSpec p;
  p.name = "bad-array";
  p.nests.push_back(LoopNest{
      IterationSpace::box({{0, 10}}),
      {ArrayAccess{99, AffineMap{AffineExpr({1}, 0)}, AccessKind::Read}},
      1});
  rig.workload.graph.addProcess(std::move(p));
  EXPECT_THROW(validateWorkload(rig.workload), Error);
}

TEST(ValidateWorkload, RejectsCycle) {
  Rig rig;
  const ProcessId a = rig.addSimpleProcess(0, 10);
  const ProcessId b = rig.addSimpleProcess(10, 20);
  rig.workload.graph.addDependence(a, b);
  rig.workload.graph.addDependence(b, a);
  EXPECT_THROW(validateWorkload(rig.workload), Error);
}

/// A mixed-shape process for the run-length equivalence tests: strided
/// reads, a multi-access nest with a loop-invariant stream and a write,
/// a reversed sweep and a pure-compute nest.
ProcessSpec mixedSpec(ArrayId v) {
  ProcessSpec p;
  p.name = "mixed";
  p.nests.push_back(LoopNest{
      IterationSpace::box({{0, 37}}),
      {ArrayAccess{v, AffineMap{AffineExpr({1}, 0)}, AccessKind::Read}},
      1});
  p.nests.push_back(LoopNest{
      IterationSpace::box({{0, 5}, {0, 21}}),
      {ArrayAccess{v, AffineMap{AffineExpr({21, 1}, 100)}, AccessKind::Read},
       ArrayAccess{v, AffineMap{AffineExpr({1, 0}, 300)}, AccessKind::Read},
       ArrayAccess{v, AffineMap{AffineExpr({21, 1}, 400)}, AccessKind::Write}},
      3});
  p.nests.push_back(LoopNest{
      IterationSpace::box({{0, 30}}),
      {ArrayAccess{v, AffineMap{AffineExpr({-1}, 629)}, AccessKind::Write}},
      2});
  p.nests.push_back(LoopNest{IterationSpace::box({{0, 17}}), {}, 5});
  return p;
}

/// Expands a TraceRun into the TraceSteps it encodes, from the given
/// in-run position, mirroring the documented step semantics.
std::vector<TraceStep> expandRun(const TraceRun& run, std::int64_t fromStep,
                                 std::int64_t count) {
  std::vector<TraceStep> steps;
  const std::int64_t perIter = run.stepsPerIteration();
  for (std::int64_t s = fromStep; s < fromStep + count; ++s) {
    TraceStep step;
    step.instrAddr =
        run.bodyBase +
        (run.bodyCursor + static_cast<std::uint64_t>(s) * kInstrFetchBytes) %
            static_cast<std::uint64_t>(run.bodyBytes);
    const std::int64_t iter = s / perIter;
    const std::int64_t j = s % perIter;
    if (run.streams.empty()) {
      step.isRef = false;
      step.computeCycles = run.computeCyclesPerIter;
    } else {
      const RunStream& stream = run.streams[static_cast<std::size_t>(j)];
      step.isRef = true;
      step.isWrite = stream.isWrite;
      step.dataAddr = stream.baseAddr +
                      static_cast<std::uint64_t>(stream.strideBytes * iter);
      step.computeCycles =
          j == perIter - 1 ? run.computeCyclesPerIter : 0;
    }
    steps.push_back(step);
  }
  return steps;
}

TEST(ProcessTraceCursor, RunsEncodeTheExactStepSequence) {
  // Consuming runs in random-sized bites must visit precisely the steps
  // next() emits, and leave the cursor in the same state.
  Rig rig;
  const ProcessId id = rig.workload.graph.addProcess(mixedSpec(rig.v));
  const AddressSpace space(rig.workload.arrays);
  ProcessTraceCursor reference(rig.workload.graph.process(id),
                               rig.workload.arrays, space);
  const auto expected = drain(reference);

  for (const std::uint64_t seed : {11ULL, 222ULL, 3333ULL}) {
    Rng rng(seed);
    ProcessTraceCursor cursor(rig.workload.graph.process(id),
                              rig.workload.arrays, space);
    std::vector<TraceStep> got;
    TraceRun run;
    while (cursor.peekRun(run)) {
      ASSERT_GE(run.iterations, 1);
      const std::int64_t take = rng.range(1, run.steps());
      const auto steps = expandRun(run, 0, take);
      got.insert(got.end(), steps.begin(), steps.end());
      cursor.consume(take);
    }
    ASSERT_EQ(got.size(), expected.size()) << "seed " << seed;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].instrAddr, expected[i].instrAddr) << i;
      EXPECT_EQ(got[i].dataAddr, expected[i].dataAddr) << i;
      EXPECT_EQ(got[i].computeCycles, expected[i].computeCycles) << i;
      EXPECT_EQ(got[i].isRef, expected[i].isRef) << i;
      EXPECT_EQ(got[i].isWrite, expected[i].isWrite) << i;
    }
    EXPECT_TRUE(cursor.done());
    EXPECT_EQ(cursor.stepsEmitted(), expected.size());
  }
}

TEST(ProcessTraceCursor, PartialIterationRunResumesTheTail) {
  Rig rig;
  const ProcessId id = rig.workload.graph.addProcess(mixedSpec(rig.v));
  const AddressSpace space(rig.workload.arrays);
  ProcessTraceCursor cursor(rig.workload.graph.process(id),
                            rig.workload.arrays, space);
  TraceRun run;
  ASSERT_TRUE(cursor.peekRun(run));
  cursor.consume(run.steps());  // past the first single-access nest
  ASSERT_TRUE(cursor.peekRun(run));
  ASSERT_EQ(run.streams.size(), 3u);
  cursor.consume(run.stepsPerIteration() + 1);  // one iteration + one step
  ASSERT_TRUE(cursor.peekRun(run));
  EXPECT_TRUE(run.partialIteration);
  EXPECT_EQ(run.iterations, 1);
  ASSERT_EQ(run.streams.size(), 2u);  // the two remaining accesses
  cursor.consume(run.steps());
  ASSERT_TRUE(cursor.peekRun(run));
  EXPECT_FALSE(run.partialIteration);  // realigned to iteration boundaries
}

TEST(ProcessTraceCursor, RunsClipAtInterleaveChunkBoundaries) {
  // With a transformed array the affine stride only holds inside one
  // half-page chunk; runs must clip there and every encoded address must
  // still match the per-event trace.
  Rig rig;
  const ProcessId id = rig.addSimpleProcess(0, 2000);
  AddressSpace space(rig.workload.arrays);
  space.setTransform(rig.v, LayoutTransform::interleave(4096, 0));
  ProcessTraceCursor reference(rig.workload.graph.process(id),
                               rig.workload.arrays, space);
  const auto expected = drain(reference);

  ProcessTraceCursor cursor(rig.workload.graph.process(id),
                            rig.workload.arrays, space);
  std::vector<TraceStep> got;
  TraceRun run;
  std::size_t runs = 0;
  while (cursor.peekRun(run)) {
    ++runs;
    // 2048-byte chunks over 4-byte elements: at most 512 iterations.
    EXPECT_LE(run.iterations, 512);
    const auto steps = expandRun(run, 0, run.steps());
    got.insert(got.end(), steps.begin(), steps.end());
    cursor.consume(run.steps());
  }
  EXPECT_GE(runs, 4u);  // 2000 elements / 512 per chunk
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].dataAddr, expected[i].dataAddr) << i;
  }
}

}  // namespace
}  // namespace laps

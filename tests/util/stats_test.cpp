#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace laps {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.mean(), 3.5);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(7);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01() * 100 - 50;
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(PercentImprovement, Basic) {
  EXPECT_DOUBLE_EQ(percentImprovement(100.0, 75.0), 25.0);
  EXPECT_DOUBLE_EQ(percentImprovement(100.0, 125.0), -25.0);
  EXPECT_DOUBLE_EQ(percentImprovement(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(percentImprovement(0.0, 10.0), 0.0);
}

TEST(GeometricMean, Basic) {
  EXPECT_DOUBLE_EQ(geometricMean({4.0, 9.0}), 6.0);
  EXPECT_DOUBLE_EQ(geometricMean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
}

TEST(GeometricMean, RejectsNonPositive) {
  EXPECT_THROW((void)geometricMean({1.0, 0.0}), Error);
  EXPECT_THROW((void)geometricMean({-2.0}), Error);
}

TEST(Percentile, NearestRank) {
  std::vector<double> v{15, 20, 35, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 15);
  EXPECT_DOUBLE_EQ(percentile(v, 30), 20);
  EXPECT_DOUBLE_EQ(percentile(v, 40), 20);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 35);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 50);
}

TEST(Percentile, Errors) {
  EXPECT_THROW((void)percentile({}, 50), Error);
  EXPECT_THROW((void)percentile({1.0}, -1), Error);
  EXPECT_THROW((void)percentile({1.0}, 101), Error);
}

}  // namespace
}  // namespace laps

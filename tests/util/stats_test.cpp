#include "util/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace laps {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.mean(), 3.5);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(7);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01() * 100 - 50;
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(PercentImprovement, Basic) {
  EXPECT_DOUBLE_EQ(percentImprovement(100.0, 75.0), 25.0);
  EXPECT_DOUBLE_EQ(percentImprovement(100.0, 125.0), -25.0);
  EXPECT_DOUBLE_EQ(percentImprovement(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(percentImprovement(0.0, 10.0), 0.0);
}

TEST(GeometricMean, Basic) {
  EXPECT_DOUBLE_EQ(geometricMean({4.0, 9.0}), 6.0);
  EXPECT_DOUBLE_EQ(geometricMean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
}

TEST(GeometricMean, RejectsNonPositive) {
  EXPECT_THROW((void)geometricMean({1.0, 0.0}), Error);
  EXPECT_THROW((void)geometricMean({-2.0}), Error);
}

TEST(Percentile, NearestRank) {
  std::vector<double> v{15, 20, 35, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 15);
  EXPECT_DOUBLE_EQ(percentile(v, 30), 20);
  EXPECT_DOUBLE_EQ(percentile(v, 40), 20);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 35);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 50);
}

TEST(Percentile, Errors) {
  EXPECT_THROW((void)percentile({}, 50), Error);
  EXPECT_THROW((void)percentile({1.0}, -1), Error);
  EXPECT_THROW((void)percentile({1.0}, 101), Error);
}

/// Count-based oracle for the integer nearest-rank percentile: the
/// smallest value whose cumulative sample count covers p percent.
std::int64_t countOracle(std::vector<std::int64_t> values, int p) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  for (std::size_t i = 1; i <= n; ++i) {
    if (i * 100 >= static_cast<std::size_t>(p) * n) return values[i - 1];
  }
  return values[n - 1];
}

TEST(PercentileNearestRank, MatchesCountOracleIncludingTies) {
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.index(40);
    std::vector<std::int64_t> values;
    values.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      // A narrow value range forces heavy ties.
      values.push_back(static_cast<std::int64_t>(rng.below(8)));
    }
    for (const int p : {0, 1, 25, 50, 95, 99, 100}) {
      EXPECT_EQ(percentileNearestRank(values, p), countOracle(values, p))
          << "n=" << n << " p=" << p;
    }
  }
}

TEST(PercentileNearestRank, EdgeCases) {
  // Single element: every percentile is that element.
  for (const int p : {0, 50, 99, 100}) {
    EXPECT_EQ(percentileNearestRank({7}, p), 7);
  }
  // All equal (total tie).
  EXPECT_EQ(percentileNearestRank({3, 3, 3, 3}, 99), 3);
  // Unsorted input is sorted internally; p100 is the maximum, p0/p1 the
  // minimum (rank clamps to 1).
  const std::vector<std::int64_t> v{40, 15, 50, 20, 35};
  EXPECT_EQ(percentileNearestRank(v, 0), 15);
  EXPECT_EQ(percentileNearestRank(v, 1), 15);
  EXPECT_EQ(percentileNearestRank(v, 50), 35);
  EXPECT_EQ(percentileNearestRank(v, 100), 50);
  // Matches the double-based percentile() on the same data.
  EXPECT_EQ(percentileNearestRank(v, 40), 20);
}

TEST(PercentileNearestRank, Errors) {
  EXPECT_THROW((void)percentileNearestRank({}, 50), Error);
  EXPECT_THROW((void)percentileNearestRank({1}, -1), Error);
  EXPECT_THROW((void)percentileNearestRank({1}, 101), Error);
}

}  // namespace
}  // namespace laps

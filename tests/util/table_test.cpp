#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"

namespace laps {
namespace {

TEST(Table, AsciiAlignsColumns) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(std::int64_t{1});
  t.row().cell("b").cell(std::int64_t{12345});
  const std::string out = t.ascii();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 12345 |"), std::string::npos);
}

TEST(Table, DoubleFormatting) {
  Table t({"x"});
  t.row().cell(3.14159, 2);
  EXPECT_NE(t.ascii().find("3.14"), std::string::npos);
  Table t4({"x"});
  t4.row().cell(3.14159, 4);
  EXPECT_NE(t4.ascii().find("3.1416"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.row().cell("plain").cell("with,comma");
  t.row().cell("with\"quote").cell("x");
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
  EXPECT_EQ(csv.find("plain\""), std::string::npos);
}

TEST(Table, CsvHasHeaderAndRows) {
  Table t({"h1", "h2"});
  t.row().cell("r1c1").cell("r1c2");
  std::istringstream in(t.csv());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "h1,h2");
  std::getline(in, line);
  EXPECT_EQ(line, "r1c1,r1c2");
}

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), Error);
}

TEST(Table, RejectsCellWithoutRow) {
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), Error);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"a"});
  t.row().cell("1");
  EXPECT_THROW(t.cell("2"), Error);
}

TEST(Table, RejectsIncompleteRowOnNewRow) {
  Table t({"a", "b"});
  t.row().cell("only-one");
  EXPECT_THROW(t.row(), Error);
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.rowCount(), 0u);
  t.row().cell("1");
  t.row().cell("2");
  EXPECT_EQ(t.rowCount(), 2u);
}

}  // namespace
}  // namespace laps

/// \file parallel_test.cpp
/// \brief The deterministic parallelism substrate: coverage of every
/// index, ordered collection, nesting, knob resolution and exception
/// propagation — at thread counts 1 (inline), 2 and 8.

#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/error.h"

namespace laps {
namespace {

/// Restores automatic thread-count resolution when a test exits.
class ThreadCountGuard {
 public:
  ~ThreadCountGuard() { setParallelThreadCount(0); }
};

TEST(ParallelTest, ThreadCountKnobWinsOverAuto) {
  const ThreadCountGuard guard;
  setParallelThreadCount(5);
  EXPECT_EQ(parallelThreadCount(), 5u);
  setParallelThreadCount(0);
  EXPECT_GE(parallelThreadCount(), 1u);  // auto resolution, always >= 1
}

TEST(ParallelTest, ForCoversEveryIndexExactlyOnce) {
  const ThreadCountGuard guard;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    setParallelThreadCount(threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    parallelFor(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads
                                   << " threads";
    }
  }
}

TEST(ParallelTest, ForHandlesEmptyAndTinyRanges) {
  const ThreadCountGuard guard;
  setParallelThreadCount(8);
  int calls = 0;
  parallelFor(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> one{0};
  parallelFor(1, [&](std::size_t) { one.fetch_add(1); });
  EXPECT_EQ(one.load(), 1);
}

TEST(ParallelTest, ChunksPartitionTheRange) {
  const ThreadCountGuard guard;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    setParallelThreadCount(threads);
    constexpr std::size_t kN = 97;  // not a multiple of any thread count
    std::vector<std::atomic<int>> hits(kN);
    parallelChunks(kN, [&](std::size_t begin, std::size_t end) {
      ASSERT_LT(begin, end);
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    int total = 0;
    for (auto& h : hits) total += h.load();
    EXPECT_EQ(total, static_cast<int>(kN)) << threads << " threads";
  }
}

TEST(ParallelTest, MapCollectsInIndexOrder) {
  const ThreadCountGuard guard;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    setParallelThreadCount(threads);
    const std::vector<std::int64_t> out = parallelMap<std::int64_t>(
        257, [](std::size_t i) { return static_cast<std::int64_t>(i * i); });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<std::int64_t>(i * i));
    }
  }
}

TEST(ParallelTest, NestedRegionsRunInline) {
  const ThreadCountGuard guard;
  setParallelThreadCount(4);
  // Outer region saturates the pool; inner regions must degrade to the
  // serial loop instead of deadlocking on the region mutex.
  const std::vector<std::int64_t> out =
      parallelMap<std::int64_t>(16, [](std::size_t i) {
        std::int64_t sum = 0;
        parallelFor(10, [&](std::size_t j) {
          sum += static_cast<std::int64_t>(i * j);
        });
        return sum;
      });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<std::int64_t>(45 * i));
  }
}

TEST(ParallelTest, ExceptionsPropagateToTheCaller) {
  const ThreadCountGuard guard;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    setParallelThreadCount(threads);
    EXPECT_THROW(
        parallelFor(100,
                    [](std::size_t i) {
                      if (i == 57) fail("boom");
                    }),
        Error);
    // The pool must stay usable after an exceptional region.
    std::atomic<int> count{0};
    parallelFor(100, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ParallelTest, ResultsIdenticalAcrossThreadCounts) {
  const ThreadCountGuard guard;
  std::vector<std::vector<std::int64_t>> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    setParallelThreadCount(threads);
    runs.push_back(parallelMap<std::int64_t>(503, [](std::size_t i) {
      return static_cast<std::int64_t>(i) * 2654435761LL % 1000003;
    }));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

}  // namespace
}  // namespace laps

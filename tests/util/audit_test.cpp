// Tests of the audit-mode invariant layer (docs/ARCHITECTURE.md §11).
//
// Two obligations, both independent of the build configuration:
//  * LAPS_AUDIT macro semantics — the wrapped statement executes exactly
//    when the build was configured with -DLAPSCHED_AUDIT=ON;
//  * every generic checker is live — it accepts the invariant-holding
//    case and throws laps::AuditError on the violated one. Checkers are
//    compiled in every configuration precisely so this suite can prove
//    them in every configuration.

#include "util/audit.h"

#include <gtest/gtest.h>

namespace laps {
namespace {

TEST(AuditMacro, ExecutesIffAuditBuild) {
  bool ran = false;
  LAPS_AUDIT(ran = true);
  EXPECT_EQ(ran, audit::enabled());
}

TEST(AuditMacro, DisabledStatementStillTypeChecks) {
  // Multiple statements and a checker call all compile inside the
  // macro; with audit off none of it runs, so the throwing checker
  // below is safe to wrap unconditionally.
  int counter = 0;
  LAPS_AUDIT(++counter; audit::require(counter == 1, "macro sequencing"));
  EXPECT_EQ(counter, audit::enabled() ? 1 : 0);
}

TEST(AuditRequire, ThrowsAuditErrorWithPrefix) {
  EXPECT_NO_THROW(audit::require(true, "fine"));
  try {
    audit::require(false, "invariant text");
    FAIL() << "require(false) must throw";
  } catch (const AuditError& e) {
    EXPECT_NE(std::string(e.what()).find("audit: "), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("invariant text"), std::string::npos);
  }
}

TEST(AuditRequire, AuditErrorIsAnError) {
  // A top-level harness catching laps::Error must also stop on a broken
  // contract.
  EXPECT_THROW(audit::require(false, "x"), Error);
}

TEST(AuditCycleMonotone, AcceptsForwardAndEqualTime) {
  EXPECT_NO_THROW(audit::cycleMonotone(0, 0));
  EXPECT_NO_THROW(audit::cycleMonotone(10, 10));
  EXPECT_NO_THROW(audit::cycleMonotone(10, 11));
}

TEST(AuditCycleMonotone, RejectsBackwardTime) {
  EXPECT_THROW(audit::cycleMonotone(11, 10), AuditError);
}

TEST(AuditArrivalBeforeCore, AcceptsCoreEventBeforeNextArrival) {
  EXPECT_NO_THROW(audit::arrivalBeforeCore(5, 6));
}

TEST(AuditArrivalBeforeCore, RejectsDueArrivalLeftPending) {
  // An arrival due at the core event's own cycle must already have been
  // drained (arrivals first at equal cycles).
  EXPECT_THROW(audit::arrivalBeforeCore(5, 5), AuditError);
  EXPECT_THROW(audit::arrivalBeforeCore(5, 4), AuditError);
}

TEST(AuditAdmissionIdentity, AcceptsExactPartition) {
  EXPECT_NO_THROW(audit::admissionIdentity(0, 0, 0, 0));
  EXPECT_NO_THROW(audit::admissionIdentity(7, 3, 0, 10));
  EXPECT_NO_THROW(audit::admissionIdentity(6, 3, 1, 10));
}

TEST(AuditAdmissionIdentity, RejectsLostProcesses) {
  EXPECT_THROW(audit::admissionIdentity(6, 3, 0, 10), AuditError);
  EXPECT_THROW(audit::admissionIdentity(8, 3, 0, 10), AuditError);
  EXPECT_THROW(audit::admissionIdentity(7, 3, 1, 10), AuditError);
}

TEST(AuditDepartureConservation, AcceptsExactPartition) {
  EXPECT_NO_THROW(audit::departureConservation(0, 0, 0, 0, 0));
  EXPECT_NO_THROW(audit::departureConservation(10, 5, 2, 2, 1));
}

TEST(AuditDepartureConservation, RejectsMisaccountedDeparture) {
  EXPECT_THROW(audit::departureConservation(9, 5, 2, 2, 1), AuditError);
  EXPECT_THROW(audit::departureConservation(11, 5, 2, 2, 1), AuditError);
}

TEST(AuditCoreUpForDispatch, AcceptsUpCore) {
  EXPECT_NO_THROW(audit::coreUpForDispatch(false, 3));
}

TEST(AuditCoreUpForDispatch, RejectsDownCoreDispatch) {
  EXPECT_THROW(audit::coreUpForDispatch(true, 3), AuditError);
}

TEST(AuditFaultBeforeCore, AcceptsDrainedFaults) {
  // A fault injection due strictly before the core event must already
  // have been applied; one at the same cycle applies after arrivals but
  // before the core event is handled, so equality is fine here.
  EXPECT_NO_THROW(audit::faultBeforeCore(5, 5));
  EXPECT_NO_THROW(audit::faultBeforeCore(5, 6));
}

TEST(AuditFaultBeforeCore, RejectsEarlierFaultLeftPending) {
  EXPECT_THROW(audit::faultBeforeCore(5, 4), AuditError);
}

TEST(AuditPercentileOrdering, AcceptsOrderedPercentiles) {
  EXPECT_NO_THROW(audit::percentileOrdering(0, 0, 0, 0));
  EXPECT_NO_THROW(audit::percentileOrdering(10, 10, 10, 1));
  EXPECT_NO_THROW(audit::percentileOrdering(10, 20, 30, 5));
}

TEST(AuditPercentileOrdering, RejectsInvertedPercentiles) {
  EXPECT_THROW(audit::percentileOrdering(20, 10, 30, 5), AuditError);
  EXPECT_THROW(audit::percentileOrdering(10, 30, 20, 5), AuditError);
}

TEST(AuditPercentileOrdering, RejectsNonZeroPercentilesWithoutSamples) {
  EXPECT_THROW(audit::percentileOrdering(1, 1, 1, 0), AuditError);
}

}  // namespace
}  // namespace laps

#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "util/error.h"

namespace laps {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r());
  EXPECT_GT(seen.size(), 95u);  // not stuck
}

TEST(Rng, BelowStaysInBound) {
  Rng r(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(r.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng r(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BelowZeroThrows) {
  Rng r(3);
  EXPECT_THROW(r.below(0), Error);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng r(5);
  bool sawLo = false;
  bool sawHi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= (v == -3);
    sawHi |= (v == 3);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, RangeSingleValue) {
  Rng r(5);
  EXPECT_EQ(r.range(9, 9), 9);
}

TEST(Rng, RangeBadArgsThrow) {
  Rng r(5);
  EXPECT_THROW(r.range(2, 1), Error);
}

TEST(Rng, Uniform01InHalfOpenUnitInterval) {
  Rng r(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  Rng r(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    EXPECT_FALSE(r.chance(-0.5));
    EXPECT_TRUE(r.chance(1.5));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng r(23);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(29);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  r.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleEmptyAndSingleton) {
  Rng r(31);
  std::vector<int> empty;
  r.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  r.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, IndexBounds) {
  Rng r(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(r.index(5), 5u);
  }
  EXPECT_THROW(r.index(0), Error);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(41);
  Rng childA = parent.split();
  Rng childB = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (childA() == childB()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitIsDeterministic) {
  Rng p1(43);
  Rng p2(43);
  Rng c1 = p1.split();
  Rng c2 = p2.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1(), c2());
}

}  // namespace
}  // namespace laps

#include "core/experiment.h"

#include <gtest/gtest.h>

namespace laps {
namespace {

/// Shrunken platform/workload so the full pipeline stays fast in tests.
ExperimentConfig testConfig() {
  ExperimentConfig cfg;
  cfg.mpsoc.coreCount = 4;
  return cfg;
}

AppParams smallApps() {
  AppParams p;
  p.scale = 0.5;
  return p;
}

TEST(RunExperiment, ProducesCompleteMetrics) {
  const Application app = makeShape(smallApps());
  const ExperimentResult r =
      runExperiment(app.workload, SchedulerKind::Locality, testConfig());
  EXPECT_EQ(r.schedulerName, "LS");
  EXPECT_GT(r.sim.makespanCycles, 0);
  EXPECT_GT(r.sim.seconds, 0.0);
  EXPECT_GT(r.sim.dcacheTotal.accesses, 0u);
  EXPECT_GT(r.energyMj, 0.0);
  for (const auto& p : r.sim.processes) {
    EXPECT_GE(p.completionCycle, 0) << "process " << p.id << " unfinished";
  }
}

TEST(RunExperiment, PaperSchedulerSetRuns) {
  const Application app = makeShape(smallApps());
  const auto kinds = paperSchedulers();
  ASSERT_EQ(kinds.size(), 4u);
  const auto results = compareSchedulers(app.workload, kinds, testConfig());
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].schedulerName, "RS");
  EXPECT_EQ(results[1].schedulerName, "RRS");
  EXPECT_EQ(results[2].schedulerName, "LS");
  EXPECT_EQ(results[3].schedulerName, "LSM");
  for (const auto& r : results) {
    EXPECT_GT(r.sim.makespanCycles, 0) << r.schedulerName;
  }
}

TEST(RunExperiment, Deterministic) {
  const Application app = makeTrack(smallApps());
  const ExperimentResult a =
      runExperiment(app.workload, SchedulerKind::Random, testConfig());
  const ExperimentResult b =
      runExperiment(app.workload, SchedulerKind::Random, testConfig());
  EXPECT_EQ(a.sim.makespanCycles, b.sim.makespanCycles);
  EXPECT_EQ(a.sim.dcacheTotal.misses, b.sim.dcacheTotal.misses);
}

TEST(RunExperiment, LocalityBeatsRandomOnIsolatedApp) {
  // The paper's headline claim (Fig. 6): LS/LSM beat RS and RRS when an
  // application runs in isolation, because its processes share heavily.
  // Full-scale MxM: the matrices (9 KB each) exceed the 8 KB L1, so cache
  // behaviour matters (at tiny scales everything fits and schedulers tie).
  const Application app = makeMxM();
  ExperimentConfig cfg;  // Table 2 platform: 8 cores
  const auto ls = runExperiment(app.workload, SchedulerKind::Locality, cfg);
  const auto rs = runExperiment(app.workload, SchedulerKind::Random, cfg);
  const auto rrs = runExperiment(app.workload, SchedulerKind::RoundRobin, cfg);
  EXPECT_LT(ls.sim.dcacheTotal.misses, rs.sim.dcacheTotal.misses);
  EXPECT_LE(ls.sim.makespanCycles, rs.sim.makespanCycles);
  EXPECT_LT(ls.sim.dcacheTotal.misses, rrs.sim.dcacheTotal.misses);
  EXPECT_LE(ls.sim.makespanCycles, rrs.sim.makespanCycles);
}

TEST(RunExperiment, LsmAppliesRelayoutOnConcurrentMix) {
  // With several applications resident, LSM must actually transform
  // arrays (cross-application conflicts exist by construction).
  const auto suite = standardSuite(smallApps());
  const Workload mix = concurrentScenario(suite, 3);
  const ExperimentResult lsm =
      runExperiment(mix, SchedulerKind::LocalityMapping, testConfig());
  EXPECT_GT(lsm.relayoutedArrays, 0u);
  EXPECT_GT(lsm.relayoutThreshold, 0);
  // Plain LS must not re-layout anything.
  const ExperimentResult ls =
      runExperiment(mix, SchedulerKind::Locality, testConfig());
  EXPECT_EQ(ls.relayoutedArrays, 0u);
}

TEST(RunExperiment, LsmReducesConflictMissesVsLs) {
  const auto suite = standardSuite(smallApps());
  const Workload mix = concurrentScenario(suite, 3);
  ExperimentConfig cfg = testConfig();
  cfg.mpsoc.memory.classifyMisses = true;
  const auto ls = runExperiment(mix, SchedulerKind::Locality, cfg);
  const auto lsm = runExperiment(mix, SchedulerKind::LocalityMapping, cfg);
  EXPECT_LT(lsm.sim.dataMisses.conflict, ls.sim.dataMisses.conflict)
      << "re-layout must remove conflict misses";
}

TEST(RunExperiment, ExtensionSchedulersRun) {
  const Application app = makeShape(smallApps());
  for (const auto kind :
       {SchedulerKind::Fcfs, SchedulerKind::Sjf, SchedulerKind::CriticalPath,
        SchedulerKind::DynamicLocality}) {
    const ExperimentResult r = runExperiment(app.workload, kind, testConfig());
    EXPECT_GT(r.sim.makespanCycles, 0) << to_string(kind);
  }
}

TEST(RunExperiment, ThresholdOverrideControlsRelayout) {
  const auto suite = standardSuite(smallApps());
  const Workload mix = concurrentScenario(suite, 2);
  ExperimentConfig cfg = testConfig();
  // An absurdly high threshold disables re-layout entirely.
  cfg.relayoutThreshold = std::int64_t{1} << 60;
  const auto off =
      runExperiment(mix, SchedulerKind::LocalityMapping, cfg);
  EXPECT_EQ(off.relayoutedArrays, 0u);
  // Threshold 0 re-layouts every eligible conflicting pair.
  cfg.relayoutThreshold = 0;
  const auto aggressive =
      runExperiment(mix, SchedulerKind::LocalityMapping, cfg);
  EXPECT_GT(aggressive.relayoutedArrays, 0u);
}

TEST(RunExperiment, RejectsMalformedWorkload) {
  Workload bad;
  const ArrayId v = bad.arrays.add("V", {8}, 4);
  ProcessSpec p;
  p.name = "oob";
  p.nests.push_back(
      LoopNest{IterationSpace::box({{0, 64}}),
               {ArrayAccess{v, AffineMap{AffineExpr({1}, 0)}, AccessKind::Read}},
               1});
  bad.graph.addProcess(std::move(p));
  EXPECT_THROW((void)runExperiment(bad, SchedulerKind::Locality, testConfig()),
               Error);
}

}  // namespace
}  // namespace laps

/// Integration tests asserting the paper's qualitative claims end-to-end
/// (small scales so the suite stays fast), plus coverage of the
/// refinements docs/ARCHITECTURE.md §5 documents.

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "sched/locality.h"
#include "util/stats.h"

namespace laps {
namespace {

TEST(PaperShapes, RrsPreemptionCostsMissesOnSweptWorkloads) {
  // Fig. 6 mechanism: RRS's quantum slicing re-fetches swept blocks.
  const Application app = makeMedIm04();
  const auto ls = runExperiment(app.workload, SchedulerKind::Locality, {});
  const auto rrs = runExperiment(app.workload, SchedulerKind::RoundRobin, {});
  EXPECT_GT(rrs.sim.dcacheTotal.misses, ls.sim.dcacheTotal.misses * 3 / 2);
  EXPECT_GT(rrs.sim.preemptions, 0u);
  EXPECT_GT(rrs.sim.seconds, ls.sim.seconds);
}

TEST(PaperShapes, LsNeverLosesMissesToRsAcrossSuite) {
  for (const auto& app : standardSuite()) {
    const auto ls = runExperiment(app.workload, SchedulerKind::Locality, {});
    const auto rs = runExperiment(app.workload, SchedulerKind::Random, {});
    EXPECT_LE(ls.sim.dcacheTotal.misses, rs.sim.dcacheTotal.misses)
        << app.name;
  }
}

TEST(PaperShapes, LsmRemovesTrackTwinArrayConflicts) {
  // Track's congruent cur/diff frames are the live Fig. 4 K1/K2 case.
  const Application app = makeTrack();
  ExperimentConfig cfg;
  cfg.mpsoc.memory.classifyMisses = true;
  const auto ls = runExperiment(app.workload, SchedulerKind::Locality, cfg);
  const auto lsm =
      runExperiment(app.workload, SchedulerKind::LocalityMapping, cfg);
  EXPECT_GT(lsm.relayoutedArrays, 0u);
  EXPECT_LT(lsm.sim.dataMisses.conflict, ls.sim.dataMisses.conflict / 2);
  EXPECT_LT(lsm.sim.seconds, ls.sim.seconds);
}

TEST(PaperShapes, LsmGapWidensWithConcurrency) {
  // Fig. 7 headline: the LS->LSM improvement at |T|=5 exceeds |T|=1.
  const auto suite = standardSuite();
  const auto gapAt = [&](std::size_t t) {
    const Workload mix = concurrentScenario(suite, t);
    const auto ls = runExperiment(mix, SchedulerKind::Locality, {});
    const auto lsm = runExperiment(mix, SchedulerKind::LocalityMapping, {});
    return percentImprovement(ls.sim.seconds, lsm.sim.seconds);
  };
  const double at1 = gapAt(1);
  const double at5 = gapAt(5);
  EXPECT_NEAR(at1, 0.0, 1.0);  // isolated: LS ~= LSM (paper Fig. 6)
  EXPECT_GT(at5, 5.0);         // concurrent: LSM clearly ahead (Fig. 7)
}

TEST(PaperShapes, SchedulingEffectsVanishWithHugeCache) {
  // With a cache that holds everything, scheduler choice stops mattering
  // (sanity check that the differences we measure are cache effects).
  const Application app = makeShape();
  ExperimentConfig cfg;
  cfg.mpsoc.memory.l1d.sizeBytes = 1 << 20;
  cfg.mpsoc.memory.l1i.sizeBytes = 1 << 20;
  const auto ls = runExperiment(app.workload, SchedulerKind::Locality, cfg);
  const auto rs = runExperiment(app.workload, SchedulerKind::Random, cfg);
  const double delta = percentImprovement(rs.sim.seconds, ls.sim.seconds);
  EXPECT_NEAR(delta, 0.0, 1.0);
}

TEST(PaperShapes, HigherMemoryLatencyAmplifiesLocalityWins) {
  const Application app = makeMxM();
  const auto gainAt = [&](std::int64_t latency) {
    ExperimentConfig cfg;
    cfg.mpsoc.memory.memLatencyCycles = latency;
    const auto ls = runExperiment(app.workload, SchedulerKind::Locality, cfg);
    const auto rrs =
        runExperiment(app.workload, SchedulerKind::RoundRobin, cfg);
    return rrs.sim.seconds - ls.sim.seconds;
  };
  EXPECT_GT(gainAt(150), gainAt(25));
}

TEST(OnlineLs, BeatsStaticPlanOnUtilization) {
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, 2);
  const auto fps = mix.footprints();
  const SharingMatrix sharing = SharingMatrix::compute(fps);
  const AddressSpace space(mix.arrays);
  const MpsocConfig mpsoc;

  LocalityScheduler online({.staticPlan = false});
  LocalityScheduler rigid({.staticPlan = true});
  const SimResult a = MpsocSimulator(mix, space, sharing, online, mpsoc).run();
  const SimResult b = MpsocSimulator(mix, space, sharing, rigid, mpsoc).run();
  EXPECT_GE(a.utilization(), b.utilization());
  EXPECT_LE(a.makespanCycles, b.makespanCycles);
}

TEST(SplitDim, PartitionsInnerDimensionKeepingSweeps) {
  // splitDim(1, 4) keeps the sweep loop (dim 0) intact per block.
  const auto space = IterationSpace::box({{0, 3}, {0, 20}, {0, 7}});
  const auto blocks = space.splitDim(1, 4);
  ASSERT_EQ(blocks.size(), 4u);
  std::int64_t total = 0;
  for (const auto& b : blocks) {
    EXPECT_EQ(b.dim(0).tripCount(), 3);
    EXPECT_EQ(b.dim(2).tripCount(), 7);
    total += b.numPoints();
  }
  EXPECT_EQ(total, space.numPoints());
  EXPECT_EQ(blocks[0].dim(1).tripCount(), 5);
}

TEST(SplitDim, OutOfRangeThrows) {
  const auto space = IterationSpace::box({{0, 4}});
  EXPECT_THROW((void)space.splitDim(1, 2), Error);
}

TEST(RelayoutLimits, GuardBlocksOversizedArrays) {
  ConflictMatrix m(2);
  m.set(0, 1, 1000);
  m.set(1, 0, 1000);
  const CacheConfig cache{};
  // Array 1's working set exceeds the cap: no transform at all (pairs
  // need both sides to fit).
  RelayoutLimits limits;
  limits.arrayFootprintBytes = {1024, 100'000};
  limits.maxFootprintBytes = 3072;
  const RelayoutPlan blocked =
      planRelayout(m, cache, alwaysEligible(), 10, limits);
  EXPECT_EQ(blocked.relayoutCount(), 0u);
  // Both fit: transform proceeds.
  limits.arrayFootprintBytes = {1024, 2048};
  const RelayoutPlan allowed =
      planRelayout(m, cache, alwaysEligible(), 10, limits);
  EXPECT_EQ(allowed.relayoutCount(), 2u);
}

TEST(ConflictMatrix, DensityWeightingPrefersHotPairs) {
  ArrayTable arrays;
  const ArrayId hotA = arrays.add("hotA", {512}, 4);   // 2 KB
  const ArrayId hotB = arrays.add("hotB", {512}, 4);   // 2 KB
  const ArrayId stream = arrays.add("stream", {1 << 14}, 4);  // 64 KB
  std::vector<Footprint> fps(3);
  fps[0].add(hotA, IntervalSet::range(0, 512));
  fps[1].add(hotB, IntervalSet::range(0, 512));
  fps[2].add(stream, IntervalSet::range(0, 1 << 14));
  const AddressSpace space(arrays);
  const CacheConfig cache{};
  // Unweighted: the stream pairs dominate.
  const ConflictMatrix plain =
      ConflictMatrix::compute(arrays, fps, space, cache);
  EXPECT_GT(plain.at(0, 2), plain.at(0, 1));
  // Weighted by reference counts (hot arrays swept 100x, stream once):
  // the hot pair dominates.
  const std::vector<std::int64_t> refs{512 * 100, 512 * 100, 1 << 14};
  const ConflictMatrix weighted =
      ConflictMatrix::compute(arrays, fps, space, cache, refs);
  EXPECT_GT(weighted.at(0, 1), weighted.at(0, 2));
}

TEST(EnergyModel, OffChipTrafficDominates) {
  SimResult few;
  few.dcacheTotal.accesses = 1000;
  few.dcacheTotal.misses = 10;
  few.coreBusyCycles = {1000};
  few.coreIdleCycles = {0};
  SimResult many = few;
  many.dcacheTotal.misses = 500;
  const EnergyModel model;
  EXPECT_GT(model.totalMj(many), model.totalMj(few));
}

}  // namespace
}  // namespace laps

/// \file energy_test.cpp
/// \brief Pins EnergyModel's per-access/per-miss accounting against
/// hand-computed values, including the shared-L2/bus terms the memory
/// hierarchy added.

#include "sim/energy.h"

#include <gtest/gtest.h>

#include "core/experiment.h"

namespace laps {
namespace {

TEST(EnergyModel, ZeroActivityCostsNothing) {
  EXPECT_EQ(EnergyModel{}.totalMj(SimResult{}), 0.0);
}

TEST(EnergyModel, FlatPlatformHandComputed) {
  // 100 D accesses (10 misses, 3 write-backs) + 50 I accesses (5 misses),
  // 1000 busy + 200 idle cycles, no L2:
  //   L1: 150 * 0.2            =  30 nJ
  //   off-chip: (10+5+3) * 6.0 = 108 nJ
  //   busy: 1000 * 0.15        = 150 nJ
  //   idle:  200 * 0.015       =   3 nJ
  SimResult r;
  r.dcacheTotal.accesses = 100;
  r.dcacheTotal.misses = 10;
  r.dcacheTotal.dirtyEvictions = 3;
  r.icacheTotal.accesses = 50;
  r.icacheTotal.misses = 5;
  r.coreBusyCycles = {600, 400};
  r.coreIdleCycles = {0, 200};
  EXPECT_DOUBLE_EQ(EnergyModel{}.totalMj(r), 291.0 * 1e-6);
}

TEST(EnergyModel, SharedL2FiltersOffChipTraffic) {
  // Same L1 activity, but an L2 absorbed most of it: 15 L2 accesses
  // (the L1 misses), 4 L2 misses, 2 L2 write-backs, plus 1 dirty L1
  // copy flushed off chip by inclusion back-invalidation past a clean
  // L2 entry. The L1 write-backs stay on chip; off-chip events are the
  // L2's misses + write-backs + that inclusion write-back.
  //   L1: 150 * 0.2          = 30 nJ
  //   L2:  15 * 1.0          = 15 nJ
  //   off-chip: (4+2+1) * 6.0 = 42 nJ
  //   busy/idle as before    = 153 nJ
  SimResult r;
  r.dcacheTotal.accesses = 100;
  r.dcacheTotal.misses = 10;
  r.dcacheTotal.dirtyEvictions = 3;
  r.icacheTotal.accesses = 50;
  r.icacheTotal.misses = 5;
  r.coreBusyCycles = {600, 400};
  r.coreIdleCycles = {0, 200};
  r.sharedL2Enabled = true;
  r.l2Total.accesses = 15;
  r.l2Total.misses = 4;
  r.l2Total.dirtyEvictions = 2;
  r.inclusionWritebacks = 1;
  EXPECT_DOUBLE_EQ(EnergyModel{}.totalMj(r), 240.0 * 1e-6);
}

TEST(EnergyModel, CustomCoefficientsScaleLinearly) {
  SimResult r;
  r.dcacheTotal.accesses = 10;
  r.dcacheTotal.misses = 2;
  EnergyModel m;
  m.l1AccessNj = 1.0;
  m.offChipAccessNj = 10.0;
  m.coreBusyNjPerCycle = 0.0;
  m.coreIdleNjPerCycle = 0.0;
  EXPECT_DOUBLE_EQ(m.totalMj(r), (10.0 * 1.0 + 2.0 * 10.0) * 1e-6);
  m.l2AccessNj = 100.0;  // irrelevant while no L2 is attached
  EXPECT_DOUBLE_EQ(m.totalMj(r), (10.0 * 1.0 + 2.0 * 10.0) * 1e-6);
}

TEST(EnergyModel, ExperimentEnergyMatchesManualRecomputation) {
  // End-to-end guard: the harness's energyMj is exactly the model
  // applied to the returned SimResult, L2 enabled or not.
  const auto suite = standardSuite(AppParams{0.25});
  const Workload mix = concurrentScenario(suite, 2);
  for (const bool withL2 : {false, true}) {
    ExperimentConfig config;
    if (withL2) {
      PlatformConfig& platform = config.mpsoc.platform.emplace();
      platform.interconnect = InterconnectKind::Bus;
      platform.sharedL2.emplace();
    }
    const auto r = runExperiment(mix, SchedulerKind::Locality, config);
    EXPECT_EQ(r.sim.sharedL2Enabled, withL2);
    EXPECT_DOUBLE_EQ(r.energyMj, config.energy.totalMj(r.sim));
    if (withL2) {
      EXPECT_GT(r.sim.l2Total.accesses, 0u);
    }
  }
}

}  // namespace
}  // namespace laps

/// \file arrival_dist_test.cpp
/// \brief The integer-only arrival distributions: determinism, pinned
/// golden draws (platform identity), empirical means, and tail shape.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/arrivals.h"
#include "util/error.h"
#include "util/rng.h"

namespace laps {
namespace {

ArrivalSchedule schedule(ArrivalDistribution dist, std::int64_t mean = 1000,
                         std::uint64_t seed = 42) {
  ArrivalSchedule s;
  s.seed = seed;
  s.meanInterArrivalCycles = mean;
  s.distribution = dist;
  return s;
}

std::vector<std::int64_t> draw(const ArrivalSchedule& s, std::size_t count) {
  GapSampler sampler(s);
  std::vector<std::int64_t> gaps;
  gaps.reserve(count);
  for (std::size_t i = 0; i < count; ++i) gaps.push_back(sampler.next());
  return gaps;
}

constexpr ArrivalDistribution kAllDistributions[] = {
    ArrivalDistribution::Uniform, ArrivalDistribution::Exponential,
    ArrivalDistribution::BoundedPareto};

TEST(ArrivalDistributions, DeterministicAcrossRerunsAndSeedSensitive) {
  for (const ArrivalDistribution dist : kAllDistributions) {
    const auto a = draw(schedule(dist), 500);
    const auto b = draw(schedule(dist), 500);
    EXPECT_EQ(a, b) << static_cast<int>(dist);
    const auto c = draw(schedule(dist, 1000, 43), 500);
    EXPECT_NE(a, c) << static_cast<int>(dist);
    for (const std::int64_t gap : a) {
      EXPECT_GE(gap, 1) << static_cast<int>(dist);
    }
  }
}

TEST(ArrivalDistributions, GoldenDrawsPinPlatformIdentity) {
  // The samplers are integer-only (fixed-point survival functions,
  // integer square roots, rejection sampling — no libm), so these exact
  // values must reproduce on every platform, compiler and build type.
  // A mismatch means the sampling algorithm changed, which invalidates
  // every committed open-workload baseline.
  using V = std::vector<std::int64_t>;
  EXPECT_EQ(draw(schedule(ArrivalDistribution::Uniform), 6),
            (V{704, 730, 1625, 1946, 818, 1223}));
  EXPECT_EQ(draw(schedule(ArrivalDistribution::Exponential), 6),
            (V{2478, 970, 386, 79, 9, 262}));
  EXPECT_EQ(draw(schedule(ArrivalDistribution::BoundedPareto), 6),
            (V{470, 585, 820, 385, 327, 559}));
}

TEST(ArrivalDistributions, EmpiricalMeansTrackTheConfiguredMean) {
  constexpr std::size_t kSamples = 20'000;
  constexpr std::int64_t kMean = 1000;
  // Uniform and Exponential hit the mean exactly by construction;
  // BoundedPareto to within rounding of its derived minimum gap.
  const double tolerance[] = {0.03, 0.03, 0.06};
  for (std::size_t d = 0; d < 3; ++d) {
    const auto gaps = draw(schedule(kAllDistributions[d], kMean), kSamples);
    double sum = 0;
    for (const std::int64_t gap : gaps) sum += static_cast<double>(gap);
    const double empirical = sum / static_cast<double>(kSamples);
    EXPECT_NEAR(empirical, static_cast<double>(kMean),
                tolerance[d] * static_cast<double>(kMean))
        << "distribution " << d;
  }
}

TEST(ArrivalDistributions, ParetoTailIsHeavierThanExponential) {
  constexpr std::size_t kSamples = 20'000;
  constexpr std::int64_t kMean = 1000;
  const auto countOver = [](const std::vector<std::int64_t>& gaps,
                            std::int64_t threshold) {
    std::size_t n = 0;
    for (const std::int64_t gap : gaps) n += gap > threshold ? 1 : 0;
    return n;
  };
  const auto expGaps = draw(schedule(ArrivalDistribution::Exponential, kMean),
                            kSamples);
  const auto parGaps = draw(schedule(ArrivalDistribution::BoundedPareto, kMean),
                            kSamples);
  // P(gap > 8*mean): ~e^-8 = 3.4e-4 for the geometric, polynomial
  // (~0.8% with alpha = 1.5 over 8 octaves) for the bounded Pareto.
  const std::size_t expTail = countOver(expGaps, 8 * kMean);
  const std::size_t parTail = countOver(parGaps, 8 * kMean);
  EXPECT_GT(parTail, 100u);
  EXPECT_LT(expTail, 20u);
  EXPECT_GT(parTail, 10 * expTail);
  // Uniform has no tail at all past 2*mean.
  const auto uniGaps =
      draw(schedule(ArrivalDistribution::Uniform, kMean), kSamples);
  EXPECT_EQ(countOver(uniGaps, 2 * kMean - 1), 0u);
}

TEST(ArrivalDistributions, UniformStreamMatchesTheLegacyCohortScheme) {
  // The Uniform sampler must consume the Rng exactly like the original
  // cohort-arrival loop (one range(1, 2*mean - 1) call per gap), or
  // every committed open-workload baseline breaks. Reimplement that
  // loop as the oracle.
  ArrivalSchedule s = schedule(ArrivalDistribution::Uniform, 10'000, 7);
  const auto arrivals = cohortArrivalCycles(s, 64);
  Rng oracle(s.seed);
  std::int64_t cycle = 0;
  for (std::size_t k = 0; k < 64; ++k) {
    EXPECT_EQ(arrivals[k], cycle) << "cohort " << k;
    cycle += oracle.range(1, 2 * s.meanInterArrivalCycles - 1);
  }
  // processArrivalCycles shares the gap machinery: same schedule, same
  // stream.
  EXPECT_EQ(processArrivalCycles(s, 64), arrivals);
}

TEST(ArrivalDistributions, MeanOneCollapsesEveryGap) {
  // Uniform and Exponential collapse exactly. BoundedPareto cannot
  // represent mean 1 (its minimum-gap floor L = 1 still spans
  // spanOctaves octaves — the documented rounding of L); it must stay
  // within [1, 2^spanOctaves) and keep every gap positive.
  for (const ArrivalDistribution dist :
       {ArrivalDistribution::Uniform, ArrivalDistribution::Exponential}) {
    for (const std::int64_t gap : draw(schedule(dist, 1), 100)) {
      EXPECT_EQ(gap, 1) << static_cast<int>(dist);
    }
  }
  const ArrivalSchedule pareto = schedule(ArrivalDistribution::BoundedPareto, 1);
  for (const std::int64_t gap : draw(pareto, 100)) {
    EXPECT_GE(gap, 1);
    EXPECT_LT(gap, std::int64_t{1} << pareto.paretoSpanOctaves);
  }
}

TEST(ArrivalDistributions, ValidatesParetoKnobs) {
  ArrivalSchedule s = schedule(ArrivalDistribution::BoundedPareto);
  s.paretoAlphaHalves = 0;
  EXPECT_THROW(s.validate(), Error);
  s.paretoAlphaHalves = 17;
  EXPECT_THROW(s.validate(), Error);
  s.paretoAlphaHalves = 3;
  s.paretoSpanOctaves = 0;
  EXPECT_THROW(s.validate(), Error);
  s.paretoSpanOctaves = 25;
  EXPECT_THROW(s.validate(), Error);
  s.paretoSpanOctaves = 8;
  s.validate();
  // The largest gap L << spanOctaves must fit in int64.
  s.meanInterArrivalCycles = std::numeric_limits<std::int64_t>::max() >> 4;
  EXPECT_THROW(s.validate(), Error);
}

TEST(ArrivalDistributions, WholeAndHalfAlphasShapeTheTail) {
  // Larger alpha = faster octave decay = lighter tail. Compare the
  // fraction above 4*mean across alphaHalves 2, 3, 4 (alpha 1, 1.5, 2).
  constexpr std::size_t kSamples = 20'000;
  std::size_t previous = kSamples;
  for (const int alphaHalves : {2, 3, 4}) {
    ArrivalSchedule s = schedule(ArrivalDistribution::BoundedPareto, 1000);
    s.paretoAlphaHalves = alphaHalves;
    std::size_t over = 0;
    for (const std::int64_t gap : draw(s, kSamples)) {
      over += gap > 4000 ? 1 : 0;
    }
    EXPECT_LT(over, previous) << "alphaHalves " << alphaHalves;
    previous = over;
  }
}

}  // namespace
}  // namespace laps

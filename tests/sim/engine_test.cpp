#include "sim/engine.h"

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "sched/basic.h"
#include "sched/factory.h"
#include "sched/locality.h"
#include "sim/energy.h"
#include "util/error.h"

namespace laps {
namespace {

/// A small platform: 2 cores, tiny caches, instruction modeling off so
/// cycle counts are easy to reason about.
MpsocConfig smallConfig(std::size_t cores = 2) {
  MpsocConfig cfg;
  cfg.coreCount = cores;
  cfg.memory.l1d = CacheConfig{1024, 2, 32, 2};
  cfg.memory.l1i = CacheConfig{1024, 2, 32, 2};
  cfg.memory.memLatencyCycles = 75;
  cfg.memory.modelICache = false;
  cfg.switchCycles = 400;
  return cfg;
}

struct Rig {
  Workload workload;
  ArrayId v;

  explicit Rig(std::int64_t arrayElems = 1 << 16) {
    v = workload.arrays.add("V", {arrayElems}, 4);
  }

  /// Sequential read process over [lo, hi) with 1 compute cycle per iter.
  ProcessId addStream(std::int64_t lo, std::int64_t hi, TaskId task = 0) {
    ProcessSpec p;
    p.task = task;
    p.name = "s" + std::to_string(workload.graph.processCount());
    p.nests.push_back(LoopNest{
        IterationSpace::box({{lo, hi}}),
        {ArrayAccess{v, AffineMap{AffineExpr({1}, 0)}, AccessKind::Read}},
        1});
    return workload.graph.addProcess(std::move(p));
  }

  SimResult run(SchedulerPolicy& policy, const MpsocConfig& cfg) {
    const AddressSpace space(workload.arrays);
    const auto fps = workload.footprints();
    const SharingMatrix sharing = SharingMatrix::compute(fps);
    MpsocSimulator sim(workload, space, sharing, policy, cfg);
    return sim.run();
  }
};

TEST(MpsocSimulator, SingleProcessExactCycleCount) {
  // 4 reads within one 32B line: miss, hit, hit, hit.
  Rig rig;
  rig.addStream(0, 4);
  FcfsScheduler policy;
  const SimResult r = rig.run(policy, smallConfig(1));
  // switch(400) + (2+75+1) + 3*(2+1) = 400 + 78 + 9 = 487.
  EXPECT_EQ(r.makespanCycles, 487);
  EXPECT_EQ(r.dcacheTotal.accesses, 4u);
  EXPECT_EQ(r.dcacheTotal.misses, 1u);
  EXPECT_EQ(r.contextSwitches, 1u);
  EXPECT_EQ(r.preemptions, 0u);
  ASSERT_EQ(r.processes.size(), 1u);
  EXPECT_EQ(r.processes[0].firstStartCycle, 0);
  EXPECT_EQ(r.processes[0].completionCycle, 487);
  EXPECT_EQ(r.processes[0].segments, 1u);
  EXPECT_NEAR(r.seconds, 487.0 / 200e6, 1e-12);
}

TEST(MpsocSimulator, IndependentProcessesRunInParallel) {
  Rig rig;
  rig.addStream(0, 1000);
  rig.addStream(10000, 11000);
  FcfsScheduler policy;
  const SimResult two = rig.run(policy, smallConfig(2));
  const SimResult one = rig.run(policy, smallConfig(1));
  // Two cores should cut the makespan roughly in half.
  EXPECT_LT(two.makespanCycles, one.makespanCycles * 6 / 10);
  EXPECT_EQ(two.processes[0].lastCore != two.processes[1].lastCore, true);
}

TEST(MpsocSimulator, DependenceSerializesExecution) {
  Rig rig;
  const auto a = rig.addStream(0, 1000);
  const auto b = rig.addStream(10000, 11000);
  rig.workload.graph.addDependence(a, b);
  FcfsScheduler policy;
  const SimResult r = rig.run(policy, smallConfig(2));
  EXPECT_GE(r.processes[b].firstStartCycle, r.processes[a].completionCycle);
}

TEST(MpsocSimulator, DiamondDependences) {
  Rig rig;
  const auto a = rig.addStream(0, 500);
  const auto b = rig.addStream(1000, 1500);
  const auto c = rig.addStream(2000, 2500);
  const auto d = rig.addStream(3000, 3500);
  rig.workload.graph.addDependence(a, b);
  rig.workload.graph.addDependence(a, c);
  rig.workload.graph.addDependence(b, d);
  rig.workload.graph.addDependence(c, d);
  FcfsScheduler policy;
  const SimResult r = rig.run(policy, smallConfig(2));
  EXPECT_GE(r.processes[b].firstStartCycle, r.processes[a].completionCycle);
  EXPECT_GE(r.processes[c].firstStartCycle, r.processes[a].completionCycle);
  EXPECT_GE(r.processes[d].firstStartCycle,
            std::max(r.processes[b].completionCycle,
                     r.processes[c].completionCycle));
  // b and c overlap on the two cores.
  EXPECT_LT(std::max(r.processes[b].firstStartCycle,
                     r.processes[c].firstStartCycle),
            std::min(r.processes[b].completionCycle,
                     r.processes[c].completionCycle));
}

TEST(MpsocSimulator, RoundRobinPreemptsAndCompletes) {
  Rig rig;
  rig.addStream(0, 5000);
  rig.addStream(10000, 15000);
  rig.addStream(20000, 25000);
  RoundRobinScheduler policy(2000);  // quantum far below process length
  const SimResult r = rig.run(policy, smallConfig(1));
  EXPECT_GT(r.preemptions, 0u);
  for (const auto& p : r.processes) {
    EXPECT_GE(p.completionCycle, 0) << "process " << p.id;
    EXPECT_GT(p.segments, 1u);
  }
  // Preemptions imply extra context switches over the 3 initial loads.
  EXPECT_GT(r.contextSwitches, 3u);
}

TEST(MpsocSimulator, SwitchOverheadDoesNotShrinkQuantum) {
  // One process of 100 pure-compute steps at 10 cycles each, quantum 100:
  // every segment must cover exactly 10 steps regardless of the 400-cycle
  // dispatch overhead of the first segment (the regression was seeding
  // the quantum comparison with switchCycles, truncating that segment).
  Rig rig;
  ProcessSpec p;
  p.name = "compute";
  p.nests.push_back(LoopNest{IterationSpace::box({{0, 100}}), {}, 10});
  rig.workload.graph.addProcess(std::move(p));
  RoundRobinScheduler policy(100);
  const SimResult r = rig.run(policy, smallConfig(1));
  EXPECT_EQ(r.processes[0].segments, 10u);  // 100 steps / 10 per quantum
  EXPECT_EQ(r.preemptions, 9u);
  EXPECT_EQ(r.contextSwitches, 1u);  // resuming the same process is free
  EXPECT_EQ(r.makespanCycles, 1000 + 400);
}

TEST(MpsocSimulator, SegmentCountInvariantUnderSwitchCost) {
  // The quantum governs work cycles only, so the preemption schedule must
  // not depend on the context-switch cost.
  Rig rig;
  rig.addStream(0, 3000);
  rig.addStream(10000, 13000);
  MpsocConfig cheap = smallConfig(1);
  cheap.switchCycles = 0;
  MpsocConfig dear = smallConfig(1);
  dear.switchCycles = 3'900;
  RoundRobinScheduler p1(2000);
  RoundRobinScheduler p2(2000);
  const SimResult a = rig.run(p1, cheap);
  const SimResult b = rig.run(p2, dear);
  EXPECT_GT(a.preemptions, 0u);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.contextSwitches, b.contextSwitches);
  EXPECT_EQ(b.makespanCycles,
            a.makespanCycles +
                static_cast<std::int64_t>(b.contextSwitches) * 3'900);
}

TEST(MpsocSimulator, SwitchOverheadExcludedFromUtilization) {
  // Single process on one core: busy + switch overhead == makespan, and
  // utilization counts only the busy (useful) share.
  Rig rig;
  rig.addStream(0, 4);
  FcfsScheduler policy;
  const SimResult r = rig.run(policy, smallConfig(1));
  EXPECT_EQ(r.switchOverheadCycles, 400u);
  EXPECT_EQ(r.coreBusyCycles[0], 87);  // (2+75+1) + 3*(2+1)
  EXPECT_EQ(r.makespanCycles, 487);
  EXPECT_NEAR(r.utilization(), 87.0 / 487.0, 1e-12);
}

TEST(MpsocSimulator, QuantumLargerThanProcessMeansNoPreemption) {
  Rig rig;
  rig.addStream(0, 100);
  RoundRobinScheduler policy(1 << 30);
  const SimResult r = rig.run(policy, smallConfig(1));
  EXPECT_EQ(r.preemptions, 0u);
  EXPECT_EQ(r.processes[0].segments, 1u);
}

TEST(MpsocSimulator, CacheReuseAcrossProcessesOnSameCore) {
  // Two processes reading the same 256 elements (1 KB, fits the cache),
  // serialized on one core: the second must hit everywhere.
  Rig rig;
  const auto a = rig.addStream(0, 256);
  const auto b = rig.addStream(0, 256);
  rig.workload.graph.addDependence(a, b);  // force order
  FcfsScheduler policy;
  const SimResult r = rig.run(policy, smallConfig(1));
  // 256 elements * 4B = 1024 B = 32 lines: only the first process misses.
  EXPECT_EQ(r.dcacheTotal.misses, 32u);
  EXPECT_EQ(r.dcacheTotal.accesses, 512u);
}

TEST(MpsocSimulator, FlushOnSwitchDestroysReuse) {
  Rig rig;
  const auto a = rig.addStream(0, 256);
  const auto b = rig.addStream(0, 256);
  rig.workload.graph.addDependence(a, b);
  FcfsScheduler policy;
  MpsocConfig cfg = smallConfig(1);
  cfg.flushOnSwitch = true;
  const SimResult r = rig.run(policy, cfg);
  EXPECT_EQ(r.dcacheTotal.misses, 64u);  // both processes miss cold
}

TEST(MpsocSimulator, DeterministicAcrossRuns) {
  Rig rig;
  for (int i = 0; i < 6; ++i) {
    rig.addStream(i * 3000, i * 3000 + 2000);
  }
  RandomScheduler p1(42);
  RandomScheduler p2(42);
  const SimResult a = rig.run(p1, smallConfig(3));
  const SimResult b = rig.run(p2, smallConfig(3));
  EXPECT_EQ(a.makespanCycles, b.makespanCycles);
  EXPECT_EQ(a.dcacheTotal.misses, b.dcacheTotal.misses);
  EXPECT_EQ(a.contextSwitches, b.contextSwitches);
}

TEST(MpsocSimulator, LocalitySchedulerIntegration) {
  // 8 overlapping streams; LS should serialize sharers on cores.
  Rig rig;
  for (int i = 0; i < 8; ++i) {
    rig.addStream(i * 500, i * 500 + 1000);  // neighbors overlap by 500
  }
  LocalityScheduler ls;
  RandomScheduler rs(123);
  const MpsocConfig cfg = smallConfig(2);
  const SimResult lsResult = rig.run(ls, cfg);
  const SimResult rsResult = rig.run(rs, cfg);
  EXPECT_LE(lsResult.dcacheTotal.misses, rsResult.dcacheTotal.misses);
  for (const auto& p : lsResult.processes) {
    EXPECT_GE(p.completionCycle, 0);
  }
}

TEST(MpsocSimulator, UtilizationAndIdleAccounting) {
  Rig rig;
  rig.addStream(0, 4000);  // only one process on two cores
  FcfsScheduler policy;
  const SimResult r = rig.run(policy, smallConfig(2));
  // Core 1 never works: utilization ~0.5.
  EXPECT_NEAR(r.utilization(), 0.5, 0.01);
  EXPECT_EQ(r.coreBusyCycles[1], 0);
  EXPECT_EQ(r.coreIdleCycles[1], r.makespanCycles);
  EXPECT_EQ(r.coreIdleCycles[0], 0);
}

TEST(MpsocSimulator, InstructionCacheWarmupCosts) {
  Rig rig;
  rig.addStream(0, 64);
  FcfsScheduler policy;
  MpsocConfig off = smallConfig(1);
  MpsocConfig on = smallConfig(1);
  on.memory.modelICache = true;
  const SimResult withoutI = rig.run(policy, off);
  const SimResult withI = rig.run(policy, on);
  // I-cache misses add latency; once warm, fetch hits are free.
  EXPECT_GT(withI.makespanCycles, withoutI.makespanCycles);
  EXPECT_GT(withI.icacheTotal.accesses, 0u);
  EXPECT_LE(withI.icacheTotal.misses, 4u);  // tiny loop body
}

TEST(MpsocSimulator, EnergyModelTracksMisses) {
  Rig rig;
  const auto a = rig.addStream(0, 256);
  const auto b = rig.addStream(0, 256);
  rig.workload.graph.addDependence(a, b);
  FcfsScheduler policy;
  MpsocConfig cfg = smallConfig(1);
  const SimResult reuse = rig.run(policy, cfg);
  cfg.flushOnSwitch = true;
  const SimResult cold = rig.run(policy, cfg);
  const EnergyModel energy;
  EXPECT_LT(energy.totalMj(reuse), energy.totalMj(cold));
}

TEST(MpsocSimulator, MissClassificationPlumbed) {
  Rig rig;
  rig.addStream(0, 256);
  FcfsScheduler policy;
  MpsocConfig cfg = smallConfig(1);
  cfg.memory.classifyMisses = true;
  const AddressSpace space(rig.workload.arrays);
  const auto fps = rig.workload.footprints();
  const SharingMatrix sharing = SharingMatrix::compute(fps);
  MpsocSimulator sim(rig.workload, space, sharing, policy, cfg);
  const SimResult r = sim.run();
  EXPECT_EQ(r.dataMisses.total(), r.dcacheTotal.misses);
  EXPECT_EQ(r.dataMisses.compulsory, r.dcacheTotal.misses);  // pure stream
}

/// A policy that never schedules anything: the engine must detect the
/// stranded work instead of hanging.
class BrokenPolicy final : public SchedulerPolicy {
 public:
  void reset(const SchedContext&) override {}
  void onReady(ProcessId) override {}
  std::optional<ProcessId> pickNext(std::size_t, std::optional<ProcessId>) override {
    return std::nullopt;
  }
  [[nodiscard]] std::string name() const override { return "broken"; }
};

TEST(MpsocSimulator, DeadlockDetected) {
  Rig rig;
  rig.addStream(0, 10);
  BrokenPolicy policy;
  const AddressSpace space(rig.workload.arrays);
  const SharingMatrix sharing = SharingMatrix::compute(rig.workload.footprints());
  MpsocSimulator sim(rig.workload, space, sharing, policy, smallConfig(1));
  EXPECT_THROW((void)sim.run(), Error);
}

/// A policy that schedules a process whose dependences are unmet.
class EagerPolicy final : public SchedulerPolicy {
 public:
  void reset(const SchedContext& ctx) override { n_ = ctx.graph->processCount(); }
  void onReady(ProcessId) override {}
  std::optional<ProcessId> pickNext(std::size_t,
                                    std::optional<ProcessId>) override {
    if (next_ >= n_) return std::nullopt;
    return static_cast<ProcessId>(next_++);
  }
  [[nodiscard]] std::string name() const override { return "eager"; }

 private:
  std::size_t n_ = 0;
  std::size_t next_ = 1;  // starts with process 1, skipping its dependence
};

TEST(MpsocSimulator, IneligiblePickRejected) {
  Rig rig;
  const auto a = rig.addStream(0, 10);
  const auto b = rig.addStream(100, 110);
  rig.workload.graph.addDependence(a, b);
  EagerPolicy policy;
  const AddressSpace space(rig.workload.arrays);
  const SharingMatrix sharing = SharingMatrix::compute(rig.workload.footprints());
  MpsocSimulator sim(rig.workload, space, sharing, policy, smallConfig(1));
  EXPECT_THROW((void)sim.run(), Error);
}

TEST(MpsocSimulator, EmptyWorkloadCompletesAtZero) {
  Workload workload;
  workload.arrays.add("V", {16}, 4);
  FcfsScheduler policy;
  const AddressSpace space(workload.arrays);
  const SharingMatrix sharing(0);
  MpsocSimulator sim(workload, space, sharing, policy, smallConfig(2));
  const SimResult r = sim.run();
  EXPECT_EQ(r.makespanCycles, 0);
  EXPECT_EQ(r.contextSwitches, 0u);
}

TEST(MpsocSimulator, SharedL2StatsFlowIntoTheResult) {
  Rig rig;
  rig.addStream(0, 4096);
  rig.addStream(4096, 8192);
  FcfsScheduler policy;
  const AddressSpace space(rig.workload.arrays);
  const SharingMatrix sharing =
      SharingMatrix::compute(rig.workload.footprints());
  MpsocConfig cfg = smallConfig(2);
  cfg.sharedL2.emplace();
  cfg.bus.emplace();
  MpsocSimulator sim(rig.workload, space, sharing, policy, cfg);
  const SimResult r = sim.run();
  EXPECT_TRUE(r.sharedL2Enabled);
  // Every L1 miss goes through the L2; every L2 miss crosses the bus.
  EXPECT_EQ(r.l2Total.accesses, r.dcacheTotal.misses);
  EXPECT_GT(r.l2Total.accesses, 0u);
  EXPECT_GE(r.busTransactions, r.l2Total.misses);
}

TEST(MpsocSimulator, ContentionIsDeterministic) {
  const auto run = [] {
    Rig rig;
    for (int i = 0; i < 6; ++i) rig.addStream(i * 2048, (i + 1) * 2048);
    FcfsScheduler policy;
    const AddressSpace space(rig.workload.arrays);
    const SharingMatrix sharing =
        SharingMatrix::compute(rig.workload.footprints());
    MpsocConfig cfg = smallConfig(3);
    cfg.sharedL2.emplace();
    cfg.bus.emplace();
    MpsocSimulator sim(rig.workload, space, sharing, policy, cfg);
    return sim.run();
  };
  const SimResult a = run();
  const SimResult b = run();
  EXPECT_EQ(a.makespanCycles, b.makespanCycles);
  EXPECT_EQ(a.busWaitCycles, b.busWaitCycles);
  EXPECT_EQ(a.l2BankWaitCycles, b.l2BankWaitCycles);
}

TEST(MpsocSimulator, ABoundedBusStretchesTheMakespan) {
  // Same workload, same L1 behavior: replacing the fixed-latency memory
  // with a saturated 1-slot bus can only slow things down.
  const auto makespan = [](bool bounded) {
    Rig rig;
    for (int i = 0; i < 4; ++i) rig.addStream(i * 4096, (i + 1) * 4096);
    FcfsScheduler policy;
    const AddressSpace space(rig.workload.arrays);
    const SharingMatrix sharing =
        SharingMatrix::compute(rig.workload.footprints());
    MpsocConfig cfg = smallConfig(4);
    if (bounded) {
      BusConfig bus;
      bus.maxOutstanding = 1;
      bus.latencyCycles = 75;
      bus.widthBytes = 8;
      cfg.bus = bus;
    }
    MpsocSimulator sim(rig.workload, space, sharing, policy, cfg);
    return sim.run().makespanCycles;
  };
  EXPECT_GT(makespan(true), makespan(false));
}

TEST(MpsocSimulator, ContentionAwarePolicyRunsEndToEnd) {
  const auto suite = standardSuite(AppParams{0.25});
  const Workload mix = concurrentScenario(suite, 2);
  ExperimentConfig config;
  PlatformConfig& platform = config.mpsoc.platform.emplace();
  platform.interconnect = InterconnectKind::Bus;
  platform.sharedL2.emplace();
  const auto r = runExperiment(mix, SchedulerKind::L2ContentionAware, config);
  EXPECT_EQ(r.schedulerName, "CALS");
  EXPECT_EQ(r.sim.processes.size(), mix.graph.processCount());
  for (const auto& p : r.sim.processes) {
    EXPECT_GE(p.completionCycle, 0) << "process " << p.id;
  }
  EXPECT_TRUE(r.sim.sharedL2Enabled);
}

TEST(MpsocSimulator, ConfigValidation) {
  Rig rig;
  rig.addStream(0, 10);
  FcfsScheduler policy;
  const AddressSpace space(rig.workload.arrays);
  const SharingMatrix sharing = SharingMatrix::compute(rig.workload.footprints());
  MpsocConfig zeroCores = smallConfig(1);
  zeroCores.coreCount = 0;
  EXPECT_THROW(MpsocSimulator(rig.workload, space, sharing, policy, zeroCores),
               Error);
  MpsocConfig badCache = smallConfig(1);
  badCache.memory.l1d.lineBytes = 33;
  EXPECT_THROW(MpsocSimulator(rig.workload, space, sharing, policy, badCache),
               Error);
  const SharingMatrix wrongSize(5);
  EXPECT_THROW(
      MpsocSimulator(rig.workload, space, wrongSize, policy, smallConfig(1)),
      Error);
}

}  // namespace
}  // namespace laps

/// \file open_workload_test.cpp
/// \brief The open-workload engine: seeded arrival schedules, cohort
/// admission, lifetime retirement, and determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "core/laps.h"

namespace laps {
namespace {

ExperimentConfig openConfig(std::int64_t meanInterArrival = 100'000,
                            std::optional<std::int64_t> lifetime = {}) {
  ExperimentConfig config;
  config.mpsoc.arrivals.emplace();
  config.mpsoc.arrivals->meanInterArrivalCycles = meanInterArrival;
  config.mpsoc.arrivals->processLifetimeCycles = lifetime;
  return config;
}

TEST(ArrivalSchedule, ValidatesParameters) {
  ArrivalSchedule schedule;
  schedule.meanInterArrivalCycles = 0;
  EXPECT_THROW(schedule.validate(), Error);
  schedule.meanInterArrivalCycles = 100;
  schedule.processLifetimeCycles = 0;
  EXPECT_THROW(schedule.validate(), Error);
  schedule.processLifetimeCycles = 1;
  schedule.validate();
}

TEST(ArrivalSchedule, SeededCohortCyclesAreDeterministicAndIncreasing) {
  ArrivalSchedule schedule;
  schedule.seed = 42;
  schedule.meanInterArrivalCycles = 10'000;
  const auto a = cohortArrivalCycles(schedule, 16);
  const auto b = cohortArrivalCycles(schedule, 16);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 16u);
  EXPECT_EQ(a[0], 0);  // the first cohort starts the simulation
  for (std::size_t k = 1; k < a.size(); ++k) {
    EXPECT_GT(a[k], a[k - 1]);
    // Uniform on [1, 2*mean - 1].
    EXPECT_LE(a[k] - a[k - 1], 2 * schedule.meanInterArrivalCycles - 1);
  }
  schedule.seed = 43;
  EXPECT_NE(cohortArrivalCycles(schedule, 16), a);
}

TEST(OpenWorkload, CohortsReportedPerTask) {
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, 3);
  const auto r =
      runExperiment(mix, SchedulerKind::DynamicLocality, openConfig());
  ASSERT_EQ(r.sim.cohorts.size(), 3u);  // one cohort per task
  std::size_t total = 0;
  for (std::size_t k = 0; k < r.sim.cohorts.size(); ++k) {
    const CohortStats& cohort = r.sim.cohorts[k];
    total += cohort.processCount;
    EXPECT_GE(cohort.completionCycle, cohort.arrivalCycle);
    EXPECT_GE(cohort.totalLatencyCycles, 0);
    EXPECT_EQ(cohort.retiredCount, 0u);  // no lifetime configured
    if (k > 0) {
      EXPECT_GT(cohort.arrivalCycle, r.sim.cohorts[k - 1].arrivalCycle);
    }
  }
  EXPECT_EQ(total, mix.graph.processCount());
  EXPECT_EQ(r.sim.retiredProcesses, 0u);
}

TEST(OpenWorkload, NoProcessStartsBeforeItsArrival) {
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, 3);
  const auto r = runExperiment(mix, SchedulerKind::Random, openConfig());
  for (const ProcessRunRecord& p : r.sim.processes) {
    EXPECT_GE(p.firstStartCycle, p.arrivalCycle) << "process " << p.id;
    EXPECT_GE(p.completionCycle, p.firstStartCycle);
  }
  // Later cohorts really arrive later than the first cohort's start.
  EXPECT_GT(r.sim.cohorts.back().arrivalCycle, 0);
}

TEST(OpenWorkload, DeterministicAcrossRuns) {
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, 2);
  const auto config = openConfig(50'000, 400'000);
  for (const SchedulerKind kind : openSchedulers()) {
    const auto a = runExperiment(mix, kind, config);
    const auto b = runExperiment(mix, kind, config);
    EXPECT_EQ(a.sim.makespanCycles, b.sim.makespanCycles)
        << to_string(kind);
    EXPECT_EQ(a.sim.dcacheTotal.misses, b.sim.dcacheTotal.misses)
        << to_string(kind);
    EXPECT_EQ(a.sim.retiredProcesses, b.sim.retiredProcesses)
        << to_string(kind);
  }
}

TEST(OpenWorkload, ArrivalSeedChangesTheSchedule) {
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, 3);
  auto config = openConfig(200'000);
  const auto a = runExperiment(mix, SchedulerKind::DynamicLocality, config);
  config.mpsoc.arrivals->seed = 7;
  const auto b = runExperiment(mix, SchedulerKind::DynamicLocality, config);
  // Different arrival cycles shift the whole simulation.
  EXPECT_NE(a.sim.cohorts[1].arrivalCycle, b.sim.cohorts[1].arrivalCycle);
}

TEST(OpenWorkload, LifetimeRetiresOverstayersAndReleasesDependents) {
  const auto suite = standardSuite();
  // A single task keeps the dependence structure interesting (stages),
  // and a tiny lifetime guarantees retirement.
  const Workload mix = concurrentScenario(suite, 1);
  const auto r = runExperiment(mix, SchedulerKind::Fcfs,
                               openConfig(100'000, 20'000));
  EXPECT_GT(r.sim.retiredProcesses, 0u);
  // Every process exits exactly once — retirement releases dependents,
  // so nothing deadlocks and nothing is left unfinished. (A retired
  // process that was *running* exits at its deadline; one that was
  // queued exits at its next pick, which can be later — both count.)
  for (const ProcessRunRecord& p : r.sim.processes) {
    EXPECT_GE(p.completionCycle, 0) << "process " << p.id;
    EXPECT_GE(p.completionCycle, p.arrivalCycle) << "process " << p.id;
  }
  ASSERT_FALSE(r.sim.cohorts.empty());
  std::size_t retired = 0;
  for (const auto& cohort : r.sim.cohorts) retired += cohort.retiredCount;
  EXPECT_EQ(retired, r.sim.retiredProcesses);
}

TEST(OpenWorkload, EveryPolicyKindSurvivesAnOpenWorkload) {
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, 2);
  const auto config = openConfig(80'000, 500'000);
  for (const SchedulerKind kind : kAllSchedulerKinds) {
    const auto r = runExperiment(mix, kind, config);
    EXPECT_GT(r.sim.makespanCycles, 0) << to_string(kind);
    for (const ProcessRunRecord& p : r.sim.processes) {
      EXPECT_GE(p.completionCycle, 0)
          << to_string(kind) << " stranded process " << p.id;
    }
  }
}

TEST(OpenWorkload, ClosedModeReportsNoCohorts) {
  const Application app = makeShape();
  const auto r = runExperiment(app.workload, SchedulerKind::Locality, {});
  EXPECT_TRUE(r.sim.cohorts.empty());
  EXPECT_EQ(r.sim.retiredProcesses, 0u);
  for (const ProcessRunRecord& p : r.sim.processes) {
    EXPECT_EQ(p.arrivalCycle, 0);
    EXPECT_FALSE(p.retired);
  }
}

TEST(OpenWorkload, DefaultKnobsReproduceTheCohortEngineEventForEvent) {
  // A config without any of the new knobs (granularity, distribution,
  // admission) must reproduce the original cohort engine exactly:
  // same per-process schedule records, same cohort stats, same caches.
  // The new fields default to the legacy semantics, so this pins the
  // whole event stream, not just aggregates.
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, 3);
  const auto config = openConfig(80'000, 500'000);
  ASSERT_EQ(config.mpsoc.arrivals->granularity, ArrivalGranularity::Cohort);
  ASSERT_EQ(config.mpsoc.arrivals->distribution, ArrivalDistribution::Uniform);
  ASSERT_EQ(config.mpsoc.admission.kind, AdmissionKind::AdmitAll);
  for (const SchedulerKind kind : openSchedulers()) {
    const auto r = runExperiment(mix, kind, config);
    // Legacy invariants: everything admitted, cohort members share
    // their cohort's arrival cycle from the legacy uniform stream.
    EXPECT_EQ(r.sim.rejectedProcesses, 0u) << to_string(kind);
    const auto arrivals = cohortArrivalCycles(*config.mpsoc.arrivals,
                                              r.sim.cohorts.size());
    for (std::size_t k = 0; k < r.sim.cohorts.size(); ++k) {
      EXPECT_EQ(r.sim.cohorts[k].arrivalCycle, arrivals[k]) << to_string(kind);
    }
    // Bit-identical reruns (the schedule pin above plus determinism
    // means the pre-extension engine is reproduced event for event; the
    // committed open_workload.csv baseline enforces the same at the
    // bench level).
    const auto again = runExperiment(mix, kind, config);
    for (std::size_t p = 0; p < r.sim.processes.size(); ++p) {
      EXPECT_EQ(r.sim.processes[p].arrivalCycle,
                again.sim.processes[p].arrivalCycle);
      EXPECT_EQ(r.sim.processes[p].firstStartCycle,
                again.sim.processes[p].firstStartCycle);
      EXPECT_EQ(r.sim.processes[p].completionCycle,
                again.sim.processes[p].completionCycle);
      EXPECT_EQ(r.sim.processes[p].segments, again.sim.processes[p].segments);
    }
  }
}

TEST(OpenWorkload, PerProcessArrivalsStreamIndividually) {
  const Workload service = makeServiceWorkload();
  ExperimentConfig config;
  config.mpsoc.arrivals.emplace();
  config.mpsoc.arrivals->meanInterArrivalCycles = 2'000;
  config.mpsoc.arrivals->granularity = ArrivalGranularity::PerProcess;
  const auto r = runExperiment(service, SchedulerKind::Fcfs, config);
  // Every process has its own arrival from the per-process stream...
  const auto arrivals = processArrivalCycles(*config.mpsoc.arrivals,
                                             service.graph.processCount());
  std::size_t distinct = 0;
  for (std::size_t p = 0; p < r.sim.processes.size(); ++p) {
    EXPECT_EQ(r.sim.processes[p].arrivalCycle, arrivals[p]);
    EXPECT_GE(r.sim.processes[p].firstStartCycle, arrivals[p]);
    if (p > 0 && arrivals[p] != arrivals[p - 1]) ++distinct;
  }
  EXPECT_GT(distinct, r.sim.processes.size() / 2);  // truly per-process
  // ...and a cohort's reported arrival is its first member's.
  for (const CohortStats& cohort : r.sim.cohorts) {
    std::int64_t first = std::numeric_limits<std::int64_t>::max();
    for (const ProcessRunRecord& p : r.sim.processes) {
      // Cohorts are tasks in first-appearance order; the service
      // workload numbers tasks densely, so index k is task k.
      if (service.graph.process(p.id).task == cohort.task) {
        first = std::min(first, p.arrivalCycle);
      }
    }
    EXPECT_EQ(cohort.arrivalCycle, first);
  }
}

TEST(OpenWorkload, SojournPercentilesMatchASortOracle) {
  // Differential test: the engine's exact percentile accounting vs a
  // naive sort-based oracle over the very same run records — per cohort
  // and globally, including ties and single-member cohorts.
  const auto naive = [](std::vector<std::int64_t> sojourns, int p) {
    // Count-based nearest-rank definition: the smallest value whose
    // cumulative count covers p percent of the samples.
    std::sort(sojourns.begin(), sojourns.end());
    const std::size_t n = sojourns.size();
    for (std::size_t i = 1; i <= n; ++i) {
      if (i * 100 >= static_cast<std::size_t>(p) * n) return sojourns[i - 1];
    }
    return sojourns[n - 1];
  };
  const Workload service = makeServiceWorkload();
  for (const std::int64_t lifetime : {std::int64_t{0}, std::int64_t{30'000}}) {
    ExperimentConfig config;
    config.mpsoc.arrivals.emplace();
    config.mpsoc.arrivals->meanInterArrivalCycles = 1'000;
    config.mpsoc.arrivals->granularity = ArrivalGranularity::PerProcess;
    config.mpsoc.arrivals->distribution = ArrivalDistribution::Exponential;
    if (lifetime > 0) config.mpsoc.arrivals->processLifetimeCycles = lifetime;
    const auto r = runExperiment(service, SchedulerKind::Random, config);
    if (lifetime > 0) {
      EXPECT_GT(r.sim.retiredProcesses, 0u);  // the all-retired-ish case
    }
    std::vector<std::int64_t> global;
    for (std::size_t k = 0; k < r.sim.cohorts.size(); ++k) {
      const CohortStats& cohort = r.sim.cohorts[k];
      std::vector<std::int64_t> sojourns;
      for (const ProcessRunRecord& p : r.sim.processes) {
        if (service.graph.process(p.id).task != cohort.task) continue;
        if (p.rejected) continue;
        sojourns.push_back(p.completionCycle - p.arrivalCycle);
      }
      ASSERT_EQ(cohort.sojourn.samples, sojourns.size());
      if (sojourns.empty()) continue;
      EXPECT_EQ(cohort.sojourn.p50, naive(sojourns, 50)) << "cohort " << k;
      EXPECT_EQ(cohort.sojourn.p95, naive(sojourns, 95)) << "cohort " << k;
      EXPECT_EQ(cohort.sojourn.p99, naive(sojourns, 99)) << "cohort " << k;
      global.insert(global.end(), sojourns.begin(), sojourns.end());
    }
    ASSERT_EQ(r.sim.sojourn.samples, global.size());
    EXPECT_EQ(r.sim.sojourn.p50, naive(global, 50));
    EXPECT_EQ(r.sim.sojourn.p95, naive(global, 95));
    EXPECT_EQ(r.sim.sojourn.p99, naive(global, 99));
    EXPECT_LE(r.sim.sojourn.p50, r.sim.sojourn.p95);
    EXPECT_LE(r.sim.sojourn.p95, r.sim.sojourn.p99);
  }
}

TEST(OpenWorkload, ClosedModeReportsNoSojournPercentiles) {
  const Application app = makeShape();
  const auto r = runExperiment(app.workload, SchedulerKind::Fcfs, {});
  EXPECT_EQ(r.sim.sojourn.samples, 0u);
  EXPECT_EQ(r.sim.sojourn.p50, 0);
  EXPECT_EQ(r.sim.sojourn.p99, 0);
}

TEST(OpenWorkload, PerProcessHeavyTailSurvivesEveryOpenScheduler) {
  const Workload service = makeServiceWorkload();
  ExperimentConfig config;
  config.mpsoc.arrivals.emplace();
  config.mpsoc.arrivals->meanInterArrivalCycles = 600;
  config.mpsoc.arrivals->granularity = ArrivalGranularity::PerProcess;
  config.mpsoc.arrivals->distribution = ArrivalDistribution::BoundedPareto;
  config.mpsoc.arrivals->processLifetimeCycles = 120'000;
  for (const SchedulerKind kind : openSchedulers()) {
    const auto r = runExperiment(service, kind, config);
    for (const ProcessRunRecord& p : r.sim.processes) {
      EXPECT_GE(p.completionCycle, 0)
          << to_string(kind) << " stranded process " << p.id;
    }
    EXPECT_EQ(r.sim.sojourn.samples, r.sim.processes.size());
  }
}

TEST(OpenWorkload, PreemptivePolicyComposesWithLifetimes) {
  // RRS quanta and lifetime deadlines both cut segments; the shorter
  // one must win each time and retirement still be exact.
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, 2);
  const auto r = runExperiment(mix, SchedulerKind::RoundRobin,
                               openConfig(60'000, 150'000));
  EXPECT_GT(r.sim.preemptions, 0u);
  EXPECT_GT(r.sim.retiredProcesses, 0u);
  for (const ProcessRunRecord& p : r.sim.processes) {
    EXPECT_GE(p.completionCycle, 0);
  }
}

}  // namespace
}  // namespace laps

/// \file open_workload_test.cpp
/// \brief The open-workload engine: seeded arrival schedules, cohort
/// admission, lifetime retirement, and determinism.

#include <gtest/gtest.h>

#include "core/laps.h"

namespace laps {
namespace {

ExperimentConfig openConfig(std::int64_t meanInterArrival = 100'000,
                            std::optional<std::int64_t> lifetime = {}) {
  ExperimentConfig config;
  config.mpsoc.arrivals.emplace();
  config.mpsoc.arrivals->meanInterArrivalCycles = meanInterArrival;
  config.mpsoc.arrivals->processLifetimeCycles = lifetime;
  return config;
}

TEST(ArrivalSchedule, ValidatesParameters) {
  ArrivalSchedule schedule;
  schedule.meanInterArrivalCycles = 0;
  EXPECT_THROW(schedule.validate(), Error);
  schedule.meanInterArrivalCycles = 100;
  schedule.processLifetimeCycles = 0;
  EXPECT_THROW(schedule.validate(), Error);
  schedule.processLifetimeCycles = 1;
  schedule.validate();
}

TEST(ArrivalSchedule, SeededCohortCyclesAreDeterministicAndIncreasing) {
  ArrivalSchedule schedule;
  schedule.seed = 42;
  schedule.meanInterArrivalCycles = 10'000;
  const auto a = cohortArrivalCycles(schedule, 16);
  const auto b = cohortArrivalCycles(schedule, 16);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 16u);
  EXPECT_EQ(a[0], 0);  // the first cohort starts the simulation
  for (std::size_t k = 1; k < a.size(); ++k) {
    EXPECT_GT(a[k], a[k - 1]);
    // Uniform on [1, 2*mean - 1].
    EXPECT_LE(a[k] - a[k - 1], 2 * schedule.meanInterArrivalCycles - 1);
  }
  schedule.seed = 43;
  EXPECT_NE(cohortArrivalCycles(schedule, 16), a);
}

TEST(OpenWorkload, CohortsReportedPerTask) {
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, 3);
  const auto r =
      runExperiment(mix, SchedulerKind::DynamicLocality, openConfig());
  ASSERT_EQ(r.sim.cohorts.size(), 3u);  // one cohort per task
  std::size_t total = 0;
  for (std::size_t k = 0; k < r.sim.cohorts.size(); ++k) {
    const CohortStats& cohort = r.sim.cohorts[k];
    total += cohort.processCount;
    EXPECT_GE(cohort.completionCycle, cohort.arrivalCycle);
    EXPECT_GE(cohort.totalLatencyCycles, 0);
    EXPECT_EQ(cohort.retiredCount, 0u);  // no lifetime configured
    if (k > 0) {
      EXPECT_GT(cohort.arrivalCycle, r.sim.cohorts[k - 1].arrivalCycle);
    }
  }
  EXPECT_EQ(total, mix.graph.processCount());
  EXPECT_EQ(r.sim.retiredProcesses, 0u);
}

TEST(OpenWorkload, NoProcessStartsBeforeItsArrival) {
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, 3);
  const auto r = runExperiment(mix, SchedulerKind::Random, openConfig());
  for (const ProcessRunRecord& p : r.sim.processes) {
    EXPECT_GE(p.firstStartCycle, p.arrivalCycle) << "process " << p.id;
    EXPECT_GE(p.completionCycle, p.firstStartCycle);
  }
  // Later cohorts really arrive later than the first cohort's start.
  EXPECT_GT(r.sim.cohorts.back().arrivalCycle, 0);
}

TEST(OpenWorkload, DeterministicAcrossRuns) {
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, 2);
  const auto config = openConfig(50'000, 400'000);
  for (const SchedulerKind kind : openSchedulers()) {
    const auto a = runExperiment(mix, kind, config);
    const auto b = runExperiment(mix, kind, config);
    EXPECT_EQ(a.sim.makespanCycles, b.sim.makespanCycles)
        << to_string(kind);
    EXPECT_EQ(a.sim.dcacheTotal.misses, b.sim.dcacheTotal.misses)
        << to_string(kind);
    EXPECT_EQ(a.sim.retiredProcesses, b.sim.retiredProcesses)
        << to_string(kind);
  }
}

TEST(OpenWorkload, ArrivalSeedChangesTheSchedule) {
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, 3);
  auto config = openConfig(200'000);
  const auto a = runExperiment(mix, SchedulerKind::DynamicLocality, config);
  config.mpsoc.arrivals->seed = 7;
  const auto b = runExperiment(mix, SchedulerKind::DynamicLocality, config);
  // Different arrival cycles shift the whole simulation.
  EXPECT_NE(a.sim.cohorts[1].arrivalCycle, b.sim.cohorts[1].arrivalCycle);
}

TEST(OpenWorkload, LifetimeRetiresOverstayersAndReleasesDependents) {
  const auto suite = standardSuite();
  // A single task keeps the dependence structure interesting (stages),
  // and a tiny lifetime guarantees retirement.
  const Workload mix = concurrentScenario(suite, 1);
  const auto r = runExperiment(mix, SchedulerKind::Fcfs,
                               openConfig(100'000, 20'000));
  EXPECT_GT(r.sim.retiredProcesses, 0u);
  // Every process exits exactly once — retirement releases dependents,
  // so nothing deadlocks and nothing is left unfinished. (A retired
  // process that was *running* exits at its deadline; one that was
  // queued exits at its next pick, which can be later — both count.)
  for (const ProcessRunRecord& p : r.sim.processes) {
    EXPECT_GE(p.completionCycle, 0) << "process " << p.id;
    EXPECT_GE(p.completionCycle, p.arrivalCycle) << "process " << p.id;
  }
  ASSERT_FALSE(r.sim.cohorts.empty());
  std::size_t retired = 0;
  for (const auto& cohort : r.sim.cohorts) retired += cohort.retiredCount;
  EXPECT_EQ(retired, r.sim.retiredProcesses);
}

TEST(OpenWorkload, EveryPolicyKindSurvivesAnOpenWorkload) {
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, 2);
  const auto config = openConfig(80'000, 500'000);
  for (const SchedulerKind kind : kAllSchedulerKinds) {
    const auto r = runExperiment(mix, kind, config);
    EXPECT_GT(r.sim.makespanCycles, 0) << to_string(kind);
    for (const ProcessRunRecord& p : r.sim.processes) {
      EXPECT_GE(p.completionCycle, 0)
          << to_string(kind) << " stranded process " << p.id;
    }
  }
}

TEST(OpenWorkload, ClosedModeReportsNoCohorts) {
  const Application app = makeShape();
  const auto r = runExperiment(app.workload, SchedulerKind::Locality, {});
  EXPECT_TRUE(r.sim.cohorts.empty());
  EXPECT_EQ(r.sim.retiredProcesses, 0u);
  for (const ProcessRunRecord& p : r.sim.processes) {
    EXPECT_EQ(p.arrivalCycle, 0);
    EXPECT_FALSE(p.retired);
  }
}

TEST(OpenWorkload, PreemptivePolicyComposesWithLifetimes) {
  // RRS quanta and lifetime deadlines both cut segments; the shorter
  // one must win each time and retirement still be exact.
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, 2);
  const auto r = runExperiment(mix, SchedulerKind::RoundRobin,
                               openConfig(60'000, 150'000));
  EXPECT_GT(r.sim.preemptions, 0u);
  EXPECT_GT(r.sim.retiredProcesses, 0u);
  for (const ProcessRunRecord& p : r.sim.processes) {
    EXPECT_GE(p.completionCycle, 0);
  }
}

}  // namespace
}  // namespace laps

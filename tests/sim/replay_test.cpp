/// \file replay_test.cpp
/// \brief Differential tests: run-length replay must produce SimResults
/// bit-identical to per-event replay — same makespan, cache statistics,
/// miss classification, preemption points and per-process records — on
/// synthetic stress workloads and on the paper's standard suite under all
/// four paper schedulers.

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "layout/transform.h"
#include "sched/basic.h"
#include "sim/engine.h"

namespace laps {
namespace {

void expectStatsEqual(const CacheStats& a, const CacheStats& b,
                      const char* what) {
  EXPECT_EQ(a.accesses, b.accesses) << what;
  EXPECT_EQ(a.hits, b.hits) << what;
  EXPECT_EQ(a.misses, b.misses) << what;
  EXPECT_EQ(a.evictions, b.evictions) << what;
  EXPECT_EQ(a.dirtyEvictions, b.dirtyEvictions) << what;
  EXPECT_EQ(a.invalidations, b.invalidations) << what;
}

void expectIdentical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.makespanCycles, b.makespanCycles);
  EXPECT_EQ(a.seconds, b.seconds);
  expectStatsEqual(a.dcacheTotal, b.dcacheTotal, "dcache");
  expectStatsEqual(a.icacheTotal, b.icacheTotal, "icache");
  EXPECT_EQ(a.dataMisses.compulsory, b.dataMisses.compulsory);
  EXPECT_EQ(a.dataMisses.capacity, b.dataMisses.capacity);
  EXPECT_EQ(a.dataMisses.conflict, b.dataMisses.conflict);
  EXPECT_EQ(a.contextSwitches, b.contextSwitches);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.switchOverheadCycles, b.switchOverheadCycles);
  EXPECT_EQ(a.sharedL2Enabled, b.sharedL2Enabled);
  expectStatsEqual(a.l2Total, b.l2Total, "l2");
  EXPECT_EQ(a.l2BankWaitCycles, b.l2BankWaitCycles);
  EXPECT_EQ(a.inclusionWritebacks, b.inclusionWritebacks);
  EXPECT_EQ(a.busTransactions, b.busTransactions);
  EXPECT_EQ(a.busWaitCycles, b.busWaitCycles);
  EXPECT_EQ(a.coreBusyCycles, b.coreBusyCycles);
  EXPECT_EQ(a.coreIdleCycles, b.coreIdleCycles);
  ASSERT_EQ(a.processes.size(), b.processes.size());
  for (std::size_t p = 0; p < a.processes.size(); ++p) {
    EXPECT_EQ(a.processes[p].firstStartCycle, b.processes[p].firstStartCycle)
        << "process " << p;
    EXPECT_EQ(a.processes[p].completionCycle, b.processes[p].completionCycle)
        << "process " << p;
    EXPECT_EQ(a.processes[p].lastCore, b.processes[p].lastCore)
        << "process " << p;
    EXPECT_EQ(a.processes[p].segments, b.processes[p].segments)
        << "process " << p;
  }
}

/// A stress workload exercising every run shape: single-stream sweeps,
/// multi-access iterations (read + write + loop-invariant scalar),
/// transposed (line-jumping) strides, reversed (negative-stride) sweeps,
/// pure-compute nests, multiple nests per process, and dependences.
struct StressRig {
  Workload workload;
  ArrayId a, b, c;

  StressRig() {
    a = workload.arrays.add("A", {64, 64}, 4);
    b = workload.arrays.add("B", {64, 64}, 4);
    c = workload.arrays.add("C", {256}, 4);
  }

  ProcessId addStream(std::int64_t lo, std::int64_t hi) {
    ProcessSpec p;
    p.name = "stream";
    p.nests.push_back(LoopNest{
        IterationSpace::box({{lo, hi}}),
        {ArrayAccess{c, AffineMap{AffineExpr({1}, 0)}, AccessKind::Read}},
        1});
    return workload.graph.addProcess(std::move(p));
  }

  ProcessId addMulAdd(std::int64_t rowLo, std::int64_t rowHi) {
    ProcessSpec p;
    p.name = "muladd";
    // (i, j): B[i][j] += A[i][j] * C[i]  — stride-4 read, stride-4 write,
    // loop-invariant (stride-0) read.
    p.nests.push_back(LoopNest{
        IterationSpace::box({{rowLo, rowHi}, {0, 64}}),
        {ArrayAccess{a, AffineMap{AffineExpr({1, 0}, 0), AffineExpr({0, 1}, 0)},
                     AccessKind::Read},
         ArrayAccess{c, AffineMap{AffineExpr({1, 0}, 0)}, AccessKind::Read},
         ArrayAccess{b, AffineMap{AffineExpr({1, 0}, 0), AffineExpr({0, 1}, 0)},
                     AccessKind::Write}},
        2});
    // Transposed sweep: A[j][i] — 256-byte stride jumps a line every step.
    p.nests.push_back(LoopNest{
        IterationSpace::box({{rowLo, rowHi}, {0, 64}}),
        {ArrayAccess{a, AffineMap{AffineExpr({0, 1}, 0), AffineExpr({1, 0}, 0)},
                     AccessKind::Read}},
        1});
    // Pure compute.
    p.nests.push_back(LoopNest{IterationSpace::box({{0, 500}}), {}, 3});
    return workload.graph.addProcess(std::move(p));
  }

  ProcessId addReversed() {
    ProcessSpec p;
    p.name = "reversed";
    // C[255 - i]: negative stride.
    p.nests.push_back(LoopNest{
        IterationSpace::box({{0, 256}}),
        {ArrayAccess{c, AffineMap{AffineExpr({-1}, 255)}, AccessKind::Write}},
        1});
    return workload.graph.addProcess(std::move(p));
  }

  SimResult run(SchedulerPolicy& policy, MpsocConfig cfg, ReplayMode mode,
                const AddressSpace* spaceOverride = nullptr) {
    cfg.replayMode = mode;
    const AddressSpace defaultSpace(workload.arrays);
    const AddressSpace& space = spaceOverride ? *spaceOverride : defaultSpace;
    const SharingMatrix sharing = SharingMatrix::compute(workload.footprints());
    MpsocSimulator sim(workload, space, sharing, policy, cfg);
    return sim.run();
  }
};

MpsocConfig stressConfig(std::size_t cores) {
  MpsocConfig cfg;
  cfg.coreCount = cores;
  cfg.memory.l1d = CacheConfig{1024, 2, 32, 2};
  cfg.memory.l1i = CacheConfig{1024, 2, 32, 2};
  cfg.memory.modelICache = true;
  cfg.memory.classifyMisses = true;
  cfg.switchCycles = 400;
  return cfg;
}

TEST(RunLengthReplay, StressWorkloadNonPreemptive) {
  StressRig rig;
  const auto s1 = rig.addStream(0, 200);
  rig.addMulAdd(0, 16);
  rig.addMulAdd(16, 32);
  const auto rev = rig.addReversed();
  rig.workload.graph.addDependence(s1, rev);
  FcfsScheduler pe;
  FcfsScheduler rl;
  expectIdentical(rig.run(pe, stressConfig(2), ReplayMode::PerEvent),
                  rig.run(rl, stressConfig(2), ReplayMode::RunLength));
}

TEST(RunLengthReplay, StressWorkloadSmallQuantum) {
  // A tiny quantum forces mid-run and mid-iteration splits everywhere.
  for (const std::int64_t quantum : {7, 100, 1000}) {
    StressRig rig;
    rig.addStream(0, 200);
    rig.addMulAdd(0, 16);
    rig.addMulAdd(8, 24);  // overlapping rows: cross-process reuse
    rig.addReversed();
    RoundRobinScheduler pe(quantum);
    RoundRobinScheduler rl(quantum);
    expectIdentical(rig.run(pe, stressConfig(2), ReplayMode::PerEvent),
                    rig.run(rl, stressConfig(2), ReplayMode::RunLength));
  }
}

TEST(RunLengthReplay, QuantumScanKeepsMissClassificationIdentical) {
  // Regression: a quantum that splits a bulk chunk mid-iteration
  // (takeExtra > 0) must leave the classifier's shadow LRU in the exact
  // per-event rotation, or later capacity-vs-conflict decisions diverge
  // once interleaved processes partially evict the shadow's MRU block.
  // Scan a quantum range dense enough to hit many split phases.
  for (std::int64_t quantum = 20; quantum <= 2040; quantum += 101) {
    StressRig rig;
    rig.addMulAdd(0, 16);
    rig.addMulAdd(8, 24);
    rig.addMulAdd(16, 32);
    RoundRobinScheduler pe(quantum);
    RoundRobinScheduler rl(quantum);
    SCOPED_TRACE(quantum);
    expectIdentical(rig.run(pe, stressConfig(1), ReplayMode::PerEvent),
                    rig.run(rl, stressConfig(1), ReplayMode::RunLength));
  }
}

TEST(RunLengthReplay, FlushOnSwitch) {
  StressRig rig;
  rig.addStream(0, 256);
  rig.addMulAdd(0, 8);
  rig.addReversed();
  MpsocConfig cfg = stressConfig(1);
  cfg.flushOnSwitch = true;
  RoundRobinScheduler pe(500);
  RoundRobinScheduler rl(500);
  expectIdentical(rig.run(pe, cfg, ReplayMode::PerEvent),
                  rig.run(rl, cfg, ReplayMode::RunLength));
}

TEST(RunLengthReplay, InterleavedLayoutTransform) {
  // A re-laid-out array's addressing is only piecewise affine; runs must
  // be clipped at the half-page chunk boundaries the transform introduces.
  StressRig rig;
  rig.addStream(0, 256);
  rig.addMulAdd(0, 16);
  const MpsocConfig cfg = stressConfig(2);
  AddressSpace space(rig.workload.arrays);
  const std::int64_t page = cfg.memory.l1d.cachePageBytes();
  space.setTransform(rig.c, LayoutTransform::interleave(page, 0));
  space.setTransform(rig.a, LayoutTransform::interleave(page, page / 2));
  FcfsScheduler pe;
  FcfsScheduler rl;
  expectIdentical(rig.run(pe, cfg, ReplayMode::PerEvent, &space),
                  rig.run(rl, cfg, ReplayMode::RunLength, &space));
}

MpsocConfig contendedConfig(std::size_t cores) {
  MpsocConfig cfg = stressConfig(cores);
  SharedL2Config l2;
  l2.sizeBytes = 4096;
  l2.assoc = 2;
  l2.lineBytes = 32;
  l2.bankCount = 4;
  cfg.sharedL2 = l2;
  BusConfig bus;
  bus.maxOutstanding = 2;
  cfg.bus = bus;
  return cfg;
}

TEST(RunLengthReplay, ContendedHierarchyNonPreemptive) {
  // Bulk-committed steps are guaranteed L1 hits and never touch the
  // shared levels, so the replay modes must stay bit-identical even when
  // miss latency depends on the absolute cycle (shared L2 + bounded bus).
  StressRig rig;
  const auto s1 = rig.addStream(0, 200);
  rig.addMulAdd(0, 16);
  rig.addMulAdd(16, 32);
  const auto rev = rig.addReversed();
  rig.workload.graph.addDependence(s1, rev);
  FcfsScheduler pe;
  FcfsScheduler rl;
  expectIdentical(rig.run(pe, contendedConfig(2), ReplayMode::PerEvent),
                  rig.run(rl, contendedConfig(2), ReplayMode::RunLength));
}

TEST(RunLengthReplay, ContendedHierarchySmallQuantum) {
  for (const std::int64_t quantum : {7, 100, 1000}) {
    StressRig rig;
    rig.addStream(0, 200);
    rig.addMulAdd(0, 16);
    rig.addMulAdd(8, 24);
    rig.addReversed();
    RoundRobinScheduler pe(quantum);
    RoundRobinScheduler rl(quantum);
    SCOPED_TRACE(quantum);
    expectIdentical(rig.run(pe, contendedConfig(2), ReplayMode::PerEvent),
                    rig.run(rl, contendedConfig(2), ReplayMode::RunLength));
  }
}

TEST(RunLengthReplay, ContendedSuitePaperSchedulers) {
  // The contention acceptance gate: L2 + bounded bus enabled, every
  // paper scheduler, both replay modes bit-identical on a suite mix.
  const auto suite = standardSuite(AppParams{0.25});
  const Workload mix = concurrentScenario(suite, 3);
  for (const SchedulerKind kind : paperSchedulers()) {
    ExperimentConfig config;
    config.mpsoc.sharedL2.emplace();
    config.mpsoc.bus.emplace();
    config.mpsoc.memory.classifyMisses = true;
    config.sched.rrsQuantumCycles = 2'000;
    config.mpsoc.replayMode = ReplayMode::PerEvent;
    const ExperimentResult perEvent = runExperiment(mix, kind, config);
    config.mpsoc.replayMode = ReplayMode::RunLength;
    const ExperimentResult runLength = runExperiment(mix, kind, config);
    SCOPED_TRACE("scheduler " + perEvent.schedulerName);
    expectIdentical(perEvent.sim, runLength.sim);
    EXPECT_EQ(perEvent.energyMj, runLength.energyMj);
    EXPECT_TRUE(perEvent.sim.sharedL2Enabled);
    EXPECT_GT(perEvent.sim.l2Total.accesses, 0u);
  }
}

TEST(RunLengthReplay, StandardSuitePaperSchedulers) {
  // The acceptance gate: every paper scheduler (RS, RRS, LS, LSM — the
  // last including the Fig. 4/5 re-layout pipeline) must produce
  // bit-identical results in both replay modes on suite mixes.
  const auto suite = standardSuite(AppParams{0.5});
  for (const std::size_t t : {std::size_t{1}, std::size_t{3},
                              std::size_t{6}}) {
    const Workload mix = concurrentScenario(suite, t);
    for (const SchedulerKind kind : paperSchedulers()) {
      ExperimentConfig config;
      config.mpsoc.memory.classifyMisses = true;
      config.sched.rrsQuantumCycles = 2'000;  // stress mid-run splits
      config.mpsoc.replayMode = ReplayMode::PerEvent;
      const ExperimentResult perEvent = runExperiment(mix, kind, config);
      config.mpsoc.replayMode = ReplayMode::RunLength;
      const ExperimentResult runLength = runExperiment(mix, kind, config);
      SCOPED_TRACE("scheduler " + perEvent.schedulerName + " |T|=" +
                   std::to_string(t));
      expectIdentical(perEvent.sim, runLength.sim);
      EXPECT_EQ(perEvent.energyMj, runLength.energyMj);
      EXPECT_EQ(perEvent.relayoutedArrays, runLength.relayoutedArrays);
    }
  }
}

}  // namespace
}  // namespace laps

/// \file fault_test.cpp
/// \brief Fault injection and fault-tolerant scheduling (docs §13):
/// FaultPlan validation, seeded timelines, retry/backoff arithmetic,
/// engine crash/outage/failure semantics, the failure-storm property
/// test, and the liveness of the compiled-in fault audit checkers.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/laps.h"
#include "util/audit.h"
#include "util/parallel.h"

namespace laps {
namespace {

/// Restores the default analysis thread count on scope exit.
class ThreadCountGuard {
 public:
  ~ThreadCountGuard() { setParallelThreadCount(0); }
};

ExperimentConfig serviceConfig(std::int64_t meanInterArrival) {
  ExperimentConfig config;
  config.mpsoc.arrivals.emplace();
  config.mpsoc.arrivals->meanInterArrivalCycles = meanInterArrival;
  config.mpsoc.arrivals->granularity = ArrivalGranularity::PerProcess;
  config.mpsoc.arrivals->distribution = ArrivalDistribution::Exponential;
  return config;
}

TEST(FaultPlan, ValidatesParameters) {
  FaultPlan plan;
  plan.validate();  // all-disabled default is valid (and inert)
  EXPECT_FALSE(plan.enabled());

  plan.meanCrashCycles = -1;
  EXPECT_THROW(plan.validate(), Error);
  plan.meanCrashCycles = 0;

  plan.meanCoreOutageCycles = 1000;
  plan.outageDownCycles = 0;  // outages enabled need a positive duration
  EXPECT_THROW(plan.validate(), Error);
  plan.outageDownCycles = 500;
  plan.validate();
  EXPECT_TRUE(plan.enabled());

  plan.migrationPenaltyCycles = -1;
  EXPECT_THROW(plan.validate(), Error);
  plan.migrationPenaltyCycles = 0;

  plan.retry.backoffBaseCycles = 0;
  EXPECT_THROW(plan.validate(), Error);
  plan.retry.backoffBaseCycles = 4000;
  plan.retry.backoffCapCycles = 3999;  // cap below base
  EXPECT_THROW(plan.validate(), Error);
  plan.retry.backoffCapCycles = 4000;
  plan.retry.backoffJitterCycles = -1;
  EXPECT_THROW(plan.validate(), Error);
  plan.retry.backoffJitterCycles = 0;
  plan.validate();
}

TEST(RetryPolicy, BackoffDoublesUpToTheCap) {
  RetryPolicy policy;
  policy.backoffBaseCycles = 1000;
  policy.backoffCapCycles = 6000;
  policy.backoffJitterCycles = 0;
  Rng rng(1);
  EXPECT_EQ(retryBackoffCycles(policy, 1, rng), 1000);
  EXPECT_EQ(retryBackoffCycles(policy, 2, rng), 2000);
  EXPECT_EQ(retryBackoffCycles(policy, 3, rng), 4000);
  EXPECT_EQ(retryBackoffCycles(policy, 4, rng), 6000);   // capped
  EXPECT_EQ(retryBackoffCycles(policy, 30, rng), 6000);  // stays capped
  EXPECT_THROW((void)retryBackoffCycles(policy, 0, rng), Error);  // 1-based
  // Jitter-free backoff consumed no randomness: the stream is untouched.
  Rng fresh(1);
  EXPECT_EQ(rng(), fresh());
}

TEST(RetryPolicy, JitterIsBoundedAndSeeded) {
  RetryPolicy policy;
  policy.backoffBaseCycles = 1000;
  policy.backoffCapCycles = 1000;
  policy.backoffJitterCycles = 64;
  Rng a(7);
  Rng b(7);
  for (int k = 0; k < 32; ++k) {
    const std::int64_t delay = retryBackoffCycles(policy, 1, a);
    EXPECT_GE(delay, 1000);
    EXPECT_LE(delay, 1064);
    EXPECT_EQ(delay, retryBackoffCycles(policy, 1, b));  // same stream
  }
}

TEST(FaultStream, SubStreamSeedsAreDistinctAndStable) {
  const FaultStream streams[] = {
      FaultStream::FailureGaps, FaultStream::OutageGaps,
      FaultStream::CrashGaps, FaultStream::Targets, FaultStream::RetryJitter};
  std::vector<std::uint64_t> seeds;
  for (const FaultStream s : streams) {
    seeds.push_back(faultStreamSeed(99, s));
    EXPECT_EQ(seeds.back(), faultStreamSeed(99, s));  // pure
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
  EXPECT_NE(faultStreamSeed(99, FaultStream::Targets),
            faultStreamSeed(100, FaultStream::Targets));
}

TEST(FaultTimeline, RequiresAnEnabledPlan) {
  EXPECT_THROW(FaultTimeline{FaultPlan{}}, Error);
}

TEST(FaultTimeline, MergesClassStreamsWithoutCrossTalk) {
  // The documented independence: enabling one class never shifts the
  // draws of another. The merged timeline's per-class subsequence must
  // equal the solo-class timeline of the same plan seed.
  FaultPlan merged;
  merged.seed = 5;
  merged.meanCoreFailureCycles = 40'000;
  merged.meanCrashCycles = 15'000;
  FaultPlan crashOnly;
  crashOnly.seed = 5;
  crashOnly.meanCrashCycles = 15'000;

  FaultTimeline both(merged);
  FaultTimeline solo(crashOnly);
  std::int64_t last = 0;
  int crashesSeen = 0;
  for (int k = 0; k < 64; ++k) {
    const FaultEvent event = both.pop();
    EXPECT_GE(event.cycle, last);  // nondecreasing merge
    last = event.cycle;
    if (event.kind == FaultClass::ProcessCrash) {
      const FaultEvent ref = solo.pop();
      EXPECT_EQ(event.cycle, ref.cycle);
      ++crashesSeen;
    }
  }
  EXPECT_GT(crashesSeen, 16);  // the 15k stream dominates the merge

  // And the whole merged sequence is reproducible.
  FaultTimeline again(merged);
  FaultTimeline reference(merged);
  for (int k = 0; k < 32; ++k) {
    const FaultEvent a = again.pop();
    const FaultEvent b = reference.pop();
    EXPECT_EQ(a.cycle, b.cycle);
    EXPECT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind));
  }
}

TEST(FaultInjection, RequiresAnOpenWorkload) {
  const Application app = makeShape();
  ExperimentConfig config;  // closed: no arrival schedule
  config.mpsoc.faults.emplace();
  config.mpsoc.faults->meanCrashCycles = 10'000;
  EXPECT_THROW(runExperiment(app.workload, SchedulerKind::Fcfs, config),
               Error);
}

TEST(FaultInjection, DisabledPlanIsBitIdenticalToFaultFree) {
  // The bit-identity contract behind every committed baseline: a
  // FaultPlan with every rate zero must leave the engine on the exact
  // fault-free code path.
  const Workload service = makeServiceWorkload();
  auto config = serviceConfig(2'000);
  const auto plain = runExperiment(service, SchedulerKind::DynamicLocality,
                                   config);
  config.mpsoc.faults.emplace();  // configured, every mean zero
  const auto inert = runExperiment(service, SchedulerKind::DynamicLocality,
                                   config);
  EXPECT_EQ(plain.sim.makespanCycles, inert.sim.makespanCycles);
  EXPECT_EQ(plain.sim.dcacheTotal.misses, inert.sim.dcacheTotal.misses);
  EXPECT_EQ(plain.sim.contextSwitches, inert.sim.contextSwitches);
  EXPECT_EQ(plain.sim.faults.processCrashes, 0u);
  ASSERT_EQ(plain.sim.processes.size(), inert.sim.processes.size());
  for (std::size_t p = 0; p < plain.sim.processes.size(); ++p) {
    EXPECT_EQ(plain.sim.processes[p].firstStartCycle,
              inert.sim.processes[p].firstStartCycle);
    EXPECT_EQ(plain.sim.processes[p].completionCycle,
              inert.sim.processes[p].completionCycle);
    EXPECT_EQ(plain.sim.processes[p].segments, inert.sim.processes[p].segments);
  }
}

TEST(FaultInjection, CrashedProcessesRetryAndKeepTheirOriginalArrival) {
  const Workload service = makeServiceWorkload();
  auto config = serviceConfig(2'000);
  config.mpsoc.faults.emplace();
  config.mpsoc.faults->seed = 3;
  config.mpsoc.faults->meanCrashCycles = 25'000;
  config.mpsoc.faults->retry.maxAttempts = 16;  // ample budget
  const auto r = runExperiment(service, SchedulerKind::Fcfs, config);
  const SimResult& sim = r.sim;
  EXPECT_GT(sim.faults.processCrashes, 0u);
  EXPECT_EQ(sim.faults.retriesScheduled, sim.faults.processCrashes);
  EXPECT_EQ(sim.faults.failedProcesses, 0u);
  EXPECT_EQ(sim.completedProcesses(), sim.processes.size());
  // Sojourn is measured from the ORIGINAL arrival — a crash cannot
  // launder SLO time — so the records keep the seeded arrival cycles.
  const auto arrivals = processArrivalCycles(*config.mpsoc.arrivals,
                                             service.graph.processCount());
  std::uint64_t recordedCrashes = 0;
  for (const ProcessRunRecord& p : sim.processes) {
    EXPECT_EQ(p.arrivalCycle, arrivals[p.id]);
    EXPECT_FALSE(p.failed);
    EXPECT_GE(p.completionCycle, p.arrivalCycle);
    recordedCrashes += p.crashes;
  }
  EXPECT_EQ(recordedCrashes, sim.faults.processCrashes);
  EXPECT_EQ(sim.sojourn.samples, sim.processes.size());
}

TEST(FaultInjection, ExhaustedRetryBudgetPermanentlyFails) {
  const Workload service = makeServiceWorkload();
  auto config = serviceConfig(2'000);
  config.mpsoc.faults.emplace();
  config.mpsoc.faults->seed = 3;
  config.mpsoc.faults->meanCrashCycles = 15'000;
  config.mpsoc.faults->retry.maxAttempts = 0;  // first crash is fatal
  const auto r = runExperiment(service, SchedulerKind::Fcfs, config);
  const SimResult& sim = r.sim;
  EXPECT_GT(sim.faults.processCrashes, 0u);
  EXPECT_EQ(sim.faults.retriesScheduled, 0u);
  EXPECT_EQ(sim.faults.failedProcesses, sim.faults.processCrashes);
  std::size_t failedRecords = 0;
  for (const ProcessRunRecord& p : sim.processes) {
    if (p.failed) {
      ++failedRecords;
      EXPECT_EQ(p.crashes, 1u);
      EXPECT_GE(p.completionCycle, p.arrivalCycle);  // the failure cycle
    }
  }
  EXPECT_EQ(failedRecords, sim.faults.failedProcesses);
  // Failed processes never sojourned; the percentiles exclude them.
  EXPECT_EQ(sim.sojourn.samples, sim.processes.size() - failedRecords);
  std::size_t cohortFailed = 0;
  for (const CohortStats& cohort : sim.cohorts) {
    cohortFailed += cohort.failedCount;
  }
  EXPECT_EQ(cohortFailed, failedRecords);
}

TEST(FaultInjection, MigrationPenaltyAccountingIsExact) {
  // Transient outages displace running work; every displaced resume
  // charges exactly migrationPenaltyCycles on the flat hierarchy (no
  // shared L2, so no re-warm term). RRS's quanta keep segments short,
  // so boundary displacement finds unfinished processes to migrate.
  const Workload service = makeServiceWorkload();
  auto config = serviceConfig(1'000);
  config.mpsoc.faults.emplace();
  config.mpsoc.faults->seed = 2;
  config.mpsoc.faults->meanCoreOutageCycles = 30'000;
  config.mpsoc.faults->outageDownCycles = 10'000;
  config.mpsoc.faults->migrationPenaltyCycles = 3'000;
  config.mpsoc.faults->l2RewarmPenaltyCycles = 7'777;  // must NOT apply
  const auto r = runExperiment(service, SchedulerKind::RoundRobin, config);
  const SimResult& sim = r.sim;
  EXPECT_GT(sim.faults.coreOutages, 0u);
  EXPECT_GT(sim.faults.faultMigrations, 0u);
  EXPECT_EQ(sim.faults.migrationPenaltyCycles,
            sim.faults.faultMigrations * 3'000u);
  EXPECT_GT(sim.faults.coreDownCycles, 0u);
  EXPECT_LE(sim.faults.coreRecoveries, sim.faults.coreOutages);
  EXPECT_EQ(sim.completedProcesses() + sim.faults.failedProcesses +
                sim.retiredProcesses + sim.rejectedProcesses,
            sim.processes.size());
}

TEST(FaultInjection, PermanentFailuresNeverWedgeThePlatform) {
  // A failure storm on a small platform: the liveness guard must keep
  // one core runnable, suppressing the failures that would wedge the
  // simulation, and every request still terminates.
  const Workload service = makeServiceWorkload();
  auto config = serviceConfig(2'000);
  config.mpsoc.coreCount = 2;
  config.mpsoc.faults.emplace();
  config.mpsoc.faults->seed = 11;
  config.mpsoc.faults->meanCoreFailureCycles = 10'000;
  const auto r = runExperiment(service, SchedulerKind::DynamicLocality,
                               config);
  const SimResult& sim = r.sim;
  EXPECT_EQ(sim.faults.coreFailures, 1u);  // cores - 1: one must survive
  EXPECT_GT(sim.faults.faultsSuppressed, 0u);
  EXPECT_EQ(sim.completedProcesses(), sim.processes.size());
}

TEST(FaultInjection, AdmissionControlShedsRetries) {
  // A tight waiting room under a crash storm: some retries re-arrive
  // into a full queue and are shed, permanently failing their process —
  // the composition of RetryPolicy with admission control.
  const Workload service = makeServiceWorkload();
  auto config = serviceConfig(500);
  config.mpsoc.admission.kind = AdmissionKind::QueueCap;
  config.mpsoc.admission.queueCap = 2;
  config.mpsoc.faults.emplace();
  config.mpsoc.faults->seed = 9;
  config.mpsoc.faults->meanCrashCycles = 3'000;
  config.mpsoc.faults->retry.maxAttempts = 5;
  config.mpsoc.faults->retry.backoffBaseCycles = 200;
  const auto r = runExperiment(service, SchedulerKind::Random, config);
  const SimResult& sim = r.sim;
  EXPECT_GT(sim.faults.retriesShed, 0u);
  EXPECT_GE(sim.faults.failedProcesses, sim.faults.retriesShed);
  EXPECT_EQ(sim.completedProcesses() + sim.faults.failedProcesses +
                sim.retiredProcesses + sim.rejectedProcesses,
            sim.processes.size());
}

TEST(FaultInjection, FailureStormIsDeterministicAcrossEveryPolicy) {
  // The failure-storm property test: random fault plans (back-to-back
  // failures, recover-then-fail, crash storms, tight retry budgets) x
  // every SchedulerKind x every AdmissionKind. Every combination must
  // terminate (run() throws on deadlock), conserve departures, and
  // reproduce bit-identically at analysis thread counts 1 and 8.
  const ThreadCountGuard guard;
  ServiceWorkloadParams params;
  params.requestCount = 48;
  const Workload service = makeServiceWorkload(params);
  const std::vector<AdmissionKind> admissions{
      AdmissionKind::AdmitAll, AdmissionKind::QueueCap, AdmissionKind::SloShed};
  Rng storm(2026);
  for (int round = 0; round < 3; ++round) {
    FaultPlan plan;
    plan.seed = storm();
    plan.meanCoreFailureCycles =
        static_cast<std::int64_t>(4'000 + storm.below(40'000));
    plan.meanCoreOutageCycles =
        static_cast<std::int64_t>(2'000 + storm.below(20'000));
    plan.meanCrashCycles = static_cast<std::int64_t>(2'000 + storm.below(15'000));
    plan.outageDownCycles = static_cast<std::int64_t>(500 + storm.below(4'000));
    plan.retry.maxAttempts = static_cast<std::uint32_t>(storm.below(4));
    plan.retry.backoffBaseCycles =
        static_cast<std::int64_t>(200 + storm.below(2'000));
    plan.retry.backoffJitterCycles = storm.below(2) == 0 ? 0 : 256;
    const bool withLifetime = storm.below(2) == 0;
    for (const SchedulerKind kind : kAllSchedulerKinds) {
      for (const AdmissionKind admission : admissions) {
        auto config = serviceConfig(1'500);
        if (withLifetime) {
          config.mpsoc.arrivals->processLifetimeCycles = 60'000;
        }
        config.mpsoc.admission.kind = admission;
        config.mpsoc.admission.queueCap = 6;
        config.mpsoc.admission.sloTargetCycles = 25'000;
        config.mpsoc.faults = plan;
        setParallelThreadCount(1);
        const auto a = runExperiment(service, kind, config);
        setParallelThreadCount(8);
        const auto b = runExperiment(service, kind, config);
        const std::string label = std::string(to_string(kind)) + "/" +
                                  std::string(to_string(admission)) +
                                  " round " + std::to_string(round);
        // Conservation: every request terminates exactly one way.
        EXPECT_EQ(a.sim.completedProcesses() + a.sim.faults.failedProcesses +
                      a.sim.retiredProcesses + a.sim.rejectedProcesses,
                  a.sim.processes.size())
            << label;
        // Bit-identity across thread counts, event for event.
        EXPECT_EQ(a.sim.makespanCycles, b.sim.makespanCycles) << label;
        EXPECT_EQ(a.sim.dcacheTotal.misses, b.sim.dcacheTotal.misses) << label;
        EXPECT_EQ(a.sim.faults.processCrashes, b.sim.faults.processCrashes)
            << label;
        EXPECT_EQ(a.sim.faults.coreFailures, b.sim.faults.coreFailures)
            << label;
        ASSERT_EQ(a.sim.processes.size(), b.sim.processes.size());
        for (std::size_t p = 0; p < a.sim.processes.size(); ++p) {
          EXPECT_EQ(a.sim.processes[p].completionCycle,
                    b.sim.processes[p].completionCycle)
              << label << " process " << p;
          EXPECT_EQ(a.sim.processes[p].crashes, b.sim.processes[p].crashes)
              << label << " process " << p;
          EXPECT_EQ(a.sim.processes[p].failed, b.sim.processes[p].failed)
              << label << " process " << p;
        }
      }
    }
  }
}

/// Direct-simulator rig for the audit-seam tests (the seams live on
/// MpsocSimulator, below the experiment harness).
struct SeamRig {
  Workload workload;

  SeamRig() {
    const ArrayId v = workload.arrays.add("V", {4096}, 4);
    ProcessSpec p;
    p.task = 0;
    p.name = "s0";
    p.nests.push_back(LoopNest{
        IterationSpace::box({{0, 256}}),
        {ArrayAccess{v, AffineMap{AffineExpr({1}, 0)}, AccessKind::Read}},
        1});
    workload.graph.addProcess(std::move(p));
  }
};

TEST(FaultAudit, CoreUpForDispatchCheckerIsLive) {
  // The compiled-in never-dispatch-to-a-down-core invariant must be
  // provably live: pretend the only core is down and the audit build
  // aborts the very first dispatch, while a default build returns the
  // unperturbed result.
  SeamRig rig;
  const AddressSpace space(rig.workload.arrays);
  const SharingMatrix sharing =
      SharingMatrix::compute(rig.workload.footprints());
  FcfsScheduler policy;
  MpsocConfig cfg;
  cfg.coreCount = 1;
  MpsocSimulator sim(rig.workload, space, sharing, policy, cfg);
  sim.auditPretendCoreDownForTest(0);
  if (audit::enabled()) {
    EXPECT_THROW(sim.run(), AuditError);
  } else {
    const SimResult r = sim.run();
    EXPECT_GT(r.makespanCycles, 0);
  }
}

TEST(FaultAudit, DepartureConservationCheckerIsLive) {
  // Skew the departure count by one phantom: the conservation identity
  // admitted == completed + rejected + retired + failed breaks at the
  // first real departure, and only the audit build notices.
  SeamRig rig;
  const AddressSpace space(rig.workload.arrays);
  const SharingMatrix sharing =
      SharingMatrix::compute(rig.workload.footprints());
  FcfsScheduler policy;
  MpsocConfig cfg;
  cfg.coreCount = 1;
  MpsocSimulator sim(rig.workload, space, sharing, policy, cfg);
  sim.auditSkewDepartureCountForTest(1);
  if (audit::enabled()) {
    EXPECT_THROW(sim.run(), AuditError);
  } else {
    const SimResult r = sim.run();
    EXPECT_GT(r.makespanCycles, 0);
  }
}

}  // namespace
}  // namespace laps

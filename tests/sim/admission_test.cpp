/// \file admission_test.cpp
/// \brief Admission control: controller unit behavior, the QueueCap
/// waiting-room bound inside the engine, SloShed's loose/tight regimes,
/// rejected-producer release, and survival of every scheduler under a
/// saturating workload x every admission policy.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/laps.h"
#include "sched/basic.h"

namespace laps {
namespace {

/// Per-process open config over the keyed service workload, pushed past
/// the saturation knee so admission decisions actually trigger.
ExperimentConfig saturatingConfig(AdmissionConfig admission,
                                  std::int64_t meanInterArrival = 800) {
  ExperimentConfig config;
  config.mpsoc.arrivals.emplace();
  config.mpsoc.arrivals->meanInterArrivalCycles = meanInterArrival;
  config.mpsoc.arrivals->granularity = ArrivalGranularity::PerProcess;
  config.mpsoc.arrivals->distribution = ArrivalDistribution::BoundedPareto;
  config.mpsoc.admission = admission;
  return config;
}

TEST(AdmissionConfig, Validates) {
  AdmissionConfig config;
  config.validate();
  config.sloTargetCycles = 0;
  EXPECT_THROW(config.validate(), Error);
  config.sloTargetCycles = 1;
  config.sloEwmaShift = -1;
  EXPECT_THROW(config.validate(), Error);
  config.sloEwmaShift = 31;
  EXPECT_THROW(config.validate(), Error);
  config.sloEwmaShift = 0;
  config.validate();
}

TEST(AdmissionController, AdmitAllAlwaysAdmits) {
  const AdmissionController controller{AdmissionConfig{}};
  EXPECT_TRUE(controller.admit(0));
  EXPECT_TRUE(controller.admit(1'000'000));
}

TEST(AdmissionController, QueueCapAdmitsStrictlyBelowTheCap) {
  AdmissionConfig config;
  config.kind = AdmissionKind::QueueCap;
  config.queueCap = 3;
  const AdmissionController controller{config};
  EXPECT_TRUE(controller.admit(0));
  EXPECT_TRUE(controller.admit(2));
  EXPECT_FALSE(controller.admit(3));
  EXPECT_FALSE(controller.admit(4));
  config.queueCap = 0;  // a closed door
  const AdmissionController closed{config};
  EXPECT_FALSE(closed.admit(0));
}

TEST(AdmissionController, SloShedFollowsTheSojournEwma) {
  AdmissionConfig config;
  config.kind = AdmissionKind::SloShed;
  config.sloTargetCycles = 100;
  config.sloEwmaShift = 0;  // ewma = last sojourn: easy to reason about
  AdmissionController controller{config};
  EXPECT_TRUE(controller.admit(0));  // no exits yet: ewma 0
  controller.recordSojourn(100);
  EXPECT_EQ(controller.sojournEwma(), 100);
  EXPECT_TRUE(controller.admit(0));  // at target: still admitting
  controller.recordSojourn(101);
  EXPECT_FALSE(controller.admit(0));  // over target: shedding
  controller.recordSojourn(10);
  EXPECT_TRUE(controller.admit(0));  // recovered
  // Smoothing: shift 1 moves half way per observation.
  config.sloEwmaShift = 1;
  AdmissionController smooth{config};
  smooth.recordSojourn(1000);
  EXPECT_EQ(smooth.sojournEwma(), 500);
  smooth.recordSojourn(1000);
  EXPECT_EQ(smooth.sojournEwma(), 750);
}

/// Observes the engine's event stream to reconstruct the waiting count
/// (admitted arrivals minus running minus exited) while scheduling FCFS.
class WaitingProbe final : public SchedulerPolicy {
 public:
  void reset(const SchedContext& context) override {
    inner_.reset(context);
    waiting_ = 0;
    running_ = 0;
    maxWaiting_ = 0;
  }
  void onArrival(ProcessId process) override { inner_.onArrival(process); }
  void onReady(ProcessId process) override {
    ++waiting_;
    maxWaiting_ = std::max(maxWaiting_, waiting_);
    inner_.onReady(process);
  }
  std::optional<ProcessId> pickNext(
      std::size_t core, std::optional<ProcessId> previous) override {
    const auto pick = inner_.pickNext(core, previous);
    if (pick) {
      --waiting_;
      ++running_;
    }
    return pick;
  }
  void onComplete(ProcessId process) override { inner_.onComplete(process); }
  void onExit(ProcessId process) override {
    --running_;
    inner_.onExit(process);
  }
  [[nodiscard]] std::string name() const override { return "probe"; }

  [[nodiscard]] std::size_t maxWaiting() const { return maxWaiting_; }

 private:
  FcfsScheduler inner_;
  std::size_t waiting_ = 0;
  std::size_t running_ = 0;
  std::size_t maxWaiting_ = 0;
};

TEST(Admission, QueueCapBoundsTheWaitingRoomInTheEngine) {
  const Workload service = makeServiceWorkload();
  AdmissionConfig admission;
  admission.kind = AdmissionKind::QueueCap;
  admission.queueCap = 5;
  const ExperimentConfig config = saturatingConfig(admission, 500);

  WaitingProbe probe;
  const AddressSpace space(service.arrays);
  const SharingMatrix sharing = SharingMatrix::compute(service.footprints());
  MpsocSimulator sim(service, space, sharing, probe, config.mpsoc);
  const SimResult r = sim.run();
  // The load saturates, so the door must have closed at least once,
  // and the probe's ready-queue high-water mark never passed the cap.
  // (The engine's waiting count — admitted minus running — is what the
  // controller sees; every FCFS-ready process is waiting, so the
  // probe's count is a lower bound observed through the same events and
  // must respect the same ceiling.)
  EXPECT_GT(r.rejectedProcesses, 0u);
  EXPECT_LE(probe.maxWaiting(), admission.queueCap);
}

TEST(Admission, AdmitAllAndLooseSloShedAdmitEverything) {
  const Workload service = makeServiceWorkload();
  AdmissionConfig loose;
  loose.kind = AdmissionKind::SloShed;
  loose.sloTargetCycles = std::numeric_limits<std::int64_t>::max() / 2;
  for (const AdmissionConfig& admission : {AdmissionConfig{}, loose}) {
    const auto r = runExperiment(service, SchedulerKind::Fcfs,
                                 saturatingConfig(admission));
    EXPECT_EQ(r.sim.rejectedProcesses, 0u);
    for (const CohortStats& cohort : r.sim.cohorts) {
      EXPECT_EQ(cohort.rejectedCount, 0u);
    }
  }
}

TEST(Admission, SloShedShedsMonotonicallyMoreAsTightened) {
  const Workload service = makeServiceWorkload();
  std::uint64_t previous = 0;
  for (const std::int64_t target :
       {400'000, 100'000, 25'000, 6'000, 1'500}) {
    AdmissionConfig admission;
    admission.kind = AdmissionKind::SloShed;
    admission.sloTargetCycles = target;
    admission.sloEwmaShift = 1;
    const auto r = runExperiment(service, SchedulerKind::Fcfs,
                                 saturatingConfig(admission));
    EXPECT_GE(r.sim.rejectedProcesses, previous) << "target " << target;
    previous = r.sim.rejectedProcesses;
    std::uint64_t perCohort = 0;
    for (const CohortStats& cohort : r.sim.cohorts) {
      perCohort += cohort.rejectedCount;
    }
    EXPECT_EQ(perCohort, r.sim.rejectedProcesses) << "target " << target;
  }
  EXPECT_GT(previous, 0u);  // the tightest SLO really shed work
}

TEST(Admission, RejectedProducersReleaseDependents) {
  // A chain a -> b -> c arriving one process at a time through a closed
  // door (cap 0 after the first admission is impossible — use cap 0 and
  // verify the whole chain resolves as rejected without deadlock).
  Workload w;
  const ArrayId v = w.arrays.add("V", {1 << 12}, 4);
  const auto addProc = [&](std::int64_t lo) {
    ProcessSpec p;
    p.name = "p" + std::to_string(lo);
    p.nests.push_back(
        LoopNest{IterationSpace::box({{lo, lo + 64}}),
                 {ArrayAccess{v, AffineMap{AffineExpr({1}, 0)},
                              AccessKind::Read}},
                 1});
    return w.graph.addProcess(std::move(p));
  };
  const ProcessId a = addProc(0);
  const ProcessId b = addProc(64);
  const ProcessId c = addProc(128);
  w.graph.addDependence(a, b);
  w.graph.addDependence(b, c);

  AdmissionConfig admission;
  admission.kind = AdmissionKind::QueueCap;
  admission.queueCap = 0;
  const auto r = runExperiment(w, SchedulerKind::Fcfs,
                               saturatingConfig(admission, 10'000));
  EXPECT_EQ(r.sim.rejectedProcesses, 3u);
  for (const ProcessRunRecord& p : r.sim.processes) {
    EXPECT_TRUE(p.rejected) << "process " << p.id;
    EXPECT_EQ(p.segments, 0u) << "process " << p.id;
    EXPECT_EQ(p.firstStartCycle, -1) << "process " << p.id;
    EXPECT_EQ(p.completionCycle, p.arrivalCycle) << "process " << p.id;
  }
  // Rejected processes contribute no sojourn samples.
  EXPECT_EQ(r.sim.sojourn.samples, 0u);
  EXPECT_EQ(r.sim.sojourn.p99, 0);
}

TEST(Admission, EverySchedulerSurvivesSaturationUnderEveryPolicy) {
  const Workload service = makeServiceWorkload();
  std::vector<AdmissionConfig> admissions(3);
  admissions[0].kind = AdmissionKind::AdmitAll;
  admissions[1].kind = AdmissionKind::QueueCap;
  admissions[1].queueCap = 4;
  admissions[2].kind = AdmissionKind::SloShed;
  admissions[2].sloTargetCycles = 15'000;
  admissions[2].sloEwmaShift = 1;
  for (const SchedulerKind kind : kAllSchedulerKinds) {
    for (const AdmissionConfig& admission : admissions) {
      const auto r =
          runExperiment(service, kind, saturatingConfig(admission, 400));
      EXPECT_GT(r.sim.makespanCycles, 0) << to_string(kind);
      for (const ProcessRunRecord& p : r.sim.processes) {
        // Exactly one terminal state, no stranded work.
        EXPECT_GE(p.completionCycle, 0)
            << to_string(kind) << " stranded process " << p.id;
        if (p.rejected) {
          EXPECT_EQ(p.segments, 0u) << to_string(kind);
        }
      }
      const std::size_t n = r.sim.processes.size();
      EXPECT_EQ(r.sim.sojourn.samples + r.sim.rejectedProcesses, n)
          << to_string(kind);
    }
  }
}

TEST(Admission, ClosedWorkloadsIgnoreAdmissionConfig) {
  const Application app = makeShape();
  ExperimentConfig config;
  config.mpsoc.admission.kind = AdmissionKind::QueueCap;
  config.mpsoc.admission.queueCap = 0;  // would reject everything if consulted
  const auto r = runExperiment(app.workload, SchedulerKind::Fcfs, config);
  EXPECT_EQ(r.sim.rejectedProcesses, 0u);
  for (const ProcessRunRecord& p : r.sim.processes) {
    EXPECT_FALSE(p.rejected);
    EXPECT_GE(p.completionCycle, 0);
  }
}

}  // namespace
}  // namespace laps

/// \file interval_set_property_test.cpp
/// \brief Property tests for the IntervalSet algebra against a
/// brute-force bitset oracle.
///
/// IntervalSet is the hot path of the footprint/sharing analysis, and the
/// run-length replay mode leans harder on this algebra (footprints of
/// thousand-process mixes). These tests drive randomized (seeded)
/// interval sets through insert/unite/subtract/intersect and the
/// intersectCardinality fast path, checking every result point-for-point
/// against an explicit bitset model of the same domain.

#include "region/interval_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bitset>
#include <vector>

#include "region/strided_interval.h"
#include "util/rng.h"

namespace laps {
namespace {

constexpr std::size_t kDomain = 512;
using Bits = std::bitset<kDomain>;

/// The oracle: the same set as explicit membership bits over [0, kDomain).
Bits toBits(const IntervalSet& s) {
  Bits bits;
  for (const Interval& iv : s.pieces()) {
    EXPECT_GE(iv.lo, 0);
    EXPECT_LE(iv.hi, static_cast<std::int64_t>(kDomain));
    for (std::int64_t x = iv.lo; x < iv.hi; ++x) {
      bits.set(static_cast<std::size_t>(x));
    }
  }
  return bits;
}

void expectMatchesOracle(const IntervalSet& s, const Bits& oracle) {
  EXPECT_EQ(toBits(s), oracle);
  EXPECT_EQ(s.cardinality(), static_cast<std::int64_t>(oracle.count()));
  // Invariants: sorted, disjoint, coalesced, non-empty pieces.
  const auto& pieces = s.pieces();
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    EXPECT_LT(pieces[i].lo, pieces[i].hi);
    if (i > 0) {
      EXPECT_LT(pieces[i - 1].hi, pieces[i].lo);
    }
  }
}

Interval randomInterval(Rng& rng) {
  const std::int64_t lo = rng.range(0, kDomain - 1);
  const std::int64_t len = rng.range(0, 40);
  return Interval{lo, std::min<std::int64_t>(lo + len, kDomain)};
}

class IntervalSetProperties : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(IntervalSetProperties, InsertMatchesBitsetOracle) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    IntervalSet s;
    Bits oracle;
    for (int i = 0; i < 30; ++i) {
      const Interval iv = randomInterval(rng);
      s.insert(iv);
      for (std::int64_t x = iv.lo; x < iv.hi; ++x) {
        oracle.set(static_cast<std::size_t>(x));
      }
      expectMatchesOracle(s, oracle);
      EXPECT_TRUE(iv.lo >= iv.hi || s.contains(iv.lo));
    }
  }
}

TEST_P(IntervalSetProperties, SetAlgebraMatchesBitsetOracle) {
  Rng rng(GetParam());
  for (int round = 0; round < 300; ++round) {
    IntervalSet::Builder ba;
    IntervalSet::Builder bb;
    const int piecesA = static_cast<int>(rng.range(0, 12));
    const int piecesB = static_cast<int>(rng.range(0, 12));
    for (int i = 0; i < piecesA; ++i) ba.add(randomInterval(rng));
    for (int i = 0; i < piecesB; ++i) bb.add(randomInterval(rng));
    const IntervalSet a = ba.build();
    const IntervalSet b = bb.build();
    const Bits oa = toBits(a);
    const Bits ob = toBits(b);

    expectMatchesOracle(a.unite(b), oa | ob);
    expectMatchesOracle(a.intersect(b), oa & ob);
    expectMatchesOracle(a.subtract(b), oa & ~ob);
    expectMatchesOracle(b.subtract(a), ob & ~oa);
    EXPECT_EQ(a.intersectCardinality(b),
              static_cast<std::int64_t>((oa & ob).count()));
    EXPECT_EQ(b.intersectCardinality(a),
              static_cast<std::int64_t>((oa & ob).count()));
    EXPECT_EQ(a.containsAll(b), (ob & ~oa).none());

    // Point queries across the whole domain.
    for (int probes = 0; probes < 32; ++probes) {
      const std::int64_t x = rng.range(0, kDomain - 1);
      EXPECT_EQ(a.contains(x), oa.test(static_cast<std::size_t>(x)));
    }
  }
}

TEST_P(IntervalSetProperties, SkewedSizesTakeTheGallopingPathCorrectly) {
  // intersectCardinality and subtract switch to a lower_bound galloping
  // advance when one side has >= 16 pieces and is > 4x denser than the
  // other; the 0..12-piece cases above never reach it. Dense side here:
  // dozens of point-like fragments; sparse side: a handful of wide
  // intervals (including none).
  Rng rng(GetParam());
  for (int round = 0; round < 100; ++round) {
    IntervalSet::Builder denseBuilder;
    const int densePieces = static_cast<int>(rng.range(20, 150));
    for (int i = 0; i < densePieces; ++i) {
      const std::int64_t lo = rng.range(0, kDomain - 4);
      denseBuilder.add(lo, lo + rng.range(1, 3));
    }
    IntervalSet::Builder sparseBuilder;
    const int sparsePieces = static_cast<int>(rng.range(0, 4));
    for (int i = 0; i < sparsePieces; ++i) {
      sparseBuilder.add(randomInterval(rng));
    }
    const IntervalSet dense = denseBuilder.build();
    const IntervalSet sparse = sparseBuilder.build();
    const Bits od = toBits(dense);
    const Bits os = toBits(sparse);

    EXPECT_EQ(dense.intersectCardinality(sparse),
              static_cast<std::int64_t>((od & os).count()));
    EXPECT_EQ(sparse.intersectCardinality(dense),
              static_cast<std::int64_t>((od & os).count()));
    expectMatchesOracle(sparse.subtract(dense), os & ~od);
    expectMatchesOracle(dense.subtract(sparse), od & ~os);
  }
}

TEST_P(IntervalSetProperties, BuilderOrderDoesNotAffectTheResult) {
  // normalize() skips its sort when the input is already ascending;
  // building from sorted and shuffled permutations of the same
  // intervals must produce identical (canonical) sets.
  Rng rng(GetParam());
  for (int round = 0; round < 100; ++round) {
    std::vector<Interval> intervals;
    const int pieces = static_cast<int>(rng.range(0, 40));
    for (int i = 0; i < pieces; ++i) intervals.push_back(randomInterval(rng));

    std::vector<Interval> sorted = intervals;
    std::sort(sorted.begin(), sorted.end(),
              [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
    IntervalSet::Builder fromSorted;
    for (const Interval& iv : sorted) fromSorted.add(iv);

    rng.shuffle(intervals);
    IntervalSet::Builder fromShuffled;
    for (const Interval& iv : intervals) fromShuffled.add(iv);

    const IntervalSet a = fromSorted.build();
    const IntervalSet b = fromShuffled.build();
    EXPECT_EQ(a, b);
    expectMatchesOracle(a, toBits(b));
  }
}

TEST_P(IntervalSetProperties, AddStridedRunMatchesPerPointAdds) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const std::int64_t stride = rng.range(1, 9);
    const std::int64_t count = rng.range(0, 30);
    const std::int64_t lo = rng.range(0, 100);

    IntervalSet::Builder bulk;
    bulk.addStridedRun(lo, stride, count);
    IntervalSet::Builder perPoint;
    for (std::int64_t k = 0; k < count; ++k) {
      perPoint.addPoint(lo + k * stride);
    }
    EXPECT_EQ(bulk.build(), perPoint.build());

    // And against the StridedInterval expansion (the other exact
    // representation of the same progression).
    const StridedInterval run{lo, std::max<std::int64_t>(stride, 1), count};
    IntervalSet::Builder viaRun;
    viaRun.addStridedRun(lo, run.stride, run.count);
    EXPECT_EQ(viaRun.build(), run.toIntervalSet());
  }
}

TEST_P(IntervalSetProperties, SubtractThenAddBackRoundTrips) {
  Rng rng(GetParam());
  for (int round = 0; round < 100; ++round) {
    IntervalSet::Builder ba;
    IntervalSet::Builder bb;
    for (int i = 0; i < 8; ++i) ba.add(randomInterval(rng));
    for (int i = 0; i < 8; ++i) bb.add(randomInterval(rng));
    const IntervalSet a = ba.build();
    const IntervalSet b = bb.build();
    // (a \ b) ∪ (a ∩ b) == a, and the two parts are disjoint.
    const IntervalSet diff = a.subtract(b);
    const IntervalSet both = a.intersect(b);
    EXPECT_EQ(diff.unite(both), a);
    EXPECT_EQ(diff.intersectCardinality(both), 0);
    EXPECT_EQ(diff.cardinality() + both.cardinality(), a.cardinality());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetProperties,
                         ::testing::Values(7, 1234, 987654, 31415926));

}  // namespace
}  // namespace laps
#include "region/sharing.h"

#include <gtest/gtest.h>

#include "util/audit.h"
#include "util/error.h"

namespace laps {
namespace {

/// Builds the paper's Prog1 per-process footprints (8 processes).
std::vector<Footprint> prog1Footprints() {
  ArrayTable arrays;
  const ArrayId a = arrays.add("A", {10000, 16}, 4);
  const ArrayAccess access{
      a, AffineMap{AffineExpr({1000, 1}, 0), AffineExpr::constant(5)},
      AccessKind::Read};
  const auto space = IterationSpace::box({{0, 8}, {0, 3000}});
  std::vector<Footprint> fps(8);
  for (std::int64_t k = 0; k < 8; ++k) {
    fps[static_cast<std::size_t>(k)].add(
        a, accessFootprint(space.fixDim(0, k), access, arrays.at(a)));
  }
  return fps;
}

TEST(SharingMatrix, PaperFigure2aGolden) {
  // Fig. 2(a): neighbors share 2000 elements, distance-2 pairs share 1000,
  // farther pairs share nothing.
  const auto fps = prog1Footprints();
  const SharingMatrix m = SharingMatrix::compute(fps);
  ASSERT_EQ(m.size(), 8u);
  for (std::size_t k = 0; k < 8; ++k) {
    for (std::size_t p = 0; p < 8; ++p) {
      const auto dist = k > p ? k - p : p - k;
      std::int64_t expected = 0;
      if (dist == 0) expected = 3000;  // own footprint on the diagonal
      if (dist == 1) expected = 2000;
      if (dist == 2) expected = 1000;
      EXPECT_EQ(m.at(k, p), expected) << "k=" << k << " p=" << p;
    }
  }
}

TEST(SharingMatrix, SymmetricByConstruction) {
  const auto fps = prog1Footprints();
  const SharingMatrix m = SharingMatrix::compute(fps);
  for (std::size_t k = 0; k < m.size(); ++k) {
    for (std::size_t p = 0; p < m.size(); ++p) {
      EXPECT_EQ(m.at(k, p), m.at(p, k));
    }
  }
}

TEST(SharingMatrix, DisjointProcessesGiveDiagonalMatrix) {
  std::vector<Footprint> fps(3);
  fps[0].add(0, IntervalSet::range(0, 10));
  fps[1].add(0, IntervalSet::range(10, 20));
  fps[2].add(1, IntervalSet::range(0, 10));
  const SharingMatrix m = SharingMatrix::compute(fps);
  EXPECT_TRUE(m.isDiagonal());
}

TEST(SharingMatrix, NonDiagonalDetected) {
  std::vector<Footprint> fps(2);
  fps[0].add(0, IntervalSet::range(0, 10));
  fps[1].add(0, IntervalSet::range(5, 15));
  const SharingMatrix m = SharingMatrix::compute(fps);
  EXPECT_FALSE(m.isDiagonal());
  EXPECT_EQ(m.at(0, 1), 5);
}

TEST(SharingMatrix, RowSumAllAndRestricted) {
  SharingMatrix m(4);
  // Row 0 shares 10 with 1, 20 with 2, 30 with 3.
  m.set(0, 1, 10);
  m.set(0, 2, 20);
  m.set(0, 3, 30);
  m.set(0, 0, 999);  // diagonal must be excluded
  EXPECT_EQ(m.rowSum(0), 60);
  const std::vector<std::size_t> candidates{0, 1, 3};
  EXPECT_EQ(m.rowSum(0, candidates), 40);
}

TEST(SharingMatrix, EmptyMatrix) {
  const SharingMatrix m = SharingMatrix::compute({});
  EXPECT_EQ(m.size(), 0u);
  EXPECT_TRUE(m.isDiagonal());
}

TEST(SharingMatrix, OutOfRangeThrows) {
  SharingMatrix m(2);
  EXPECT_THROW(static_cast<void>(m.at(2, 0)), Error);
  EXPECT_THROW(m.set(0, 2, 1), Error);
}

// --- audit layer (docs/ARCHITECTURE.md §11) ------------------------------

TEST(SharingAudit, ComputedMatrixPassesInvariants) {
  const SharingMatrix m = SharingMatrix::compute(prog1Footprints());
  EXPECT_NO_THROW(m.auditInvariants());
}

TEST(SharingAudit, InjectedAsymmetryTrips) {
  SharingMatrix m = SharingMatrix::compute(prog1Footprints());
  // set() writes a single cell — the one mutation that can desynchronize
  // the two halves of a symmetric pair.
  m.set(1, 2, m.at(1, 2) + 1);
  EXPECT_THROW(m.auditInvariants(), AuditError);
}

TEST(SharingAudit, NegativeDiagonalTrips) {
  SharingMatrix m(3);
  m.set(1, 1, -5);  // a footprint size cannot be negative
  EXPECT_THROW(m.auditInvariants(), AuditError);
}

TEST(SharingAudit, InactiveRowMustStayZero) {
  SharingMatrix m = SharingMatrix::inactive(3);
  EXPECT_NO_THROW(m.auditInvariants());
  // Write into an inactive process's row: symmetric (so the symmetry
  // clause cannot catch it) but still a contract violation.
  m.set(0, 1, 7);
  m.set(1, 0, 7);
  EXPECT_THROW(m.auditInvariants(), AuditError);
}

TEST(SharingAudit, ActiveSetAgreementAcceptsMatchingSets) {
  const auto fps = prog1Footprints();
  SharingMatrix m = SharingMatrix::inactive(fps.size());
  m.addProcess(fps, 2);
  m.addProcess(fps, 5);
  std::vector<bool> arrived(fps.size(), false);
  std::vector<bool> exited(fps.size(), false);
  arrived[2] = arrived[5] = true;
  EXPECT_NO_THROW(audit::activeSetAgreement(m, arrived, exited, 2));
}

TEST(SharingAudit, ActiveSetAgreementCatchesDisagreements) {
  const auto fps = prog1Footprints();
  SharingMatrix m = SharingMatrix::inactive(fps.size());
  m.addProcess(fps, 2);
  std::vector<bool> arrived(fps.size(), false);
  std::vector<bool> exited(fps.size(), false);
  arrived[2] = true;

  // Wrong live count.
  EXPECT_THROW(audit::activeSetAgreement(m, arrived, exited, 2), AuditError);

  // A process the engine thinks is live but the matrix deactivated.
  arrived[5] = true;
  EXPECT_THROW(audit::activeSetAgreement(m, arrived, exited, 2), AuditError);

  // A process the engine retired but the matrix kept active.
  arrived[5] = false;
  exited[2] = true;
  EXPECT_THROW(audit::activeSetAgreement(m, arrived, exited, 0), AuditError);
}

TEST(SharingAudit, IncrementalMaintenanceStaysCleanThroughChurn) {
  const auto fps = prog1Footprints();
  SharingMatrix m = SharingMatrix::inactive(fps.size());
  std::vector<bool> arrived(fps.size(), false);
  std::vector<bool> exited(fps.size(), false);
  std::size_t live = 0;
  const auto checkAll = [&] {
    m.auditInvariants();
    audit::activeSetAgreement(m, arrived, exited, live);
  };
  for (std::size_t p = 0; p < fps.size(); ++p) {
    m.addProcess(fps, p);
    arrived[p] = true;
    ++live;
    EXPECT_NO_THROW(checkAll());
  }
  for (std::size_t p = 0; p < fps.size(); p += 2) {
    m.removeProcess(p);
    exited[p] = true;
    --live;
    EXPECT_NO_THROW(checkAll());
  }
}

TEST(SharingMatrix, ToTableShape) {
  const auto fps = prog1Footprints();
  const SharingMatrix m = SharingMatrix::compute(fps);
  const Table t = m.toTable();
  EXPECT_EQ(t.rowCount(), 8u);
  EXPECT_EQ(t.headers().size(), 9u);  // label column + 8 processes
  EXPECT_NE(t.ascii().find("2000"), std::string::npos);
}

}  // namespace
}  // namespace laps

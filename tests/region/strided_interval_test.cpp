#include "region/strided_interval.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace laps {
namespace {

std::set<std::int64_t> expand(const StridedInterval& s) {
  std::set<std::int64_t> out;
  for (std::int64_t k = 0; k < s.count; ++k) out.insert(s.base + k * s.stride);
  return out;
}

TEST(SolveLinearCongruence, Solvable) {
  // 3x ≡ 6 (mod 9): solutions x ≡ 2 (mod 3); smallest non-negative is 2.
  auto x = solveLinearCongruence(3, 6, 9);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ((3 * *x) % 9, 6 % 9);
  EXPECT_EQ(*x, 2);
}

TEST(SolveLinearCongruence, Unsolvable) {
  // 2x ≡ 1 (mod 4) has no solution (gcd(2,4)=2 does not divide 1).
  EXPECT_FALSE(solveLinearCongruence(2, 1, 4).has_value());
}

TEST(SolveLinearCongruence, NegativeInputsNormalized) {
  auto x = solveLinearCongruence(-3, 5, 7);
  ASSERT_TRUE(x.has_value());
  // -3x ≡ 5 (mod 7) -> 4x ≡ 5 (mod 7) -> x = 3 (4*3=12≡5).
  EXPECT_EQ(*x, 3);
}

TEST(SolveLinearCongruence, ModulusOne) {
  auto x = solveLinearCongruence(5, 3, 1);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(*x, 0);
}

TEST(StridedInterval, Contains) {
  const StridedInterval s{10, 3, 5};  // {10,13,16,19,22}
  EXPECT_TRUE(s.contains(10));
  EXPECT_TRUE(s.contains(22));
  EXPECT_FALSE(s.contains(23));
  EXPECT_FALSE(s.contains(11));
  EXPECT_FALSE(s.contains(7));
  EXPECT_FALSE((StridedInterval{}).contains(0));
}

TEST(StridedInterval, ToIntervalSetUnitStride) {
  const StridedInterval s{5, 1, 10};
  const IntervalSet set = s.toIntervalSet();
  EXPECT_EQ(set.pieceCount(), 1u);
  EXPECT_EQ(set.cardinality(), 10);
  EXPECT_TRUE(set.contains(5));
  EXPECT_TRUE(set.contains(14));
  EXPECT_FALSE(set.contains(15));
}

TEST(StridedInterval, ToIntervalSetWideStride) {
  const StridedInterval s{0, 100, 4};
  const IntervalSet set = s.toIntervalSet();
  EXPECT_EQ(set.pieceCount(), 4u);
  EXPECT_EQ(set.cardinality(), 4);
  EXPECT_TRUE(set.contains(300));
  EXPECT_FALSE(set.contains(150));
}

TEST(StridedInterval, EmptyExpansion) {
  const StridedInterval none{0, 1, 0};
  EXPECT_TRUE(none.toIntervalSet().empty());
}

TEST(StridedInterval, IntersectDisjointRanges) {
  const StridedInterval a{0, 2, 5};    // up to 8
  const StridedInterval b{100, 2, 5};  // starts at 100
  EXPECT_EQ(a.intersectCount(b), 0);
}

TEST(StridedInterval, IntersectSameStride) {
  const StridedInterval a{0, 4, 10};  // {0,4,...,36}
  const StridedInterval b{8, 4, 10};  // {8,12,...,44}
  // Common: {8,...,36} step 4 -> 8 elements.
  EXPECT_EQ(a.intersectCount(b), 8);
  const StridedInterval c{1, 4, 10};  // shifted phase: no common points
  EXPECT_EQ(a.intersectCount(c), 0);
}

TEST(StridedInterval, IntersectCoprimeStrides) {
  const StridedInterval a{0, 3, 20};  // multiples of 3 below 60
  const StridedInterval b{0, 5, 20};  // multiples of 5 below 100
  // Common points are multiples of 15 in [0, 57]: 0,15,30,45 -> 4.
  EXPECT_EQ(a.intersectCount(b), 4);
  const StridedInterval i = a.intersect(b);
  EXPECT_EQ(i.base, 0);
  EXPECT_EQ(i.stride, 15);
  EXPECT_EQ(i.count, 4);
}

class StridedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StridedProperty, IntersectionMatchesBruteForce) {
  Rng rng(GetParam());
  for (int round = 0; round < 100; ++round) {
    const StridedInterval a{rng.range(-50, 50), rng.range(1, 12),
                            rng.range(0, 40)};
    const StridedInterval b{rng.range(-50, 50), rng.range(1, 12),
                            rng.range(0, 40)};
    const auto refA = expand(a);
    const auto refB = expand(b);
    std::set<std::int64_t> refInter;
    for (const auto x : refA) {
      if (refB.count(x)) refInter.insert(x);
    }
    ASSERT_EQ(a.intersectCount(b), static_cast<std::int64_t>(refInter.size()))
        << "a={" << a.base << "," << a.stride << "," << a.count << "} b={"
        << b.base << "," << b.stride << "," << b.count << "}";
    EXPECT_EQ(expand(a.intersect(b)), refInter);
    // Symmetry.
    EXPECT_EQ(a.intersectCount(b), b.intersectCount(a));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StridedProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace laps

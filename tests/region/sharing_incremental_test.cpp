/// \file sharing_incremental_test.cpp
/// \brief Incremental SharingMatrix maintenance vs from-scratch compute.
///
/// The open-workload engine maintains the sharing matrix one
/// addProcess/removeProcess at a time. These tests pin the promise that
/// after ANY interleaved sequence of such events, the matrix is
/// bit-identical to a from-scratch compute over the surviving (active)
/// set — i.e. to the full matrix with inactive rows/columns zeroed —
/// including when the new-row intersections run on the parallel pool
/// (thread counts {1, 8}).

#include <gtest/gtest.h>

#include "core/laps.h"
#include "util/parallel.h"

namespace laps {
namespace {

/// Restores automatic thread-count resolution when a test exits.
class ThreadCountGuard {
 public:
  ~ThreadCountGuard() { setParallelThreadCount(0); }
};

/// The oracle: full compute over every footprint, masked down to the
/// active set (a from-scratch compute over the survivors produces
/// exactly these values for the active pairs and zero elsewhere).
void expectMatchesMaskedCompute(const SharingMatrix& incremental,
                                std::span<const Footprint> footprints,
                                const std::vector<bool>& active) {
  const SharingMatrix full = SharingMatrix::compute(footprints);
  ASSERT_EQ(incremental.size(), full.size());
  for (std::size_t p = 0; p < full.size(); ++p) {
    ASSERT_EQ(incremental.isActive(p), static_cast<bool>(active[p]));
    for (std::size_t q = 0; q < full.size(); ++q) {
      const std::int64_t expected =
          active[p] && active[q] ? full.at(p, q) : 0;
      ASSERT_EQ(incremental.at(p, q), expected)
          << "cell (" << p << ", " << q << ")";
    }
  }
}

std::vector<Footprint> suiteFootprints(std::size_t apps) {
  const auto suite = standardSuite();
  return concurrentScenario(suite, apps).footprints();
}

TEST(SharingMatrixIncremental, StartsInactiveAndEmpty) {
  const SharingMatrix m = SharingMatrix::inactive(4);
  EXPECT_EQ(m.size(), 4u);
  EXPECT_EQ(m.activeCount(), 0u);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_FALSE(m.isActive(p));
  }
  EXPECT_TRUE(m.isDiagonal());
}

TEST(SharingMatrixIncremental, ComputeMarksEveryProcessActive) {
  const auto footprints = suiteFootprints(1);
  const SharingMatrix m = SharingMatrix::compute(footprints);
  EXPECT_EQ(m.activeCount(), footprints.size());
  EXPECT_TRUE(m.isActive(0));
}

TEST(SharingMatrixIncremental, AddThenRemoveRoundTrips) {
  const auto footprints = suiteFootprints(1);
  const std::size_t n = footprints.size();
  SharingMatrix m = SharingMatrix::inactive(n);
  std::vector<bool> active(n, false);

  for (std::size_t p = 0; p < n; ++p) {
    m.addProcess(footprints, p);
    active[p] = true;
  }
  expectMatchesMaskedCompute(m, footprints, active);
  EXPECT_EQ(m.activeCount(), n);

  m.removeProcess(2);
  active[2] = false;
  expectMatchesMaskedCompute(m, footprints, active);

  // Re-adding restores the row exactly.
  m.addProcess(footprints, 2);
  active[2] = true;
  expectMatchesMaskedCompute(m, footprints, active);
}

TEST(SharingMatrixIncremental, PreconditionsThrow) {
  const auto footprints = suiteFootprints(1);
  SharingMatrix m = SharingMatrix::inactive(footprints.size());
  EXPECT_THROW(m.removeProcess(0), Error);  // not active yet
  m.addProcess(footprints, 0);
  EXPECT_THROW(m.addProcess(footprints, 0), Error);  // already active
  EXPECT_THROW(m.addProcess(footprints, footprints.size()), Error);
  EXPECT_THROW(m.removeProcess(footprints.size()), Error);
  // Universe size mismatch.
  const std::span<const Footprint> slice(footprints.data(),
                                         footprints.size() - 1);
  EXPECT_THROW(m.addProcess(slice, 1), Error);
  // compute()'d matrices are fully active: removal works directly.
  SharingMatrix full = SharingMatrix::compute(footprints);
  full.removeProcess(3);
  EXPECT_FALSE(full.isActive(3));
  EXPECT_EQ(full.at(3, 1), 0);
}

TEST(SharingMatrixIncremental,
     RandomInterleavingMatchesComputeAtThreadCounts1And8) {
  const ThreadCountGuard guard;
  // Two concurrent applications: real footprints with heavy intra-task
  // sharing and inter-task disjointness.
  const auto footprints = suiteFootprints(2);
  const std::size_t n = footprints.size();

  for (const std::size_t threads : {1u, 8u}) {
    setParallelThreadCount(threads);
    Rng rng(0xA11CE + threads);
    SharingMatrix m = SharingMatrix::inactive(n);
    std::vector<bool> active(n, false);
    std::vector<std::size_t> activeIds;
    std::vector<std::size_t> inactiveIds(n);
    for (std::size_t p = 0; p < n; ++p) inactiveIds[p] = p;

    for (int step = 0; step < 200; ++step) {
      // 60% arrivals while anything is inactive, else exits.
      const bool add =
          !inactiveIds.empty() && (activeIds.empty() || rng.chance(0.6));
      if (add) {
        const std::size_t i = rng.index(inactiveIds.size());
        const std::size_t p = inactiveIds[i];
        inactiveIds.erase(inactiveIds.begin() +
                          static_cast<std::ptrdiff_t>(i));
        activeIds.push_back(p);
        active[p] = true;
        m.addProcess(footprints, p);
      } else {
        const std::size_t i = rng.index(activeIds.size());
        const std::size_t p = activeIds[i];
        activeIds.erase(activeIds.begin() + static_cast<std::ptrdiff_t>(i));
        inactiveIds.push_back(p);
        active[p] = false;
        m.removeProcess(p);
      }
      // Check every 20 events (and at the end) to keep runtime sane.
      if (step % 20 == 19 || step == 199) {
        expectMatchesMaskedCompute(m, footprints, active);
      }
      ASSERT_EQ(m.activeCount(), activeIds.size());
    }
  }
}

TEST(SharingMatrixIncremental, ParallelRowPathMatchesAtLargeUniverse) {
  // addProcess runs the new row inline below a cutoff (~256) — the
  // interleaving test above covers that path. This one forces the
  // parallel path: a 330-process universe (|T| = 12), updated at 8
  // threads, must still match the masked full compute bit-for-bit.
  const ThreadCountGuard guard;
  const auto footprints = suiteFootprints(12);
  const std::size_t n = footprints.size();
  ASSERT_GE(n, 256u);  // keep this test on the parallel path

  setParallelThreadCount(8);
  Rng rng(0xB0B);
  SharingMatrix m = SharingMatrix::inactive(n);
  std::vector<bool> active(n, false);
  std::vector<std::size_t> activeIds;
  for (int step = 0; step < 40; ++step) {
    if (activeIds.empty() || rng.chance(0.75)) {
      std::size_t p = static_cast<std::size_t>(rng.index(n));
      while (active[p]) p = (p + 1) % n;
      active[p] = true;
      activeIds.push_back(p);
      m.addProcess(footprints, p);
    } else {
      const std::size_t i = rng.index(activeIds.size());
      const std::size_t p = activeIds[i];
      activeIds.erase(activeIds.begin() + static_cast<std::ptrdiff_t>(i));
      active[p] = false;
      m.removeProcess(p);
    }
  }
  expectMatchesMaskedCompute(m, footprints, active);
}

}  // namespace
}  // namespace laps

#include "region/iteration_space.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.h"

namespace laps {
namespace {

TEST(LoopDim, TripCount) {
  EXPECT_EQ((LoopDim{0, 10, 1}).tripCount(), 10);
  EXPECT_EQ((LoopDim{0, 10, 3}).tripCount(), 4);  // 0,3,6,9
  EXPECT_EQ((LoopDim{5, 5, 1}).tripCount(), 0);
  EXPECT_EQ((LoopDim{7, 3, 1}).tripCount(), 0);
  EXPECT_EQ((LoopDim{-4, 4, 2}).tripCount(), 4);  // -4,-2,0,2
}

TEST(IterationSpace, NumPoints) {
  const auto space = IterationSpace::box({{0, 8}, {0, 3000}});
  EXPECT_EQ(space.rank(), 2u);
  EXPECT_EQ(space.numPoints(), 24000);
  EXPECT_FALSE(space.empty());
}

TEST(IterationSpace, EmptyWhenAnyDimEmpty) {
  const auto space = IterationSpace::box({{0, 8}, {5, 5}});
  EXPECT_EQ(space.numPoints(), 0);
  EXPECT_TRUE(space.empty());
}

TEST(IterationSpace, RejectsNonPositiveStep) {
  EXPECT_THROW(IterationSpace({LoopDim{0, 10, 0}}), Error);
  EXPECT_THROW(IterationSpace({LoopDim{0, 10, -1}}), Error);
}

TEST(IterationSpace, FixDimMatchesPaperExample) {
  // IS1,k = {[i1,i2] : i1 = k && 0 <= i2 < 3000}
  const auto is1 = IterationSpace::box({{0, 8}, {0, 3000}});
  const auto is1k = is1.fixDim(0, 3);
  EXPECT_EQ(is1k.numPoints(), 3000);
  EXPECT_EQ(is1k.dim(0).lo, 3);
  EXPECT_EQ(is1k.dim(0).hi, 4);
}

TEST(IterationSpace, ClampDim) {
  const auto space = IterationSpace::box({{0, 100}});
  const auto clamped = space.clampDim(0, 20, 50);
  EXPECT_EQ(clamped.numPoints(), 30);
  // Clamp wider than original is a no-op.
  const auto wide = space.clampDim(0, -10, 1000);
  EXPECT_EQ(wide.numPoints(), 100);
}

TEST(IterationSpace, SplitOuterPartitionsExactly) {
  const auto space = IterationSpace::box({{0, 10}, {0, 7}});
  const auto blocks = space.splitOuter(3);
  ASSERT_EQ(blocks.size(), 3u);
  // 10 = 4 + 3 + 3.
  EXPECT_EQ(blocks[0].dim(0).tripCount(), 4);
  EXPECT_EQ(blocks[1].dim(0).tripCount(), 3);
  EXPECT_EQ(blocks[2].dim(0).tripCount(), 3);
  // Contiguous coverage.
  EXPECT_EQ(blocks[0].dim(0).lo, 0);
  EXPECT_EQ(blocks[0].dim(0).hi, blocks[1].dim(0).lo);
  EXPECT_EQ(blocks[1].dim(0).hi, blocks[2].dim(0).lo);
  EXPECT_EQ(blocks[2].dim(0).hi, 10);
  // Inner dims untouched.
  for (const auto& b : blocks) {
    EXPECT_EQ(b.dim(1).tripCount(), 7);
  }
  std::int64_t total = 0;
  for (const auto& b : blocks) total += b.numPoints();
  EXPECT_EQ(total, space.numPoints());
}

TEST(IterationSpace, SplitOuterMorePartsThanTrips) {
  const auto space = IterationSpace::box({{0, 2}});
  const auto blocks = space.splitOuter(5);
  ASSERT_EQ(blocks.size(), 5u);
  std::int64_t total = 0;
  int nonEmpty = 0;
  for (const auto& b : blocks) {
    total += b.numPoints();
    if (!b.empty()) ++nonEmpty;
  }
  EXPECT_EQ(total, 2);
  EXPECT_EQ(nonEmpty, 2);
}

TEST(IterationSpace, SplitOuterWithStep) {
  IterationSpace space({LoopDim{0, 16, 2}});  // 8 trips
  const auto blocks = space.splitOuter(4);
  std::int64_t total = 0;
  for (const auto& b : blocks) {
    EXPECT_EQ(b.dim(0).step, 2);
    total += b.numPoints();
  }
  EXPECT_EQ(total, 8);
}

TEST(IterationSpace, SplitOuterPaperScheme) {
  // "parallelized over 8 cores, each process receives successive iterations"
  const auto is1 = IterationSpace::box({{0, 8}, {0, 3000}});
  const auto procs = is1.splitOuter(8);
  ASSERT_EQ(procs.size(), 8u);
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_EQ(procs[k].dim(0).lo, static_cast<std::int64_t>(k));
    EXPECT_EQ(procs[k].numPoints(), 3000);
  }
}

TEST(IterationSpace, ForEachPointLexicographic) {
  const auto space = IterationSpace::box({{0, 2}, {0, 3}});
  std::vector<std::vector<std::int64_t>> seen;
  space.forEachPoint([&](std::span<const std::int64_t> p) {
    seen.emplace_back(p.begin(), p.end());
  });
  const std::vector<std::vector<std::int64_t>> expected{
      {0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}};
  EXPECT_EQ(seen, expected);
}

TEST(IterationSpace, ForEachPointHonorsStep) {
  IterationSpace space({LoopDim{1, 10, 4}});  // 1, 5, 9
  std::vector<std::int64_t> seen;
  space.forEachPoint(
      [&](std::span<const std::int64_t> p) { seen.push_back(p[0]); });
  EXPECT_EQ(seen, (std::vector<std::int64_t>{1, 5, 9}));
}

TEST(IterationSpace, ForEachPointEmptySpace) {
  const auto space = IterationSpace::box({{0, 0}, {0, 5}});
  int count = 0;
  space.forEachPoint([&](std::span<const std::int64_t>) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(IterationSpace, ToString) {
  const auto space = IterationSpace::box({{0, 8}, {0, 3000}});
  EXPECT_EQ(space.toString(), "[0..8)x[0..3000)");
  IterationSpace strided({LoopDim{0, 16, 2}});
  EXPECT_EQ(strided.toString(), "[0..16)/2");
}

TEST(IterationSpace, DimOutOfRangeThrows) {
  const auto space = IterationSpace::box({{0, 2}});
  EXPECT_THROW((void)space.dim(1), Error);
  EXPECT_THROW((void)space.fixDim(3, 0), Error);
  EXPECT_THROW((void)space.clampDim(3, 0, 1), Error);
}

}  // namespace
}  // namespace laps

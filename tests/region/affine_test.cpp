#include "region/affine.h"

#include <gtest/gtest.h>

#include <array>

#include "util/error.h"

namespace laps {
namespace {

TEST(AffineExpr, EvalPaperAccess) {
  // d1 = i1*1000 + i2 from the paper's A[i1*1000+i2][5].
  const AffineExpr d1({1000, 1}, 0);
  const std::array<std::int64_t, 2> point{3, 42};
  EXPECT_EQ(d1.eval(point), 3042);
}

TEST(AffineExpr, ConstantExpr) {
  const AffineExpr c = AffineExpr::constant(5);
  EXPECT_TRUE(c.isConstant());
  const std::array<std::int64_t, 2> point{7, 9};
  EXPECT_EQ(c.eval(point), 5);
}

TEST(AffineExpr, VarFactory) {
  const AffineExpr v = AffineExpr::var(1, 3);
  const std::array<std::int64_t, 3> point{10, 20, 30};
  EXPECT_EQ(v.eval(point), 20);
  EXPECT_FALSE(v.isConstant());
  EXPECT_THROW(AffineExpr::var(3, 3), Error);
}

TEST(AffineExpr, Arithmetic) {
  const AffineExpr a({2, 0}, 1);
  const AffineExpr b({0, 3}, 4);
  const AffineExpr sum = a.plus(b);
  const std::array<std::int64_t, 2> p{5, 7};
  EXPECT_EQ(sum.eval(p), 2 * 5 + 3 * 7 + 5);
  EXPECT_EQ(a.times(3).eval(p), 3 * (2 * 5 + 1));
  EXPECT_EQ(a.shift(-1).eval(p), 2 * 5);
}

TEST(AffineExpr, PlusDifferentRanks) {
  const AffineExpr a({2}, 0);
  const AffineExpr b({0, 3}, 1);
  const AffineExpr sum = a.plus(b);
  EXPECT_EQ(sum.rank(), 2u);
  const std::array<std::int64_t, 2> p{4, 5};
  EXPECT_EQ(sum.eval(p), 8 + 15 + 1);
}

TEST(AffineExpr, EvalRankMismatchThrows) {
  const AffineExpr a({1, 1}, 0);
  const std::array<std::int64_t, 1> tooSmall{3};
  EXPECT_THROW(static_cast<void>(a.eval(tooSmall)), Error);
}

TEST(AffineExpr, ToString) {
  EXPECT_EQ(AffineExpr({1000, 1}, 0).toString(), "1000*i0 + i1");
  EXPECT_EQ(AffineExpr::constant(5).toString(), "5");
  EXPECT_EQ(AffineExpr({1, 0}, -2).toString(), "i0 + -2");
  EXPECT_EQ(AffineExpr::constant(0).toString(), "0");
}

TEST(AffineMap, EvalAllCoordinates) {
  // (i1*1000 + i2, 5)
  const AffineMap map{AffineExpr({1000, 1}, 0), AffineExpr::constant(5)};
  std::vector<std::int64_t> out;
  const std::array<std::int64_t, 2> p{2, 30};
  map.eval(p, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 2030);
  EXPECT_EQ(out[1], 5);
}

TEST(AffineMap, ToString) {
  const AffineMap map{AffineExpr({1, 0}, 0), AffineExpr({0, 1}, 1)};
  EXPECT_EQ(map.toString(), "(i0, i1 + 1)");
}

TEST(AffineMap, ExprOutOfRange) {
  const AffineMap map{AffineExpr::constant(0)};
  EXPECT_NO_THROW(static_cast<void>(map.expr(0)));
  EXPECT_THROW(static_cast<void>(map.expr(1)), Error);
}

}  // namespace
}  // namespace laps

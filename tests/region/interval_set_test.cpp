#include "region/interval_set.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.h"

namespace laps {
namespace {

/// Reference model: explicit point set.
std::set<std::int64_t> expand(const IntervalSet& s) {
  std::set<std::int64_t> points;
  for (const auto& iv : s.pieces()) {
    for (std::int64_t x = iv.lo; x < iv.hi; ++x) points.insert(x);
  }
  return points;
}

IntervalSet randomSet(Rng& rng, int pieces, std::int64_t domain) {
  IntervalSet::Builder b;
  for (int i = 0; i < pieces; ++i) {
    const std::int64_t lo = rng.range(0, domain);
    const std::int64_t len = rng.range(0, domain / 4);
    b.add(lo, lo + len);
  }
  return b.build();
}

void expectInvariants(const IntervalSet& s) {
  const auto& p = s.pieces();
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_LT(p[i].lo, p[i].hi) << "empty piece stored";
    if (i > 0) {
      EXPECT_LT(p[i - 1].hi, p[i].lo) << "pieces not disjoint/coalesced";
    }
  }
}

TEST(Interval, Basics) {
  constexpr Interval iv{2, 5};
  static_assert(!iv.empty());
  static_assert(iv.length() == 3);
  EXPECT_TRUE(iv.contains(2));
  EXPECT_TRUE(iv.contains(4));
  EXPECT_FALSE(iv.contains(5));
  EXPECT_FALSE(iv.contains(1));
  EXPECT_TRUE(Interval({5, 5}).empty());
  EXPECT_TRUE(Interval({7, 3}).empty());
}

TEST(Interval, OverlapAndTouch) {
  const Interval a{0, 10};
  EXPECT_TRUE(a.overlaps(Interval{9, 20}));
  EXPECT_FALSE(a.overlaps(Interval{10, 20}));
  EXPECT_TRUE(a.touches(Interval{10, 20}));  // adjacent
  EXPECT_FALSE(a.touches(Interval{11, 20}));
  EXPECT_EQ(a.intersect(Interval{5, 15}), (Interval{5, 10}));
  EXPECT_TRUE(a.intersect(Interval{20, 30}).empty());
}

TEST(IntervalSet, NormalizationMergesOverlapsAndAdjacency) {
  const IntervalSet s({{0, 5}, {5, 10}, {12, 14}, {13, 20}, {30, 30}});
  ASSERT_EQ(s.pieceCount(), 2u);
  EXPECT_EQ(s.pieces()[0], (Interval{0, 10}));
  EXPECT_EQ(s.pieces()[1], (Interval{12, 20}));
  expectInvariants(s);
}

TEST(IntervalSet, EmptyBehaviour) {
  const IntervalSet empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.cardinality(), 0);
  EXPECT_FALSE(empty.contains(0));
  EXPECT_TRUE(empty.bounds().empty());
  EXPECT_TRUE(empty.intersect(IntervalSet::range(0, 10)).empty());
  EXPECT_EQ(empty.unite(IntervalSet::range(0, 3)).cardinality(), 3);
}

TEST(IntervalSet, PointAndRangeFactories) {
  EXPECT_EQ(IntervalSet::point(7).cardinality(), 1);
  EXPECT_TRUE(IntervalSet::point(7).contains(7));
  EXPECT_EQ(IntervalSet::range(3, 8).cardinality(), 5);
  EXPECT_TRUE(IntervalSet::range(3, 3).empty());
}

TEST(IntervalSet, InsertMergesRuns) {
  IntervalSet s;
  s.insert({0, 2});
  s.insert({4, 6});
  s.insert({8, 10});
  EXPECT_EQ(s.pieceCount(), 3u);
  s.insert({1, 9});  // bridges all three
  EXPECT_EQ(s.pieceCount(), 1u);
  EXPECT_EQ(s.cardinality(), 10);
  expectInvariants(s);
}

TEST(IntervalSet, InsertAdjacentCoalesces) {
  IntervalSet s;
  s.insert({0, 5});
  s.insert({5, 10});
  EXPECT_EQ(s.pieceCount(), 1u);
}

TEST(IntervalSet, InsertEmptyIsNoop) {
  IntervalSet s = IntervalSet::range(0, 4);
  s.insert({9, 9});
  EXPECT_EQ(s.pieceCount(), 1u);
  EXPECT_EQ(s.cardinality(), 4);
}

TEST(IntervalSet, Contains) {
  const IntervalSet s({{0, 3}, {10, 12}});
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(2));
  EXPECT_FALSE(s.contains(3));
  EXPECT_FALSE(s.contains(9));
  EXPECT_TRUE(s.contains(11));
  EXPECT_FALSE(s.contains(12));
  EXPECT_FALSE(s.contains(-1));
}

TEST(IntervalSet, SubtractKnownCases) {
  const IntervalSet base = IntervalSet::range(0, 10);
  EXPECT_EQ(base.subtract(IntervalSet::range(3, 5)),
            IntervalSet({{0, 3}, {5, 10}}));
  EXPECT_EQ(base.subtract(IntervalSet::range(0, 10)), IntervalSet());
  EXPECT_EQ(base.subtract(IntervalSet::range(-5, 0)), base);
  EXPECT_EQ(base.subtract(IntervalSet::range(10, 20)), base);
  EXPECT_EQ(base.subtract(IntervalSet({{0, 1}, {9, 10}})),
            IntervalSet::range(1, 9));
  EXPECT_EQ(base.subtract(IntervalSet({{2, 3}, {5, 6}})),
            IntervalSet({{0, 2}, {3, 5}, {6, 10}}));
}

TEST(IntervalSet, ContainsAll) {
  const IntervalSet big({{0, 10}, {20, 30}});
  EXPECT_TRUE(big.containsAll(IntervalSet({{2, 4}, {25, 28}})));
  EXPECT_FALSE(big.containsAll(IntervalSet::range(8, 12)));
  EXPECT_TRUE(big.containsAll(IntervalSet()));
}

TEST(IntervalSet, Bounds) {
  const IntervalSet s({{5, 7}, {100, 120}});
  EXPECT_EQ(s.bounds(), (Interval{5, 120}));
}

TEST(IntervalSet, NegativeDomain) {
  const IntervalSet s({{-10, -5}, {-3, 2}});
  EXPECT_EQ(s.cardinality(), 10);
  EXPECT_TRUE(s.contains(-10));
  EXPECT_TRUE(s.contains(-1));
  EXPECT_FALSE(s.contains(-4));
}

/// Property tests: all binary ops agree with an explicit point-set model,
/// across many random shapes.
class IntervalSetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalSetProperty, OpsMatchReferenceModel) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    const IntervalSet a = randomSet(rng, 6, 200);
    const IntervalSet b = randomSet(rng, 6, 200);
    expectInvariants(a);
    expectInvariants(b);

    const auto refA = expand(a);
    const auto refB = expand(b);

    std::set<std::int64_t> refUnion = refA;
    refUnion.insert(refB.begin(), refB.end());
    std::set<std::int64_t> refInter;
    for (const auto x : refA) {
      if (refB.count(x)) refInter.insert(x);
    }
    std::set<std::int64_t> refDiff;
    for (const auto x : refA) {
      if (!refB.count(x)) refDiff.insert(x);
    }

    const IntervalSet u = a.unite(b);
    const IntervalSet i = a.intersect(b);
    const IntervalSet d = a.subtract(b);
    expectInvariants(u);
    expectInvariants(i);
    expectInvariants(d);

    EXPECT_EQ(expand(u), refUnion);
    EXPECT_EQ(expand(i), refInter);
    EXPECT_EQ(expand(d), refDiff);
    EXPECT_EQ(a.intersectCardinality(b),
              static_cast<std::int64_t>(refInter.size()));
    EXPECT_EQ(u.cardinality(), static_cast<std::int64_t>(refUnion.size()));

    // Algebraic identities.
    EXPECT_EQ(a.intersect(b), b.intersect(a));
    EXPECT_EQ(a.unite(b), b.unite(a));
    EXPECT_EQ(d.unite(i), a);
    EXPECT_EQ(a.subtract(a), IntervalSet());
    EXPECT_EQ(a.unite(a), a);
    EXPECT_EQ(a.intersect(a), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace laps

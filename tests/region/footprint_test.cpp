#include "region/footprint.h"

#include <gtest/gtest.h>

#include <set>

#include "util/error.h"
#include "util/rng.h"

namespace laps {
namespace {

/// Reference model: enumerate every iteration point and linearize.
std::set<std::int64_t> bruteForceImage(const IterationSpace& space,
                                       const ArrayAccess& access,
                                       const ArrayInfo& info) {
  std::set<std::int64_t> out;
  std::vector<std::int64_t> idx;
  space.forEachPoint([&](std::span<const std::int64_t> p) {
    access.map.eval(p, idx);
    out.insert(info.linearize(idx));
  });
  return out;
}

std::set<std::int64_t> expand(const IntervalSet& s) {
  std::set<std::int64_t> points;
  for (const auto& iv : s.pieces()) {
    for (std::int64_t x = iv.lo; x < iv.hi; ++x) points.insert(x);
  }
  return points;
}

/// The paper's Prog1 setup: A[i1*1000 + i2][5] over [0,8)x[0,3000),
/// parallelized into 8 processes along i1.
struct Prog1Fixture {
  ArrayTable arrays;
  ArrayId arrayA;
  IterationSpace fullSpace = IterationSpace::box({{0, 8}, {0, 3000}});
  ArrayAccess access;

  Prog1Fixture() {
    arrayA = arrays.add("A", {10000, 16}, 4);
    access = ArrayAccess{arrayA,
                         AffineMap{AffineExpr({1000, 1}, 0),
                                   AffineExpr::constant(5)},
                         AccessKind::Read};
  }

  [[nodiscard]] IntervalSet processFootprint(std::int64_t k) const {
    return accessFootprint(fullSpace.fixDim(0, k), access, arrays.at(arrayA));
  }
};

TEST(LinearizeAccess, RowMajorComposition) {
  ArrayTable arrays;
  const ArrayId a = arrays.add("A", {10000, 16}, 4);
  const ArrayAccess access{
      a, AffineMap{AffineExpr({1000, 1}, 0), AffineExpr::constant(5)},
      AccessKind::Read};
  const AffineExpr lin = linearizeAccess(access, arrays.at(a));
  // lin(i1, i2) = (1000*i1 + i2)*16 + 5.
  const std::array<std::int64_t, 2> p{2, 7};
  EXPECT_EQ(lin.eval(p), (1000 * 2 + 7) * 16 + 5);
  EXPECT_EQ(lin.coeff(0), 16000);
  EXPECT_EQ(lin.coeff(1), 16);
  EXPECT_EQ(lin.constantTerm(), 5);
}

TEST(LinearizeAccess, RankMismatchThrows) {
  ArrayTable arrays;
  const ArrayId a = arrays.add("A", {10, 10}, 4);
  const ArrayAccess oneD{a, AffineMap{AffineExpr({1}, 0)}, AccessKind::Read};
  EXPECT_THROW(linearizeAccess(oneD, arrays.at(a)), Error);
}

TEST(Footprint, Prog1ProcessSize) {
  const Prog1Fixture f;
  for (std::int64_t k = 0; k < 8; ++k) {
    const IntervalSet fp = f.processFootprint(k);
    EXPECT_EQ(fp.cardinality(), 3000) << "process " << k;
  }
}

TEST(Footprint, Prog1PairwiseSharingFormula) {
  // |SS_{k,p}| = max(0, 3000 - 1000*|k-p|): 2000 for neighbors,
  // 1000 at distance 2, 0 beyond (paper Fig. 2(a)).
  const Prog1Fixture f;
  std::vector<IntervalSet> fps;
  for (std::int64_t k = 0; k < 8; ++k) fps.push_back(f.processFootprint(k));
  for (std::int64_t k = 0; k < 8; ++k) {
    for (std::int64_t p = 0; p < 8; ++p) {
      const std::int64_t expected =
          std::max<std::int64_t>(0, 3000 - 1000 * std::llabs(k - p));
      EXPECT_EQ(fps[static_cast<std::size_t>(k)].intersectCardinality(
                    fps[static_cast<std::size_t>(p)]),
                k == p ? 3000 : expected)
          << "k=" << k << " p=" << p;
    }
  }
}

TEST(Footprint, ContiguousInnerAccessCoalesces) {
  ArrayTable arrays;
  const ArrayId a = arrays.add("V", {100000}, 4);
  const ArrayAccess access{a, AffineMap{AffineExpr({1}, 0)}, AccessKind::Read};
  const auto space = IterationSpace::box({{100, 5000}});
  const IntervalSet fp = accessFootprint(space, access, arrays.at(a));
  EXPECT_EQ(fp.pieceCount(), 1u);
  EXPECT_EQ(fp.cardinality(), 4900);
  EXPECT_EQ(fp.bounds(), (Interval{100, 5000}));
}

TEST(Footprint, ConstantAccessIsSinglePoint) {
  ArrayTable arrays;
  const ArrayId a = arrays.add("S", {64}, 4);
  const ArrayAccess access{a, AffineMap{AffineExpr::constant(7)},
                           AccessKind::Read};
  const auto space = IterationSpace::box({{0, 50}, {0, 50}});
  const IntervalSet fp = accessFootprint(space, access, arrays.at(a));
  EXPECT_EQ(fp.cardinality(), 1);
  EXPECT_TRUE(fp.contains(7));
}

TEST(Footprint, EmptySpaceGivesEmptyFootprint) {
  ArrayTable arrays;
  const ArrayId a = arrays.add("V", {100}, 4);
  const ArrayAccess access{a, AffineMap{AffineExpr({1}, 0)}, AccessKind::Read};
  const auto space = IterationSpace::box({{5, 5}});
  EXPECT_TRUE(accessFootprint(space, access, arrays.at(a)).empty());
}

TEST(Footprint, BudgetExceededThrows) {
  ArrayTable arrays;
  const ArrayId a = arrays.add("Huge", {1 << 28}, 4);
  // Stride-2 access: every iteration is its own fragment.
  const ArrayAccess access{a, AffineMap{AffineExpr({2}, 0)}, AccessKind::Read};
  const auto space = IterationSpace::box({{0, 1 << 20}});
  EXPECT_THROW(accessFootprint(space, access, arrays.at(a), /*budget=*/1000),
               Error);
  EXPECT_NO_THROW(
      accessFootprint(space, access, arrays.at(a), /*budget=*/1 << 21));
}

class FootprintProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FootprintProperty, MatchesBruteForceEnumeration) {
  Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    ArrayTable arrays;
    const std::int64_t rows = rng.range(8, 40);
    const std::int64_t cols = rng.range(4, 24);
    const ArrayId a = arrays.add("A", {rows, cols}, 4);

    // Random affine access kept within bounds by construction:
    // (alpha*i0 + r0, beta*i1 + c0) over a space sized to fit.
    const std::int64_t alpha = rng.range(1, 3);
    const std::int64_t beta = rng.range(1, 2);
    const std::int64_t r0 = rng.range(0, 3);
    const std::int64_t c0 = rng.range(0, 2);
    const std::int64_t iMax = (rows - 1 - r0) / alpha + 1;
    const std::int64_t jMax = (cols - 1 - c0) / beta + 1;
    const auto space = IterationSpace::box(
        {{0, rng.range(1, iMax)}, {0, rng.range(1, jMax)}});
    const ArrayAccess access{
        a,
        AffineMap{AffineExpr({alpha, 0}, r0), AffineExpr({0, beta}, c0)},
        AccessKind::Read};

    const IntervalSet fp = accessFootprint(space, access, arrays.at(a));
    EXPECT_EQ(expand(fp), bruteForceImage(space, access, arrays.at(a)))
        << "space=" << space.toString() << " map=" << access.map.toString()
        << " array=" << rows << "x" << cols;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FootprintProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(FootprintClass, AddUnionsPerArray) {
  Footprint fp;
  fp.add(0, IntervalSet::range(0, 10));
  fp.add(0, IntervalSet::range(5, 15));
  fp.add(1, IntervalSet::range(100, 110));
  EXPECT_EQ(fp.of(0).cardinality(), 15);
  EXPECT_EQ(fp.of(1).cardinality(), 10);
  EXPECT_EQ(fp.totalElements(), 25);
  EXPECT_TRUE(fp.touches(0));
  EXPECT_FALSE(fp.touches(2));
  EXPECT_TRUE(fp.of(2).empty());
  EXPECT_EQ(fp.arrays(), (std::vector<ArrayId>{0, 1}));
}

TEST(FootprintClass, AddEmptySetIsNoop) {
  Footprint fp;
  fp.add(3, IntervalSet());
  EXPECT_FALSE(fp.touches(3));
  EXPECT_EQ(fp.totalElements(), 0);
}

TEST(FootprintClass, SharedElementsSumsAcrossArrays) {
  Footprint p;
  p.add(0, IntervalSet::range(0, 100));
  p.add(1, IntervalSet::range(0, 50));
  Footprint q;
  q.add(0, IntervalSet::range(90, 200));   // overlap 10
  q.add(1, IntervalSet::range(40, 45));    // overlap 5
  q.add(2, IntervalSet::range(0, 1000));   // no counterpart in p
  EXPECT_EQ(p.sharedElements(q), 15);
  EXPECT_EQ(q.sharedElements(p), 15);  // symmetric
}

TEST(FootprintClass, DisjointArraysShareNothing) {
  Footprint p;
  p.add(0, IntervalSet::range(0, 100));
  Footprint q;
  q.add(1, IntervalSet::range(0, 100));
  EXPECT_EQ(p.sharedElements(q), 0);
}

TEST(FootprintClass, MergeAccumulates) {
  Footprint p;
  p.add(0, IntervalSet::range(0, 10));
  Footprint q;
  q.add(0, IntervalSet::range(20, 30));
  q.add(1, IntervalSet::range(0, 5));
  p.merge(q);
  EXPECT_EQ(p.of(0).cardinality(), 20);
  EXPECT_EQ(p.of(1).cardinality(), 5);
}

}  // namespace
}  // namespace laps

/// \file parallel_analysis_test.cpp
/// \brief Parallel-vs-serial bit-identity of the analysis pipeline, and
/// the strided-footprint fast path against per-point enumeration.
///
/// SharingMatrix::compute and Workload::footprints() promise results
/// bit-identical to the serial loop at any thread count (static
/// chunking + ordered collection, each index writing only its own
/// cells). These tests pin that promise at {1, 2, 8} threads, and pin
/// accessFootprint's strided fast path (index-space union + sorted
/// expansion) against brute-force per-point enumeration on randomized
/// affine accesses.

#include <gtest/gtest.h>

#include "core/laps.h"
#include "util/parallel.h"

namespace laps {
namespace {

/// Restores automatic thread-count resolution when a test exits.
class ThreadCountGuard {
 public:
  ~ThreadCountGuard() { setParallelThreadCount(0); }
};

/// The serial reference: the textbook O(n^2) pairwise loop.
SharingMatrix serialSharingMatrix(std::span<const Footprint> footprints) {
  SharingMatrix m(footprints.size());
  for (std::size_t p = 0; p < footprints.size(); ++p) {
    m.set(p, p, footprints[p].totalElements());
    for (std::size_t q = p + 1; q < footprints.size(); ++q) {
      const std::int64_t shared = footprints[p].sharedElements(footprints[q]);
      m.set(p, q, shared);
      m.set(q, p, shared);
    }
  }
  return m;
}

void expectMatricesIdentical(const SharingMatrix& a, const SharingMatrix& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t p = 0; p < a.size(); ++p) {
    for (std::size_t q = 0; q < a.size(); ++q) {
      ASSERT_EQ(a.at(p, q), b.at(p, q)) << "cell (" << p << ", " << q << ")";
    }
  }
}

TEST(ParallelAnalysisTest, SharingMatrixBitIdenticalAcrossThreadCounts) {
  const ThreadCountGuard guard;
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, 4);
  const auto footprints = mix.footprints();
  const SharingMatrix reference = serialSharingMatrix(footprints);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    setParallelThreadCount(threads);
    const SharingMatrix m = SharingMatrix::compute(footprints);
    expectMatricesIdentical(m, reference);
  }
}

TEST(ParallelAnalysisTest, FootprintsBitIdenticalAcrossThreadCounts) {
  const ThreadCountGuard guard;
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, 3);

  setParallelThreadCount(1);
  const std::vector<Footprint> reference = mix.footprints();
  for (const std::size_t threads : {2u, 8u}) {
    setParallelThreadCount(threads);
    const std::vector<Footprint> fps = mix.footprints();
    ASSERT_EQ(fps.size(), reference.size());
    for (std::size_t i = 0; i < fps.size(); ++i) {
      // IntervalSet's representation is canonical, so set equality over
      // the per-array maps is bit-identity of the footprints.
      ASSERT_EQ(fps[i].perArray(), reference[i].perArray())
          << "process " << i << " at " << threads << " threads";
    }
  }
}

TEST(ParallelAnalysisTest, SharingMatrixSmallSizes) {
  const ThreadCountGuard guard;
  // Degenerate sizes around the chunking boundaries: 0, 1 (no pairs)
  // and 2..5 processes with 8 threads (fewer pairs than threads).
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, 1);
  const auto footprints = mix.footprints();
  for (const std::size_t n : {0u, 1u, 2u, 3u, 5u}) {
    if (n > footprints.size()) continue;
    const std::span<const Footprint> slice(footprints.data(), n);
    const SharingMatrix reference = serialSharingMatrix(slice);
    for (const std::size_t threads : {1u, 8u}) {
      setParallelThreadCount(threads);
      expectMatricesIdentical(SharingMatrix::compute(slice), reference);
    }
  }
}

/// Brute-force oracle: evaluate the linearized access at every
/// iteration point, one addPoint per point (the pre-fast-path
/// behaviour, normalized through the trusted sort path).
IntervalSet perPointFootprint(const IterationSpace& space,
                              const ArrayAccess& access,
                              const ArrayInfo& info) {
  if (space.empty()) return {};
  const AffineExpr linear = linearizeAccess(access, info);
  IntervalSet::Builder builder;
  space.forEachPoint([&](std::span<const std::int64_t> point) {
    builder.addPoint(linear.eval(point));
  });
  return builder.build();
}

TEST(ParallelAnalysisTest, StridedFastPathMatchesPerPointEnumeration) {
  Rng rng(20260727);
  for (int trial = 0; trial < 200; ++trial) {
    // Random 1-3D space (steps 1..3, small extents) and a random affine
    // access: coefficients span negative, zero, non-multiples of the
    // run stride (mixed residue classes) and large gaps.
    const std::size_t rank = static_cast<std::size_t>(rng.range(1, 3));
    std::vector<LoopDim> dims;
    for (std::size_t d = 0; d < rank; ++d) {
      const std::int64_t lo = rng.range(-4, 4);
      dims.push_back(LoopDim{lo, lo + rng.range(0, 9), rng.range(1, 3)});
    }
    const IterationSpace space{dims};

    ArrayTable arrays;
    const ArrayId id = arrays.add("A", {128, 16}, 4);
    std::vector<std::int64_t> rowCoeffs(rank);
    std::vector<std::int64_t> colCoeffs(rank);
    for (std::size_t d = 0; d < rank; ++d) {
      rowCoeffs[d] = rng.range(-6, 6);
      colCoeffs[d] = rng.range(-3, 3);
    }
    const ArrayAccess access{
        id,
        AffineMap{AffineExpr(rowCoeffs, rng.range(0, 8)),
                  AffineExpr(colCoeffs, rng.range(0, 8))},
        AccessKind::Read};

    const IntervalSet fast = accessFootprint(space, access, arrays.at(id));
    const IntervalSet oracle = perPointFootprint(space, access, arrays.at(id));
    ASSERT_EQ(fast, oracle)
        << "trial " << trial << " space " << space.toString();
  }
}

TEST(ParallelAnalysisTest, StridedFastPathLargeSingleResidueShape) {
  // The BM_FootprintProg1 shape: overlapping stride-16 runs in a single
  // residue class, where the index-space union performs the dedup.
  ArrayTable arrays;
  const ArrayId a = arrays.add("A", {10000, 16}, 4);
  const ArrayAccess access{
      a, AffineMap{AffineExpr({1000, 1}, 0), AffineExpr::constant(5)},
      AccessKind::Read};
  const auto space = IterationSpace::box({{0, 8}, {0, 3000}});
  const IntervalSet fast = accessFootprint(space, access, arrays.at(a));
  const IntervalSet oracle = perPointFootprint(space, access, arrays.at(a));
  EXPECT_EQ(fast, oracle);
  // 10000 distinct elements, stride 16 apart: no coalescing.
  EXPECT_EQ(fast.cardinality(), 10000);
  EXPECT_EQ(fast.pieceCount(), 10000u);
}

}  // namespace
}  // namespace laps

/// \file shared_l2_test.cpp
/// \brief Banked shared L2: interleaving, occupancy, write-backs, and the
/// MemoryHierarchy composition (latency stacking, inclusion
/// back-invalidation, posted bus write-backs).

#include "cache/shared_l2.h"

#include <gtest/gtest.h>

#include "cache/hierarchy.h"
#include "util/error.h"

namespace laps {
namespace {

SharedL2Config smallL2() {
  SharedL2Config cfg;
  cfg.sizeBytes = 4096;
  cfg.assoc = 2;
  cfg.lineBytes = 32;
  cfg.bankCount = 4;
  cfg.hitLatencyCycles = 8;
  cfg.bankBusyCycles = 4;
  return cfg;
}

TEST(SharedL2Config, GeometryDerivation) {
  const SharedL2Config cfg = smallL2();
  EXPECT_EQ(cfg.bankConfig().sizeBytes, 1024);
  EXPECT_EQ(cfg.bankConfig().numSets(), 16);
  EXPECT_EQ(cfg.aggregateConfig().sizeBytes, 4096);
  cfg.validate();
}

TEST(SharedL2Config, ValidateRejectsBadGeometry) {
  SharedL2Config cfg = smallL2();
  cfg.bankCount = 3;  // 4096 not divisible by 3
  EXPECT_THROW(cfg.validate(), Error);
  cfg = smallL2();
  cfg.bankBusyCycles = 0;
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(SharedL2, LinesInterleaveAcrossBanks) {
  const SharedL2Config cfg = smallL2();
  SharedL2 l2(cfg);
  EXPECT_EQ(l2.bankOf(0), 0);
  EXPECT_EQ(l2.bankOf(32), 1);
  EXPECT_EQ(l2.bankOf(64), 2);
  EXPECT_EQ(l2.bankOf(96), 3);
  EXPECT_EQ(l2.bankOf(128), 0);
  EXPECT_EQ(l2.bankOf(130), 0);  // same line as 128
}

TEST(SharedL2, BankFoldingUsesTheWholeBank) {
  // Lines of one bank are bankCount apart in the address space; folding
  // must map them to *consecutive* bank sets, so a bank-striding sweep
  // fills the whole bank before evicting anything.
  const SharedL2Config cfg = smallL2();  // bank: 16 sets * 2 ways = 32 lines
  SharedL2 l2(cfg);
  const std::int64_t stride = cfg.lineBytes * cfg.bankCount;  // bank 0 only
  for (std::int64_t i = 0; i < 32; ++i) {
    const auto r =
        l2.access(static_cast<std::uint64_t>(i * stride), /*now=*/0);
    EXPECT_EQ(r.outcome, AccessOutcome::Miss);
    EXPECT_FALSE(r.evictedLineAddr.has_value()) << "line " << i;
  }
  // All 32 lines resident; the 33rd evicts and reports a real address.
  const auto r = l2.access(static_cast<std::uint64_t>(32 * stride), 0);
  EXPECT_EQ(r.outcome, AccessOutcome::Miss);
  ASSERT_TRUE(r.evictedLineAddr.has_value());
  EXPECT_EQ(l2.bankOf(*r.evictedLineAddr), 0);  // victim of the same bank
  EXPECT_EQ(*r.evictedLineAddr % static_cast<std::uint64_t>(cfg.lineBytes),
            0u);
}

TEST(SharedL2, SameBankRequestsQueueBehindEachOther) {
  const SharedL2Config cfg = smallL2();  // bankBusyCycles = 4
  SharedL2 l2(cfg);
  EXPECT_EQ(l2.access(0, 100).bankWaitCycles, 0);
  EXPECT_EQ(l2.access(128, 100).bankWaitCycles, 4);   // same bank, busy
  EXPECT_EQ(l2.access(32, 100).bankWaitCycles, 0);    // different bank
  EXPECT_EQ(l2.bankWaitCycles(), 4u);
}

TEST(SharedL2, WritebackDirtiesTheResidentCopy) {
  const SharedL2Config cfg = smallL2();
  SharedL2 l2(cfg);
  l2.access(0, 0);      // fill, clean
  l2.writeback(0);      // L1 evicted a dirty copy
  EXPECT_EQ(l2.stats().accesses, 1u);  // writeback is not an access
  // Force the line out: its eviction must now count as a write-back.
  const std::int64_t stride = cfg.lineBytes * cfg.bankCount;
  for (std::int64_t i = 1; i <= 32; ++i) {
    l2.access(static_cast<std::uint64_t>(i * stride), 0);
  }
  EXPECT_FALSE(l2.probe(0));
  EXPECT_EQ(l2.stats().dirtyEvictions, 1u);
}

TEST(MemoryHierarchy, FlatMissLatencyIsTheConstant) {
  MemoryHierarchy flat(75);
  EXPECT_FALSE(flat.contended());
  EXPECT_EQ(flat.missLatency(0, 0), 75);
  EXPECT_EQ(flat.missLatency(0, 123456), 75);  // time-independent
}

TEST(MemoryHierarchy, L2HitAndMissLatencyComposition) {
  BusConfig bus;
  bus.maxOutstanding = 2;
  bus.latencyCycles = 75;
  bus.widthBytes = 8;  // occupancy 79 on 32 B lines
  MemoryHierarchy h(75, smallL2(), bus, 32);
  EXPECT_TRUE(h.contended());
  // Cold: bank (no wait) + L2 hit latency 8 + bus 79.
  EXPECT_EQ(h.missLatency(0, 0), 8 + 79);
  // Warm L2 hit long after: just the L2 latency.
  EXPECT_EQ(h.missLatency(0, 1000), 8);
}

TEST(MemoryHierarchy, L2WithoutBusFallsBackToFlatMemory) {
  MemoryHierarchy h(75, smallL2(), std::nullopt, 32);
  EXPECT_EQ(h.missLatency(0, 0), 8 + 75);
  EXPECT_EQ(h.missLatency(0, 1000), 8);
  EXPECT_EQ(h.bus(), nullptr);
}

TEST(MemoryHierarchy, InclusionBackInvalidatesL1Copies) {
  const SharedL2Config cfg = smallL2();
  MemoryHierarchy h(75, cfg, std::nullopt, 32);
  SetAssocCache l1(CacheConfig{1024, 2, 32, 2});
  h.registerDataCache(&l1);

  l1.access(0, /*isWrite=*/false);
  h.missLatency(0, 0);  // line 0 now in L2 too
  ASSERT_TRUE(l1.probe(0));

  // Stream 32 more lines of bank 0 through the L2: line 0 must fall out
  // of the L2 eventually, and its L1 copy must fall with it.
  const std::int64_t stride = cfg.lineBytes * cfg.bankCount;
  for (std::int64_t i = 1; i <= 32; ++i) {
    h.missLatency(static_cast<std::uint64_t>(i * stride), 0);
  }
  EXPECT_FALSE(h.l2()->probe(0));
  EXPECT_FALSE(l1.probe(0));
  EXPECT_EQ(l1.stats().invalidations, 1u);
  h.unregisterDataCache(&l1);
}

TEST(MemoryHierarchy, DirtyBackInvalidationPostsABusWriteback) {
  const SharedL2Config cfg = smallL2();
  BusConfig bus;
  bus.maxOutstanding = 4;
  MemoryHierarchy h(75, cfg, bus, 32);
  SetAssocCache l1(CacheConfig{1024, 2, 32, 2});
  h.registerDataCache(&l1);

  l1.access(0, /*isWrite=*/true);  // dirty in L1
  h.missLatency(0, 0);
  const std::uint64_t before = h.bus()->stats().transactions;
  const std::int64_t stride = cfg.lineBytes * cfg.bankCount;
  for (std::int64_t i = 1; i <= 32; ++i) {
    h.missLatency(static_cast<std::uint64_t>(i * stride), 0);
  }
  EXPECT_FALSE(l1.probe(0));
  // 32 demand fills plus at least the one posted write-back of line 0's
  // dirty L1 copy — which the L2's own dirty-eviction counter does not
  // see (the L2 entry was clean), so it is tallied separately.
  EXPECT_GE(h.bus()->stats().transactions, before + 32 + 1);
  EXPECT_EQ(h.inclusionWritebacks(), 1u);
  h.unregisterDataCache(&l1);
}

TEST(MemoryHierarchy, L1WritebackWithL2IsAbsorbedOnChip) {
  BusConfig bus;
  bus.maxOutstanding = 4;
  MemoryHierarchy withL2(75, smallL2(), bus, 32);
  withL2.missLatency(0, 0);
  const std::uint64_t beforeTx = withL2.bus()->stats().transactions;
  EXPECT_TRUE(withL2.absorbL1Writeback(0));  // L2 holds the line
  EXPECT_EQ(withL2.bus()->stats().transactions, beforeTx);  // no bus trip
  EXPECT_EQ(withL2.l2()->stats().accesses, 1u);  // and not an L2 access
  // A line the L2 already lost cannot absorb the write-back; it leaves
  // the chip as posted traffic and is tallied for the energy model.
  EXPECT_FALSE(withL2.absorbL1Writeback(4096));
  withL2.postL1Writeback(50);
  EXPECT_EQ(withL2.bus()->stats().transactions, beforeTx + 1);
  EXPECT_EQ(withL2.inclusionWritebacks(), 1u);

  // Without an L2 the write-back is posted straight onto the bus.
  MemoryHierarchy busOnly(75, std::nullopt, bus, 32);
  EXPECT_FALSE(busOnly.absorbL1Writeback(0));
  busOnly.postL1Writeback(50);
  EXPECT_EQ(busOnly.bus()->stats().transactions, 1u);
  EXPECT_EQ(busOnly.bus()->stats().waitCycles, 0u);
  EXPECT_EQ(busOnly.inclusionWritebacks(), 0u);  // L1 stats cover it
}

TEST(MemoryHierarchy, DirtyVictimSurvivesItsOwnMissesL2Eviction) {
  // Regression: the L1 evicts dirty victim V on the same miss whose L2
  // fill evicts V's (clean) L2 copy. Absorbing the write-back *before*
  // the fill dirty-marks that copy, so the eviction carries the data
  // out as a real write-back instead of silently dropping it.
  SharedL2Config l2;
  l2.sizeBytes = 64;  // 1 bank, direct-mapped, 2 sets: tiny on purpose
  l2.assoc = 1;
  l2.lineBytes = 32;
  l2.bankCount = 1;
  auto shared = std::make_shared<MemoryHierarchy>(75, l2, std::nullopt, 32);
  MemoryConfig cfg;
  cfg.l1d = CacheConfig{32, 1, 32, 2};  // a single line
  cfg.l1i = CacheConfig{32, 1, 32, 2};
  cfg.modelICache = false;
  MemorySystem mem(cfg, shared);

  mem.dataAccess(0, /*isWrite=*/true, 0);  // V = line 0: dirty L1, clean L2
  // Line 64 shares V's L1 slot *and* V's L2 set: this one miss evicts
  // dirty V from the L1 and its fill evicts V's copy from the L2.
  mem.dataAccess(64, /*isWrite=*/false, 100);
  EXPECT_FALSE(shared->l2()->probe(0));
  // The dirty data left the chip exactly once, visibly.
  EXPECT_EQ(shared->l2()->stats().dirtyEvictions +
                shared->inclusionWritebacks(),
            1u);
}

}  // namespace
}  // namespace laps

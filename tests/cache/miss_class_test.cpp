#include "cache/miss_class.h"

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <optional>
#include <set>

#include "cache/cache.h"

namespace laps {
namespace {

CacheConfig tinyDirectMapped() {
  // 8 sets x 1 way x 16B = 128 B, direct-mapped: easy to force conflicts.
  return CacheConfig{128, 1, 16, 2};
}

/// Drives a real cache and classifier together.
struct Rig {
  SetAssocCache cache;
  MissClassifier classifier;

  explicit Rig(const CacheConfig& cfg) : cache(cfg), classifier(cfg) {}

  std::optional<MissKind> access(std::uint64_t addr, bool write = false) {
    const bool miss = cache.access(addr, write) == AccessOutcome::Miss;
    return classifier.record(addr, miss);
  }
};

TEST(MissClassifier, FirstTouchIsCompulsory) {
  Rig rig(tinyDirectMapped());
  const auto kind = rig.access(0);
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, MissKind::Compulsory);
  EXPECT_EQ(rig.classifier.breakdown().compulsory, 1u);
  EXPECT_EQ(rig.classifier.breakdown().total(), 1u);
}

TEST(MissClassifier, HitReturnsNothing) {
  Rig rig(tinyDirectMapped());
  rig.access(0);
  EXPECT_FALSE(rig.access(0).has_value());
  EXPECT_EQ(rig.classifier.breakdown().total(), 1u);
}

TEST(MissClassifier, ConflictMissDetected) {
  Rig rig(tinyDirectMapped());  // 8 lines capacity, direct-mapped
  // Lines 0 and 128 collide in set 0 but the cache holds 8 lines total,
  // so a fully-associative cache would keep both: conflict miss.
  rig.access(0);    // compulsory
  rig.access(128);  // compulsory, evicts 0
  const auto kind = rig.access(0);
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, MissKind::Conflict);
}

TEST(MissClassifier, CapacityMissDetected) {
  Rig rig(tinyDirectMapped());  // capacity: 8 lines
  // Touch 16 distinct lines that fill every set evenly, then re-touch the
  // first: even fully-associative LRU would have evicted it.
  for (std::uint64_t i = 0; i < 16; ++i) {
    rig.access(i * 16);
  }
  const auto kind = rig.access(0);
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, MissKind::Capacity);
}

TEST(MissClassifier, BreakdownTotals) {
  Rig rig(tinyDirectMapped());
  for (std::uint64_t i = 0; i < 16; ++i) rig.access(i * 16);
  rig.access(0);
  rig.access(0);  // now a hit? no: 0 missed and was refilled; second is hit
  const MissBreakdown& b = rig.classifier.breakdown();
  EXPECT_EQ(b.compulsory, 16u);
  EXPECT_EQ(b.total(), 17u);
}

TEST(MissClassifier, FlushShadowKeepsCompulsoryHistory) {
  Rig rig(tinyDirectMapped());
  rig.access(0);
  rig.cache.flush();
  rig.classifier.flushShadow();
  // Re-access after flush: not compulsory (seen before); the shadow also
  // lost the line, so it classifies as capacity.
  const auto kind = rig.access(0);
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, MissKind::Capacity);
}

TEST(MissClassifier, ResetStatsClearsCounters) {
  Rig rig(tinyDirectMapped());
  rig.access(0);
  rig.classifier.resetStats();
  EXPECT_EQ(rig.classifier.breakdown().total(), 0u);
}

TEST(MissBreakdown, Accumulate) {
  MissBreakdown a{1, 2, 3};
  a.accumulate(MissBreakdown{10, 20, 30});
  EXPECT_EQ(a.compulsory, 11u);
  EXPECT_EQ(a.capacity, 22u);
  EXPECT_EQ(a.conflict, 33u);
  EXPECT_EQ(a.total(), 66u);
}

/// Sanity: class totals always equal the cache's miss count.
TEST(MissClassifier, TotalsMatchCacheMisses) {
  Rig rig(CacheConfig{256, 2, 16, 2});
  std::uint64_t addr = 0;
  for (int i = 0; i < 5000; ++i) {
    addr = (addr * 2654435761u + 17) % 4096;
    rig.access(addr, i % 3 == 0);
  }
  EXPECT_EQ(rig.classifier.breakdown().total(), rig.cache.stats().misses);
}

// Reimplementation of the 3C classifier on ordered containers only
// (std::set ever-seen, std::map positions, recency order in a list) —
// the oracle the determinism contract's LINT-ALLOW on miss_class.h's
// hash containers is pinned against.
class OrderedOracle {
 public:
  explicit OrderedOracle(const CacheConfig& cfg)
      : lineBytes_(cfg.lineBytes),
        capacityLines_(static_cast<std::size_t>(cfg.numLines())) {}

  std::optional<MissKind> record(std::uint64_t addr, bool realMiss) {
    const std::uint64_t line =
        addr / static_cast<std::uint64_t>(lineBytes_) *
        static_cast<std::uint64_t>(lineBytes_);
    const bool first = everSeen_.insert(line).second;
    const bool shadowHit = shadowAccess(line);
    if (!realMiss) return std::nullopt;
    if (first) return MissKind::Compulsory;
    return shadowHit ? MissKind::Conflict : MissKind::Capacity;
  }

  void flushShadow() {
    lru_.clear();
    where_.clear();
  }

 private:
  bool shadowAccess(std::uint64_t line) {
    const auto it = where_.find(line);
    if (it != where_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return true;
    }
    if (lru_.size() == capacityLines_) {
      where_.erase(lru_.back());
      lru_.pop_back();
    }
    lru_.push_front(line);
    where_[line] = lru_.begin();
    return false;
  }

  std::int64_t lineBytes_;
  std::size_t capacityLines_;
  std::set<std::uint64_t> everSeen_;
  std::list<std::uint64_t> lru_;
  std::map<std::uint64_t, std::list<std::uint64_t>::iterator> where_;
};

TEST(MissClassifier, OrderedOracleAgreement) {
  // Proves the classifier's hash containers are order-insensitive: over
  // a pseudorandom mixed stream (hits, all three miss classes, shadow
  // flushes) every per-access classification must equal the ordered
  // oracle's. Any dependence on hash iteration order would eventually
  // disagree with the oracle's std::set/std::map semantics.
  const CacheConfig cfg = tinyDirectMapped();
  Rig rig(cfg);
  OrderedOracle oracle(cfg);
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;  // splitmix-style stream
  for (int i = 0; i < 20000; ++i) {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    // 64 distinct lines over a 8-line shadow: plenty of capacity misses;
    // direct-mapped real cache: plenty of conflict misses.
    const std::uint64_t addr = (z % 64) * 16;
    const bool miss = rig.cache.access(addr, false) == AccessOutcome::Miss;
    const auto got = rig.classifier.record(addr, miss);
    const auto expected = oracle.record(addr, miss);
    ASSERT_EQ(got, expected) << "access " << i << " addr " << addr;
    if (z % 997 == 0) {
      rig.classifier.flushShadow();
      oracle.flushShadow();
    }
  }
  EXPECT_GT(rig.classifier.breakdown().capacity, 0u);
  EXPECT_GT(rig.classifier.breakdown().conflict, 0u);
}

}  // namespace
}  // namespace laps

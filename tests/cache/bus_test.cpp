/// \file bus_test.cpp
/// \brief BusyTimeline calendar semantics and the bounded MemoryBus.

#include "cache/bus.h"

#include <gtest/gtest.h>

#include <map>

#include "util/audit.h"
#include "util/error.h"

namespace laps {
namespace {

TEST(BusyTimeline, FreeResourceStartsImmediately) {
  BusyTimeline t;
  EXPECT_EQ(t.reserve(100, 10), 100);
  EXPECT_EQ(t.reserve(110, 10), 110);  // back-to-back, no wait
}

TEST(BusyTimeline, QueuesBehindBusyInterval) {
  BusyTimeline t;
  EXPECT_EQ(t.reserve(100, 10), 100);  // busy [100, 110)
  EXPECT_EQ(t.reserve(105, 10), 110);  // overlaps: pushed to 110
  EXPECT_EQ(t.reserve(105, 10), 120);  // and again behind the second
}

TEST(BusyTimeline, FillsEarlierGapsLeftByOutOfOrderRequests) {
  // A far-ahead segment books late; a later-simulated request with an
  // earlier issue time must slot into the untouched past, not queue
  // behind the future reservation.
  BusyTimeline t;
  EXPECT_EQ(t.reserve(1000, 10), 1000);
  EXPECT_EQ(t.reserve(0, 10), 0);
  // A gap exactly as large as the duration is usable.
  EXPECT_EQ(t.reserve(985, 10), 985);
  // The gap [10, 985) shrank from both ends; a request needing more room
  // than what is left before 985 lands after the 1000-block.
  EXPECT_EQ(t.reserve(980, 10), 1010);
}

TEST(BusyTimeline, CoalescesAdjacentIntervals) {
  BusyTimeline t;
  t.reserve(0, 10);
  t.reserve(10, 10);
  t.reserve(20, 10);
  EXPECT_EQ(t.intervalCount(), 1u);  // one blob [0, 30)
  t.reserve(40, 10);
  EXPECT_EQ(t.intervalCount(), 2u);
  t.reserve(30, 10);  // bridges the hole
  EXPECT_EQ(t.intervalCount(), 1u);
}

TEST(BusyTimeline, RetireBeforeDropsOnlyUnreachableIntervals) {
  BusyTimeline t;
  t.reserve(0, 10);
  t.reserve(100, 10);
  t.retireBefore(50);
  EXPECT_EQ(t.intervalCount(), 1u);
  // The retired past no longer blocks (nor serves) anything; the
  // remaining interval still queues requests.
  EXPECT_EQ(t.reserve(100, 10), 110);
}

TEST(BusyTimeline, RejectsNonPositiveDuration) {
  BusyTimeline t;
  EXPECT_THROW(t.reserve(0, 0), Error);
}

TEST(BusConfig, OccupancyIsLatencyPlusTransfer) {
  BusConfig cfg;
  cfg.latencyCycles = 75;
  cfg.widthBytes = 8;
  EXPECT_EQ(cfg.occupancyCycles(32), 75 + 4);
  cfg.widthBytes = 16;
  EXPECT_EQ(cfg.occupancyCycles(32), 75 + 2);
  cfg.widthBytes = 3;  // non-dividing width rounds the transfer up
  EXPECT_EQ(cfg.occupancyCycles(32), 75 + 11);
}

TEST(BusConfig, ValidateRejectsNonPositiveFields) {
  BusConfig cfg;
  cfg.maxOutstanding = 0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg = BusConfig{};
  cfg.widthBytes = 0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg = BusConfig{};
  cfg.latencyCycles = 0;
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(MemoryBus, UncontendedDemandCostsOccupancy) {
  BusConfig cfg;
  cfg.maxOutstanding = 2;
  cfg.latencyCycles = 75;
  cfg.widthBytes = 8;
  MemoryBus bus(cfg, 32);
  EXPECT_EQ(bus.demandAccess(0), 79);
  EXPECT_EQ(bus.stats().transactions, 1u);
  EXPECT_EQ(bus.stats().waitCycles, 0u);
}

TEST(MemoryBus, BoundedOutstandingQueuesTheOverflow) {
  BusConfig cfg;
  cfg.maxOutstanding = 2;
  cfg.latencyCycles = 75;
  cfg.widthBytes = 8;  // occupancy 79
  MemoryBus bus(cfg, 32);
  EXPECT_EQ(bus.demandAccess(0), 79);       // slot 0: [0, 79)
  EXPECT_EQ(bus.demandAccess(0), 79);       // slot 1: [0, 79)
  EXPECT_EQ(bus.demandAccess(0), 79 + 79);  // waits 79, then 79 more
  EXPECT_EQ(bus.stats().waitCycles, 79u);
  EXPECT_EQ(bus.stats().transactions, 3u);
}

// --- audit layer (docs/ARCHITECTURE.md §11) ------------------------------

TEST(TimelineAudit, AcceptsDisjointCoalescedCalendar) {
  std::map<std::int64_t, std::int64_t> busy;
  EXPECT_NO_THROW(audit::timelineDisjoint(busy));  // empty
  busy[0] = 10;
  busy[20] = 30;
  EXPECT_NO_THROW(audit::timelineDisjoint(busy));
}

TEST(TimelineAudit, RejectsOverlappingIntervals) {
  std::map<std::int64_t, std::int64_t> busy;
  busy[0] = 10;
  busy[5] = 15;  // overlaps [0, 10)
  EXPECT_THROW(audit::timelineDisjoint(busy), AuditError);
}

TEST(TimelineAudit, RejectsAbuttingUncoalescedIntervals) {
  std::map<std::int64_t, std::int64_t> busy;
  busy[0] = 10;
  busy[10] = 20;  // abuts [0, 10): bookAt should have coalesced these
  EXPECT_THROW(audit::timelineDisjoint(busy), AuditError);
}

TEST(TimelineAudit, RejectsEmptyOrInvertedInterval) {
  std::map<std::int64_t, std::int64_t> busy;
  busy[5] = 5;
  EXPECT_THROW(audit::timelineDisjoint(busy), AuditError);
  busy[5] = 3;
  EXPECT_THROW(audit::timelineDisjoint(busy), AuditError);
}

TEST(TimelineAudit, InjectedCorruptionTripsTheAuditedBooking) {
  // Proves the in-situ LAPS_AUDIT call in bookAt fires: corrupt the
  // calendar behind the invariant maintenance, then book. Only
  // observable in an audit build — otherwise the check is compiled out
  // and the booking must succeed untouched.
  BusyTimeline t;
  t.reserve(0, 10);                       // [0, 10)
  t.auditInjectIntervalForTest(5, 15);    // overlaps, bypassing bookAt
  if (audit::enabled()) {
    EXPECT_THROW(t.reserve(100, 10), AuditError);
  } else {
    EXPECT_NO_THROW(t.reserve(100, 10));
  }
}

TEST(MemoryBus, PostedTrafficOccupiesButNeverWaitsTheRequester) {
  BusConfig cfg;
  cfg.maxOutstanding = 1;
  cfg.latencyCycles = 75;
  cfg.widthBytes = 8;  // occupancy 79
  MemoryBus bus(cfg, 32);
  bus.postedAccess(0);  // write-back holds the only slot until 79
  EXPECT_EQ(bus.stats().transactions, 1u);
  EXPECT_EQ(bus.stats().waitCycles, 0u);  // nobody stalled for it...
  EXPECT_EQ(bus.demandAccess(0), 79 + 79);  // ...but demand queues behind
  EXPECT_EQ(bus.stats().waitCycles, 79u);
}

}  // namespace
}  // namespace laps

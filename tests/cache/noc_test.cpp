#include "cache/noc.h"

#include <gtest/gtest.h>

#include <memory>

#include <vector>

#include "cache/hierarchy.h"
#include "cache/platform.h"
#include "sim/config.h"
#include "util/error.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace laps {
namespace {

// --- Topology geometry ---------------------------------------------------

TEST(NocTopology, MeshDerivesSquarestGrid) {
  const NocTopology t(NocTopologyKind::Mesh, 8);
  EXPECT_EQ(t.cols(), 3);  // ceil-sqrt(8)
  EXPECT_EQ(t.rows(), 3);  // 8 nodes on a 3x3, last cell empty
  const NocTopology square(NocTopologyKind::Mesh, 16);
  EXPECT_EQ(square.cols(), 4);
  EXPECT_EQ(square.rows(), 4);
}

TEST(NocTopology, MeshHopsAreManhattan) {
  const NocTopology t(NocTopologyKind::Mesh, 16, 4);
  EXPECT_EQ(t.hops(0, 0), 0);
  EXPECT_EQ(t.hops(0, 3), 3);    // along the top row
  EXPECT_EQ(t.hops(0, 12), 3);   // down the left column
  EXPECT_EQ(t.hops(0, 15), 6);   // corner to corner = diameter
  EXPECT_EQ(t.maxHops(), 6);
}

TEST(NocTopology, XbarIsDistanceDegenerate) {
  const NocTopology t(NocTopologyKind::Xbar, 8);
  EXPECT_EQ(t.maxHops(), 1);
  for (std::int64_t a = 0; a < 8; ++a) {
    for (std::int64_t b = 0; b < 8; ++b) {
      EXPECT_EQ(t.hops(a, b), a == b ? 0 : 1);
    }
  }
  // Spiral order degenerates to id order: no tile is more central.
  const std::vector<std::int64_t> order = t.spiralOrder();
  for (std::int64_t i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

/// Mesh-distance metric properties over every node pair (and, for the
/// triangle inequality, every triple). Verified on the parallel
/// substrate at a pinned thread count: each index writes only its own
/// slot, so the outcome must be identical at any thread count — the
/// schedulers consult hops() from inside parallel bench sweeps.
void expectMetricProperties(const NocTopology& t, std::size_t threads) {
  setParallelThreadCount(threads);
  const auto n = static_cast<std::size_t>(t.nodeCount());
  std::vector<char> ok(n, 0);
  parallelFor(n, [&](std::size_t ai) {
    const auto a = static_cast<std::int64_t>(ai);
    bool good = t.hops(a, a) == 0;
    for (std::int64_t b = 0; b < t.nodeCount(); ++b) {
      good = good && t.hops(a, b) == t.hops(b, a);        // symmetry
      good = good && t.hops(a, b) >= (a == b ? 0 : 1);    // positivity
      good = good && t.hops(a, b) <= t.maxHops();         // diameter
      for (std::int64_t c = 0; c < t.nodeCount(); ++c) {  // triangle
        good = good && t.hops(a, c) <= t.hops(a, b) + t.hops(b, c);
      }
    }
    ok[ai] = good ? 1 : 0;
  });
  setParallelThreadCount(0);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(ok[i], 1) << "metric property violated at node " << i;
  }
}

TEST(NocTopology, MeshMetricPropertiesOneThread) {
  expectMetricProperties(NocTopology(NocTopologyKind::Mesh, 16, 4), 1);
  expectMetricProperties(NocTopology(NocTopologyKind::Mesh, 7, 3), 1);
}

TEST(NocTopology, MeshMetricPropertiesEightThreads) {
  expectMetricProperties(NocTopology(NocTopologyKind::Mesh, 16, 4), 8);
  expectMetricProperties(NocTopology(NocTopologyKind::Mesh, 7, 3), 8);
  expectMetricProperties(NocTopology(NocTopologyKind::Xbar, 16), 8);
}

TEST(NocTopology, SpiralOrderIsACenterOutPermutation) {
  const NocTopology t(NocTopologyKind::Mesh, 16, 4);
  const std::vector<std::int64_t> order = t.spiralOrder();
  ASSERT_EQ(order.size(), 16u);
  std::vector<bool> seen(16, false);
  for (const std::int64_t node : order) {
    ASSERT_GE(node, 0);
    ASSERT_LT(node, 16);
    EXPECT_FALSE(seen[static_cast<std::size_t>(node)]);
    seen[static_cast<std::size_t>(node)] = true;
  }
  // The walk starts on a most-central tile: nothing has a strictly
  // smaller total distance to everything else.
  for (std::int64_t node = 0; node < 16; ++node) {
    EXPECT_GE(t.eccentricity(node), t.eccentricity(order.front()));
  }
}

TEST(NocTopology, SpiralOrderCoversRaggedMeshes) {
  // 8 nodes on a 3x3: the spiral must skip the unpopulated cell and
  // still visit every real node exactly once.
  const NocTopology t(NocTopologyKind::Mesh, 8, 3);
  const std::vector<std::int64_t> order = t.spiralOrder();
  ASSERT_EQ(order.size(), 8u);
  std::vector<bool> seen(8, false);
  for (const std::int64_t node : order) {
    seen[static_cast<std::size_t>(node)] = true;
  }
  for (std::size_t i = 0; i < 8; ++i) EXPECT_TRUE(seen[i]);
}

TEST(NocConfig, ValidateRejectsBadShapes) {
  NocConfig cfg;
  cfg.meshCols = 9;
  EXPECT_THROW(cfg.validate(8), Error);  // more columns than nodes
  cfg.meshCols = -1;
  EXPECT_THROW(cfg.validate(8), Error);
  cfg.meshCols = 0;
  cfg.hopCycles = -1;
  EXPECT_THROW(cfg.validate(8), Error);
  cfg.hopCycles = 0;
  cfg.linkWidthBytes = -8;
  EXPECT_THROW(cfg.validate(8), Error);
  cfg.linkWidthBytes = 0;
  cfg.migrationHopCycles = -2;
  EXPECT_THROW(cfg.validate(8), Error);
  cfg.migrationHopCycles = 0;
  EXPECT_NO_THROW(cfg.validate(8));
}

// --- Timed fabric --------------------------------------------------------

TEST(NocFabric, DemandTransferPaysPerHopLatency) {
  NocConfig cfg;
  cfg.meshCols = 4;
  cfg.hopCycles = 5;
  NocFabric fabric(cfg, 16, 32, NocTopologyKind::Mesh);
  EXPECT_TRUE(fabric.timed());
  EXPECT_EQ(fabric.demandTransfer(0, 0, 0), 0);    // same tile: free, uncounted
  EXPECT_EQ(fabric.demandTransfer(0, 3, 0), 15);   // 3 hops
  EXPECT_EQ(fabric.demandTransfer(0, 15, 0), 30);  // diameter
  EXPECT_EQ(fabric.stats().transfers, 2u);
  EXPECT_EQ(fabric.stats().hopCycles, 45u);
  EXPECT_EQ(fabric.stats().linkWaitCycles, 0u);  // infinite bandwidth
}

TEST(NocFabric, FiniteLinksSerializeSharedRoutes) {
  NocConfig cfg;
  cfg.meshCols = 4;
  cfg.hopCycles = 1;
  cfg.linkWidthBytes = 8;  // 32 B line -> 4 cycles per link
  NocFabric fabric(cfg, 16, 32, NocTopologyKind::Mesh);
  // XY routing sends both 0->2 and 0->1 over the 0->1 link first; the
  // second transfer queues behind the first's 4-cycle occupancy.
  const std::int64_t first = fabric.demandTransfer(0, 2, 0);
  const std::int64_t second = fabric.demandTransfer(0, 1, 0);
  EXPECT_EQ(first, 2);  // 2 hops, no waiting on an idle fabric
  EXPECT_GT(second, 1);  // queued behind the first transfer's link hold
  EXPECT_GT(fabric.stats().linkWaitCycles, 0u);
  // The same transfer issued after the fabric drained pays no wait.
  EXPECT_EQ(fabric.demandTransfer(0, 1, 1000), 1);
}

TEST(NocFabric, DisjointRoutesDoNotInterfere) {
  NocConfig cfg;
  cfg.meshCols = 4;
  cfg.hopCycles = 1;
  cfg.linkWidthBytes = 8;
  NocFabric fabric(cfg, 16, 32, NocTopologyKind::Mesh);
  // 0->1 and 15->14 share no directed link: both run at pure hop cost.
  EXPECT_EQ(fabric.demandTransfer(0, 1, 0), 1);
  EXPECT_EQ(fabric.demandTransfer(15, 14, 0), 1);
  EXPECT_EQ(fabric.stats().linkWaitCycles, 0u);
}

TEST(NocFabric, PostedTransfersOccupyWithoutStalling) {
  NocConfig cfg;
  cfg.meshCols = 4;
  cfg.hopCycles = 1;
  cfg.linkWidthBytes = 8;
  NocFabric fabric(cfg, 16, 32, NocTopologyKind::Mesh);
  fabric.postedTransfer(0, 1, 0);  // returns nothing, books the link
  EXPECT_EQ(fabric.stats().postedTransfers, 1u);
  EXPECT_EQ(fabric.stats().transfers, 0u);
  // Demand traffic right behind it queues past the posted hold.
  EXPECT_GT(fabric.demandTransfer(0, 1, 0), 1);
}

TEST(NocFabric, ZeroCostFabricIsUntimed) {
  NocConfig cfg;
  cfg.meshCols = 4;
  NocFabric fabric(cfg, 16, 32, NocTopologyKind::Mesh);
  EXPECT_FALSE(fabric.timed());
  EXPECT_EQ(fabric.demandTransfer(0, 15, 0), 0);
  EXPECT_EQ(fabric.stats().hopCycles, 0u);
}

// --- Zero-cost bit-identity differentials -------------------------------

MemoryConfig l1Defaults() {
  MemoryConfig cfg;
  cfg.l1d = CacheConfig{8192, 2, 32, 2};
  cfg.l1i = CacheConfig{8192, 2, 32, 2};
  cfg.memLatencyCycles = 75;
  return cfg;
}

SharedL2Config smallL2() {
  SharedL2Config l2;
  l2.sizeBytes = 4096;
  l2.assoc = 2;
  l2.lineBytes = 32;
  l2.bankCount = 4;
  l2.hitLatencyCycles = 8;
  l2.bankBusyCycles = 4;
  return l2;
}

/// Drives \p cores MemorySystems over one shared hierarchy with a
/// deterministic mixed read/write stream and returns every per-access
/// latency — the full observable timing behavior.
std::vector<std::int64_t> runStream(const PlatformConfig& platform,
                                    std::size_t cores) {
  auto hierarchy = std::make_shared<MemoryHierarchy>(75, platform, cores, 32);
  std::vector<std::unique_ptr<MemorySystem>> mems;
  mems.reserve(cores);
  for (std::size_t c = 0; c < cores; ++c) {
    mems.push_back(std::make_unique<MemorySystem>(l1Defaults(), hierarchy, c));
  }
  Rng rng(7);
  std::vector<std::int64_t> latencies;
  std::int64_t now = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::size_t core = rng.below(cores);
    const std::uint64_t addr = rng.below(512) * 32;
    const bool write = rng.below(4) == 0;
    latencies.push_back(mems[core]->dataAccess(addr, write, now));
    now += static_cast<std::int64_t>(rng.below(16));
  }
  return latencies;
}

TEST(NocDifferential, ZeroCostMeshMatchesFlatPlatform) {
  PlatformConfig flat;  // Flat, no L2, no bus, no NoC
  PlatformConfig mesh;
  mesh.interconnect = InterconnectKind::Mesh;  // zero-cost defaults
  EXPECT_EQ(runStream(flat, 4), runStream(mesh, 4));
}

TEST(NocDifferential, ZeroCostXbarMatchesFlatPlatform) {
  PlatformConfig flat;
  PlatformConfig xbar;
  xbar.interconnect = InterconnectKind::Xbar;
  EXPECT_EQ(runStream(flat, 4), runStream(xbar, 4));
}

TEST(NocDifferential, ZeroCostMeshMatchesSharedL2Platform) {
  PlatformConfig l2Only;
  l2Only.sharedL2 = smallL2();
  PlatformConfig l2Mesh = l2Only;
  l2Mesh.interconnect = InterconnectKind::Mesh;
  PlatformConfig l2Xbar = l2Only;
  l2Xbar.interconnect = InterconnectKind::Xbar;
  const std::vector<std::int64_t> reference = runStream(l2Only, 4);
  EXPECT_EQ(reference, runStream(l2Mesh, 4));
  EXPECT_EQ(reference, runStream(l2Xbar, 4));
}

TEST(NocDifferential, TimedMeshDivergesFromFlat) {
  // Sanity check on the differential itself: a NoC that costs cycles
  // must change the stream, or the zero-cost equalities prove nothing.
  PlatformConfig l2Only;
  l2Only.sharedL2 = smallL2();
  PlatformConfig timed = l2Only;
  timed.interconnect = InterconnectKind::Mesh;
  timed.noc.hopCycles = 4;
  EXPECT_NE(runStream(l2Only, 4), runStream(timed, 4));
}

// --- Platform descriptor validation -------------------------------------

TEST(PlatformConfig, EagerValidationCatchesBadCompositions) {
  PlatformConfig directoryNoL2;
  directoryNoL2.interconnect = InterconnectKind::Mesh;
  directoryNoL2.coherence = CoherenceKind::Directory;
  EXPECT_THROW(directoryNoL2.validate(4), Error);  // directory needs an L2

  PlatformConfig directoryNoNoc;
  directoryNoNoc.sharedL2 = smallL2();
  directoryNoNoc.coherence = CoherenceKind::Directory;
  EXPECT_THROW(directoryNoNoc.validate(4), Error);  // ...and a NoC

  PlatformConfig tooWide;
  tooWide.interconnect = InterconnectKind::Mesh;
  tooWide.sharedL2 = smallL2();
  tooWide.coherence = CoherenceKind::Directory;
  EXPECT_THROW(tooWide.validate(65), Error);  // sharer mask is 64-bit

  PlatformConfig good = tooWide;
  EXPECT_NO_THROW(good.validate(64));
}

TEST(PlatformConfig, LegacyShimResolvesBothSurfaces) {
  // Legacy fields resolve to the equivalent platform descriptor...
  MpsocConfig legacy;
  legacy.sharedL2 = smallL2();
  BusConfig bus;
  bus.maxOutstanding = 2;
  bus.latencyCycles = 75;
  bus.widthBytes = 8;
  legacy.bus = bus;
  const PlatformConfig resolved = legacy.resolvedPlatform();
  EXPECT_EQ(resolved.interconnect, InterconnectKind::Bus);
  ASSERT_TRUE(resolved.sharedL2.has_value());
  EXPECT_EQ(resolved.bus.widthBytes, 8);

  // ...and setting both surfaces at once is an eager error.
  MpsocConfig both = legacy;
  both.platform = PlatformConfig{};
  EXPECT_THROW(both.resolvedPlatform(), Error);
}

}  // namespace
}  // namespace laps

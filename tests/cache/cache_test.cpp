#include "cache/cache.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace laps {
namespace {

CacheConfig tinyCache() {
  // 4 sets x 2 ways x 16B lines = 128 B.
  return CacheConfig{128, 2, 16, 2};
}

TEST(CacheConfig, DerivedGeometry) {
  const CacheConfig c{8192, 2, 32, 2};
  EXPECT_EQ(c.numSets(), 128);
  EXPECT_EQ(c.numLines(), 256);
  EXPECT_EQ(c.cachePageBytes(), 4096);
  EXPECT_NO_THROW(c.validate());
}

TEST(CacheConfig, SetIndexAndTag) {
  const CacheConfig c = tinyCache();  // 4 sets, 16B lines
  EXPECT_EQ(c.setIndexOf(0), 0);
  EXPECT_EQ(c.setIndexOf(16), 1);
  EXPECT_EQ(c.setIndexOf(16 * 4), 0);      // wraps
  EXPECT_EQ(c.setIndexOf(15), 0);          // same line
  EXPECT_EQ(c.tagOf(0), 0u);
  EXPECT_EQ(c.tagOf(16 * 4), 1u);
}

TEST(CacheConfig, ValidateRejectsBadGeometry) {
  EXPECT_THROW((CacheConfig{0, 2, 32, 2}).validate(), Error);
  EXPECT_THROW((CacheConfig{8192, 0, 32, 2}).validate(), Error);
  EXPECT_THROW((CacheConfig{8192, 2, 0, 2}).validate(), Error);
  EXPECT_THROW((CacheConfig{8192, 2, 33, 2}).validate(), Error);   // line not pow2
  EXPECT_THROW((CacheConfig{8200, 2, 32, 2}).validate(), Error);   // not divisible
  EXPECT_THROW((CacheConfig{8192, 2, 32, -1}).validate(), Error);  // latency
  // 3-way 96-line cache: sets = 8192/(3*32) not integral.
  EXPECT_THROW((CacheConfig{8192, 3, 32, 2}).validate(), Error);
}

TEST(SetAssocCache, ColdMissThenHit) {
  SetAssocCache cache(tinyCache());
  EXPECT_EQ(cache.access(0, false), AccessOutcome::Miss);
  EXPECT_EQ(cache.access(0, false), AccessOutcome::Hit);
  EXPECT_EQ(cache.access(15, false), AccessOutcome::Hit);  // same line
  EXPECT_EQ(cache.access(16, false), AccessOutcome::Miss); // next line
  EXPECT_EQ(cache.stats().accesses, 4u);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(SetAssocCache, LruEvictionOrder) {
  SetAssocCache cache(tinyCache());  // 2 ways per set
  // Three lines mapping to set 0: addresses 0, 64, 128 (16B lines, 4 sets).
  cache.access(0, false);
  cache.access(64, false);
  cache.access(0, false);    // 0 is now MRU, 64 is LRU
  cache.access(128, false);  // evicts 64
  EXPECT_TRUE(cache.probe(0));
  EXPECT_FALSE(cache.probe(64));
  EXPECT_TRUE(cache.probe(128));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(SetAssocCache, WriteMakesLineDirty) {
  SetAssocCache cache(tinyCache());
  cache.access(0, true);     // write-allocate, dirty
  cache.access(64, false);   // fills second way
  cache.access(128, false);  // evicts 0 (LRU) -> dirty eviction
  EXPECT_EQ(cache.stats().dirtyEvictions, 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(SetAssocCache, WriteHitDirtiesExistingLine) {
  SetAssocCache cache(tinyCache());
  cache.access(0, false);   // clean fill
  cache.access(0, true);    // dirty on hit
  cache.access(64, false);
  cache.access(128, false);  // evicts 0
  EXPECT_EQ(cache.stats().dirtyEvictions, 1u);
}

TEST(SetAssocCache, FlushInvalidatesAndCountsWritebacks) {
  SetAssocCache cache(tinyCache());
  cache.access(0, true);
  cache.access(16, false);
  EXPECT_EQ(cache.residentLines(), 2);
  cache.flush();
  EXPECT_EQ(cache.residentLines(), 0);
  EXPECT_EQ(cache.stats().invalidations, 2u);
  EXPECT_EQ(cache.stats().dirtyEvictions, 1u);
  EXPECT_EQ(cache.access(0, false), AccessOutcome::Miss);  // cold again
}

TEST(SetAssocCache, ProbeHasNoSideEffects) {
  SetAssocCache cache(tinyCache());
  cache.access(0, false);
  const CacheStats before = cache.stats();
  EXPECT_TRUE(cache.probe(0));
  EXPECT_FALSE(cache.probe(999));
  EXPECT_EQ(cache.stats().accesses, before.accesses);
}

TEST(SetAssocCache, DistinctSetsDoNotInterfere) {
  SetAssocCache cache(tinyCache());
  // Fill set 0 with 2 lines, then hammer set 1; set 0 must stay resident.
  cache.access(0, false);
  cache.access(64, false);
  for (int i = 0; i < 10; ++i) {
    cache.access(16 + static_cast<std::uint64_t>(i) * 64, false);
  }
  EXPECT_TRUE(cache.probe(0));
  EXPECT_TRUE(cache.probe(64));
}

TEST(SetAssocCache, SequentialStreamMissesOncePerLine) {
  SetAssocCache cache(CacheConfig{8192, 2, 32, 2});
  for (std::uint64_t addr = 0; addr < 4096; addr += 4) {
    cache.access(addr, false);
  }
  EXPECT_EQ(cache.stats().misses, 4096u / 32u);
  EXPECT_EQ(cache.stats().accesses, 1024u);
}

TEST(SetAssocCache, DirectMappedConflictThrash) {
  // Direct-mapped: two lines in the same set always evict each other.
  SetAssocCache cache(CacheConfig{128, 1, 16, 2});  // 8 sets
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(cache.access(0, false), AccessOutcome::Miss);
    EXPECT_EQ(cache.access(128, false), AccessOutcome::Miss);
  }
  // Same pattern with 2 ways: only compulsory misses.
  SetAssocCache assoc(tinyCache());
  int misses = 0;
  for (int i = 0; i < 10; ++i) {
    if (assoc.access(0, false) == AccessOutcome::Miss) ++misses;
    if (assoc.access(64, false) == AccessOutcome::Miss) ++misses;
  }
  EXPECT_EQ(misses, 2);
}

TEST(CacheStats, Accumulate) {
  CacheStats a{10, 6, 4, 2, 1, 0};
  const CacheStats b{5, 2, 3, 1, 1, 2};
  a.accumulate(b);
  EXPECT_EQ(a.accesses, 15u);
  EXPECT_EQ(a.hits, 8u);
  EXPECT_EQ(a.misses, 7u);
  EXPECT_EQ(a.evictions, 3u);
  EXPECT_EQ(a.dirtyEvictions, 2u);
  EXPECT_EQ(a.invalidations, 2u);
  EXPECT_NEAR(a.missRate(), 7.0 / 15.0, 1e-12);
  EXPECT_EQ(CacheStats{}.missRate(), 0.0);
}

/// LRU inclusion property: with the same number of sets, adding ways can
/// never increase the miss count on any reference stream.
class AssociativityMonotonicity
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AssociativityMonotonicity, MoreWaysNeverMoreMisses) {
  Rng rng(GetParam());
  std::vector<std::uint64_t> stream;
  for (int i = 0; i < 20000; ++i) {
    // Zipf-ish mixture of a hot region and a cold sweep.
    if (rng.chance(0.7)) {
      stream.push_back(static_cast<std::uint64_t>(rng.below(2048)));
    } else {
      stream.push_back(static_cast<std::uint64_t>(rng.below(1 << 20)));
    }
  }
  // Fixed 64 sets * 16B lines; ways 1, 2, 4, 8.
  std::uint64_t prevMisses = ~0ULL;
  for (const std::int64_t ways : {1, 2, 4, 8}) {
    SetAssocCache cache(CacheConfig{64 * 16 * ways, ways, 16, 2});
    ASSERT_EQ(cache.config().numSets(), 64);
    for (const auto addr : stream) cache.access(addr, false);
    EXPECT_LE(cache.stats().misses, prevMisses) << "ways=" << ways;
    prevMisses = cache.stats().misses;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssociativityMonotonicity,
                         ::testing::Values(3, 14, 159, 2653));

void expectSameState(SetAssocCache& a, SetAssocCache& b, Rng& rng) {
  EXPECT_EQ(a.stats().accesses, b.stats().accesses);
  EXPECT_EQ(a.stats().hits, b.stats().hits);
  EXPECT_EQ(a.stats().misses, b.stats().misses);
  EXPECT_EQ(a.stats().evictions, b.stats().evictions);
  EXPECT_EQ(a.stats().dirtyEvictions, b.stats().dirtyEvictions);
  EXPECT_EQ(a.clock(), b.clock());
  EXPECT_EQ(a.residentLines(), b.residentLines());
  // The LRU orders must be behaviorally identical too: a common random
  // access sequence afterwards must produce identical outcomes.
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t addr = rng.below(4096);
    const bool write = rng.chance(0.3);
    EXPECT_EQ(a.access(addr, write), b.access(addr, write)) << "probe " << i;
  }
}

class AccessRunEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AccessRunEquivalence, MatchesPerElementAccesses) {
  // Random strided runs (forward, backward, sub-line, line-jumping,
  // stride 0) resolved in bulk must leave the cache bit-identical to
  // per-element simulation.
  Rng rng(GetParam());
  const CacheConfig config{1024, 2, 32, 2};
  SetAssocCache bulk(config);
  SetAssocCache ref(config);
  for (int round = 0; round < 200; ++round) {
    const std::uint64_t addr = rng.below(2048);
    const std::int64_t stride = rng.range(-96, 96);
    const std::int64_t count = rng.range(1, 400);
    const bool write = rng.chance(0.4);
    const std::uint64_t base =
        stride < 0 ? addr + static_cast<std::uint64_t>(-stride * count) : addr;
    const AccessRunOutcome out = bulk.accessRun(base, stride, count, write);
    AccessRunOutcome expected;
    std::uint64_t a = base;
    for (std::int64_t i = 0; i < count; ++i) {
      if (ref.access(a, write) == AccessOutcome::Hit) {
        ++expected.hits;
      } else {
        ++expected.misses;
      }
      a += static_cast<std::uint64_t>(stride);
    }
    EXPECT_EQ(out.hits, expected.hits) << "round " << round;
    EXPECT_EQ(out.misses, expected.misses) << "round " << round;
  }
  expectSameState(bulk, ref, rng);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccessRunEquivalence,
                         ::testing::Values(1, 77, 901, 4242));

TEST(SetAssocCache, LineRunLength) {
  EXPECT_EQ(lineRunLength(0, 4, 32), 8);
  EXPECT_EQ(lineRunLength(28, 4, 32), 1);
  EXPECT_EQ(lineRunLength(33, 4, 32), 8);  // 33..61 inside line [32, 64)
  EXPECT_EQ(lineRunLength(40, 16, 32), 2);
  EXPECT_EQ(lineRunLength(100, 64, 32), 1);
  EXPECT_EQ(lineRunLength(31, -4, 32), 8);
  EXPECT_EQ(lineRunLength(32, -4, 32), 1);
  EXPECT_GT(lineRunLength(7, 0, 32), 1'000'000'000);
}

}  // namespace
}  // namespace laps

#include "cache/hierarchy.h"

#include <gtest/gtest.h>

namespace laps {
namespace {

MemoryConfig paperDefaults() {
  MemoryConfig cfg;
  cfg.l1d = CacheConfig{8192, 2, 32, 2};
  cfg.l1i = CacheConfig{8192, 2, 32, 2};
  cfg.memLatencyCycles = 75;
  return cfg;
}

TEST(MemorySystem, LatenciesMatchTable2) {
  MemorySystem mem(paperDefaults());
  // Cold miss: 2 + 75; warm hit: 2.
  EXPECT_EQ(mem.dataAccess(0, false), 77);
  EXPECT_EQ(mem.dataAccess(0, false), 2);
  EXPECT_EQ(mem.instrFetch(1 << 20), 77);
  EXPECT_EQ(mem.instrFetch(1 << 20), 2);
}

TEST(MemorySystem, ICacheDisabledCostsNothing) {
  MemoryConfig cfg = paperDefaults();
  cfg.modelICache = false;
  MemorySystem mem(cfg);
  EXPECT_EQ(mem.instrFetch(0), 0);
  EXPECT_EQ(mem.icache().stats().accesses, 0u);
}

TEST(MemorySystem, SplitCachesAreIndependent) {
  MemorySystem mem(paperDefaults());
  mem.dataAccess(0, false);
  EXPECT_EQ(mem.dcache().stats().accesses, 1u);
  EXPECT_EQ(mem.icache().stats().accesses, 0u);
  mem.instrFetch(0);
  EXPECT_EQ(mem.icache().stats().accesses, 1u);
  EXPECT_EQ(mem.dcache().stats().accesses, 1u);
}

TEST(MemorySystem, FlushAllColdsBothCaches) {
  MemorySystem mem(paperDefaults());
  mem.dataAccess(64, false);
  mem.instrFetch(128);
  mem.flushAll();
  EXPECT_EQ(mem.dataAccess(64, false), 77);
  EXPECT_EQ(mem.instrFetch(128), 77);
}

TEST(MemorySystem, ClassifierDisabledByDefault) {
  MemorySystem mem(paperDefaults());
  mem.dataAccess(0, false);
  EXPECT_EQ(mem.dataMissBreakdown().total(), 0u);
}

TEST(MemorySystem, ClassifierCountsWhenEnabled) {
  MemoryConfig cfg = paperDefaults();
  cfg.classifyMisses = true;
  MemorySystem mem(cfg);
  mem.dataAccess(0, false);
  mem.dataAccess(0, false);
  EXPECT_EQ(mem.dataMissBreakdown().total(), 1u);
  EXPECT_EQ(mem.dataMissBreakdown().compulsory, 1u);
  // Instruction fetches are not classified (data cache focus).
  mem.instrFetch(0);
  EXPECT_EQ(mem.dataMissBreakdown().total(), 1u);
}

TEST(MemorySystem, ResetStats) {
  MemoryConfig cfg = paperDefaults();
  cfg.classifyMisses = true;
  MemorySystem mem(cfg);
  mem.dataAccess(0, false);
  mem.instrFetch(0);
  mem.resetStats();
  EXPECT_EQ(mem.dcache().stats().accesses, 0u);
  EXPECT_EQ(mem.icache().stats().accesses, 0u);
  EXPECT_EQ(mem.dataMissBreakdown().total(), 0u);
}

}  // namespace
}  // namespace laps

#include "cache/hierarchy.h"

#include <gtest/gtest.h>

#include "util/audit.h"

namespace laps {
namespace {

MemoryConfig paperDefaults() {
  MemoryConfig cfg;
  cfg.l1d = CacheConfig{8192, 2, 32, 2};
  cfg.l1i = CacheConfig{8192, 2, 32, 2};
  cfg.memLatencyCycles = 75;
  return cfg;
}

TEST(MemorySystem, LatenciesMatchTable2) {
  MemorySystem mem(paperDefaults());
  // Cold miss: 2 + 75; warm hit: 2.
  EXPECT_EQ(mem.dataAccess(0, false), 77);
  EXPECT_EQ(mem.dataAccess(0, false), 2);
  EXPECT_EQ(mem.instrFetch(1 << 20), 77);
  EXPECT_EQ(mem.instrFetch(1 << 20), 2);
}

TEST(MemorySystem, ICacheDisabledCostsNothing) {
  MemoryConfig cfg = paperDefaults();
  cfg.modelICache = false;
  MemorySystem mem(cfg);
  EXPECT_EQ(mem.instrFetch(0), 0);
  EXPECT_EQ(mem.icache().stats().accesses, 0u);
}

TEST(MemorySystem, SplitCachesAreIndependent) {
  MemorySystem mem(paperDefaults());
  mem.dataAccess(0, false);
  EXPECT_EQ(mem.dcache().stats().accesses, 1u);
  EXPECT_EQ(mem.icache().stats().accesses, 0u);
  mem.instrFetch(0);
  EXPECT_EQ(mem.icache().stats().accesses, 1u);
  EXPECT_EQ(mem.dcache().stats().accesses, 1u);
}

TEST(MemorySystem, FlushAllColdsBothCaches) {
  MemorySystem mem(paperDefaults());
  mem.dataAccess(64, false);
  mem.instrFetch(128);
  mem.flushAll();
  EXPECT_EQ(mem.dataAccess(64, false), 77);
  EXPECT_EQ(mem.instrFetch(128), 77);
}

TEST(MemorySystem, ClassifierDisabledByDefault) {
  MemorySystem mem(paperDefaults());
  mem.dataAccess(0, false);
  EXPECT_EQ(mem.dataMissBreakdown().total(), 0u);
}

TEST(MemorySystem, ClassifierCountsWhenEnabled) {
  MemoryConfig cfg = paperDefaults();
  cfg.classifyMisses = true;
  MemorySystem mem(cfg);
  mem.dataAccess(0, false);
  mem.dataAccess(0, false);
  EXPECT_EQ(mem.dataMissBreakdown().total(), 1u);
  EXPECT_EQ(mem.dataMissBreakdown().compulsory, 1u);
  // Instruction fetches are not classified (data cache focus).
  mem.instrFetch(0);
  EXPECT_EQ(mem.dataMissBreakdown().total(), 1u);
}

std::shared_ptr<MemoryHierarchy> contendedHierarchy() {
  SharedL2Config l2;
  l2.sizeBytes = 4096;
  l2.assoc = 2;
  l2.lineBytes = 32;
  l2.bankCount = 4;
  l2.hitLatencyCycles = 8;
  l2.bankBusyCycles = 4;
  BusConfig bus;
  bus.maxOutstanding = 2;
  bus.latencyCycles = 75;
  bus.widthBytes = 8;  // 79-cycle occupancy on 32 B lines
  return std::make_shared<MemoryHierarchy>(75, l2, bus, 32);
}

TEST(MemorySystem, DefaultHierarchyIsFlatAndUncontended) {
  MemorySystem mem(paperDefaults());
  EXPECT_FALSE(mem.contended());
  EXPECT_EQ(mem.hierarchy().l2(), nullptr);
  EXPECT_EQ(mem.hierarchy().bus(), nullptr);
}

TEST(MemorySystem, SharedHierarchyStacksL2AndBusLatency) {
  auto shared = contendedHierarchy();
  MemorySystem mem(paperDefaults(), shared);
  EXPECT_TRUE(mem.contended());
  // Cold: L1 (2) + L2 lookup (8, miss) + bus (79).
  EXPECT_EQ(mem.dataAccess(0, false, 0), 2 + 8 + 79);
  // L1 hit never leaves the core.
  EXPECT_EQ(mem.dataAccess(0, false, 200), 2);
  EXPECT_EQ(shared->l2()->stats().accesses, 1u);
}

TEST(MemorySystem, TwoCoresContendOnTheSharedBus) {
  auto shared = contendedHierarchy();
  MemorySystem a(paperDefaults(), shared);
  MemorySystem b(paperDefaults(), shared);
  // Three simultaneous cold misses to distinct banks: the L2 never
  // queues, but the 2-slot bus serializes the third fill.
  EXPECT_EQ(a.dataAccess(0, false, 0), 2 + 8 + 79);
  EXPECT_EQ(b.dataAccess(32, false, 0), 2 + 8 + 79);
  EXPECT_EQ(b.dataAccess(64, false, 0), 2 + 8 + 79 + 79);
  EXPECT_EQ(shared->bus()->stats().waitCycles, 79u);
  // The same miss pattern issued later, when the bus has drained, pays
  // no wait: latency now depends on *when* — the contention effect.
  EXPECT_EQ(b.dataAccess(96, false, 1000), 2 + 8 + 79);
}

TEST(MemorySystem, SharedL2KeepsAMissOnChipForTheOtherCore) {
  auto shared = contendedHierarchy();
  MemorySystem a(paperDefaults(), shared);
  MemorySystem b(paperDefaults(), shared);
  EXPECT_EQ(a.dataAccess(0, false, 0), 2 + 8 + 79);  // a fills the L2
  // b misses its private L1 but hits the shared L2: no off-chip trip.
  EXPECT_EQ(b.dataAccess(0, false, 500), 2 + 8);
  EXPECT_EQ(shared->l2()->stats().hits, 1u);
}

TEST(MemorySystem, MissNeverStallsBehindItsOwnVictimWriteback) {
  // 1-slot bus, direct-mapped 2-set L1: a miss that evicts a dirty
  // victim must pay only its own fill (2 + 79); the victim's write-back
  // is posted behind it, not in front of it.
  BusConfig bus;
  bus.maxOutstanding = 1;
  bus.latencyCycles = 75;
  bus.widthBytes = 8;  // occupancy 79
  auto shared = std::make_shared<MemoryHierarchy>(75, std::nullopt, bus, 32);
  MemoryConfig cfg = paperDefaults();
  cfg.l1d = CacheConfig{64, 1, 32, 2};
  MemorySystem mem(cfg, shared);
  EXPECT_EQ(mem.dataAccess(0, /*isWrite=*/true, 0), 2 + 79);  // dirty A
  EXPECT_EQ(mem.dataAccess(64, false, 10'000), 2 + 79);  // evicts dirty A
  EXPECT_EQ(shared->bus()->stats().transactions, 3u);  // 2 fills + 1 posted
  EXPECT_EQ(shared->bus()->stats().waitCycles, 0u);
  // The posted write-back does occupy the slot: traffic right behind the
  // second fill queues past both.
  EXPECT_EQ(mem.dataAccess(128, false, 10'002), 2 + (79 * 2 - 2) + 79);
}

TEST(MemorySystem, ContendedAccessRunAdvancesTime) {
  auto shared = contendedHierarchy();
  MemorySystem mem(paperDefaults(), shared);
  // Four lines, one miss each: 4 * (2 * 8 + 8 + 79) with every bus slot
  // requested only after the previous miss resolved — so no bus wait.
  const std::int64_t latency =
      mem.accessRun(0, 4, 32, /*isWrite=*/false, /*nowCycles=*/0);
  EXPECT_EQ(latency, 4 * (8 * 2 + 8 + 79));
  EXPECT_EQ(shared->bus()->stats().waitCycles, 0u);
}

// --- audit layer (docs/ARCHITECTURE.md §11) ------------------------------

TEST(InclusionAudit, CleanHierarchyPasses) {
  auto shared = contendedHierarchy();
  MemorySystem a(paperDefaults(), shared);
  MemorySystem b(paperDefaults(), shared);
  // Fill through the front door: every L1-resident line went through
  // the L2, so inclusion holds by construction.
  for (std::uint64_t addr = 0; addr < 4096; addr += 32) {
    a.dataAccess(addr, false, 0);
    b.dataAccess(addr + 32768, true, 0);
  }
  EXPECT_NO_THROW(shared->auditInclusion());
}

TEST(InclusionAudit, L1LineTheL2NeverSawTrips) {
  auto shared = contendedHierarchy();
  // A rogue L1 that filled lines without going through the hierarchy —
  // exactly the state a missed back-invalidation would leave behind.
  SetAssocCache rogue(CacheConfig{8192, 2, 32, 2});
  rogue.access(0, /*isWrite=*/false);
  shared->registerDataCache(&rogue);
  EXPECT_THROW(shared->auditInclusion(), AuditError);
  shared->unregisterDataCache(&rogue);
  EXPECT_NO_THROW(shared->auditInclusion());
}

TEST(InclusionAudit, FlatHierarchyIsVacuouslyClean) {
  MemoryHierarchy flat(75);
  SetAssocCache l1(CacheConfig{8192, 2, 32, 2});
  l1.access(0, /*isWrite=*/false);
  flat.registerDataCache(&l1);
  // No L2 means no inclusion obligation.
  EXPECT_NO_THROW(flat.auditInclusion());
}

TEST(InclusionAudit, RetireBeforeRunsTheScanInAuditBuilds) {
  // Proves the in-situ LAPS_AUDIT call in retireBefore fires: corrupt
  // inclusion, then hit the segment-boundary hook. Only observable in
  // an audit build — otherwise the scan is compiled out.
  auto shared = contendedHierarchy();
  SetAssocCache rogue(CacheConfig{8192, 2, 32, 2});
  rogue.access(0, /*isWrite=*/false);
  shared->registerDataCache(&rogue);
  if (audit::enabled()) {
    EXPECT_THROW(shared->retireBefore(1000), AuditError);
  } else {
    EXPECT_NO_THROW(shared->retireBefore(1000));
  }
  shared->unregisterDataCache(&rogue);
}

TEST(MemorySystem, ResetStats) {
  MemoryConfig cfg = paperDefaults();
  cfg.classifyMisses = true;
  MemorySystem mem(cfg);
  mem.dataAccess(0, false);
  mem.instrFetch(0);
  mem.resetStats();
  EXPECT_EQ(mem.dcache().stats().accesses, 0u);
  EXPECT_EQ(mem.icache().stats().accesses, 0u);
  EXPECT_EQ(mem.dataMissBreakdown().total(), 0u);
}

}  // namespace
}  // namespace laps

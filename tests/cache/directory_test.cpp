#include "cache/directory.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/hierarchy.h"
#include "cache/platform.h"
#include "util/error.h"
#include "util/rng.h"

namespace laps {
namespace {

// --- SharerDirectory unit behavior ---------------------------------------

TEST(SharerDirectory, TracksSharerBitsPerLine) {
  SharerDirectory dir(4);
  EXPECT_EQ(dir.sharersOf(0), 0u);
  dir.recordSharer(0, 1);
  dir.recordSharer(0, 3);
  dir.recordSharer(64, 2);
  EXPECT_EQ(dir.sharersOf(0), (1u << 1) | (1u << 3));
  EXPECT_EQ(dir.sharersOf(64), 1u << 2);
  EXPECT_EQ(dir.trackedLines(), 2u);
  dir.dropLine(0);
  EXPECT_EQ(dir.sharersOf(0), 0u);
  EXPECT_EQ(dir.trackedLines(), 1u);
}

TEST(SharerDirectory, InvalidationRoundCountsSentAndFiltered) {
  SharerDirectory dir(8);
  dir.recordSharer(0, 0);
  dir.recordSharer(0, 5);
  // 8 potential probe targets, 2 sharers: 2 sent, 6 filtered — the
  // traffic the broadcast protocol would have wasted.
  dir.noteInvalidationRound(dir.sharersOf(0), 8);
  EXPECT_EQ(dir.stats().invalidationsSent, 2u);
  EXPECT_EQ(dir.stats().invalidationsFiltered, 6u);
}

TEST(SharerDirectory, RejectsMoreThan64Cores) {
  EXPECT_THROW(SharerDirectory dir(65), Error);
  EXPECT_NO_THROW(SharerDirectory dir(64));
}

// --- Broadcast-vs-directory equivalence oracle ---------------------------

MemoryConfig l1Defaults() {
  MemoryConfig cfg;
  cfg.l1d = CacheConfig{2048, 2, 32, 2};  // small: evictions are common
  cfg.l1i = CacheConfig{8192, 2, 32, 2};
  cfg.memLatencyCycles = 75;
  return cfg;
}

SharedL2Config tinyL2() {
  SharedL2Config l2;
  l2.sizeBytes = 4096;  // small enough to back-invalidate constantly
  l2.assoc = 2;
  l2.lineBytes = 32;
  l2.bankCount = 4;
  l2.hitLatencyCycles = 8;
  l2.bankBusyCycles = 4;
  return l2;
}

struct StreamResult {
  std::vector<std::int64_t> latencies;
  std::uint64_t l1Misses = 0;
  std::uint64_t l1Invalidations = 0;  // lines recalled out of the L1s
  std::uint64_t l2Misses = 0;
  std::uint64_t inclusionWritebacks = 0;  // dirty recalls folded upward
};

/// Runs a deterministic random read/write stream over \p cores cores
/// and captures the full observable behavior: every latency plus the
/// cache-state summary counters.
StreamResult runStream(const PlatformConfig& platform, std::size_t cores,
                       std::uint64_t seed) {
  auto hierarchy = std::make_shared<MemoryHierarchy>(75, platform, cores, 32);
  std::vector<std::unique_ptr<MemorySystem>> mems;
  mems.reserve(cores);
  for (std::size_t c = 0; c < cores; ++c) {
    mems.push_back(std::make_unique<MemorySystem>(l1Defaults(), hierarchy, c));
  }
  Rng rng(seed);
  StreamResult out;
  std::int64_t now = 0;
  for (int i = 0; i < 4000; ++i) {
    const std::size_t core = rng.below(cores);
    // 256 lines over a 128-line L2: inclusion victims fly constantly.
    const std::uint64_t addr = rng.below(256) * 32;
    const bool write = rng.below(3) == 0;
    out.latencies.push_back(mems[core]->dataAccess(addr, write, now));
    now += static_cast<std::int64_t>(rng.below(8));
  }
  for (std::size_t c = 0; c < cores; ++c) {
    out.l1Misses += mems[c]->dcache().stats().misses;
    out.l1Invalidations += mems[c]->dcache().stats().invalidations;
  }
  out.l2Misses = hierarchy->l2()->stats().misses;
  out.inclusionWritebacks = hierarchy->inclusionWritebacks();
  return out;
}

TEST(DirectoryEquivalence, TargetedInvalidationMatchesBroadcast) {
  // Over a zero-cost mesh the directory must be functionally invisible:
  // its sharer masks over-approximate the true holders (bits are set on
  // every data fill and cleared only by back-invalidation), and
  // invalidating a non-holder is a no-op — so per-access latencies,
  // miss counts and back-invalidation rounds all match the broadcast
  // protocol exactly. Several seeds guard against a lucky stream.
  PlatformConfig broadcast;
  broadcast.interconnect = InterconnectKind::Mesh;
  broadcast.sharedL2 = tinyL2();
  PlatformConfig directory = broadcast;
  directory.coherence = CoherenceKind::Directory;
  for (const std::uint64_t seed : {1u, 17u, 99u}) {
    const StreamResult a = runStream(broadcast, 4, seed);
    const StreamResult b = runStream(directory, 4, seed);
    EXPECT_EQ(a.latencies, b.latencies) << "seed " << seed;
    EXPECT_EQ(a.l1Misses, b.l1Misses) << "seed " << seed;
    EXPECT_EQ(a.l2Misses, b.l2Misses) << "seed " << seed;
    EXPECT_EQ(a.l1Invalidations, b.l1Invalidations) << "seed " << seed;
    EXPECT_EQ(a.inclusionWritebacks, b.inclusionWritebacks) << "seed " << seed;
  }
}

TEST(DirectoryEquivalence, DirectoryFiltersProbesOnTheStream) {
  // The equivalence is not vacuous: the same streams make the directory
  // actually filter probes (sharers < cores on some rounds) and send
  // targeted ones over the NoC.
  PlatformConfig directory;
  directory.interconnect = InterconnectKind::Mesh;
  directory.sharedL2 = tinyL2();
  directory.coherence = CoherenceKind::Directory;
  auto hierarchy = std::make_shared<MemoryHierarchy>(75, directory, 4, 32);
  std::vector<std::unique_ptr<MemorySystem>> mems;
  for (std::size_t c = 0; c < 4; ++c) {
    mems.push_back(std::make_unique<MemorySystem>(l1Defaults(), hierarchy, c));
  }
  Rng rng(5);
  std::int64_t now = 0;
  for (int i = 0; i < 4000; ++i) {
    const std::size_t core = rng.below(4);
    const std::uint64_t addr = rng.below(256) * 32;
    mems[core]->dataAccess(addr, rng.below(3) == 0, now);
    now += static_cast<std::int64_t>(rng.below(8));
  }
  ASSERT_NE(hierarchy->directory(), nullptr);
  const DirectoryStats& stats = hierarchy->directory()->stats();
  EXPECT_GT(stats.invalidationsFiltered, 0u);
  EXPECT_GT(stats.invalidationsSent, 0u);
}

TEST(DirectoryEquivalence, TimedDirectoryPlatformStaysDeterministic) {
  // With real hop latency and finite links the stream is not equal to
  // broadcast (timing differs) but must be perfectly reproducible.
  PlatformConfig timed;
  timed.interconnect = InterconnectKind::Mesh;
  timed.sharedL2 = tinyL2();
  timed.coherence = CoherenceKind::Directory;
  timed.noc.hopCycles = 3;
  timed.noc.linkWidthBytes = 8;
  const StreamResult a = runStream(timed, 4, 42);
  const StreamResult b = runStream(timed, 4, 42);
  EXPECT_EQ(a.latencies, b.latencies);
  EXPECT_EQ(a.l2Misses, b.l2Misses);
}

}  // namespace
}  // namespace laps

#include "workloads/apps.h"

#include <gtest/gtest.h>

#include "region/sharing.h"
#include "taskgraph/validate.h"
#include "util/error.h"

namespace laps {
namespace {

std::string appName(const ::testing::TestParamInfo<std::size_t>& info) {
  static const char* kNames[] = {"MedIm04", "MxM",   "Radar",
                                 "Shape",   "Track", "Usonic"};
  return kNames[info.param];
}

class EveryApp : public ::testing::TestWithParam<std::size_t> {
 protected:
  static const std::vector<Application>& suite() {
    static const std::vector<Application> kSuite = standardSuite();
    return kSuite;
  }
  const Application& app() const { return suite()[GetParam()]; }
};

TEST_P(EveryApp, IsWellFormed) {
  EXPECT_NO_THROW(validateWorkload(app().workload));
}

TEST_P(EveryApp, ProcessCountInPaperRange) {
  // Paper §4: "the numbers of processes of these benchmarks vary
  // between 9 and 37".
  EXPECT_GE(app().processCount(), 9u);
  EXPECT_LE(app().processCount(), 37u);
}

TEST_P(EveryApp, GraphIsConnectedPipeline) {
  // Every app has dependences (stages) and at least one root.
  EXPECT_GT(app().workload.graph.edgeCount(), 0u);
  EXPECT_FALSE(app().workload.graph.roots().empty());
  EXPECT_TRUE(app().workload.graph.isAcyclic());
}

TEST_P(EveryApp, HasIntraTaskSharing) {
  // The locality scheduler is pointless without data sharing; every app
  // must have at least one sharing pair of processes.
  const auto fps = app().workload.footprints();
  const SharingMatrix m = SharingMatrix::compute(fps);
  EXPECT_FALSE(m.isDiagonal()) << app().name;
}

TEST_P(EveryApp, SingleTaskId) {
  EXPECT_EQ(app().workload.graph.tasks(), std::vector<TaskId>{0});
}

TEST_P(EveryApp, DeterministicGeneration) {
  const Application again = [&] {
    switch (GetParam()) {
      case 0: return makeMedIm04();
      case 1: return makeMxM();
      case 2: return makeRadar();
      case 3: return makeShape();
      case 4: return makeTrack();
      default: return GetParam() == 4 ? makeTrack() : makeUsonic();
    }
  }();
  EXPECT_EQ(again.processCount(), app().processCount());
  EXPECT_EQ(again.workload.graph.edgeCount(), app().workload.graph.edgeCount());
  EXPECT_EQ(again.workload.arrays.size(), app().workload.arrays.size());
}

TEST_P(EveryApp, TraceLengthIsLaptopScale) {
  // Keep per-app reference counts in a range where full-suite benches
  // finish in seconds: 50k..2M references.
  std::int64_t totalRefs = 0;
  for (const auto& p : app().workload.graph.processes()) {
    totalRefs += p.totalReferences();
  }
  EXPECT_GE(totalRefs, 50'000) << app().name;
  EXPECT_LE(totalRefs, 2'000'000) << app().name;
}

TEST_P(EveryApp, ScaleParameterShrinksAndGrows) {
  AppParams small;
  small.scale = 0.5;
  AppParams big;
  big.scale = 2.0;
  const auto makeAt = [&](const AppParams& p) {
    switch (GetParam()) {
      case 0: return makeMedIm04(p);
      case 1: return makeMxM(p);
      case 2: return makeRadar(p);
      case 3: return makeShape(p);
      case 4: return makeTrack(p);
      default: return makeUsonic(p);
    }
  };
  const Application tiny = makeAt(small);
  const Application large = makeAt(big);
  EXPECT_NO_THROW(validateWorkload(tiny.workload));
  EXPECT_NO_THROW(validateWorkload(large.workload));
  const auto refsOf = [](const Application& a) {
    std::int64_t total = 0;
    for (const auto& p : a.workload.graph.processes()) {
      total += p.totalReferences();
    }
    return total;
  };
  // Scaling down may clamp at the minimum problem size (e.g. MxM's n is
  // already at the floor), so only require non-growth.
  EXPECT_LE(refsOf(tiny), refsOf(app()));
  EXPECT_GT(refsOf(large), refsOf(app()));
  // Process structure (counts) must not depend on scale.
  EXPECT_EQ(tiny.processCount(), app().processCount());
  EXPECT_EQ(large.processCount(), app().processCount());
}

INSTANTIATE_TEST_SUITE_P(Suite, EveryApp, ::testing::Range<std::size_t>(0, 6),
                         appName);

TEST(StandardSuite, TableOneOrderAndNames) {
  const auto suite = standardSuite();
  ASSERT_EQ(suite.size(), 6u);
  EXPECT_EQ(suite[0].name, "Med-Im04");
  EXPECT_EQ(suite[1].name, "MxM");
  EXPECT_EQ(suite[2].name, "Radar");
  EXPECT_EQ(suite[3].name, "Shape");
  EXPECT_EQ(suite[4].name, "Track");
  EXPECT_EQ(suite[5].name, "Usonic");
  for (const auto& app : suite) {
    EXPECT_FALSE(app.description.empty());
  }
}

TEST(StandardSuite, CoversPaperProcessRangeEndpoints) {
  const auto suite = standardSuite();
  std::size_t minProcs = 1000;
  std::size_t maxProcs = 0;
  for (const auto& app : suite) {
    minProcs = std::min(minProcs, app.processCount());
    maxProcs = std::max(maxProcs, app.processCount());
  }
  EXPECT_EQ(minProcs, 9u);   // Shape
  EXPECT_EQ(maxProcs, 37u);  // Usonic
}

TEST(ConcurrentScenario, MergesWithoutCrossSharing) {
  const auto suite = standardSuite();
  const Workload two = concurrentScenario(suite, 2);
  EXPECT_EQ(two.graph.processCount(),
            suite[0].processCount() + suite[1].processCount());
  EXPECT_EQ(two.graph.tasks().size(), 2u);
  EXPECT_NO_THROW(validateWorkload(two));

  // No data sharing across the two applications.
  const auto fps = two.footprints();
  const SharingMatrix m = SharingMatrix::compute(fps);
  const std::size_t n0 = suite[0].processCount();
  for (std::size_t p = 0; p < n0; ++p) {
    for (std::size_t q = n0; q < two.graph.processCount(); ++q) {
      ASSERT_EQ(m.at(p, q), 0) << "cross-app sharing " << p << "," << q;
    }
  }
}

TEST(ConcurrentScenario, GrowsMonotonically) {
  const auto suite = standardSuite();
  std::size_t prev = 0;
  for (std::size_t t = 1; t <= 6; ++t) {
    const Workload mix = concurrentScenario(suite, t);
    EXPECT_GT(mix.graph.processCount(), prev);
    prev = mix.graph.processCount();
  }
  // |T| = 6 runs the whole suite: 37+36+33+9+13+37 = 165 processes.
  EXPECT_EQ(prev, 165u);
}

TEST(ConcurrentScenario, CountValidation) {
  const auto suite = standardSuite();
  EXPECT_THROW((void)concurrentScenario(suite, 0), Error);
  EXPECT_THROW((void)concurrentScenario({}, 1), Error);
}

TEST(ConcurrentScenario, CountsBeyondSuiteSizeCycle) {
  // The |T| axis extends past the suite by cycling through it with fully
  // independent application instances.
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, 8);  // 6 apps + MedIm + MxM
  const Workload six = concurrentScenario(suite, 6);
  EXPECT_EQ(mix.graph.processCount(),
            six.graph.processCount() + suite[0].processCount() +
                suite[1].processCount());
  EXPECT_EQ(mix.graph.tasks().size(), 8u);
  // No accidental sharing between the original and the cycled copies.
  const SharingMatrix sharing = SharingMatrix::compute(mix.footprints());
  const auto firstMedIm = mix.graph.processesOfTask(mix.graph.tasks()[0]);
  const auto secondMedIm = mix.graph.processesOfTask(mix.graph.tasks()[6]);
  for (const ProcessId a : firstMedIm) {
    for (const ProcessId b : secondMedIm) {
      EXPECT_EQ(sharing.at(a, b), 0);
    }
  }
}

}  // namespace
}  // namespace laps

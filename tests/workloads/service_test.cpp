/// \file service_test.cpp
/// \brief The keyed service workload generator: determinism, structure,
/// knob semantics, and the sharing that arises from key overlap.

#include <gtest/gtest.h>

#include <string>

#include "core/laps.h"

namespace laps {
namespace {

TEST(ServiceWorkload, DeterministicAndSeedSensitive) {
  const Workload a = makeServiceWorkload();
  const Workload b = makeServiceWorkload();
  ASSERT_EQ(a.graph.processCount(), b.graph.processCount());
  for (ProcessId p = 0; p < a.graph.processCount(); ++p) {
    EXPECT_EQ(a.graph.process(p).name, b.graph.process(p).name);
    EXPECT_EQ(a.graph.process(p).totalReferences(),
              b.graph.process(p).totalReferences());
  }
  ServiceWorkloadParams params;
  params.seed = 99;
  const Workload c = makeServiceWorkload(params);
  bool differs = false;
  for (ProcessId p = 0; p < a.graph.processCount(); ++p) {
    differs = differs || a.graph.process(p).name != c.graph.process(p).name;
  }
  EXPECT_TRUE(differs);  // the seed shapes the read/write mix
}

TEST(ServiceWorkload, StructureMatchesTheKnobs) {
  ServiceWorkloadParams params;
  params.requestCount = 30;
  params.keyCount = 10;
  params.keysPerRequest = 3;
  params.requestsPerCohort = 7;
  const Workload w = makeServiceWorkload(params);
  EXPECT_EQ(w.graph.processCount(), 30u);
  // One value array per key plus one scratch per request.
  EXPECT_EQ(w.arrays.size(), 10u + 30u);
  // Requests are independent: admission/arrival dynamics alone drive
  // the open behavior.
  EXPECT_EQ(w.graph.edgeCount(), 0u);
  // ceil(30 / 7) = 5 cohorts, the last one partial.
  EXPECT_EQ(w.graph.tasks().size(), 5u);
  EXPECT_EQ(w.graph.processesOfTask(0).size(), 7u);
  EXPECT_EQ(w.graph.processesOfTask(4).size(), 2u);
  for (ProcessId p = 0; p < w.graph.processCount(); ++p) {
    // One nest per touched key, each streaming the whole value array.
    EXPECT_EQ(w.graph.process(p).nests.size(), 3u);
    EXPECT_EQ(w.graph.process(p).totalIterations(),
              3 * params.valueElems);
  }
}

TEST(ServiceWorkload, ReadPermilleControlsTheMix) {
  ServiceWorkloadParams params;
  params.readPermille = 1000;
  const Workload allGets = makeServiceWorkload(params);
  params.readPermille = 0;
  const Workload allPuts = makeServiceWorkload(params);
  for (ProcessId p = 0; p < allGets.graph.processCount(); ++p) {
    EXPECT_EQ(allGets.graph.process(p).name.rfind("svc.get", 0), 0u);
    EXPECT_EQ(allPuts.graph.process(p).name.rfind("svc.put", 0), 0u);
  }
}

TEST(ServiceWorkload, KeyOverlapCreatesSharing) {
  // The whole point of the generator: hot keys overlap requests, so the
  // sharing matrix the locality-aware schedulers consume is non-trivial
  // without any hand-wired pipeline.
  const Workload w = makeServiceWorkload();
  const SharingMatrix sharing = SharingMatrix::compute(w.footprints());
  std::size_t sharingPairs = 0;
  for (ProcessId a = 0; a < w.graph.processCount(); ++a) {
    for (ProcessId b = a + 1; b < w.graph.processCount(); ++b) {
      sharingPairs += sharing.at(a, b) > 0 ? 1 : 0;
    }
  }
  EXPECT_GT(sharingPairs, w.graph.processCount());
  // And the skew disabled (uniform keys, no hot set) shares less.
  ServiceWorkloadParams uniform;
  uniform.hotKeyCount = 0;
  const Workload u = makeServiceWorkload(uniform);
  const SharingMatrix uniformSharing = SharingMatrix::compute(u.footprints());
  std::size_t uniformPairs = 0;
  for (ProcessId a = 0; a < u.graph.processCount(); ++a) {
    for (ProcessId b = a + 1; b < u.graph.processCount(); ++b) {
      uniformPairs += uniformSharing.at(a, b) > 0 ? 1 : 0;
    }
  }
  EXPECT_LT(uniformPairs, sharingPairs);
}

TEST(ServiceWorkload, ValidatesParameters) {
  ServiceWorkloadParams params;
  params.requestCount = 0;
  EXPECT_THROW(params.validate(), Error);
  params.requestCount = 1;
  params.keysPerRequest = 30;  // > keyCount
  EXPECT_THROW(params.validate(), Error);
  params.keysPerRequest = 2;
  params.readPermille = 1001;
  EXPECT_THROW(params.validate(), Error);
  params.readPermille = 500;
  params.hotKeyCount = 25;  // > keyCount
  EXPECT_THROW(params.validate(), Error);
  params.hotKeyCount = 4;
  params.valueElems = 0;
  EXPECT_THROW(params.validate(), Error);
  params.valueElems = 16;
  params.validate();
}

TEST(ServiceWorkload, RunsClosedEndToEnd) {
  // The generator also works as a plain closed workload.
  ServiceWorkloadParams params;
  params.requestCount = 16;
  const Workload w = makeServiceWorkload(params);
  const auto r = runExperiment(w, SchedulerKind::Locality, {});
  EXPECT_GT(r.sim.makespanCycles, 0);
  for (const ProcessRunRecord& p : r.sim.processes) {
    EXPECT_GE(p.completionCycle, 0);
  }
}

}  // namespace
}  // namespace laps

#include "taskgraph/builder.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace laps {
namespace {

LoopNest vectorNest(ArrayId array, std::int64_t n) {
  return LoopNest{
      IterationSpace::box({{0, n}}),
      {ArrayAccess{array, AffineMap{AffineExpr({1}, 0)}, AccessKind::Read}},
      1};
}

TEST(AddParallelLoop, SplitsPaperExample) {
  // Prog1: 8x3000 nest split over 8 processes.
  Workload w;
  const ArrayId a = w.arrays.add("A", {10000, 16}, 4);
  const LoopNest nest{
      IterationSpace::box({{0, 8}, {0, 3000}}),
      {ArrayAccess{a,
                   AffineMap{AffineExpr({1000, 1}, 0), AffineExpr::constant(5)},
                   AccessKind::Read}},
      1};
  const auto ids = addParallelLoop(w, /*task=*/0, "prog1", nest, 8);
  ASSERT_EQ(ids.size(), 8u);
  const auto fps = w.footprints();
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_EQ(fps[k].totalElements(), 3000);
    EXPECT_EQ(w.graph.process(ids[k]).name, "prog1." + std::to_string(k));
  }
  // Successive blocks share 2000 elements (Fig. 2(a) golden).
  EXPECT_EQ(fps[0].sharedElements(fps[1]), 2000);
  EXPECT_EQ(fps[0].sharedElements(fps[2]), 1000);
  EXPECT_EQ(fps[0].sharedElements(fps[3]), 0);
}

TEST(AddParallelLoop, SkipsEmptyBlocks) {
  Workload w;
  const ArrayId v = w.arrays.add("V", {10}, 4);
  const auto ids = addParallelLoop(w, 0, "tiny",
                                   LoopNest{IterationSpace::box({{0, 3}}),
                                            {ArrayAccess{v, AffineMap{AffineExpr({1}, 0)},
                                                         AccessKind::Read}},
                                            1},
                                   8);
  EXPECT_EQ(ids.size(), 3u);  // only 3 non-empty blocks
  EXPECT_EQ(w.graph.processCount(), 3u);
}

TEST(AddParallelLoop, BadPartsThrows) {
  Workload w;
  const ArrayId v = w.arrays.add("V", {10}, 4);
  EXPECT_THROW(addParallelLoop(w, 0, "x", vectorNest(v, 10), 0), Error);
}

TEST(LinkStages, AllToAll) {
  Workload w;
  const ArrayId v = w.arrays.add("V", {100}, 4);
  const auto s1 = addParallelLoop(w, 0, "s1", vectorNest(v, 100), 2);
  const auto s2 = addParallelLoop(w, 0, "s2", vectorNest(v, 100), 3);
  linkStages(w.graph, s1, s2, StageLink::AllToAll);
  EXPECT_EQ(w.graph.edgeCount(), 6u);
  for (const ProcessId t : s2) {
    EXPECT_EQ(w.graph.predecessors(t).size(), 2u);
  }
}

TEST(LinkStages, OneToOne) {
  Workload w;
  const ArrayId v = w.arrays.add("V", {100}, 4);
  const auto s1 = addParallelLoop(w, 0, "s1", vectorNest(v, 100), 4);
  const auto s2 = addParallelLoop(w, 0, "s2", vectorNest(v, 100), 4);
  linkStages(w.graph, s1, s2, StageLink::OneToOne);
  EXPECT_EQ(w.graph.edgeCount(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(w.graph.predecessors(s2[i]), std::vector<ProcessId>{s1[i]});
  }
}

TEST(LinkStages, OneToOneSizeMismatchThrows) {
  Workload w;
  const ArrayId v = w.arrays.add("V", {100}, 4);
  const auto s1 = addParallelLoop(w, 0, "s1", vectorNest(v, 100), 2);
  const auto s2 = addParallelLoop(w, 0, "s2", vectorNest(v, 100), 3);
  EXPECT_THROW(linkStages(w.graph, s1, s2, StageLink::OneToOne), Error);
}

TEST(LinkStages, NeighborhoodClampsAtBorders) {
  Workload w;
  const ArrayId v = w.arrays.add("V", {100}, 4);
  const auto s1 = addParallelLoop(w, 0, "s1", vectorNest(v, 100), 4);
  const auto s2 = addParallelLoop(w, 0, "s2", vectorNest(v, 100), 4);
  linkStages(w.graph, s1, s2, StageLink::Neighborhood);
  // Border processes have 2 predecessors, inner ones 3.
  EXPECT_EQ(w.graph.predecessors(s2[0]).size(), 2u);
  EXPECT_EQ(w.graph.predecessors(s2[1]).size(), 3u);
  EXPECT_EQ(w.graph.predecessors(s2[2]).size(), 3u);
  EXPECT_EQ(w.graph.predecessors(s2[3]).size(), 2u);
}

TEST(AppendWorkload, RemapsEverything) {
  Workload a;
  const ArrayId av = a.arrays.add("A", {100}, 4);
  const auto as = addParallelLoop(a, 0, "a", vectorNest(av, 100), 2);
  linkStages(a.graph, {as[0]}, {as[1]}, StageLink::AllToAll);

  Workload b;
  const ArrayId bv = b.arrays.add("B", {50}, 8);
  const auto bs = addParallelLoop(b, 0, "b", vectorNest(bv, 50), 2);
  linkStages(b.graph, {bs[0]}, {bs[1]}, StageLink::AllToAll);

  const ProcessId offset = appendWorkload(a, b);
  EXPECT_EQ(offset, 2u);
  EXPECT_EQ(a.arrays.size(), 2u);
  EXPECT_EQ(a.graph.processCount(), 4u);
  EXPECT_EQ(a.graph.edgeCount(), 2u);

  // Task ids must not collide.
  EXPECT_EQ(a.graph.process(0).task, 0u);
  EXPECT_EQ(a.graph.process(2).task, 1u);

  // Array ids in appended processes point at the copied array.
  const auto& appended = a.graph.process(2);
  EXPECT_EQ(appended.nests[0].accesses[0].array, 1u);
  EXPECT_EQ(a.arrays.at(1).name, "B");
  EXPECT_EQ(a.arrays.at(1).elemSize, 8);

  // Dependence carried over with remapped ids.
  EXPECT_EQ(a.graph.predecessors(3), std::vector<ProcessId>{2});

  // No cross-application sharing (paper: apps don't share data).
  const auto fps = a.footprints();
  EXPECT_EQ(fps[0].sharedElements(fps[2]), 0);
  EXPECT_EQ(fps[1].sharedElements(fps[3]), 0);
}

TEST(AppendWorkload, IntoEmptyWorkload) {
  Workload dst;
  Workload src;
  const ArrayId v = src.arrays.add("V", {10}, 4);
  addParallelLoop(src, 0, "p", vectorNest(v, 10), 1);
  EXPECT_EQ(appendWorkload(dst, src), 0u);
  EXPECT_EQ(dst.graph.processCount(), 1u);
  EXPECT_EQ(dst.arrays.size(), 1u);
}

}  // namespace
}  // namespace laps

#include "taskgraph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.h"

namespace laps {
namespace {

ProcessSpec named(const std::string& name, TaskId task = 0) {
  ProcessSpec p;
  p.name = name;
  p.task = task;
  return p;
}

/// Diamond: a -> b, a -> c, b -> d, c -> d.
ExtendedProcessGraph diamond() {
  ExtendedProcessGraph g;
  const auto a = g.addProcess(named("a"));
  const auto b = g.addProcess(named("b"));
  const auto c = g.addProcess(named("c"));
  const auto d = g.addProcess(named("d"));
  g.addDependence(a, b);
  g.addDependence(a, c);
  g.addDependence(b, d);
  g.addDependence(c, d);
  return g;
}

TEST(ExtendedProcessGraph, AddProcessAssignsDenseIds) {
  ExtendedProcessGraph g;
  EXPECT_EQ(g.addProcess(named("x")), 0u);
  EXPECT_EQ(g.addProcess(named("y")), 1u);
  EXPECT_EQ(g.process(0).name, "x");
  EXPECT_EQ(g.process(1).name, "y");
  EXPECT_EQ(g.processCount(), 2u);
}

TEST(ExtendedProcessGraph, UnknownIdThrows) {
  ExtendedProcessGraph g;
  g.addProcess(named("x"));
  EXPECT_THROW((void)g.process(1), Error);
  EXPECT_THROW(g.addDependence(0, 1), Error);
  EXPECT_THROW((void)g.predecessors(5), Error);
}

TEST(ExtendedProcessGraph, SelfDependenceRejected) {
  ExtendedProcessGraph g;
  g.addProcess(named("x"));
  EXPECT_THROW(g.addDependence(0, 0), Error);
}

TEST(ExtendedProcessGraph, DuplicateEdgeIgnored) {
  ExtendedProcessGraph g;
  g.addProcess(named("a"));
  g.addProcess(named("b"));
  g.addDependence(0, 1);
  g.addDependence(0, 1);
  EXPECT_EQ(g.edgeCount(), 1u);
  EXPECT_EQ(g.successors(0).size(), 1u);
  EXPECT_EQ(g.predecessors(1).size(), 1u);
}

TEST(ExtendedProcessGraph, RootsAreIndependentProcesses) {
  const auto g = diamond();
  EXPECT_EQ(g.roots(), std::vector<ProcessId>{0});
  ExtendedProcessGraph flat;
  flat.addProcess(named("p"));
  flat.addProcess(named("q"));
  EXPECT_EQ(flat.roots(), (std::vector<ProcessId>{0, 1}));
}

TEST(ExtendedProcessGraph, TopologicalOrderValid) {
  const auto g = diamond();
  const auto order = g.topologicalOrder();
  EXPECT_TRUE(g.respectsDependences(order));
  EXPECT_EQ(order.front(), 0u);
  EXPECT_EQ(order.back(), 3u);
}

TEST(ExtendedProcessGraph, CycleDetected) {
  ExtendedProcessGraph g;
  g.addProcess(named("a"));
  g.addProcess(named("b"));
  g.addProcess(named("c"));
  g.addDependence(0, 1);
  g.addDependence(1, 2);
  EXPECT_TRUE(g.isAcyclic());
  g.addDependence(2, 0);
  EXPECT_FALSE(g.isAcyclic());
  EXPECT_THROW((void)g.topologicalOrder(), Error);
}

TEST(ExtendedProcessGraph, RespectsDependencesChecksShapeAndOrder) {
  const auto g = diamond();
  EXPECT_TRUE(g.respectsDependences({0, 1, 2, 3}));
  EXPECT_TRUE(g.respectsDependences({0, 2, 1, 3}));
  EXPECT_FALSE(g.respectsDependences({1, 0, 2, 3}));  // b before a
  EXPECT_FALSE(g.respectsDependences({0, 1, 2}));     // missing process
  EXPECT_FALSE(g.respectsDependences({0, 1, 2, 2}));  // duplicate
  EXPECT_FALSE(g.respectsDependences({0, 1, 2, 7}));  // unknown id
}

TEST(ExtendedProcessGraph, TasksAndTaskFilter) {
  ExtendedProcessGraph g;
  g.addProcess(named("a0", 0));
  g.addProcess(named("b0", 1));
  g.addProcess(named("a1", 0));
  EXPECT_EQ(g.tasks(), (std::vector<TaskId>{0, 1}));
  EXPECT_EQ(g.processesOfTask(0), (std::vector<ProcessId>{0, 2}));
  EXPECT_EQ(g.processesOfTask(1), (std::vector<ProcessId>{1}));
  EXPECT_TRUE(g.processesOfTask(9).empty());
}

TEST(ExtendedProcessGraph, CriticalPathCycles) {
  // Chain of three processes, each with 10 iterations of 1 cycle and no
  // references: estimatedCycles == 10 each.
  ExtendedProcessGraph g;
  for (int i = 0; i < 3; ++i) {
    ProcessSpec p = named("p" + std::to_string(i));
    p.nests.push_back(LoopNest{IterationSpace::box({{0, 10}}), {}, 1});
    g.addProcess(std::move(p));
  }
  g.addDependence(0, 1);
  g.addDependence(1, 2);
  const auto cp = g.criticalPathCycles();
  EXPECT_EQ(cp[2], 10);
  EXPECT_EQ(cp[1], 20);
  EXPECT_EQ(cp[0], 30);
}

TEST(ExtendedProcessGraph, ToDotContainsNodesAndEdges) {
  const auto g = diamond();
  const std::string dot = g.toDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("p0 -> p1"), std::string::npos);
  EXPECT_NE(dot.find("p2 -> p3"), std::string::npos);
  EXPECT_NE(dot.find("\"a\""), std::string::npos);
}

TEST(Workload, FootprintsComputedPerProcess) {
  Workload w;
  const ArrayId v = w.arrays.add("V", {100}, 4);
  ProcessSpec p = named("p");
  p.nests.push_back(LoopNest{
      IterationSpace::box({{0, 60}}),
      {ArrayAccess{v, AffineMap{AffineExpr({1}, 0)}, AccessKind::Read}},
      1});
  ProcessSpec q = named("q");
  q.nests.push_back(LoopNest{
      IterationSpace::box({{40, 100}}),
      {ArrayAccess{v, AffineMap{AffineExpr({1}, 0)}, AccessKind::Read}},
      1});
  w.graph.addProcess(std::move(p));
  w.graph.addProcess(std::move(q));
  const auto fps = w.footprints();
  ASSERT_EQ(fps.size(), 2u);
  EXPECT_EQ(fps[0].totalElements(), 60);
  EXPECT_EQ(fps[1].totalElements(), 60);
  EXPECT_EQ(fps[0].sharedElements(fps[1]), 20);
}

}  // namespace
}  // namespace laps

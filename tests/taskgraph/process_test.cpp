#include "taskgraph/process.h"

#include <gtest/gtest.h>

namespace laps {
namespace {

/// Two-nest process over a small vector array.
ProcessSpec sampleProcess(ArrayTable& arrays) {
  const ArrayId v = arrays.add("V", {1000}, 4);
  ProcessSpec p;
  p.name = "sample";
  p.task = 2;
  p.nests.push_back(LoopNest{
      IterationSpace::box({{0, 100}}),
      {ArrayAccess{v, AffineMap{AffineExpr({1}, 0)}, AccessKind::Read}},
      /*computeCyclesPerIter=*/3});
  p.nests.push_back(LoopNest{
      IterationSpace::box({{0, 50}}),
      {ArrayAccess{v, AffineMap{AffineExpr({1}, 500)}, AccessKind::Write},
       ArrayAccess{v, AffineMap{AffineExpr({1}, 0)}, AccessKind::Read}},
      /*computeCyclesPerIter=*/2});
  return p;
}

TEST(LoopNest, TotalReferences) {
  LoopNest nest{IterationSpace::box({{0, 10}, {0, 20}}), {}, 1};
  EXPECT_EQ(nest.totalReferences(), 0);
  nest.accesses.resize(3);
  EXPECT_EQ(nest.totalReferences(), 600);
}

TEST(ProcessSpec, Totals) {
  ArrayTable arrays;
  const ProcessSpec p = sampleProcess(arrays);
  EXPECT_EQ(p.totalIterations(), 150);
  EXPECT_EQ(p.totalReferences(), 100 + 2 * 50);
  EXPECT_EQ(p.totalComputeCycles(), 3 * 100 + 2 * 50);
  EXPECT_EQ(p.estimatedCycles(2), 400 + 2 * 200);
}

TEST(ProcessSpec, FootprintUnionsNests) {
  ArrayTable arrays;
  const ProcessSpec p = sampleProcess(arrays);
  const Footprint fp = p.footprint(arrays);
  // Nest 1 touches [0,100); nest 2 touches [500,550) and [0,50).
  EXPECT_EQ(fp.totalElements(), 100 + 50);
  EXPECT_TRUE(fp.of(0).contains(0));
  EXPECT_TRUE(fp.of(0).contains(99));
  EXPECT_FALSE(fp.of(0).contains(100));
  EXPECT_TRUE(fp.of(0).contains(525));
}

TEST(ProcessSpec, EmptyProcess) {
  ArrayTable arrays;
  ProcessSpec p;
  EXPECT_EQ(p.totalIterations(), 0);
  EXPECT_EQ(p.totalReferences(), 0);
  EXPECT_EQ(p.estimatedCycles(), 0);
  EXPECT_EQ(p.footprint(arrays).totalElements(), 0);
}

}  // namespace
}  // namespace laps

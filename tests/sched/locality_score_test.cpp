/// \file locality_score_test.cpp
/// \brief The unified locality-score hook and its distance-aware
/// consumers: LocalityScore arithmetic (blind degeneracy, hop-weighted
/// key order, the CALS combiner), the
/// spiral initial mapping of buildLocalityPlan under a topology, and
/// PlanIndex's hop-weighted heap keys (enableDistance / setHome).

#include "sched/locality_score.h"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/laps.h"
#include "util/audit.h"

namespace laps {
namespace {

SharingMatrix diagonalFree(std::size_t n) {
  SharingMatrix sharing(n);
  return sharing;
}

// --- LocalityScore arithmetic --------------------------------------------

TEST(LocalityScore, BlindKeyIsTheSharingTermExactly) {
  // Every pre-NoC configuration: no topology, or hopWeight 0 — the key
  // must be the raw sharing term bit-for-bit, because the plan index's
  // legacy heap keys and the committed PR 8 decision checksums depend
  // on it.
  const SharingMatrix sharing = diagonalFree(4);
  const NocTopology mesh(NocTopologyKind::Mesh, 16, 4);
  LocalityScore blindNoTopology;
  blindNoTopology.configure(&sharing);
  LocalityScore blindZeroWeight;
  blindZeroWeight.configure(&sharing, &mesh, 0);
  LocalityScore weightWithoutTopology;
  weightWithoutTopology.configure(&sharing, nullptr, 7);  // weight dropped
  for (LocalityScore* score :
       {&blindNoTopology, &blindZeroWeight, &weightWithoutTopology}) {
    EXPECT_FALSE(score->distanceAware());
    for (const std::int64_t term : {std::int64_t{0}, std::int64_t{1},
                                    std::int64_t{12345}, std::int64_t{-3}}) {
      EXPECT_EQ(score->key(term, 0, std::nullopt), term);
      EXPECT_EQ(score->key(term, 3, std::size_t{15}), term);
    }
  }
}

TEST(LocalityScore, AwareKeyOrdersBySharingThenDistance) {
  const SharingMatrix sharing = diagonalFree(4);
  const NocTopology mesh(NocTopologyKind::Mesh, 16, 4);
  LocalityScore score;
  score.configure(&sharing, &mesh, 3);
  ASSERT_TRUE(score.distanceAware());
  // key = sharing * 1024 - hopWeight * hops(core, home).
  EXPECT_EQ(score.key(5, 0, std::size_t{0}), 5 * 1024);      // same tile
  EXPECT_EQ(score.key(5, 0, std::size_t{15}), 5 * 1024 - 3 * 6);  // diameter
  EXPECT_EQ(score.key(5, 0, std::nullopt), 5 * 1024);  // no home: no penalty
  // Equal sharing: the nearer home wins.
  EXPECT_GT(score.key(5, 0, std::size_t{1}), score.key(5, 0, std::size_t{15}));
  // One more unit of sharing dominates any on-die distance: the maximum
  // penalty (hopWeight * diameter = 18) stays far below kSharingScale.
  EXPECT_GT(score.key(6, 0, std::size_t{15}), score.key(5, 0, std::size_t{0}));
}

TEST(LocalityScore, SharingHelperMatchesLegacyAnchorArithmetic) {
  SharingMatrix sharing(3);
  sharing.set(0, 2, 9);
  sharing.set(2, 0, 9);
  LocalityScore score;
  score.configure(&sharing);
  EXPECT_EQ(score.sharing(std::nullopt, 2), 0);  // anchorless: 0, as DLS
  EXPECT_EQ(score.sharing(ProcessId{0}, 2), 9);
}

TEST(LocalityScore, ContendedScoreMatchesCalsArithmetic) {
  // The double-but-integer-exact CALS combiner: with integral weights
  // every value is exactly representable, so comparisons are exact.
  EXPECT_EQ(LocalityScore::contendedScore(100, 1.0, 30), 70.0);
  EXPECT_EQ(LocalityScore::contendedScore(0, 2.0, 5), -10.0);
  EXPECT_EQ(LocalityScore::contendedScore(42, 0.0, 1000), 42.0);
  // Fractional weights follow IEEE double arithmetic deterministically.
  EXPECT_EQ(LocalityScore::contendedScore(10, 0.5, 4), 8.0);
}

// --- Spiral initial mapping ----------------------------------------------

ExtendedProcessGraph independentProcesses(std::size_t n) {
  ExtendedProcessGraph graph;
  for (std::size_t i = 0; i < n; ++i) {
    ProcessSpec p;
    p.name = "P" + std::to_string(i);
    graph.addProcess(std::move(p));
  }
  return graph;
}

TEST(SpiralMapping, IndexedAndLegacyPlannersAgreeUnderTopology) {
  // Both planners route their initial round through the same spiral
  // placement, so plan identity must survive the topology option.
  const NocTopology mesh(NocTopologyKind::Mesh, 4, 2);
  LocalityOptions options;
  options.topology = &mesh;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(seed * 0x2545f4914f6cdd1dULL + 11);
    const std::size_t n = 4 + static_cast<std::size_t>(rng.below(20));
    const ExtendedProcessGraph graph = independentProcesses(n);
    SharingMatrix sharing(n);
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = 0; q < p; ++q) {
        const auto s = static_cast<std::int64_t>(rng.below(8));
        sharing.set(p, q, s);
        sharing.set(q, p, s);
      }
    }
    const LocalityPlan a = buildLocalityPlan(graph, sharing, 4, options);
    const LocalityPlan b = buildLocalityPlanLegacy(graph, sharing, 4, options);
    ASSERT_EQ(a.perCore.size(), b.perCore.size()) << "seed " << seed;
    for (std::size_t c = 0; c < a.perCore.size(); ++c) {
      ASSERT_EQ(a.perCore[c], b.perCore[c]) << "seed " << seed << " core " << c;
    }
  }
}

TEST(SpiralMapping, HeavySharersLandOnAdjacentTiles) {
  // 4 independent processes on a 2x2 mesh; 0 and 1 share heavily, the
  // rest share nothing. The region-growing walk must put 0 and 1 on
  // adjacent tiles (1 hop), never on the diagonal (2 hops).
  const ExtendedProcessGraph graph = independentProcesses(4);
  SharingMatrix sharing(4);
  sharing.set(0, 1, 100);
  sharing.set(1, 0, 100);
  const NocTopology mesh(NocTopologyKind::Mesh, 4, 2);
  LocalityOptions options;
  options.topology = &mesh;
  const LocalityPlan plan = buildLocalityPlan(graph, sharing, 4, options);
  std::optional<std::size_t> tile0;
  std::optional<std::size_t> tile1;
  for (std::size_t c = 0; c < plan.perCore.size(); ++c) {
    ASSERT_EQ(plan.perCore[c].size(), 1u);  // initial round fills each core
    if (plan.perCore[c][0] == 0) tile0 = c;
    if (plan.perCore[c][0] == 1) tile1 = c;
  }
  ASSERT_TRUE(tile0 && tile1);
  EXPECT_EQ(mesh.hops(static_cast<std::int64_t>(*tile0),
                      static_cast<std::int64_t>(*tile1)),
            1);
}

TEST(SpiralMapping, NullTopologyKeepsTheIdOrderInitialRound) {
  // The default (no topology) must stay the paper's id-order initial
  // round: process c on core c — bit-identical to every committed
  // baseline.
  const ExtendedProcessGraph graph = independentProcesses(4);
  SharingMatrix sharing(4);
  sharing.set(0, 1, 100);
  sharing.set(1, 0, 100);
  const LocalityPlan plan = buildLocalityPlan(graph, sharing, 4);
  for (std::size_t c = 0; c < 4; ++c) {
    ASSERT_EQ(plan.perCore[c].size(), 1u);
    EXPECT_EQ(plan.perCore[c][0], static_cast<ProcessId>(c));
  }
}

TEST(SpiralMapping, TopologyNodeCountMustMatchCores) {
  const ExtendedProcessGraph graph = independentProcesses(4);
  const SharingMatrix sharing = diagonalFree(4);
  const NocTopology mesh(NocTopologyKind::Mesh, 16, 4);
  LocalityOptions options;
  options.topology = &mesh;  // 16 nodes, 4 cores: rejected eagerly
  EXPECT_THROW((void)buildLocalityPlan(graph, sharing, 4, options), Error);
}

// --- PlanIndex distance-aware keys ---------------------------------------

TEST(PlanIndexDistance, EqualSharingPrefersTheNearerHome) {
  // Anchor 0 shares equally with 1 and 2; process 1's home is the far
  // corner, process 2's the anchor core itself. Distance-blind the
  // smaller id (1) wins the tie; distance-aware the nearer home (2)
  // must win.
  SharingMatrix sharing(3);
  sharing.set(0, 1, 10);
  sharing.set(1, 0, 10);
  sharing.set(0, 2, 10);
  sharing.set(2, 0, 10);
  const NocTopology mesh(NocTopologyKind::Mesh, 4, 2);
  LocalityScore score;
  score.configure(&sharing, &mesh, 2);

  PlanIndex blind;
  blind.beginDispatch(sharing, 3, 4);
  blind.markReady(1);
  blind.markReady(2);
  EXPECT_EQ(blind.popBest(0, ProcessId{0}), ProcessId{1});

  PlanIndex aware;
  aware.beginDispatch(sharing, 3, 4);
  aware.enableDistance(&score);
  aware.setHome(1, 3);  // diagonal: 2 hops from core 0
  aware.setHome(2, 0);  // on the dispatching core
  aware.markReady(1);
  aware.markReady(2);
  EXPECT_EQ(aware.popBest(0, ProcessId{0}), ProcessId{2});
}

TEST(PlanIndexDistance, SharingStillDominatesDistance) {
  // kSharingScale guarantees one unit of sharing outweighs any on-die
  // hop penalty: the far-but-better-sharing candidate must still win.
  SharingMatrix sharing(3);
  sharing.set(0, 1, 11);
  sharing.set(1, 0, 11);
  sharing.set(0, 2, 10);
  sharing.set(2, 0, 10);
  const NocTopology mesh(NocTopologyKind::Mesh, 4, 2);
  LocalityScore score;
  score.configure(&sharing, &mesh, 2);
  PlanIndex index;
  index.beginDispatch(sharing, 3, 4);
  index.enableDistance(&score);
  index.setHome(1, 3);  // far
  index.setHome(2, 0);  // near
  index.markReady(1);
  index.markReady(2);
  EXPECT_EQ(index.popBest(0, ProcessId{0}), ProcessId{1});
}

TEST(PlanIndexDistance, AnchorlessPickIsTheNearestHome) {
  // Without an anchor every sharing term is 0, so aware keys reduce to
  // -penalty: the ready process homed nearest the core wins (smallest
  // id on equal distance) instead of the legacy smallest-id rule.
  const SharingMatrix sharing = diagonalFree(4);
  const NocTopology mesh(NocTopologyKind::Mesh, 4, 2);
  LocalityScore score;
  score.configure(&sharing, &mesh, 1);
  PlanIndex index;
  index.beginDispatch(sharing, 4, 4);
  index.enableDistance(&score);
  index.setHome(0, 3);  // 2 hops from core 0
  index.setHome(1, 1);  // 1 hop
  index.setHome(2, 2);  // 1 hop: ties with 1, loses on id
  index.markReady(0);
  index.markReady(1);
  index.markReady(2);
  EXPECT_EQ(index.popBest(0, std::nullopt), ProcessId{1});
}

TEST(PlanIndexDistance, SetHomeInvalidatesCachedKeys) {
  // A home change after the heap materialized must not serve stale
  // distance terms: moving process 1's home onto the core flips the
  // equal-sharing tie its way.
  SharingMatrix sharing(3);
  sharing.set(0, 1, 10);
  sharing.set(1, 0, 10);
  sharing.set(0, 2, 10);
  sharing.set(2, 0, 10);
  const NocTopology mesh(NocTopologyKind::Mesh, 4, 2);
  LocalityScore score;
  score.configure(&sharing, &mesh, 2);
  PlanIndex index;
  index.beginDispatch(sharing, 3, 4);
  index.enableDistance(&score);
  index.setHome(1, 3);
  index.setHome(2, 0);
  index.markReady(1);
  index.markReady(2);
  // Materialize the heap, then re-announce and rehome.
  EXPECT_EQ(index.popBest(0, ProcessId{0}), ProcessId{2});
  index.markReady(2);
  index.setHome(1, 0);  // now 1 is just as close — and wins on id
  EXPECT_EQ(index.popBest(0, ProcessId{0}), ProcessId{1});
}

TEST(PlanIndexDistance, AuditOracleAgreesOnHopWeightedKeys) {
  // The audit rescan shares keyFor with the heap, so a clean index must
  // agree under distance keys — and an injected corruption must still
  // fire, proving the checker audits the hop-weighted arithmetic.
  SharingMatrix sharing(4);
  for (std::size_t q = 1; q < 4; ++q) {
    sharing.set(0, q, static_cast<std::int64_t>(10 * q));
    sharing.set(q, 0, static_cast<std::int64_t>(10 * q));
  }
  const NocTopology mesh(NocTopologyKind::Mesh, 4, 2);
  LocalityScore score;
  score.configure(&sharing, &mesh, 2);
  PlanIndex index;
  index.beginDispatch(sharing, 4, 4);
  index.enableDistance(&score);
  for (ProcessId p = 1; p < 4; ++p) {
    index.setHome(p, static_cast<std::size_t>(p));
    index.markReady(p);
  }
  EXPECT_NO_THROW(index.auditTopAgreement(0, ProcessId{0}));
  EXPECT_NO_THROW(index.auditTopAgreement(2, std::nullopt));
  ASSERT_EQ(index.popBest(0, ProcessId{0}), ProcessId{3});
  index.corruptKeyForTest(0, ProcessId{1}, 1 << 20);
  EXPECT_THROW(index.auditTopAgreement(0, ProcessId{0}), AuditError);
}

// --- OnlineLocality option validation ------------------------------------

TEST(OnlineLocalityOptions, HopWeightRequiresTheIndexedPlanner) {
  OnlineLocalityOptions options;
  options.hopWeight = 4;
  options.indexedPlanner = false;
  EXPECT_THROW(options.validate(), Error);
  options.indexedPlanner = true;
  EXPECT_NO_THROW(options.validate());
  options.hopWeight = -1;
  EXPECT_THROW(options.validate(), Error);
}

TEST(OnlineLocalityOptions, QuantumMustBeNonNegative) {
  OnlineLocalityOptions options;
  options.quantumCycles = -1;
  EXPECT_THROW(options.validate(), Error);
  options.quantumCycles = 0;  // non-preemptive: quantum() = nullopt
  EXPECT_EQ(OnlineLocalityScheduler(options).quantum(), std::nullopt);
  options.quantumCycles = 5000;
  EXPECT_EQ(OnlineLocalityScheduler(options).quantum(),
            std::optional<std::int64_t>{5000});
}

}  // namespace
}  // namespace laps

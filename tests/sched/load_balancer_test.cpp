/// \file load_balancer_test.cpp
/// \brief Locality-aware load shedding (load_balancer.h): move planning
/// is pure and deterministic, honors the overload trigger and the
/// per-event cap, targets the best-sharing underloaded core — and wired
/// into OnlineLocalityScheduler it sheds arrival skew without ever
/// dispatching a non-ready process, bit-identically at 1 and 8 threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "core/laps.h"

namespace laps {
namespace {

TEST(LoadBalancerOptions, Validates) {
  LoadBalancerOptions options;
  EXPECT_NO_THROW(options.validate());  // defaults are valid
  options.overloadPercent = 99;
  EXPECT_THROW(options.validate(), Error);
  options.overloadPercent = 100;
  options.maxMovesPerEvent = 0;
  EXPECT_THROW(options.validate(), Error);

  // The scheduler and the factory both reject invalid balancer tunables.
  OnlineLocalityOptions ols;
  ols.balancer.enabled = true;
  ols.balancer.overloadPercent = 50;
  EXPECT_THROW(OnlineLocalityScheduler{ols}, Error);
  SchedulerParams params;
  params.onlineLocality = ols;
  EXPECT_THROW(makeScheduler(SchedulerKind::OnlineLocality, params), Error);
}

TEST(LoadBalancer, OffloadsTailToBestSharingTarget) {
  // Core 0 holds all six pending processes; cores 1 and 2 are empty
  // with anchors 6 and 7. Tail entries must migrate to whichever
  // underloaded core shares the most with them.
  SharingMatrix sharing(8);
  const auto link = [&](std::size_t a, std::size_t b, std::int64_t s) {
    sharing.set(a, b, s);
    sharing.set(b, a, s);
  };
  link(6, 5, 10);
  link(7, 5, 50);  // process 5 belongs with core 2's anchor
  link(5, 4, 90);  // ...and process 4 with the freshly moved 5
  link(6, 3, 10);  // process 3 with core 1's anchor

  const std::vector<std::vector<ProcessId>> queues{
      {0, 1, 2, 3, 4, 5}, {}, {}};
  const std::vector<std::optional<ProcessId>> anchors{
      std::nullopt, ProcessId{6}, ProcessId{7}};
  LoadBalancerOptions options;  // 150%, 4 moves

  const std::vector<BalanceMove> moves =
      planBalanceMoves(queues, sharing, anchors, options);
  // mean = 2: weights 6, 5, 4 trip the 150% trigger; weight 3 does not.
  ASSERT_EQ(moves.size(), 3u);
  EXPECT_EQ(moves[0].process, 5u);
  EXPECT_EQ(moves[0].to, 2u);  // sharing(7, 5) = 50 beats sharing(6, 5)
  EXPECT_EQ(moves[1].process, 4u);
  EXPECT_EQ(moves[1].to, 2u);  // chained: sharing(5, 4) = 90 wins
  EXPECT_EQ(moves[2].process, 3u);
  EXPECT_EQ(moves[2].to, 1u);  // sharing(6, 3) = 10 beats sharing(4, 3)
  for (const BalanceMove& move : moves) EXPECT_EQ(move.from, 0u);
}

TEST(LoadBalancer, NoMovesWhenBalanced) {
  SharingMatrix sharing(8);
  const std::vector<std::optional<ProcessId>> anchors(3, std::nullopt);
  LoadBalancerOptions options;
  // Perfectly even, slightly uneven, and degenerate single-core cases.
  EXPECT_TRUE(planBalanceMoves({{0, 1}, {2, 3}, {4, 5}}, sharing, anchors,
                               options)
                  .empty());
  EXPECT_TRUE(planBalanceMoves({{0, 1, 2}, {3, 4}, {5}}, sharing, anchors,
                               options)
                  .empty());
  EXPECT_TRUE(planBalanceMoves(
                  {{0, 1, 2, 3, 4, 5}}, sharing,
                  std::vector<std::optional<ProcessId>>(1, std::nullopt),
                  options)
                  .empty());
}

TEST(LoadBalancer, PureDeterministicAndBounded) {
  // Property sweep: planBalanceMoves is a pure function (same inputs,
  // same moves), obeys maxMovesPerEvent, only ever sheds the simulated
  // tail, and every move lands at least two below its source.
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(seed * 0x2545f4914f6cdd1dULL + 11);
    const std::size_t cores = 2 + static_cast<std::size_t>(rng.below(6));
    const std::size_t n = 32;
    SharingMatrix sharing(n);
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = 0; q < p; ++q) {
        const auto s = static_cast<std::int64_t>(rng.below(20));
        sharing.set(p, q, s);
        sharing.set(q, p, s);
      }
    }
    std::vector<ProcessId> ids;
    for (ProcessId p = 0; p < n; ++p) ids.push_back(p);
    rng.shuffle(ids);
    std::vector<std::vector<ProcessId>> queues(cores);
    std::vector<std::optional<ProcessId>> anchors(cores);
    std::size_t next = 0;
    for (std::size_t c = 0; c < cores; ++c) {
      // Skewed fill: core 0 hogs, later cores may stay empty.
      const std::size_t take =
          c == 0 ? 8 + rng.below(8) : rng.below(4);
      for (std::size_t i = 0; i < take && next < n; ++i) {
        queues[c].push_back(ids[next++]);
      }
      if (rng.below(2) == 0 && next < n) anchors[c] = ids[next++];
    }
    LoadBalancerOptions options;
    options.maxMovesPerEvent = 1 + rng.below(5);

    const auto moves = planBalanceMoves(queues, sharing, anchors, options);
    const auto again = planBalanceMoves(queues, sharing, anchors, options);
    ASSERT_EQ(moves.size(), again.size()) << "seed " << seed;
    for (std::size_t i = 0; i < moves.size(); ++i) {
      EXPECT_EQ(moves[i].process, again[i].process) << "seed " << seed;
      EXPECT_EQ(moves[i].from, again[i].from) << "seed " << seed;
      EXPECT_EQ(moves[i].to, again[i].to) << "seed " << seed;
    }
    EXPECT_LE(moves.size(), options.maxMovesPerEvent);

    // Replay: each move pops its source's simulated tail onto a target
    // sitting at least two below.
    std::vector<std::vector<ProcessId>> sim = queues;
    for (const BalanceMove& move : moves) {
      ASSERT_LT(move.from, cores) << "seed " << seed;
      ASSERT_LT(move.to, cores) << "seed " << seed;
      ASSERT_FALSE(sim[move.from].empty()) << "seed " << seed;
      EXPECT_EQ(sim[move.from].back(), move.process) << "seed " << seed;
      EXPECT_LT(sim[move.to].size() + 1, sim[move.from].size())
          << "seed " << seed;
      sim[move.from].pop_back();
      sim[move.to].push_back(move.process);
    }
  }
}

/// Drives an OLS policy through the engine's event protocol: all \p n
/// processes arrive up front (skewed-burst shape), readiness follows the
/// DAG, one dispatch round per step. Asserts the policy never yields a
/// non-ready or already-dispatched process and that everything
/// completes. Returns the (core, process) dispatch sequence.
std::vector<std::pair<std::size_t, ProcessId>> driveOls(
    const ExtendedProcessGraph& graph, const SharingMatrix& sharing,
    std::size_t coreCount, const OnlineLocalityOptions& options,
    PolicyStats* statsOut = nullptr) {
  OnlineLocalityScheduler policy(options);
  policy.reset(SchedContext{&graph, &sharing, coreCount});
  const std::size_t n = graph.processCount();

  std::vector<bool> completed(n, false);
  std::vector<bool> readySet(n, false);
  std::vector<bool> dispatched(n, false);
  const auto depsDone = [&](ProcessId p) {
    for (const ProcessId pred : graph.predecessors(p)) {
      if (!completed[pred]) return false;
    }
    return true;
  };
  for (ProcessId p = 0; p < n; ++p) {
    policy.onArrival(p);
    if (depsDone(p)) {
      policy.onReady(p);
      readySet[p] = true;
    }
  }

  std::vector<std::pair<std::size_t, ProcessId>> sequence;
  std::vector<std::optional<ProcessId>> previous(coreCount);
  std::size_t completedCount = 0;
  std::vector<ProcessId> ran;
  while (completedCount < n) {
    ran.clear();
    for (std::size_t core = 0; core < coreCount; ++core) {
      const auto pick = policy.pickNext(core, previous[core]);
      if (!pick) continue;
      // Dependency-safety: only announced-ready, untaken work may run.
      EXPECT_TRUE(readySet[*pick]) << "process " << *pick;
      EXPECT_FALSE(dispatched[*pick]) << "process " << *pick;
      EXPECT_TRUE(depsDone(*pick)) << "process " << *pick;
      readySet[*pick] = false;
      dispatched[*pick] = true;
      sequence.emplace_back(core, *pick);
      previous[core] = *pick;
      ran.push_back(*pick);
    }
    EXPECT_FALSE(ran.empty()) << "policy stranded work at "
                              << completedCount << "/" << n;
    if (ran.empty()) return sequence;  // avoid spinning forever
    for (const ProcessId p : ran) {
      policy.onComplete(p);
      policy.onExit(p);
      completed[p] = true;
      ++completedCount;
      for (const ProcessId succ : graph.successors(p)) {
        if (!completed[succ] && !readySet[succ] && !dispatched[succ] &&
            depsDone(succ)) {
          policy.onReady(succ);
          readySet[succ] = true;
        }
      }
    }
  }
  if (statsOut) *statsOut = policy.stats();
  return sequence;
}

/// Layered DAG (4-wide) whose sharing makes core 0 win every arrival
/// patch: the burst piles onto one queue unless the balancer sheds it.
struct SkewRig {
  ExtendedProcessGraph graph;
  SharingMatrix sharing{16};

  SkewRig() {
    for (int i = 0; i < 16; ++i) {
      ProcessSpec p;
      p.name = "S" + std::to_string(i);
      graph.addProcess(std::move(p));
    }
    for (ProcessId p = 4; p < 16; ++p) graph.addDependence(p - 4, p);
    for (std::size_t p = 0; p < 16; ++p) {
      for (std::size_t q = 0; q < p; ++q) {
        sharing.set(p, q, 100);
        sharing.set(q, p, 100);
      }
      sharing.set(p, p, 10);
    }
  }
};

TEST(LoadBalancer, OlsShedsSkewSafelyAndDeterministically) {
  SkewRig rig;
  OnlineLocalityOptions base;
  base.rebuildThreshold = 1000;  // pure patching preserves the skew

  // Without the balancer the uniform sharing funnels every arrival
  // patch onto core 0 and no offload is counted.
  PolicyStats offStats;
  const auto offSeq = driveOls(rig.graph, rig.sharing, 4, base, &offStats);
  EXPECT_EQ(offStats.offloads, 0u);

  OnlineLocalityOptions balanced = base;
  balanced.balancer.enabled = true;
  PolicyStats onStats;
  const auto onSeq = driveOls(rig.graph, rig.sharing, 4, balanced, &onStats);
  EXPECT_GT(onStats.offloads, 0u);
  EXPECT_EQ(onSeq.size(), 16u);  // everything dispatched exactly once
  EXPECT_EQ(offSeq.size(), 16u);

  // Determinism: the dispatch sequence is bit-identical across repeat
  // runs and across thread counts (the balancer is pure integer
  // arithmetic; nothing in the decision path touches the pool).
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    setParallelThreadCount(threads);
    const auto replay =
        driveOls(rig.graph, rig.sharing, 4, balanced, nullptr);
    EXPECT_EQ(replay, onSeq) << threads << " threads";
  }
  setParallelThreadCount(0);  // restore automatic resolution

  // Both modes shed identically: the balancer sits above the plan
  // representation, so indexed and legacy stay decision-identical.
  OnlineLocalityOptions legacy = balanced;
  legacy.indexedPlanner = false;
  PolicyStats legacyStats;
  const auto legacySeq =
      driveOls(rig.graph, rig.sharing, 4, legacy, &legacyStats);
  EXPECT_EQ(legacySeq, onSeq);
  EXPECT_EQ(legacyStats.offloads, onStats.offloads);
}

}  // namespace
}  // namespace laps

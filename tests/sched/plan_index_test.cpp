/// \file plan_index_test.cpp
/// \brief Differential property tests for the indexed planner core:
/// buildLocalityPlan (lazy heaps + cached indegrees) must be
/// plan-identical to buildLocalityPlanLegacy (the pre-index Fig. 3
/// loops) on random DAGs across subset spans and core counts, and
/// dispatch-mode popBest must match pickMaxSharing decision-for-
/// decision. The audit seam (auditTopAgreement / corruptKeyForTest)
/// is proven to fire on an injected stale-key violation.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "core/laps.h"
#include "util/audit.h"

namespace laps {
namespace {

/// Random DAG over \p n processes: edges only from lower to higher ids
/// (acyclic by construction), density ~ edgePercent per candidate pair,
/// capped at a handful of predecessors so wide ready fronts survive.
ExtendedProcessGraph randomDag(Rng& rng, std::size_t n,
                               std::uint64_t edgePercent) {
  ExtendedProcessGraph graph;
  for (std::size_t i = 0; i < n; ++i) {
    ProcessSpec p;
    p.name = "R" + std::to_string(i);
    graph.addProcess(std::move(p));
  }
  for (std::size_t to = 1; to < n; ++to) {
    std::size_t preds = 0;
    for (std::size_t from = 0; from < to && preds < 4; ++from) {
      if (rng.below(100) < edgePercent) {
        graph.addDependence(static_cast<ProcessId>(from),
                            static_cast<ProcessId>(to));
        ++preds;
      }
    }
  }
  return graph;
}

/// Random symmetric sharing matrix with a small value range so ties are
/// common — the tie-break (smallest id) is the part most worth pinning.
SharingMatrix randomSharing(Rng& rng, std::size_t n) {
  SharingMatrix sharing(n);
  for (std::size_t p = 0; p < n; ++p) {
    sharing.set(p, p, static_cast<std::int64_t>(rng.below(16)));
    for (std::size_t q = 0; q < p; ++q) {
      const auto s = static_cast<std::int64_t>(rng.below(8));
      sharing.set(p, q, s);
      sharing.set(q, p, s);
    }
  }
  return sharing;
}

void expectPlansEqual(const LocalityPlan& a, const LocalityPlan& b,
                      std::uint64_t seed, std::size_t coreCount) {
  ASSERT_EQ(a.perCore.size(), b.perCore.size())
      << "seed " << seed << " cores " << coreCount;
  for (std::size_t c = 0; c < a.perCore.size(); ++c) {
    ASSERT_EQ(a.perCore[c], b.perCore[c])
        << "seed " << seed << " cores " << coreCount << " core " << c;
  }
}

TEST(PlanIndexDifferential, MatchesLegacyOnRandomDags) {
  // 200 random DAGs x core counts x options x subset spans. Any
  // divergence prints the seed, so a failure reproduces standalone.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    const std::size_t n = 1 + static_cast<std::size_t>(rng.below(48));
    const std::uint64_t density = 5 + rng.below(45);
    const ExtendedProcessGraph graph = randomDag(rng, n, density);
    const SharingMatrix sharing = randomSharing(rng, n);

    LocalityOptions options;
    options.initialMinSharingRound = (seed % 2 == 0);

    for (const std::size_t coreCount : {std::size_t{1}, std::size_t{2},
                                        std::size_t{3}, std::size_t{8}}) {
      expectPlansEqual(
          buildLocalityPlan(graph, sharing, coreCount, options),
          buildLocalityPlanLegacy(graph, sharing, coreCount, options),
          seed, coreCount);
    }

    // A random subset span (the OLS rebuild path plans over the live
    // subset, not the full universe).
    std::vector<ProcessId> subset;
    for (ProcessId p = 0; p < n; ++p) subset.push_back(p);
    rng.shuffle(subset);
    subset.resize(1 + static_cast<std::size_t>(rng.below(n)));
    std::sort(subset.begin(), subset.end());
    const std::size_t coreCount = 1 + static_cast<std::size_t>(rng.below(8));
    expectPlansEqual(
        buildLocalityPlan(graph, sharing, coreCount, options, subset),
        buildLocalityPlanLegacy(graph, sharing, coreCount, options, subset),
        seed, coreCount);
  }
}

TEST(PlanIndexDifferential, MatchesLegacyOnRealWorkload) {
  // The benchmark-suite mixes exercise the realistic sharing topology
  // (dense blocks within an application, sparse across).
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, 3);
  const SharingMatrix sharing = SharingMatrix::compute(mix.footprints());
  for (const std::size_t coreCount : {std::size_t{2}, std::size_t{8}}) {
    expectPlansEqual(buildLocalityPlan(mix.graph, sharing, coreCount),
                     buildLocalityPlanLegacy(mix.graph, sharing, coreCount),
                     9999, coreCount);
  }
}

TEST(PlanIndexDifferential, DispatchPopMatchesPickMaxSharing) {
  // Dispatch mode against the legacy argmax: random interleavings of
  // markReady / markUnready / invalidateProcess / popBest must agree
  // with pickMaxSharing over a mirrored ready vector at every pick.
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed * 0x517cc1b727220a95ULL + 3);
    const std::size_t n = 4 + static_cast<std::size_t>(rng.below(40));
    const SharingMatrix sharing = randomSharing(rng, n);
    const std::size_t coreCount = 1 + static_cast<std::size_t>(rng.below(4));

    PlanIndex index;
    index.beginDispatch(sharing, n, coreCount);
    std::vector<bool> mirror(n, false);

    for (int step = 0; step < 300; ++step) {
      const std::uint64_t action = rng.below(10);
      const auto p = static_cast<ProcessId>(rng.below(n));
      if (action < 4) {
        index.markReady(p);
        mirror[p] = true;
      } else if (action < 5) {
        if (index.isReady(p)) index.markUnready(p);
        mirror[p] = false;
      } else if (action < 6) {
        index.invalidateProcess(p);
      } else {
        const auto core = static_cast<std::size_t>(rng.below(coreCount));
        std::optional<ProcessId> anchor;
        if (rng.below(4) != 0) anchor = static_cast<ProcessId>(rng.below(n));
        const auto expected = pickMaxSharing(mirror, sharing, anchor);
        const auto got = index.popBest(core, anchor);
        ASSERT_EQ(got, expected) << "seed " << seed << " step " << step;
        if (got) mirror[*got] = false;  // popBest marks the winner unready
      }
      ASSERT_EQ(index.readyCount(),
                static_cast<std::size_t>(
                    std::count(mirror.begin(), mirror.end(), true)));
    }
  }
}

TEST(PlanIndexAudit, CleanStateAgrees) {
  SharingMatrix sharing(6);
  for (std::size_t q = 1; q < 6; ++q) {
    sharing.set(0, q, static_cast<std::int64_t>(10 * q));
    sharing.set(q, 0, static_cast<std::int64_t>(10 * q));
  }
  PlanIndex index;
  index.beginDispatch(sharing, 6, 2);
  for (ProcessId p = 1; p < 6; ++p) index.markReady(p);
  // The checker is an ordinary function: callable (and clean) in every
  // build configuration, sampled from popBest only under LAPS_AUDIT.
  EXPECT_NO_THROW(index.auditTopAgreement(0, ProcessId{0}));
  EXPECT_NO_THROW(index.auditTopAgreement(1, std::nullopt));
  const auto best = index.popBest(0, ProcessId{0});
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, 5u);  // max sharing(0, q) = 50
  EXPECT_NO_THROW(index.auditTopAgreement(0, ProcessId{0}));
}

TEST(PlanIndexAudit, CorruptedKeyFiresChecker) {
  SharingMatrix sharing(6);
  for (std::size_t q = 1; q < 6; ++q) {
    sharing.set(0, q, static_cast<std::int64_t>(10 * q));
    sharing.set(q, 0, static_cast<std::int64_t>(10 * q));
  }
  PlanIndex index;
  index.beginDispatch(sharing, 6, 2);
  for (ProcessId p = 1; p < 6; ++p) index.markReady(p);
  // Materialize core 0's heap for anchor 0, then inject the bug the
  // version protocol is supposed to make impossible: a cached key that
  // no longer matches the live sharing row.
  const auto first = index.popBest(0, ProcessId{0});
  ASSERT_TRUE(first.has_value());
  index.corruptKeyForTest(0, ProcessId{1}, 1000);  // real key is 10
  EXPECT_THROW(index.auditTopAgreement(0, ProcessId{0}), AuditError);
  // No live entry for an unready process: the seam itself reports it.
  EXPECT_THROW(index.corruptKeyForTest(0, *first, 7), Error);
}

TEST(PlanIndexAudit, SampledPopDetectsCorruption) {
  // The macro path: popBest audits pops 1, 17, 33, ... (kAuditSampleEvery
  // = 16). Corrupt a key after pop 1 and walk to pop 17: under
  // LAPS_AUDIT the sampled rescan must throw; without it, the pop
  // silently returns the wrong process — exactly the failure mode the
  // audit layer exists to surface.
  constexpr std::size_t kN = 30;
  SharingMatrix sharing(kN);
  for (std::size_t q = 1; q < kN; ++q) {
    const auto s = static_cast<std::int64_t>(1000 - q);
    sharing.set(0, q, s);
    sharing.set(q, 0, s);
  }
  PlanIndex index;
  index.beginDispatch(sharing, kN, 1);
  for (ProcessId p = 1; p < 26; ++p) index.markReady(p);

  ASSERT_EQ(index.popBest(0, ProcessId{0}), ProcessId{1});  // pop 1: audited, clean
  index.corruptKeyForTest(0, ProcessId{2}, -5);  // true key 998: heap bottom
  for (ProcessId expect = 3; expect <= 17; ++expect) {
    // Pops 2..16 are unsampled; the corrupted entry hides at the bottom
    // while better-keyed (but actually worse) candidates pop first.
    ASSERT_EQ(index.popBest(0, ProcessId{0}), expect);
  }
  static_assert(PlanIndex::kAuditSampleEvery == 16);
  if (audit::enabled()) {
    EXPECT_THROW((void)index.popBest(0, ProcessId{0}), AuditError);
  } else {
    // Decision corruption passes silently: process 2 (key 998) should
    // win, but the heap serves 18.
    EXPECT_EQ(index.popBest(0, ProcessId{0}), ProcessId{18});
  }
}

TEST(PlanIndexPlanner, PlaceReleasesSuccessors) {
  // Planner mode owns readiness: a chain 0 -> 1 -> 2 becomes ready one
  // link at a time as place() decrements cached indegrees.
  ExtendedProcessGraph graph;
  for (int i = 0; i < 3; ++i) {
    ProcessSpec p;
    p.name = "C" + std::to_string(i);
    graph.addProcess(std::move(p));
  }
  graph.addDependence(0, 1);
  graph.addDependence(1, 2);
  SharingMatrix sharing(3);
  PlanIndex index;
  index.beginPlanner(graph, sharing, 1, std::vector<bool>(3, true));
  EXPECT_EQ(index.readyCount(), 1u);
  EXPECT_TRUE(index.isReady(0));
  const auto head = index.popBest(0, std::nullopt);
  ASSERT_EQ(head, ProcessId{0});
  EXPECT_EQ(index.readyCount(), 0u);
  index.place(*head);
  EXPECT_TRUE(index.isReady(1));
  EXPECT_FALSE(index.isReady(2));
}

}  // namespace
}  // namespace laps

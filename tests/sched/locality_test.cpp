#include "sched/locality.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "util/error.h"

namespace laps {
namespace {

/// Sharing matrix of the paper's running example (Prog1, 8 processes):
/// M[k][p] = 2000 at distance 1, 1000 at distance 2, 0 beyond.
SharingMatrix prog1Sharing() {
  SharingMatrix m(8);
  for (std::size_t k = 0; k < 8; ++k) {
    m.set(k, k, 3000);
    for (std::size_t p = 0; p < 8; ++p) {
      const auto d = k > p ? k - p : p - k;
      if (d == 1) m.set(k, p, 2000);
      if (d == 2) m.set(k, p, 1000);
    }
  }
  return m;
}

ExtendedProcessGraph independentProcesses(std::size_t n) {
  ExtendedProcessGraph g;
  for (std::size_t i = 0; i < n; ++i) {
    ProcessSpec p;
    p.name = "P" + std::to_string(i);
    g.addProcess(std::move(p));
  }
  return g;
}

std::int64_t consecutiveSharing(const LocalityPlan& plan,
                                const SharingMatrix& m) {
  std::int64_t total = 0;
  for (const auto& [a, b] : plan.successivePairs()) total += m.at(a, b);
  return total;
}

void expectValidPlacement(const LocalityPlan& plan, std::size_t n) {
  std::set<ProcessId> seen;
  for (const auto& core : plan.perCore) {
    for (const ProcessId p : core) {
      EXPECT_TRUE(seen.insert(p).second) << "process placed twice: " << p;
      EXPECT_LT(p, n);
    }
  }
  EXPECT_EQ(seen.size(), n) << "some process was never placed";
}

TEST(BuildLocalityPlan, PaperExampleFourCores) {
  const auto g = independentProcesses(8);
  const auto m = prog1Sharing();
  const LocalityPlan plan = buildLocalityPlan(g, m, 4);
  ASSERT_EQ(plan.perCore.size(), 4u);
  expectValidPlacement(plan, 8);
  // Every core runs exactly two processes (8 processes, 4 cores).
  for (const auto& core : plan.perCore) EXPECT_EQ(core.size(), 2u);
  // The greedy achieves neighbor pairing on at least 3 of 4 cores
  // (the paper notes the heuristic is not always optimal).
  int neighborPairs = 0;
  for (const auto& [a, b] : plan.successivePairs()) {
    if (m.at(a, b) == 2000) ++neighborPairs;
  }
  EXPECT_GE(neighborPairs, 3);
  EXPECT_GE(consecutiveSharing(plan, m), 6000);
}

TEST(BuildLocalityPlan, DeterministicGoldenTrace) {
  // Exact expected outcome of the Fig. 3 greedy on the running example
  // (documents the algorithm's tie-breaking behaviour).
  const auto g = independentProcesses(8);
  const auto m = prog1Sharing();
  const LocalityPlan plan = buildLocalityPlan(g, m, 4);
  EXPECT_EQ(plan.perCore[0], (std::vector<ProcessId>{0, 1}));
  EXPECT_EQ(plan.perCore[1], (std::vector<ProcessId>{3, 2}));
  EXPECT_EQ(plan.perCore[2], (std::vector<ProcessId>{6, 5}));
  EXPECT_EQ(plan.perCore[3], (std::vector<ProcessId>{7, 4}));
}

TEST(BuildLocalityPlan, InitialRoundMinimizesConcurrentSharing) {
  const auto g = independentProcesses(8);
  const auto m = prog1Sharing();
  const LocalityPlan plan = buildLocalityPlan(g, m, 4);
  // First processes across cores must share pairwise less than a naive
  // prefix {0,1,2,3} would (which has 3 neighbor pairs = 6000 + ...).
  std::vector<ProcessId> firsts;
  for (const auto& core : plan.perCore) {
    ASSERT_FALSE(core.empty());
    firsts.push_back(core.front());
  }
  std::int64_t mutualSharing = 0;
  for (std::size_t i = 0; i < firsts.size(); ++i) {
    for (std::size_t j = i + 1; j < firsts.size(); ++j) {
      mutualSharing += m.at(firsts[i], firsts[j]);
    }
  }
  std::int64_t naive = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      naive += m.at(i, j);
    }
  }
  EXPECT_LT(mutualSharing, naive);
}

TEST(BuildLocalityPlan, RespectsDependences) {
  // Chain 0 -> 1 -> 2 plus independent 3, 4 on 2 cores.
  ExtendedProcessGraph g = independentProcesses(5);
  g.addDependence(0, 1);
  g.addDependence(1, 2);
  SharingMatrix m(5);
  m.set(0, 1, 100);
  m.set(1, 0, 100);
  m.set(1, 2, 100);
  m.set(2, 1, 100);
  const LocalityPlan plan = buildLocalityPlan(g, m, 2);
  expectValidPlacement(plan, 5);
  // Placement index of a process must come after its predecessors
  // in the global placement (per-core position ordering is enough here:
  // reconstruct global order by interleaving rounds).
  std::vector<int> position(5, -1);
  for (const auto& core : plan.perCore) {
    for (std::size_t i = 0; i < core.size(); ++i) {
      position[core[i]] = static_cast<int>(i);
    }
  }
  EXPECT_LT(position[0], position[1] + 1);  // 0 placed no later than 1's slot
  EXPECT_LE(position[1], position[2]);
}

TEST(BuildLocalityPlan, MoreCoresThanProcesses) {
  const auto g = independentProcesses(3);
  SharingMatrix m(3);
  const LocalityPlan plan = buildLocalityPlan(g, m, 8);
  expectValidPlacement(plan, 3);
  EXPECT_EQ(plan.processCount(), 3u);
}

TEST(BuildLocalityPlan, SingleCoreGetsEverything) {
  const auto g = independentProcesses(6);
  const auto m = SharingMatrix(6);
  const LocalityPlan plan = buildLocalityPlan(g, m, 1);
  ASSERT_EQ(plan.perCore.size(), 1u);
  EXPECT_EQ(plan.perCore[0].size(), 6u);
}

TEST(BuildLocalityPlan, EmptyGraph) {
  const ExtendedProcessGraph g;
  const SharingMatrix m(0);
  const LocalityPlan plan = buildLocalityPlan(g, m, 4);
  EXPECT_EQ(plan.processCount(), 0u);
}

TEST(BuildLocalityPlan, Validation) {
  const auto g = independentProcesses(3);
  EXPECT_THROW((void)buildLocalityPlan(g, SharingMatrix(2), 2), Error);
  EXPECT_THROW((void)buildLocalityPlan(g, SharingMatrix(3), 0), Error);
  ExtendedProcessGraph cyclic = independentProcesses(2);
  cyclic.addDependence(0, 1);
  cyclic.addDependence(1, 0);
  EXPECT_THROW((void)buildLocalityPlan(cyclic, SharingMatrix(2), 2), Error);
}

TEST(BuildLocalityPlan, AblationDisablesInitialRound) {
  const auto g = independentProcesses(8);
  const auto m = prog1Sharing();
  const LocalityPlan withRound =
      buildLocalityPlan(g, m, 4, {.initialMinSharingRound = true});
  const LocalityPlan withoutRound =
      buildLocalityPlan(g, m, 4, {.initialMinSharingRound = false});
  // Without the round, the first X roots in id order start (0,1,2,3).
  std::vector<ProcessId> firsts;
  for (const auto& core : withoutRound.perCore) firsts.push_back(core.front());
  EXPECT_EQ(firsts, (std::vector<ProcessId>{0, 1, 2, 3}));
  expectValidPlacement(withoutRound, 8);
  // The proper initial round must not start with a contiguous prefix.
  std::vector<ProcessId> properFirsts;
  for (const auto& core : withRound.perCore) {
    properFirsts.push_back(core.front());
  }
  EXPECT_NE(properFirsts, (std::vector<ProcessId>{0, 1, 2, 3}));
}

TEST(LocalityPlan, SuccessivePairs) {
  LocalityPlan plan;
  plan.perCore = {{0, 1, 2}, {3}, {}};
  const auto pairs = plan.successivePairs();
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], std::make_pair(ProcessId{0}, ProcessId{1}));
  EXPECT_EQ(pairs[1], std::make_pair(ProcessId{1}, ProcessId{2}));
  EXPECT_EQ(plan.processCount(), 4u);
}

TEST(LocalityScheduler, FollowsPlanAndStallsOnDependences) {
  // 0 -> 2; core plans will be built by reset().
  ExtendedProcessGraph g = independentProcesses(3);
  g.addDependence(0, 2);
  SharingMatrix m(3);
  m.set(0, 2, 50);
  m.set(2, 0, 50);
  LocalityScheduler policy;
  policy.reset(SchedContext{&g, &m, 2});

  // Roots: 0 and 1.
  policy.onReady(0);
  policy.onReady(1);
  const auto first = policy.pickNext(0, std::nullopt);
  ASSERT_TRUE(first.has_value());
  // Process 2 is planned but not ready: its core must stall rather than
  // run something else.
  std::size_t coreOf2 = 0;
  for (std::size_t c = 0; c < policy.plan().perCore.size(); ++c) {
    for (const auto p : policy.plan().perCore[c]) {
      if (p == 2) coreOf2 = c;
    }
  }
  // Drain that core's earlier entries.
  while (true) {
    const auto pick = policy.pickNext(coreOf2, std::nullopt);
    if (!pick) break;
    EXPECT_NE(*pick, 2u);
  }
  policy.onReady(2);
  const auto now = policy.pickNext(coreOf2, std::nullopt);
  ASSERT_TRUE(now.has_value());
  EXPECT_EQ(*now, 2u);
}

TEST(LocalityScheduler, NameAndQuantum) {
  LocalityScheduler policy;
  EXPECT_EQ(policy.name(), "LS");
  EXPECT_FALSE(policy.quantum().has_value());
}

}  // namespace
}  // namespace laps

#include <gtest/gtest.h>

#include <set>

#include "sched/basic.h"
#include "sched/dynamic_locality.h"
#include "sched/factory.h"
#include "util/error.h"

namespace laps {
namespace {

ExtendedProcessGraph nProcesses(std::size_t n,
                                std::int64_t iterations = 10) {
  ExtendedProcessGraph g;
  for (std::size_t i = 0; i < n; ++i) {
    ProcessSpec p;
    p.name = "P" + std::to_string(i);
    p.nests.push_back(LoopNest{
        IterationSpace::box({{0, iterations * static_cast<std::int64_t>(i + 1)}}),
        {},
        1});
    g.addProcess(std::move(p));
  }
  return g;
}

TEST(ToString, AllKinds) {
  EXPECT_EQ(to_string(SchedulerKind::Random), "RS");
  EXPECT_EQ(to_string(SchedulerKind::RoundRobin), "RRS");
  EXPECT_EQ(to_string(SchedulerKind::Locality), "LS");
  EXPECT_EQ(to_string(SchedulerKind::LocalityMapping), "LSM");
  EXPECT_EQ(to_string(SchedulerKind::Fcfs), "FCFS");
  EXPECT_EQ(to_string(SchedulerKind::Sjf), "SJF");
  EXPECT_EQ(to_string(SchedulerKind::CriticalPath), "CPATH");
  EXPECT_EQ(to_string(SchedulerKind::DynamicLocality), "DLS");
}

TEST(Factory, CreatesEveryKind) {
  for (const auto kind :
       {SchedulerKind::Random, SchedulerKind::RoundRobin,
        SchedulerKind::Locality, SchedulerKind::LocalityMapping,
        SchedulerKind::Fcfs, SchedulerKind::Sjf, SchedulerKind::CriticalPath,
        SchedulerKind::DynamicLocality}) {
    const auto policy = makeScheduler(kind);
    ASSERT_NE(policy, nullptr);
    EXPECT_FALSE(policy->name().empty());
  }
}

TEST(Factory, OnlyRoundRobinIsPreemptive) {
  EXPECT_TRUE(makeScheduler(SchedulerKind::RoundRobin)->quantum().has_value());
  EXPECT_FALSE(makeScheduler(SchedulerKind::Random)->quantum().has_value());
  EXPECT_FALSE(makeScheduler(SchedulerKind::Locality)->quantum().has_value());
  EXPECT_FALSE(makeScheduler(SchedulerKind::Sjf)->quantum().has_value());
}

TEST(Factory, QuantumParamHonored) {
  SchedulerParams params;
  params.rrsQuantumCycles = 12345;
  EXPECT_EQ(makeScheduler(SchedulerKind::RoundRobin, params)->quantum(),
            12345);
}

TEST(RandomScheduler, DrainsAllReadyExactlyOnce) {
  RandomScheduler policy(7);
  policy.reset({});
  for (ProcessId p = 0; p < 10; ++p) policy.onReady(p);
  std::set<ProcessId> picked;
  for (int i = 0; i < 10; ++i) {
    const auto pick = policy.pickNext(0, std::nullopt);
    ASSERT_TRUE(pick.has_value());
    EXPECT_TRUE(picked.insert(*pick).second);
  }
  EXPECT_FALSE(policy.pickNext(0, std::nullopt).has_value());
}

TEST(RandomScheduler, SeedReproducible) {
  const auto drain = [](std::uint64_t seed) {
    RandomScheduler policy(seed);
    policy.reset({});
    for (ProcessId p = 0; p < 20; ++p) policy.onReady(p);
    std::vector<ProcessId> order;
    while (const auto pick = policy.pickNext(0, std::nullopt)) {
      order.push_back(*pick);
    }
    return order;
  };
  EXPECT_EQ(drain(5), drain(5));
  EXPECT_NE(drain(5), drain(6));
}

TEST(RandomScheduler, ResetRestartsStream) {
  RandomScheduler policy(9);
  policy.reset({});
  for (ProcessId p = 0; p < 5; ++p) policy.onReady(p);
  std::vector<ProcessId> first;
  while (const auto pick = policy.pickNext(0, std::nullopt)) {
    first.push_back(*pick);
  }
  policy.reset({});
  for (ProcessId p = 0; p < 5; ++p) policy.onReady(p);
  std::vector<ProcessId> second;
  while (const auto pick = policy.pickNext(0, std::nullopt)) {
    second.push_back(*pick);
  }
  EXPECT_EQ(first, second);
}

TEST(RoundRobinScheduler, FifoOrder) {
  RoundRobinScheduler policy(1000);
  policy.reset({});
  policy.onReady(3);
  policy.onReady(1);
  policy.onReady(2);
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 3u);
  EXPECT_EQ(policy.pickNext(1, std::nullopt), 1u);
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 2u);
  EXPECT_FALSE(policy.pickNext(0, std::nullopt).has_value());
}

TEST(RoundRobinScheduler, PreemptedGoesToTail) {
  RoundRobinScheduler policy(1000);
  policy.reset({});
  policy.onReady(0);
  policy.onReady(1);
  ASSERT_EQ(policy.pickNext(0, std::nullopt), 0u);
  policy.onPreempt(0);  // 0 must requeue behind 1
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 1u);
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 0u);
}

TEST(RoundRobinScheduler, RejectsNonPositiveQuantum) {
  EXPECT_THROW(RoundRobinScheduler(0), Error);
  EXPECT_THROW(RoundRobinScheduler(-5), Error);
}

TEST(FcfsScheduler, OrderAndNoQuantum) {
  FcfsScheduler policy;
  policy.reset({});
  policy.onReady(2);
  policy.onReady(0);
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 2u);
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 0u);
  EXPECT_FALSE(policy.quantum().has_value());
}

TEST(SjfScheduler, PicksShortestEstimatedJob) {
  const auto g = nProcesses(4);  // cycles grow with id
  SjfScheduler policy;
  policy.reset(SchedContext{&g, nullptr, 2});
  policy.onReady(3);
  policy.onReady(1);
  policy.onReady(2);
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 1u);
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 2u);
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 3u);
}

TEST(SjfScheduler, RequiresGraph) {
  SjfScheduler policy;
  EXPECT_THROW(policy.reset({}), Error);
}

TEST(CriticalPathScheduler, PrefersLongChains) {
  // 0 -> 1 -> 2 (long chain), 3 isolated and short.
  ExtendedProcessGraph g = nProcesses(4, 10);
  g.addDependence(0, 1);
  g.addDependence(1, 2);
  CriticalPathScheduler policy;
  policy.reset(SchedContext{&g, nullptr, 2});
  policy.onReady(0);
  policy.onReady(3);
  // 0 heads a chain: rank(0) = c0+c1+c2 > rank(3) = c3.
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 0u);
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 3u);
}

TEST(DynamicLocalityScheduler, PicksMaxSharingWithPrevious) {
  const auto g = nProcesses(4);
  SharingMatrix m(4);
  m.set(0, 2, 500);
  m.set(2, 0, 500);
  m.set(0, 1, 100);
  m.set(1, 0, 100);
  DynamicLocalityScheduler policy;
  policy.reset(SchedContext{&g, &m, 2});
  policy.onReady(1);
  policy.onReady(2);
  policy.onReady(3);
  // Previous on this core was 0: pick 2 (sharing 500).
  EXPECT_EQ(policy.pickNext(0, ProcessId{0}), 2u);
  // Then 1 (sharing 100) over 3 (0).
  EXPECT_EQ(policy.pickNext(0, ProcessId{0}), 1u);
  EXPECT_EQ(policy.pickNext(0, ProcessId{0}), 3u);
}

TEST(DynamicLocalityScheduler, NoPreviousFallsBackToFifo) {
  const auto g = nProcesses(3);
  SharingMatrix m(3);
  DynamicLocalityScheduler policy;
  policy.reset(SchedContext{&g, &m, 1});
  policy.onReady(2);
  policy.onReady(0);
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 2u);
}

TEST(DynamicLocalityScheduler, RequiresSharing) {
  DynamicLocalityScheduler policy;
  EXPECT_THROW(policy.reset({}), Error);
}

}  // namespace
}  // namespace laps

#include <gtest/gtest.h>

#include <set>

#include "layout/address_space.h"
#include "sched/basic.h"
#include "sched/dynamic_locality.h"
#include "sched/factory.h"
#include "util/error.h"

namespace laps {
namespace {

ExtendedProcessGraph nProcesses(std::size_t n,
                                std::int64_t iterations = 10) {
  ExtendedProcessGraph g;
  for (std::size_t i = 0; i < n; ++i) {
    ProcessSpec p;
    p.name = "P" + std::to_string(i);
    p.nests.push_back(LoopNest{
        IterationSpace::box({{0, iterations * static_cast<std::int64_t>(i + 1)}}),
        {},
        1});
    g.addProcess(std::move(p));
  }
  return g;
}

TEST(ToString, AllKinds) {
  EXPECT_EQ(to_string(SchedulerKind::Random), "RS");
  EXPECT_EQ(to_string(SchedulerKind::RoundRobin), "RRS");
  EXPECT_EQ(to_string(SchedulerKind::Locality), "LS");
  EXPECT_EQ(to_string(SchedulerKind::LocalityMapping), "LSM");
  EXPECT_EQ(to_string(SchedulerKind::Fcfs), "FCFS");
  EXPECT_EQ(to_string(SchedulerKind::Sjf), "SJF");
  EXPECT_EQ(to_string(SchedulerKind::CriticalPath), "CPATH");
  EXPECT_EQ(to_string(SchedulerKind::DynamicLocality), "DLS");
  EXPECT_EQ(to_string(SchedulerKind::L2ContentionAware), "CALS");
  EXPECT_EQ(to_string(SchedulerKind::OnlineLocality), "OLS");
}

TEST(ToString, ExhaustiveOverEveryKind) {
  // kAllSchedulerKinds is the enum's declaration-order catalogue (the
  // compiler's -Werror=switch on to_string's switch keeps them in sync);
  // every kind must map to a unique, non-empty, stable short name.
  std::set<std::string> names;
  for (const SchedulerKind kind : kAllSchedulerKinds) {
    const std::string name = to_string(kind);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate scheduler name " << name;
  }
  EXPECT_EQ(names.size(), kAllSchedulerKinds.size());
}

TEST(Factory, CreatesEveryKind) {
  for (const auto kind : kAllSchedulerKinds) {
    const auto policy = makeScheduler(kind);
    ASSERT_NE(policy, nullptr);
    EXPECT_FALSE(policy->name().empty());
    // The factory's policy answers to the catalogue name (LSM shares
    // LS's policy object; the re-layout half lives in the harness).
    if (kind != SchedulerKind::LocalityMapping) {
      EXPECT_EQ(policy->name(), to_string(kind));
    }
  }
}

TEST(Factory, ValidatesParamsEagerly) {
  // A bad configuration must fail at makeScheduler, not deep inside
  // MpsocSimulator::run().
  SchedulerParams params;
  params.rrsQuantumCycles = 0;
  EXPECT_THROW(makeScheduler(SchedulerKind::RoundRobin, params), Error);
  params.rrsQuantumCycles = -100;
  EXPECT_THROW(makeScheduler(SchedulerKind::RoundRobin, params), Error);
  // The quantum is an RRS-only parameter: other kinds ignore it.
  EXPECT_NE(makeScheduler(SchedulerKind::Fcfs, params), nullptr);

  params = SchedulerParams{};
  params.l2Contention.conflictWeight = -1.0;
  EXPECT_THROW(makeScheduler(SchedulerKind::L2ContentionAware, params), Error);
  params = SchedulerParams{};
  params.l2Contention.l2Geometry.sizeBytes = 1000;  // not a set multiple
  EXPECT_THROW(makeScheduler(SchedulerKind::L2ContentionAware, params), Error);
  EXPECT_NE(makeScheduler(SchedulerKind::Locality, params), nullptr);

  params = SchedulerParams{};
  params.onlineLocality.rebuildThreshold = -1;
  EXPECT_THROW(makeScheduler(SchedulerKind::OnlineLocality, params), Error);
  EXPECT_THROW(validateSchedulerParams(SchedulerKind::OnlineLocality, params),
               Error);
  // The threshold is OLS-only: other kinds ignore it.
  EXPECT_NE(makeScheduler(SchedulerKind::DynamicLocality, params), nullptr);
}

TEST(Factory, OnlyRoundRobinIsPreemptive) {
  EXPECT_TRUE(makeScheduler(SchedulerKind::RoundRobin)->quantum().has_value());
  EXPECT_FALSE(makeScheduler(SchedulerKind::Random)->quantum().has_value());
  EXPECT_FALSE(makeScheduler(SchedulerKind::Locality)->quantum().has_value());
  EXPECT_FALSE(makeScheduler(SchedulerKind::Sjf)->quantum().has_value());
}

TEST(Factory, QuantumParamHonored) {
  SchedulerParams params;
  params.rrsQuantumCycles = 12345;
  EXPECT_EQ(makeScheduler(SchedulerKind::RoundRobin, params)->quantum(),
            12345);
}

TEST(RandomScheduler, DrainsAllReadyExactlyOnce) {
  RandomScheduler policy(7);
  policy.reset({});
  for (ProcessId p = 0; p < 10; ++p) policy.onReady(p);
  std::set<ProcessId> picked;
  for (int i = 0; i < 10; ++i) {
    const auto pick = policy.pickNext(0, std::nullopt);
    ASSERT_TRUE(pick.has_value());
    EXPECT_TRUE(picked.insert(*pick).second);
  }
  EXPECT_FALSE(policy.pickNext(0, std::nullopt).has_value());
}

TEST(RandomScheduler, SeedReproducible) {
  const auto drain = [](std::uint64_t seed) {
    RandomScheduler policy(seed);
    policy.reset({});
    for (ProcessId p = 0; p < 20; ++p) policy.onReady(p);
    std::vector<ProcessId> order;
    while (const auto pick = policy.pickNext(0, std::nullopt)) {
      order.push_back(*pick);
    }
    return order;
  };
  EXPECT_EQ(drain(5), drain(5));
  EXPECT_NE(drain(5), drain(6));
}

TEST(RandomScheduler, ResetRestartsStream) {
  RandomScheduler policy(9);
  policy.reset({});
  for (ProcessId p = 0; p < 5; ++p) policy.onReady(p);
  std::vector<ProcessId> first;
  while (const auto pick = policy.pickNext(0, std::nullopt)) {
    first.push_back(*pick);
  }
  policy.reset({});
  for (ProcessId p = 0; p < 5; ++p) policy.onReady(p);
  std::vector<ProcessId> second;
  while (const auto pick = policy.pickNext(0, std::nullopt)) {
    second.push_back(*pick);
  }
  EXPECT_EQ(first, second);
}

TEST(RoundRobinScheduler, FifoOrder) {
  RoundRobinScheduler policy(1000);
  policy.reset({});
  policy.onReady(3);
  policy.onReady(1);
  policy.onReady(2);
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 3u);
  EXPECT_EQ(policy.pickNext(1, std::nullopt), 1u);
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 2u);
  EXPECT_FALSE(policy.pickNext(0, std::nullopt).has_value());
}

TEST(RoundRobinScheduler, PreemptedGoesToTail) {
  RoundRobinScheduler policy(1000);
  policy.reset({});
  policy.onReady(0);
  policy.onReady(1);
  ASSERT_EQ(policy.pickNext(0, std::nullopt), 0u);
  policy.onPreempt(0);  // 0 must requeue behind 1
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 1u);
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 0u);
}

TEST(RoundRobinScheduler, RejectsNonPositiveQuantum) {
  EXPECT_THROW(RoundRobinScheduler(0), Error);
  EXPECT_THROW(RoundRobinScheduler(-5), Error);
}

TEST(FcfsScheduler, OrderAndNoQuantum) {
  FcfsScheduler policy;
  policy.reset({});
  policy.onReady(2);
  policy.onReady(0);
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 2u);
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 0u);
  EXPECT_FALSE(policy.quantum().has_value());
}

TEST(SjfScheduler, PicksShortestEstimatedJob) {
  const auto g = nProcesses(4);  // cycles grow with id
  SjfScheduler policy;
  policy.reset(SchedContext{&g, nullptr, 2});
  policy.onReady(3);
  policy.onReady(1);
  policy.onReady(2);
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 1u);
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 2u);
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 3u);
}

TEST(SjfScheduler, RequiresGraph) {
  SjfScheduler policy;
  EXPECT_THROW(policy.reset({}), Error);
}

TEST(CriticalPathScheduler, PrefersLongChains) {
  // 0 -> 1 -> 2 (long chain), 3 isolated and short.
  ExtendedProcessGraph g = nProcesses(4, 10);
  g.addDependence(0, 1);
  g.addDependence(1, 2);
  CriticalPathScheduler policy;
  policy.reset(SchedContext{&g, nullptr, 2});
  policy.onReady(0);
  policy.onReady(3);
  // 0 heads a chain: rank(0) = c0+c1+c2 > rank(3) = c3.
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 0u);
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 3u);
}

TEST(DynamicLocalityScheduler, PicksMaxSharingWithPrevious) {
  const auto g = nProcesses(4);
  SharingMatrix m(4);
  m.set(0, 2, 500);
  m.set(2, 0, 500);
  m.set(0, 1, 100);
  m.set(1, 0, 100);
  DynamicLocalityScheduler policy;
  policy.reset(SchedContext{&g, &m, 2});
  policy.onReady(1);
  policy.onReady(2);
  policy.onReady(3);
  // Previous on this core was 0: pick 2 (sharing 500).
  EXPECT_EQ(policy.pickNext(0, ProcessId{0}), 2u);
  // Then 1 (sharing 100) over 3 (0).
  EXPECT_EQ(policy.pickNext(0, ProcessId{0}), 1u);
  EXPECT_EQ(policy.pickNext(0, ProcessId{0}), 3u);
}

TEST(DynamicLocalityScheduler, NoPreviousFallsBackToFifo) {
  const auto g = nProcesses(3);
  SharingMatrix m(3);
  DynamicLocalityScheduler policy;
  policy.reset(SchedContext{&g, &m, 1});
  policy.onReady(2);
  policy.onReady(0);
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 2u);
}

TEST(DynamicLocalityScheduler, RequiresSharing) {
  DynamicLocalityScheduler policy;
  EXPECT_THROW(policy.reset({}), Error);
}

TEST(DynamicLocalityScheduler, ArrivalStampsBreakTiesByArrivalOrder) {
  // P1, P2, P3 share equally with previous P0; P3 arrived first but was
  // readied last (a preempted old process re-queues at the tail). With
  // arrival stamps, the tie falls to the earliest arrival, not to ready
  // order.
  const auto g = nProcesses(4);
  SharingMatrix m(4);
  for (const std::size_t q : {1u, 2u, 3u}) {
    m.set(0, q, 50);
    m.set(q, 0, 50);
  }
  DynamicLocalityScheduler policy;
  policy.reset(SchedContext{&g, &m, 2});
  policy.onArrival(3);
  policy.onArrival(1);
  policy.onArrival(2);
  policy.onReady(1);
  policy.onReady(2);
  policy.onReady(3);  // readied last, arrived first
  EXPECT_EQ(policy.pickNext(0, ProcessId{0}), 3u);
  EXPECT_EQ(policy.pickNext(0, ProcessId{0}), 1u);
  EXPECT_EQ(policy.pickNext(0, ProcessId{0}), 2u);
}

TEST(DynamicLocalityScheduler, ClosedModeKeepsFifoTiesWithoutArrivals) {
  const auto g = nProcesses(4);
  SharingMatrix m(4);
  DynamicLocalityScheduler policy;
  policy.reset(SchedContext{&g, &m, 2});
  policy.onReady(3);
  policy.onReady(1);
  EXPECT_EQ(policy.pickNext(0, ProcessId{0}), 3u);  // plain ready order
}

TEST(DynamicLocalityScheduler, ExitDropsStaleReadyEntry) {
  const auto g = nProcesses(3);
  SharingMatrix m(3);
  DynamicLocalityScheduler policy;
  policy.reset(SchedContext{&g, &m, 1});
  policy.onReady(0);
  policy.onReady(1);
  policy.onExit(0);  // e.g. retired while waiting
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 1u);
  EXPECT_FALSE(policy.pickNext(0, std::nullopt).has_value());
}

/// Three processes over three arrays laid out so that — in a 32-set L2
/// view — P0's and P2's footprints co-map into the same sets while P1's
/// occupies the other half: conflict(P0, P2) > 0, conflict(P0, P1) == 0,
/// and nobody shares any data.
struct ContentionRig {
  Workload workload;
  AddressSpace space;
  SharingMatrix sharing;
  SchedContext context;

  static Workload build() {
    Workload w;
    // 512 B each, placed contiguously 32-byte aligned: X spans sets
    // 0..15, Y sets 16..31, Z wraps back onto 0..15.
    const ArrayId x = w.arrays.add("X", {128}, 4);
    const ArrayId y = w.arrays.add("Y", {128}, 4);
    const ArrayId z = w.arrays.add("Z", {128}, 4);
    for (const ArrayId a : {x, y, z}) {
      ProcessSpec p;
      p.name = "P" + std::to_string(a);
      p.nests.push_back(LoopNest{
          IterationSpace::box({{0, 128}}),
          {ArrayAccess{a, AffineMap{AffineExpr({1}, 0)}, AccessKind::Read}},
          1});
      w.graph.addProcess(std::move(p));
    }
    return w;
  }

  ContentionRig()
      : workload(build()),
        space(workload.arrays, AddressSpaceOptions{0x1000'0000, 32}),
        sharing(workload.graph.processCount()),
        context{&workload.graph, &sharing, 2, &workload, &space} {}

  static L2ContentionOptions options(double weight) {
    L2ContentionOptions o;
    o.l2Geometry = CacheConfig{1024, 1, 32, 8};  // 32 sets
    o.conflictWeight = weight;
    return o;
  }
};

TEST(L2ContentionAwareScheduler, ConflictMatrixFollowsTheLayout) {
  ContentionRig rig;
  L2ContentionAwareScheduler policy(ContentionRig::options(1.0));
  policy.reset(rig.context);
  EXPECT_GT(policy.conflictBetween(0, 2), 0);  // X and Z co-map
  EXPECT_EQ(policy.conflictBetween(0, 1), 0);  // X and Y are disjoint sets
  EXPECT_EQ(policy.conflictBetween(1, 2), 0);
}

TEST(L2ContentionAwareScheduler, AvoidsCoSchedulingConflictingFootprints) {
  ContentionRig rig;
  L2ContentionAwareScheduler policy(ContentionRig::options(1.0));
  policy.reset(rig.context);
  policy.onReady(0);
  ASSERT_EQ(policy.pickNext(0, std::nullopt), 0u);  // P0 runs on core 0
  policy.onReady(2);  // conflicts with running P0, ready first
  policy.onReady(1);  // conflict-free
  // Core 1 must prefer the conflict-free process despite FIFO order...
  EXPECT_EQ(policy.pickNext(1, std::nullopt), 1u);
  // ...and once P0 completes, the penalty vanishes.
  policy.onComplete(0);
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 2u);
}

TEST(L2ContentionAwareScheduler, ZeroWeightDegeneratesToFifoTies) {
  ContentionRig rig;
  L2ContentionAwareScheduler policy(ContentionRig::options(0.0));
  policy.reset(rig.context);
  policy.onReady(0);
  ASSERT_EQ(policy.pickNext(0, std::nullopt), 0u);
  policy.onReady(2);
  policy.onReady(1);
  EXPECT_EQ(policy.pickNext(1, std::nullopt), 2u);  // plain FIFO again
}

TEST(L2ContentionAwareScheduler, PreemptionReleasesThePenalty) {
  ContentionRig rig;
  L2ContentionAwareScheduler policy(ContentionRig::options(1.0));
  policy.reset(rig.context);
  policy.onReady(0);
  ASSERT_EQ(policy.pickNext(0, std::nullopt), 0u);
  policy.onPreempt(0);  // suspended: no longer occupies the L2
  policy.onReady(2);
  // P0 is back in the queue (FIFO ahead of P2) and nothing is running,
  // so the conflicting P2 is not penalized against anything.
  EXPECT_EQ(policy.pickNext(1, std::nullopt), 0u);
  EXPECT_EQ(policy.pickNext(0, ProcessId{0}), 2u);
}

TEST(L2ContentionAwareScheduler, ExitOfARunningProcessReleasesThePenalty) {
  // A retirement fires onExit without onComplete: the retired process
  // must stop penalizing co-runners all the same.
  ContentionRig rig;
  L2ContentionAwareScheduler policy(ContentionRig::options(1.0));
  policy.reset(rig.context);
  policy.onReady(0);
  ASSERT_EQ(policy.pickNext(0, std::nullopt), 0u);  // P0 occupies the L2
  policy.onReady(2);
  policy.onReady(1);
  EXPECT_EQ(policy.pickNext(1, std::nullopt), 1u);  // P2 conflicts with P0
  policy.onExit(0);  // retired mid-run
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 2u);  // penalty gone
}

TEST(L2ContentionAwareScheduler, ExitDropsStaleReadyEntry) {
  ContentionRig rig;
  L2ContentionAwareScheduler policy(ContentionRig::options(1.0));
  policy.reset(rig.context);
  policy.onReady(0);
  policy.onReady(1);
  policy.onExit(0);  // left while still queued
  EXPECT_EQ(policy.pickNext(0, std::nullopt), 1u);
  EXPECT_FALSE(policy.pickNext(1, std::nullopt).has_value());
}

TEST(L2ContentionAwareScheduler, RequiresWorkloadAndSpace) {
  ContentionRig rig;
  L2ContentionAwareScheduler policy(ContentionRig::options(1.0));
  SchedContext incomplete = rig.context;
  incomplete.workload = nullptr;
  EXPECT_THROW(policy.reset(incomplete), Error);
  incomplete = rig.context;
  incomplete.space = nullptr;
  EXPECT_THROW(policy.reset(incomplete), Error);
  incomplete = rig.context;
  incomplete.coreCount = 0;
  EXPECT_THROW(policy.reset(incomplete), Error);
}

TEST(L2ContentionAwareScheduler, ConflictMemoOrderInsensitive) {
  // The determinism contract's LINT-ALLOW on conflictMemo_ (an
  // unordered_map) rests on it being a pure find/emplace memo. This
  // pins the claim three ways: the score is symmetric, agrees with a
  // fresh instance that computed the same pairs in a different order,
  // and never changes once memoized — so hash order cannot reach any
  // scheduling decision.
  ContentionRig rig;
  L2ContentionAwareScheduler forward(ContentionRig::options(1.0));
  L2ContentionAwareScheduler backward(ContentionRig::options(1.0));
  forward.reset(rig.context);
  backward.reset(rig.context);
  const std::size_t n = rig.workload.graph.processCount();
  std::vector<std::int64_t> first;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      first.push_back(forward.conflictBetween(a, b));
    }
  }
  std::vector<std::int64_t> reversed;
  for (std::size_t a = n; a-- > 0;) {
    for (std::size_t b = n; b-- > 0;) {
      reversed.push_back(backward.conflictBetween(a, b));
    }
  }
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      const std::int64_t score = first[a * n + b];
      EXPECT_EQ(score, first[b * n + a]) << "asymmetric " << a << "," << b;
      EXPECT_EQ(score, reversed[(n - 1 - a) * n + (n - 1 - b)])
          << "population order leaked into " << a << "," << b;
      // Re-query: the memoized value must be stable.
      EXPECT_EQ(forward.conflictBetween(a, b), score);
    }
  }
}

}  // namespace
}  // namespace laps

/// \file online_locality_test.cpp
/// \brief OnlineLocalityScheduler: closed-workload equivalence with the
/// static LS plan, incremental patch/rebuild behavior under arrival and
/// exit events, and parameter validation.

#include <gtest/gtest.h>

#include "core/laps.h"

namespace laps {
namespace {

void expectPlansEqual(const LocalityPlan& a, const LocalityPlan& b) {
  ASSERT_EQ(a.perCore.size(), b.perCore.size());
  for (std::size_t c = 0; c < a.perCore.size(); ++c) {
    ASSERT_EQ(a.perCore[c], b.perCore[c]) << "core " << c;
  }
}

TEST(OnlineLocalityOptions, RejectsNegativeThreshold) {
  OnlineLocalityOptions options;
  options.rebuildThreshold = -1;
  EXPECT_THROW(options.validate(), Error);
  EXPECT_THROW(OnlineLocalityScheduler{options}, Error);
  SchedulerParams params;
  params.onlineLocality.rebuildThreshold = -5;
  EXPECT_THROW(makeScheduler(SchedulerKind::OnlineLocality, params), Error);
  // Threshold 0 (rebuild every event) is valid.
  params.onlineLocality.rebuildThreshold = 0;
  EXPECT_NE(makeScheduler(SchedulerKind::OnlineLocality, params), nullptr);
}

TEST(OnlineLocality, ClosedWorkloadPlanMatchesStaticLocalityPlan) {
  // On a closed workload no arrival event ever fires: the reset()-time
  // plan must be the static Fig. 3 plan, at threshold 0 and beyond.
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, 2);
  const SharingMatrix sharing = SharingMatrix::compute(mix.footprints());
  const LocalityPlan reference =
      buildLocalityPlan(mix.graph, sharing, 8);

  for (const std::int64_t threshold : {std::int64_t{0}, std::int64_t{8}}) {
    OnlineLocalityOptions options;
    options.rebuildThreshold = threshold;
    OnlineLocalityScheduler policy(options);
    policy.reset(SchedContext{&mix.graph, &sharing, 8});
    expectPlansEqual(policy.plan(), reference);
  }
}

TEST(OnlineLocality, ClosedWorkloadSimulationCompletes) {
  // Full simulation under OLS on a closed workload: every process runs,
  // and the policy never strands work.
  const Application app = makeShape();
  const auto r =
      runExperiment(app.workload, SchedulerKind::OnlineLocality, {});
  EXPECT_EQ(r.schedulerName, "OLS");
  EXPECT_GT(r.sim.makespanCycles, 0);
  for (const auto& p : r.sim.processes) {
    EXPECT_GE(p.completionCycle, 0);
    EXPECT_FALSE(p.retired);
  }
}

/// Four independent processes over one shared array: P0/P1 share a
/// range, P2/P3 share a disjoint range, and nothing crosses the pairs.
struct PatchRig {
  ExtendedProcessGraph graph;
  SharingMatrix sharing{4};

  PatchRig() {
    for (int i = 0; i < 4; ++i) {
      ProcessSpec p;
      p.name = "P" + std::to_string(i);
      p.nests.push_back(LoopNest{IterationSpace::box({{0, 10}}), {}, 1});
      graph.addProcess(std::move(p));
    }
    const auto link = [&](std::size_t a, std::size_t b, std::int64_t s) {
      sharing.set(a, b, s);
      sharing.set(b, a, s);
    };
    link(0, 1, 100);
    link(2, 3, 100);
    for (int i = 0; i < 4; ++i) sharing.set(i, i, 10);
  }
};

TEST(OnlineLocality, ArrivalPatchAppendsToMaxSharingCore) {
  PatchRig rig;
  OnlineLocalityOptions options;
  options.rebuildThreshold = 100;  // pure incremental patching
  OnlineLocalityScheduler policy(options);
  policy.reset(SchedContext{&rig.graph, &rig.sharing, 2});

  // First arrival opens the workload: the closed-assumption plan is
  // dropped and P0 lands on core 0.
  policy.onArrival(0);
  ASSERT_EQ(policy.plan().perCore[0], std::vector<ProcessId>{0});
  EXPECT_TRUE(policy.plan().perCore[1].empty());

  // P2 shares nothing with P0 — both cores score 0, tie falls to core 0
  // whose plan is nonempty... unless sharing says otherwise: P1 shares
  // 100 with P0, so it must join P0's core; P2 starts core 1's plan
  // after P3? Exercise the actual rule:
  policy.onArrival(1);  // sharing(0, 1) = 100 > 0 -> core 0
  ASSERT_EQ(policy.plan().perCore[0], (std::vector<ProcessId>{0, 1}));
  policy.onArrival(2);  // sharing(1, 2) = 0, empty core 1 ties at 0 ->
                        // lowest core with max score is core 0
  // The greedy append puts P2 wherever the score is maximal; with all
  // scores equal it is core 0. Verify the invariant that matters: P3
  // joins P2's core (sharing 100 beats 0).
  policy.onArrival(3);
  bool p3FollowsP2 = false;
  for (const auto& order : policy.plan().perCore) {
    bool hasP2 = false;
    bool hasP3 = false;
    for (const ProcessId p : order) {
      hasP2 |= (p == 2);
      hasP3 |= (p == 3);
    }
    if (hasP2 && hasP3) p3FollowsP2 = true;
  }
  EXPECT_TRUE(p3FollowsP2);
  EXPECT_EQ(policy.eventCount(), 4u);
  EXPECT_EQ(policy.rebuildCount(), 0u);  // below threshold: only patches
}

TEST(OnlineLocality, ThresholdZeroRebuildsEveryEventToFreshPlan) {
  PatchRig rig;
  OnlineLocalityOptions options;
  options.rebuildThreshold = 0;
  OnlineLocalityScheduler policy(options);
  policy.reset(SchedContext{&rig.graph, &rig.sharing, 2});

  std::vector<ProcessId> live;
  for (const ProcessId p : {0u, 2u, 1u, 3u}) {
    policy.onArrival(p);
    live.push_back(p);
    std::sort(live.begin(), live.end());
    // Rebuild-every-event: the plan equals a from-scratch
    // buildLocalityPlan over exactly the live set.
    const LocalityPlan reference =
        buildLocalityPlan(rig.graph, rig.sharing, 2, {}, live);
    expectPlansEqual(policy.plan(), reference);
  }
  EXPECT_EQ(policy.rebuildCount(), 4u);

  // Exits rebuild too.
  policy.onExit(0);
  live.erase(live.begin());
  const LocalityPlan reference =
      buildLocalityPlan(rig.graph, rig.sharing, 2, {}, live);
  expectPlansEqual(policy.plan(), reference);
  EXPECT_EQ(policy.rebuildCount(), 5u);
}

TEST(OnlineLocality, ExitPatchRemovesFromPlan) {
  PatchRig rig;
  OnlineLocalityOptions options;
  options.rebuildThreshold = 100;
  OnlineLocalityScheduler policy(options);
  policy.reset(SchedContext{&rig.graph, &rig.sharing, 2});
  for (const ProcessId p : {0u, 1u, 2u, 3u}) policy.onArrival(p);
  policy.onExit(1);
  for (const auto& order : policy.plan().perCore) {
    for (const ProcessId p : order) {
      EXPECT_NE(p, 1u);
    }
  }
}

TEST(OnlineLocality, RebuildAfterThresholdPatches) {
  PatchRig rig;
  OnlineLocalityOptions options;
  options.rebuildThreshold = 2;
  OnlineLocalityScheduler policy(options);
  policy.reset(SchedContext{&rig.graph, &rig.sharing, 2});
  policy.onArrival(0);  // patch 1
  policy.onArrival(1);  // patch 2
  EXPECT_EQ(policy.rebuildCount(), 0u);
  policy.onArrival(2);  // patch 3 > threshold -> rebuild
  EXPECT_EQ(policy.rebuildCount(), 1u);
  policy.onArrival(3);  // budget restarted: patch again
  EXPECT_EQ(policy.rebuildCount(), 1u);
}

TEST(OnlineLocality, PlanGuidedDispatchThenSteal) {
  PatchRig rig;
  OnlineLocalityOptions options;
  options.rebuildThreshold = 100;
  OnlineLocalityScheduler policy(options);
  policy.reset(SchedContext{&rig.graph, &rig.sharing, 2});
  for (const ProcessId p : {0u, 1u, 2u, 3u}) {
    policy.onArrival(p);
    policy.onReady(p);
  }
  // Core 0's plan leads with P0; dispatch follows it.
  const auto core0Plan = policy.plan().perCore[0];
  ASSERT_FALSE(core0Plan.empty());
  const auto first = policy.pickNext(0, std::nullopt);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, core0Plan.front());
  // Drain everything: each ready process is dispatched exactly once.
  std::vector<bool> seen(4, false);
  seen[*first] = true;
  for (int i = 0; i < 3; ++i) {
    const auto pick = policy.pickNext(i % 2, first);
    ASSERT_TRUE(pick.has_value());
    EXPECT_FALSE(seen[*pick]);
    seen[*pick] = true;
  }
  EXPECT_FALSE(policy.pickNext(0, first).has_value());
}

TEST(OnlineLocality, RequiresContext) {
  OnlineLocalityScheduler policy;
  EXPECT_THROW(policy.reset({}), Error);
}

}  // namespace
}  // namespace laps

/// \file online_locality_test.cpp
/// \brief OnlineLocalityScheduler: closed-workload equivalence with the
/// static LS plan, incremental patch/rebuild behavior under arrival and
/// exit events, and parameter validation.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "core/laps.h"

namespace laps {
namespace {

void expectPlansEqual(const LocalityPlan& a, const LocalityPlan& b) {
  ASSERT_EQ(a.perCore.size(), b.perCore.size());
  for (std::size_t c = 0; c < a.perCore.size(); ++c) {
    ASSERT_EQ(a.perCore[c], b.perCore[c]) << "core " << c;
  }
}

TEST(OnlineLocalityOptions, RejectsNegativeThreshold) {
  OnlineLocalityOptions options;
  options.rebuildThreshold = -1;
  EXPECT_THROW(options.validate(), Error);
  EXPECT_THROW(OnlineLocalityScheduler{options}, Error);
  SchedulerParams params;
  params.onlineLocality.rebuildThreshold = -5;
  EXPECT_THROW(makeScheduler(SchedulerKind::OnlineLocality, params), Error);
  // Threshold 0 (rebuild every event) is valid.
  params.onlineLocality.rebuildThreshold = 0;
  EXPECT_NE(makeScheduler(SchedulerKind::OnlineLocality, params), nullptr);
}

TEST(OnlineLocality, ClosedWorkloadPlanMatchesStaticLocalityPlan) {
  // On a closed workload no arrival event ever fires: the reset()-time
  // plan must be the static Fig. 3 plan, at threshold 0 and beyond.
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, 2);
  const SharingMatrix sharing = SharingMatrix::compute(mix.footprints());
  const LocalityPlan reference =
      buildLocalityPlan(mix.graph, sharing, 8);

  for (const std::int64_t threshold : {std::int64_t{0}, std::int64_t{8}}) {
    OnlineLocalityOptions options;
    options.rebuildThreshold = threshold;
    OnlineLocalityScheduler policy(options);
    policy.reset(SchedContext{&mix.graph, &sharing, 8});
    expectPlansEqual(policy.plan(), reference);
  }
}

TEST(OnlineLocality, ClosedWorkloadSimulationCompletes) {
  // Full simulation under OLS on a closed workload: every process runs,
  // and the policy never strands work.
  const Application app = makeShape();
  const auto r =
      runExperiment(app.workload, SchedulerKind::OnlineLocality, {});
  EXPECT_EQ(r.schedulerName, "OLS");
  EXPECT_GT(r.sim.makespanCycles, 0);
  for (const auto& p : r.sim.processes) {
    EXPECT_GE(p.completionCycle, 0);
    EXPECT_FALSE(p.retired);
  }
}

/// Four independent processes over one shared array: P0/P1 share a
/// range, P2/P3 share a disjoint range, and nothing crosses the pairs.
struct PatchRig {
  ExtendedProcessGraph graph;
  SharingMatrix sharing{4};

  PatchRig() {
    for (int i = 0; i < 4; ++i) {
      ProcessSpec p;
      p.name = "P" + std::to_string(i);
      p.nests.push_back(LoopNest{IterationSpace::box({{0, 10}}), {}, 1});
      graph.addProcess(std::move(p));
    }
    const auto link = [&](std::size_t a, std::size_t b, std::int64_t s) {
      sharing.set(a, b, s);
      sharing.set(b, a, s);
    };
    link(0, 1, 100);
    link(2, 3, 100);
    for (int i = 0; i < 4; ++i) sharing.set(i, i, 10);
  }
};

TEST(OnlineLocality, ArrivalPatchAppendsToMaxSharingCore) {
  PatchRig rig;
  OnlineLocalityOptions options;
  options.rebuildThreshold = 100;  // pure incremental patching
  OnlineLocalityScheduler policy(options);
  policy.reset(SchedContext{&rig.graph, &rig.sharing, 2});

  // First arrival opens the workload: the closed-assumption plan is
  // dropped and P0 lands on core 0.
  policy.onArrival(0);
  ASSERT_EQ(policy.plan().perCore[0], std::vector<ProcessId>{0});
  EXPECT_TRUE(policy.plan().perCore[1].empty());

  // P2 shares nothing with P0 — both cores score 0, tie falls to core 0
  // whose plan is nonempty... unless sharing says otherwise: P1 shares
  // 100 with P0, so it must join P0's core; P2 starts core 1's plan
  // after P3? Exercise the actual rule:
  policy.onArrival(1);  // sharing(0, 1) = 100 > 0 -> core 0
  ASSERT_EQ(policy.plan().perCore[0], (std::vector<ProcessId>{0, 1}));
  policy.onArrival(2);  // sharing(1, 2) = 0, empty core 1 ties at 0 ->
                        // lowest core with max score is core 0
  // The greedy append puts P2 wherever the score is maximal; with all
  // scores equal it is core 0. Verify the invariant that matters: P3
  // joins P2's core (sharing 100 beats 0).
  policy.onArrival(3);
  bool p3FollowsP2 = false;
  for (const auto& order : policy.plan().perCore) {
    bool hasP2 = false;
    bool hasP3 = false;
    for (const ProcessId p : order) {
      hasP2 |= (p == 2);
      hasP3 |= (p == 3);
    }
    if (hasP2 && hasP3) p3FollowsP2 = true;
  }
  EXPECT_TRUE(p3FollowsP2);
  EXPECT_EQ(policy.eventCount(), 4u);
  EXPECT_EQ(policy.rebuildCount(), 0u);  // below threshold: only patches
}

TEST(OnlineLocality, ThresholdZeroRebuildsEveryEventToFreshPlan) {
  PatchRig rig;
  OnlineLocalityOptions options;
  options.rebuildThreshold = 0;
  OnlineLocalityScheduler policy(options);
  policy.reset(SchedContext{&rig.graph, &rig.sharing, 2});

  std::vector<ProcessId> live;
  for (const ProcessId p : {0u, 2u, 1u, 3u}) {
    policy.onArrival(p);
    live.push_back(p);
    std::sort(live.begin(), live.end());
    // Rebuild-every-event: the plan equals a from-scratch
    // buildLocalityPlan over exactly the live set.
    const LocalityPlan reference =
        buildLocalityPlan(rig.graph, rig.sharing, 2, {}, live);
    expectPlansEqual(policy.plan(), reference);
  }
  EXPECT_EQ(policy.rebuildCount(), 4u);

  // Exits rebuild too.
  policy.onExit(0);
  live.erase(live.begin());
  const LocalityPlan reference =
      buildLocalityPlan(rig.graph, rig.sharing, 2, {}, live);
  expectPlansEqual(policy.plan(), reference);
  EXPECT_EQ(policy.rebuildCount(), 5u);
}

TEST(OnlineLocality, ExitPatchRemovesFromPlan) {
  PatchRig rig;
  OnlineLocalityOptions options;
  options.rebuildThreshold = 100;
  OnlineLocalityScheduler policy(options);
  policy.reset(SchedContext{&rig.graph, &rig.sharing, 2});
  for (const ProcessId p : {0u, 1u, 2u, 3u}) policy.onArrival(p);
  policy.onExit(1);
  for (const auto& order : policy.plan().perCore) {
    for (const ProcessId p : order) {
      EXPECT_NE(p, 1u);
    }
  }
}

TEST(OnlineLocality, RebuildAfterThresholdPatches) {
  PatchRig rig;
  OnlineLocalityOptions options;
  options.rebuildThreshold = 2;
  OnlineLocalityScheduler policy(options);
  policy.reset(SchedContext{&rig.graph, &rig.sharing, 2});
  policy.onArrival(0);  // patch 1
  policy.onArrival(1);  // patch 2
  EXPECT_EQ(policy.rebuildCount(), 0u);
  policy.onArrival(2);  // patch 3 > threshold -> rebuild
  EXPECT_EQ(policy.rebuildCount(), 1u);
  policy.onArrival(3);  // budget restarted: patch again
  EXPECT_EQ(policy.rebuildCount(), 1u);
}

TEST(OnlineLocality, PlanGuidedDispatchThenSteal) {
  PatchRig rig;
  OnlineLocalityOptions options;
  options.rebuildThreshold = 100;
  OnlineLocalityScheduler policy(options);
  policy.reset(SchedContext{&rig.graph, &rig.sharing, 2});
  for (const ProcessId p : {0u, 1u, 2u, 3u}) {
    policy.onArrival(p);
    policy.onReady(p);
  }
  // Core 0's plan leads with P0; dispatch follows it.
  const auto core0Plan = policy.plan().perCore[0];
  ASSERT_FALSE(core0Plan.empty());
  const auto first = policy.pickNext(0, std::nullopt);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, core0Plan.front());
  // Drain everything: each ready process is dispatched exactly once.
  std::vector<bool> seen(4, false);
  seen[*first] = true;
  for (int i = 0; i < 3; ++i) {
    const auto pick = policy.pickNext(i % 2, first);
    ASSERT_TRUE(pick.has_value());
    EXPECT_FALSE(seen[*pick]);
    seen[*pick] = true;
  }
  EXPECT_FALSE(policy.pickNext(0, first).has_value());
}

TEST(OnlineLocality, RequiresContext) {
  OnlineLocalityScheduler policy;
  EXPECT_THROW(policy.reset({}), Error);
}

/// Random DAG (edges low id -> high id) and symmetric small-valued
/// sharing: the same generators the PlanIndex differential tests use,
/// here driving whole policies instead of the planner core.
ExtendedProcessGraph randomDag(Rng& rng, std::size_t n) {
  ExtendedProcessGraph graph;
  for (std::size_t i = 0; i < n; ++i) {
    ProcessSpec p;
    p.name = "O" + std::to_string(i);
    graph.addProcess(std::move(p));
  }
  for (std::size_t to = 1; to < n; ++to) {
    for (std::size_t from = 0; from < to; ++from) {
      if (rng.below(100) < 15) {
        graph.addDependence(static_cast<ProcessId>(from),
                            static_cast<ProcessId>(to));
      }
    }
  }
  return graph;
}

SharingMatrix randomSharing(Rng& rng, std::size_t n) {
  SharingMatrix sharing(n);
  for (std::size_t p = 0; p < n; ++p) {
    sharing.set(p, p, static_cast<std::int64_t>(rng.below(16)));
    for (std::size_t q = 0; q < p; ++q) {
      const auto s = static_cast<std::int64_t>(rng.below(8));
      sharing.set(p, q, s);
      sharing.set(q, p, s);
    }
  }
  return sharing;
}

TEST(OnlineLocality, IndexedMatchesLegacyOnRandomOpenWorkloads) {
  // Lockstep differential: the indexed (tombstone queues + PlanIndex)
  // and legacy (plain vectors + linear scans) implementations receive
  // the identical event stream and must agree on every plan state and
  // every dispatch decision — across rebuild thresholds, including
  // exits of planned-but-never-dispatched processes.
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 7);
    const std::size_t n = 6 + static_cast<std::size_t>(rng.below(20));
    const ExtendedProcessGraph graph = randomDag(rng, n);
    const SharingMatrix sharing = randomSharing(rng, n);
    const std::size_t coreCount = 2 + static_cast<std::size_t>(rng.below(3));
    const std::int64_t threshold =
        static_cast<std::int64_t>(rng.below(3)) * 5;  // 0, 5 or 10

    OnlineLocalityOptions options;
    options.rebuildThreshold = threshold;
    options.balancer.enabled = (seed % 3 == 0);
    options.indexedPlanner = true;
    OnlineLocalityScheduler indexed(options);
    options.indexedPlanner = false;
    OnlineLocalityScheduler legacy(options);
    const SchedContext context{&graph, &sharing, coreCount};
    indexed.reset(context);
    legacy.reset(context);
    expectPlansEqual(indexed.plan(), legacy.plan());

    std::vector<bool> completed(n, false);
    std::vector<bool> readySet(n, false);
    std::vector<bool> dispatched(n, false);
    std::vector<bool> gone(n, false);
    const auto depsDone = [&](ProcessId p) {
      for (const ProcessId pred : graph.predecessors(p)) {
        if (!completed[pred]) return false;
      }
      return true;
    };
    const auto both = [&](auto&& call) {
      call(indexed);
      call(legacy);
      expectPlansEqual(indexed.plan(), legacy.plan());
    };

    // Arrivals in random order; readiness follows the DAG.
    std::vector<ProcessId> order;
    for (ProcessId p = 0; p < n; ++p) order.push_back(p);
    rng.shuffle(order);
    for (const ProcessId p : order) {
      both([&](auto& policy) { policy.onArrival(p); });
      if (depsDone(p)) {
        both([&](auto& policy) { policy.onReady(p); });
        readySet[p] = true;
      }
    }

    // A leaf process may retire before ever running (lifetime expiry in
    // the open-workload engine): exit it while it is still planned.
    for (ProcessId p = 0; p < n && p < 3; ++p) {
      if (graph.successors(p).empty() && !graph.predecessors(p).empty()) {
        both([&](auto& policy) { policy.onExit(p); });
        gone[p] = true;
        readySet[p] = false;
        completed[p] = true;  // nothing waits on a leaf
        break;
      }
    }

    std::vector<std::optional<ProcessId>> previous(coreCount);
    std::size_t done = static_cast<std::size_t>(
        std::count(completed.begin(), completed.end(), true));
    while (done < n) {
      std::vector<ProcessId> ran;
      for (std::size_t core = 0; core < coreCount; ++core) {
        const auto a = indexed.pickNext(core, previous[core]);
        const auto b = legacy.pickNext(core, previous[core]);
        ASSERT_EQ(a, b) << "seed " << seed << " core " << core;
        expectPlansEqual(indexed.plan(), legacy.plan());
        if (!a) continue;
        ASSERT_TRUE(readySet[*a]) << "seed " << seed;
        readySet[*a] = false;
        dispatched[*a] = true;
        previous[core] = *a;
        ran.push_back(*a);
      }
      ASSERT_FALSE(ran.empty()) << "seed " << seed << ": stranded at "
                                << done << "/" << n;
      for (const ProcessId p : ran) {
        both([&](auto& policy) {
          policy.onComplete(p);
          policy.onExit(p);
        });
        completed[p] = true;
        ++done;
        for (const ProcessId succ : graph.successors(p)) {
          if (!completed[succ] && !gone[succ] && !readySet[succ] &&
              !dispatched[succ] && depsDone(succ)) {
            both([&](auto& policy) { policy.onReady(succ); });
            readySet[succ] = true;
          }
        }
      }
    }

    const PolicyStats is = indexed.stats();
    const PolicyStats ls = legacy.stats();
    EXPECT_EQ(is.decisions, ls.decisions) << "seed " << seed;
    EXPECT_EQ(is.rebuilds, ls.rebuilds) << "seed " << seed;
    EXPECT_EQ(is.patches, ls.patches) << "seed " << seed;
    EXPECT_EQ(is.steals, ls.steals) << "seed " << seed;
    EXPECT_EQ(is.offloads, ls.offloads) << "seed " << seed;
  }
}

TEST(OnlineLocality, IndexedMatchesLegacyFullOpenSimulation) {
  // End-to-end through the simulation engine: staggered cohort arrivals
  // plus lifetime retirement (exits of processes that never ran). The
  // two implementations must produce the same simulation, cycle for
  // cycle.
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, 2);
  ExperimentConfig config;
  config.mpsoc.arrivals.emplace();
  config.mpsoc.arrivals->meanInterArrivalCycles = 60'000;
  config.mpsoc.arrivals->processLifetimeCycles = 400'000;
  config.sched.onlineLocality.rebuildThreshold = 4;

  config.sched.onlineLocality.indexedPlanner = true;
  const auto indexed =
      runExperiment(mix, SchedulerKind::OnlineLocality, config);
  config.sched.onlineLocality.indexedPlanner = false;
  const auto legacy =
      runExperiment(mix, SchedulerKind::OnlineLocality, config);

  EXPECT_EQ(indexed.sim.makespanCycles, legacy.sim.makespanCycles);
  EXPECT_EQ(indexed.sim.retiredProcesses, legacy.sim.retiredProcesses);
  ASSERT_EQ(indexed.sim.processes.size(), legacy.sim.processes.size());
  for (std::size_t p = 0; p < indexed.sim.processes.size(); ++p) {
    EXPECT_EQ(indexed.sim.processes[p].firstStartCycle,
              legacy.sim.processes[p].firstStartCycle)
        << "process " << p;
    EXPECT_EQ(indexed.sim.processes[p].completionCycle,
              legacy.sim.processes[p].completionCycle)
        << "process " << p;
    EXPECT_EQ(indexed.sim.processes[p].retired,
              legacy.sim.processes[p].retired)
        << "process " << p;
  }
  // PolicyStats ride SimResult out of the engine; the decision counts
  // of two decision-identical runs match.
  EXPECT_EQ(indexed.sim.policy.decisions, legacy.sim.policy.decisions);
  EXPECT_GT(indexed.sim.policy.decisions, 0u);
  EXPECT_EQ(indexed.sim.policy.rebuilds, legacy.sim.policy.rebuilds);
}

TEST(OnlineLocality, StatsCountersAccount) {
  PatchRig rig;
  OnlineLocalityOptions options;
  options.rebuildThreshold = 100;  // patch-only
  OnlineLocalityScheduler policy(options);
  policy.reset(SchedContext{&rig.graph, &rig.sharing, 2});
  for (const ProcessId p : {0u, 1u, 2u, 3u}) {
    policy.onArrival(p);
    policy.onReady(p);
  }
  // The uniform-tie arrivals all patched onto core 0's plan: core 0
  // dispatches plan-guided, core 1's every pick is a steal.
  std::vector<std::optional<ProcessId>> previous(2);
  for (int i = 0; i < 4; ++i) {
    const std::size_t core = static_cast<std::size_t>(i) % 2;
    previous[core] = policy.pickNext(core, previous[core]);
    ASSERT_TRUE(previous[core].has_value());
  }
  const PolicyStats stats = policy.stats();
  EXPECT_EQ(stats.decisions, 4u);
  EXPECT_EQ(stats.patches, 4u);  // one per arrival, none rebuilt
  EXPECT_EQ(stats.rebuilds, 0u);
  EXPECT_EQ(stats.offloads, 0u);  // balancer disabled
  EXPECT_EQ(stats.steals, 2u);   // both of core 1's picks
}

}  // namespace
}  // namespace laps

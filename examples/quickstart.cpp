/// \file quickstart.cpp
/// \brief Smallest end-to-end use of lapsched: build a workload, compare
/// the paper's four schedulers, print the result.
///
///   ./quickstart

#include <iostream>

#include "core/laps.h"

int main() {
  using namespace laps;

  // 1. Pick a workload: one application of the standard suite.
  const Application app = makeMxM();
  std::cout << "Workload: " << app.name << " (" << app.description << "), "
            << app.processCount() << " processes, "
            << app.workload.arrays.size() << " arrays\n\n";

  // 2. Run it under RS, RRS, LS and LSM on the paper's Table 2 platform
  //    (8 cores, 8 KB 2-way L1s, 2-cycle hits, 75-cycle memory, 200 MHz).
  const ExperimentConfig config;  // defaults == Table 2
  const auto results =
      compareSchedulers(app.workload, paperSchedulers(), config);

  // 3. Print a summary table.
  Table table({"Scheduler", "Time (ms)", "D$ misses", "Miss rate",
               "Energy (mJ)"});
  for (const auto& r : results) {
    table.row()
        .cell(r.schedulerName)
        .cell(r.sim.seconds * 1e3, 3)
        .cell(r.sim.dcacheTotal.misses)
        .cell(r.sim.dataMissRate(), 4)
        .cell(r.energyMj, 3);
  }
  std::cout << table.ascii();

  const double rs = results[0].sim.seconds;
  const double ls = results[2].sim.seconds;
  std::cout << "\nLocality-aware scheduling vs random: "
            << percentImprovement(rs, ls) << "% faster\n";
  return 0;
}

/// \file layout_optimizer.cpp
/// \brief The Fig. 4 data re-layout in isolation.
///
/// Recreates the paper's K1/K2 scenario: two arrays accessed by
/// back-to-back processes on one core, placed at page-aligned bases so
/// their lines collide in every cache set. Shows the conflict matrix,
/// runs the Fig. 5 selection, and simulates before/after.
///
///   ./layout_optimizer

#include <iostream>

#include "core/laps.h"

int main() {
  using namespace laps;

  // --- Two 2 KB arrays + a large streaming array. p1 sweeps K1 and K2
  // together; p2 re-sweeps K2 (paper §3's example: re-layouting K1/K2
  // helps p1, and p2 finds K2 still resident). The stream array models
  // the rest of the application's traffic. ---
  Workload w;
  const std::int64_t n = 512;  // 2 KB per table
  const ArrayId k1 = w.arrays.add("K1", {n}, 4);
  const ArrayId k2 = w.arrays.add("K2", {n}, 4);
  const ArrayId stream = w.arrays.add("stream", {1 << 14}, 4);

  const auto s = AffineExpr::var(0, 2);  // sweep
  const auto i = AffineExpr::var(1, 2);  // element

  ProcessSpec p1;
  p1.name = "p1";
  p1.nests.push_back(LoopNest{
      IterationSpace::box({{0, 40}, {0, n}}),
      {ArrayAccess{k1, AffineMap{i}, AccessKind::Read},
       ArrayAccess{k2, AffineMap{i}, AccessKind::Read}},
      1});
  (void)s;
  ProcessSpec p2;
  p2.name = "p2";
  p2.nests.push_back(LoopNest{
      IterationSpace::box({{0, 40}, {0, n}}),
      {ArrayAccess{k2, AffineMap{i}, AccessKind::Read}},
      1});
  ProcessSpec p3;
  p3.name = "p3";
  p3.nests.push_back(LoopNest{
      IterationSpace::box({{0, 1}, {0, 1 << 14}}),
      {ArrayAccess{stream, AffineMap{i}, AccessKind::Read}},
      1});
  const ProcessId id1 = w.graph.addProcess(std::move(p1));
  const ProcessId id2 = w.graph.addProcess(std::move(p2));
  w.graph.addProcess(std::move(p3));
  w.graph.addDependence(id1, id2);  // p2 right after p1
  validateWorkload(w);

  // A direct-mapped 8 KB cache (page = 8 KB): with page-aligned bases,
  // K1 and K2 occupy the same sets and every alternating access of p1
  // evicts the other array's line — the paper's Fig. 4(a) pathology.
  const CacheConfig cache{8192, 1, 32, 2};
  std::cout << "Cache: " << cache.toString() << "\n\n";

  const AddressSpaceOptions placement{.dataBase = 0x1000'0000,
                                      .alignBytes = 8192};
  const auto footprints = w.footprints();
  AddressSpace space(w.arrays, placement);
  // Weight conflicts by reference density: K1/K2 are re-swept 40 times,
  // the stream is touched once.
  const std::vector<std::int64_t> refs{40 * n, 2 * 40 * n, 1 << 14};
  const ConflictMatrix conflicts =
      ConflictMatrix::compute(w.arrays, footprints, space, cache, refs);
  std::cout << "Conflict matrix (density-weighted co-mapped line pairs):\n"
            << conflicts.toTable(w.arrays).ascii() << '\n';

  // --- Fig. 5 selection. ---
  const RelayoutPlan plan =
      planRelayout(conflicts, cache, alwaysEligible(), std::nullopt,
                   RelayoutLimits{{2048, 2048, 1 << 16}, 6144});
  std::cout << "Re-layout threshold T = " << plan.threshold << "; "
            << plan.relayoutCount() << " arrays re-layouted\n";
  for (ArrayId a = 0; a < plan.transforms.size(); ++a) {
    if (!plan.transforms[a].isIdentity()) {
      std::cout << "  " << w.arrays.at(a).name << ": interleave(page="
                << plan.transforms[a].pageBytes()
                << ", b=" << plan.transforms[a].phase() << ")\n";
    }
  }

  // --- Simulate before/after on one core. ---
  const SharingMatrix sharing = SharingMatrix::compute(footprints);
  MpsocConfig mpsoc;
  mpsoc.coreCount = 1;
  mpsoc.memory.l1d = cache;
  mpsoc.memory.l1i = CacheConfig{8192, 1, 32, 2};

  FcfsScheduler fifo;
  MpsocSimulator before(w, space, sharing, fifo, mpsoc);
  const SimResult resBefore = before.run();

  AddressSpace optimized(w.arrays, placement);
  for (ArrayId a = 0; a < plan.transforms.size(); ++a) {
    if (!plan.transforms[a].isIdentity()) {
      optimized.setTransform(a, plan.transforms[a]);
    }
  }
  FcfsScheduler fifo2;
  MpsocSimulator after(w, optimized, sharing, fifo2, mpsoc);
  const SimResult resAfter = after.run();

  Table table({"Layout", "Cycles", "D$ misses", "Miss rate"});
  table.row()
      .cell("original (Fig. 4a)")
      .cell(resBefore.makespanCycles)
      .cell(resBefore.dcacheTotal.misses)
      .cell(resBefore.dataMissRate(), 4);
  table.row()
      .cell("interleaved (Fig. 4b)")
      .cell(resAfter.makespanCycles)
      .cell(resAfter.dcacheTotal.misses)
      .cell(resAfter.dataMissRate(), 4);
  std::cout << '\n' << table.ascii();
  std::cout << "\nMisses removed by re-layout: "
            << (resBefore.dcacheTotal.misses - resAfter.dcacheTotal.misses)
            << '\n';
  return 0;
}

/// \file paper_example.cpp
/// \brief Reproduces the paper's running example (§2, Figs. 1-2).
///
/// Prog1 of Fig. 1:
///     for (i1 = 0; i1 < 8; i1++)
///       for (i2 = 0; i2 < 3000; i2++)
///         B[i1] += A[i1*1000 + i2][5];
/// parallelized into 8 processes along i1. The program prints the
/// process footprints, the Fig. 2(a) sharing matrix, and the Fig. 3
/// mapping for a 4-core MPSoC (compare with Fig. 2(b)).
///
///   ./paper_example

#include <iostream>

#include "core/laps.h"

int main() {
  using namespace laps;

  // --- Fig. 1: Prog1's array and access. ---
  Workload w;
  const ArrayId arrayA = w.arrays.add("A", {10000, 16}, 4);
  const LoopNest nest{
      IterationSpace::box({{0, 8}, {0, 3000}}),
      {ArrayAccess{arrayA,
                   AffineMap{AffineExpr({1000, 1}, 0), AffineExpr::constant(5)},
                   AccessKind::Read}},
      1};
  std::cout << "Prog1 iteration space IS1 = " << nest.space.toString()
            << ", access A[" << nest.accesses[0].map.toString() << "]\n\n";

  // --- Parallelize over 8 processes (successive i1 blocks). ---
  const auto processes = addParallelLoop(w, 0, "Prog1", nest, 8);
  const auto footprints = w.footprints();
  for (std::size_t k = 0; k < processes.size(); ++k) {
    std::cout << "  DS1," << k << " = " << footprints[k].totalElements()
              << " elements of A\n";
  }

  // --- Fig. 2(a): the sharing matrix. ---
  const SharingMatrix sharing = SharingMatrix::compute(footprints);
  std::cout << "\nSharing matrix (paper Fig. 2(a); diagonal = own footprint):\n"
            << sharing.toTable().ascii() << '\n';

  // --- Fig. 2(b): mapping for 4 cores via the Fig. 3 algorithm. ---
  const LocalityPlan plan = buildLocalityPlan(w.graph, sharing, 4);
  Table mapping({"Core", "T1", "T2"});
  for (std::size_t c = 0; c < plan.perCore.size(); ++c) {
    auto row = std::vector<std::string>{};
    mapping.row().cell("core " + std::to_string(c));
    for (std::size_t slot = 0; slot < 2; ++slot) {
      mapping.cell(slot < plan.perCore[c].size()
                       ? "P" + std::to_string(plan.perCore[c][slot])
                       : "-");
    }
  }
  std::cout << "Fig. 3 mapping on 4 cores (compare Fig. 2(b)):\n"
            << mapping.ascii() << '\n';

  std::int64_t reuse = 0;
  for (const auto& [a, b] : plan.successivePairs()) {
    reuse += sharing.at(a, b);
  }
  std::cout << "Data reuse across successive pairs: " << reuse
            << " elements (paper's ideal mapping reaches 8000; the greedy\n"
            << "heuristic is not always optimal, as the paper notes)\n";
  return 0;
}

/// \file concurrent_apps.cpp
/// \brief Multi-application scheduling (the paper's Fig. 7 scenario).
///
/// Merges three applications of the standard suite into one concurrent
/// workload, runs the paper's four schedulers, and breaks the misses
/// down into compulsory / capacity / conflict (3C model) to show *why*
/// LSM helps when applications do not share data: only the conflict
/// component moves.
///
///   ./concurrent_apps

#include <iostream>

#include "core/laps.h"

int main() {
  using namespace laps;

  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, 5);
  std::cout << "Concurrent mix: ";
  for (std::size_t i = 0; i < 5; ++i) {
    std::cout << (i ? " + " : "") << suite[i].name;
  }
  std::cout << " = " << mix.graph.processCount() << " processes, "
            << mix.arrays.size() << " arrays\n\n";

  ExperimentConfig config;
  config.mpsoc.memory.classifyMisses = true;

  Table table({"Scheduler", "Time (ms)", "Misses", "Compulsory", "Capacity",
               "Conflict", "Migrations"});
  for (const auto kind : paperSchedulers()) {
    const ExperimentResult r = runExperiment(mix, kind, config);
    table.row()
        .cell(r.schedulerName)
        .cell(r.sim.seconds * 1e3, 3)
        .cell(r.sim.dcacheTotal.misses)
        .cell(r.sim.dataMisses.compulsory)
        .cell(r.sim.dataMisses.capacity)
        .cell(r.sim.dataMisses.conflict)
        .cell(r.sim.migrations);
  }
  std::cout << table.ascii();
  std::cout << "\nNote how RS/RRS inflate capacity+conflict misses by mixing\n"
               "unrelated processes on a core, and how LSM (re-layout)\n"
               "specifically attacks the conflict column.\n";
  return 0;
}

/// \file custom_workload.cpp
/// \brief Building your own application with the workload API.
///
/// Constructs a 3-stage video pipeline (decode -> upscale -> sharpen)
/// from scratch — arrays, affine loop nests, parallel stages, dependence
/// links — validates it, and compares all eight schedulers (the paper's
/// four plus this library's extensions).
///
///   ./custom_workload

#include <iostream>

#include "core/laps.h"

int main() {
  using namespace laps;

  // --- Arrays: a QCIF-ish frame pipeline. ---
  Workload w;
  const std::int64_t rows = 96;
  const std::int64_t cols = 128;
  const ArrayId bitstream = w.arrays.add("bitstream", {rows, cols}, 4);
  const ArrayId frame = w.arrays.add("frame", {rows, cols}, 4);
  const ArrayId up = w.arrays.add("up", {rows, cols}, 4);
  const ArrayId out = w.arrays.add("out", {rows, cols}, 4);

  const auto v0 = AffineExpr::var(0, 3);
  const auto v1 = AffineExpr::var(1, 3);
  const auto v2 = AffineExpr::var(2, 3);

  // --- Stage 1: decode (row blocks, 2 sweeps). ---
  const LoopNest decodeNest{
      IterationSpace::box({{0, 2}, {0, rows}, {0, cols}}),
      {ArrayAccess{bitstream, AffineMap{v1, v2}, AccessKind::Read},
       ArrayAccess{frame, AffineMap{v1, v2}, AccessKind::Write}},
      2};
  const auto decode =
      addParallelLoop(w, 0, "decode", decodeNest, 12, /*splitDim=*/1);

  // --- Stage 2: upscale (reads the decoded rows one-to-one). ---
  const LoopNest upscaleNest{
      IterationSpace::box({{0, 2}, {0, rows}, {0, cols - 1}}),
      {ArrayAccess{frame, AffineMap{v1, v2}, AccessKind::Read},
       ArrayAccess{frame, AffineMap{v1, v2.shift(1)}, AccessKind::Read},
       ArrayAccess{up, AffineMap{v1, v2}, AccessKind::Write}},
      1};
  const auto upscale =
      addParallelLoop(w, 0, "upscale", upscaleNest, 12, /*splitDim=*/1);
  linkStages(w.graph, decode, upscale, StageLink::OneToOne);

  // --- Stage 3: sharpen (vertical stencil, halo dependences). ---
  const LoopNest sharpenNest{
      IterationSpace::box({{0, 2}, {0, rows - 1}, {0, cols}}),
      {ArrayAccess{up, AffineMap{v1, v2}, AccessKind::Read},
       ArrayAccess{up, AffineMap{v1.shift(1), v2}, AccessKind::Read},
       ArrayAccess{out, AffineMap{v1, v2}, AccessKind::Write}},
      1};
  const auto sharpen =
      addParallelLoop(w, 0, "sharpen", sharpenNest, 12, /*splitDim=*/1);
  linkStages(w.graph, upscale, sharpen, StageLink::Neighborhood);

  validateWorkload(w);
  std::cout << "Custom pipeline: " << w.graph.processCount() << " processes, "
            << w.graph.edgeCount() << " dependences\n"
            << "EPG (Graphviz):\n"
            << w.graph.toDot() << '\n';

  // --- Compare every scheduler in the library. ---
  const std::vector<SchedulerKind> kinds{
      SchedulerKind::Random,        SchedulerKind::RoundRobin,
      SchedulerKind::Locality,      SchedulerKind::LocalityMapping,
      SchedulerKind::Fcfs,          SchedulerKind::Sjf,
      SchedulerKind::CriticalPath,  SchedulerKind::DynamicLocality};
  ExperimentConfig config;
  config.mpsoc.coreCount = 4;

  Table table({"Scheduler", "Time (ms)", "D$ misses", "Switches", "Energy (mJ)"});
  for (const auto kind : kinds) {
    const ExperimentResult r = runExperiment(w, kind, config);
    table.row()
        .cell(r.schedulerName)
        .cell(r.sim.seconds * 1e3, 3)
        .cell(r.sim.dcacheTotal.misses)
        .cell(r.sim.contextSwitches)
        .cell(r.energyMj, 3);
  }
  std::cout << table.ascii();
  return 0;
}

#pragma once
/// \file locality_score.h
/// \brief The single definition of locality-score arithmetic shared by
/// every locality policy (DLS, CALS, OLS and the plan index).
///
/// Before this class each policy reimplemented its own score math:
/// DLS's sharing-with-previous scan, CALS's sharing-minus-conflict
/// combiner, OLS's tail-or-anchor arrival scoring and the plan index's
/// heap keys. Adding the NoC hop-distance term would have meant a
/// fourth copy. LocalityScore centralizes the arithmetic as one hook
/// exposed on SchedulerPolicy (SchedulerPolicy::localityScore()):
///
///   sharing term    sharing(anchor, candidate)   — every policy
///   conflict term   - weight × L2 set conflicts  — CALS only
///   distance term   - hopWeight × hops(core, home)
///                                                — NoC platforms only
///
/// Distance-blind (hopWeight == 0 or no topology — every pre-NoC
/// configuration) each helper degenerates to exactly the legacy
/// arithmetic, so refactoring the policies through this class changes
/// no decision: the PR 8 checksum baseline (bench_policy_overhead) and
/// tests/sched/locality_score_test.cpp pin it.
///
/// All integer except the CALS combiner, which keeps that policy's
/// documented double-but-integer-exact contract (operands stay below
/// 2^53; see dynamic_locality.h).

#include <cstdint>
#include <optional>

#include "cache/noc.h"
#include "region/sharing.h"
#include "taskgraph/process.h"

namespace laps {

/// See file comment. Configured by a policy's reset() from its
/// SchedContext; cheap to copy, holds only non-owning pointers.
class LocalityScore {
 public:
  /// Multiplier lifting the sharing term over the hop penalty in
  /// combined integer keys: sharing dominates, distance breaks ties
  /// between comparably-sharing candidates (hopWeight calibrates how
  /// much sharing one hop is worth, in 1/kSharingScale units).
  static constexpr std::int64_t kSharingScale = 1024;

  /// \p topology null or \p hopWeight 0 = distance-blind (legacy).
  void configure(const SharingMatrix* sharing,
                 const NocTopology* topology = nullptr,
                 std::int64_t hopWeight = 0) {
    sharing_ = sharing;
    topology_ = topology;
    hopWeight_ = topology ? hopWeight : 0;
  }

  [[nodiscard]] bool distanceAware() const { return hopWeight_ > 0; }
  [[nodiscard]] std::int64_t hopWeight() const { return hopWeight_; }
  [[nodiscard]] const NocTopology* topology() const { return topology_; }

  /// The sharing term: data elements \p candidate shares with
  /// \p anchor, 0 without an anchor — exactly the legacy per-policy
  /// arithmetic.
  [[nodiscard]] std::int64_t sharing(std::optional<ProcessId> anchor,
                                     ProcessId candidate) const {
    return anchor ? sharing_->at(*anchor, candidate) : 0;
  }

  /// Combined integer key over a precomputed \p sharingTerm for a
  /// candidate whose cache-warm home core is \p home, dispatched on
  /// \p core. Distance-blind: the sharing term unchanged (bit-identical
  /// legacy heap keys). Distance-aware: sharing × kSharingScale −
  /// hopWeight × hops(core, home) — still one int64, still totally
  /// ordered, so the plan index's lazy max-heaps work unchanged.
  [[nodiscard]] std::int64_t key(std::int64_t sharingTerm, std::size_t core,
                                 std::optional<std::size_t> home) const {
    if (hopWeight_ == 0) return sharingTerm;
    std::int64_t penalty = 0;
    if (home) {
      penalty = hopWeight_ * topology_->hops(
                                 static_cast<std::int64_t>(core),
                                 static_cast<std::int64_t>(*home));
    }
    return sharingTerm * kSharingScale - penalty;
  }

  /// The CALS combiner: sharing − conflictWeight × conflicts, in the
  /// double-but-integer-exact arithmetic that policy documents
  /// (dynamic_locality.h) — operands below 2^53, so every value and
  /// comparison is exact.
  // LINT-ALLOW(no-float): CALS's documented double-but-integer-exact combiner
  [[nodiscard]] static double contendedScore(
      std::int64_t sharingTerm,
      // LINT-ALLOW(no-float): CALS's validated finite weight knob
      double conflictWeight, std::int64_t conflicts);

 private:
  const SharingMatrix* sharing_ = nullptr;
  const NocTopology* topology_ = nullptr;
  std::int64_t hopWeight_ = 0;
};

}  // namespace laps

#include "sched/locality.h"

#include <algorithm>

#include "util/error.h"

namespace laps {

std::vector<std::pair<ProcessId, ProcessId>> LocalityPlan::successivePairs()
    const {
  std::vector<std::pair<ProcessId, ProcessId>> pairs;
  for (const auto& plan : perCore) {
    for (std::size_t i = 0; i + 1 < plan.size(); ++i) {
      pairs.emplace_back(plan[i], plan[i + 1]);
    }
  }
  return pairs;
}

std::size_t LocalityPlan::processCount() const {
  std::size_t total = 0;
  for (const auto& plan : perCore) total += plan.size();
  return total;
}

LocalityPlan buildLocalityPlan(const ExtendedProcessGraph& graph,
                               const SharingMatrix& sharing,
                               std::size_t coreCount,
                               const LocalityOptions& options,
                               std::span<const ProcessId> subset) {
  check(coreCount >= 1, "buildLocalityPlan: need at least one core");
  check(sharing.size() == graph.processCount(),
        "buildLocalityPlan: sharing matrix size mismatch");
  check(graph.isAcyclic(), "buildLocalityPlan: graph has a cycle");

  const std::size_t n = graph.processCount();
  LocalityPlan plan;
  plan.perCore.resize(coreCount);
  if (n == 0) return plan;

  // inSubset masks the processes to place; the full-set case keeps every
  // loop below byte-identical to the pre-subset algorithm.
  std::vector<bool> inSubset(n, subset.empty());
  for (const ProcessId p : subset) {
    check(p < n, "buildLocalityPlan: subset id out of range");
    check(!inSubset[p], "buildLocalityPlan: duplicate subset id");
    inSubset[p] = true;
  }

  // --- Initialization: IN = independent processes (EPG roots) — for a
  // subset, the members with no predecessor inside the subset. ---
  std::vector<ProcessId> in;
  if (subset.empty()) {
    in = graph.roots();
  } else {
    for (ProcessId p = 0; p < n; ++p) {
      if (!inSubset[p]) continue;
      bool isRoot = true;
      for (const ProcessId pred : graph.predecessors(p)) {
        if (inSubset[pred]) {
          isRoot = false;
          break;
        }
      }
      if (isRoot) in.push_back(p);
    }
  }
  std::vector<bool> inPlan(n, false);

  // Trim IN down to the core count by repeatedly removing the candidate
  // with the maximum total sharing with the other candidates; removed
  // candidates return to the pool (paper Fig. 3).
  std::vector<ProcessId> deferred;
  if (options.initialMinSharingRound) {
    while (in.size() > coreCount) {
      std::size_t worst = 0;
      std::int64_t worstSharing = -1;
      for (std::size_t i = 0; i < in.size(); ++i) {
        std::int64_t total = 0;
        for (std::size_t j = 0; j < in.size(); ++j) {
          if (i != j) total += sharing.at(in[i], in[j]);
        }
        if (total > worstSharing) {
          worstSharing = total;
          worst = i;
        }
      }
      deferred.push_back(in[worst]);
      in.erase(in.begin() + static_cast<std::ptrdiff_t>(worst));
    }
  } else {
    // Ablation: keep the first X roots in id order.
    while (in.size() > coreCount) {
      deferred.push_back(in.back());
      in.pop_back();
    }
  }

  // Schedule the initial round (one process per core, id order).
  for (std::size_t c = 0; c < in.size(); ++c) {
    plan.perCore[c].push_back(in[c]);
    inPlan[in[c]] = true;
  }

  // Remaining pool: every subset member not yet placed.
  std::vector<bool> pending = inSubset;
  for (std::size_t c = 0; c < plan.perCore.size(); ++c) {
    for (const ProcessId p : plan.perCore[c]) pending[p] = false;
  }

  auto schedulable = [&](ProcessId q) {
    for (const ProcessId pred : graph.predecessors(q)) {
      // A predecessor outside the subset is satisfied by assumption
      // (completed/retired/foreign task); inside, it must be placed.
      if (inSubset[pred] && !inPlan[pred]) return false;
    }
    return true;
  };

  std::size_t remaining = 0;
  for (std::size_t p = 0; p < n; ++p) {
    if (pending[p]) ++remaining;
  }

  // --- Main loop: per round, each core takes the schedulable process with
  // maximum sharing with its previously placed process. ---
  while (remaining > 0) {
    bool placedAny = false;
    for (std::size_t c = 0; c < coreCount && remaining > 0; ++c) {
      std::optional<ProcessId> previous;
      if (!plan.perCore[c].empty()) previous = plan.perCore[c].back();

      std::optional<ProcessId> best;
      std::int64_t bestSharing = -1;
      for (ProcessId q = 0; q < n; ++q) {
        if (!pending[q] || !schedulable(q)) continue;
        // Without a previous process (core idle so far), prefer the
        // process sharing least with the other cores' latest picks is the
        // natural analogue; the paper leaves it open — we use sharing 0
        // so ties fall to the smallest id.
        const std::int64_t s = previous ? sharing.at(*previous, q) : 0;
        if (s > bestSharing) {
          bestSharing = s;
          best = q;
        }
      }
      if (best) {
        plan.perCore[c].push_back(*best);
        pending[*best] = false;
        inPlan[*best] = true;
        --remaining;
        placedAny = true;
      }
    }
    // A full round with no placement would loop forever; in a DAG there
    // is always a schedulable pending process, so this indicates a bug.
    check(placedAny || remaining == 0,
          "buildLocalityPlan: no schedulable process in a full round");
  }
  return plan;
}

std::optional<ProcessId> pickMaxSharing(const std::vector<bool>& ready,
                                        const SharingMatrix& sharing,
                                        std::optional<ProcessId> previous) {
  std::optional<ProcessId> best;
  std::int64_t bestSharing = -1;
  for (ProcessId q = 0; q < ready.size(); ++q) {
    if (!ready[q]) continue;
    const std::int64_t s = previous ? sharing.at(*previous, q) : 0;
    if (s > bestSharing) {
      bestSharing = s;
      best = q;
    }
  }
  return best;
}

LocalityScheduler::LocalityScheduler(LocalityOptions options)
    : options_(options) {}

void LocalityScheduler::reset(const SchedContext& context) {
  check(context.graph != nullptr && context.sharing != nullptr,
        "LocalityScheduler: context incomplete");
  sharing_ = context.sharing;
  plan_ = buildLocalityPlan(*context.graph, *context.sharing,
                            context.coreCount, options_);
  cursor_.assign(context.coreCount, 0);
  ready_.assign(context.graph->processCount(), false);
  dispatched_.assign(context.graph->processCount(), false);
  readyCount_ = 0;
}

void LocalityScheduler::onReady(ProcessId process) {
  check(process < ready_.size(), "LocalityScheduler: unknown process");
  if (!ready_[process]) {
    ready_[process] = true;
    ++readyCount_;
  }
}

std::optional<ProcessId> LocalityScheduler::pickNext(
    std::size_t core, std::optional<ProcessId> previous) {
  check(core < plan_.perCore.size(), "LocalityScheduler: unknown core");

  if (options_.staticPlan) {
    const auto& order = plan_.perCore[core];
    std::size_t& pos = cursor_[core];
    if (pos >= order.size()) return std::nullopt;  // plan exhausted
    const ProcessId next = order[pos];
    if (!ready_[next]) return std::nullopt;  // stall until deps finish
    ++pos;
    return next;
  }

  if (readyCount_ == 0) return std::nullopt;

  const auto take = [&](ProcessId p) {
    ready_[p] = false;
    dispatched_[p] = true;
    --readyCount_;
    return p;
  };

  // First pick on this core: honor the initial min-sharing round of
  // Fig. 3 (the planned first process for this core).
  if (!previous && !plan_.perCore[core].empty()) {
    const ProcessId planned = plan_.perCore[core].front();
    if (ready_[planned]) return take(planned);
  }

  // Online Fig. 3 rule (pickMaxSharing): maximize sharing with the
  // process this core ran last.
  const std::optional<ProcessId> best =
      pickMaxSharing(ready_, *sharing_, previous);
  if (!best) return std::nullopt;
  return take(*best);
}

}  // namespace laps

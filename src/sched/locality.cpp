#include "sched/locality.h"

#include <algorithm>

#include "util/error.h"

namespace laps {

std::vector<std::pair<ProcessId, ProcessId>> LocalityPlan::successivePairs()
    const {
  std::vector<std::pair<ProcessId, ProcessId>> pairs;
  for (const auto& plan : perCore) {
    for (std::size_t i = 0; i + 1 < plan.size(); ++i) {
      pairs.emplace_back(plan[i], plan[i + 1]);
    }
  }
  return pairs;
}

std::size_t LocalityPlan::processCount() const {
  std::size_t total = 0;
  for (const auto& plan : perCore) total += plan.size();
  return total;
}

namespace {

/// Shared prelude of both planner implementations: validates inputs and
/// expands the subset argument into a mask. The full-set case keeps
/// every downstream loop byte-identical to the pre-subset algorithm.
std::vector<bool> subsetMask(const ExtendedProcessGraph& graph,
                             const SharingMatrix& sharing,
                             std::size_t coreCount,
                             std::span<const ProcessId> subset) {
  check(coreCount >= 1, "buildLocalityPlan: need at least one core");
  check(sharing.size() == graph.processCount(),
        "buildLocalityPlan: sharing matrix size mismatch");
  check(graph.isAcyclic(), "buildLocalityPlan: graph has a cycle");
  std::vector<bool> inSubset(graph.processCount(), subset.empty());
  for (const ProcessId p : subset) {
    check(p < graph.processCount(),
          "buildLocalityPlan: subset id out of range");
    check(!inSubset[p], "buildLocalityPlan: duplicate subset id");
    inSubset[p] = true;
  }
  return inSubset;
}

/// IN = independent processes (EPG roots) — for a subset, the members
/// with no predecessor inside the subset. Ascending id order.
std::vector<ProcessId> initialCandidates(const ExtendedProcessGraph& graph,
                                         const std::vector<bool>& inSubset,
                                         std::span<const ProcessId> subset) {
  if (subset.empty()) return graph.roots();
  std::vector<ProcessId> in;
  for (ProcessId p = 0; p < graph.processCount(); ++p) {
    if (!inSubset[p]) continue;
    bool isRoot = true;
    for (const ProcessId pred : graph.predecessors(p)) {
      if (inSubset[pred]) {
        isRoot = false;
        break;
      }
    }
    if (isRoot) in.push_back(p);
  }
  return in;
}

/// Places the initial round — one process per core. Distance-blind
/// (no topology): id order onto cores 0..|in|-1, the paper's placement,
/// byte-identical to the pre-NoC loop. With a topology: a region-growing
/// walk over the center-out spiral — each visited tile takes the
/// unplaced candidate maximizing the proximity-weighted sharing with
/// everything already placed, Σ over placed (p @ tile d) of
/// sharing(p, q) × (diameter + 1 − hops(tile, d)); strict `>` over the
/// ascending-id candidate list makes ties fall to the smallest id, and
/// the first tile (all scores 0) takes the smallest id outright.
/// Shared by both planner implementations so the legacy oracle and the
/// indexed planner keep producing element-identical plans.
void placeInitialRound(LocalityPlan& plan, const std::vector<ProcessId>& in,
                       const SharingMatrix& sharing,
                       const NocTopology* topology, std::size_t coreCount) {
  if (topology == nullptr) {
    for (std::size_t c = 0; c < in.size(); ++c) {
      plan.perCore[c].push_back(in[c]);
    }
    return;
  }
  check(topology->nodeCount() == static_cast<std::int64_t>(coreCount),
        "buildLocalityPlan: topology node count != core count");
  const std::int64_t reach = topology->maxHops() + 1;
  std::vector<bool> taken(in.size(), false);
  // (process, tile) pairs already placed, in spiral order.
  std::vector<std::pair<ProcessId, std::int64_t>> placed;
  placed.reserve(in.size());
  for (const std::int64_t tile : topology->spiralOrder()) {
    if (placed.size() == in.size()) break;
    std::size_t bestIdx = 0;
    std::int64_t bestScore = -1;
    bool have = false;
    for (std::size_t i = 0; i < in.size(); ++i) {
      if (taken[i]) continue;
      std::int64_t score = 0;
      for (const auto& [p, d] : placed) {
        score += sharing.at(p, in[i]) * (reach - topology->hops(tile, d));
      }
      if (!have || score > bestScore) {
        have = true;
        bestScore = score;
        bestIdx = i;
      }
    }
    taken[bestIdx] = true;
    placed.emplace_back(in[bestIdx], tile);
    plan.perCore[static_cast<std::size_t>(tile)].push_back(in[bestIdx]);
  }
}

}  // namespace

LocalityPlan buildLocalityPlan(const ExtendedProcessGraph& graph,
                               const SharingMatrix& sharing,
                               std::size_t coreCount,
                               const LocalityOptions& options,
                               std::span<const ProcessId> subset) {
  const std::vector<bool> inSubset =
      subsetMask(graph, sharing, coreCount, subset);

  const std::size_t n = graph.processCount();
  LocalityPlan plan;
  plan.perCore.resize(coreCount);
  if (n == 0) return plan;

  std::vector<ProcessId> in = initialCandidates(graph, inSubset, subset);

  // Trim IN down to the core count by repeatedly removing the candidate
  // with the maximum total sharing with the other candidates (paper
  // Fig. 3). The totals are computed once — O(|IN|^2) row loads — and
  // patched after each removal by subtracting the removed candidate's
  // contribution: integer sums, so each patched total equals the
  // legacy from-scratch rescan exactly, and the worst-pick scan below
  // replicates the legacy sentinel (worst stays 0 unless some total
  // exceeds -1) and its smallest-index tie-break.
  if (options.initialMinSharingRound) {
    std::vector<std::int64_t> totals(in.size(), 0);
    for (std::size_t i = 0; i < in.size(); ++i) {
      const std::span<const std::int64_t> row = sharing.row(in[i]);
      std::int64_t total = 0;
      for (std::size_t j = 0; j < in.size(); ++j) {
        if (i != j) total += row[in[j]];
      }
      totals[i] = total;
    }
    while (in.size() > coreCount) {
      std::size_t worst = 0;
      std::int64_t worstSharing = -1;
      for (std::size_t i = 0; i < in.size(); ++i) {
        if (totals[i] > worstSharing) {
          worstSharing = totals[i];
          worst = i;
        }
      }
      const ProcessId removed = in[worst];
      in.erase(in.begin() + static_cast<std::ptrdiff_t>(worst));
      totals.erase(totals.begin() + static_cast<std::ptrdiff_t>(worst));
      // at(in[i], removed), not the transpose: hand-set matrices may be
      // asymmetric, and the legacy rescan reads row in[i].
      for (std::size_t i = 0; i < in.size(); ++i) {
        totals[i] -= sharing.at(in[i], removed);
      }
    }
  } else {
    // Ablation: keep the first X roots in id order.
    while (in.size() > coreCount) in.pop_back();
  }

  // Schedule the initial round (one process per core; id order, or the
  // spiral region-growing walk on NoC platforms — see placeInitialRound).
  placeInitialRound(plan, in, sharing, options.topology, coreCount);

  // Remaining pool: every subset member not yet placed.
  std::vector<bool> pending = inSubset;
  for (const ProcessId p : in) pending[p] = false;

  std::size_t remaining = 0;
  for (std::size_t p = 0; p < n; ++p) {
    if (pending[p]) ++remaining;
  }

  // --- Main loop on the indexed core: per round, each core pops the
  // ready process with maximum sharing with its previously placed
  // process (smallest id on ties — the heap comparator's order equals
  // the legacy ascending strict-`>` scan). place() releases successors
  // through the cached indegree counters.
  PlanIndex index;
  index.beginPlanner(graph, sharing, coreCount, pending);
  while (remaining > 0) {
    bool placedAny = false;
    for (std::size_t c = 0; c < coreCount && remaining > 0; ++c) {
      std::optional<ProcessId> previous;
      if (!plan.perCore[c].empty()) previous = plan.perCore[c].back();

      const std::optional<ProcessId> best = index.popBest(c, previous);
      if (best) {
        plan.perCore[c].push_back(*best);
        index.place(*best);
        --remaining;
        placedAny = true;
      }
    }
    // A full round with no placement would loop forever; in a DAG there
    // is always a schedulable pending process, so this indicates a bug.
    check(placedAny || remaining == 0,
          "buildLocalityPlan: no schedulable process in a full round");
  }
  return plan;
}

LocalityPlan buildLocalityPlanLegacy(const ExtendedProcessGraph& graph,
                                     const SharingMatrix& sharing,
                                     std::size_t coreCount,
                                     const LocalityOptions& options,
                                     std::span<const ProcessId> subset) {
  const std::vector<bool> inSubset =
      subsetMask(graph, sharing, coreCount, subset);

  const std::size_t n = graph.processCount();
  LocalityPlan plan;
  plan.perCore.resize(coreCount);
  if (n == 0) return plan;

  std::vector<ProcessId> in = initialCandidates(graph, inSubset, subset);
  std::vector<bool> inPlan(n, false);

  // Trim IN down to the core count by repeatedly removing the candidate
  // with the maximum total sharing with the other candidates; the
  // totals are rescanned from scratch every iteration — the O(|IN|^3)
  // loop exactly as Fig. 3 writes it.
  if (options.initialMinSharingRound) {
    while (in.size() > coreCount) {
      std::size_t worst = 0;
      std::int64_t worstSharing = -1;
      for (std::size_t i = 0; i < in.size(); ++i) {
        std::int64_t total = 0;
        for (std::size_t j = 0; j < in.size(); ++j) {
          if (i != j) total += sharing.at(in[i], in[j]);
        }
        if (total > worstSharing) {
          worstSharing = total;
          worst = i;
        }
      }
      in.erase(in.begin() + static_cast<std::ptrdiff_t>(worst));
    }
  } else {
    // Ablation: keep the first X roots in id order.
    while (in.size() > coreCount) in.pop_back();
  }

  // Schedule the initial round (one process per core; id order, or the
  // spiral region-growing walk on NoC platforms — see placeInitialRound).
  placeInitialRound(plan, in, sharing, options.topology, coreCount);
  for (const ProcessId p : in) inPlan[p] = true;

  // Remaining pool: every subset member not yet placed.
  std::vector<bool> pending = inSubset;
  for (std::size_t c = 0; c < plan.perCore.size(); ++c) {
    for (const ProcessId p : plan.perCore[c]) pending[p] = false;
  }

  auto schedulable = [&](ProcessId q) {
    for (const ProcessId pred : graph.predecessors(q)) {
      // A predecessor outside the subset is satisfied by assumption
      // (completed/retired/foreign task); inside, it must be placed.
      if (inSubset[pred] && !inPlan[pred]) return false;
    }
    return true;
  };

  std::size_t remaining = 0;
  for (std::size_t p = 0; p < n; ++p) {
    if (pending[p]) ++remaining;
  }

  // --- Main loop: per round, each core takes the schedulable process with
  // maximum sharing with its previously placed process. ---
  while (remaining > 0) {
    bool placedAny = false;
    for (std::size_t c = 0; c < coreCount && remaining > 0; ++c) {
      std::optional<ProcessId> previous;
      if (!plan.perCore[c].empty()) previous = plan.perCore[c].back();

      std::optional<ProcessId> best;
      std::int64_t bestSharing = -1;
      for (ProcessId q = 0; q < n; ++q) {
        if (!pending[q] || !schedulable(q)) continue;
        // Without a previous process (core idle so far), prefer the
        // process sharing least with the other cores' latest picks is the
        // natural analogue; the paper leaves it open — we use sharing 0
        // so ties fall to the smallest id.
        const std::int64_t s = previous ? sharing.at(*previous, q) : 0;
        if (s > bestSharing) {
          bestSharing = s;
          best = q;
        }
      }
      if (best) {
        plan.perCore[c].push_back(*best);
        pending[*best] = false;
        inPlan[*best] = true;
        --remaining;
        placedAny = true;
      }
    }
    // A full round with no placement would loop forever; in a DAG there
    // is always a schedulable pending process, so this indicates a bug.
    check(placedAny || remaining == 0,
          "buildLocalityPlan: no schedulable process in a full round");
  }
  return plan;
}

std::optional<ProcessId> pickMaxSharing(const std::vector<bool>& ready,
                                        const SharingMatrix& sharing,
                                        std::optional<ProcessId> previous) {
  std::optional<ProcessId> best;
  std::int64_t bestSharing = -1;
  for (ProcessId q = 0; q < ready.size(); ++q) {
    if (!ready[q]) continue;
    const std::int64_t s = previous ? sharing.at(*previous, q) : 0;
    if (s > bestSharing) {
      bestSharing = s;
      best = q;
    }
  }
  return best;
}

LocalityScheduler::LocalityScheduler(LocalityOptions options)
    : options_(options) {}

void LocalityScheduler::reset(const SchedContext& context) {
  check(context.graph != nullptr && context.sharing != nullptr,
        "LocalityScheduler: context incomplete");
  plan_ = buildLocalityPlan(*context.graph, *context.sharing,
                            context.coreCount, options_);
  cursor_.assign(context.coreCount, 0);
  index_.beginDispatch(*context.sharing, context.graph->processCount(),
                       context.coreCount);
}

void LocalityScheduler::onReady(ProcessId process) {
  index_.markReady(process);
}

std::optional<ProcessId> LocalityScheduler::pickNext(
    std::size_t core, std::optional<ProcessId> previous) {
  check(core < plan_.perCore.size(), "LocalityScheduler: unknown core");

  if (options_.staticPlan) {
    const auto& order = plan_.perCore[core];
    std::size_t& pos = cursor_[core];
    if (pos >= order.size()) return std::nullopt;  // plan exhausted
    const ProcessId next = order[pos];
    if (!index_.isReady(next)) return std::nullopt;  // stall until deps finish
    ++pos;
    return next;
  }

  if (index_.readyCount() == 0) return std::nullopt;

  // First pick on this core: honor the initial min-sharing round of
  // Fig. 3 (the planned first process for this core).
  if (!previous && !plan_.perCore[core].empty()) {
    const ProcessId planned = plan_.perCore[core].front();
    if (index_.isReady(planned)) {
      index_.markUnready(planned);
      return planned;
    }
  }

  // Online Fig. 3 rule: maximize sharing with the process this core ran
  // last, over the ready set — popBest is the indexed pickMaxSharing.
  return index_.popBest(core, previous);
}

}  // namespace laps

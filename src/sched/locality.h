#pragma once
/// \file locality.h
/// \brief The locality-aware scheduling algorithm of paper Fig. 3.
///
/// Two phases:
///  1. Initial round — from the independent processes (EPG roots), keep
///     the X (= core count) with minimum mutual sharing by iteratively
///     removing the candidate with maximum total sharing to the others
///     (they run concurrently, so sharing between them is wasted).
///  2. Greedy rounds — for each core in turn, append the schedulable
///     process with maximum sharing with the process previously placed
///     on that core.
///
/// The result is a static per-core plan. At run time a core simply waits
/// until the next planned process's dependences are satisfied; the
/// placement order guarantees this never deadlocks (each process waits
/// only on processes placed strictly earlier).

#include <span>
#include <vector>

#include "sched/plan_index.h"
#include "sched/scheduler.h"

namespace laps {

class NocTopology;  // cache/noc.h

/// Static per-core schedule produced by the Fig. 3 algorithm.
struct LocalityPlan {
  /// perCore[c] = ordered processes for core c.
  std::vector<std::vector<ProcessId>> perCore;

  /// Pairs of processes scheduled back-to-back on one core (inputs to
  /// the re-layout eligibility relation).
  [[nodiscard]] std::vector<std::pair<ProcessId, ProcessId>> successivePairs() const;

  /// Total processes placed.
  [[nodiscard]] std::size_t processCount() const;
};

/// Options for ablation studies.
struct LocalityOptions {
  /// Apply the initial min-sharing selection round (Fig. 3 lines 3-6).
  /// Disabled, the first X roots are taken as-is — the ablation
  /// quantifies what the initial round contributes.
  bool initialMinSharingRound = true;

  /// NoC platforms (opt-in): interconnect geometry for the initial
  /// placement. Null — every pre-NoC configuration — keeps the paper's
  /// id-order initial round bit-identically. Set (by the distance-aware
  /// OLS replanner, or explicitly), the initial round becomes a
  /// region-growing walk over the topology's center-out spiral: each
  /// spiral tile takes the candidate with maximum proximity-weighted
  /// sharing to the already-placed ones, so tightly coupled initial
  /// processes land on adjacent central tiles. Greedy rounds are
  /// unchanged (distance enters them through PlanIndex hop-weighted
  /// keys, not here). Non-owning; must outlive the plan build.
  const NocTopology* topology = nullptr;

  /// Execute the Fig. 3 plan rigidly (a core stalls until its next
  /// planned process is ready). The default interprets Fig. 3
  /// operationally — when a core goes idle it picks, among the processes
  /// that are ready *now*, the one with maximum sharing with the process
  /// it just ran (work-conserving, as the in-OS scheduler would behave).
  /// The rigid mode exists for the ablation bench; it trades load balance
  /// for plan fidelity.
  bool staticPlan = false;
};

/// Runs the Fig. 3 algorithm. Requires an acyclic graph; every process is
/// placed on exactly one core.
///
/// A non-empty \p subset restricts the plan to those processes (the
/// open-workload replanner rebuilds over the currently live set):
/// dependences on processes outside the subset are treated as satisfied
/// (they completed, were retired, or — by the cohort arrival model —
/// belong to another task), and only subset members are placed. An
/// empty subset means every process, exactly as before.
///
/// Runs on the indexed planner core (sched/plan_index.h): incremental
/// row-sum totals for the initial trim (O(|IN|²) instead of O(|IN|³)),
/// cached indegree counters instead of the per-candidate predecessor
/// walk, and per-core lazy max-heaps for the greedy argmax. The plan is
/// identical — element for element — to buildLocalityPlanLegacy below;
/// the differential tests in tests/sched/plan_index_test.cpp and the
/// equality argument in docs/ARCHITECTURE.md §12 pin it.
[[nodiscard]] LocalityPlan buildLocalityPlan(const ExtendedProcessGraph& graph,
                                             const SharingMatrix& sharing,
                                             std::size_t coreCount,
                                             const LocalityOptions& options = {},
                                             std::span<const ProcessId> subset = {});

/// The pre-index reference implementation: the Fig. 3 loops exactly as
/// written — O(|IN|³) trim, full candidate rescans with a predecessor
/// walk per candidate. Kept as the differential-test oracle and the
/// baseline arm of bench_policy_overhead / BM_LocalityPlanLegacy; new
/// code should call buildLocalityPlan.
[[nodiscard]] LocalityPlan buildLocalityPlanLegacy(
    const ExtendedProcessGraph& graph, const SharingMatrix& sharing,
    std::size_t coreCount, const LocalityOptions& options = {},
    std::span<const ProcessId> subset = {});

/// The online Fig. 3 dispatch rule shared by LS and the open-workload
/// replanner (OLS's steal fallback): among ready processes
/// (ready[q] == true), the one maximizing sharing with \p previous —
/// smallest id breaks ties; without a previous process the first ready
/// one wins. nullopt when nothing is ready. Pure; the caller clears the
/// chosen process's ready flag.
[[nodiscard]] std::optional<ProcessId> pickMaxSharing(
    const std::vector<bool>& ready, const SharingMatrix& sharing,
    std::optional<ProcessId> previous);

/// The paper's LS policy (LSM reuses it after re-layout).
///
/// Default (online) mode: the Fig. 3 selection rule applied at run time —
/// a core's first process comes from the initial min-sharing round; every
/// subsequent pick maximizes sharing with the process that core ran last,
/// over the currently ready set. Static mode (LocalityOptions::staticPlan)
/// follows the precomputed plan order rigidly.
class LocalityScheduler final : public SchedulerPolicy {
 public:
  explicit LocalityScheduler(LocalityOptions options = {});

  void reset(const SchedContext& context) override;
  void onReady(ProcessId process) override;
  std::optional<ProcessId> pickNext(std::size_t core,
                                    std::optional<ProcessId> previous) override;
  [[nodiscard]] std::string name() const override { return "LS"; }

  /// The plan built at reset() (for inspection and LSM eligibility).
  [[nodiscard]] const LocalityPlan& plan() const { return plan_; }

 private:
  LocalityOptions options_;
  LocalityPlan plan_;
  std::vector<std::size_t> cursor_;  // per-core position (static mode)
  PlanIndex index_;  // dispatch-mode ready index (sched/plan_index.h)
};

}  // namespace laps

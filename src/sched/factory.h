#pragma once
/// \file factory.h
/// \brief Construction of scheduler policies by kind.

#include <memory>

#include "sched/dynamic_locality.h"
#include "sched/online_locality.h"
#include "sched/scheduler.h"

namespace laps {

/// Tunables consumed by individual policies.
struct SchedulerParams {
  std::int64_t rrsQuantumCycles = 8'000;  ///< RRS time slice
  std::uint64_t randomSeed = 1;            ///< RS seed
  bool lsInitialMinSharingRound = true;    ///< LS ablation switch
  L2ContentionOptions l2Contention{};      ///< CALS geometry and weight
  OnlineLocalityOptions onlineLocality{};  ///< OLS rebuild threshold
};

/// Throws laps::Error when a parameter the policy implementing \p kind
/// consumes is invalid (non-positive RRS quantum, negative conflict
/// weight, inconsistent L2 geometry). makeScheduler calls this first, so
/// a bad configuration fails at construction — not deep inside
/// MpsocSimulator::run().
void validateSchedulerParams(SchedulerKind kind, const SchedulerParams& params);

/// Creates the policy implementing \p kind after validating \p params
/// (see validateSchedulerParams). Note that
/// SchedulerKind::LocalityMapping returns the same policy as Locality:
/// the data re-layout half of LSM is applied to the AddressSpace by the
/// experiment harness before simulation (see core/experiment.h).
[[nodiscard]] std::unique_ptr<SchedulerPolicy> makeScheduler(
    SchedulerKind kind, const SchedulerParams& params = {});

}  // namespace laps

#pragma once
/// \file load_balancer.h
/// \brief Locality-aware load shedding over per-core plan queues.
///
/// The OLS replanner keeps a per-core queue of pending work; under
/// skewed arrivals (one hot core keeps winning the max-sharing patch
/// argmax) a queue can grow far past its peers while other cores go
/// hungry between rebuilds. The balancer sheds that skew the way the
/// felis locality manager does: measure each core's outstanding-work
/// weight, and when a core exceeds the mean by a configured factor,
/// offload entries from its queue *tail* (the work farthest from
/// dispatch — the head keeps its locality chain intact) onto the
/// underloaded core that shares the most data with the moved process.
///
/// planBalanceMoves is a pure function of (queues, sharing, anchors,
/// options): integer arithmetic, smallest-id tie-breaks, no clocks, no
/// randomness — the same inputs always yield the same move list, at
/// any thread count. Each move strictly shrinks the maximum queue gap
/// (the target must sit at least two below the source), so the
/// sum-of-squared-weights potential strictly decreases and the loop
/// terminates without a round counter; maxMovesPerEvent merely bounds
/// the work done on any single arrival/exit event.
///
/// planOrphanReassignment is the fault-injection sibling (docs §13):
/// when a core goes down, the work planned on it is orphaned, and OLS
/// re-homes every orphan onto the up core sharing the most data with
/// it — the same pure-function shape, same greedy max-sharing rule as
/// the arrival patch, chained so each placed orphan becomes the queue
/// tail the next one scores against.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "region/sharing.h"
#include "sched/locality_score.h"
#include "taskgraph/process.h"

namespace laps {

/// Tunables of the plan-queue load balancer (off by default: enabling
/// it changes dispatch, so every committed baseline runs without it).
struct LoadBalancerOptions {
  /// Master switch. Disabled, planBalanceMoves is never consulted.
  bool enabled = false;

  /// Overload trigger: core c sheds work only while
  /// weight(c) * 100 > mean * overloadPercent (and weight(c) exceeds
  /// the mean by at least 2, so a valid target exists). 150 = one and
  /// a half times the mean queue length.
  std::uint32_t overloadPercent = 150;

  /// Upper bound on moves planned per arrival/exit event; keeps one
  /// event from paying an O(queue) shed when a burst lands.
  std::size_t maxMovesPerEvent = 4;

  /// Throws laps::Error on out-of-range values (overloadPercent < 100
  /// would shed below the mean and fight the locality argmax).
  void validate() const;
};

/// One planned migration: \p process leaves core \p from's queue tail
/// and appends to core \p to's queue.
struct BalanceMove {
  ProcessId process = 0;
  std::size_t from = 0;
  std::size_t to = 0;
};

/// Plans load-shedding moves over per-core pending queues (pure; see
/// file comment). \p queues holds each core's pending processes in
/// dispatch order; \p anchors holds the process each core last
/// dispatched (the sharing anchor of an empty queue). Scores candidate
/// targets by sharing(target's last queued — or anchor — process,
/// moved process); an empty, anchorless core scores 0. Ties fall to
/// the lowest core index. Returns the moves in planning order; the
/// caller applies them to its own representation.
/// \p upMask (empty = every core is up, the exact pre-fault behavior;
/// else one flag per core) removes down cores from the move space:
/// never a shed source — their queues were already orphaned — never a
/// target, and excluded from the mean the overload trigger compares
/// against.
/// \p score (null or distance-blind = the raw sharing argmax, the exact
/// pre-NoC behavior) makes target selection hop-weighted on NoC
/// platforms: a candidate target scores LocalityScore::key(sharing,
/// target, source) — the moved process's warm state sits on the source
/// tile, so sharing with a far target is discounted by the hops the
/// traffic would cross.
[[nodiscard]] std::vector<BalanceMove> planBalanceMoves(
    const std::vector<std::vector<ProcessId>>& queues,
    const SharingMatrix& sharing,
    std::span<const std::optional<ProcessId>> anchors,
    const LoadBalancerOptions& options, const std::vector<bool>& upMask = {},
    const LocalityScore* score = nullptr);

/// Plans where the \p orphans of a downed core go (pure; see file
/// comment). \p queues is the per-core pending work *after* the downed
/// core's queue was emptied; \p anchors as in planBalanceMoves. Each
/// orphan, in the given order, lands on the up core (\p upMask true;
/// with no core up every core is eligible — the work must park
/// somewhere until a recovery) whose last queued — or anchor — process
/// shares the most data with it, ties to the lowest core index, and
/// then counts as that core's new tail for the next orphan. Returns
/// the target core per orphan, parallel to \p orphans.
/// Deliberately distance-blind even on NoC platforms: the downed core's
/// caches are gone, so the orphan has no warm tile to stay near — raw
/// sharing with the target's tail is the whole signal.
[[nodiscard]] std::vector<std::size_t> planOrphanReassignment(
    std::span<const ProcessId> orphans,
    const std::vector<std::vector<ProcessId>>& queues,
    const SharingMatrix& sharing,
    std::span<const std::optional<ProcessId>> anchors,
    const std::vector<bool>& upMask);

}  // namespace laps

#include "sched/dynamic_locality.h"

#include <algorithm>
#include <cmath>

#include "layout/address_space.h"
#include "layout/conflict.h"
#include "util/error.h"

namespace laps {

void L2ContentionOptions::validate() const {
  check(std::isfinite(conflictWeight) && conflictWeight >= 0.0,
        "L2ContentionOptions: conflictWeight must be finite and >= 0");
  l2Geometry.validate();
}

void DynamicLocalityScheduler::reset(const SchedContext& context) {
  check(context.sharing != nullptr, "DynamicLocalityScheduler: sharing required");
  score_.configure(context.sharing, context.topology);
  ready_.clear();
  aging_.reset(context.sharing->size());
}

void DynamicLocalityScheduler::onReady(ProcessId process) {
  ready_.push_back(process);
}

void DynamicLocalityScheduler::onArrival(ProcessId process) {
  aging_.stamp(process);
}

void DynamicLocalityScheduler::onExit(ProcessId process) {
  const auto it = std::find(ready_.begin(), ready_.end(), process);
  if (it != ready_.end()) ready_.erase(it);
}

std::optional<ProcessId> DynamicLocalityScheduler::pickNext(
    std::size_t /*core*/, std::optional<ProcessId> previous) {
  if (ready_.empty()) return std::nullopt;
  std::size_t bestIdx = 0;
  if (previous) {
    std::int64_t bestSharing = -1;
    std::int64_t bestSeq = -1;
    for (std::size_t i = 0; i < ready_.size(); ++i) {
      const std::int64_t s = score_.sharing(previous, ready_[i]);
      const std::int64_t seq = aging_.seqOf(ready_[i]);
      // Equal sharing: ArrivalAging decides (earliest arrival in open
      // workloads, plain ready-order FIFO in closed ones).
      const bool better =
          s > bestSharing ||
          (s == bestSharing && ArrivalAging::beatsTie(seq, bestSeq));
      if (better) {
        bestSharing = s;
        bestSeq = seq;
        bestIdx = i;
      }
    }
  }
  const ProcessId chosen = ready_[bestIdx];
  ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(bestIdx));
  return chosen;
}

L2ContentionAwareScheduler::L2ContentionAwareScheduler(
    L2ContentionOptions options)
    : options_(std::move(options)) {
  options_.validate();
}

void L2ContentionAwareScheduler::reset(const SchedContext& context) {
  check(context.sharing != nullptr,
        "L2ContentionAwareScheduler: sharing required");
  check(context.coreCount >= 1,
        "L2ContentionAwareScheduler: need at least one core");
  check(context.workload != nullptr && context.space != nullptr,
        "L2ContentionAwareScheduler: workload and address space required "
        "(footprint conflict analysis)");
  score_.configure(context.sharing, context.topology);
  ready_.clear();
  conflictMemo_.clear();
  runningOn_.assign(context.coreCount, std::nullopt);
  aging_.reset(context.sharing->size());

  // Per-process line occupancy over the shared L2's set space, through
  // the live address layout.
  const std::vector<Footprint> footprints = context.workload->footprints();
  occupancy_.clear();
  occupancy_.reserve(footprints.size());
  const auto sets =
      static_cast<std::size_t>(options_.l2Geometry.numSets());
  for (const Footprint& fp : footprints) {
    std::vector<std::int64_t> occ(sets, 0);
    for (const auto& [array, elements] : fp.perArray()) {
      const std::vector<std::int64_t> one = setOccupancy(
          context.space->byteIntervals(array, elements), options_.l2Geometry);
      for (std::size_t s = 0; s < sets; ++s) occ[s] += one[s];
    }
    occupancy_.push_back(std::move(occ));
  }
}

std::int64_t L2ContentionAwareScheduler::conflictBetween(ProcessId a,
                                                         ProcessId b) {
  check(a < occupancy_.size() && b < occupancy_.size(),
        "L2ContentionAwareScheduler: unknown process");
  const std::uint64_t key =
      static_cast<std::uint64_t>(std::min(a, b)) * occupancy_.size() +
      std::max(a, b);
  const auto it = conflictMemo_.find(key);
  if (it != conflictMemo_.end()) return it->second;
  std::int64_t conflicts = 0;
  const auto& occA = occupancy_[a];
  const auto& occB = occupancy_[b];
  for (std::size_t s = 0; s < occA.size(); ++s) {
    conflicts += occA[s] * occB[s];  // co-mapped line pairs in set s
  }
  conflictMemo_.emplace(key, conflicts);
  return conflicts;
}

void L2ContentionAwareScheduler::onReady(ProcessId process) {
  ready_.push_back(process);
}

std::optional<ProcessId> L2ContentionAwareScheduler::pickNext(
    std::size_t core, std::optional<ProcessId> previous) {
  check(core < runningOn_.size(), "L2ContentionAwareScheduler: unknown core");
  if (ready_.empty()) return std::nullopt;
  // Scoring in double is exact, hence platform-identical: every operand
  // is an integer count far below 2^53 (converted exactly), and with the
  // default conflictWeight of 1.0 every product and difference stays
  // integer-valued. A non-default weight keeps determinism as long as
  // each operation is a single correctly-rounded IEEE op, which it is —
  // the conflict counts are summed exactly in integers first, then
  // combined once by LocalityScore::contendedScore.
  std::size_t bestIdx = 0;
  double bestScore = 0.0;  // LINT-ALLOW(no-float): exact integer-valued score, see note above
  std::int64_t bestSeq = -1;
  bool haveBest = false;
  for (std::size_t i = 0; i < ready_.size(); ++i) {
    const ProcessId candidate = ready_[i];
    std::int64_t conflicts = 0;
    for (std::size_t c = 0; c < runningOn_.size(); ++c) {
      if (c == core || !runningOn_[c]) continue;
      conflicts += conflictBetween(candidate, *runningOn_[c]);
    }
    // LINT-ALLOW(no-float): exact integer-valued score, see note above
    const double score = LocalityScore::contendedScore(
        score_.sharing(previous, candidate), options_.conflictWeight,
        conflicts);
    const std::int64_t seq = aging_.seqOf(candidate);
    // Equal score: ArrivalAging decides (earliest arrival in open
    // workloads, plain ready-order FIFO in closed ones).
    const bool better =
        !haveBest || score > bestScore ||
        (score == bestScore && ArrivalAging::beatsTie(seq, bestSeq));
    if (better) {
      haveBest = true;
      bestScore = score;
      bestSeq = seq;
      bestIdx = i;
    }
  }
  const ProcessId chosen = ready_[bestIdx];
  ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(bestIdx));
  runningOn_[core] = chosen;
  return chosen;
}

void L2ContentionAwareScheduler::stopRunning(ProcessId process) {
  for (auto& slot : runningOn_) {
    if (slot == std::optional<ProcessId>{process}) slot.reset();
  }
}

void L2ContentionAwareScheduler::onPreempt(ProcessId process) {
  stopRunning(process);
  onReady(process);
}

void L2ContentionAwareScheduler::onComplete(ProcessId process) {
  stopRunning(process);
}

void L2ContentionAwareScheduler::onArrival(ProcessId process) {
  aging_.stamp(process);
}

void L2ContentionAwareScheduler::onExit(ProcessId process) {
  // A retired process may have been running (no onComplete fires for a
  // retirement): it stops occupying the shared L2 either way. Drop any
  // stale ready entry too.
  stopRunning(process);
  const auto it = std::find(ready_.begin(), ready_.end(), process);
  if (it != ready_.end()) ready_.erase(it);
}

}  // namespace laps

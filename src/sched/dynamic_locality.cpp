#include "sched/dynamic_locality.h"

#include <algorithm>

#include "util/error.h"

namespace laps {

void DynamicLocalityScheduler::reset(const SchedContext& context) {
  check(context.sharing != nullptr, "DynamicLocalityScheduler: sharing required");
  sharing_ = context.sharing;
  ready_.clear();
}

void DynamicLocalityScheduler::onReady(ProcessId process) {
  ready_.push_back(process);
}

std::optional<ProcessId> DynamicLocalityScheduler::pickNext(
    std::size_t /*core*/, std::optional<ProcessId> previous) {
  if (ready_.empty()) return std::nullopt;
  std::size_t bestIdx = 0;
  if (previous) {
    std::int64_t bestSharing = -1;
    for (std::size_t i = 0; i < ready_.size(); ++i) {
      const std::int64_t s = sharing_->at(*previous, ready_[i]);
      // Ties fall to the earliest-ready (FIFO) process.
      if (s > bestSharing) {
        bestSharing = s;
        bestIdx = i;
      }
    }
  }
  const ProcessId chosen = ready_[bestIdx];
  ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(bestIdx));
  return chosen;
}

}  // namespace laps

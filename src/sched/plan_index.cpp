#include "sched/plan_index.h"

#include <algorithm>

#include "util/audit.h"
#include "util/error.h"

namespace laps {

namespace {

/// Max-heap order: key descending, id ascending on equal keys — the
/// heap top is the order-independent form of the legacy ascending scan
/// with strict `>` (smallest id among the maximal keys).
struct HeapBelow {
  bool operator()(const PlanIndex::HeapEntry& a,
                  const PlanIndex::HeapEntry& b) const {
    if (a.key != b.key) return a.key < b.key;
    return a.id > b.id;
  }
};

}  // namespace

void PlanIndex::reset(const SharingMatrix& sharing, std::size_t n,
                      std::size_t coreCount) {
  check(coreCount >= 1, "PlanIndex: need at least one core");
  check(sharing.size() == n, "PlanIndex: sharing matrix size mismatch");
  sharing_ = &sharing;
  version_.assign(n, 0);
  ready_.assign(n, false);
  readyList_.clear();
  readyCount_ = 0;
  readyGen_ = 0;
  heaps_.assign(coreCount, CoreHeap{});
  popCount_ = 0;
  score_ = nullptr;
  home_.assign(n, -1);
}

void PlanIndex::enableDistance(const LocalityScore* score) {
  score_ = score;
  // Keys may change meaning wholesale: force every heap to rebuild.
  ++readyGen_;
}

void PlanIndex::setHome(ProcessId process, std::optional<std::size_t> home) {
  check(process < home_.size(), "PlanIndex::setHome: unknown process");
  const std::int32_t next =
      home ? static_cast<std::int32_t>(*home) : std::int32_t{-1};
  if (home_[process] == next) return;
  home_[process] = next;
  // Distance-blind keys ignore homes — skip the (cache-thrashing)
  // invalidation entirely so the pre-NoC hot path is untouched.
  if (score_ == nullptr || !score_->distanceAware()) return;
  invalidateProcess(process);
}

std::optional<std::size_t> PlanIndex::homeOf(ProcessId process) const {
  check(process < home_.size(), "PlanIndex::homeOf: unknown process");
  if (home_[process] < 0) return std::nullopt;
  return static_cast<std::size_t>(home_[process]);
}

std::int64_t PlanIndex::keyFor(std::size_t core, ProcessId q,
                               const std::int64_t* row) const {
  const std::int64_t sharingTerm = row ? row[q] : 0;
  if (score_ == nullptr || !score_->distanceAware()) return sharingTerm;
  std::optional<std::size_t> home;
  if (home_[q] >= 0) home = static_cast<std::size_t>(home_[q]);
  return score_->key(sharingTerm, core, home);
}

void PlanIndex::beginPlanner(const ExtendedProcessGraph& graph,
                             const SharingMatrix& sharing,
                             std::size_t coreCount,
                             const std::vector<bool>& pending) {
  const std::size_t n = graph.processCount();
  check(pending.size() == n,
        "PlanIndex::beginPlanner: pending mask size mismatch");
  reset(sharing, n, coreCount);
  graph_ = &graph;
  pending_ = pending;
  indegree_.assign(n, 0);
  // Cached indegrees: a pending process waits only on pending
  // predecessors (a subset member not yet placed); predecessors outside
  // the subset — or already placed — are satisfied. This is the
  // schedulable() predicate of the legacy planner, evaluated once.
  for (ProcessId q = 0; q < n; ++q) {
    if (!pending_[q]) continue;
    std::uint32_t degree = 0;
    for (const ProcessId pred : graph.predecessors(q)) {
      if (pending_[pred]) ++degree;
    }
    indegree_[q] = degree;
    if (degree == 0) markReady(q);
  }
}

void PlanIndex::beginDispatch(const SharingMatrix& sharing, std::size_t n,
                              std::size_t coreCount) {
  reset(sharing, n, coreCount);
  graph_ = nullptr;
  pending_.clear();
  indegree_.clear();
}

void PlanIndex::markReady(ProcessId process) {
  check(process < ready_.size(), "PlanIndex::markReady: unknown process");
  if (ready_[process]) return;
  ready_[process] = true;
  ++readyCount_;
  readyList_.push_back(process);
}

void PlanIndex::markUnready(ProcessId process) {
  check(process < ready_.size(), "PlanIndex::markUnready: unknown process");
  if (!ready_[process]) return;
  ready_[process] = false;
  --readyCount_;
  ++version_[process];  // stale every heap entry for it
  if (readyList_.size() > 2 * readyCount_ + 64) compactReadyList();
}

bool PlanIndex::isReady(ProcessId process) const {
  check(process < ready_.size(), "PlanIndex::isReady: unknown process");
  return ready_[process];
}

void PlanIndex::invalidateProcess(ProcessId process) {
  check(process < version_.size(),
        "PlanIndex::invalidateProcess: unknown process");
  ++version_[process];
  // Heaps anchored on it notice via the anchorVersion check and
  // rebuild; its own entries (if it is ready) go stale, so re-announce
  // it on the ready list with the new tag for the sync path to absorb.
  if (ready_[process]) readyList_.push_back(process);
}

void PlanIndex::compactReadyList() {
  std::erase_if(readyList_,
                [&](ProcessId p) { return !ready_[p]; });
  ++readyGen_;  // heaps built against the old list must fully rebuild
}

void PlanIndex::rebuildHeap(CoreHeap& heap, std::size_t core,
                            ProcessId anchor) {
  const std::span<const std::int64_t> row = sharing_->row(anchor);
  heap.entries.clear();
  heap.entries.reserve(readyCount_);
  for (const ProcessId q : readyList_) {
    if (!ready_[q]) continue;
    heap.entries.push_back(HeapEntry{keyFor(core, q, row.data()), q,
                                     version_[q]});
  }
  std::make_heap(heap.entries.begin(), heap.entries.end(), HeapBelow{});
  heap.valid = true;
  heap.anchor = anchor;
  heap.anchorVersion = version_[anchor];
  heap.readyGen = readyGen_;
  heap.syncedTo = readyList_.size();
}

void PlanIndex::syncHeap(CoreHeap& heap, std::size_t core, ProcessId anchor) {
  if (heap.syncedTo == readyList_.size()) return;
  const std::span<const std::int64_t> row = sharing_->row(anchor);
  for (std::size_t i = heap.syncedTo; i < readyList_.size(); ++i) {
    const ProcessId q = readyList_[i];
    if (!ready_[q]) continue;
    heap.entries.push_back(HeapEntry{keyFor(core, q, row.data()), q,
                                     version_[q]});
    std::push_heap(heap.entries.begin(), heap.entries.end(), HeapBelow{});
  }
  heap.syncedTo = readyList_.size();
}

std::optional<PlanIndex::HeapEntry> PlanIndex::rescanBest(
    std::size_t core, std::optional<ProcessId> anchor) const {
  std::optional<HeapEntry> best;
  const std::int64_t* row = nullptr;
  if (anchor) row = sharing_->row(*anchor).data();
  for (const ProcessId q : readyList_) {
    if (!ready_[q]) continue;
    const std::int64_t s = keyFor(core, q, row);
    if (!best || s > best->key || (s == best->key && q < best->id)) {
      best = HeapEntry{s, q, version_[q]};
    }
  }
  return best;
}

std::optional<PlanIndex::HeapEntry> PlanIndex::peekBest(
    std::size_t core, std::optional<ProcessId> anchor) {
  check(core < heaps_.size(), "PlanIndex: unknown core");
  if (readyCount_ == 0) return std::nullopt;
  if (!anchor) {
    // Anchorless pick: distance-blind, every key is 0 and the argmax
    // degenerates to the smallest ready id; distance-aware, keys are
    // pure hop penalties and the nearest home wins. Either way a linear
    // rescan — no heap to maintain for a cold core.
    return rescanBest(core, std::nullopt);
  }
  CoreHeap& heap = heaps_[core];
  if (!heap.valid || heap.anchor != anchor ||
      heap.readyGen != readyGen_ ||
      heap.anchorVersion != version_[*anchor]) {
    rebuildHeap(heap, core, *anchor);
  } else {
    syncHeap(heap, core, *anchor);
  }
  while (!heap.entries.empty()) {
    const HeapEntry& top = heap.entries.front();
    if (top.version == version_[top.id]) return top;
    std::pop_heap(heap.entries.begin(), heap.entries.end(), HeapBelow{});
    heap.entries.pop_back();  // stale: superseded or unreadied
  }
  return std::nullopt;
}

std::optional<ProcessId> PlanIndex::popBest(std::size_t core,
                                            std::optional<ProcessId> anchor) {
  const std::optional<HeapEntry> best = peekBest(core, anchor);
  if (!best) return std::nullopt;
  ++popCount_;
  LAPS_AUDIT(if (popCount_ % kAuditSampleEvery == 1) {
    auditTopAgreement(core, anchor);
  });
  const ProcessId id = best->id;
  markUnready(id);
  return id;
}

void PlanIndex::place(ProcessId process) {
  check(graph_ != nullptr, "PlanIndex::place: not in planner mode");
  check(process < pending_.size(), "PlanIndex::place: unknown process");
  pending_[process] = false;
  for (const ProcessId succ : graph_->successors(process)) {
    if (!pending_[succ]) continue;
    check(indegree_[succ] > 0, "PlanIndex::place: indegree accounting");
    if (--indegree_[succ] == 0) markReady(succ);
  }
}

void PlanIndex::auditTopAgreement(std::size_t core,
                                  std::optional<ProcessId> anchor) {
  const std::optional<HeapEntry> top = peekBest(core, anchor);
  const std::optional<HeapEntry> oracle = rescanBest(core, anchor);
  audit::require(top.has_value() == oracle.has_value(),
                 "plan index: heap top exists iff the rescan finds a "
                 "ready candidate");
  if (!top) return;
  audit::require(top->id == oracle->id,
                 "plan index: heap top disagrees with the linear rescan "
                 "argmax");
  audit::require(top->key == oracle->key,
                 "plan index: cached heap key drifted from the live "
                 "sharing row");
}

void PlanIndex::corruptKeyForTest(std::size_t core, ProcessId process,
                                  std::int64_t key) {
  check(core < heaps_.size(), "PlanIndex::corruptKeyForTest: unknown core");
  CoreHeap& heap = heaps_[core];
  check(heap.valid, "PlanIndex::corruptKeyForTest: heap not built");
  bool found = false;
  for (HeapEntry& entry : heap.entries) {
    if (entry.id == process && entry.version == version_[process]) {
      entry.key = key;
      found = true;
    }
  }
  check(found, "PlanIndex::corruptKeyForTest: no live entry for process");
  std::make_heap(heap.entries.begin(), heap.entries.end(), HeapBelow{});
}

}  // namespace laps

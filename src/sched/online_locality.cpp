#include "sched/online_locality.h"

#include <algorithm>

#include "util/error.h"

namespace laps {

void OnlineLocalityOptions::validate() const {
  check(rebuildThreshold >= 0,
        "OnlineLocalityOptions: rebuildThreshold must be >= 0");
  check(hopWeight >= 0, "OnlineLocalityOptions: hopWeight must be >= 0");
  // The legacy loops are the distance-blind differential oracle; they
  // never learned hop arithmetic and never will.
  check(hopWeight == 0 || indexedPlanner,
        "OnlineLocalityOptions: hopWeight requires the indexed planner");
  check(quantumCycles >= 0,
        "OnlineLocalityOptions: quantumCycles must be >= 0");
  balancer.validate();
}

OnlineLocalityScheduler::OnlineLocalityScheduler(OnlineLocalityOptions options)
    : options_(options) {
  options_.validate();
}

void OnlineLocalityScheduler::reset(const SchedContext& context) {
  check(context.graph != nullptr && context.sharing != nullptr,
        "OnlineLocalityScheduler: context incomplete");
  check(context.coreCount >= 1,
        "OnlineLocalityScheduler: need at least one core");
  graph_ = context.graph;
  sharing_ = context.sharing;
  coreCount_ = context.coreCount;
  const std::size_t n = graph_->processCount();

  // Closed-workload assumption until the first arrival proves otherwise:
  // plan over the full process set, exactly like LocalityScheduler.
  // In open mode this build is discarded at cohort 0's onArrival —
  // accepted cost: plan() is documented (and differentially tested) to
  // equal the static LS plan right after reset(), so the build cannot
  // be deferred to first dispatch without breaking that contract.
  // Distance-aware iff the user asked (hopWeight > 0) AND the platform
  // has a topology; configure() zeroes the weight otherwise, so every
  // downstream gate reads score_.distanceAware().
  score_.configure(sharing_, context.topology, options_.hopWeight);

  LocalityOptions lsOptions;
  lsOptions.initialMinSharingRound = options_.initialMinSharingRound;
  if (score_.distanceAware()) lsOptions.topology = score_.topology();

  open_ = false;
  arrived_.assign(n, false);
  exited_.assign(n, false);
  dispatched_.assign(n, false);
  anchor_.assign(coreCount_, std::nullopt);
  coreDown_.assign(coreCount_, false);
  downCount_ = 0;
  seqCounter_ = 0;
  planned_.assign(n, std::nullopt);
  // Stale queues from a previous reset must not leak into adoptPlan's
  // slot clearing (their entries may reference a different universe).
  queues_.clear();
  if (indexed()) {
    // Index first: adoptPlan's pushPlanned records distance homes in
    // the index, which must already cover this process universe.
    index_.beginDispatch(*sharing_, n, coreCount_);
    index_.enableDistance(&score_);
    adoptPlan(buildLocalityPlan(*graph_, *sharing_, coreCount_, lsOptions));
    ready_.clear();
  } else {
    plan_ = buildLocalityPlanLegacy(*graph_, *sharing_, coreCount_,
                                    lsOptions);
    planDirty_ = false;
    queues_.clear();
    deadCount_.clear();
    ready_.assign(n, false);
  }
  readyCount_ = 0;
  patchesSinceRebuild_ = 0;
  rebuilds_ = 0;
  events_ = 0;
  stats_ = PolicyStats{};
}

bool OnlineLocalityScheduler::live(ProcessId process) const {
  return (!open_ || arrived_[process]) && !exited_[process];
}

bool OnlineLocalityScheduler::consumePatchBudget() {
  if (options_.rebuildThreshold == 0) return true;
  if (++patchesSinceRebuild_ > options_.rebuildThreshold) return true;
  return false;
}

// --- Tombstone-queue primitives (indexed representation) -------------

bool OnlineLocalityScheduler::aliveEntry(std::size_t core,
                                         const PlanEntry& entry) const {
  const std::optional<PlanSlot>& slot = planned_[entry.process];
  return slot && slot->core == core && slot->seq == entry.seq;
}

void OnlineLocalityScheduler::pushPlanned(std::size_t core,
                                          ProcessId process) {
  check(!planned_[process],
        "OnlineLocalityScheduler: process planned twice");
  ++seqCounter_;
  queues_[core].push_back(PlanEntry{process, seqCounter_});
  planned_[process] = PlanSlot{core, seqCounter_};
  planDirty_ = true;
}

void OnlineLocalityScheduler::unplan(ProcessId process) {
  if (!planned_[process]) return;
  const std::size_t core = planned_[process]->core;
  planned_[process] = std::nullopt;
  ++deadCount_[core];
  maybeCompact(core);
  planDirty_ = true;
}

void OnlineLocalityScheduler::dropTrailingDead(std::size_t core) {
  auto& queue = queues_[core];
  while (!queue.empty() && !aliveEntry(core, queue.back())) {
    queue.pop_back();
    if (deadCount_[core] > 0) --deadCount_[core];
  }
}

void OnlineLocalityScheduler::maybeCompact(std::size_t core) {
  auto& queue = queues_[core];
  if (queue.size() <= 16 || 2 * deadCount_[core] <= queue.size()) return;
  std::erase_if(queue, [&](const PlanEntry& entry) {
    return !aliveEntry(core, entry);
  });
  deadCount_[core] = 0;
}

void OnlineLocalityScheduler::adoptPlan(LocalityPlan&& fresh) {
  plan_ = std::move(fresh);
  planDirty_ = false;
  // Clear only the slots the outgoing queues still hold — O(entries)
  // per rebuild, not O(n) (at |T| in the thousands with a small live
  // window, the O(n) fill would dominate the rebuild).
  for (std::size_t c = 0; c < queues_.size(); ++c) {
    for (const PlanEntry& entry : queues_[c]) {
      if (aliveEntry(c, entry)) planned_[entry.process] = std::nullopt;
    }
  }
  queues_.assign(coreCount_, {});
  deadCount_.assign(coreCount_, 0);
  for (std::size_t c = 0; c < plan_.perCore.size(); ++c) {
    for (const ProcessId p : plan_.perCore[c]) pushPlanned(c, p);
  }
  planDirty_ = false;  // plan_ is exactly the adopted queues
}

const LocalityPlan& OnlineLocalityScheduler::plan() const {
  if (indexed() && planDirty_) {
    plan_.perCore.assign(coreCount_, {});
    for (std::size_t c = 0; c < coreCount_; ++c) {
      for (const PlanEntry& entry : queues_[c]) {
        if (aliveEntry(c, entry)) plan_.perCore[c].push_back(entry.process);
      }
    }
    planDirty_ = false;
  }
  return plan_;
}

// --- Replanning ------------------------------------------------------

void OnlineLocalityScheduler::rebuild() {
  // The plan covers pending work only: dispatched (running) processes
  // keep their core and are excluded from the rebuild.
  std::vector<ProcessId> liveSet;
  for (ProcessId p = 0; p < exited_.size(); ++p) {
    if (live(p) && !dispatched_[p]) liveSet.push_back(p);
  }
  LocalityPlan fresh;
  if (liveSet.empty()) {
    // An empty subset span would mean "everything"; an empty live set
    // means an empty plan.
    fresh.perCore.resize(coreCount_);
  } else {
    LocalityOptions lsOptions;
    lsOptions.initialMinSharingRound = options_.initialMinSharingRound;
    if (score_.distanceAware()) lsOptions.topology = score_.topology();
    fresh = indexed()
                ? buildLocalityPlan(*graph_, *sharing_, coreCount_,
                                    lsOptions, liveSet)
                : buildLocalityPlanLegacy(*graph_, *sharing_, coreCount_,
                                          lsOptions, liveSet);
  }
  if (indexed()) {
    adoptPlan(std::move(fresh));
  } else {
    plan_ = std::move(fresh);
  }
  // buildLocalityPlan places over the full core set; work it put on a
  // down core is orphaned right back to the up cores.
  if (downCount_ > 0 && downCount_ < coreCount_) {
    for (std::size_t c = 0; c < coreCount_; ++c) {
      if (coreDown_[c]) evacuateCore(c);
    }
  }
  patchesSinceRebuild_ = 0;
  ++rebuilds_;
}

void OnlineLocalityScheduler::patchArrival(ProcessId process) {
  // Fig. 3's greedy append, applied to one process: the core whose most
  // recently planned — or, when its plan ran dry, last dispatched —
  // process shares the most data with it (an idle-and-empty core scores
  // 0; ties fall to the lowest core index). Down cores are skipped —
  // unless every core is down, in which case the work parks anywhere
  // (dispatch is gated by the engine, not the plan).
  const bool skipDown = downCount_ > 0 && downCount_ < coreCount_;
  std::size_t bestCore = 0;
  std::int64_t bestSharing = -1;
  if (indexed()) {
    // The legacy scan lifted through LocalityScore::key: distance-blind
    // the key is the raw sharing term — exactly the loop below — while
    // on NoC platforms each core's term is discounted by its hops from
    // the process's home (the core it last ran on, where its warm state
    // sits; a never-ran process has none and pays no penalty anywhere —
    // its first dispatch charges no migration). Sharing still dominates;
    // among comparable cores the patch lands the process close to its
    // warm tile, which is precisely the distance the migration penalty
    // charges at resume.
    const std::optional<std::size_t> home =
        score_.distanceAware() ? index_.homeOf(process) : std::nullopt;
    bool have = false;
    for (std::size_t c = 0; c < coreCount_; ++c) {
      if (skipDown && coreDown_[c]) continue;
      dropTrailingDead(c);
      std::int64_t s = 0;
      if (!queues_[c].empty()) {
        s = sharing_->at(queues_[c].back().process, process);
      } else if (anchor_[c]) {
        s = sharing_->at(*anchor_[c], process);
      }
      const std::int64_t key = score_.key(s, c, home);
      if (!have || key > bestSharing) {
        have = true;
        bestSharing = key;
        bestCore = c;
      }
    }
    pushPlanned(bestCore, process);
    return;
  }
  for (std::size_t c = 0; c < plan_.perCore.size(); ++c) {
    if (skipDown && coreDown_[c]) continue;
    std::int64_t s = 0;
    if (!plan_.perCore[c].empty()) {
      s = sharing_->at(plan_.perCore[c].back(), process);
    } else if (anchor_[c]) {
      s = sharing_->at(*anchor_[c], process);
    }
    if (s > bestSharing) {
      bestSharing = s;
      bestCore = c;
    }
  }
  plan_.perCore[bestCore].push_back(process);
}

void OnlineLocalityScheduler::patchExit(ProcessId process) {
  if (indexed()) {
    unplan(process);
    return;
  }
  for (auto& order : plan_.perCore) {
    const auto it = std::find(order.begin(), order.end(), process);
    if (it != order.end()) {
      order.erase(it);
      return;
    }
  }
}

void OnlineLocalityScheduler::maybeBalance() {
  if (!options_.balancer.enabled) return;
  // planBalanceMoves simulates against a materialized snapshot; the
  // apply loop below replays its pops and pushes in planning order, so
  // each move's source tail is exactly the process the plan named. With
  // cores down, the mask keeps moves inside the up set (an empty mask
  // is the exact fault-free behavior).
  std::vector<bool> upMask;
  if (downCount_ > 0) {
    upMask.resize(coreCount_);
    for (std::size_t c = 0; c < coreCount_; ++c) upMask[c] = !coreDown_[c];
  }
  const std::vector<std::vector<ProcessId>>& snapshot = plan().perCore;
  const std::vector<BalanceMove> moves = planBalanceMoves(
      snapshot, *sharing_, anchor_, options_.balancer, upMask, &score_);
  for (const BalanceMove& move : moves) {
    if (indexed()) {
      unplan(move.process);
      pushPlanned(move.to, move.process);
    } else {
      auto& source = plan_.perCore[move.from];
      check(!source.empty() && source.back() == move.process,
            "OnlineLocalityScheduler: balance move does not match the "
            "source queue tail");
      source.pop_back();
      plan_.perCore[move.to].push_back(move.process);
    }
  }
  stats_.offloads += moves.size();
}

void OnlineLocalityScheduler::evacuateCore(std::size_t core) {
  // Orphan the core's pending queue...
  std::vector<ProcessId> orphans;
  if (indexed()) {
    for (const PlanEntry& entry : queues_[core]) {
      if (aliveEntry(core, entry)) orphans.push_back(entry.process);
    }
    if (!queues_[core].empty()) {
      for (const ProcessId p : orphans) planned_[p] = std::nullopt;
      queues_[core].clear();
      deadCount_[core] = 0;
      planDirty_ = true;
    }
  } else {
    orphans = std::move(plan_.perCore[core]);
    plan_.perCore[core].clear();
  }
  if (orphans.empty()) return;
  // ...and re-home every orphan onto the best-sharing up core (pure
  // planning in load_balancer.h; the apply loop mirrors maybeBalance's).
  std::vector<bool> upMask(coreCount_);
  for (std::size_t c = 0; c < coreCount_; ++c) upMask[c] = !coreDown_[c];
  const std::vector<std::size_t> targets = planOrphanReassignment(
      orphans, plan().perCore, *sharing_, anchor_, upMask);
  for (std::size_t i = 0; i < orphans.size(); ++i) {
    if (indexed()) {
      pushPlanned(targets[i], orphans[i]);
    } else {
      plan_.perCore[targets[i]].push_back(orphans[i]);
    }
  }
  stats_.offloads += orphans.size();
}

// --- Engine events ---------------------------------------------------

void OnlineLocalityScheduler::onCoreDown(std::size_t core) {
  check(core < coreCount_, "OnlineLocalityScheduler: unknown core");
  if (coreDown_[core]) return;
  coreDown_[core] = true;
  ++downCount_;
  // The caches the core warmed are gone (it recovers cold, if ever), so
  // its dispatch anchor is meaningless from here on.
  anchor_[core].reset();
  evacuateCore(core);
}

void OnlineLocalityScheduler::onCoreUp(std::size_t core) {
  check(core < coreCount_, "OnlineLocalityScheduler: unknown core");
  if (!coreDown_[core]) return;
  coreDown_[core] = false;
  --downCount_;
  // Nothing to replan eagerly: the recovered core starts by stealing
  // (it has no anchor and an empty queue) and wins arrival patches
  // again from here on.
}

void OnlineLocalityScheduler::onArrival(ProcessId process) {
  check(process < exited_.size(), "OnlineLocalityScheduler: unknown process");
  if (!open_) {
    // First arrival: this is an open workload after all. The reset-time
    // plan assumed everybody was resident — drop it and plan over what
    // has actually arrived.
    open_ = true;
    LocalityPlan empty;
    empty.perCore.resize(coreCount_);
    if (indexed()) {
      adoptPlan(std::move(empty));
    } else {
      plan_ = std::move(empty);
    }
    patchesSinceRebuild_ = 0;
  }
  // A crashed process re-enters as a fresh arrival after its onExit
  // (fault injection; see scheduler.h) — the one legal exit-then-
  // arrival of the same id.
  const bool reentry = arrived_[process] && exited_[process];
  check(reentry || !arrived_[process],
        "OnlineLocalityScheduler: process arrived twice");
  arrived_[process] = true;
  exited_[process] = false;
  dispatched_[process] = false;
  if (reentry) {
    // The previous life's warm state died with the crashed core: the
    // retry starts cold, with no home until it runs again.
    if (score_.distanceAware()) index_.setHome(process, std::nullopt);
  }
  // The live sharing matrix gained this process's row and column just
  // before this event; cached keys involving it must not survive.
  if (indexed()) index_.invalidateProcess(process);
  ++events_;
  if (consumePatchBudget()) {
    rebuild();
  } else {
    patchArrival(process);
    ++stats_.patches;
  }
  maybeBalance();
}

void OnlineLocalityScheduler::onExit(ProcessId process) {
  check(process < exited_.size(), "OnlineLocalityScheduler: unknown process");
  if (exited_[process]) return;
  exited_[process] = true;
  if (indexed()) {
    // Defensive: an exit may race a stale readiness.
    if (index_.isReady(process)) index_.markUnready(process);
  } else if (ready_[process]) {
    ready_[process] = false;
    --readyCount_;
  }
  if (!open_) return;  // closed workload: completions never replan
  // The live sharing matrix zeroes this process's row and column right
  // after this event; heaps anchored on it (it is typically some core's
  // previous pick) must rebuild before the next steal.
  if (indexed()) index_.invalidateProcess(process);
  ++events_;
  if (consumePatchBudget()) {
    rebuild();
  } else {
    patchExit(process);
    ++stats_.patches;
  }
  maybeBalance();
}

void OnlineLocalityScheduler::onReady(ProcessId process) {
  check(process < exited_.size(), "OnlineLocalityScheduler: unknown process");
  check(live(process), "OnlineLocalityScheduler: ready process not live");
  if (indexed()) {
    index_.markReady(process);
    return;
  }
  if (!ready_[process]) {
    ready_[process] = true;
    ++readyCount_;
  }
}

void OnlineLocalityScheduler::onPreempt(ProcessId process) {
  check(process < exited_.size(), "OnlineLocalityScheduler: unknown process");
  // A suspended process is pending again: plan it back onto a core so
  // plan-guided dispatch (not just the steal fallback) can resume it.
  if (dispatched_[process]) {
    dispatched_[process] = false;
    patchArrival(process);
  }
  onReady(process);
}

std::optional<ProcessId> OnlineLocalityScheduler::pickNext(
    std::size_t core, std::optional<ProcessId> previous) {
  check(core < coreCount_, "OnlineLocalityScheduler: unknown core");
  // The engine never offers a down core work (audited there); the guard
  // keeps direct policy harnesses honest too.
  if (coreDown_[core]) return std::nullopt;

  if (indexed()) {
    if (index_.readyCount() == 0) return std::nullopt;

    const auto take = [&](ProcessId p) {
      dispatched_[p] = true;
      // The process runs — and warms up — here: its distance home is
      // this core until it runs somewhere else.
      if (score_.distanceAware()) index_.setHome(p, core);
      anchor_[core] = p;
      ++stats_.decisions;
      return p;
    };

    // Plan-guided dispatch: the first *alive* entry in this core's
    // queue whose process is ready (skipping tombstones and entries
    // whose dependences are still pending — work conservation beats
    // rigid plan order).
    const auto& queue = queues_[core];
    for (std::size_t i = 0; i < queue.size(); ++i) {
      if (!aliveEntry(core, queue[i])) continue;
      const ProcessId planned = queue[i].process;
      if (!index_.isReady(planned)) continue;
      unplan(planned);
      index_.markUnready(planned);
      return take(planned);
    }

    // Steal fallback: LS's online rule from the index's lazy heap
    // (maximum sharing with the process this core ran last; an exited
    // previous process has a zeroed row, so the rule degrades to
    // smallest-id). The stolen process leaves whichever plan held it.
    const std::optional<ProcessId> best = index_.popBest(core, previous);
    if (!best) return std::nullopt;
    unplan(*best);
    ++stats_.steals;
    return take(*best);
  }

  if (readyCount_ == 0) return std::nullopt;

  const auto take = [&](ProcessId p) {
    ready_[p] = false;
    dispatched_[p] = true;
    anchor_[core] = p;
    --readyCount_;
    ++stats_.decisions;
    return p;
  };

  // Plan-guided dispatch: the first ready process remaining in this
  // core's plan (skipping entries whose dependences are still pending —
  // work conservation beats rigid plan order).
  auto& order = plan_.perCore[core];
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (ready_[order[i]]) {
      const ProcessId planned = order[i];
      order.erase(order.begin() + static_cast<std::ptrdiff_t>(i));
      return take(planned);
    }
  }

  // Steal fallback: LS's online rule (pickMaxSharing — maximize sharing
  // with the process this core ran last). An exited previous process
  // has a zeroed row in the live sharing matrix, so the rule degrades
  // to smallest-id — the cache it warmed is still there, but nobody
  // left shares with it.
  const std::optional<ProcessId> best =
      pickMaxSharing(ready_, *sharing_, previous);
  if (!best) return std::nullopt;
  // The stolen process leaves whichever plan held it.
  patchExit(*best);
  ++stats_.steals;
  return take(*best);
}

PolicyStats OnlineLocalityScheduler::stats() const {
  PolicyStats out = stats_;
  out.rebuilds = rebuilds_;
  return out;
}

}  // namespace laps

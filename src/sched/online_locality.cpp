#include "sched/online_locality.h"

#include <algorithm>

#include "util/error.h"

namespace laps {

void OnlineLocalityOptions::validate() const {
  check(rebuildThreshold >= 0,
        "OnlineLocalityOptions: rebuildThreshold must be >= 0");
}

OnlineLocalityScheduler::OnlineLocalityScheduler(OnlineLocalityOptions options)
    : options_(options) {
  options_.validate();
}

void OnlineLocalityScheduler::reset(const SchedContext& context) {
  check(context.graph != nullptr && context.sharing != nullptr,
        "OnlineLocalityScheduler: context incomplete");
  check(context.coreCount >= 1,
        "OnlineLocalityScheduler: need at least one core");
  graph_ = context.graph;
  sharing_ = context.sharing;
  coreCount_ = context.coreCount;
  const std::size_t n = graph_->processCount();

  // Closed-workload assumption until the first arrival proves otherwise:
  // plan over the full process set, exactly like LocalityScheduler.
  // In open mode this build is discarded at cohort 0's onArrival —
  // accepted cost: plan() is documented (and differentially tested) to
  // equal the static LS plan right after reset(), so the build cannot
  // be deferred to first dispatch without breaking that contract.
  LocalityOptions lsOptions;
  lsOptions.initialMinSharingRound = options_.initialMinSharingRound;
  plan_ = buildLocalityPlan(*graph_, *sharing_, coreCount_, lsOptions);

  open_ = false;
  arrived_.assign(n, false);
  exited_.assign(n, false);
  ready_.assign(n, false);
  dispatched_.assign(n, false);
  anchor_.assign(coreCount_, std::nullopt);
  readyCount_ = 0;
  patchesSinceRebuild_ = 0;
  rebuilds_ = 0;
  events_ = 0;
}

bool OnlineLocalityScheduler::live(ProcessId process) const {
  return (!open_ || arrived_[process]) && !exited_[process];
}

bool OnlineLocalityScheduler::consumePatchBudget() {
  if (options_.rebuildThreshold == 0) return true;
  if (++patchesSinceRebuild_ > options_.rebuildThreshold) return true;
  return false;
}

void OnlineLocalityScheduler::rebuild() {
  // The plan covers pending work only: dispatched (running) processes
  // keep their core and are excluded from the rebuild.
  std::vector<ProcessId> liveSet;
  for (ProcessId p = 0; p < exited_.size(); ++p) {
    if (live(p) && !dispatched_[p]) liveSet.push_back(p);
  }
  if (liveSet.empty()) {
    // An empty subset span would mean "everything"; an empty live set
    // means an empty plan.
    plan_ = LocalityPlan{};
    plan_.perCore.resize(coreCount_);
  } else {
    LocalityOptions lsOptions;
    lsOptions.initialMinSharingRound = options_.initialMinSharingRound;
    plan_ = buildLocalityPlan(*graph_, *sharing_, coreCount_, lsOptions,
                              liveSet);
  }
  patchesSinceRebuild_ = 0;
  ++rebuilds_;
}

void OnlineLocalityScheduler::patchArrival(ProcessId process) {
  // Fig. 3's greedy append, applied to one process: the core whose most
  // recently planned — or, when its plan ran dry, last dispatched —
  // process shares the most data with it (an idle-and-empty core scores
  // 0; ties fall to the lowest core index).
  std::size_t bestCore = 0;
  std::int64_t bestSharing = -1;
  for (std::size_t c = 0; c < plan_.perCore.size(); ++c) {
    std::int64_t s = 0;
    if (!plan_.perCore[c].empty()) {
      s = sharing_->at(plan_.perCore[c].back(), process);
    } else if (anchor_[c]) {
      s = sharing_->at(*anchor_[c], process);
    }
    if (s > bestSharing) {
      bestSharing = s;
      bestCore = c;
    }
  }
  plan_.perCore[bestCore].push_back(process);
}

void OnlineLocalityScheduler::patchExit(ProcessId process) {
  for (auto& order : plan_.perCore) {
    const auto it = std::find(order.begin(), order.end(), process);
    if (it != order.end()) {
      order.erase(it);
      return;
    }
  }
}

void OnlineLocalityScheduler::onArrival(ProcessId process) {
  check(process < exited_.size(), "OnlineLocalityScheduler: unknown process");
  if (!open_) {
    // First arrival: this is an open workload after all. The reset-time
    // plan assumed everybody was resident — drop it and plan over what
    // has actually arrived.
    open_ = true;
    plan_ = LocalityPlan{};
    plan_.perCore.resize(coreCount_);
    patchesSinceRebuild_ = 0;
  }
  check(!arrived_[process],
        "OnlineLocalityScheduler: process arrived twice");
  arrived_[process] = true;
  ++events_;
  if (consumePatchBudget()) {
    rebuild();
  } else {
    patchArrival(process);
  }
}

void OnlineLocalityScheduler::onExit(ProcessId process) {
  check(process < exited_.size(), "OnlineLocalityScheduler: unknown process");
  if (exited_[process]) return;
  exited_[process] = true;
  if (ready_[process]) {  // defensive: an exit may race a stale readiness
    ready_[process] = false;
    --readyCount_;
  }
  if (!open_) return;  // closed workload: completions never replan
  ++events_;
  if (consumePatchBudget()) {
    rebuild();
  } else {
    patchExit(process);
  }
}

void OnlineLocalityScheduler::onReady(ProcessId process) {
  check(process < ready_.size(), "OnlineLocalityScheduler: unknown process");
  check(live(process), "OnlineLocalityScheduler: ready process not live");
  if (!ready_[process]) {
    ready_[process] = true;
    ++readyCount_;
  }
}

void OnlineLocalityScheduler::onPreempt(ProcessId process) {
  check(process < ready_.size(), "OnlineLocalityScheduler: unknown process");
  // A suspended process is pending again: plan it back onto a core so
  // plan-guided dispatch (not just the steal fallback) can resume it.
  if (dispatched_[process]) {
    dispatched_[process] = false;
    patchArrival(process);
  }
  onReady(process);
}

std::optional<ProcessId> OnlineLocalityScheduler::pickNext(
    std::size_t core, std::optional<ProcessId> previous) {
  check(core < coreCount_, "OnlineLocalityScheduler: unknown core");
  if (readyCount_ == 0) return std::nullopt;

  const auto take = [&](ProcessId p) {
    ready_[p] = false;
    dispatched_[p] = true;
    anchor_[core] = p;
    --readyCount_;
    return p;
  };

  // Plan-guided dispatch: the first ready process remaining in this
  // core's plan (skipping entries whose dependences are still pending —
  // work conservation beats rigid plan order).
  auto& order = plan_.perCore[core];
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (ready_[order[i]]) {
      const ProcessId planned = order[i];
      order.erase(order.begin() + static_cast<std::ptrdiff_t>(i));
      return take(planned);
    }
  }

  // Steal fallback: LS's online rule (pickMaxSharing — maximize sharing
  // with the process this core ran last). An exited previous process
  // has a zeroed row in the live sharing matrix, so the rule degrades
  // to smallest-id — the cache it warmed is still there, but nobody
  // left shares with it.
  const std::optional<ProcessId> best =
      pickMaxSharing(ready_, *sharing_, previous);
  if (!best) return std::nullopt;
  // The stolen process leaves whichever plan held it.
  patchExit(*best);
  return take(*best);
}

}  // namespace laps

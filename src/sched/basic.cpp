#include "sched/basic.h"

#include <algorithm>

#include "util/error.h"

namespace laps {

// ---------------------------------------------------------------- Random

RandomScheduler::RandomScheduler(std::uint64_t seed)
    : seed_(seed), rng_(seed) {}

void RandomScheduler::reset(const SchedContext& /*context*/) {
  rng_ = Rng(seed_);
  ready_.clear();
}

void RandomScheduler::onReady(ProcessId process) {
  ready_.push_back(process);
}

std::optional<ProcessId> RandomScheduler::pickNext(
    std::size_t /*core*/, std::optional<ProcessId> /*previous*/) {
  if (ready_.empty()) return std::nullopt;
  const std::size_t pick = rng_.index(ready_.size());
  const ProcessId chosen = ready_[pick];
  ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(pick));
  return chosen;
}

// ------------------------------------------------------------ RoundRobin

RoundRobinScheduler::RoundRobinScheduler(std::int64_t quantumCycles)
    : quantum_(quantumCycles) {
  check(quantumCycles > 0, "RoundRobinScheduler: quantum must be positive");
}

void RoundRobinScheduler::reset(const SchedContext& /*context*/) {
  queue_.clear();
}

void RoundRobinScheduler::onReady(ProcessId process) {
  queue_.push_back(process);
}

void RoundRobinScheduler::onPreempt(ProcessId process) {
  queue_.push_back(process);  // tail of the common FIFO (paper §4)
}

std::optional<ProcessId> RoundRobinScheduler::pickNext(
    std::size_t /*core*/, std::optional<ProcessId> /*previous*/) {
  if (queue_.empty()) return std::nullopt;
  const ProcessId head = queue_.front();
  queue_.pop_front();
  return head;
}

// ------------------------------------------------------------------ FCFS

void FcfsScheduler::reset(const SchedContext& /*context*/) { queue_.clear(); }

void FcfsScheduler::onReady(ProcessId process) { queue_.push_back(process); }

std::optional<ProcessId> FcfsScheduler::pickNext(
    std::size_t /*core*/, std::optional<ProcessId> /*previous*/) {
  if (queue_.empty()) return std::nullopt;
  const ProcessId head = queue_.front();
  queue_.pop_front();
  return head;
}

// ------------------------------------------------------------------- SJF

void SjfScheduler::reset(const SchedContext& context) {
  check(context.graph != nullptr, "SjfScheduler: graph required");
  graph_ = context.graph;
  ready_.clear();
}

void SjfScheduler::onReady(ProcessId process) { ready_.push_back(process); }

std::optional<ProcessId> SjfScheduler::pickNext(
    std::size_t /*core*/, std::optional<ProcessId> /*previous*/) {
  if (ready_.empty()) return std::nullopt;
  const auto best = std::min_element(
      ready_.begin(), ready_.end(), [&](ProcessId a, ProcessId b) {
        const auto ca = graph_->process(a).estimatedCycles();
        const auto cb = graph_->process(b).estimatedCycles();
        return ca != cb ? ca < cb : a < b;
      });
  const ProcessId chosen = *best;
  ready_.erase(best);
  return chosen;
}

// ---------------------------------------------------------- CriticalPath

void CriticalPathScheduler::reset(const SchedContext& context) {
  check(context.graph != nullptr, "CriticalPathScheduler: graph required");
  rank_ = context.graph->criticalPathCycles();
  ready_.clear();
}

void CriticalPathScheduler::onReady(ProcessId process) {
  ready_.push_back(process);
}

std::optional<ProcessId> CriticalPathScheduler::pickNext(
    std::size_t /*core*/, std::optional<ProcessId> /*previous*/) {
  if (ready_.empty()) return std::nullopt;
  const auto best = std::max_element(
      ready_.begin(), ready_.end(), [&](ProcessId a, ProcessId b) {
        return rank_[a] != rank_[b] ? rank_[a] < rank_[b] : a > b;
      });
  const ProcessId chosen = *best;
  ready_.erase(best);
  return chosen;
}

}  // namespace laps

#include "sched/factory.h"

#include "sched/basic.h"
#include "sched/locality.h"
#include "util/error.h"

namespace laps {

namespace {

// Compile-time factory coverage: tags mirror makeScheduler's branches
// 1:1, so a SchedulerKind added to the enum and the catalogue without a
// constructor branch fails the static_assert below (and the switches
// themselves under -Wswitch) instead of reaching makeScheduler's
// unreachable fail() at run time.
constexpr int factoryBranchTag(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::Random: return 1;
    case SchedulerKind::RoundRobin: return 2;
    case SchedulerKind::Locality:
    case SchedulerKind::LocalityMapping: return 3;
    case SchedulerKind::Fcfs: return 4;
    case SchedulerKind::Sjf: return 5;
    case SchedulerKind::CriticalPath: return 6;
    case SchedulerKind::DynamicLocality: return 7;
    case SchedulerKind::L2ContentionAware: return 8;
    case SchedulerKind::OnlineLocality: return 9;
  }
  return 0;
}

constexpr bool factoryCoversCatalogue() {
  for (const SchedulerKind kind : kAllSchedulerKinds) {
    if (factoryBranchTag(kind) == 0) return false;
  }
  return true;
}

static_assert(factoryCoversCatalogue(),
              "makeScheduler lacks a constructor branch for a catalogued "
              "SchedulerKind");

}  // namespace

std::string to_string(SchedulerKind kind) {
  const std::string_view name = schedulerKindName(kind);
  check(!name.empty(), "to_string: unknown SchedulerKind");
  return std::string(name);
}

void validateSchedulerParams(SchedulerKind kind,
                             const SchedulerParams& params) {
  switch (kind) {
    case SchedulerKind::RoundRobin:
      check(params.rrsQuantumCycles > 0,
            "SchedulerParams: RRS quantum must be positive");
      break;
    case SchedulerKind::L2ContentionAware:
      params.l2Contention.validate();
      break;
    case SchedulerKind::OnlineLocality:
      params.onlineLocality.validate();
      break;
    default:
      break;  // the other policies consume no constrained parameter
  }
}

std::unique_ptr<SchedulerPolicy> makeScheduler(SchedulerKind kind,
                                               const SchedulerParams& params) {
  validateSchedulerParams(kind, params);
  switch (kind) {
    case SchedulerKind::Random:
      return std::make_unique<RandomScheduler>(params.randomSeed);
    case SchedulerKind::RoundRobin:
      return std::make_unique<RoundRobinScheduler>(params.rrsQuantumCycles);
    case SchedulerKind::Locality:
    case SchedulerKind::LocalityMapping: {
      LocalityOptions options;
      options.initialMinSharingRound = params.lsInitialMinSharingRound;
      return std::make_unique<LocalityScheduler>(options);
    }
    case SchedulerKind::Fcfs:
      return std::make_unique<FcfsScheduler>();
    case SchedulerKind::Sjf:
      return std::make_unique<SjfScheduler>();
    case SchedulerKind::CriticalPath:
      return std::make_unique<CriticalPathScheduler>();
    case SchedulerKind::DynamicLocality:
      return std::make_unique<DynamicLocalityScheduler>();
    case SchedulerKind::L2ContentionAware:
      return std::make_unique<L2ContentionAwareScheduler>(params.l2Contention);
    case SchedulerKind::OnlineLocality:
      // OLS carries its own initialMinSharingRound inside
      // OnlineLocalityOptions; lsInitialMinSharingRound stays LS/LSM-only.
      return std::make_unique<OnlineLocalityScheduler>(params.onlineLocality);
  }
  fail("makeScheduler: unknown SchedulerKind");
}

}  // namespace laps

#include "sched/factory.h"

#include "sched/basic.h"
#include "sched/locality.h"
#include "util/error.h"

namespace laps {

std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::Random: return "RS";
    case SchedulerKind::RoundRobin: return "RRS";
    case SchedulerKind::Locality: return "LS";
    case SchedulerKind::LocalityMapping: return "LSM";
    case SchedulerKind::Fcfs: return "FCFS";
    case SchedulerKind::Sjf: return "SJF";
    case SchedulerKind::CriticalPath: return "CPATH";
    case SchedulerKind::DynamicLocality: return "DLS";
    case SchedulerKind::L2ContentionAware: return "CALS";
    case SchedulerKind::OnlineLocality: return "OLS";
  }
  fail("to_string: unknown SchedulerKind");
}

void validateSchedulerParams(SchedulerKind kind,
                             const SchedulerParams& params) {
  switch (kind) {
    case SchedulerKind::RoundRobin:
      check(params.rrsQuantumCycles > 0,
            "SchedulerParams: RRS quantum must be positive");
      break;
    case SchedulerKind::L2ContentionAware:
      params.l2Contention.validate();
      break;
    case SchedulerKind::OnlineLocality:
      params.onlineLocality.validate();
      break;
    default:
      break;  // the other policies consume no constrained parameter
  }
}

std::unique_ptr<SchedulerPolicy> makeScheduler(SchedulerKind kind,
                                               const SchedulerParams& params) {
  validateSchedulerParams(kind, params);
  switch (kind) {
    case SchedulerKind::Random:
      return std::make_unique<RandomScheduler>(params.randomSeed);
    case SchedulerKind::RoundRobin:
      return std::make_unique<RoundRobinScheduler>(params.rrsQuantumCycles);
    case SchedulerKind::Locality:
    case SchedulerKind::LocalityMapping: {
      LocalityOptions options;
      options.initialMinSharingRound = params.lsInitialMinSharingRound;
      return std::make_unique<LocalityScheduler>(options);
    }
    case SchedulerKind::Fcfs:
      return std::make_unique<FcfsScheduler>();
    case SchedulerKind::Sjf:
      return std::make_unique<SjfScheduler>();
    case SchedulerKind::CriticalPath:
      return std::make_unique<CriticalPathScheduler>();
    case SchedulerKind::DynamicLocality:
      return std::make_unique<DynamicLocalityScheduler>();
    case SchedulerKind::L2ContentionAware:
      return std::make_unique<L2ContentionAwareScheduler>(params.l2Contention);
    case SchedulerKind::OnlineLocality:
      // OLS carries its own initialMinSharingRound inside
      // OnlineLocalityOptions; lsInitialMinSharingRound stays LS/LSM-only.
      return std::make_unique<OnlineLocalityScheduler>(params.onlineLocality);
  }
  fail("makeScheduler: unknown SchedulerKind");
}

}  // namespace laps

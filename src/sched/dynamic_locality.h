#pragma once
/// \file dynamic_locality.h
/// \brief Online greedy locality scheduling (extension).
///
/// The paper's LS builds a static plan before execution (paper §6 notes
/// an embedded-Linux implementation as future work). This policy is the
/// online analogue an OS would run: at every core-idle event it picks,
/// among the processes that are ready *right now*, the one sharing the
/// most data with whatever that core ran last. There is no initial
/// min-sharing round and no global plan, so it adapts to actual
/// completion order at the cost of a weaker global view — the ablation
/// bench quantifies the difference against static LS.

#include <vector>

#include "sched/scheduler.h"

namespace laps {

/// Online greedy locality policy (see file comment).
class DynamicLocalityScheduler final : public SchedulerPolicy {
 public:
  void reset(const SchedContext& context) override;
  void onReady(ProcessId process) override;
  std::optional<ProcessId> pickNext(std::size_t core,
                                    std::optional<ProcessId> previous) override;
  [[nodiscard]] std::string name() const override { return "DLS"; }

 private:
  const SharingMatrix* sharing_ = nullptr;
  std::vector<ProcessId> ready_;
};

}  // namespace laps

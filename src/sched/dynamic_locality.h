#pragma once
/// \file dynamic_locality.h
/// \brief Online greedy locality scheduling (extension).
///
/// The paper's LS builds a static plan before execution (paper §6 notes
/// an embedded-Linux implementation as future work). This policy is the
/// online analogue an OS would run: at every core-idle event it picks,
/// among the processes that are ready *right now*, the one sharing the
/// most data with whatever that core ran last. There is no initial
/// min-sharing round and no global plan, so it adapts to actual
/// completion order at the cost of a weaker global view — the ablation
/// bench quantifies the difference against static LS.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/config.h"
#include "sched/locality_score.h"
#include "sched/scheduler.h"
#include "util/error.h"

namespace laps {

/// Arrival stamps and the aging tie-break shared by the dynamic
/// policies (DLS, CALS): in open workloads, equal-score candidates fall
/// to the earliest-arrived process instead of plain ready order — a
/// preempted old process ages ahead of fresh arrivals nobody shares
/// with (starvation resistance under churn). In closed workloads no
/// arrival ever fires, every stamp stays unknown (-1), and beatsTie is
/// always false — the original FIFO tie-break, bit-identical.
class ArrivalAging {
 public:
  void reset(std::size_t processCount) {
    seq_.assign(processCount, -1);
    next_ = 0;
  }

  void stamp(ProcessId process) {
    check(process < seq_.size(), "ArrivalAging: unknown process");
    seq_[process] = next_++;
  }

  [[nodiscard]] std::int64_t seqOf(ProcessId process) const {
    return seq_[process];
  }

  /// True when, at equal score, the candidate stamped \p seq should
  /// displace the incumbent stamped \p bestSeq.
  [[nodiscard]] static bool beatsTie(std::int64_t seq, std::int64_t bestSeq) {
    return seq >= 0 && bestSeq >= 0 && seq < bestSeq;
  }

 private:
  std::vector<std::int64_t> seq_;  // -1 = unknown (closed mode)
  std::int64_t next_ = 0;
};

/// Online greedy locality policy (see file comment).
///
/// Open workloads: onArrival stamps the process for the ArrivalAging
/// tie-break (see above); onExit drops any stale queue entry for the
/// leaving process.
class DynamicLocalityScheduler final : public SchedulerPolicy {
 public:
  void reset(const SchedContext& context) override;
  void onReady(ProcessId process) override;
  void onArrival(ProcessId process) override;
  void onExit(ProcessId process) override;
  std::optional<ProcessId> pickNext(std::size_t core,
                                    std::optional<ProcessId> previous) override;
  [[nodiscard]] std::string name() const override { return "DLS"; }
  [[nodiscard]] const LocalityScore* localityScore() const override {
    return &score_;
  }

 private:
  std::vector<ProcessId> ready_;
  LocalityScore score_;  ///< the one scoring arithmetic (sharing term)
  ArrivalAging aging_;
};

/// Tunables of L2ContentionAwareScheduler.
struct L2ContentionOptions {
  /// Set space the conflict analysis indexes footprints into — the
  /// shared L2 viewed as one cache (SharedL2Config::aggregateConfig()).
  CacheConfig l2Geometry{256 * 1024, 8, 32, 8};
  /// Weight of a conflicting co-mapped line pair against one shared
  /// element when scoring a candidate (>= 0; 0 degenerates to DLS).
  /// The default 1.0 keeps every score exactly integer-valued (see the
  /// scoring note in dynamic_locality.cpp).
  // LINT-ALLOW(no-float): validated finite config knob; scoring stays exact, see pickNext
  double conflictWeight = 1.0;

  /// Throws laps::Error on a non-finite or negative weight or an
  /// inconsistent geometry. The single source of these constraints:
  /// both the scheduler's constructor and makeScheduler enforce it.
  void validate() const;
};

/// The contention-aware variant of DynamicLocalityScheduler: same online
/// greedy rule — maximize sharing with what this core ran last — minus a
/// penalty for conflicting in the *shared* L2 with the processes running
/// on the other cores right now. Two processes conflict to the degree
/// their footprints co-map into the same L2 sets (the per-process analogue
/// of layout/conflict.h's array matrix): co-scheduling them thrashes the
/// shared cache even though they share nothing, which is exactly the
/// regime the contention ablation (bench_ablation) measures.
///
/// Requires SchedContext::workload and ::space (footprints are indexed
/// through the live address layout, so LSM re-layouts shift the
/// conflict structure the policy sees).
class L2ContentionAwareScheduler final : public SchedulerPolicy {
 public:
  explicit L2ContentionAwareScheduler(L2ContentionOptions options = {});

  void reset(const SchedContext& context) override;
  void onReady(ProcessId process) override;
  std::optional<ProcessId> pickNext(std::size_t core,
                                    std::optional<ProcessId> previous) override;
  void onPreempt(ProcessId process) override;
  void onComplete(ProcessId process) override;
  void onArrival(ProcessId process) override;
  void onExit(ProcessId process) override;
  [[nodiscard]] std::string name() const override { return "CALS"; }

  /// Co-mapped L2 line pairs of two processes' footprints (exposed for
  /// tests; lazily computed and memoized).
  [[nodiscard]] std::int64_t conflictBetween(ProcessId a, ProcessId b);

  [[nodiscard]] const LocalityScore* localityScore() const override {
    return &score_;
  }

 private:
  void stopRunning(ProcessId process);

  L2ContentionOptions options_;
  LocalityScore score_;  ///< the one scoring arithmetic (sharing+conflict)
  std::vector<ProcessId> ready_;
  /// Per-process line occupancy of the L2 set space (n x numSets).
  std::vector<std::vector<std::int64_t>> occupancy_;
  /// Memoized pairwise conflict scores, keyed min(a,b) * n + max(a,b).
  /// Lookup-only: accessed exclusively through find/emplace on a
  /// symmetric key, never iterated, so hash order cannot reach any
  /// result (order-insensitivity pinned by ConflictMemoOrderInsensitive
  /// in tests/sched/policies_test.cpp).
  // LINT-ALLOW(unordered-container): find/emplace only, never iterated; test-pinned
  std::unordered_map<std::uint64_t, std::int64_t> conflictMemo_;
  /// runningOn_[core] = process currently executing there.
  std::vector<std::optional<ProcessId>> runningOn_;
  ArrivalAging aging_;  // open-workload tie-break (see ArrivalAging)
};

}  // namespace laps

#include "sched/load_balancer.h"

#include "util/error.h"

namespace laps {

void LoadBalancerOptions::validate() const {
  check(overloadPercent >= 100,
        "LoadBalancerOptions: overloadPercent must be >= 100");
  check(maxMovesPerEvent >= 1,
        "LoadBalancerOptions: maxMovesPerEvent must be >= 1");
}

namespace {

/// The sharing anchor of core \p c after the simulated \p queues state:
/// its last queued process, else the process it last dispatched.
std::optional<ProcessId> queueAnchor(
    const std::vector<std::vector<ProcessId>>& queues,
    std::span<const std::optional<ProcessId>> anchors, std::size_t c) {
  if (!queues[c].empty()) return queues[c].back();
  return anchors[c];
}

}  // namespace

std::vector<BalanceMove> planBalanceMoves(
    const std::vector<std::vector<ProcessId>>& queues,
    const SharingMatrix& sharing,
    std::span<const std::optional<ProcessId>> anchors,
    const LoadBalancerOptions& options, const std::vector<bool>& upMask,
    const LocalityScore* score) {
  options.validate();
  const std::size_t cores = queues.size();
  check(anchors.size() == cores,
        "planBalanceMoves: anchor count does not match core count");
  check(upMask.empty() || upMask.size() == cores,
        "planBalanceMoves: up mask does not match core count");
  const auto up = [&](std::size_t c) { return upMask.empty() || upMask[c]; };
  std::vector<BalanceMove> moves;
  if (cores < 2) return moves;

  // Simulated weights; the queues themselves are only mutated in the
  // simulation copy below when a move is planned. Down cores are out of
  // the move space entirely — no source, no target, and no seat in the
  // mean the overload trigger compares against.
  std::vector<std::vector<ProcessId>> sim = queues;
  std::size_t total = 0;
  std::size_t upCores = 0;
  for (std::size_t c = 0; c < cores; ++c) {
    if (!up(c)) continue;
    total += sim[c].size();
    ++upCores;
  }
  if (upCores < 2) return moves;
  const std::size_t mean = total / upCores;

  while (moves.size() < options.maxMovesPerEvent) {
    // Most loaded up core (smallest index on ties) that trips the
    // trigger.
    std::optional<std::size_t> srcPick;
    for (std::size_t c = 0; c < cores; ++c) {
      if (!up(c)) continue;
      if (!srcPick || sim[c].size() > sim[*srcPick].size()) srcPick = c;
    }
    const std::size_t src = *srcPick;
    const std::size_t weight = sim[src].size();
    if (weight * 100 <= mean * options.overloadPercent) break;
    if (weight < mean + 2) break;  // no target can sit two below

    // Shed the tail entry onto the underloaded core sharing the most
    // with it. Requiring the target at least two below the source makes
    // each move strictly shrink the pair's squared-weight sum.
    const ProcessId moved = sim[src].back();
    const bool hopWeighted = score != nullptr && score->distanceAware();
    std::optional<std::size_t> target;
    std::int64_t bestKey = 0;
    bool haveKey = false;
    for (std::size_t c = 0; c < cores; ++c) {
      if (c == src || !up(c) || sim[c].size() + 1 >= weight) continue;
      const std::optional<ProcessId> anchor = queueAnchor(sim, anchors, c);
      const std::int64_t s = anchor ? sharing.at(*anchor, moved) : 0;
      // Hop-weighted targets discount sharing by the distance the moved
      // process's warm state (on the source tile) would travel; blind,
      // key == s and the argmax is the exact pre-NoC raw-sharing scan.
      const std::int64_t k = hopWeighted ? score->key(s, c, src) : s;
      if (!haveKey || k > bestKey) {
        haveKey = true;
        bestKey = k;
        target = c;
      }
    }
    if (!target) break;

    sim[src].pop_back();
    sim[*target].push_back(moved);
    moves.push_back(BalanceMove{moved, src, *target});
  }
  return moves;
}

std::vector<std::size_t> planOrphanReassignment(
    std::span<const ProcessId> orphans,
    const std::vector<std::vector<ProcessId>>& queues,
    const SharingMatrix& sharing,
    std::span<const std::optional<ProcessId>> anchors,
    const std::vector<bool>& upMask) {
  const std::size_t cores = queues.size();
  check(cores >= 1, "planOrphanReassignment: need at least one core");
  check(anchors.size() == cores,
        "planOrphanReassignment: anchor count does not match core count");
  check(upMask.size() == cores,
        "planOrphanReassignment: up mask does not match core count");
  // With every core down the work must still park somewhere until a
  // recovery: fall back to the full core set (dispatch is gated by the
  // engine, not the plan, so a parked orphan cannot run early).
  bool anyUp = false;
  for (std::size_t c = 0; c < cores; ++c) anyUp = anyUp || upMask[c];
  const auto eligible = [&](std::size_t c) { return !anyUp || upMask[c]; };

  std::vector<std::vector<ProcessId>> sim = queues;
  std::vector<std::size_t> targets;
  targets.reserve(orphans.size());
  for (const ProcessId orphan : orphans) {
    // The arrival patch's greedy rule, restricted to eligible cores:
    // maximum sharing with the target's tail (or anchor), ties to the
    // lowest core index.
    std::optional<std::size_t> best;
    std::int64_t bestSharing = -1;
    for (std::size_t c = 0; c < cores; ++c) {
      if (!eligible(c)) continue;
      const std::optional<ProcessId> anchor = queueAnchor(sim, anchors, c);
      const std::int64_t s = anchor ? sharing.at(*anchor, orphan) : 0;
      if (s > bestSharing) {
        bestSharing = s;
        best = c;
      }
    }
    sim[*best].push_back(orphan);  // chained: the next orphan sees it
    targets.push_back(*best);
  }
  return targets;
}

}  // namespace laps

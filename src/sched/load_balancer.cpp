#include "sched/load_balancer.h"

#include "util/error.h"

namespace laps {

void LoadBalancerOptions::validate() const {
  check(overloadPercent >= 100,
        "LoadBalancerOptions: overloadPercent must be >= 100");
  check(maxMovesPerEvent >= 1,
        "LoadBalancerOptions: maxMovesPerEvent must be >= 1");
}

namespace {

/// The sharing anchor of core \p c after the simulated \p queues state:
/// its last queued process, else the process it last dispatched.
std::optional<ProcessId> queueAnchor(
    const std::vector<std::vector<ProcessId>>& queues,
    std::span<const std::optional<ProcessId>> anchors, std::size_t c) {
  if (!queues[c].empty()) return queues[c].back();
  return anchors[c];
}

}  // namespace

std::vector<BalanceMove> planBalanceMoves(
    const std::vector<std::vector<ProcessId>>& queues,
    const SharingMatrix& sharing,
    std::span<const std::optional<ProcessId>> anchors,
    const LoadBalancerOptions& options) {
  options.validate();
  const std::size_t cores = queues.size();
  check(anchors.size() == cores,
        "planBalanceMoves: anchor count does not match core count");
  std::vector<BalanceMove> moves;
  if (cores < 2) return moves;

  // Simulated weights; the queues themselves are only mutated in the
  // simulation copy below when a move is planned.
  std::vector<std::vector<ProcessId>> sim = queues;
  std::size_t total = 0;
  for (const auto& q : sim) total += q.size();
  const std::size_t mean = total / cores;

  while (moves.size() < options.maxMovesPerEvent) {
    // Most loaded core (smallest index on ties) that trips the trigger.
    std::size_t src = 0;
    for (std::size_t c = 1; c < cores; ++c) {
      if (sim[c].size() > sim[src].size()) src = c;
    }
    const std::size_t weight = sim[src].size();
    if (weight * 100 <= mean * options.overloadPercent) break;
    if (weight < mean + 2) break;  // no target can sit two below

    // Shed the tail entry onto the underloaded core sharing the most
    // with it. Requiring the target at least two below the source makes
    // each move strictly shrink the pair's squared-weight sum.
    const ProcessId moved = sim[src].back();
    std::optional<std::size_t> target;
    std::int64_t bestSharing = -1;
    for (std::size_t c = 0; c < cores; ++c) {
      if (c == src || sim[c].size() + 1 >= weight) continue;
      const std::optional<ProcessId> anchor = queueAnchor(sim, anchors, c);
      const std::int64_t s = anchor ? sharing.at(*anchor, moved) : 0;
      if (s > bestSharing) {
        bestSharing = s;
        target = c;
      }
    }
    if (!target) break;

    sim[src].pop_back();
    sim[*target].push_back(moved);
    moves.push_back(BalanceMove{moved, src, *target});
  }
  return moves;
}

}  // namespace laps

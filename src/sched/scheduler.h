#pragma once
/// \file scheduler.h
/// \brief The SchedulerPolicy interface and the SchedulerKind catalogue.
///
/// The concrete strategies live elsewhere: the paper's RS/RRS baselines
/// and the classic extensions in basic.h, LS/LSM in locality.h, and the
/// online variant in dynamic_locality.h; factory.h constructs any of
/// them from a SchedulerKind.
///
/// The simulation engine drives a SchedulerPolicy through six events:
///  * onArrival(p)    — p entered the system (open workloads only);
///  * onReady(p)      — p arrived and all its predecessors completed;
///  * pickNext(core)  — the core is idle, choose its next process;
///  * onPreempt(p)    — p's quantum expired, p was suspended;
///  * onComplete(p)   — p finished (policies tracking the running set);
///  * onExit(p)       — p left the system: completion or lifetime
///                      retirement (open workloads).
/// Policies with a quantum() are preemptive (the paper's RRS); the others
/// run every process to completion.
///
/// A process turned away by admission control (MpsocConfig::admission)
/// is a non-event: no onArrival, no onReady, never offered by pickNext.
/// Policies need no rejection handling — an admitted process's
/// dependence on a rejected one is resolved by the engine before any
/// onReady fires for it.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "region/sharing.h"
#include "taskgraph/graph.h"

namespace laps {

class AddressSpace;   // layout/address_space.h
class LocalityScore;  // sched/locality_score.h
class NocTopology;    // cache/noc.h

/// The schedulers evaluated in the paper (§4) plus the extensions this
/// library adds (paper §6 future work: "compare to other OS scheduling
/// strategies").
enum class SchedulerKind {
  Random,           ///< RS: random core assignment, run to completion
  RoundRobin,       ///< RRS: preemptive FCFS, common ready queue
  Locality,         ///< LS: Fig. 3 locality-aware plan
  LocalityMapping,  ///< LSM: LS plus Fig. 4/5 data re-layout
  Fcfs,             ///< extension: non-preemptive first-come-first-served
  Sjf,              ///< extension: shortest job first (estimated cycles)
  CriticalPath,     ///< extension: longest-critical-path-first
  DynamicLocality,  ///< extension: online greedy locality (no static plan)
  L2ContentionAware,  ///< extension: DLS minus shared-L2 set conflicts
  OnlineLocality,   ///< extension: LS plan patched incrementally on
                    ///< arrival/exit (open workloads)
};

/// Every SchedulerKind, in declaration order. Tests iterate this to keep
/// to_string/makeScheduler exhaustive; extend it together with the enum.
inline constexpr std::array<SchedulerKind, 10> kAllSchedulerKinds{
    SchedulerKind::Random,          SchedulerKind::RoundRobin,
    SchedulerKind::Locality,        SchedulerKind::LocalityMapping,
    SchedulerKind::Fcfs,            SchedulerKind::Sjf,
    SchedulerKind::CriticalPath,    SchedulerKind::DynamicLocality,
    SchedulerKind::L2ContentionAware, SchedulerKind::OnlineLocality,
};
// Ties the catalogue's size to the last enumerator: adding a kind
// without extending kAllSchedulerKinds fails to compile here instead of
// letting the exhaustiveness tests pass vacuously.
static_assert(static_cast<std::size_t>(SchedulerKind::OnlineLocality) + 1 ==
                  kAllSchedulerKinds.size(),
              "kAllSchedulerKinds is out of sync with SchedulerKind");

/// Compile-time short stable name of a kind ("RS", "RRS", "LS", ...).
/// The single source of truth: to_string returns exactly this, and the
/// static_asserts below prove every catalogued kind has a distinct
/// non-empty name — a new enum value without a case here fails the
/// build (-Wswitch under LAPSCHED_WERROR, the empty-name assert
/// otherwise) instead of drifting until a test notices.
[[nodiscard]] constexpr std::string_view schedulerKindName(
    SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::Random: return "RS";
    case SchedulerKind::RoundRobin: return "RRS";
    case SchedulerKind::Locality: return "LS";
    case SchedulerKind::LocalityMapping: return "LSM";
    case SchedulerKind::Fcfs: return "FCFS";
    case SchedulerKind::Sjf: return "SJF";
    case SchedulerKind::CriticalPath: return "CPATH";
    case SchedulerKind::DynamicLocality: return "DLS";
    case SchedulerKind::L2ContentionAware: return "CALS";
    case SchedulerKind::OnlineLocality: return "OLS";
  }
  return {};
}

namespace detail {
/// The catalogue lists every enumerator exactly once (it is a
/// permutation of [0, size)).
constexpr bool schedulerCatalogueCoversEnum() {
  std::array<bool, kAllSchedulerKinds.size()> seen{};
  for (const SchedulerKind kind : kAllSchedulerKinds) {
    const auto index = static_cast<std::size_t>(kind);
    if (index >= seen.size() || seen[index]) return false;
    seen[index] = true;
  }
  return true;
}

/// Every catalogued kind has a non-empty name, and no two share one.
constexpr bool schedulerNamesDistinct() {
  for (std::size_t i = 0; i < kAllSchedulerKinds.size(); ++i) {
    const std::string_view name = schedulerKindName(kAllSchedulerKinds[i]);
    if (name.empty()) return false;
    for (std::size_t j = 0; j < i; ++j) {
      if (name == schedulerKindName(kAllSchedulerKinds[j])) return false;
    }
  }
  return true;
}
}  // namespace detail

static_assert(detail::schedulerCatalogueCoversEnum(),
              "kAllSchedulerKinds must list every SchedulerKind exactly once");
static_assert(detail::schedulerNamesDistinct(),
              "schedulerKindName must give every catalogued SchedulerKind a "
              "distinct non-empty name");

/// Short stable name ("RS", "RRS", "LS", "LSM", ...) — the runtime
/// std::string form of schedulerKindName.
[[nodiscard]] std::string to_string(SchedulerKind kind);

/// Everything a policy may consult when (re)initialized. The workload
/// and address space are optional richer context (null when driving a
/// policy outside the simulator): footprint-derived analyses — e.g. the
/// L2 set-conflict matrix of L2ContentionAwareScheduler — need them.
struct SchedContext {
  const ExtendedProcessGraph* graph = nullptr;
  const SharingMatrix* sharing = nullptr;
  std::size_t coreCount = 0;
  const Workload* workload = nullptr;
  const AddressSpace* space = nullptr;
  /// Interconnect geometry when the platform routes misses over a NoC
  /// (cache/noc.h); null on flat/bus platforms. Appended last so every
  /// pre-NoC aggregate initializer still compiles (and value-initializes
  /// this to null — distance-blind, the legacy behavior).
  const NocTopology* topology = nullptr;
};

/// Counters a policy may expose about its own decision work (all zero
/// for policies that do not override stats()). Observational only: the
/// engine copies them into SimResult after the run; nothing feeds back
/// into scheduling, so reporting them cannot change a single decision.
struct PolicyStats {
  std::uint64_t decisions = 0;  ///< pickNext calls that returned a process
  std::uint64_t rebuilds = 0;   ///< full plan rebuilds (replanning policies)
  std::uint64_t patches = 0;    ///< incremental plan patches
  std::uint64_t steals = 0;     ///< picks outside the core's own plan
  std::uint64_t offloads = 0;   ///< load-balancer queue migrations
};

/// Dynamic scheduling policy; implementations must be deterministic.
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  /// Called once before simulation with the full context.
  virtual void reset(const SchedContext& context) = 0;

  /// A process became dependence-free (fires exactly once per process).
  virtual void onReady(ProcessId process) = 0;

  /// Core \p core is idle; \p previous is the process that last ran on
  /// it. Return the next process (must have been announced via onReady
  /// and not yet run to completion) or nullopt to leave the core idle
  /// until the next completion event.
  virtual std::optional<ProcessId> pickNext(
      std::size_t core, std::optional<ProcessId> previous) = 0;

  /// A running process was suspended after its quantum; it is immediately
  /// eligible to run again (possibly on another core).
  virtual void onPreempt(ProcessId process) { onReady(process); }

  /// A process ran to completion. Default: ignored — only policies that
  /// track the currently running set (e.g. contention-aware ones) care.
  virtual void onComplete(ProcessId process) { (void)process; }

  /// Open workloads: \p process entered the system. Fires before any
  /// onReady for it; never fires in closed workloads (so overriding it
  /// cannot change closed-workload behavior). Default: ignored.
  virtual void onArrival(ProcessId process) { (void)process; }

  /// Open workloads: \p process left the system — it ran to completion
  /// (after onComplete), was retired at its lifetime deadline, or
  /// crashed under fault injection (no onComplete in either of the
  /// latter cases; the process may have been running or waiting).
  /// Policies holding per-process state (running sets, plans, queues)
  /// drop it here. A crashed process that retries re-enters through a
  /// fresh onArrival, so exit-then-arrival for the same id is legal in
  /// fault runs. Default: ignored.
  virtual void onExit(ProcessId process) { (void)process; }

  /// Fault injection: core \p core went down (permanently or for a
  /// transient outage). The engine never offers a down core work, so
  /// this hook exists for bookkeeping — replanning policies re-home the
  /// work they had planned for the core. Default: ignored.
  virtual void onCoreDown(std::size_t core) { (void)core; }

  /// Fault injection: core \p core recovered from a transient outage
  /// (with cold caches) and is eligible for dispatch again. Default:
  /// ignored.
  virtual void onCoreUp(std::size_t core) { (void)core; }

  /// Quantum in cycles; nullopt = non-preemptive.
  [[nodiscard]] virtual std::optional<std::int64_t> quantum() const {
    return std::nullopt;
  }

  /// Decision-work counters since reset() (see PolicyStats). Default:
  /// all zero.
  [[nodiscard]] virtual PolicyStats stats() const { return {}; }

  /// The unified locality-score arithmetic this policy dispatches with
  /// (sched/locality_score.h: sharing term, optional L2-conflict term,
  /// optional hop-distance term), or null for policies that do not
  /// score locality. One definition of the arithmetic shared by DLS,
  /// CALS and OLS — harnesses introspect it to verify the policies
  /// stopped reimplementing score math (tests/sched/
  /// locality_score_test.cpp; decision-identity is pinned by the PR 8
  /// checksum baseline).
  [[nodiscard]] virtual const LocalityScore* localityScore() const {
    return nullptr;
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace laps

#pragma once
/// \file online_locality.h
/// \brief Replanning locality scheduling for open workloads (extension).
///
/// The paper's LS builds one Fig. 3 plan before execution and never
/// looks back — fine for a closed process set, useless when
/// applications launch and exit at run time: a full rebuild costs
/// O(n^2) sharing lookups per event. OnlineLocalityScheduler keeps a
/// LocalityPlan alive across arrival/exit events instead:
///
///  * onArrival(p) appends p to the core whose most recently planned
///    process shares the most data with p — one O(cores) patch;
///  * onExit(p) deletes p from its core's plan — one O(n) patch;
///  * after more than rebuildThreshold patches accumulate, the plan is
///    rebuilt from scratch over the live set (buildLocalityPlan with a
///    subset), bounding how far the patched plan can drift from the
///    Fig. 3 fixed point. Threshold 0 = rebuild on every event (the
///    most faithful, most expensive setting); a large threshold is
///    pure incremental patching.
///
/// Dispatch is plan-guided and work-conserving: an idle core takes the
/// first *ready* process remaining in its per-core plan; when its plan
/// holds nothing ready it steals by LS's online rule (maximum sharing
/// with the process it ran last) so no core idles while work exists.
/// Dispatched processes leave the plan — the plan always holds exactly
/// the pending work.
///
/// On a closed workload no arrival event ever fires, so the reset()-
/// time plan is byte-identical to buildLocalityPlan — i.e. to the
/// static LS plan — at every threshold; the differential test pins
/// that equivalence, and with rebuild-threshold 0 the plan equals a
/// from-scratch rebuild over the live set after every event.

#include <cstdint>
#include <vector>

#include "sched/locality.h"
#include "sched/scheduler.h"

namespace laps {

/// Tunables of OnlineLocalityScheduler.
struct OnlineLocalityOptions {
  /// Arrival/exit patches tolerated before the plan is rebuilt from
  /// scratch over the live set (>= 0; 0 rebuilds on every event).
  std::int64_t rebuildThreshold = 8;

  /// Apply the Fig. 3 initial min-sharing round in every (re)build.
  bool initialMinSharingRound = true;

  /// Throws laps::Error on a negative rebuild threshold. The single
  /// source of this constraint: the scheduler's constructor and
  /// makeScheduler both enforce it.
  void validate() const;
};

/// LS with incremental replanning under process arrival/exit (see file
/// comment).
class OnlineLocalityScheduler final : public SchedulerPolicy {
 public:
  explicit OnlineLocalityScheduler(OnlineLocalityOptions options = {});

  void reset(const SchedContext& context) override;
  void onArrival(ProcessId process) override;
  void onExit(ProcessId process) override;
  void onReady(ProcessId process) override;
  void onPreempt(ProcessId process) override;
  std::optional<ProcessId> pickNext(std::size_t core,
                                    std::optional<ProcessId> previous) override;
  [[nodiscard]] std::string name() const override { return "OLS"; }

  /// The current (patched or rebuilt) plan — the pending, undispatched
  /// work per core. Right after reset() on a closed workload this is
  /// the full static LS plan.
  [[nodiscard]] const LocalityPlan& plan() const { return plan_; }

  /// Full rebuilds performed since reset().
  [[nodiscard]] std::size_t rebuildCount() const { return rebuilds_; }

  /// Arrival/exit events absorbed since reset() (patched or not).
  [[nodiscard]] std::size_t eventCount() const { return events_; }

 private:
  /// True when \p process is in the system and unfinished.
  [[nodiscard]] bool live(ProcessId process) const;

  /// Rebuilds the plan over the live set and resets the patch budget.
  void rebuild();

  /// Appends \p process to the core with maximum sharing between the
  /// core's last planned process and \p process (ties: lowest core).
  void patchArrival(ProcessId process);

  /// Deletes \p process from whichever per-core plan holds it.
  void patchExit(ProcessId process);

  /// Counts one event against the patch budget; returns true when the
  /// caller should rebuild instead of patching.
  [[nodiscard]] bool consumePatchBudget();

  OnlineLocalityOptions options_;
  const ExtendedProcessGraph* graph_ = nullptr;
  const SharingMatrix* sharing_ = nullptr;
  std::size_t coreCount_ = 0;
  LocalityPlan plan_;
  /// False until the first onArrival: a closed workload never opens, so
  /// the reset()-time full plan stands (it equals the static LS plan).
  bool open_ = false;
  std::vector<bool> arrived_;  // meaningful once open_
  std::vector<bool> exited_;
  std::vector<bool> ready_;
  std::vector<bool> dispatched_;  // picked and not re-readied
  /// Last process dispatched on each core — the sharing anchor for
  /// arrival patches when a core's plan has run dry.
  std::vector<std::optional<ProcessId>> anchor_;
  std::size_t readyCount_ = 0;
  std::int64_t patchesSinceRebuild_ = 0;
  std::size_t rebuilds_ = 0;
  std::size_t events_ = 0;
};

}  // namespace laps

#pragma once
/// \file online_locality.h
/// \brief Replanning locality scheduling for open workloads (extension).
///
/// The paper's LS builds one Fig. 3 plan before execution and never
/// looks back — fine for a closed process set, useless when
/// applications launch and exit at run time: a full rebuild costs
/// O(n^2) sharing lookups per event. OnlineLocalityScheduler keeps a
/// LocalityPlan alive across arrival/exit events instead:
///
///  * onArrival(p) appends p to the core whose most recently planned
///    process shares the most data with p — one O(cores) patch;
///  * onExit(p) deletes p from its core's plan — O(1) amortized on the
///    indexed representation, one O(n) scan on the legacy one;
///  * after more than rebuildThreshold patches accumulate, the plan is
///    rebuilt from scratch over the live set (buildLocalityPlan with a
///    subset), bounding how far the patched plan can drift from the
///    Fig. 3 fixed point. Threshold 0 = rebuild on every event (the
///    most faithful, most expensive setting); a large threshold is
///    pure incremental patching.
///
/// Dispatch is plan-guided and work-conserving: an idle core takes the
/// first *ready* process remaining in its per-core plan; when its plan
/// holds nothing ready it steals by LS's online rule (maximum sharing
/// with the process it ran last) so no core idles while work exists.
/// Dispatched processes leave the plan — the plan always holds exactly
/// the pending work.
///
/// Two implementations sit behind OnlineLocalityOptions::indexedPlanner
/// and make the same decisions event for event (the differential tests
/// and the bench_policy_overhead checksum column pin it):
///
///  * indexed (default): rebuilds run on the PlanIndex planner core;
///    per-core queues hold {process, seq} entries with a reverse map
///    planned[p] = (core, seq) — an entry is alive iff the map still
///    points at it, so exits and steals tombstone in O(1) and queues
///    compact when more than half their entries are dead. The steal
///    argmax comes from the index's per-core lazy max-heaps;
///  * legacy: the pre-index loops exactly as first written —
///    buildLocalityPlanLegacy rebuilds, std::find exits, linear-scan
///    steals. Kept as the differential oracle and the honest baseline
///    arm of bench_policy_overhead.
///
/// An optional locality-aware load balancer (load_balancer.h, off by
/// default) sheds queue tails from overloaded cores to the best-sharing
/// underloaded core after each absorbed event, in either mode.
///
/// On NoC platforms (OnlineLocalityOptions::hopWeight > 0; indexed mode
/// only) every decision becomes hop-weighted through the shared
/// LocalityScore: rebuilds take the spiral initial mapping, arrival
/// patches and steals score candidates by the hop-weighted key against
/// each process's home — the core it last ran on, where its warm state
/// sits; a never-ran process has no home and pays no distance penalty,
/// because its first dispatch charges no migration — and balance moves
/// discount candidate targets by the hops the moved process's warm
/// state would travel. hopWeight == 0 — the default — keeps every
/// decision bit-identical to the distance-blind policy.
///
/// Under fault injection (docs §13) the engine reports core outages and
/// failures through onCoreDown/onCoreUp. A downed core's pending queue
/// is orphaned on the spot and re-homed by planOrphanReassignment (the
/// same greedy max-sharing rule as the arrival patch, restricted to up
/// cores); arrival patches, rebuild placement and balance moves avoid
/// down cores until they recover. A crashed process re-enters through
/// onArrival after its onExit — the one case where exit-then-arrival of
/// the same id is legal (scheduler.h).
///
/// On a closed workload no arrival event ever fires, so the reset()-
/// time plan is byte-identical to buildLocalityPlan — i.e. to the
/// static LS plan — at every threshold; the differential test pins
/// that equivalence, and with rebuild-threshold 0 the plan equals a
/// from-scratch rebuild over the live set after every event.

#include <cstdint>
#include <vector>

#include "sched/load_balancer.h"
#include "sched/locality.h"
#include "sched/plan_index.h"
#include "sched/scheduler.h"

namespace laps {

/// Tunables of OnlineLocalityScheduler.
struct OnlineLocalityOptions {
  /// Arrival/exit patches tolerated before the plan is rebuilt from
  /// scratch over the live set (>= 0; 0 rebuilds on every event).
  std::int64_t rebuildThreshold = 8;

  /// Apply the Fig. 3 initial min-sharing round in every (re)build.
  bool initialMinSharingRound = true;

  /// Run on the PlanIndex planner core with the tombstone plan
  /// representation (see file comment). False selects the legacy
  /// loops — same decisions, pre-index costs; exists for differential
  /// tests and the bench_policy_overhead baseline arm.
  bool indexedPlanner = true;

  /// Locality-aware load shedding over the per-core plan queues
  /// (disabled by default; enabling it changes dispatch).
  LoadBalancerOptions balancer;

  /// NoC platforms: hop penalty per unit of distance in every scoring
  /// decision, in 1/LocalityScore::kSharingScale sharing units (>= 0).
  /// 0 — the default, and the only meaningful value off-NoC — keeps
  /// every decision bit-identical to the distance-blind policy. > 0
  /// (requires the indexed planner and a platform with a topology) the
  /// scheduler becomes distance-aware end to end: spiral initial
  /// mapping in rebuilds, home-anchored arrival patches, steals and
  /// balance targets discounted by NoC hops.
  std::int64_t hopWeight = 0;

  /// Preemption quantum in cycles (>= 0). 0 — the default — keeps OLS
  /// non-preemptive (quantum() = nullopt), bit-identical to every
  /// committed run. > 0 the engine suspends a segment at the quantum
  /// and OLS replans the survivor through patchArrival — on NoC
  /// platforms the resume core then pays the distance-scaled migration
  /// penalty (NocConfig::migrationHopCycles), which is the channel the
  /// hop-weighted scoring exists to shrink.
  std::int64_t quantumCycles = 0;

  /// Throws laps::Error on a negative rebuild threshold, a negative
  /// hop weight or quantum, a hop weight without the indexed planner,
  /// or invalid balancer tunables. The single source of these
  /// constraints: the scheduler's constructor and makeScheduler both
  /// enforce it.
  void validate() const;
};

/// LS with incremental replanning under process arrival/exit (see file
/// comment).
class OnlineLocalityScheduler final : public SchedulerPolicy {
 public:
  explicit OnlineLocalityScheduler(OnlineLocalityOptions options = {});

  void reset(const SchedContext& context) override;
  void onArrival(ProcessId process) override;
  void onExit(ProcessId process) override;
  void onReady(ProcessId process) override;
  void onPreempt(ProcessId process) override;
  void onCoreDown(std::size_t core) override;
  void onCoreUp(std::size_t core) override;
  std::optional<ProcessId> pickNext(std::size_t core,
                                    std::optional<ProcessId> previous) override;
  [[nodiscard]] std::string name() const override { return "OLS"; }
  /// Preemptive iff OnlineLocalityOptions::quantumCycles > 0.
  [[nodiscard]] std::optional<std::int64_t> quantum() const override {
    if (options_.quantumCycles > 0) return options_.quantumCycles;
    return std::nullopt;
  }

  /// The current (patched or rebuilt) plan — the pending, undispatched
  /// work per core. Right after reset() on a closed workload this is
  /// the full static LS plan. On the indexed representation this
  /// materializes the live entries of the tombstone queues (cached
  /// until the next plan mutation).
  [[nodiscard]] const LocalityPlan& plan() const;

  /// Full rebuilds performed since reset().
  [[nodiscard]] std::size_t rebuildCount() const { return rebuilds_; }

  /// Arrival/exit events absorbed since reset() (patched or not).
  [[nodiscard]] std::size_t eventCount() const { return events_; }

  /// Decision-work counters (PolicyStats in scheduler.h).
  [[nodiscard]] PolicyStats stats() const override;

  [[nodiscard]] const LocalityScore* localityScore() const override {
    return &score_;
  }

 private:
  /// One tombstone-queue entry (indexed representation). Alive iff
  /// planned_[process] still records this (core, seq) pair.
  struct PlanEntry {
    ProcessId process = 0;
    std::uint64_t seq = 0;
  };

  /// Where a process is currently planned (indexed representation).
  struct PlanSlot {
    std::size_t core = 0;
    std::uint64_t seq = 0;
  };

  [[nodiscard]] bool indexed() const { return options_.indexedPlanner; }

  /// True when \p process is in the system and unfinished.
  [[nodiscard]] bool live(ProcessId process) const;

  /// Rebuilds the plan over the live set and resets the patch budget.
  void rebuild();

  /// Appends \p process to the core with maximum sharing between the
  /// core's last planned process and \p process (ties: lowest core).
  void patchArrival(ProcessId process);

  /// Deletes \p process from whichever per-core plan holds it.
  void patchExit(ProcessId process);

  /// Counts one event against the patch budget; returns true when the
  /// caller should rebuild instead of patching.
  [[nodiscard]] bool consumePatchBudget();

  /// Applies the load balancer after an absorbed event (no-op unless
  /// options_.balancer.enabled).
  void maybeBalance();

  /// Orphans core \p core's pending queue and re-homes every entry via
  /// planOrphanReassignment. Called when the core goes down, and after
  /// a rebuild placed work on a core that is (still) down.
  void evacuateCore(std::size_t core);

  /// \name Tombstone-queue primitives (indexed representation)
  /// @{
  /// Adopts a freshly built plan as the queue state.
  void adoptPlan(LocalityPlan&& fresh);
  /// Appends \p process to core \p core's queue (must be unplanned).
  void pushPlanned(std::size_t core, ProcessId process);
  /// Kills \p process's queue entry, wherever it is. Idempotent.
  void unplan(ProcessId process);
  [[nodiscard]] bool aliveEntry(std::size_t core, const PlanEntry& entry) const;
  /// Pops dead tail entries so back() is alive or the queue is empty.
  void dropTrailingDead(std::size_t core);
  /// Erases dead entries once they outnumber the live ones.
  void maybeCompact(std::size_t core);
  /// @}

  OnlineLocalityOptions options_;
  const ExtendedProcessGraph* graph_ = nullptr;
  const SharingMatrix* sharing_ = nullptr;
  std::size_t coreCount_ = 0;
  /// The one scoring arithmetic (sharing + optional hop distance).
  /// Distance-aware iff options_.hopWeight > 0 and the platform handed
  /// a topology through SchedContext; also the PlanIndex distance hook.
  LocalityScore score_;
  /// Legacy mode: the live plan representation. Indexed mode: the
  /// plan() materialization cache, stale while planDirty_.
  mutable LocalityPlan plan_;
  mutable bool planDirty_ = false;
  /// False until the first onArrival: a closed workload never opens, so
  /// the reset()-time full plan stands (it equals the static LS plan).
  bool open_ = false;
  std::vector<bool> arrived_;  // meaningful once open_
  std::vector<bool> exited_;
  std::vector<bool> dispatched_;  // picked and not re-readied
  /// Last process dispatched on each core — the sharing anchor for
  /// arrival patches when a core's plan has run dry.
  std::vector<std::optional<ProcessId>> anchor_;
  /// Cores the engine reported down (onCoreDown/onCoreUp). Never
  /// planned onto while any core is up; downCount_ caches the popcount
  /// so the fault-free path pays one integer compare per use.
  std::vector<bool> coreDown_;
  std::size_t downCount_ = 0;

  /// \name Legacy dispatch state (indexedPlanner == false)
  /// @{
  std::vector<bool> ready_;
  std::size_t readyCount_ = 0;
  /// @}

  /// \name Indexed dispatch state
  /// @{
  PlanIndex index_;
  std::vector<std::vector<PlanEntry>> queues_;
  std::vector<std::size_t> deadCount_;  // dead entries per queue
  std::vector<std::optional<PlanSlot>> planned_;
  std::uint64_t seqCounter_ = 0;
  /// @}

  std::int64_t patchesSinceRebuild_ = 0;
  std::size_t rebuilds_ = 0;
  std::size_t events_ = 0;
  PolicyStats stats_;
};

}  // namespace laps

#pragma once
/// \file plan_index.h
/// \brief Indexed planner core: the data structure behind the Fig. 3
/// greedy argmax, shared by buildLocalityPlan, the OLS replanner and
/// the online pickMaxSharing dispatch rule.
///
/// The legacy planner answers "which schedulable process shares the
/// most with this core's previous pick?" by scanning all |T| candidates
/// and walking each one's predecessor list. PlanIndex answers the same
/// question from three cached structures:
///
///  * a compact ready list — candidates whose cached indegree (count of
///    unplaced in-subset predecessors) is zero. Placing a process
///    decrements its successors' counters; a counter hitting zero
///    appends to the list. No predecessor walk ever runs per candidate;
///  * per-core lazy max-heaps over the sharing row of the core's anchor
///    (its previously placed / dispatched process). Entries cache
///    (key = sharing(anchor, q), id = q, version = version[q]); the
///    heap orders by key descending, id ascending. On NoC platforms
///    (enableDistance) the key is the hop-weighted LocalityScore::key
///    over the sharing term and the candidate's home core — still one
///    int64, so nothing else changes;
///  * per-process version tags. Any event that changes what a cached
///    key or membership means — the process was placed, dispatched, or
///    its sharing row changed under open-workload arrival/exit — bumps
///    the tag. A heap entry whose tag disagrees with the current tag is
///    stale and skipped (popped) during extraction; it is never
///    eagerly deleted.
///
/// Staleness protocol (the equality-to-greedy argument lives in
/// docs/ARCHITECTURE.md §12): a heap is rebuilt from the ready list
/// when its anchor changes or the anchor's own row was invalidated;
/// between rebuilds it absorbs newly ready candidates by appending
/// (the ready list is append-only between compactions) and absorbs
/// removals lazily via version-tag skips. Every live entry's key is
/// current — a key (anchor, q) can only drift if anchor's or q's row
/// changed, and both bump a version the pop path checks — so the heap
/// top is exactly the order-independent argmax
///   (key > best) || (key == best && id < bestId)
/// over ready candidates, which equals the legacy ascending scan with
/// strict `>`. Differential tests (tests/sched/plan_index_test.cpp) pin
/// the equality on random DAGs; under -DLAPSCHED_AUDIT=ON a sampled
/// linear rescan re-derives the argmax and must agree with the heap top
/// (PlanIndex::auditTopAgreement).

#include <optional>
#include <span>
#include <vector>

#include "region/sharing.h"
#include "sched/locality_score.h"
#include "taskgraph/graph.h"

namespace laps {

/// Ready-set index with per-core lazy max-heaps (see file comment).
///
/// Two modes:
///  * planner mode (beginPlanner): the index owns DAG readiness —
///    cached indegrees over the pending subset, place() releases
///    successors. Used by buildLocalityPlan;
///  * dispatch mode (beginDispatch): readiness is announced externally
///    (markReady), as the simulation engine drives policies. Used by
///    LocalityScheduler and OnlineLocalityScheduler at pick time.
class PlanIndex {
 public:
  PlanIndex() = default;

  /// Planner mode over \p pending (the unplaced subset members). A
  /// pending process waits only on pending predecessors — one outside
  /// the subset, or already placed, is satisfied — so the cached
  /// indegrees count pending predecessors only, and every pending
  /// process with counter zero is ready immediately. This is the
  /// legacy schedulable() predicate, evaluated once instead of per
  /// candidate per round.
  void beginPlanner(const ExtendedProcessGraph& graph,
                    const SharingMatrix& sharing, std::size_t coreCount,
                    const std::vector<bool>& pending);

  /// Dispatch mode: \p n processes, nothing ready until markReady.
  void beginDispatch(const SharingMatrix& sharing, std::size_t n,
                     std::size_t coreCount);

  /// Announces readiness (dispatch mode, or tests). Idempotent.
  void markReady(ProcessId process);

  /// Withdraws readiness without placing (dispatch take, exit of a
  /// ready process). Bumps the version tag: heap entries go stale.
  void markUnready(ProcessId process);

  [[nodiscard]] bool isReady(ProcessId process) const;
  [[nodiscard]] std::size_t readyCount() const { return readyCount_; }

  /// Open workloads: \p process's sharing row changed (it arrived or
  /// exited the live matrix). Every cached key involving it — its own
  /// heap entries, and any heap anchored on it — is invalidated.
  void invalidateProcess(ProcessId process);

  /// Hop-weighted keys (NoC platforms): every cached key becomes
  /// score->key(sharing(anchor, q), core, home(q)) instead of the raw
  /// sharing term — still one int64, so the heap machinery and the
  /// strict-> argmax order are untouched. \p score is non-owning and
  /// must stay configured for the index's lifetime; a null or
  /// distance-blind score keeps the raw sharing keys bit-identically
  /// (the pre-NoC arithmetic). Cleared by beginPlanner/beginDispatch —
  /// call after them.
  void enableDistance(const LocalityScore* score);

  /// Declares \p process's cache-warm home core (where it last ran), or
  /// withdraws it with nullopt. A home change shifts the distance term
  /// of every cached key for the process, so it reuses the
  /// invalidateProcess staleness protocol; no-op when unchanged.
  /// Distance-blind indexes ignore homes entirely.
  void setHome(ProcessId process, std::optional<std::size_t> home);

  /// \p process's current home core (setHome), nullopt when none.
  [[nodiscard]] std::optional<std::size_t> homeOf(ProcessId process) const;

  /// Extracts the best ready candidate for \p core: maximum
  /// sharing(anchor, q), smallest id on ties; without an anchor, the
  /// smallest ready id (the legacy scan's s = 0 degenerate case).
  /// nullopt when nothing is ready. The winner is marked unready.
  [[nodiscard]] std::optional<ProcessId> popBest(
      std::size_t core, std::optional<ProcessId> anchor);

  /// Planner mode: records \p process as placed — its pending flag
  /// clears and each pending successor's indegree drops; counters
  /// reaching zero mark the successor ready. The caller pops the
  /// process first (popBest) or calls markUnready itself.
  void place(ProcessId process);

  /// Audit checker (docs/ARCHITECTURE.md §12): the entry popBest would
  /// extract for (\p core, \p anchor) must agree — same id, same cached
  /// key — with a from-scratch linear rescan of the ready list against
  /// the live sharing row. Throws laps::AuditError on disagreement.
  /// popBest samples it under LAPS_AUDIT every kAuditSampleEvery pops;
  /// tests corrupt a cached key (corruptKeyForTest) to prove it fires.
  void auditTopAgreement(std::size_t core, std::optional<ProcessId> anchor);

  /// Test seam for the audit path: overwrites the cached key of
  /// \p process's entry in \p core's heap (restoring the heap order
  /// afterwards), simulating a stale-key bug the version protocol
  /// failed to catch. Throws laps::Error when no live entry exists.
  void corruptKeyForTest(std::size_t core, ProcessId process,
                         std::int64_t key);

  /// Pops between sampled audit rescans in popBest (1 = every pop).
  static constexpr std::uint64_t kAuditSampleEvery = 16;

  /// One cached heap entry (public for the comparator and tests).
  struct HeapEntry {
    /// sharing(anchor, id) at push time; with enableDistance, the
    /// hop-weighted LocalityScore::key over it.
    std::int64_t key = 0;
    ProcessId id = 0;
    std::uint32_t version = 0;  ///< version_[id] at push time
  };

 private:
  struct CoreHeap {
    bool valid = false;
    std::optional<ProcessId> anchor;
    std::uint32_t anchorVersion = 0;  ///< version_[*anchor] at build
    std::uint64_t readyGen = 0;       ///< ready-list generation at build
    std::size_t syncedTo = 0;         ///< ready-list prefix absorbed
    std::vector<HeapEntry> entries;   ///< binary max-heap
  };

  void reset(const SharingMatrix& sharing, std::size_t n,
             std::size_t coreCount);
  /// The one key function: distance-blind, the raw sharing term
  /// (row[q], or 0 anchorless); distance-aware, LocalityScore::key over
  /// it and \p q's home. Heap build, sync, and the rescan oracle all go
  /// through it so they can never disagree on arithmetic.
  [[nodiscard]] std::int64_t keyFor(std::size_t core, ProcessId q,
                                    const std::int64_t* row) const;
  void rebuildHeap(CoreHeap& heap, std::size_t core, ProcessId anchor);
  void syncHeap(CoreHeap& heap, std::size_t core, ProcessId anchor);
  void compactReadyList();
  /// Peeks the current top (after sync + stale-pop); nullopt iff no
  /// ready candidate survives.
  [[nodiscard]] std::optional<HeapEntry> peekBest(
      std::size_t core, std::optional<ProcessId> anchor);
  /// The order-independent argmax by linear rescan (the audit oracle
  /// and the anchorless path).
  [[nodiscard]] std::optional<HeapEntry> rescanBest(
      std::size_t core, std::optional<ProcessId> anchor) const;

  const ExtendedProcessGraph* graph_ = nullptr;  // planner mode only
  const SharingMatrix* sharing_ = nullptr;
  std::vector<std::uint32_t> version_;
  std::vector<bool> ready_;
  std::vector<bool> pending_;              // planner mode
  std::vector<std::uint32_t> indegree_;    // planner mode
  /// Ready candidates, append-only between compactions; may hold
  /// duplicates and unready (stale) ids — consumers re-check ready_.
  std::vector<ProcessId> readyList_;
  std::size_t readyCount_ = 0;
  std::uint64_t readyGen_ = 0;
  std::vector<CoreHeap> heaps_;
  std::uint64_t popCount_ = 0;  // audit sampling counter
  /// Distance hook (enableDistance); null or distance-blind = raw
  /// sharing keys, the pre-NoC arithmetic.
  const LocalityScore* score_ = nullptr;
  std::vector<std::int32_t> home_;  ///< home core per process; -1 = none
};

}  // namespace laps

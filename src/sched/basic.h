#pragma once
/// \file basic.h
/// \brief The paper's baselines (RS, RRS) and classic extensions
///        (FCFS, SJF, critical-path-first).

#include <deque>
#include <vector>

#include "sched/scheduler.h"
#include "util/rng.h"

namespace laps {

/// RS (paper §4): each ready process is assigned to an available core at
/// random; once scheduled it runs to completion.
class RandomScheduler final : public SchedulerPolicy {
 public:
  explicit RandomScheduler(std::uint64_t seed = 1);

  void reset(const SchedContext& context) override;
  void onReady(ProcessId process) override;
  std::optional<ProcessId> pickNext(std::size_t core,
                                    std::optional<ProcessId> previous) override;
  [[nodiscard]] std::string name() const override { return "RS"; }

 private:
  std::uint64_t seed_;
  Rng rng_;
  std::vector<ProcessId> ready_;
};

/// RRS (paper §4): preemptive FCFS. One common FIFO ready queue feeds all
/// cores; a running process is suspended when its time quantum expires
/// and re-enters the queue at the tail.
class RoundRobinScheduler final : public SchedulerPolicy {
 public:
  explicit RoundRobinScheduler(std::int64_t quantumCycles);

  void reset(const SchedContext& context) override;
  void onReady(ProcessId process) override;
  void onPreempt(ProcessId process) override;
  std::optional<ProcessId> pickNext(std::size_t core,
                                    std::optional<ProcessId> previous) override;
  [[nodiscard]] std::optional<std::int64_t> quantum() const override {
    return quantum_;
  }
  [[nodiscard]] std::string name() const override { return "RRS"; }

 private:
  std::int64_t quantum_;
  std::deque<ProcessId> queue_;
};

/// Extension: non-preemptive first-come-first-served (RRS without the
/// timer). Isolates the effect of preemption from the effect of ordering.
class FcfsScheduler final : public SchedulerPolicy {
 public:
  void reset(const SchedContext& context) override;
  void onReady(ProcessId process) override;
  std::optional<ProcessId> pickNext(std::size_t core,
                                    std::optional<ProcessId> previous) override;
  [[nodiscard]] std::string name() const override { return "FCFS"; }

 private:
  std::deque<ProcessId> queue_;
};

/// Extension: shortest-job-first over estimated cycles, non-preemptive.
class SjfScheduler final : public SchedulerPolicy {
 public:
  void reset(const SchedContext& context) override;
  void onReady(ProcessId process) override;
  std::optional<ProcessId> pickNext(std::size_t core,
                                    std::optional<ProcessId> previous) override;
  [[nodiscard]] std::string name() const override { return "SJF"; }

 private:
  const ExtendedProcessGraph* graph_ = nullptr;
  std::vector<ProcessId> ready_;
};

/// Extension: critical-path-first list scheduling — the ready process
/// with the longest downstream dependence chain (by estimated cycles)
/// runs first. A classic makespan-oriented baseline that ignores
/// locality entirely.
class CriticalPathScheduler final : public SchedulerPolicy {
 public:
  void reset(const SchedContext& context) override;
  void onReady(ProcessId process) override;
  std::optional<ProcessId> pickNext(std::size_t core,
                                    std::optional<ProcessId> previous) override;
  [[nodiscard]] std::string name() const override { return "CPATH"; }

 private:
  std::vector<std::int64_t> rank_;
  std::vector<ProcessId> ready_;
};

}  // namespace laps

#include "sched/locality_score.h"

namespace laps {

// LINT-ALLOW(no-float): CALS's documented double-but-integer-exact combiner
double LocalityScore::contendedScore(std::int64_t sharingTerm,
                                     // LINT-ALLOW(no-float): see header
                                     double conflictWeight,
                                     std::int64_t conflicts) {
  // LINT-ALLOW(no-float): CALS's documented double-but-integer-exact combiner
  return static_cast<double>(sharingTerm) -
         // LINT-ALLOW(no-float): CALS's documented double-but-integer-exact combiner
         conflictWeight * static_cast<double>(conflicts);
}

}  // namespace laps

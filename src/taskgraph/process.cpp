#include "taskgraph/process.h"

namespace laps {

std::int64_t ProcessSpec::totalIterations() const {
  std::int64_t total = 0;
  for (const auto& nest : nests) total += nest.space.numPoints();
  return total;
}

std::int64_t ProcessSpec::totalReferences() const {
  std::int64_t total = 0;
  for (const auto& nest : nests) total += nest.totalReferences();
  return total;
}

std::int64_t ProcessSpec::totalComputeCycles() const {
  std::int64_t total = 0;
  for (const auto& nest : nests) {
    total += nest.space.numPoints() * nest.computeCyclesPerIter;
  }
  return total;
}

std::int64_t ProcessSpec::estimatedCycles(std::int64_t refLatency) const {
  return totalComputeCycles() + totalReferences() * refLatency;
}

Footprint ProcessSpec::footprint(const ArrayTable& arrays) const {
  Footprint fp;
  for (const auto& nest : nests) {
    for (const auto& access : nest.accesses) {
      fp.add(access.array,
             accessFootprint(nest.space, access, arrays.at(access.array)));
    }
  }
  return fp;
}

}  // namespace laps

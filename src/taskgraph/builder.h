#pragma once
/// \file builder.h
/// \brief Convenience helpers for composing workloads.
///
/// The paper builds tasks by parallelizing loop nests into processes over
/// successive iteration blocks (Fig. 1) and by staging pipelines with
/// dependences. These helpers encode those recurring patterns and the
/// merging of several applications into one EPG (the concurrent-workload
/// scenarios of Fig. 7).

#include <string>
#include <vector>

#include "taskgraph/graph.h"

namespace laps {

/// How two consecutive pipeline stages are wired.
enum class StageLink {
  /// Every process of the next stage depends on every process of the
  /// previous stage (global barrier).
  AllToAll,
  /// Process i of the next stage depends on process i of the previous
  /// stage (sizes must match).
  OneToOne,
  /// Process i depends on processes i-1, i, i+1 of the previous stage
  /// (halo exchange, clamped at the borders).
  Neighborhood,
};

/// Parallelizes one loop nest into \p parts processes by splitting loop
/// dimension \p splitDim into successive blocks (paper Fig. 1) and adds
/// them to \p workload under \p task. Returns the created process ids
/// (empty blocks are skipped). Splitting a non-outermost dimension keeps
/// any outer sweep loop per process, giving each process temporal reuse
/// of its whole block.
std::vector<ProcessId> addParallelLoop(Workload& workload, TaskId task,
                                       const std::string& namePrefix,
                                       const LoopNest& nest,
                                       std::size_t parts,
                                       std::size_t splitDim = 0);

/// Adds dependence edges between two stages according to \p link.
void linkStages(ExtendedProcessGraph& graph,
                const std::vector<ProcessId>& from,
                const std::vector<ProcessId>& to, StageLink link);

/// Appends every array, process and dependence of \p src to \p dst,
/// remapping array ids, process ids and task ids so the two workloads
/// stay fully independent (no accidental sharing). Returns the process-id
/// offset applied to src's processes.
ProcessId appendWorkload(Workload& dst, const Workload& src);

}  // namespace laps

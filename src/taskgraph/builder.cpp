#include "taskgraph/builder.h"

#include <algorithm>

#include "util/error.h"

namespace laps {

std::vector<ProcessId> addParallelLoop(Workload& workload, TaskId task,
                                       const std::string& namePrefix,
                                       const LoopNest& nest,
                                       std::size_t parts,
                                       std::size_t splitDim) {
  check(parts >= 1, "addParallelLoop: parts must be >= 1");
  std::vector<ProcessId> ids;
  const auto blocks = nest.space.splitDim(splitDim, parts);
  for (std::size_t k = 0; k < blocks.size(); ++k) {
    if (blocks[k].empty()) continue;
    ProcessSpec spec;
    spec.task = task;
    spec.name = namePrefix + "." + std::to_string(k);
    spec.nests.push_back(
        LoopNest{blocks[k], nest.accesses, nest.computeCyclesPerIter});
    ids.push_back(workload.graph.addProcess(std::move(spec)));
  }
  return ids;
}

void linkStages(ExtendedProcessGraph& graph,
                const std::vector<ProcessId>& from,
                const std::vector<ProcessId>& to, StageLink link) {
  switch (link) {
    case StageLink::AllToAll:
      for (const ProcessId f : from) {
        for (const ProcessId t : to) {
          graph.addDependence(f, t);
        }
      }
      break;
    case StageLink::OneToOne:
      check(from.size() == to.size(),
            "linkStages(OneToOne): stage sizes differ");
      for (std::size_t i = 0; i < from.size(); ++i) {
        graph.addDependence(from[i], to[i]);
      }
      break;
    case StageLink::Neighborhood:
      check(from.size() == to.size(),
            "linkStages(Neighborhood): stage sizes differ");
      for (std::size_t i = 0; i < to.size(); ++i) {
        if (i > 0) graph.addDependence(from[i - 1], to[i]);
        graph.addDependence(from[i], to[i]);
        if (i + 1 < from.size()) graph.addDependence(from[i + 1], to[i]);
      }
      break;
  }
}

ProcessId appendWorkload(Workload& dst, const Workload& src) {
  // Array ids in dst are dense, so the remap is a constant offset.
  const auto arrayOffset = static_cast<ArrayId>(dst.arrays.size());
  for (const ArrayInfo& a : src.arrays.all()) {
    dst.arrays.add(a.name, a.extents, a.elemSize);
  }

  // Task ids are remapped past the largest task id already present.
  TaskId taskOffset = 0;
  for (const auto& p : dst.graph.processes()) {
    taskOffset = std::max(taskOffset, p.task + 1);
  }

  const auto processOffset = static_cast<ProcessId>(dst.graph.processCount());
  for (const ProcessSpec& p : src.graph.processes()) {
    ProcessSpec copy = p;
    copy.task += taskOffset;
    for (auto& nest : copy.nests) {
      for (auto& access : nest.accesses) {
        access.array += arrayOffset;
      }
    }
    dst.graph.addProcess(std::move(copy));
  }
  for (ProcessId id = 0; id < src.graph.processCount(); ++id) {
    for (const ProcessId succ : src.graph.successors(id)) {
      dst.graph.addDependence(id + processOffset, succ + processOffset);
    }
  }
  return processOffset;
}

}  // namespace laps

#pragma once
/// \file process.h
/// \brief Processes: the schedulable units of the paper.
///
/// A task (application) is parallelized into processes (paper Fig. 1);
/// each process executes one or more affine loop nests. The process is
/// the unit the OS scheduler places on a core.

#include <cstdint>
#include <string>
#include <vector>

#include "region/access.h"
#include "region/array.h"
#include "region/footprint.h"
#include "region/iteration_space.h"

namespace laps {

/// Process identifier, unique within an ExtendedProcessGraph
/// (the paper's "unique id" convention for EPG nodes).
using ProcessId = std::uint32_t;

/// Task (application) identifier.
using TaskId = std::uint32_t;

/// One affine loop nest: every iteration performs the listed array
/// references plus \p computeCyclesPerIter cycles of pure computation.
struct LoopNest {
  IterationSpace space;
  std::vector<ArrayAccess> accesses;
  std::int64_t computeCyclesPerIter = 1;

  /// Memory references issued by the whole nest.
  [[nodiscard]] std::int64_t totalReferences() const {
    return space.numPoints() * static_cast<std::int64_t>(accesses.size());
  }
};

/// The static description of a process: identity plus behaviour.
struct ProcessSpec {
  ProcessId id = 0;
  TaskId task = 0;
  std::string name;
  std::vector<LoopNest> nests;

  [[nodiscard]] std::int64_t totalIterations() const;
  [[nodiscard]] std::int64_t totalReferences() const;
  [[nodiscard]] std::int64_t totalComputeCycles() const;

  /// A scheduler-visible duration estimate (used by SJF and critical-path
  /// extensions): compute cycles plus references costed at \p refLatency.
  [[nodiscard]] std::int64_t estimatedCycles(std::int64_t refLatency = 2) const;

  /// Exact element footprint over all nests (the paper's DS set).
  [[nodiscard]] Footprint footprint(const ArrayTable& arrays) const;
};

}  // namespace laps

#pragma once
/// \file validate.h
/// \brief Whole-workload consistency checks.
///
/// Run once per scenario (tests and the experiment harness do) to catch
/// malformed workloads early: out-of-bounds accesses, unknown arrays,
/// dependence cycles.

#include "taskgraph/graph.h"

namespace laps {

/// Throws laps::Error with a descriptive message when \p workload is
/// inconsistent:
///  * a process references an array id not in the table,
///  * an access's footprint falls outside its array's bounds,
///  * the dependence graph has a cycle.
void validateWorkload(const Workload& workload);

}  // namespace laps

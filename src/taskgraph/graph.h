#pragma once
/// \file graph.h
/// \brief The extended process graph (EPG) of paper §3.
///
/// Nodes are processes; a directed edge P -> Q means Q may start only
/// after P completes. Edges may cross task boundaries (inter-task
/// dependences), which is what makes the graph "extended".

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "taskgraph/process.h"

namespace laps {

/// DAG of processes with dependence edges. Process ids are dense indices
/// assigned by addProcess in insertion order.
class ExtendedProcessGraph {
 public:
  /// Adds a process; its `id` field is overwritten with the assigned id.
  ProcessId addProcess(ProcessSpec spec);

  /// Declares that \p to depends on \p from (from must finish first).
  /// Rejects self-edges and unknown ids; duplicate edges are ignored.
  void addDependence(ProcessId from, ProcessId to);

  [[nodiscard]] std::size_t processCount() const { return processes_.size(); }
  [[nodiscard]] const ProcessSpec& process(ProcessId id) const;
  [[nodiscard]] const std::vector<ProcessSpec>& processes() const {
    return processes_;
  }

  [[nodiscard]] const std::vector<ProcessId>& predecessors(ProcessId id) const;
  [[nodiscard]] const std::vector<ProcessId>& successors(ProcessId id) const;

  /// Processes with no incoming dependence edge — the paper's IN set.
  [[nodiscard]] std::vector<ProcessId> roots() const;

  /// All processes belonging to \p task.
  [[nodiscard]] std::vector<ProcessId> processesOfTask(TaskId task) const;

  /// Distinct task ids present, in first-appearance order.
  [[nodiscard]] std::vector<TaskId> tasks() const;

  /// Number of dependence edges.
  [[nodiscard]] std::size_t edgeCount() const { return edgeCount_; }

  /// Topological order; throws laps::Error if the graph has a cycle.
  [[nodiscard]] std::vector<ProcessId> topologicalOrder() const;

  /// True when the graph is acyclic. Memoized: replanning policies ask
  /// on every rebuild, and the answer only changes when an edge is
  /// added (a new process cannot close a cycle), so addDependence is
  /// the sole invalidation point.
  [[nodiscard]] bool isAcyclic() const;

  /// True when \p order contains every process exactly once and never
  /// places a process before one of its predecessors.
  [[nodiscard]] bool respectsDependences(const std::vector<ProcessId>& order) const;

  /// Length (in estimatedCycles) of the longest dependence chain ending
  /// at each process — the upward rank used by the critical-path
  /// scheduler extension.
  [[nodiscard]] std::vector<std::int64_t> criticalPathCycles() const;

  /// Exact per-process footprints (paper's DS sets).
  [[nodiscard]] std::vector<Footprint> footprints(const ArrayTable& arrays) const;

  /// Graphviz dot rendering (node label = name, cluster per task).
  [[nodiscard]] std::string toDot() const;

 private:
  void checkId(ProcessId id) const;

  std::vector<ProcessSpec> processes_;
  std::vector<std::vector<ProcessId>> preds_;
  std::vector<std::vector<ProcessId>> succs_;
  std::size_t edgeCount_ = 0;
  /// isAcyclic() memo; nullopt = not computed since the last edge.
  mutable std::optional<bool> acyclic_;
};

/// A complete schedulable problem instance: the arrays of all resident
/// applications plus their merged process graph.
struct Workload {
  ArrayTable arrays;
  ExtendedProcessGraph graph;

  /// Convenience: per-process footprints.
  [[nodiscard]] std::vector<Footprint> footprints() const {
    return graph.footprints(arrays);
  }
};

}  // namespace laps

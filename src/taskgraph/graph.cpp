#include "taskgraph/graph.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"
#include "util/parallel.h"

namespace laps {

ProcessId ExtendedProcessGraph::addProcess(ProcessSpec spec) {
  const auto id = static_cast<ProcessId>(processes_.size());
  spec.id = id;
  processes_.push_back(std::move(spec));
  preds_.emplace_back();
  succs_.emplace_back();
  return id;
}

void ExtendedProcessGraph::checkId(ProcessId id) const {
  check(id < processes_.size(), "ExtendedProcessGraph: unknown process id");
}

void ExtendedProcessGraph::addDependence(ProcessId from, ProcessId to) {
  checkId(from);
  checkId(to);
  check(from != to, "ExtendedProcessGraph: self-dependence not allowed");
  auto& succ = succs_[from];
  if (std::find(succ.begin(), succ.end(), to) != succ.end()) {
    return;  // duplicate edge
  }
  succ.push_back(to);
  preds_[to].push_back(from);
  ++edgeCount_;
  acyclic_.reset();  // the new edge may have closed a cycle
}

const ProcessSpec& ExtendedProcessGraph::process(ProcessId id) const {
  checkId(id);
  return processes_[id];
}

const std::vector<ProcessId>& ExtendedProcessGraph::predecessors(
    ProcessId id) const {
  checkId(id);
  return preds_[id];
}

const std::vector<ProcessId>& ExtendedProcessGraph::successors(
    ProcessId id) const {
  checkId(id);
  return succs_[id];
}

std::vector<ProcessId> ExtendedProcessGraph::roots() const {
  std::vector<ProcessId> out;
  for (ProcessId id = 0; id < processes_.size(); ++id) {
    if (preds_[id].empty()) out.push_back(id);
  }
  return out;
}

std::vector<ProcessId> ExtendedProcessGraph::processesOfTask(TaskId task) const {
  std::vector<ProcessId> out;
  for (const auto& p : processes_) {
    if (p.task == task) out.push_back(p.id);
  }
  return out;
}

std::vector<TaskId> ExtendedProcessGraph::tasks() const {
  std::vector<TaskId> out;
  for (const auto& p : processes_) {
    if (std::find(out.begin(), out.end(), p.task) == out.end()) {
      out.push_back(p.task);
    }
  }
  return out;
}

std::vector<ProcessId> ExtendedProcessGraph::topologicalOrder() const {
  std::vector<std::size_t> remaining(processes_.size());
  std::vector<ProcessId> ready;
  for (ProcessId id = 0; id < processes_.size(); ++id) {
    remaining[id] = preds_[id].size();
    if (remaining[id] == 0) ready.push_back(id);
  }
  std::vector<ProcessId> order;
  order.reserve(processes_.size());
  // Kahn's algorithm; FIFO over `ready` keeps the order stable.
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const ProcessId id = ready[head];
    order.push_back(id);
    for (const ProcessId succ : succs_[id]) {
      if (--remaining[succ] == 0) ready.push_back(succ);
    }
  }
  check(order.size() == processes_.size(),
        "ExtendedProcessGraph: dependence cycle detected");
  return order;
}

bool ExtendedProcessGraph::isAcyclic() const {
  if (!acyclic_) {
    try {
      (void)topologicalOrder();
      acyclic_ = true;
    } catch (const Error&) {
      acyclic_ = false;
    }
  }
  return *acyclic_;
}

bool ExtendedProcessGraph::respectsDependences(
    const std::vector<ProcessId>& order) const {
  if (order.size() != processes_.size()) return false;
  std::vector<std::int64_t> position(processes_.size(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] >= processes_.size()) return false;
    if (position[order[i]] != -1) return false;  // duplicate
    position[order[i]] = static_cast<std::int64_t>(i);
  }
  for (ProcessId id = 0; id < processes_.size(); ++id) {
    for (const ProcessId pred : preds_[id]) {
      if (position[pred] > position[id]) return false;
    }
  }
  return true;
}

std::vector<std::int64_t> ExtendedProcessGraph::criticalPathCycles() const {
  const std::vector<ProcessId> order = topologicalOrder();
  std::vector<std::int64_t> longest(processes_.size(), 0);
  // Process in reverse topological order: longest[p] = cost(p) + max(succ).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const ProcessId id = *it;
    std::int64_t tail = 0;
    for (const ProcessId succ : succs_[id]) {
      tail = std::max(tail, longest[succ]);
    }
    longest[id] = processes_[id].estimatedCycles() + tail;
  }
  return longest;
}

std::vector<Footprint> ExtendedProcessGraph::footprints(
    const ArrayTable& arrays) const {
  // Each process's footprint is a pure function of its spec and the
  // (read-only) array table, and parallelMap collects in index order —
  // bit-identical to the serial loop at any thread count.
  return parallelMap<Footprint>(processes_.size(), [&](std::size_t i) {
    return processes_[i].footprint(arrays);
  });
}

std::string ExtendedProcessGraph::toDot() const {
  std::ostringstream os;
  os << "digraph epg {\n  rankdir=TB;\n";
  for (const TaskId task : tasks()) {
    os << "  subgraph cluster_task" << task << " {\n";
    os << "    label=\"task " << task << "\";\n";
    for (const ProcessId id : processesOfTask(task)) {
      os << "    p" << id << " [label=\"" << processes_[id].name << "\"];\n";
    }
    os << "  }\n";
  }
  for (ProcessId id = 0; id < processes_.size(); ++id) {
    for (const ProcessId succ : succs_[id]) {
      os << "  p" << id << " -> p" << succ << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace laps

#include "taskgraph/validate.h"

#include "util/error.h"

namespace laps {

void validateWorkload(const Workload& workload) {
  check(workload.graph.isAcyclic(),
        "validateWorkload: dependence graph has a cycle");
  for (const ProcessSpec& p : workload.graph.processes()) {
    for (const LoopNest& nest : p.nests) {
      for (const ArrayAccess& access : nest.accesses) {
        check(access.array < workload.arrays.size(),
              "validateWorkload: process '" + p.name +
                  "' references unknown array id " +
                  std::to_string(access.array));
        const ArrayInfo& info = workload.arrays.at(access.array);
        const IntervalSet fp = accessFootprint(nest.space, access, info);
        if (fp.empty()) continue;
        const Interval b = fp.bounds();
        check(b.lo >= 0 && b.hi <= info.numElements(),
              "validateWorkload: process '" + p.name + "' accesses array '" +
                  info.name + "' out of bounds ([" + std::to_string(b.lo) +
                  ", " + std::to_string(b.hi) + ") vs " +
                  std::to_string(info.numElements()) + " elements)");
      }
    }
  }
}

}  // namespace laps

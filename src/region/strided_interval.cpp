#include "region/strided_interval.h"

#include <numeric>

#include "util/error.h"

namespace laps {
namespace {

/// Extended Euclid: returns g = gcd(a, b) and x, y with a*x + b*y = g.
struct Egcd {
  std::int64_t g, x, y;
};

Egcd egcd(std::int64_t a, std::int64_t b) {
  if (b == 0) return {a, 1, 0};
  const Egcd sub = egcd(b, a % b);
  return {sub.g, sub.y, sub.x - (a / b) * sub.y};
}

/// Floor modulo: result in [0, m) for m > 0.
std::int64_t floorMod(std::int64_t value, std::int64_t m) {
  const std::int64_t r = value % m;
  return r < 0 ? r + m : r;
}

}  // namespace

std::optional<std::int64_t> solveLinearCongruence(std::int64_t a,
                                                  std::int64_t c,
                                                  std::int64_t m) {
  check(m > 0, "solveLinearCongruence requires positive modulus");
  const Egcd e = egcd(floorMod(a, m), m);
  const std::int64_t g = e.g == 0 ? m : e.g;
  if (floorMod(c, g) != 0) return std::nullopt;
  const std::int64_t mg = m / g;
  // x = (c/g) * inv(a/g) mod (m/g); e.x is the Bezout coefficient of a.
  __extension__ typedef __int128 Wide;
  const auto prod = static_cast<Wide>(e.x) * (c / g);
  return static_cast<std::int64_t>(
      floorMod(static_cast<std::int64_t>(prod % mg), mg));
}

bool StridedInterval::contains(std::int64_t x) const {
  if (empty()) return false;
  if (x < base || x > back()) return false;
  return (x - base) % stride == 0;
}

IntervalSet StridedInterval::toIntervalSet() const {
  if (empty()) return {};
  check(stride >= 1, "StridedInterval stride must be >= 1");
  if (stride == 1) return IntervalSet::range(base, base + count);
  IntervalSet::Builder builder(static_cast<std::size_t>(count));
  for (std::int64_t k = 0; k < count; ++k) {
    builder.addPoint(base + k * stride);
  }
  return builder.build();
}

StridedInterval StridedInterval::intersect(const StridedInterval& other) const {
  if (empty() || other.empty()) return {};
  check(stride >= 1 && other.stride >= 1, "strides must be >= 1");
  // Solve base + i*stride ≡ other.base (mod other.stride).
  const auto i0 = solveLinearCongruence(stride, other.base - base, other.stride);
  if (!i0) return {};
  const std::int64_t g = std::gcd(stride, other.stride);
  const std::int64_t commonStride = stride / g * other.stride;  // lcm
  std::int64_t x0 = base + *i0 * stride;
  const std::int64_t lo = std::max(base, other.base);
  const std::int64_t hi = std::min(back(), other.back());
  if (x0 < lo) {
    const std::int64_t steps = (lo - x0 + commonStride - 1) / commonStride;
    x0 += steps * commonStride;
  }
  if (x0 > hi) return {};
  const std::int64_t n = (hi - x0) / commonStride + 1;
  return StridedInterval{x0, commonStride, n};
}

std::int64_t StridedInterval::intersectCount(const StridedInterval& other) const {
  return intersect(other).count;
}

}  // namespace laps

#include "region/sharing.h"

#include <algorithm>

#include "util/error.h"

namespace laps {

SharingMatrix::SharingMatrix(std::size_t n) : n_(n), cells_(n * n, 0) {}

std::size_t SharingMatrix::idx(std::size_t p, std::size_t q) const {
  check(p < n_ && q < n_, "SharingMatrix: index out of range");
  return p * n_ + q;
}

SharingMatrix SharingMatrix::compute(std::span<const Footprint> footprints) {
  SharingMatrix m(footprints.size());
  for (std::size_t p = 0; p < footprints.size(); ++p) {
    m.set(p, p, footprints[p].totalElements());
    for (std::size_t q = p + 1; q < footprints.size(); ++q) {
      const std::int64_t shared = footprints[p].sharedElements(footprints[q]);
      m.set(p, q, shared);
      m.set(q, p, shared);
    }
  }
  return m;
}

std::int64_t SharingMatrix::at(std::size_t p, std::size_t q) const {
  return cells_[idx(p, q)];
}

void SharingMatrix::set(std::size_t p, std::size_t q, std::int64_t value) {
  cells_[idx(p, q)] = value;
}

std::int64_t SharingMatrix::rowSum(std::size_t p,
                                   std::span<const std::size_t> candidates) const {
  std::int64_t total = 0;
  if (candidates.empty()) {
    for (std::size_t q = 0; q < n_; ++q) {
      if (q != p) total += at(p, q);
    }
  } else {
    for (const std::size_t q : candidates) {
      if (q != p) total += at(p, q);
    }
  }
  return total;
}

bool SharingMatrix::isDiagonal() const {
  for (std::size_t p = 0; p < n_; ++p) {
    for (std::size_t q = 0; q < n_; ++q) {
      if (p != q && at(p, q) != 0) return false;
    }
  }
  return true;
}

Table SharingMatrix::toTable() const {
  std::vector<std::string> headers{""};
  for (std::size_t q = 0; q < n_; ++q) headers.push_back("P" + std::to_string(q));
  Table t(std::move(headers));
  for (std::size_t p = 0; p < n_; ++p) {
    t.row().cell("P" + std::to_string(p));
    for (std::size_t q = 0; q < n_; ++q) {
      t.cell(at(p, q));
    }
  }
  return t;
}

}  // namespace laps

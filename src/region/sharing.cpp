#include "region/sharing.h"

#include <algorithm>

#include "util/error.h"
#include "util/parallel.h"

namespace laps {

SharingMatrix::SharingMatrix(std::size_t n) : n_(n), cells_(n * n, 0) {}

std::size_t SharingMatrix::idx(std::size_t p, std::size_t q) const {
  check(p < n_ && q < n_, "SharingMatrix: index out of range");
  return p * n_ + q;
}

SharingMatrix SharingMatrix::compute(std::span<const Footprint> footprints) {
  const std::size_t n = footprints.size();
  SharingMatrix m(n);
  for (std::size_t p = 0; p < n; ++p) {
    m.cell(p, p) = footprints[p].totalElements();
  }
  if (n < 2) return m;

  // The upper triangle, flattened so static chunks carry near-equal
  // work (chunking rows would leave the last thread the short rows).
  // rowStart[p] is the linear index of pair (p, p+1).
  std::vector<std::size_t> rowStart(n - 1);
  std::size_t acc = 0;
  for (std::size_t p = 0; p + 1 < n; ++p) {
    rowStart[p] = acc;
    acc += n - 1 - p;
  }
  const std::size_t pairs = acc;

  // Each linear index owns cells (p, q) and (q, p) exclusively, and
  // sharedElements is a pure function of the two footprints — so the
  // matrix is bit-identical to the serial loop at any thread count.
  // Within a chunk (p, q) advances incrementally: the unranking
  // upper_bound runs once per chunk, not per pair.
  parallelChunks(pairs, [&](std::size_t begin, std::size_t end) {
    std::size_t p =
        static_cast<std::size_t>(
            std::upper_bound(rowStart.begin(), rowStart.end(), begin) -
            rowStart.begin()) -
        1;
    std::size_t q = p + 1 + (begin - rowStart[p]);
    for (std::size_t k = begin; k < end; ++k) {
      const std::int64_t shared = footprints[p].sharedElements(footprints[q]);
      m.cell(p, q) = shared;
      m.cell(q, p) = shared;
      if (++q == n) {
        ++p;
        q = p + 1;
      }
    }
  });
  return m;
}

std::int64_t SharingMatrix::at(std::size_t p, std::size_t q) const {
  return cells_[idx(p, q)];
}

void SharingMatrix::set(std::size_t p, std::size_t q, std::int64_t value) {
  cells_[idx(p, q)] = value;
}

std::int64_t SharingMatrix::rowSum(std::size_t p,
                                   std::span<const std::size_t> candidates) const {
  check(p < n_, "SharingMatrix::rowSum: index out of range");
  std::int64_t total = 0;
  if (candidates.empty()) {
    for (std::size_t q = 0; q < n_; ++q) {
      if (q != p) total += cell(p, q);
    }
  } else {
    for (const std::size_t q : candidates) {
      check(q < n_, "SharingMatrix::rowSum: candidate out of range");
      if (q != p) total += cell(p, q);
    }
  }
  return total;
}

bool SharingMatrix::isDiagonal() const {
  for (std::size_t p = 0; p < n_; ++p) {
    for (std::size_t q = 0; q < n_; ++q) {
      if (p != q && cell(p, q) != 0) return false;
    }
  }
  return true;
}

Table SharingMatrix::toTable() const {
  std::vector<std::string> headers{""};
  for (std::size_t q = 0; q < n_; ++q) headers.push_back("P" + std::to_string(q));
  Table t(std::move(headers));
  for (std::size_t p = 0; p < n_; ++p) {
    t.row().cell("P" + std::to_string(p));
    for (std::size_t q = 0; q < n_; ++q) {
      t.cell(cell(p, q));
    }
  }
  return t;
}

}  // namespace laps

#include "region/sharing.h"

#include <algorithm>
#include <string>

#include "util/audit.h"
#include "util/error.h"
#include "util/parallel.h"

namespace laps {

SharingMatrix::SharingMatrix(std::size_t n)
    : n_(n), cells_(n * n, 0), active_(n, 1) {}

SharingMatrix SharingMatrix::inactive(std::size_t n) {
  SharingMatrix m(n);
  m.active_.assign(n, 0);
  return m;
}

std::size_t SharingMatrix::idx(std::size_t p, std::size_t q) const {
  check(p < n_ && q < n_, "SharingMatrix: index out of range");
  return p * n_ + q;
}

void SharingMatrix::addProcess(std::span<const Footprint> footprints,
                               std::size_t p) {
  check(footprints.size() == n_,
        "SharingMatrix::addProcess: footprint universe size mismatch");
  check(p < n_, "SharingMatrix::addProcess: index out of range");
  check(!active_[p], "SharingMatrix::addProcess: process already active");
  active_[p] = 1;
  cell(p, p) = footprints[p].totalElements();
  // Only the active processes intersect p; inactive rows stay zero. Each
  // index q owns cells (p, q) and (q, p) exclusively, so the parallel
  // update is bit-identical to the serial loop at any thread count. The
  // operand order mirrors compute()'s upper-triangle evaluation
  // (footprints[min].sharedElements(footprints[max])), so the values are
  // the very same calls a from-scratch compute over the active set makes.
  const auto updateRange = [&](std::size_t begin, std::size_t end) {
    for (std::size_t q = begin; q < end; ++q) {
      if (q == p || !active_[q]) continue;
      const std::size_t lo = std::min(p, q);
      const std::size_t hi = std::max(p, q);
      const std::int64_t shared =
          footprints[lo].sharedElements(footprints[hi]);
      cell(p, q) = shared;
      cell(q, p) = shared;
    }
  };
  // A row update is O(n) cheap intersections; below this width the
  // pool's dispatch+sync overhead exceeds the whole row's work (the
  // committed BM_SharingMatrixIncremental numbers show the update in
  // single-digit microseconds even at 660 processes), so small
  // universes run inline. Same calls, same cells — identical result.
  constexpr std::size_t kParallelRowCutoff = 256;
  if (n_ < kParallelRowCutoff) {
    updateRange(0, n_);
  } else {
    parallelChunks(n_, updateRange);
  }
}

void SharingMatrix::removeProcess(std::size_t p) {
  check(p < n_, "SharingMatrix::removeProcess: index out of range");
  check(active_[p], "SharingMatrix::removeProcess: process not active");
  active_[p] = 0;
  for (std::size_t q = 0; q < n_; ++q) {
    cell(p, q) = 0;
    cell(q, p) = 0;
  }
}

bool SharingMatrix::isActive(std::size_t p) const {
  check(p < n_, "SharingMatrix::isActive: index out of range");
  return active_[p] != 0;
}

std::size_t SharingMatrix::activeCount() const {
  std::size_t count = 0;
  for (const char a : active_) count += static_cast<std::size_t>(a);
  return count;
}

SharingMatrix SharingMatrix::compute(std::span<const Footprint> footprints) {
  const std::size_t n = footprints.size();
  SharingMatrix m(n);
  for (std::size_t p = 0; p < n; ++p) {
    m.cell(p, p) = footprints[p].totalElements();
  }
  if (n < 2) return m;

  // The upper triangle, flattened so static chunks carry near-equal
  // work (chunking rows would leave the last thread the short rows).
  // rowStart[p] is the linear index of pair (p, p+1).
  std::vector<std::size_t> rowStart(n - 1);
  std::size_t acc = 0;
  for (std::size_t p = 0; p + 1 < n; ++p) {
    rowStart[p] = acc;
    acc += n - 1 - p;
  }
  const std::size_t pairs = acc;

  // Each linear index owns cells (p, q) and (q, p) exclusively, and
  // sharedElements is a pure function of the two footprints — so the
  // matrix is bit-identical to the serial loop at any thread count.
  // Within a chunk (p, q) advances incrementally: the unranking
  // upper_bound runs once per chunk, not per pair.
  parallelChunks(pairs, [&](std::size_t begin, std::size_t end) {
    std::size_t p =
        static_cast<std::size_t>(
            std::upper_bound(rowStart.begin(), rowStart.end(), begin) -
            rowStart.begin()) -
        1;
    std::size_t q = p + 1 + (begin - rowStart[p]);
    for (std::size_t k = begin; k < end; ++k) {
      const std::int64_t shared = footprints[p].sharedElements(footprints[q]);
      m.cell(p, q) = shared;
      m.cell(q, p) = shared;
      if (++q == n) {
        ++p;
        q = p + 1;
      }
    }
  });
  return m;
}

std::int64_t SharingMatrix::at(std::size_t p, std::size_t q) const {
  return cells_[idx(p, q)];
}

void SharingMatrix::set(std::size_t p, std::size_t q, std::int64_t value) {
  cells_[idx(p, q)] = value;
}

std::span<const std::int64_t> SharingMatrix::row(std::size_t p) const {
  check(p < n_, "SharingMatrix::row: index out of range");
  return {cells_.data() + p * n_, n_};
}

std::int64_t SharingMatrix::rowSum(std::size_t p,
                                   std::span<const std::size_t> candidates) const {
  check(p < n_, "SharingMatrix::rowSum: index out of range");
  std::int64_t total = 0;
  if (candidates.empty()) {
    for (std::size_t q = 0; q < n_; ++q) {
      if (q != p) total += cell(p, q);
    }
  } else {
    for (const std::size_t q : candidates) {
      check(q < n_, "SharingMatrix::rowSum: candidate out of range");
      if (q != p) total += cell(p, q);
    }
  }
  return total;
}

bool SharingMatrix::isDiagonal() const {
  for (std::size_t p = 0; p < n_; ++p) {
    for (std::size_t q = 0; q < n_; ++q) {
      if (p != q && cell(p, q) != 0) return false;
    }
  }
  return true;
}

void SharingMatrix::auditInvariants() const {
  for (std::size_t p = 0; p < n_; ++p) {
    if (!active_[p]) {
      for (std::size_t q = 0; q < n_; ++q) {
        audit::require(cell(p, q) == 0 && cell(q, p) == 0,
                       "SharingMatrix: inactive process " + std::to_string(p) +
                           " has a nonzero row or column entry at " +
                           std::to_string(q));
      }
      continue;
    }
    audit::require(cell(p, p) >= 0,
                   "SharingMatrix: negative diagonal (footprint size) for "
                   "process " +
                       std::to_string(p));
    for (std::size_t q = p + 1; q < n_; ++q) {
      audit::require(cell(p, q) == cell(q, p),
                     "SharingMatrix: asymmetric cells (" + std::to_string(p) +
                         ", " + std::to_string(q) + "): " +
                         std::to_string(cell(p, q)) + " vs " +
                         std::to_string(cell(q, p)));
    }
  }
}

namespace audit {

void activeSetAgreement(const SharingMatrix& matrix,
                        const std::vector<bool>& arrived,
                        const std::vector<bool>& exited,
                        std::size_t inSystem) {
  require(arrived.size() == matrix.size() && exited.size() == matrix.size(),
          "activeSetAgreement: live-set vectors do not match the matrix "
          "universe");
  std::size_t live = 0;
  for (std::size_t p = 0; p < matrix.size(); ++p) {
    const bool shouldBeActive = arrived[p] && !exited[p];
    require(matrix.isActive(p) == shouldBeActive,
            "SharingMatrix active set disagrees with the live process set "
            "at process " +
                std::to_string(p) + ": matrix says " +
                (matrix.isActive(p) ? "active" : "inactive") +
                ", engine says " + (shouldBeActive ? "live" : "gone"));
    live += shouldBeActive ? 1 : 0;
  }
  require(matrix.activeCount() == live && live == inSystem,
          "SharingMatrix active count (" +
              std::to_string(matrix.activeCount()) +
              ") disagrees with the engine's in-system count (" +
              std::to_string(inSystem) + ")");
}

}  // namespace audit

namespace {

// Built with += rather than "P" + to_string(): gcc 12's -Wrestrict
// false-fires on operator+(const char*, string&&) at -O2 depending on
// inlining context, and this TU builds -Werror.
std::string processLabel(std::size_t p) {
  std::string label = "P";
  label += std::to_string(p);
  return label;
}

}  // namespace

Table SharingMatrix::toTable() const {
  std::vector<std::string> headers{""};
  for (std::size_t q = 0; q < n_; ++q) headers.push_back(processLabel(q));
  Table t(std::move(headers));
  for (std::size_t p = 0; p < n_; ++p) {
    t.row().cell(processLabel(p));
    for (std::size_t q = 0; q < n_; ++q) {
      t.cell(cell(p, q));
    }
  }
  return t;
}

}  // namespace laps

#pragma once
/// \file interval_set.h
/// \brief Exact sets of integers as sorted, disjoint, coalesced intervals.
///
/// IntervalSet is the canonical representation of a data footprint over a
/// row-major linearization of an array (paper §2: the data sets DS and
/// their intersections SS). All operations are exact.

#include <cstdint>
#include <vector>

#include "region/interval.h"

namespace laps {

/// An exact set of int64 points stored as sorted, pairwise-disjoint,
/// non-adjacent (maximally coalesced) half-open intervals.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// Constructs from arbitrary intervals (normalized internally).
  explicit IntervalSet(std::vector<Interval> intervals);

  /// Singleton set {x}.
  static IntervalSet point(std::int64_t x) { return IntervalSet({Interval{x, x + 1}}); }

  /// The set [lo, hi).
  static IntervalSet range(std::int64_t lo, std::int64_t hi) {
    return IntervalSet({Interval{lo, hi}});
  }

  /// Inserts one interval, preserving invariants. O(n) worst case; prefer
  /// Builder for bulk construction.
  void insert(Interval iv);

  /// Set union, intersection and difference. All O(n + m).
  [[nodiscard]] IntervalSet unite(const IntervalSet& other) const;
  [[nodiscard]] IntervalSet intersect(const IntervalSet& other) const;
  [[nodiscard]] IntervalSet subtract(const IntervalSet& other) const;

  /// |this ∩ other| without materializing the intersection.
  [[nodiscard]] std::int64_t intersectCardinality(const IntervalSet& other) const;

  /// Number of points in the set.
  [[nodiscard]] std::int64_t cardinality() const;

  /// Number of stored intervals (fragmentation measure).
  [[nodiscard]] std::size_t pieceCount() const { return pieces_.size(); }

  [[nodiscard]] bool empty() const { return pieces_.empty(); }
  [[nodiscard]] bool contains(std::int64_t x) const;

  /// True when every point of \p other is in this set.
  [[nodiscard]] bool containsAll(const IntervalSet& other) const;

  /// Smallest enclosing interval; Interval{} (empty) for the empty set.
  [[nodiscard]] Interval bounds() const;

  [[nodiscard]] const std::vector<Interval>& pieces() const { return pieces_; }

  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

  /// Accumulates many intervals and normalizes once — O(k log k) total,
  /// the fast path for footprint enumeration.
  class Builder {
   public:
    /// Pre-reserves capacity for \p expected intervals.
    explicit Builder(std::size_t expected = 0) { raw_.reserve(expected); }

    void add(Interval iv) {
      if (!iv.empty()) raw_.push_back(iv);
    }
    void add(std::int64_t lo, std::int64_t hi) { add(Interval{lo, hi}); }
    void addPoint(std::int64_t x) { add(Interval{x, x + 1}); }

    /// Appends the arithmetic progression {lo + k*stride : 0 <= k < count}
    /// (stride >= 1) as a bulk of pre-sorted intervals — the strided
    /// footprint fast path. One interval for stride 1, else `count` unit
    /// intervals emitted in one tight, pre-sized loop.
    void addStridedRun(std::int64_t lo, std::int64_t stride,
                       std::int64_t count) {
      if (count <= 0) return;
      if (stride == 1 || count == 1) {
        raw_.push_back(Interval{lo, lo + (stride == 1 ? count : 1)});
        return;
      }
      const std::size_t base = raw_.size();
      raw_.resize(base + static_cast<std::size_t>(count));
      std::int64_t x = lo;
      for (std::size_t k = 0; k < static_cast<std::size_t>(count); ++k) {
        raw_[base + k] = Interval{x, x + 1};
        x += stride;
      }
    }

    /// Number of intervals buffered so far.
    [[nodiscard]] std::size_t size() const { return raw_.size(); }

    /// Produces the normalized set and resets the builder.
    [[nodiscard]] IntervalSet build();

   private:
    std::vector<Interval> raw_;
  };

 private:
  void normalize();
  void normalizeNonEmpty();

  std::vector<Interval> pieces_;  // sorted, disjoint, coalesced, non-empty
};

}  // namespace laps

#include "region/array.h"

#include "util/error.h"

namespace laps {

std::int64_t ArrayInfo::numElements() const {
  std::int64_t total = 1;
  for (const std::int64_t e : extents) {
    check(e >= 0, "ArrayInfo extent must be non-negative");
    total *= e;
  }
  return total;
}

std::vector<std::int64_t> ArrayInfo::rowMajorStrides() const {
  std::vector<std::int64_t> strides(extents.size(), 1);
  for (std::size_t d = extents.size(); d-- > 1;) {
    strides[d - 1] = strides[d] * extents[d];
  }
  return strides;
}

std::int64_t ArrayInfo::linearize(std::span<const std::int64_t> index) const {
  check(index.size() == extents.size(), "linearize: index rank mismatch");
  std::int64_t offset = 0;
  std::int64_t stride = 1;
  for (std::size_t d = extents.size(); d-- > 0;) {
    check(index[d] >= 0 && index[d] < extents[d],
          "linearize: index out of bounds for array " + name);
    offset += index[d] * stride;
    stride *= extents[d];
  }
  return offset;
}

ArrayId ArrayTable::add(std::string name, std::vector<std::int64_t> extents,
                        std::int64_t elemSize) {
  check(elemSize > 0, "ArrayTable::add: elemSize must be positive");
  check(!extents.empty(), "ArrayTable::add: arrays need at least one dimension");
  ArrayInfo info;
  info.id = static_cast<ArrayId>(arrays_.size());
  info.name = std::move(name);
  info.extents = std::move(extents);
  info.elemSize = elemSize;
  arrays_.push_back(std::move(info));
  return arrays_.back().id;
}

const ArrayInfo& ArrayTable::at(ArrayId id) const {
  check(id < arrays_.size(), "ArrayTable::at: unknown array id");
  return arrays_[id];
}

std::int64_t ArrayTable::totalBytes() const {
  std::int64_t total = 0;
  for (const auto& a : arrays_) total += a.sizeBytes();
  return total;
}

}  // namespace laps

#pragma once
/// \file affine.h
/// \brief Affine expressions and maps over loop index vectors.
///
/// Paper §2 example: the access A[i1*1000 + i2][5] is the affine map
///   (i1, i2) -> (1000*i1 + 1*i2 + 0, 5).
/// AffineExpr is one output coordinate; AffineMap is the full index map.

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace laps {

/// c0 + sum_k coeffs[k] * i_k over an iteration vector i.
class AffineExpr {
 public:
  AffineExpr() = default;

  /// \p coeffs has one entry per loop dimension (outermost first).
  AffineExpr(std::vector<std::int64_t> coeffs, std::int64_t constant);

  /// Constant expression (no loop dependence).
  static AffineExpr constant(std::int64_t c) { return AffineExpr({}, c); }

  /// The single loop variable \p dim of a \p rank -dimensional nest.
  static AffineExpr var(std::size_t dim, std::size_t rank);

  [[nodiscard]] std::int64_t eval(std::span<const std::int64_t> point) const;

  [[nodiscard]] std::int64_t coeff(std::size_t k) const {
    return k < coeffs_.size() ? coeffs_[k] : 0;
  }
  [[nodiscard]] std::int64_t constantTerm() const { return c0_; }
  [[nodiscard]] std::size_t rank() const { return coeffs_.size(); }
  [[nodiscard]] bool isConstant() const;

  /// Returns this + other (ranks must match or one side constant).
  [[nodiscard]] AffineExpr plus(const AffineExpr& other) const;
  /// Returns this scaled by \p factor.
  [[nodiscard]] AffineExpr times(std::int64_t factor) const;
  /// Returns this + \p delta.
  [[nodiscard]] AffineExpr shift(std::int64_t delta) const;

  [[nodiscard]] std::string toString() const;

  friend bool operator==(const AffineExpr&, const AffineExpr&) = default;

 private:
  std::vector<std::int64_t> coeffs_;
  std::int64_t c0_ = 0;
};

/// One AffineExpr per array dimension.
class AffineMap {
 public:
  AffineMap() = default;
  AffineMap(std::initializer_list<AffineExpr> exprs) : exprs_(exprs) {}
  explicit AffineMap(std::vector<AffineExpr> exprs) : exprs_(std::move(exprs)) {}

  [[nodiscard]] std::size_t results() const { return exprs_.size(); }
  [[nodiscard]] const AffineExpr& expr(std::size_t d) const;
  [[nodiscard]] const std::vector<AffineExpr>& exprs() const { return exprs_; }

  /// Evaluates all coordinates at \p point into \p out (resized).
  void eval(std::span<const std::int64_t> point,
            std::vector<std::int64_t>& out) const;

  [[nodiscard]] std::string toString() const;

  friend bool operator==(const AffineMap&, const AffineMap&) = default;

 private:
  std::vector<AffineExpr> exprs_;
};

}  // namespace laps

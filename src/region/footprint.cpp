#include "region/footprint.h"

#include <algorithm>
#include <cstdlib>

#include "util/error.h"

namespace laps {

AffineExpr linearizeAccess(const ArrayAccess& access, const ArrayInfo& info) {
  check(access.map.results() == info.rank(),
        "linearizeAccess: access rank does not match array " + info.name);
  const std::vector<std::int64_t> strides = info.rowMajorStrides();
  AffineExpr linear = AffineExpr::constant(0);
  for (std::size_t d = 0; d < info.rank(); ++d) {
    linear = linear.plus(access.map.expr(d).times(strides[d]));
  }
  return linear;
}

IntervalSet accessFootprint(const IterationSpace& space,
                            const ArrayAccess& access, const ArrayInfo& info,
                            std::int64_t budget) {
  if (space.empty()) return {};
  const AffineExpr linear = linearizeAccess(access, info);

  // Pick the "run" dimension: the loop whose per-iteration address step is
  // smallest in magnitude. Its iterations become one strided run per
  // combination of the remaining dimensions.
  const std::size_t rank = space.rank();
  std::size_t runDim = rank;  // sentinel: expression constant over the space
  std::int64_t runStep = 0;
  for (std::size_t d = 0; d < rank; ++d) {
    const std::int64_t step = linear.coeff(d) * space.dim(d).step;
    if (step == 0) continue;
    if (runDim == rank || std::llabs(step) < std::llabs(runStep)) {
      runDim = d;
      runStep = step;
    }
  }

  if (runDim == rank) {
    // Address independent of every loop variable: a single element.
    std::vector<std::int64_t> origin(rank);
    for (std::size_t d = 0; d < rank; ++d) origin[d] = space.dim(d).lo;
    const std::int64_t offset = linear.eval(origin);
    return IntervalSet::point(offset);
  }

  const std::int64_t runCount = space.dim(runDim).tripCount();
  std::int64_t outerCombos = 1;
  for (std::size_t d = 0; d < rank; ++d) {
    if (d != runDim) outerCombos *= space.dim(d).tripCount();
  }
  const std::int64_t fragmentsPerRun =
      (std::llabs(runStep) == 1) ? 1 : runCount;
  check(outerCombos * fragmentsPerRun <= budget,
        "accessFootprint: enumeration budget exceeded; shrink the space or "
        "raise the budget");

  // Enumerate all dimensions except runDim with an odometer.
  IntervalSet::Builder builder(
      static_cast<std::size_t>(outerCombos * fragmentsPerRun));
  std::vector<std::int64_t> point(rank);
  for (std::size_t d = 0; d < rank; ++d) point[d] = space.dim(d).lo;

  const std::int64_t spanLength = (runCount - 1) * runStep;  // signed
  for (;;) {
    const std::int64_t first = linear.eval(point);
    const std::int64_t lo = runStep > 0 ? first : first + spanLength;
    if (std::llabs(runStep) == 1) {
      builder.add(lo, lo + runCount);
    } else {
      const std::int64_t stride = std::llabs(runStep);
      for (std::int64_t k = 0; k < runCount; ++k) {
        builder.addPoint(lo + k * stride);
      }
    }
    // Advance the odometer, skipping runDim.
    std::size_t d = rank;
    for (;;) {
      if (d == 0) return builder.build();
      --d;
      if (d == runDim) continue;
      point[d] += space.dim(d).step;
      if (point[d] < space.dim(d).hi) break;
      point[d] = space.dim(d).lo;
    }
  }
}

void Footprint::add(ArrayId array, const IntervalSet& elements) {
  if (elements.empty()) return;
  auto [it, inserted] = perArray_.try_emplace(array, elements);
  if (!inserted) {
    it->second = it->second.unite(elements);
  }
}

const IntervalSet& Footprint::of(ArrayId array) const {
  static const IntervalSet kEmpty;
  const auto it = perArray_.find(array);
  return it == perArray_.end() ? kEmpty : it->second;
}

bool Footprint::touches(ArrayId array) const {
  return perArray_.contains(array);
}

std::vector<ArrayId> Footprint::arrays() const {
  std::vector<ArrayId> ids;
  ids.reserve(perArray_.size());
  for (const auto& [id, _] : perArray_) ids.push_back(id);
  return ids;
}

std::int64_t Footprint::totalElements() const {
  std::int64_t total = 0;
  for (const auto& [_, set] : perArray_) total += set.cardinality();
  return total;
}

std::int64_t Footprint::sharedElements(const Footprint& other) const {
  std::int64_t total = 0;
  for (const auto& [id, set] : perArray_) {
    const auto it = other.perArray_.find(id);
    if (it != other.perArray_.end()) {
      total += set.intersectCardinality(it->second);
    }
  }
  return total;
}

void Footprint::merge(const Footprint& other) {
  for (const auto& [id, set] : other.perArray_) {
    add(id, set);
  }
}

}  // namespace laps

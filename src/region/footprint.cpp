#include "region/footprint.h"

#include <algorithm>
#include <cstdlib>

#include "util/error.h"

namespace laps {

AffineExpr linearizeAccess(const ArrayAccess& access, const ArrayInfo& info) {
  check(access.map.results() == info.rank(),
        "linearizeAccess: access rank does not match array " + info.name);
  const std::vector<std::int64_t> strides = info.rowMajorStrides();
  AffineExpr linear = AffineExpr::constant(0);
  for (std::size_t d = 0; d < info.rank(); ++d) {
    linear = linear.plus(access.map.expr(d).times(strides[d]));
  }
  return linear;
}

IntervalSet accessFootprint(const IterationSpace& space,
                            const ArrayAccess& access, const ArrayInfo& info,
                            std::int64_t budget) {
  if (space.empty()) return {};
  const AffineExpr linear = linearizeAccess(access, info);

  // Pick the "run" dimension: the loop whose per-iteration address step is
  // smallest in magnitude. Its iterations become one strided run per
  // combination of the remaining dimensions.
  const std::size_t rank = space.rank();
  std::size_t runDim = rank;  // sentinel: expression constant over the space
  std::int64_t runStep = 0;
  for (std::size_t d = 0; d < rank; ++d) {
    const std::int64_t step = linear.coeff(d) * space.dim(d).step;
    if (step == 0) continue;
    if (runDim == rank || std::llabs(step) < std::llabs(runStep)) {
      runDim = d;
      runStep = step;
    }
  }

  if (runDim == rank) {
    // Address independent of every loop variable: a single element.
    std::vector<std::int64_t> origin(rank);
    for (std::size_t d = 0; d < rank; ++d) origin[d] = space.dim(d).lo;
    const std::int64_t offset = linear.eval(origin);
    return IntervalSet::point(offset);
  }

  const std::int64_t runCount = space.dim(runDim).tripCount();
  std::int64_t outerCombos = 1;
  for (std::size_t d = 0; d < rank; ++d) {
    if (d != runDim) outerCombos *= space.dim(d).tripCount();
  }
  const std::int64_t fragmentsPerRun =
      (std::llabs(runStep) == 1) ? 1 : runCount;
  check(outerCombos * fragmentsPerRun <= budget,
        "accessFootprint: enumeration budget exceeded; shrink the space or "
        "raise the budget");

  // Enumerate all dimensions except runDim with an odometer, collecting
  // one run start per combination. Every run is the same arithmetic
  // progression shape {lo + k*stride : 0 <= k < runCount}.
  std::vector<std::int64_t> runStarts;
  runStarts.reserve(static_cast<std::size_t>(outerCombos));
  std::vector<std::int64_t> point(rank);
  for (std::size_t d = 0; d < rank; ++d) point[d] = space.dim(d).lo;

  const std::int64_t spanLength = (runCount - 1) * runStep;  // signed
  const std::int64_t stride = std::llabs(runStep);
  for (bool more = true; more;) {
    const std::int64_t first = linear.eval(point);
    runStarts.push_back(runStep > 0 ? first : first + spanLength);
    // Advance the odometer, skipping runDim.
    more = false;
    for (std::size_t d = rank; d > 0;) {
      --d;
      if (d == runDim) continue;
      point[d] += space.dim(d).step;
      if (point[d] < space.dim(d).hi) {
        more = true;
        break;
      }
      point[d] = space.dim(d).lo;
    }
  }

  if (stride == 1) {
    // Contiguous runs: one interval each; normalize coalesces overlaps
    // (and skips its sort when the odometer emitted in ascending order).
    IntervalSet::Builder builder(runStarts.size());
    for (const std::int64_t lo : runStarts) builder.add(lo, lo + runCount);
    return builder.build();
  }

  // Strided fast path: all runs share one stride. When they also share
  // one residue class mod the stride (the common row-major case — every
  // outer-dimension address step is a multiple of the run stride), the
  // union is computed on run *indices*: each run maps to the index
  // interval [(lo - r)/stride, +runCount), the small index union
  // deduplicates overlapping runs exactly, and the expansion back to
  // element offsets is emitted sorted, disjoint and non-adjacent — so
  // build() never sorts and never revisits duplicates.
  const auto floorMod = [](std::int64_t value, std::int64_t m) {
    const std::int64_t r = value % m;
    return r < 0 ? r + m : r;
  };
  const std::int64_t residue = floorMod(runStarts.front(), stride);
  bool singleResidue = true;
  for (const std::int64_t lo : runStarts) {
    if (floorMod(lo, stride) != residue) {
      singleResidue = false;
      break;
    }
  }
  if (singleResidue) {
    IntervalSet::Builder indexRuns(runStarts.size());
    for (const std::int64_t lo : runStarts) {
      const std::int64_t i0 = (lo - residue) / stride;
      indexRuns.add(i0, i0 + runCount);
    }
    const IntervalSet indexSet = indexRuns.build();
    IntervalSet::Builder builder(
        static_cast<std::size_t>(indexSet.cardinality()));
    for (const Interval& iv : indexSet.pieces()) {
      builder.addStridedRun(residue + iv.lo * stride, stride,
                            iv.hi - iv.lo);
    }
    return builder.build();
  }

  // Mixed residues (outer steps not multiples of the run stride): emit
  // each run in bulk and let normalize sort the interleaved result.
  IntervalSet::Builder builder(
      static_cast<std::size_t>(outerCombos * fragmentsPerRun));
  for (const std::int64_t lo : runStarts) {
    builder.addStridedRun(lo, stride, runCount);
  }
  return builder.build();
}

void Footprint::add(ArrayId array, const IntervalSet& elements) {
  if (elements.empty()) return;
  auto [it, inserted] = perArray_.try_emplace(array, elements);
  if (!inserted) {
    it->second = it->second.unite(elements);
  }
}

const IntervalSet& Footprint::of(ArrayId array) const {
  static const IntervalSet kEmpty;
  const auto it = perArray_.find(array);
  return it == perArray_.end() ? kEmpty : it->second;
}

bool Footprint::touches(ArrayId array) const {
  return perArray_.contains(array);
}

std::vector<ArrayId> Footprint::arrays() const {
  std::vector<ArrayId> ids;
  ids.reserve(perArray_.size());
  for (const auto& [id, _] : perArray_) ids.push_back(id);
  return ids;
}

std::int64_t Footprint::totalElements() const {
  std::int64_t total = 0;
  for (const auto& [_, set] : perArray_) total += set.cardinality();
  return total;
}

std::int64_t Footprint::sharedElements(const Footprint& other) const {
  std::int64_t total = 0;
  for (const auto& [id, set] : perArray_) {
    const auto it = other.perArray_.find(id);
    if (it != other.perArray_.end()) {
      total += set.intersectCardinality(it->second);
    }
  }
  return total;
}

void Footprint::merge(const Footprint& other) {
  for (const auto& [id, set] : other.perArray_) {
    add(id, set);
  }
}

}  // namespace laps

#include "region/iteration_space.h"

#include <sstream>

#include "util/error.h"

namespace laps {

IterationSpace::IterationSpace(std::vector<LoopDim> dims) : dims_(std::move(dims)) {
  for (const auto& d : dims_) {
    check(d.step >= 1, "IterationSpace: loop step must be >= 1");
  }
}

IterationSpace IterationSpace::box(
    std::initializer_list<std::pair<std::int64_t, std::int64_t>> bounds) {
  std::vector<LoopDim> dims;
  dims.reserve(bounds.size());
  for (const auto& [lo, hi] : bounds) {
    dims.push_back(LoopDim{lo, hi, 1});
  }
  return IterationSpace(std::move(dims));
}

const LoopDim& IterationSpace::dim(std::size_t d) const {
  check(d < dims_.size(), "IterationSpace::dim out of range");
  return dims_[d];
}

std::int64_t IterationSpace::numPoints() const {
  std::int64_t total = 1;
  for (const auto& d : dims_) {
    total *= d.tripCount();
    if (total == 0) return 0;
  }
  return total;
}

IterationSpace IterationSpace::fixDim(std::size_t d, std::int64_t value) const {
  check(d < dims_.size(), "fixDim: dimension out of range");
  IterationSpace out = *this;
  out.dims_[d] = LoopDim{value, value + 1, 1};
  return out;
}

IterationSpace IterationSpace::clampDim(std::size_t d, std::int64_t lo,
                                        std::int64_t hi) const {
  check(d < dims_.size(), "clampDim: dimension out of range");
  IterationSpace out = *this;
  out.dims_[d].lo = std::max(out.dims_[d].lo, lo);
  out.dims_[d].hi = std::min(out.dims_[d].hi, hi);
  return out;
}

std::vector<IterationSpace> IterationSpace::splitOuter(std::size_t parts) const {
  return splitDim(0, parts);
}

std::vector<IterationSpace> IterationSpace::splitDim(std::size_t d,
                                                     std::size_t parts) const {
  check(d < dims_.size(), "splitDim: dimension out of range");
  check(parts >= 1, "splitDim requires parts >= 1");
  const LoopDim& dim = dims_[d];
  const std::int64_t trips = dim.tripCount();
  std::vector<IterationSpace> out;
  out.reserve(parts);
  // Distribute trip counts as evenly as possible: the first (trips % parts)
  // blocks get one extra iteration.
  const std::int64_t baseCount = trips / static_cast<std::int64_t>(parts);
  const std::int64_t extra = trips % static_cast<std::int64_t>(parts);
  std::int64_t cursor = dim.lo;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::int64_t take =
        baseCount + (static_cast<std::int64_t>(p) < extra ? 1 : 0);
    IterationSpace block = *this;
    block.dims_[d] = LoopDim{cursor, cursor + take * dim.step, dim.step};
    cursor += take * dim.step;
    out.push_back(std::move(block));
  }
  return out;
}

void IterationSpace::forEachPoint(
    const std::function<void(std::span<const std::int64_t>)>& visitor) const {
  if (empty()) return;
  std::vector<std::int64_t> point(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) point[d] = dims_[d].lo;
  for (;;) {
    visitor(point);
    // Odometer increment, innermost dimension fastest.
    std::size_t d = dims_.size();
    for (;;) {
      if (d == 0) return;  // wrapped past outermost: done
      --d;
      point[d] += dims_[d].step;
      if (point[d] < dims_[d].hi) break;
      point[d] = dims_[d].lo;
    }
  }
}

std::string IterationSpace::toString() const {
  std::ostringstream os;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    if (d) os << 'x';
    os << '[' << dims_[d].lo << ".." << dims_[d].hi << ')';
    if (dims_[d].step != 1) os << "/" << dims_[d].step;
  }
  return os.str();
}

}  // namespace laps

#pragma once
/// \file footprint.h
/// \brief Exact data footprints: the paper's DS sets.
///
/// The footprint of a process is, per array, the set of element offsets
/// it touches — the paper's
///   DS1,k = {[d1,d2] : d1 = i1*1000+i2 && d2 = 5 && [i1,i2] ∈ IS1,k}
/// linearized row-major. Footprints intersect exactly, which yields the
/// sharing sets SS and the sharing matrix of Fig. 2(a).

#include <cstdint>
#include <map>

#include "region/access.h"
#include "region/array.h"
#include "region/interval_set.h"
#include "region/iteration_space.h"

namespace laps {

/// Budget guard for footprint enumeration: maximum number of interval
/// fragments generated for a single access image before the library
/// refuses (to protect against accidentally unbounded spaces).
inline constexpr std::int64_t kDefaultFootprintBudget = 1 << 23;

/// Collapses a multi-dimensional access into a single affine expression
/// over the loop vector that yields the row-major linear element offset.
[[nodiscard]] AffineExpr linearizeAccess(const ArrayAccess& access,
                                         const ArrayInfo& info);

/// Exact image (as linear element offsets) of \p space under \p access.
/// Throws laps::Error if the enumeration would exceed \p budget fragments.
[[nodiscard]] IntervalSet accessFootprint(const IterationSpace& space,
                                          const ArrayAccess& access,
                                          const ArrayInfo& info,
                                          std::int64_t budget = kDefaultFootprintBudget);

/// Per-array element footprint of one process (union over its accesses).
class Footprint {
 public:
  /// Unions \p elements into the entry for \p array.
  void add(ArrayId array, const IntervalSet& elements);

  /// Elements of \p array touched (empty set if none).
  [[nodiscard]] const IntervalSet& of(ArrayId array) const;

  [[nodiscard]] bool touches(ArrayId array) const;

  /// Arrays present in this footprint.
  [[nodiscard]] std::vector<ArrayId> arrays() const;

  /// Total number of distinct elements across all arrays.
  [[nodiscard]] std::int64_t totalElements() const;

  /// The paper's |SS_{p,q}|: number of elements shared with \p other,
  /// summed over arrays.
  [[nodiscard]] std::int64_t sharedElements(const Footprint& other) const;

  /// Union with another footprint (used to aggregate loop nests).
  void merge(const Footprint& other);

  [[nodiscard]] const std::map<ArrayId, IntervalSet>& perArray() const {
    return perArray_;
  }

 private:
  std::map<ArrayId, IntervalSet> perArray_;
};

}  // namespace laps

#include "region/interval_set.h"

#include <algorithm>

#include "util/error.h"

namespace laps {
namespace {

/// First index >= i in \p v whose piece extends past \p x (hi > x).
/// Valid because pieces are disjoint and sorted, so hi is increasing.
std::size_t skipPast(const std::vector<Interval>& v, std::size_t i,
                     std::int64_t x) {
  const auto it = std::lower_bound(
      v.begin() + static_cast<std::ptrdiff_t>(i), v.end(), x,
      [](const Interval& iv, std::int64_t value) { return iv.hi <= value; });
  return static_cast<std::size_t>(it - v.begin());
}

/// Galloping pays off when \p dense has many pieces per piece of
/// \p sparse: lower_bound jumps over the non-overlapping span instead of
/// stepping through it.
bool muchDenser(std::size_t dense, std::size_t sparse) {
  return dense >= 16 && dense / 4 > sparse;
}

}  // namespace

IntervalSet::IntervalSet(std::vector<Interval> intervals)
    : pieces_(std::move(intervals)) {
  normalize();
}

void IntervalSet::normalize() {
  std::erase_if(pieces_, [](const Interval& iv) { return iv.empty(); });
  normalizeNonEmpty();
}

// Sort-if-needed + coalesce, assuming no empty pieces (the Builder never
// stores any, so build() skips normalize()'s erase pass).
void IntervalSet::normalizeNonEmpty() {
  // Footprint enumeration usually emits runs in ascending order; the
  // O(n) sortedness probe then replaces the O(n log n) sort entirely.
  const auto byLo = [](const Interval& a, const Interval& b) {
    return a.lo < b.lo;
  };
  if (!std::is_sorted(pieces_.begin(), pieces_.end(), byLo)) {
    std::sort(pieces_.begin(), pieces_.end(), byLo);
  }
  std::size_t out = 0;
  for (std::size_t i = 0; i < pieces_.size(); ++i) {
    if (out > 0 && pieces_[out - 1].touches(pieces_[i])) {
      pieces_[out - 1].hi = std::max(pieces_[out - 1].hi, pieces_[i].hi);
    } else if (out != i) {
      pieces_[out++] = pieces_[i];
    } else {
      ++out;
    }
  }
  pieces_.resize(out);
}

void IntervalSet::insert(Interval iv) {
  if (iv.empty()) return;
  // Find the first piece that could touch iv, merge the whole run.
  auto first = std::lower_bound(
      pieces_.begin(), pieces_.end(), iv,
      [](const Interval& a, const Interval& b) { return a.hi < b.lo; });
  auto last = first;
  while (last != pieces_.end() && last->touches(iv)) {
    iv.lo = std::min(iv.lo, last->lo);
    iv.hi = std::max(iv.hi, last->hi);
    ++last;
  }
  const auto pos = pieces_.erase(first, last);
  pieces_.insert(pos, iv);
}

IntervalSet IntervalSet::unite(const IntervalSet& other) const {
  Builder builder(pieces_.size() + other.pieces_.size());
  for (const auto& iv : pieces_) builder.add(iv);
  for (const auto& iv : other.pieces_) builder.add(iv);
  return builder.build();
}

IntervalSet IntervalSet::intersect(const IntervalSet& other) const {
  IntervalSet out;
  out.pieces_.reserve(std::min(pieces_.size(), other.pieces_.size()));
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < pieces_.size() && j < other.pieces_.size()) {
    const Interval overlap = pieces_[i].intersect(other.pieces_[j]);
    if (!overlap.empty()) out.pieces_.push_back(overlap);
    // Advance whichever interval ends first.
    if (pieces_[i].hi < other.pieces_[j].hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;  // already sorted/disjoint; pieces of a valid set stay valid
}

IntervalSet IntervalSet::subtract(const IntervalSet& other) const {
  IntervalSet out;
  std::size_t j = 0;
  const std::size_t m = other.pieces_.size();
  const bool gallop = muchDenser(m, pieces_.size());
  for (Interval iv : pieces_) {
    if (gallop && j < m && other.pieces_[j].hi <= iv.lo) {
      // Jump over the cutter pieces entirely before iv.
      j = skipPast(other.pieces_, j + 1, iv.lo);
    }
    while (!iv.empty() && j < other.pieces_.size() &&
           other.pieces_[j].lo < iv.hi) {
      const Interval& cut = other.pieces_[j];
      if (cut.hi <= iv.lo) {
        ++j;
        continue;
      }
      if (cut.lo > iv.lo) {
        out.pieces_.push_back(Interval{iv.lo, std::min(cut.lo, iv.hi)});
      }
      if (cut.hi >= iv.hi) {
        iv = Interval{};  // fully consumed
      } else {
        iv.lo = cut.hi;
        // The cutter list may have more pieces inside iv; keep looping.
        if (j + 1 < other.pieces_.size() && other.pieces_[j + 1].lo < iv.hi) {
          ++j;
        } else {
          break;
        }
      }
    }
    if (!iv.empty()) out.pieces_.push_back(iv);
  }
  return out;
}

std::int64_t IntervalSet::intersectCardinality(const IntervalSet& other) const {
  std::int64_t total = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  const std::size_t n = pieces_.size();
  const std::size_t m = other.pieces_.size();
  const bool gallopI = muchDenser(n, m);
  const bool gallopJ = muchDenser(m, n);
  if (!gallopI && !gallopJ) {
    // Comparable sizes: the branch-light element-wise merge.
    while (i < n && j < m) {
      total += pieces_[i].intersect(other.pieces_[j]).length();
      if (pieces_[i].hi < other.pieces_[j].hi) {
        ++i;
      } else {
        ++j;
      }
    }
    return total;
  }
  while (i < n && j < m) {
    const Interval& a = pieces_[i];
    const Interval& b = other.pieces_[j];
    if (a.hi <= b.lo) {
      i = gallopI ? skipPast(pieces_, i + 1, b.lo) : i + 1;
      continue;
    }
    if (b.hi <= a.lo) {
      j = gallopJ ? skipPast(other.pieces_, j + 1, a.lo) : j + 1;
      continue;
    }
    total += std::min(a.hi, b.hi) - std::max(a.lo, b.lo);
    if (a.hi < b.hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

std::int64_t IntervalSet::cardinality() const {
  std::int64_t total = 0;
  for (const auto& iv : pieces_) total += iv.length();
  return total;
}

bool IntervalSet::contains(std::int64_t x) const {
  auto it = std::upper_bound(
      pieces_.begin(), pieces_.end(), x,
      [](std::int64_t value, const Interval& iv) { return value < iv.lo; });
  if (it == pieces_.begin()) return false;
  return std::prev(it)->contains(x);
}

bool IntervalSet::containsAll(const IntervalSet& other) const {
  return other.intersectCardinality(*this) == other.cardinality();
}

Interval IntervalSet::bounds() const {
  if (pieces_.empty()) return Interval{};
  return Interval{pieces_.front().lo, pieces_.back().hi};
}

IntervalSet IntervalSet::Builder::build() {
  IntervalSet out;
  out.pieces_ = std::move(raw_);
  out.normalizeNonEmpty();
  raw_.clear();
  return out;
}

}  // namespace laps

#include "region/interval_set.h"

#include <algorithm>

#include "util/error.h"

namespace laps {

IntervalSet::IntervalSet(std::vector<Interval> intervals)
    : pieces_(std::move(intervals)) {
  normalize();
}

void IntervalSet::normalize() {
  std::erase_if(pieces_, [](const Interval& iv) { return iv.empty(); });
  std::sort(pieces_.begin(), pieces_.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::size_t out = 0;
  for (std::size_t i = 0; i < pieces_.size(); ++i) {
    if (out > 0 && pieces_[out - 1].touches(pieces_[i])) {
      pieces_[out - 1].hi = std::max(pieces_[out - 1].hi, pieces_[i].hi);
    } else {
      pieces_[out++] = pieces_[i];
    }
  }
  pieces_.resize(out);
}

void IntervalSet::insert(Interval iv) {
  if (iv.empty()) return;
  // Find the first piece that could touch iv, merge the whole run.
  auto first = std::lower_bound(
      pieces_.begin(), pieces_.end(), iv,
      [](const Interval& a, const Interval& b) { return a.hi < b.lo; });
  auto last = first;
  while (last != pieces_.end() && last->touches(iv)) {
    iv.lo = std::min(iv.lo, last->lo);
    iv.hi = std::max(iv.hi, last->hi);
    ++last;
  }
  const auto pos = pieces_.erase(first, last);
  pieces_.insert(pos, iv);
}

IntervalSet IntervalSet::unite(const IntervalSet& other) const {
  Builder builder(pieces_.size() + other.pieces_.size());
  for (const auto& iv : pieces_) builder.add(iv);
  for (const auto& iv : other.pieces_) builder.add(iv);
  return builder.build();
}

IntervalSet IntervalSet::intersect(const IntervalSet& other) const {
  IntervalSet out;
  out.pieces_.reserve(std::min(pieces_.size(), other.pieces_.size()));
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < pieces_.size() && j < other.pieces_.size()) {
    const Interval overlap = pieces_[i].intersect(other.pieces_[j]);
    if (!overlap.empty()) out.pieces_.push_back(overlap);
    // Advance whichever interval ends first.
    if (pieces_[i].hi < other.pieces_[j].hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;  // already sorted/disjoint; pieces of a valid set stay valid
}

IntervalSet IntervalSet::subtract(const IntervalSet& other) const {
  IntervalSet out;
  std::size_t j = 0;
  for (Interval iv : pieces_) {
    while (!iv.empty() && j < other.pieces_.size() &&
           other.pieces_[j].lo < iv.hi) {
      const Interval& cut = other.pieces_[j];
      if (cut.hi <= iv.lo) {
        ++j;
        continue;
      }
      if (cut.lo > iv.lo) {
        out.pieces_.push_back(Interval{iv.lo, std::min(cut.lo, iv.hi)});
      }
      if (cut.hi >= iv.hi) {
        iv = Interval{};  // fully consumed
      } else {
        iv.lo = cut.hi;
        // The cutter list may have more pieces inside iv; keep looping.
        if (j + 1 < other.pieces_.size() && other.pieces_[j + 1].lo < iv.hi) {
          ++j;
        } else {
          break;
        }
      }
    }
    if (!iv.empty()) out.pieces_.push_back(iv);
  }
  return out;
}

std::int64_t IntervalSet::intersectCardinality(const IntervalSet& other) const {
  std::int64_t total = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < pieces_.size() && j < other.pieces_.size()) {
    total += pieces_[i].intersect(other.pieces_[j]).length();
    if (pieces_[i].hi < other.pieces_[j].hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

std::int64_t IntervalSet::cardinality() const {
  std::int64_t total = 0;
  for (const auto& iv : pieces_) total += iv.length();
  return total;
}

bool IntervalSet::contains(std::int64_t x) const {
  auto it = std::upper_bound(
      pieces_.begin(), pieces_.end(), x,
      [](std::int64_t value, const Interval& iv) { return value < iv.lo; });
  if (it == pieces_.begin()) return false;
  return std::prev(it)->contains(x);
}

bool IntervalSet::containsAll(const IntervalSet& other) const {
  return other.intersectCardinality(*this) == other.cardinality();
}

Interval IntervalSet::bounds() const {
  if (pieces_.empty()) return Interval{};
  return Interval{pieces_.front().lo, pieces_.back().hi};
}

IntervalSet IntervalSet::Builder::build() {
  IntervalSet out;
  out.pieces_ = std::move(raw_);
  out.normalize();
  raw_.clear();
  return out;
}

}  // namespace laps

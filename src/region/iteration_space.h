#pragma once
/// \file iteration_space.h
/// \brief Rectangular (optionally strided) iteration spaces of loop nests.
///
/// Paper §2 describes process iteration sets such as
///   IS1,k = {[i1,i2] : i1 = k && 0 <= i2 < 3000}.
/// lapsched represents these as rectangular spaces: an ordered list of
/// dimensions, each an independent range with a step. Block partitioning
/// helpers model the paper's "each process receives a set of successive
/// loop iterations".

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace laps {

/// One loop dimension: values lo, lo+step, ..., < hi.
struct LoopDim {
  std::int64_t lo = 0;
  std::int64_t hi = 0;  // exclusive
  std::int64_t step = 1;

  [[nodiscard]] std::int64_t tripCount() const {
    if (hi <= lo) return 0;
    return (hi - lo + step - 1) / step;
  }
};

/// A rectangular iteration space (outermost dimension first).
class IterationSpace {
 public:
  IterationSpace() = default;
  explicit IterationSpace(std::vector<LoopDim> dims);

  /// Space with unit steps from bound pairs {lo, hi}.
  static IterationSpace box(std::initializer_list<std::pair<std::int64_t, std::int64_t>> bounds);

  [[nodiscard]] std::size_t rank() const { return dims_.size(); }
  [[nodiscard]] const LoopDim& dim(std::size_t d) const;
  [[nodiscard]] const std::vector<LoopDim>& dims() const { return dims_; }

  /// Total number of iteration points (product of trip counts).
  [[nodiscard]] std::int64_t numPoints() const;

  [[nodiscard]] bool empty() const { return numPoints() == 0; }

  /// Restricts dimension \p d to the single value \p value
  /// (e.g. the paper's i1 = k). Returns the restricted space.
  [[nodiscard]] IterationSpace fixDim(std::size_t d, std::int64_t value) const;

  /// Restricts dimension \p d to [lo, hi).
  [[nodiscard]] IterationSpace clampDim(std::size_t d, std::int64_t lo,
                                        std::int64_t hi) const;

  /// Splits the outermost dimension into \p parts contiguous blocks of
  /// near-equal trip count — the paper's parallelization scheme. The
  /// returned spaces partition this space (blocks may be empty when
  /// parts > trip count).
  [[nodiscard]] std::vector<IterationSpace> splitOuter(std::size_t parts) const;

  /// Same as splitOuter but partitions dimension \p d. Used when a
  /// process keeps an outer sweep loop (temporal reuse of its whole
  /// block) around the partitioned dimension.
  [[nodiscard]] std::vector<IterationSpace> splitDim(std::size_t d,
                                                     std::size_t parts) const;

  /// Invokes \p visitor for every point in lexicographic order. The span
  /// is valid only during the call.
  void forEachPoint(const std::function<void(std::span<const std::int64_t>)>& visitor) const;

  /// Human-readable form, e.g. "[0..8)x[0..3000)".
  [[nodiscard]] std::string toString() const;

 private:
  std::vector<LoopDim> dims_;
};

}  // namespace laps

#pragma once
/// \file access.h
/// \brief A single array reference inside a loop nest.

#include <cstdint>

#include "region/affine.h"
#include "region/array.h"

namespace laps {

/// Whether a reference reads or writes the array.
enum class AccessKind : std::uint8_t { Read, Write };

/// One textual array reference, e.g. `A[i1*1000+i2][5]` is
/// {array=A, map=(1000*i0 + i1, 5), kind=Read}.
struct ArrayAccess {
  ArrayId array = 0;
  AffineMap map;
  AccessKind kind = AccessKind::Read;
};

}  // namespace laps

#include "region/affine.h"

#include <sstream>

#include "util/error.h"

namespace laps {

AffineExpr::AffineExpr(std::vector<std::int64_t> coeffs, std::int64_t constant)
    : coeffs_(std::move(coeffs)), c0_(constant) {}

AffineExpr AffineExpr::var(std::size_t dim, std::size_t rank) {
  check(dim < rank, "AffineExpr::var: dim out of range");
  std::vector<std::int64_t> coeffs(rank, 0);
  coeffs[dim] = 1;
  return AffineExpr(std::move(coeffs), 0);
}

std::int64_t AffineExpr::eval(std::span<const std::int64_t> point) const {
  check(point.size() >= coeffs_.size(),
        "AffineExpr::eval: point rank too small");
  std::int64_t acc = c0_;
  for (std::size_t k = 0; k < coeffs_.size(); ++k) {
    acc += coeffs_[k] * point[k];
  }
  return acc;
}

bool AffineExpr::isConstant() const {
  for (const std::int64_t c : coeffs_) {
    if (c != 0) return false;
  }
  return true;
}

AffineExpr AffineExpr::plus(const AffineExpr& other) const {
  std::vector<std::int64_t> coeffs(std::max(coeffs_.size(), other.coeffs_.size()), 0);
  for (std::size_t k = 0; k < coeffs.size(); ++k) {
    coeffs[k] = coeff(k) + other.coeff(k);
  }
  return AffineExpr(std::move(coeffs), c0_ + other.c0_);
}

AffineExpr AffineExpr::times(std::int64_t factor) const {
  std::vector<std::int64_t> coeffs = coeffs_;
  for (auto& c : coeffs) c *= factor;
  return AffineExpr(std::move(coeffs), c0_ * factor);
}

AffineExpr AffineExpr::shift(std::int64_t delta) const {
  return AffineExpr(coeffs_, c0_ + delta);
}

std::string AffineExpr::toString() const {
  std::ostringstream os;
  bool any = false;
  for (std::size_t k = 0; k < coeffs_.size(); ++k) {
    if (coeffs_[k] == 0) continue;
    if (any) os << " + ";
    if (coeffs_[k] != 1) os << coeffs_[k] << '*';
    os << 'i' << k;
    any = true;
  }
  if (c0_ != 0 || !any) {
    if (any) os << " + ";
    os << c0_;
  }
  return os.str();
}

const AffineExpr& AffineMap::expr(std::size_t d) const {
  check(d < exprs_.size(), "AffineMap::expr out of range");
  return exprs_[d];
}

void AffineMap::eval(std::span<const std::int64_t> point,
                     std::vector<std::int64_t>& out) const {
  out.resize(exprs_.size());
  for (std::size_t d = 0; d < exprs_.size(); ++d) {
    out[d] = exprs_[d].eval(point);
  }
}

std::string AffineMap::toString() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t d = 0; d < exprs_.size(); ++d) {
    if (d) os << ", ";
    os << exprs_[d].toString();
  }
  os << ')';
  return os.str();
}

}  // namespace laps

#pragma once
/// \file strided_interval.h
/// \brief Arithmetic progressions {base + k*stride : 0 <= k < count}.
///
/// Strided intervals describe the image of a single loop dimension under
/// an affine access. Intersections are computed exactly via the extended
/// Euclidean algorithm (a one-dimensional Presburger solve).

#include <cstdint>
#include <optional>

#include "region/interval_set.h"

namespace laps {

/// The set {base + k*stride : 0 <= k < count}, with stride >= 1.
/// An empty progression has count == 0.
struct StridedInterval {
  std::int64_t base = 0;
  std::int64_t stride = 1;
  std::int64_t count = 0;

  [[nodiscard]] bool empty() const { return count <= 0; }

  /// Last element (requires non-empty).
  [[nodiscard]] std::int64_t back() const { return base + (count - 1) * stride; }

  [[nodiscard]] bool contains(std::int64_t x) const;

  /// Exact expansion to an IntervalSet. For stride 1 this is a single
  /// interval; otherwise `count` unit intervals (caller should budget).
  [[nodiscard]] IntervalSet toIntervalSet() const;

  /// Exact size of the intersection of two progressions.
  [[nodiscard]] std::int64_t intersectCount(const StridedInterval& other) const;

  /// Exact intersection as a progression (the intersection of two
  /// arithmetic progressions is itself one, possibly empty).
  [[nodiscard]] StridedInterval intersect(const StridedInterval& other) const;
};

/// Solves a*x ≡ c (mod m) for the smallest non-negative x, if solvable.
/// Exposed for testing; this is the core of progression intersection.
[[nodiscard]] std::optional<std::int64_t> solveLinearCongruence(
    std::int64_t a, std::int64_t c, std::int64_t m);

}  // namespace laps

#pragma once
/// \file interval.h
/// \brief Half-open integer interval [lo, hi), the atom of the region algebra.

#include <algorithm>
#include <cstdint>

namespace laps {

/// Half-open interval of int64 points: [lo, hi). Empty when lo >= hi.
struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = 0;  // exclusive

  [[nodiscard]] constexpr bool empty() const { return lo >= hi; }
  [[nodiscard]] constexpr std::int64_t length() const { return empty() ? 0 : hi - lo; }
  [[nodiscard]] constexpr bool contains(std::int64_t x) const { return x >= lo && x < hi; }

  /// True when the two intervals share at least one point.
  [[nodiscard]] constexpr bool overlaps(const Interval& other) const {
    return std::max(lo, other.lo) < std::min(hi, other.hi);
  }

  /// True when the union of the two intervals is itself an interval
  /// (overlapping or exactly adjacent).
  [[nodiscard]] constexpr bool touches(const Interval& other) const {
    return std::max(lo, other.lo) <= std::min(hi, other.hi);
  }

  /// Intersection (possibly empty).
  [[nodiscard]] constexpr Interval intersect(const Interval& other) const {
    return Interval{std::max(lo, other.lo), std::min(hi, other.hi)};
  }

  friend constexpr bool operator==(const Interval&, const Interval&) = default;
};

}  // namespace laps

#pragma once
/// \file sharing.h
/// \brief The inter-process sharing matrix (paper §2, Fig. 2(a)).

#include <cstdint>
#include <span>
#include <vector>

#include "region/footprint.h"
#include "util/table.h"

namespace laps {

/// Symmetric matrix M where M[p][q] = |SS_{p,q}| = number of array
/// elements processes p and q both touch. Diagonal entries hold each
/// process's own footprint size.
class SharingMatrix {
 public:
  SharingMatrix() = default;

  /// n x n zero matrix.
  explicit SharingMatrix(std::size_t n);

  /// Computes the full matrix from per-process footprints (exact).
  /// Pair intersections run on the parallel substrate (util/parallel.h);
  /// each cell is written by exactly one index, so the result is
  /// bit-identical to the serial loop at every thread count.
  static SharingMatrix compute(std::span<const Footprint> footprints);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Bounds-checked accessors (throw laps::Error out of range). Internal
  /// hot loops use the unchecked cell() below instead: the check fired
  /// n^2 times per compute.
  [[nodiscard]] std::int64_t at(std::size_t p, std::size_t q) const;
  void set(std::size_t p, std::size_t q, std::int64_t value);

  /// Sum over q != p of M[p][q] (how much p shares with everyone else);
  /// if \p candidates is non-empty, restricted to that set. Used by the
  /// Fig. 3 initial round ("remove the candidate with maximum sharing").
  [[nodiscard]] std::int64_t rowSum(std::size_t p,
                                    std::span<const std::size_t> candidates = {}) const;

  /// True when no off-diagonal entry is positive.
  [[nodiscard]] bool isDiagonal() const;

  /// Renders as a table (for examples / debugging), labels P0..Pn-1.
  [[nodiscard]] Table toTable() const;

 private:
  [[nodiscard]] std::size_t idx(std::size_t p, std::size_t q) const;

  /// Unchecked cell access for loops whose indices are validated once at
  /// the boundary (p, q < n_ by construction).
  [[nodiscard]] std::int64_t& cell(std::size_t p, std::size_t q) {
    return cells_[p * n_ + q];
  }
  [[nodiscard]] std::int64_t cell(std::size_t p, std::size_t q) const {
    return cells_[p * n_ + q];
  }

  std::size_t n_ = 0;
  std::vector<std::int64_t> cells_;  // row-major n x n
};

}  // namespace laps

#pragma once
/// \file sharing.h
/// \brief The inter-process sharing matrix (paper §2, Fig. 2(a)).

#include <cstdint>
#include <span>
#include <vector>

#include "region/footprint.h"
#include "util/table.h"

namespace laps {

/// Symmetric matrix M where M[p][q] = |SS_{p,q}| = number of array
/// elements processes p and q both touch. Diagonal entries hold each
/// process's own footprint size.
class SharingMatrix {
 public:
  SharingMatrix() = default;

  /// n x n zero matrix.
  explicit SharingMatrix(std::size_t n);

  /// Computes the full matrix from per-process footprints (exact).
  static SharingMatrix compute(std::span<const Footprint> footprints);

  [[nodiscard]] std::size_t size() const { return n_; }

  [[nodiscard]] std::int64_t at(std::size_t p, std::size_t q) const;
  void set(std::size_t p, std::size_t q, std::int64_t value);

  /// Sum over q != p of M[p][q] (how much p shares with everyone else);
  /// if \p candidates is non-empty, restricted to that set. Used by the
  /// Fig. 3 initial round ("remove the candidate with maximum sharing").
  [[nodiscard]] std::int64_t rowSum(std::size_t p,
                                    std::span<const std::size_t> candidates = {}) const;

  /// True when no off-diagonal entry is positive.
  [[nodiscard]] bool isDiagonal() const;

  /// Renders as a table (for examples / debugging), labels P0..Pn-1.
  [[nodiscard]] Table toTable() const;

 private:
  [[nodiscard]] std::size_t idx(std::size_t p, std::size_t q) const;

  std::size_t n_ = 0;
  std::vector<std::int64_t> cells_;  // row-major n x n
};

}  // namespace laps

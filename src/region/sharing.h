#pragma once
/// \file sharing.h
/// \brief The inter-process sharing matrix (paper §2, Fig. 2(a)).

#include <cstdint>
#include <span>
#include <vector>

#include "region/footprint.h"
#include "util/table.h"

namespace laps {

/// Symmetric matrix M where M[p][q] = |SS_{p,q}| = number of array
/// elements processes p and q both touch. Diagonal entries hold each
/// process's own footprint size.
///
/// Two maintenance regimes:
///  * closed (the paper's): compute() builds every pair once, up front;
///  * open (in-OS arrivals/exits): inactive(n) starts with every process
///    absent, and addProcess/removeProcess keep the matrix equal to what
///    a from-scratch compute over the currently active set would
///    produce, touching only the affected row and column — O(n) pair
///    intersections per event instead of O(n^2).
class SharingMatrix {
 public:
  SharingMatrix() = default;

  /// n x n zero matrix; every process counts as active (so manually
  /// set() matrices behave as before the open-workload extension).
  explicit SharingMatrix(std::size_t n);

  /// n x n matrix with every process inactive — the starting point of
  /// incremental maintenance under process arrival/exit.
  [[nodiscard]] static SharingMatrix inactive(std::size_t n);

  /// Computes the full matrix from per-process footprints (exact).
  /// Pair intersections run on the parallel substrate (util/parallel.h);
  /// each cell is written by exactly one index, so the result is
  /// bit-identical to the serial loop at every thread count.
  static SharingMatrix compute(std::span<const Footprint> footprints);

  /// Activates process \p p: fills row/column p from \p footprints
  /// (which must describe the full n-process universe), intersecting p
  /// only against the currently active processes. The new row's pair
  /// intersections run on the parallel substrate; each index writes its
  /// own (p, q)/(q, p) pair, so the result is bit-identical to a serial
  /// update at every thread count — and, by construction, to a
  /// from-scratch compute() over the active set (the same
  /// Footprint::sharedElements call evaluated in the same operand
  /// order). Throws laps::Error if \p p is already active or the
  /// universe size mismatches.
  void addProcess(std::span<const Footprint> footprints, std::size_t p);

  /// Deactivates process \p p, zeroing its row and column (including the
  /// diagonal). Throws laps::Error if \p p is not active.
  void removeProcess(std::size_t p);

  /// True when \p p is present (added and not removed).
  [[nodiscard]] bool isActive(std::size_t p) const;

  /// Number of active processes.
  [[nodiscard]] std::size_t activeCount() const;

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Bounds-checked accessors (throw laps::Error out of range). Internal
  /// hot loops use the unchecked cell() below instead: the check fired
  /// n^2 times per compute.
  [[nodiscard]] std::int64_t at(std::size_t p, std::size_t q) const;
  void set(std::size_t p, std::size_t q, std::int64_t value);

  /// Whole-row view for index hot loops (sched/plan_index.h): bounds are
  /// checked once here instead of per cell, so scoring |row| candidates
  /// against process \p p costs |row| loads, not |row| checks. The span
  /// is invalidated by any mutation of the matrix.
  [[nodiscard]] std::span<const std::int64_t> row(std::size_t p) const;

  /// Sum over q != p of M[p][q] (how much p shares with everyone else);
  /// if \p candidates is non-empty, restricted to that set. Used by the
  /// Fig. 3 initial round ("remove the candidate with maximum sharing").
  [[nodiscard]] std::int64_t rowSum(std::size_t p,
                                    std::span<const std::size_t> candidates = {}) const;

  /// True when no off-diagonal entry is positive.
  [[nodiscard]] bool isDiagonal() const;

  /// Renders as a table (for examples / debugging), labels P0..Pn-1.
  [[nodiscard]] Table toTable() const;

  /// Audit checker (docs/ARCHITECTURE.md §11): the matrix must be
  /// symmetric over the active set, every inactive process's row and
  /// column must be zero, and the diagonal of an active process must be
  /// non-negative (a footprint size). Throws laps::AuditError on
  /// violation. The engine runs it after every incremental
  /// arrival/exit update under LAPSCHED_AUDIT; tests inject violations
  /// through set() (which writes a single cell) to prove it fires.
  void auditInvariants() const;

 private:
  [[nodiscard]] std::size_t idx(std::size_t p, std::size_t q) const;

  /// Unchecked cell access for loops whose indices are validated once at
  /// the boundary (p, q < n_ by construction).
  [[nodiscard]] std::int64_t& cell(std::size_t p, std::size_t q) {
    return cells_[p * n_ + q];
  }
  [[nodiscard]] std::int64_t cell(std::size_t p, std::size_t q) const {
    return cells_[p * n_ + q];
  }

  std::size_t n_ = 0;
  std::vector<std::int64_t> cells_;  // row-major n x n
  std::vector<char> active_;         // per-process presence flags
};

namespace audit {
/// Audit checker (docs/ARCHITECTURE.md §11): the live sharing matrix's
/// active set must agree exactly with the engine's live process set —
/// active iff admitted (arrived) and not yet exited — and the active
/// count must equal \p inSystem, the engine's admitted-minus-exited
/// counter. A disagreement means the policy is scoring against rows of
/// dead or never-admitted processes. Throws laps::AuditError on
/// violation; tests call it directly with disagreeing inputs.
void activeSetAgreement(const SharingMatrix& matrix,
                        const std::vector<bool>& arrived,
                        const std::vector<bool>& exited,
                        std::size_t inSystem);
}  // namespace audit

}  // namespace laps

#pragma once
/// \file array.h
/// \brief Array metadata and the per-application array table.
///
/// Arrays are the unit of data mapping in the paper: footprints, the
/// sharing matrix, the conflict matrix and re-layout all operate on
/// whole arrays identified by ArrayId.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace laps {

/// Stable identifier of an array within an ArrayTable.
using ArrayId = std::uint32_t;

/// Shape and element size of one array. Indexing is row-major
/// (last dimension contiguous), matching C layout.
struct ArrayInfo {
  ArrayId id = 0;
  std::string name;
  std::vector<std::int64_t> extents;  // per-dimension sizes
  std::int64_t elemSize = 4;          // bytes per element

  [[nodiscard]] std::size_t rank() const { return extents.size(); }
  [[nodiscard]] std::int64_t numElements() const;
  [[nodiscard]] std::int64_t sizeBytes() const { return numElements() * elemSize; }

  /// Row-major strides in elements (stride of last dim is 1).
  [[nodiscard]] std::vector<std::int64_t> rowMajorStrides() const;

  /// Linear element offset of a (bounds-checked) index vector.
  [[nodiscard]] std::int64_t linearize(std::span<const std::int64_t> index) const;
};

/// Registry of arrays for one scenario. ArrayIds index into it densely.
class ArrayTable {
 public:
  /// Registers an array and returns its id.
  ArrayId add(std::string name, std::vector<std::int64_t> extents,
              std::int64_t elemSize = 4);

  [[nodiscard]] const ArrayInfo& at(ArrayId id) const;
  [[nodiscard]] std::size_t size() const { return arrays_.size(); }
  [[nodiscard]] const std::vector<ArrayInfo>& all() const { return arrays_; }

  /// Total bytes across all arrays (natural, untransformed layout).
  [[nodiscard]] std::int64_t totalBytes() const;

 private:
  std::vector<ArrayInfo> arrays_;
};

}  // namespace laps

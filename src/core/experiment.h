#pragma once
/// \file experiment.h
/// \brief The experiment harness: one call from workload to metrics.
///
/// runExperiment wires the full pipeline of the paper:
///   footprints (§2) -> sharing matrix (§2) -> scheduler (§3, Fig. 3)
///   [-> conflict matrix + re-layout for LSM (§3, Figs. 4-5)]
///   -> MPSoC simulation (§4) -> execution time / cache / energy metrics.
///
/// This is the API the examples and every bench binary use.

#include <optional>
#include <span>
#include <vector>

#include "layout/relayout.h"
#include "sched/factory.h"
#include "sim/energy.h"
#include "sim/engine.h"
#include "workloads/apps.h"

namespace laps {

/// Full experiment configuration; defaults reproduce the paper's Table 2
/// platform.
struct ExperimentConfig {
  MpsocConfig mpsoc{};                ///< 8 cores, 8KB 2-way L1s, 75-cycle mem
  SchedulerParams sched{};            ///< RRS quantum, RS seed, LS options
  AddressSpaceOptions addressSpace{}; ///< array placement
  EnergyModel energy{};               ///< energy accounting
  /// Override for the LSM re-layout threshold T (default: mean conflicts,
  /// as in the paper).
  std::optional<std::int64_t> relayoutThreshold;
};

/// Metrics of one (workload, scheduler) run.
struct ExperimentResult {
  SchedulerKind kind = SchedulerKind::Random;
  std::string schedulerName;
  SimResult sim;
  // LINT-ALLOW(no-float): post-hoc energy readout (sim/energy); never re-enters the model
  double energyMj = 0.0;
  /// LSM only: how many arrays were re-laid out and the threshold used.
  std::size_t relayoutedArrays = 0;
  std::int64_t relayoutThreshold = 0;
};

/// Runs \p workload under \p kind on the configured platform.
/// For SchedulerKind::LocalityMapping the Fig. 5 re-layout pipeline is
/// applied to the address space before simulation.
[[nodiscard]] ExperimentResult runExperiment(const Workload& workload,
                                             SchedulerKind kind,
                                             const ExperimentConfig& config = {});

/// Convenience: runs the same workload under several schedulers.
[[nodiscard]] std::vector<ExperimentResult> compareSchedulers(
    const Workload& workload, std::span<const SchedulerKind> kinds,
    const ExperimentConfig& config = {});

/// The paper's evaluation set {RS, RRS, LS, LSM} in presentation order.
[[nodiscard]] std::vector<SchedulerKind> paperSchedulers();

/// The policies that make sense under an open workload (no static
/// whole-set plan): {RS, RRS, DLS, CALS, OLS} — the set
/// bench_open_workload sweeps.
[[nodiscard]] std::vector<SchedulerKind> openSchedulers();

}  // namespace laps

#include "core/experiment.h"

#include "sched/locality.h"
#include "taskgraph/validate.h"

namespace laps {

std::vector<SchedulerKind> paperSchedulers() {
  return {SchedulerKind::Random, SchedulerKind::RoundRobin,
          SchedulerKind::Locality, SchedulerKind::LocalityMapping};
}

std::vector<SchedulerKind> openSchedulers() {
  return {SchedulerKind::Random, SchedulerKind::RoundRobin,
          SchedulerKind::DynamicLocality, SchedulerKind::L2ContentionAware,
          SchedulerKind::OnlineLocality};
}

ExperimentResult runExperiment(const Workload& workload, SchedulerKind kind,
                               const ExperimentConfig& config) {
  validateWorkload(workload);

  // §2: exact per-process data sets and the sharing matrix. In open
  // mode (MpsocConfig::arrivals) the engine maintains its own live
  // matrix incrementally — one row per arrival — and never reads this
  // one, so the O(n^2) full compute is skipped; LSM is the exception,
  // because its re-layout pipeline below consumes the full matrix
  // before simulation starts.
  const std::vector<Footprint> footprints = workload.footprints();
  const bool openMode = config.mpsoc.arrivals.has_value();
  const SharingMatrix sharing =
      openMode && kind != SchedulerKind::LocalityMapping
          ? SharingMatrix::inactive(footprints.size())
          : SharingMatrix::compute(footprints);

  AddressSpace space(workload.arrays, config.addressSpace);

  ExperimentResult result;
  result.kind = kind;

  if (kind == SchedulerKind::LocalityMapping) {
    // LSM pipeline (§3): build the LS plan first — the re-layout
    // eligibility relation depends on which processes run back-to-back
    // on a core — then re-layout the conflicting arrays and simulate
    // with the transformed address mapping.
    LocalityOptions lsOptions;
    lsOptions.initialMinSharingRound = config.sched.lsInitialMinSharingRound;
    const LocalityPlan plan = buildLocalityPlan(
        workload.graph, sharing, config.mpsoc.coreCount, lsOptions);
    const PairEligibility eligible = scheduleEligibility(
        plan.perCore, footprints, workload.arrays.size());
    // Total dynamic references per array (weights the conflict matrix
    // toward hot, repeatedly-referenced data).
    std::vector<std::int64_t> refCounts(workload.arrays.size(), 0);
    for (const ProcessSpec& p : workload.graph.processes()) {
      for (const LoopNest& nest : p.nests) {
        for (const ArrayAccess& access : nest.accesses) {
          refCounts[access.array] += nest.space.numPoints();
        }
      }
    }
    const ConflictMatrix conflicts = ConflictMatrix::compute(
        workload.arrays, footprints, space, config.mpsoc.memory.l1d,
        refCounts);
    // Size guard: interleaving confines an array to half the cache sets,
    // so the *per-process working set* of a transformed array (what one
    // process keeps hot at a time) must leave slack in that half —
    // 3/4 of a cache page in practice. The whole array may be far larger;
    // congruent twin arrays (the paper's K1/K2 of Fig. 4) are exactly
    // large arrays whose per-process blocks are small.
    RelayoutLimits limits;
    limits.maxFootprintBytes = config.mpsoc.memory.l1d.cachePageBytes() * 3 / 4;
    limits.arrayFootprintBytes.assign(workload.arrays.size(), 0);
    for (const Footprint& fp : footprints) {
      for (const auto& [id, elems] : fp.perArray()) {
        limits.arrayFootprintBytes[id] =
            std::max(limits.arrayFootprintBytes[id],
                     elems.cardinality() * workload.arrays.at(id).elemSize);
      }
    }
    const RelayoutPlan relayout =
        planRelayout(conflicts, config.mpsoc.memory.l1d, eligible,
                     config.relayoutThreshold, limits);
    for (ArrayId a = 0; a < relayout.transforms.size(); ++a) {
      if (!relayout.transforms[a].isIdentity()) {
        space.setTransform(a, relayout.transforms[a]);
      }
    }
    result.relayoutedArrays = relayout.relayoutCount();
    result.relayoutThreshold = relayout.threshold;
  }

  SchedulerParams schedParams = config.sched;
  const PlatformConfig platform = config.mpsoc.resolvedPlatform();
  if (kind == SchedulerKind::L2ContentionAware && platform.sharedL2) {
    // The contention-aware policy should reason about the L2 the
    // platform actually has — whichever config surface declared it.
    schedParams.l2Contention.l2Geometry =
        platform.sharedL2->aggregateConfig();
  }
  const std::unique_ptr<SchedulerPolicy> policy =
      makeScheduler(kind, schedParams);
  result.schedulerName = policy->name();
  if (kind == SchedulerKind::LocalityMapping) {
    result.schedulerName = "LSM";  // distinguish from plain LS
  }

  MpsocSimulator simulator(workload, space, sharing, *policy, config.mpsoc);
  if (openMode) simulator.provideFootprints(footprints);
  result.sim = simulator.run();
  result.energyMj = config.energy.totalMj(result.sim);
  return result;
}

std::vector<ExperimentResult> compareSchedulers(
    const Workload& workload, std::span<const SchedulerKind> kinds,
    const ExperimentConfig& config) {
  std::vector<ExperimentResult> results;
  results.reserve(kinds.size());
  for (const SchedulerKind kind : kinds) {
    results.push_back(runExperiment(workload, kind, config));
  }
  return results;
}

}  // namespace laps

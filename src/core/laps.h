#pragma once
/// \file laps.h
/// \brief Umbrella header: the complete public API of lapsched.
///
/// lapsched reproduces "Locality-Aware Process Scheduling for Embedded
/// MPSoCs" (Kandemir & Chen, DATE 2005). Typical use (this program is
/// extracted verbatim and compiled as the core_doc_example test —
/// keep it a complete translation unit):
///
/// \code
/// #include <iostream>
///
/// #include "core/laps.h"
///
/// int main() {
///   using namespace laps;
///
///   const auto suite = standardSuite();
///   const Workload mix = concurrentScenario(suite, 3);
///   const auto results = compareSchedulers(mix, paperSchedulers());
///   for (const auto& r : results) {
///     std::cout << r.schedulerName << ": " << r.sim.seconds << " s\n";
///   }
/// }
/// \endcode

// Region algebra (paper §2)
#include "region/access.h"
#include "region/affine.h"
#include "region/array.h"
#include "region/footprint.h"
#include "region/interval.h"
#include "region/interval_set.h"
#include "region/iteration_space.h"
#include "region/sharing.h"
#include "region/strided_interval.h"

// Task and process graphs (paper §3)
#include "taskgraph/builder.h"
#include "taskgraph/graph.h"
#include "taskgraph/process.h"
#include "taskgraph/validate.h"

// Cache models (platform substrate)
#include "cache/bus.h"
#include "cache/cache.h"
#include "cache/config.h"
#include "cache/directory.h"
#include "cache/hierarchy.h"
#include "cache/miss_class.h"
#include "cache/noc.h"
#include "cache/platform.h"
#include "cache/shared_l2.h"

// Data layout and re-mapping (paper §3, Figs. 4-5)
#include "layout/address_space.h"
#include "layout/conflict.h"
#include "layout/relayout.h"
#include "layout/transform.h"

// Trace generation
#include "trace/cursor.h"
#include "trace/trace.h"

// Schedulers (paper §4 strategies + extensions)
#include "sched/basic.h"
#include "sched/dynamic_locality.h"
#include "sched/factory.h"
#include "sched/locality.h"
#include "sched/locality_score.h"
#include "sched/online_locality.h"
#include "sched/scheduler.h"

// MPSoC simulator (Simics substitute)
#include "sim/admission.h"
#include "sim/arrivals.h"
#include "sim/config.h"
#include "sim/energy.h"
#include "sim/engine.h"
#include "sim/faults.h"
#include "sim/result.h"

// The six applications of Table 1
#include "workloads/apps.h"
#include "workloads/service.h"

// Experiment harness
#include "core/experiment.h"

// Utilities
#include "util/error.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

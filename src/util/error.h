#pragma once
/// \file error.h
/// \brief Error type and precondition helpers used across lapsched.
///
/// The library reports unrecoverable API misuse and internal invariant
/// violations through laps::Error (derived from std::runtime_error), so
/// callers can catch a single type at the top level.

#include <stdexcept>
#include <string>
#include <string_view>

namespace laps {

/// Exception thrown for all lapsched error conditions (API misuse,
/// malformed inputs, violated invariants).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws laps::Error with \p message when \p condition is false.
/// Used to validate public API preconditions; never compiled out.
inline void check(bool condition, std::string_view message) {
  if (!condition) {
    throw Error(std::string(message));
  }
}

/// Throws laps::Error unconditionally; convenience for unreachable paths.
[[noreturn]] inline void fail(std::string_view message) {
  throw Error(std::string(message));
}

}  // namespace laps

#pragma once
/// \file rng.h
/// \brief Deterministic pseudo-random number generation.
///
/// All stochastic components of lapsched (random scheduling, workload
/// jitter) consume an explicit laps::Rng so experiments are reproducible
/// bit-for-bit from a seed. The generator is xoshiro256** seeded via
/// splitmix64, which is fast, well distributed, and has no global state.

#include <cstdint>
#include <vector>

namespace laps {

/// Deterministic random number generator (xoshiro256**).
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions, but the member helpers below are the
/// preferred interface inside the library.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator whose whole stream is determined by \p seed.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64-bit value.
  std::uint64_t operator()();

  /// Uniform integer in [0, bound). \p bound must be > 0.
  /// Uses rejection sampling, so the result is exactly uniform.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1). Bit-deterministic (exact 53-bit
  /// conversion, power-of-two scale) — but prefer the integer samplers
  /// for model inputs.
  // LINT-ALLOW(no-float): exact 53-bit conversion + power-of-two scale; bit-deterministic
  double uniform01();

  /// Bernoulli trial with probability \p p of returning true.
  // LINT-ALLOW(no-float): single IEEE comparison of bit-deterministic values
  bool chance(double p);

  /// Fisher-Yates shuffle of \p items.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Picks a uniformly random element index of a container of size \p n.
  std::size_t index(std::size_t n);

  /// Derives an independent child generator; used to give subsystems
  /// their own streams without correlating them.
  Rng split();

 private:
  std::uint64_t state_[4];
};

}  // namespace laps

#pragma once
/// \file audit.h
/// \brief The audit-mode invariant layer (docs/ARCHITECTURE.md §11).
///
/// Every published result rests on the determinism contract: identical
/// inputs produce bit-identical SimResults on every platform, compiler
/// and thread count. The static side of the contract is enforced by
/// tools/determinism_lint.py; this header is the dynamic side — runtime
/// invariant checks compiled into the hot layers when the build is
/// configured with -DLAPSCHED_AUDIT=ON (./ci.sh audit).
///
/// Mechanics:
///  * every checker is an ordinary function that throws laps::AuditError
///    on violation. Checkers are compiled in *every* configuration so
///    tests can prove each one fires (no bit-rot behind an #ifdef);
///  * hot-path call sites are wrapped in LAPS_AUDIT(...). With
///    LAPSCHED_AUDIT=OFF (the default) the wrapped statement is placed
///    behind `if (false)`: it still type-checks — an audit call can
///    never silently rot — but is dead-code-eliminated, so the default
///    build is unchanged (the committed CSV baselines and
///    BENCH_micro.json stay byte-identical);
///  * with LAPSCHED_AUDIT=ON the statement executes inline, and a
///    violated invariant aborts the run with an AuditError naming the
///    broken contract.
///
/// Generic checkers (engine event ordering, admission identity,
/// percentile ordering) live here; checkers needing layer types live
/// next to their layer (cache/bus.h: timelineDisjoint, region/sharing.h:
/// SharingMatrix::auditInvariants + activeSetAgreement, cache/hierarchy.h:
/// MemoryHierarchy::auditInclusion).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/error.h"

#ifndef LAPS_AUDIT_ENABLED
#define LAPS_AUDIT_ENABLED 0
#endif

namespace laps {

/// Thrown by every audit checker on a violated invariant. Distinct from
/// plain laps::Error so tests (and a top-level harness) can tell a
/// broken *contract* from ordinary API misuse.
class AuditError : public Error {
 public:
  explicit AuditError(const std::string& what) : Error("audit: " + what) {}
};

namespace audit {

/// True when LAPS_AUDIT(...) statements execute at runtime (the build
/// was configured with -DLAPSCHED_AUDIT=ON).
constexpr bool enabled() { return LAPS_AUDIT_ENABLED != 0; }

/// Throws AuditError with \p message when \p condition is false. The
/// primitive every checker funnels through.
void require(bool condition, std::string_view message);

/// Engine event loop: simulated time never runs backwards. \p previous
/// is the cycle of the event processed before \p next.
void cycleMonotone(std::int64_t previous, std::int64_t next);

/// Engine event loop: a core event may only be popped when no pending
/// arrival is due at or before it (arrivals are processed first at
/// equal cycles, so a core freeing at t sees the processes arriving
/// at t).
void arrivalBeforeCore(std::int64_t coreEventCycle,
                       std::int64_t nextArrivalCycle);

/// Open-workload accounting identity: every process of the run is
/// either a ranked sojourn sample, was rejected at admission, or was
/// permanently failed by fault injection —
/// samples + rejected + failed == processes.
void admissionIdentity(std::size_t samples, std::size_t rejected,
                       std::size_t failed, std::size_t processes);

/// Departure conservation (docs/ARCHITECTURE.md §13): every process
/// that terminally left the system did so for exactly one reason —
/// departed == completed + rejected + retired + failed. Checked after
/// every departure, so a double-departure or a departure that skips
/// its accounting fires at the event, not at the end of the run.
void departureConservation(std::size_t departed, std::size_t completed,
                           std::size_t rejected, std::size_t retired,
                           std::size_t failed);

/// Fault engine: a segment may only be dispatched on a core that is up
/// (\p coreDown false). The engine's offer path skips down cores; this
/// checker is the compiled-in proof that no other path can slip work
/// onto one.
void coreUpForDispatch(bool coreDown, std::size_t core);

/// Fault engine event ordering: when a core event at \p coreEventCycle
/// is popped, every pending fault injection at a strictly earlier
/// cycle has already been applied.
void faultBeforeCore(std::int64_t coreEventCycle,
                     std::int64_t nextFaultCycle);

/// Order statistics sanity: p50 <= p95 <= p99, and all three are zero
/// while no sample was recorded.
void percentileOrdering(std::int64_t p50, std::int64_t p95, std::int64_t p99,
                        std::size_t samples);

}  // namespace audit
}  // namespace laps

#if LAPS_AUDIT_ENABLED
/// Executes the wrapped checker statement(s); a violated invariant
/// throws laps::AuditError.
#define LAPS_AUDIT(...) \
  do {                  \
    __VA_ARGS__;        \
  } while (0)
#else
/// Audit disabled: the statement still type-checks (so audit calls
/// cannot rot) but is dead code — the default build's behavior and
/// codegen-visible semantics are unchanged.
#define LAPS_AUDIT(...) \
  do {                  \
    if (false) {        \
      __VA_ARGS__;      \
    }                   \
  } while (0)
#endif

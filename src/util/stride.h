#pragma once
/// \file stride.h
/// \brief Strided-run arithmetic shared by the cache model and the trace
/// cursor.

#include <cstdint>
#include <limits>

namespace laps {

/// Number of consecutive elements of the strided stream pos,
/// pos + strideBytes, ... that stay inside the aligned blockBytes-sized
/// block containing pos (INT64_MAX for stride 0). With cache lines as
/// blocks this is the hit-group length of run-length cache resolution;
/// with LayoutTransform half-pages it is the span over which a
/// transformed array's addressing stays affine.
inline std::int64_t strideRunLength(std::uint64_t pos,
                                    std::int64_t strideBytes,
                                    std::int64_t blockBytes) {
  if (strideBytes == 0) return std::numeric_limits<std::int64_t>::max();
  const auto block = static_cast<std::uint64_t>(blockBytes);
  const std::uint64_t blockBase = pos / block * block;
  if (strideBytes > 0) {
    const auto room = static_cast<std::int64_t>(blockBase + block - pos);
    return (room + strideBytes - 1) / strideBytes;
  }
  const auto room = static_cast<std::int64_t>(pos - blockBase);
  return room / -strideBytes + 1;
}

}  // namespace laps

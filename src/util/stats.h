#pragma once
/// \file stats.h
/// \brief Streaming statistics helpers used by metrics and benchmarks.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace laps {

/// Single-pass running statistics (Welford's algorithm): count, mean,
/// variance, min, max. Numerically stable for long streams.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Merges another accumulator into this one (parallel-friendly).
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentage improvement of \p optimized over \p baseline
/// (e.g. 25.0 means optimized is 25% faster / smaller).
/// Returns 0 when baseline is 0.
[[nodiscard]] double percentImprovement(double baseline, double optimized);

/// Geometric mean of strictly positive values; returns 0 for empty input.
[[nodiscard]] double geometricMean(const std::vector<double>& values);

/// Exact percentile (nearest-rank) of a copy of \p values; p in [0,100].
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Exact nearest-rank percentile of integer samples: the value at sorted
/// rank ceil(p/100 * n) (1-based; rank 1 for p == 0). Pure integer
/// arithmetic — no rounding ambiguity across platforms — which is what
/// the open-workload engine uses for the p50/p95/p99 sojourn order
/// statistics (no sampling, no interpolation). \p p in [0, 100];
/// \p values must be non-empty.
[[nodiscard]] std::int64_t percentileNearestRank(
    std::vector<std::int64_t> values, int p);

}  // namespace laps

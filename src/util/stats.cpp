#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace laps {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentImprovement(double baseline, double optimized) {
  if (baseline == 0.0) return 0.0;
  return (baseline - optimized) / baseline * 100.0;
}

double geometricMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double logSum = 0.0;
  for (const double v : values) {
    check(v > 0.0, "geometricMean requires strictly positive values");
    logSum += std::log(v);
  }
  return std::exp(logSum / static_cast<double>(values.size()));
}

double percentile(std::vector<double> values, double p) {
  check(!values.empty(), "percentile of empty set");
  check(p >= 0.0 && p <= 100.0, "percentile p must be in [0,100]");
  std::sort(values.begin(), values.end());
  if (p == 0.0) return values.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values.size())));
  return values[std::min(rank, values.size()) - 1];
}

std::int64_t percentileNearestRank(std::vector<std::int64_t> values, int p) {
  check(!values.empty(), "percentileNearestRank of empty set");
  check(p >= 0 && p <= 100, "percentileNearestRank p must be in [0,100]");
  std::sort(values.begin(), values.end());
  // ceil(p/100 * n) in integers; rank is 1-based and at least 1.
  const std::size_t n = values.size();
  const std::size_t rank =
      std::max<std::size_t>(1, (static_cast<std::size_t>(p) * n + 99) / 100);
  return values[std::min(rank, n) - 1];
}

}  // namespace laps

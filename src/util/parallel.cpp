#include "util/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "util/error.h"

namespace laps {
namespace {

/// True on threads owned by the pool AND on the caller thread while it
/// participates in a region: nested regions run inline in both cases
/// (the caller would otherwise self-deadlock on the region mutex).
thread_local bool tlsInRegion = false;

/// Marks the current thread as inside a region for the guard's lifetime.
class RegionMark {
 public:
  RegionMark() : previous_(tlsInRegion) { tlsInRegion = true; }
  ~RegionMark() { tlsInRegion = previous_; }
  RegionMark(const RegionMark&) = delete;
  RegionMark& operator=(const RegionMark&) = delete;

 private:
  bool previous_;
};

/// A fixed-size pool whose workers all run the same job (indexed by
/// worker slot) once per generation. One region at a time; the region
/// mutex below serializes callers.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers) {
    threads_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads_.emplace_back([this, w] { workerLoop(w); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (auto& t : threads_) t.join();
  }

  [[nodiscard]] std::size_t workerCount() const { return threads_.size(); }

  /// Starts job(w) on every worker slot w. Caller must pair with wait().
  void dispatch(const std::function<void(std::size_t)>* job) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      job_ = job;
      ++generation_;
      remaining_ = threads_.size();
      firstError_ = nullptr;
    }
    wake_.notify_all();
  }

  /// Blocks until the dispatched generation drains; rethrows the first
  /// worker exception, if any.
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    drained_.wait(lock, [this] { return remaining_ == 0; });
    if (firstError_) {
      const std::exception_ptr error = firstError_;
      firstError_ = nullptr;
      std::rethrow_exception(error);
    }
  }

 private:
  void workerLoop(std::size_t slot) {
    tlsInRegion = true;
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        job = job_;
      }
      std::exception_ptr error;
      try {
        (*job)(slot);
      } catch (...) {
        error = std::current_exception();
      }
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (error && !firstError_) firstError_ = error;
        if (--remaining_ == 0) drained_.notify_all();
      }
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable drained_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t remaining_ = 0;
  std::exception_ptr firstError_;
  bool stop_ = false;
};

std::atomic<std::size_t> explicitThreadCount{0};

/// Serializes parallel regions and guards the lazily-built pool.
std::mutex& regionMutex() {
  static std::mutex m;
  return m;
}

std::unique_ptr<ThreadPool>& poolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

std::size_t envThreadCount() {
  static const std::size_t parsed = [] {
    const char* raw = std::getenv("LAPS_THREADS");
    if (raw == nullptr || *raw == '\0') return std::size_t{0};
    char* end = nullptr;
    const long value = std::strtol(raw, &end, 10);
    if (end == nullptr || *end != '\0' || value < 1) return std::size_t{0};
    return static_cast<std::size_t>(value);
  }();
  return parsed;
}

}  // namespace

std::size_t parallelThreadCount() {
  const std::size_t explicitCount =
      explicitThreadCount.load(std::memory_order_relaxed);
  if (explicitCount >= 1) return explicitCount;
  if (const std::size_t env = envThreadCount(); env >= 1) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

void setParallelThreadCount(std::size_t count) {
  check(!tlsInRegion,
        "setParallelThreadCount: must not be called from a parallel region");
  explicitThreadCount.store(count, std::memory_order_relaxed);
}

void parallelChunks(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t configured = parallelThreadCount();
  const std::size_t threads = std::min(configured, n);
  if (threads <= 1 || tlsInRegion) {
    body(0, n);
    return;
  }

  // Static chunking: chunk c covers [c*chunk, min(n, (c+1)*chunk)).
  const std::size_t chunk = (n + threads - 1) / threads;
  const auto runChunk = [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin < end) body(begin, end);
  };

  const std::lock_guard<std::mutex> region(regionMutex());
  const RegionMark mark;  // nested regions on this thread run inline
  // The pool is sized to the configured count, not to this region's
  // (possibly smaller) chunk count: surplus workers draw an empty chunk,
  // and alternating small/large regions never respawn OS threads.
  std::unique_ptr<ThreadPool>& pool = poolSlot();
  if (!pool || pool->workerCount() != configured - 1) {
    pool.reset();  // join the old size before starting the new one
    pool = std::make_unique<ThreadPool>(configured - 1);
  }
  // Workers take chunks 1..threads-1; the caller runs chunk 0 so the
  // pool only ever needs threads-1 threads.
  const std::function<void(std::size_t)> job = [&](std::size_t slot) {
    runChunk(slot + 1);
  };
  pool->dispatch(&job);
  try {
    runChunk(0);
  } catch (...) {
    try {
      pool->wait();  // drain before unwinding past `job`
    } catch (...) {
      // Caller's exception wins; the worker's is dropped.
    }
    throw;
  }
  pool->wait();
}

void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)>& body) {
  parallelChunks(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  });
}

}  // namespace laps

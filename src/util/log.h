#pragma once
/// \file log.h
/// \brief Minimal leveled logging to stderr.
///
/// Logging is off by default (level Warn) so library users and benchmarks
/// see clean output; tests and debugging sessions can raise the level.
/// There is intentionally no global mutable configuration besides the
/// level itself.

#include <sstream>
#include <string>

namespace laps {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Returns the current global level (default: Warn).
[[nodiscard]] LogLevel logLevel();

/// Sets the global level; returns the previous level.
LogLevel setLogLevel(LogLevel level);

namespace detail {
void logLine(LogLevel level, const std::string& message);
}

/// Logs \p message if \p level >= the global level.
inline void log(LogLevel level, const std::string& message) {
  if (level >= logLevel() && logLevel() != LogLevel::Off) {
    detail::logLine(level, message);
  }
}

inline void logDebug(const std::string& m) { log(LogLevel::Debug, m); }
inline void logInfo(const std::string& m) { log(LogLevel::Info, m); }
inline void logWarn(const std::string& m) { log(LogLevel::Warn, m); }
inline void logError(const std::string& m) { log(LogLevel::Error, m); }

}  // namespace laps

#pragma once
/// \file parallel.h
/// \brief Deterministic parallelism substrate: a lazily-started thread
/// pool behind statically-chunked parallelFor / parallelMap.
///
/// Determinism contract: parallelFor(n, body) invokes body(i) exactly
/// once for every i in [0, n), and each index writes only its own
/// outputs — so any region built on it is bit-identical to the serial
/// loop regardless of thread count or interleaving. parallelMap
/// additionally collects results in index order. The work partition is
/// static (contiguous chunks computed from n and the thread count
/// alone), never work-stealing, so the index → thread assignment is
/// itself reproducible.
///
/// Thread count resolution, in priority order:
///   1. setParallelThreadCount(n) with n >= 1 (tests use this);
///   2. the LAPS_THREADS environment variable;
///   3. std::thread::hardware_concurrency().
/// At 1 thread no pool is started and every region runs inline on the
/// caller. Regions entered from inside a pool worker (nested
/// parallelism, e.g. footprints() under a parallel bench sweep) also
/// run inline on that worker.

#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

namespace laps {

/// The thread count parallel regions will use (always >= 1).
[[nodiscard]] std::size_t parallelThreadCount();

/// Overrides the thread count; 0 restores automatic resolution
/// (LAPS_THREADS, then hardware concurrency). Takes effect on the next
/// parallel region. Must not be called from inside one.
void setParallelThreadCount(std::size_t count);

/// Splits [0, n) into one contiguous chunk per thread and invokes
/// body(begin, end) once per non-empty chunk. Blocks until all chunks
/// completed. An exception thrown by \p body is rethrown on the caller
/// after the region drains (the caller's own chunk wins ties). This is
/// the per-chunk primitive: hot loops that cannot afford a function
/// call per index iterate inside \p body.
void parallelChunks(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body);

/// Invokes body(i) for every i in [0, n), split into one contiguous
/// chunk per thread. Prefer this when per-index work dwarfs a function
/// call; use parallelChunks otherwise.
void parallelFor(std::size_t n, const std::function<void(std::size_t)>& body);

/// parallelFor that collects fn(i) into a vector in index order.
/// T must be default-constructible.
template <typename T>
[[nodiscard]] std::vector<T> parallelMap(
    std::size_t n, const std::function<T(std::size_t)>& fn) {
  // vector<bool> packs bits, so neighbouring indices in different
  // chunks would race on shared bytes; map into std::vector<char>.
  static_assert(!std::is_same_v<T, bool>,
                "parallelMap<bool> would race on vector<bool>'s bit packing");
  std::vector<T> out(n);
  parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace laps

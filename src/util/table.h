#pragma once
/// \file table.h
/// \brief ASCII / CSV table rendering for benchmark and example output.
///
/// Every bench binary prints the rows of the paper table/figure it
/// regenerates through this writer, so outputs are uniform and easy to
/// diff or post-process (CSV mode).

#include <concepts>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace laps {

/// A simple column-aligned table. Cells are strings; numeric helpers
/// format with fixed precision.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  Table& row();

  /// Appends a string cell to the current row.
  Table& cell(std::string value);

  /// Appends a formatted numeric cell (fixed, \p precision decimals).
  Table& cell(double value, int precision = 2);

  /// Appends an integer cell (any integral type).
  template <typename T>
    requires std::integral<T>
  Table& cell(T value) {
    return cell(std::to_string(value));
  }

  [[nodiscard]] std::size_t rowCount() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& headers() const { return headers_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Renders with aligned columns and a header rule.
  [[nodiscard]] std::string ascii() const;

  /// Renders as RFC-4180-ish CSV (fields containing commas are quoted).
  [[nodiscard]] std::string csv() const;

  /// Convenience: writes ascii() to \p os.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace laps

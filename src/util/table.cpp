#include "util/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace laps {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  check(!headers_.empty(), "Table requires at least one column");
}

Table& Table::row() {
  check(rows_.empty() || rows_.back().size() == headers_.size(),
        "previous table row is incomplete");
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  check(!rows_.empty(), "call row() before cell()");
  check(rows_.back().size() < headers_.size(), "too many cells in row");
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

std::string Table::ascii() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  std::ostringstream os;
  auto emitRow = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string();
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(widths[c])) << text;
    }
    os << " |\n";
  };
  emitRow(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& r : rows_) {
    emitRow(r);
  }
  return os.str();
}

std::string Table::csv() const {
  auto escape = [](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string out = "\"";
    for (const char ch : field) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print(std::ostream& os) const { os << ascii(); }

}  // namespace laps

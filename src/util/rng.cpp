#include "util/rng.h"

#include "util/error.h"

namespace laps {
namespace {

/// splitmix64 step; used only for seeding so a poor seed (e.g. 0 or 1)
/// still yields a well-mixed xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  check(bound > 0, "Rng::below requires bound > 0");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  check(lo <= hi, "Rng::range requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

// The two floating-point draws below are bit-deterministic: the 53-bit
// integer converts exactly, and scaling by a power of two only adjusts
// the exponent. Model code should still prefer the integer samplers
// above; these exist for probability-shaped call sites.
// LINT-ALLOW(no-float): exact 53-bit conversion + power-of-two scale; bit-deterministic
double Rng::uniform01() {
  // 53 random mantissa bits -> uniform in [0, 1).
  // LINT-ALLOW(no-float): exact 53-bit conversion + power-of-two scale; bit-deterministic
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

// LINT-ALLOW(no-float): single IEEE comparison of bit-deterministic values
bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::size_t Rng::index(std::size_t n) {
  check(n > 0, "Rng::index requires a non-empty container");
  return static_cast<std::size_t>(below(n));
}

Rng Rng::split() {
  // Derive a child seed from two draws; the parent advances so repeated
  // splits yield independent streams.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ rotl(b, 32) ^ 0xd3833e804f4c574bULL);
}

}  // namespace laps

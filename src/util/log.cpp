#include "util/log.h"

#include <atomic>
#include <iostream>

namespace laps {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info:  return "INFO ";
    case LogLevel::Warn:  return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off:   return "OFF  ";
  }
  return "?";
}

}  // namespace

LogLevel logLevel() { return g_level.load(std::memory_order_relaxed); }

LogLevel setLogLevel(LogLevel level) {
  return g_level.exchange(level, std::memory_order_relaxed);
}

namespace detail {
void logLine(LogLevel level, const std::string& message) {
  std::cerr << "[laps " << levelName(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace laps

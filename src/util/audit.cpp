#include "util/audit.h"

namespace laps::audit {

void require(bool condition, std::string_view message) {
  if (!condition) {
    throw AuditError(std::string(message));
  }
}

void cycleMonotone(std::int64_t previous, std::int64_t next) {
  require(next >= previous,
          "event-queue cycle monotonicity violated: event at cycle " +
              std::to_string(next) + " popped after cycle " +
              std::to_string(previous));
}

void arrivalBeforeCore(std::int64_t coreEventCycle,
                       std::int64_t nextArrivalCycle) {
  require(coreEventCycle < nextArrivalCycle,
          "arrival-before-core ordering violated: core event at cycle " +
              std::to_string(coreEventCycle) +
              " processed with an arrival pending at cycle " +
              std::to_string(nextArrivalCycle));
}

void admissionIdentity(std::size_t samples, std::size_t rejected,
                       std::size_t failed, std::size_t processes) {
  require(samples + rejected + failed == processes,
          "admission identity violated: " + std::to_string(samples) +
              " sojourn samples + " + std::to_string(rejected) +
              " rejected + " + std::to_string(failed) +
              " failed != " + std::to_string(processes) + " processes");
}

void departureConservation(std::size_t departed, std::size_t completed,
                           std::size_t rejected, std::size_t retired,
                           std::size_t failed) {
  require(departed == completed + rejected + retired + failed,
          "departure conservation violated: " + std::to_string(departed) +
              " departed != " + std::to_string(completed) + " completed + " +
              std::to_string(rejected) + " rejected + " +
              std::to_string(retired) + " retired + " +
              std::to_string(failed) + " failed");
}

void coreUpForDispatch(bool coreDown, std::size_t core) {
  require(!coreDown, "down-core dispatch: a segment was dispatched on core " +
                         std::to_string(core) + " while it is down");
}

void faultBeforeCore(std::int64_t coreEventCycle,
                     std::int64_t nextFaultCycle) {
  require(coreEventCycle <= nextFaultCycle,
          "fault-before-core ordering violated: core event at cycle " +
              std::to_string(coreEventCycle) +
              " processed with a fault injection pending at cycle " +
              std::to_string(nextFaultCycle));
}

void percentileOrdering(std::int64_t p50, std::int64_t p95, std::int64_t p99,
                        std::size_t samples) {
  if (samples == 0) {
    require(p50 == 0 && p95 == 0 && p99 == 0,
            "percentiles nonzero with zero samples");
    return;
  }
  require(p50 <= p95 && p95 <= p99,
          "percentile ordering violated: p50=" + std::to_string(p50) +
              " p95=" + std::to_string(p95) + " p99=" + std::to_string(p99));
}

}  // namespace laps::audit

#pragma once
/// \file trace.h
/// \brief Elementary events of a process's execution trace.

#include <cstdint>

namespace laps {

/// Base of the (synthetic) code segment; loop bodies of processes live
/// here. Data arrays are placed from AddressSpaceOptions::dataBase
/// (0x1000'0000 by default), far above, so code and data never alias.
inline constexpr std::uint64_t kCodeSegmentBase = 0x0040'0000;

/// Address-space stride between the code bodies of distinct loop nests.
inline constexpr std::uint64_t kCodeBodyStride = 4096;

/// One step of a process trace: an instruction fetch plus, usually, one
/// data reference, plus any compute cycles attributed to this step.
struct TraceStep {
  std::uint64_t instrAddr = 0;   ///< instruction fetch for this step
  std::uint64_t dataAddr = 0;    ///< valid when isRef
  std::int64_t computeCycles = 0;  ///< pure-compute cycles after the step
  bool isRef = false;            ///< step performs a data reference
  bool isWrite = false;          ///< data reference is a store
};

}  // namespace laps

#pragma once
/// \file trace.h
/// \brief Elementary events of a process's execution trace.

#include <cstdint>
#include <vector>

namespace laps {

/// Base of the (synthetic) code segment; loop bodies of processes live
/// here. Data arrays are placed from AddressSpaceOptions::dataBase
/// (0x1000'0000 by default), far above, so code and data never alias.
inline constexpr std::uint64_t kCodeSegmentBase = 0x0040'0000;

/// Address-space stride between the code bodies of distinct loop nests.
inline constexpr std::uint64_t kCodeBodyStride = 4096;

/// Fetch granularity of the synthetic instruction stream: every trace
/// step fetches the next kInstrFetchBytes-aligned slot of its nest's
/// loop body, wrapping around (see ProcessTraceCursor).
inline constexpr std::uint64_t kInstrFetchBytes = 32;

/// One step of a process trace: an instruction fetch plus, usually, one
/// data reference, plus any compute cycles attributed to this step.
struct TraceStep {
  std::uint64_t instrAddr = 0;   ///< instruction fetch for this step
  std::uint64_t dataAddr = 0;    ///< valid when isRef
  std::int64_t computeCycles = 0;  ///< pure-compute cycles after the step
  bool isRef = false;            ///< step performs a data reference
  bool isWrite = false;          ///< data reference is a store
};

/// One data-access stream of a TraceRun: the same array reference
/// evaluated across consecutive innermost-loop iterations. Its addresses
/// form an exact arithmetic sequence baseAddr, baseAddr + strideBytes,
/// ... for the run's whole iteration span (runs are clipped so that even
/// re-laid-out arrays — whose LayoutTransform is only piecewise affine —
/// keep a constant stride within one run).
struct RunStream {
  std::uint64_t baseAddr = 0;   ///< address at the run's first iteration
  std::int64_t strideBytes = 0; ///< address delta per iteration
  bool isWrite = false;         ///< the reference is a store
};

/// A run-length-encoded span of a process trace: `iterations` consecutive
/// innermost-loop iterations starting at the cursor position. Each
/// iteration performs the streams' accesses in order, every step fetches
/// the next instruction slot of the nest's body, and computeCyclesPerIter
/// cycles are charged on the last step of each iteration (on every step
/// for pure-compute nests, which have one step per iteration and no
/// streams). A TraceRun is step-for-step equivalent to the TraceSteps
/// ProcessTraceCursor::next would emit over the same span.
struct TraceRun {
  std::int64_t iterations = 0;
  std::vector<RunStream> streams;     ///< empty for pure-compute nests
  std::int64_t computeCyclesPerIter = 0;
  /// True when the cursor was suspended mid-iteration: the run is the
  /// tail of one iteration (streams are the remaining accesses, strides
  /// meaningless) and iterations == 1.
  bool partialIteration = false;
  std::size_t nestIndex = 0;    ///< which nest the run belongs to
  std::uint64_t bodyBase = 0;   ///< code body of the nest
  std::int64_t bodyBytes = 0;   ///< body length (multiple of kInstrFetchBytes)
  std::uint64_t bodyCursor = 0; ///< instruction-fetch phase at run start

  /// Trace steps per iteration (pure-compute nests emit one).
  [[nodiscard]] std::int64_t stepsPerIteration() const {
    return streams.empty() ? 1 : static_cast<std::int64_t>(streams.size());
  }

  /// Total trace steps the run covers.
  [[nodiscard]] std::int64_t steps() const {
    return iterations * stepsPerIteration();
  }
};

}  // namespace laps

#include "trace/cursor.h"

#include <algorithm>

#include "util/error.h"
#include "util/stride.h"

namespace laps {

ProcessTraceCursor::ProcessTraceCursor(const ProcessSpec& spec,
                                       const ArrayTable& arrays,
                                       const AddressSpace& space)
    : spec_(&spec), arrays_(&arrays), space_(&space) {
  nestStates_.reserve(spec.nests.size());
  for (std::size_t n = 0; n < spec.nests.size(); ++n) {
    const LoopNest& nest = spec.nests[n];
    NestState state;
    state.linear.reserve(nest.accesses.size());
    for (const ArrayAccess& access : nest.accesses) {
      state.linear.push_back(linearizeAccess(access, arrays.at(access.array)));
    }
    // Loop bodies are keyed by (task, nest index) so sibling processes of
    // one task run the same code.
    state.codeBase = kCodeSegmentBase +
                     (static_cast<std::uint64_t>(spec.task) * 16 + n) *
                         kCodeBodyStride;
    const std::int64_t wanted =
        32 * static_cast<std::int64_t>(nest.accesses.size() + 1);
    state.bodyBytes = std::clamp<std::int64_t>(wanted, 64, 2048);
    nestStates_.push_back(std::move(state));
  }
  seekRunnableNest();
}

void ProcessTraceCursor::seekRunnableNest() {
  while (nestIdx_ < spec_->nests.size() &&
         spec_->nests[nestIdx_].space.empty()) {
    ++nestIdx_;
  }
  if (nestIdx_ >= spec_->nests.size()) {
    done_ = true;
    return;
  }
  const IterationSpace& space = spec_->nests[nestIdx_].space;
  point_.resize(space.rank());
  for (std::size_t d = 0; d < space.rank(); ++d) {
    point_[d] = space.dim(d).lo;
  }
  accIdx_ = 0;
  bodyCursor_ = 0;
}

bool ProcessTraceCursor::advanceIteration() {
  const IterationSpace& space = spec_->nests[nestIdx_].space;
  std::size_t d = space.rank();
  for (;;) {
    if (d == 0) return false;  // exhausted this nest
    --d;
    point_[d] += space.dim(d).step;
    if (point_[d] < space.dim(d).hi) return true;
    point_[d] = space.dim(d).lo;
  }
}

std::uint64_t ProcessTraceCursor::nextInstrAddr() {
  const NestState& state = nestStates_[nestIdx_];
  const std::uint64_t addr =
      state.codeBase + bodyCursor_ % static_cast<std::uint64_t>(state.bodyBytes);
  bodyCursor_ += kInstrFetchBytes;
  return addr;
}

bool ProcessTraceCursor::next(TraceStep& step) {
  if (done_) return false;
  const LoopNest& nest = spec_->nests[nestIdx_];
  const NestState& state = nestStates_[nestIdx_];

  step.instrAddr = nextInstrAddr();
  if (nest.accesses.empty()) {
    // Pure-compute nest: one step per iteration.
    step.isRef = false;
    step.isWrite = false;
    step.dataAddr = 0;
    step.computeCycles = nest.computeCyclesPerIter;
    if (!advanceIteration()) {
      ++nestIdx_;
      seekRunnableNest();
    }
  } else {
    const ArrayAccess& access = nest.accesses[accIdx_];
    const std::int64_t elem = state.linear[accIdx_].eval(point_);
    step.isRef = true;
    step.isWrite = access.kind == AccessKind::Write;
    step.dataAddr = space_->elementAddress(access.array, elem);
    // Compute cycles are attributed to the last reference of an iteration.
    const bool lastInIteration = accIdx_ + 1 == nest.accesses.size();
    step.computeCycles = lastInIteration ? nest.computeCyclesPerIter : 0;
    if (lastInIteration) {
      accIdx_ = 0;
      if (!advanceIteration()) {
        ++nestIdx_;
        seekRunnableNest();
      }
    } else {
      ++accIdx_;
    }
  }
  ++stepsEmitted_;
  return true;
}

bool ProcessTraceCursor::peekRun(TraceRun& run) const {
  if (done_) return false;
  const LoopNest& nest = spec_->nests[nestIdx_];
  const NestState& state = nestStates_[nestIdx_];

  run.nestIndex = nestIdx_;
  run.bodyBase = state.codeBase;
  run.bodyBytes = state.bodyBytes;
  run.bodyCursor = bodyCursor_;
  run.computeCyclesPerIter = nest.computeCyclesPerIter;
  run.streams.clear();

  if (nest.accesses.empty()) {
    run.partialIteration = false;
    run.iterations = innermostRemaining();
    return true;
  }

  if (accIdx_ != 0) {
    // Suspended mid-iteration: describe the iteration's tail so the
    // replayer can realign to an iteration boundary.
    run.partialIteration = true;
    run.iterations = 1;
    for (std::size_t a = accIdx_; a < nest.accesses.size(); ++a) {
      const ArrayAccess& access = nest.accesses[a];
      const std::int64_t elem = state.linear[a].eval(point_);
      run.streams.push_back(RunStream{
          space_->elementAddress(access.array, elem), 0,
          access.kind == AccessKind::Write});
    }
    return true;
  }

  run.partialIteration = false;
  const std::size_t rank = nest.space.rank();
  std::int64_t iters = innermostRemaining();
  for (std::size_t a = 0; a < nest.accesses.size(); ++a) {
    const ArrayAccess& access = nest.accesses[a];
    const std::int64_t elem = state.linear[a].eval(point_);
    const std::int64_t elemSize = arrays_->at(access.array).elemSize;
    const std::int64_t stride =
        rank == 0 ? 0
                  : state.linear[a].coeff(rank - 1) *
                        nest.space.dim(rank - 1).step * elemSize;
    const LayoutTransform& transform = space_->transformOf(access.array);
    if (!transform.isIdentity() && stride != 0) {
      // The interleave transform is affine within one half-page chunk of
      // natural offsets; clip the run so the stream stays inside its
      // chunk and its transformed addresses keep the natural stride.
      iters = std::min(iters,
                       strideRunLength(static_cast<std::uint64_t>(elem * elemSize),
                                       stride, transform.pageBytes() / 2));
    }
    run.streams.push_back(RunStream{space_->elementAddress(access.array, elem),
                                    stride,
                                    access.kind == AccessKind::Write});
  }
  run.iterations = iters;
  return true;
}

void ProcessTraceCursor::consume(std::int64_t steps) {
  check(steps >= 0, "ProcessTraceCursor::consume: negative step count");
  if (steps == 0) return;
  check(!done_, "ProcessTraceCursor::consume: process already finished");

  const LoopNest& nest = spec_->nests[nestIdx_];
  const std::size_t rank = nest.space.rank();
  const auto accessCount =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(nest.accesses.size()));
  const std::int64_t pos = static_cast<std::int64_t>(accIdx_) + steps;
  const std::int64_t fullIters = pos / accessCount;
  const std::int64_t newAccIdx = pos % accessCount;

  bodyCursor_ += static_cast<std::uint64_t>(steps) * kInstrFetchBytes;
  stepsEmitted_ += static_cast<std::uint64_t>(steps);

  const std::int64_t remaining = innermostRemaining();
  check(fullIters < remaining || (fullIters == remaining && newAccIdx == 0),
        "ProcessTraceCursor::consume: step count crosses the current "
        "innermost sweep");

  accIdx_ = static_cast<std::size_t>(newAccIdx);
  if (fullIters == remaining) {
    if (rank > 0) {
      point_[rank - 1] += (fullIters - 1) * nest.space.dim(rank - 1).step;
    }
    if (!advanceIteration()) {
      ++nestIdx_;
      seekRunnableNest();
    }
  } else if (rank > 0) {
    point_[rank - 1] += fullIters * nest.space.dim(rank - 1).step;
  }
}

std::int64_t ProcessTraceCursor::innermostRemaining() const {
  const IterationSpace& space = spec_->nests[nestIdx_].space;
  if (space.rank() == 0) return 1;
  const LoopDim& inner = space.dim(space.rank() - 1);
  return (inner.hi - point_[space.rank() - 1] + inner.step - 1) / inner.step;
}

}  // namespace laps

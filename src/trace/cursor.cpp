#include "trace/cursor.h"

#include <algorithm>

#include "util/error.h"

namespace laps {
namespace {

/// Fetch granularity of the synthetic instruction stream.
constexpr std::uint64_t kInstrLineBytes = 32;

}  // namespace

ProcessTraceCursor::ProcessTraceCursor(const ProcessSpec& spec,
                                       const ArrayTable& arrays,
                                       const AddressSpace& space)
    : spec_(&spec), space_(&space) {
  nestStates_.reserve(spec.nests.size());
  for (std::size_t n = 0; n < spec.nests.size(); ++n) {
    const LoopNest& nest = spec.nests[n];
    NestState state;
    state.linear.reserve(nest.accesses.size());
    for (const ArrayAccess& access : nest.accesses) {
      state.linear.push_back(linearizeAccess(access, arrays.at(access.array)));
    }
    // Loop bodies are keyed by (task, nest index) so sibling processes of
    // one task run the same code.
    state.codeBase = kCodeSegmentBase +
                     (static_cast<std::uint64_t>(spec.task) * 16 + n) *
                         kCodeBodyStride;
    const std::int64_t wanted =
        32 * static_cast<std::int64_t>(nest.accesses.size() + 1);
    state.bodyBytes = std::clamp<std::int64_t>(wanted, 64, 2048);
    nestStates_.push_back(std::move(state));
  }
  seekRunnableNest();
}

void ProcessTraceCursor::seekRunnableNest() {
  while (nestIdx_ < spec_->nests.size() &&
         spec_->nests[nestIdx_].space.empty()) {
    ++nestIdx_;
  }
  if (nestIdx_ >= spec_->nests.size()) {
    done_ = true;
    return;
  }
  const IterationSpace& space = spec_->nests[nestIdx_].space;
  point_.resize(space.rank());
  for (std::size_t d = 0; d < space.rank(); ++d) {
    point_[d] = space.dim(d).lo;
  }
  accIdx_ = 0;
  bodyCursor_ = 0;
}

bool ProcessTraceCursor::advanceIteration() {
  const IterationSpace& space = spec_->nests[nestIdx_].space;
  std::size_t d = space.rank();
  for (;;) {
    if (d == 0) return false;  // exhausted this nest
    --d;
    point_[d] += space.dim(d).step;
    if (point_[d] < space.dim(d).hi) return true;
    point_[d] = space.dim(d).lo;
  }
}

std::uint64_t ProcessTraceCursor::nextInstrAddr() {
  const NestState& state = nestStates_[nestIdx_];
  const std::uint64_t addr =
      state.codeBase + bodyCursor_ % static_cast<std::uint64_t>(state.bodyBytes);
  bodyCursor_ += kInstrLineBytes;
  return addr;
}

bool ProcessTraceCursor::next(TraceStep& step) {
  if (done_) return false;
  const LoopNest& nest = spec_->nests[nestIdx_];
  const NestState& state = nestStates_[nestIdx_];

  step.instrAddr = nextInstrAddr();
  if (nest.accesses.empty()) {
    // Pure-compute nest: one step per iteration.
    step.isRef = false;
    step.isWrite = false;
    step.dataAddr = 0;
    step.computeCycles = nest.computeCyclesPerIter;
    if (!advanceIteration()) {
      ++nestIdx_;
      seekRunnableNest();
    }
  } else {
    const ArrayAccess& access = nest.accesses[accIdx_];
    const std::int64_t elem = state.linear[accIdx_].eval(point_);
    step.isRef = true;
    step.isWrite = access.kind == AccessKind::Write;
    step.dataAddr = space_->elementAddress(access.array, elem);
    // Compute cycles are attributed to the last reference of an iteration.
    const bool lastInIteration = accIdx_ + 1 == nest.accesses.size();
    step.computeCycles = lastInIteration ? nest.computeCyclesPerIter : 0;
    if (lastInIteration) {
      accIdx_ = 0;
      if (!advanceIteration()) {
        ++nestIdx_;
        seekRunnableNest();
      }
    } else {
      ++accIdx_;
    }
  }
  ++stepsEmitted_;
  return true;
}

}  // namespace laps

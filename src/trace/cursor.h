#pragma once
/// \file cursor.h
/// \brief Resumable per-process trace generation.
///
/// A ProcessTraceCursor walks a process's loop nests and yields one
/// TraceStep per data reference (or per iteration for pure-compute
/// nests). The cursor's state is a loop index vector plus counters, so it
/// is cheap to copy and can be suspended/resumed at any step — exactly
/// what preemptive scheduling (RRS) needs, including migration of a
/// half-finished process to another core.
///
/// Instruction stream model: each (task, nest-index) pair owns a small
/// synthetic loop body in the code segment; every step fetches the next
/// line of that body, wrapping around. Processes of the same task and
/// stage therefore share instruction cache lines (they run the same
/// code), and a context switch naturally cools the I-cache.

#include <cstdint>
#include <vector>

#include "layout/address_space.h"
#include "region/footprint.h"
#include "taskgraph/process.h"
#include "trace/trace.h"

namespace laps {

/// Generates the reference trace of one process under a given data layout.
class ProcessTraceCursor {
 public:
  /// \p spec and \p arrays and \p space must outlive the cursor.
  ProcessTraceCursor(const ProcessSpec& spec, const ArrayTable& arrays,
                     const AddressSpace& space);

  /// Produces the next step. Returns false (and leaves \p step untouched)
  /// when the process has finished.
  bool next(TraceStep& step);

  /// Describes the remainder of the current innermost-loop sweep as a
  /// run-length-encoded TraceRun without advancing the cursor; returns
  /// false when the process has finished. Runs are clipped so every
  /// stream's addresses form an exact arithmetic sequence: at the sweep
  /// end, and — for re-laid-out arrays — at the LayoutTransform's
  /// half-page chunk boundaries, inside which the transform is affine.
  /// A cursor suspended mid-iteration (see consume) yields a
  /// partialIteration run covering the iteration's tail.
  bool peekRun(TraceRun& run) const;

  /// Advances the cursor past the first \p steps steps of the run
  /// peekRun describes (0 <= steps <= run.steps()); the remaining steps
  /// are re-described by the next peekRun. Together with peekRun this is
  /// the bulk-replay twin of next(): consuming N steps leaves the cursor
  /// in exactly the state N next() calls would.
  void consume(std::int64_t steps);

  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] ProcessId processId() const { return spec_->id; }

  /// Steps generated so far (for tests and progress accounting).
  [[nodiscard]] std::uint64_t stepsEmitted() const { return stepsEmitted_; }

 private:
  struct NestState {
    std::vector<AffineExpr> linear;  ///< linearized exprs, one per access
    std::uint64_t codeBase = 0;
    std::int64_t bodyBytes = 0;
  };

  /// Positions the cursor at the start of the first non-empty nest at or
  /// after nestIdx_; sets done_ when none remains.
  void seekRunnableNest();

  /// Advances the iteration odometer of the current nest; returns false
  /// when the nest is exhausted.
  bool advanceIteration();

  /// Iterations left in the current innermost-loop sweep (the current one
  /// included); 1 for rank-0 nests.
  [[nodiscard]] std::int64_t innermostRemaining() const;

  [[nodiscard]] std::uint64_t nextInstrAddr();

  const ProcessSpec* spec_;
  const ArrayTable* arrays_;
  const AddressSpace* space_;
  std::vector<NestState> nestStates_;

  std::size_t nestIdx_ = 0;
  std::size_t accIdx_ = 0;
  std::vector<std::int64_t> point_;
  std::uint64_t stepsEmitted_ = 0;
  std::uint64_t bodyCursor_ = 0;
  bool done_ = false;
};

}  // namespace laps

#pragma once
/// \file common.h
/// \brief Internal helpers shared by the application generators.

#include <algorithm>
#include <cstdint>

#include "region/access.h"
#include "region/affine.h"

namespace laps::workloads {

/// Loop variable \p dim of a rank-\p rank nest.
inline AffineExpr v(std::size_t dim, std::size_t rank) {
  return AffineExpr::var(dim, rank);
}

/// Constant index expression.
inline AffineExpr c(std::int64_t value) { return AffineExpr::constant(value); }

/// Read access with explicit index expressions.
inline ArrayAccess read(ArrayId array, std::initializer_list<AffineExpr> idx) {
  return ArrayAccess{array, AffineMap(std::vector<AffineExpr>(idx)),
                     AccessKind::Read};
}

/// Write access with explicit index expressions.
inline ArrayAccess write(ArrayId array, std::initializer_list<AffineExpr> idx) {
  return ArrayAccess{array, AffineMap(std::vector<AffineExpr>(idx)),
                     AccessKind::Write};
}

/// Scales \p base by \p scale, rounded to a multiple of \p multiple and
/// at least 2*multiple (keeps split/partition arithmetic exact and stage
/// stencils non-empty even at tiny scales). Deterministic: the exact
/// integer conversion, one correctly-rounded IEEE multiply and the
/// truncation behave identically on every conforming target (no room
/// for FMA contraction or excess precision in a single operation).
// LINT-ALLOW(no-float): one exact conversion + one IEEE multiply + truncate; platform-identical
inline std::int64_t scaled(std::int64_t base, double scale,
                           std::int64_t multiple) {
  // LINT-ALLOW(no-float): one exact conversion + one IEEE multiply + truncate; platform-identical
  const auto raw = static_cast<std::int64_t>(static_cast<double>(base) * scale);
  return std::max(2 * multiple, raw / multiple * multiple);
}

}  // namespace laps::workloads

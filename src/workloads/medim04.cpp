/// Med-Im04 — medical image reconstruction (paper Table 1).
///
/// Filtered backprojection structure (37 processes, the paper's upper
/// bound):
///   calibrate -> filter(12) -> backproject(12) -> smooth(12)
///  * filter: convolve projection blocks with a shared kernel; the taps
///    reach into neighbouring projections, so adjacent processes share
///    boundary rows (halo sharing);
///  * backproject: every image-row process reads the same slice of the
///    filtered sinogram — all backproject pairs share ~1.5 KB, and with
///    12 processes on 8 cores some of them queue, which is exactly the
///    reuse the locality scheduler exploits;
///  * smooth: vertical stencil aligned one-to-one with backproject rows.
///
/// Stage widths exceed the 8-core platform and per-process footprints
/// (3-7 KB) fit the 8 KB L1, so data brought by one process is still
/// resident when a well-chosen successor runs.

#include "workloads/apps.h"
#include "workloads/common.h"

namespace laps {

using workloads::read;
using workloads::scaled;
using workloads::v;
using workloads::write;

Application makeMedIm04(const AppParams& params) {
  Application app;
  app.name = "Med-Im04";
  app.description = "medical image reconstruction";
  Workload& w = app.workload;

  const std::int64_t proj = scaled(144, params.scale, 12);  // projections
  const std::int64_t det = scaled(64, params.scale, 8);     // detectors
  const std::int64_t imgN = scaled(96, params.scale, 12);   // image size
  constexpr std::int64_t kTaps = 4;

  const ArrayId sino = w.arrays.add("sino", {proj, det}, 4);
  const ArrayId filt = w.arrays.add("filt", {proj, det}, 4);
  const ArrayId img = w.arrays.add("img", {imgN, imgN}, 4);
  // Per-detector filter coefficient table (2 KB at scale 1): every
  // filter process sweeps the whole table once per row — the kind of hot
  // lookup table whose cache residency the Fig. 4 re-layout protects.
  const std::int64_t kernLen = det * 8;
  const ArrayId kern = w.arrays.add("kern", {kernLen}, 4);

  // calibrate: fills the kernel table (single root process).
  ProcessSpec calib;
  calib.name = "MedIm04.calibrate";
  calib.nests.push_back(LoopNest{IterationSpace::box({{0, kernLen}}),
                                 {write(kern, {v(0, 1)})},
                                 /*computeCyclesPerIter=*/4});
  const ProcessId calibId = w.graph.addProcess(std::move(calib));

  // filter: (s, p, d, t) — filt[p][d] += sino[p+t][d] * kern[8d+t],
  // iterated over 3 refinement sweeps (s, outermost, so every sweep
  // re-reads the process's whole row block). The p+t halo makes adjacent
  // row-block processes share kTaps rows; the sweeps give each process
  // temporal reuse of its ~7 KB block — a preemption that cools the
  // cache costs a block re-fetch on the next quantum.
  const LoopNest filterNest{
      IterationSpace::box({{0, 3}, {0, proj - kTaps}, {0, det}, {0, kTaps}}),
      {read(sino, {v(1, 4).plus(v(3, 4)), v(2, 4)}),
       read(kern, {v(2, 4).times(8).plus(v(3, 4))}),
       write(filt, {v(1, 4), v(2, 4)})},
      1};
  const auto filterStage =
      addParallelLoop(w, 0, "MedIm04.filter", filterNest, 12, /*splitDim=*/1);
  linkStages(w.graph, {calibId}, filterStage, StageLink::AllToAll);

  // backproject: (r, cpx, a) — img[r][cpx] += filt[a][cpx]. All
  // processes read the same 6 filtered rows (1.5 KB): strong pairwise
  // sharing, and the slice stays L1-resident for an aligned successor.
  const std::int64_t angles =
      std::max<std::int64_t>(1, std::min<std::int64_t>(6, proj / 24));
  const LoopNest backNest{
      IterationSpace::box({{0, imgN}, {0, imgN}, {0, angles}}),
      {read(filt, {v(2, 3), v(1, 3)}),
       write(img, {v(0, 3), v(1, 3)})},
      1};
  const auto backStage =
      addParallelLoop(w, 0, "MedIm04.backproject", backNest, 12);
  linkStages(w.graph, filterStage, backStage, StageLink::AllToAll);

  // smooth: (s, r, cpx) — img[r][cpx] = f(img[r][cpx], img[r+1][cpx]),
  // two block-level sweeps. Reads exactly the rows its aligned
  // backproject process wrote.
  const LoopNest smoothNest{
      IterationSpace::box({{0, 2}, {0, imgN - 8}, {0, imgN}}),
      {read(img, {v(1, 3), v(2, 3)}), read(img, {v(1, 3).shift(1), v(2, 3)}),
       write(img, {v(1, 3), v(2, 3)})},
      1};
  const auto smoothStage =
      addParallelLoop(w, 0, "MedIm04.smooth", smoothNest, 12, /*splitDim=*/1);
  linkStages(w.graph, backStage, smoothStage, StageLink::OneToOne);

  return app;
}

}  // namespace laps

#include "workloads/service.h"

#include <string>
#include <vector>

#include "util/error.h"
#include "util/rng.h"
#include "workloads/common.h"

namespace laps {

using workloads::read;
using workloads::v;
using workloads::write;

void ServiceWorkloadParams::validate() const {
  check(requestCount > 0, "ServiceWorkloadParams: requestCount must be > 0");
  check(keyCount > 0, "ServiceWorkloadParams: keyCount must be > 0");
  check(keysPerRequest >= 1 && keysPerRequest <= keyCount,
        "ServiceWorkloadParams: keysPerRequest must be in [1, keyCount]");
  check(requestsPerCohort > 0,
        "ServiceWorkloadParams: requestsPerCohort must be > 0");
  check(readPermille <= 1000,
        "ServiceWorkloadParams: readPermille must be in [0, 1000]");
  check(hotPermille <= 1000,
        "ServiceWorkloadParams: hotPermille must be in [0, 1000]");
  check(hotKeyCount <= keyCount,
        "ServiceWorkloadParams: hotKeyCount must be <= keyCount");
  check(valueElems > 0, "ServiceWorkloadParams: valueElems must be > 0");
  check(computeCyclesPerElem >= 0,
        "ServiceWorkloadParams: computeCyclesPerElem must be >= 0");
}

namespace {

/// One key index: hot-skewed when the skew is active, else uniform.
/// Integer-only (Rng::below is exact rejection sampling).
std::size_t drawKey(Rng& rng, const ServiceWorkloadParams& p) {
  const bool skewActive = p.hotKeyCount > 0 && p.hotKeyCount < p.keyCount;
  if (skewActive && rng.below(1000) < p.hotPermille) {
    return static_cast<std::size_t>(rng.below(p.hotKeyCount));
  }
  if (!skewActive) return static_cast<std::size_t>(rng.below(p.keyCount));
  return p.hotKeyCount +
         static_cast<std::size_t>(rng.below(p.keyCount - p.hotKeyCount));
}

}  // namespace

Workload makeServiceWorkload(const ServiceWorkloadParams& params) {
  params.validate();
  Workload w;
  Rng rng(params.seed);

  std::vector<ArrayId> keys;
  keys.reserve(params.keyCount);
  for (std::size_t k = 0; k < params.keyCount; ++k) {
    keys.push_back(
        w.arrays.add("key" + std::to_string(k), {params.valueElems}, 4));
  }

  for (std::size_t r = 0; r < params.requestCount; ++r) {
    const bool isGet = rng.below(1000) < params.readPermille;
    // Distinct keys per request: rejection against the ones already
    // drawn (keysPerRequest <= keyCount guarantees termination).
    std::vector<std::size_t> picked;
    picked.reserve(params.keysPerRequest);
    while (picked.size() < params.keysPerRequest) {
      const std::size_t k = drawKey(rng, params);
      bool dup = false;
      for (const std::size_t seen : picked) dup = dup || (seen == k);
      if (!dup) picked.push_back(k);
    }
    const ArrayId scratch =
        w.arrays.add("scratch" + std::to_string(r), {params.valueElems}, 4);

    ProcessSpec proc;
    proc.task = static_cast<TaskId>(r / params.requestsPerCohort);
    proc.name = std::string(isGet ? "svc.get" : "svc.put") + std::to_string(r);
    for (const std::size_t k : picked) {
      // get: stream the value into scratch; put: stream scratch over
      // the value. Either way the request walks the whole value array,
      // so requests overlapping on a key share its footprint.
      const ArrayId value = keys[k];
      proc.nests.push_back(LoopNest{
          IterationSpace::box({{0, params.valueElems}}),
          isGet ? std::vector<ArrayAccess>{read(value, {v(0, 1)}),
                                           write(scratch, {v(0, 1)})}
                : std::vector<ArrayAccess>{read(scratch, {v(0, 1)}),
                                           write(value, {v(0, 1)})},
          params.computeCyclesPerElem});
    }
    w.graph.addProcess(std::move(proc));
  }
  return w;
}

}  // namespace laps

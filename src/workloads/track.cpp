/// Track — visual tracking control (paper Table 1).
///
///   diff(6) -> correlate(6) -> update(1)   = 13 processes
///  * diff: frame differencing over row blocks (reads both frames;
///    ~4.7 KB per block keeps a block L1-resident);
///  * correlate: subsampled window matching that re-reads the current
///    frame and the diff map — exactly the rows its aligned diff process
///    produced (strong producer-consumer sharing, halo dependences);
///  * update: track state update from the score map.

#include "workloads/apps.h"
#include "workloads/common.h"

namespace laps {

using workloads::read;
using workloads::scaled;
using workloads::v;
using workloads::write;

Application makeTrack(const AppParams& params) {
  Application app;
  app.name = "Track";
  app.description = "visual tracking control";
  Workload& w = app.workload;

  const std::int64_t n = scaled(60, params.scale, 6);  // frame rows
  const std::int64_t half = n / 2;

  const ArrayId prev = w.arrays.add("prev", {n, n}, 4);
  const ArrayId cur = w.arrays.add("cur", {n, n}, 4);
  const ArrayId diff = w.arrays.add("diff", {n, n}, 4);
  const ArrayId score = w.arrays.add("score", {half, half}, 4);
  const ArrayId state = w.arrays.add("state", {64}, 4);
  // Correlation gain table (~900 B), swept by every correlate row.
  const ArrayId gain = w.arrays.add("gain", {(half - 2) * 8}, 4);

  // diff: (s, r, cpx) — diff[r][cpx] = |cur[r][cpx] - prev[r][cpx]|,
  // two block-level sweeps.
  const LoopNest diffNest{
      IterationSpace::box({{0, 2}, {0, n}, {0, n}}),
      {read(cur, {v(1, 3), v(2, 3)}), read(prev, {v(1, 3), v(2, 3)}),
       write(diff, {v(1, 3), v(2, 3)})},
      1};
  const auto diffStage =
      addParallelLoop(w, 0, "Track.diff", diffNest, 6, /*splitDim=*/1);

  // correlate: (s, r, cpx, t) —
  // score[r][cpx] += f(cur[2r][2cpx+t], diff[2r][2cpx+t]), two sweeps.
  const LoopNest correlateNest{
      IterationSpace::box({{0, 2}, {0, half}, {0, half - 2}, {0, 4}}),
      {read(cur, {v(1, 4).times(2), v(2, 4).times(2).plus(v(3, 4))}),
       read(diff, {v(1, 4).times(2), v(2, 4).times(2).plus(v(3, 4))}),
       read(gain, {v(2, 4).times(8).plus(v(3, 4))}),
       write(score, {v(1, 4), v(2, 4)})},
      1};
  const auto correlateStage =
      addParallelLoop(w, 0, "Track.correlate", correlateNest, 6, /*splitDim=*/1);
  linkStages(w.graph, diffStage, correlateStage, StageLink::OneToOne);

  // update: (r, cpx) — state[2r] from the score map (subsampled).
  ProcessSpec update;
  update.name = "Track.update";
  const std::int64_t stateRows = std::min<std::int64_t>(32, half);
  update.nests.push_back(LoopNest{
      IterationSpace::box({{0, stateRows}, {0, half}}),
      {read(score, {v(0, 2), v(1, 2)}), write(state, {v(0, 2).times(2)})},
      2});
  const ProcessId updateId = w.graph.addProcess(std::move(update));
  linkStages(w.graph, correlateStage, {updateId}, StageLink::AllToAll);

  return app;
}

}  // namespace laps

/// MxM — triple matrix multiplication (paper Table 1).
///
/// Computes C = A x B then E = C x D as row-block processes (36 total):
///   pack(4) -> multiply1(16) -> multiply2(16)
///  * pack: transposes B into Bt for stride-1 inner products;
///  * multiply1: every process reads all of Bt (4 KB — it stays resident
///    across back-to-back multiply1 processes on one core, which is what
///    the locality scheduler arranges when 16 processes queue on 8
///    cores);
///  * multiply2: process i consumes exactly the C rows process i of
///    multiply1 produced (one-to-one dependences) and all of D.

#include "workloads/apps.h"
#include "workloads/common.h"

namespace laps {

using workloads::read;
using workloads::scaled;
using workloads::v;
using workloads::write;

Application makeMxM(const AppParams& params) {
  Application app;
  app.name = "MxM";
  app.description = "triple matrix multiplication";
  Workload& w = app.workload;

  const std::int64_t n = scaled(32, params.scale, 16);

  const ArrayId a = w.arrays.add("A", {n, n}, 4);
  const ArrayId b = w.arrays.add("B", {n, n}, 4);
  const ArrayId bt = w.arrays.add("Bt", {n, n}, 4);
  const ArrayId cm = w.arrays.add("C", {n, n}, 4);
  const ArrayId d = w.arrays.add("D", {n, n}, 4);
  const ArrayId e = w.arrays.add("E", {n, n}, 4);

  // pack: (s, j, k) — Bt[j][k] = B[k][j] (transpose; column reads are
  // strided), two block-level sweeps for internal reuse.
  const LoopNest packNest{IterationSpace::box({{0, 2}, {0, n}, {0, n}}),
                          {read(b, {v(2, 3), v(1, 3)}),
                           write(bt, {v(1, 3), v(2, 3)})},
                          1};
  const auto packStage =
      addParallelLoop(w, 0, "MxM.pack", packNest, 4, /*splitDim=*/1);

  // multiply1: (i, j, k) — C[i][j] += A[i][k] * Bt[j][k].
  const LoopNest mul1Nest{
      IterationSpace::box({{0, n}, {0, n}, {0, n}}),
      {read(a, {v(0, 3), v(2, 3)}), read(bt, {v(1, 3), v(2, 3)}),
       write(cm, {v(0, 3), v(1, 3)})},
      1};
  const auto mul1Stage = addParallelLoop(w, 0, "MxM.mul1", mul1Nest, 16);
  linkStages(w.graph, packStage, mul1Stage, StageLink::AllToAll);

  // multiply2: (i, j, k) — E[i][j] += C[i][k] * D[k][j].
  const LoopNest mul2Nest{
      IterationSpace::box({{0, n}, {0, n}, {0, n}}),
      {read(cm, {v(0, 3), v(2, 3)}), read(d, {v(2, 3), v(1, 3)}),
       write(e, {v(0, 3), v(1, 3)})},
      1};
  const auto mul2Stage = addParallelLoop(w, 0, "MxM.mul2", mul2Nest, 16);
  linkStages(w.graph, mul1Stage, mul2Stage, StageLink::OneToOne);

  return app;
}

}  // namespace laps

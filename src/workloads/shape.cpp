/// Shape — pattern recognition and shape analysis (paper Table 1).
///
/// The smallest task of the suite (9 processes, matching the paper's
/// lower bound):
///   threshold(4) -> contour(4) -> moments(1)
///  * threshold: binarize image row blocks (~2.3 KB per block, so a
///    block survives in the 8 KB L1 until the aligned contour process
///    consumes it);
///  * contour: 2D edge stencil with halo dependences, one-to-one aligned
///    with threshold blocks;
///  * moments: global reduction over a subsampled contour map.

#include "workloads/apps.h"
#include "workloads/common.h"

namespace laps {

using workloads::read;
using workloads::scaled;
using workloads::v;
using workloads::write;

Application makeShape(const AppParams& params) {
  Application app;
  app.name = "Shape";
  app.description = "pattern recognition and shape analysis";
  Workload& w = app.workload;

  const std::int64_t n = scaled(48, params.scale, 4);

  const ArrayId image = w.arrays.add("image", {n, n}, 4);
  const ArrayId edge = w.arrays.add("edge", {n, n}, 4);
  const ArrayId contour = w.arrays.add("contour", {n, n}, 4);
  const ArrayId moments = w.arrays.add("moments", {16}, 4);
  // Per-column gamma correction table (~700 B), swept once per row.
  const ArrayId gamma = w.arrays.add("gamma", {(n - 4) * 4}, 4);

  // threshold: (s, r, cpx, t) — edge[r][cpx] = gamma(image[r][cpx+t]),
  // two block-level sweeps.
  const LoopNest thresholdNest{
      IterationSpace::box({{0, 2}, {0, n}, {0, n - 4}, {0, 4}}),
      {read(image, {v(1, 4), v(2, 4).plus(v(3, 4))}),
       read(gamma, {v(2, 4).times(4).plus(v(3, 4))}),
       write(edge, {v(1, 4), v(2, 4)})},
      1};
  const auto thresholdStage =
      addParallelLoop(w, 0, "Shape.threshold", thresholdNest, 4, /*splitDim=*/1);

  // contour: (s, r, cpx) — contour[r][cpx] = f(edge r/r+1, cpx/cpx+1),
  // two block-level sweeps; reads the edge rows its aligned threshold
  // block wrote.
  const LoopNest contourNest{
      IterationSpace::box({{0, 2}, {0, n - 4}, {0, n - 1}}),
      {read(edge, {v(1, 3), v(2, 3)}), read(edge, {v(1, 3).shift(1), v(2, 3)}),
       read(edge, {v(1, 3), v(2, 3).shift(1)}),
       write(contour, {v(1, 3), v(2, 3)})},
      1};
  const auto contourStage =
      addParallelLoop(w, 0, "Shape.contour", contourNest, 4, /*splitDim=*/1);
  linkStages(w.graph, thresholdStage, contourStage, StageLink::OneToOne);

  // moments: (r, m) — moments[m] += contour[r][m*step] * r^k.
  ProcessSpec momentsProc;
  momentsProc.name = "Shape.moments";
  const std::int64_t colStep = std::max<std::int64_t>(1, n / 16);
  momentsProc.nests.push_back(LoopNest{
      IterationSpace::box({{0, n - 4}, {0, 16}}),
      {read(contour, {v(0, 2), v(1, 2).times(colStep)}),
       write(moments, {v(1, 2)})},
      2});
  const ProcessId momentsId = w.graph.addProcess(std::move(momentsProc));
  linkStages(w.graph, contourStage, {momentsId}, StageLink::AllToAll);

  return app;
}

}  // namespace laps

#include "util/error.h"
#include "workloads/apps.h"

namespace laps {

std::vector<Application> standardSuite(const AppParams& params) {
  std::vector<Application> suite;
  suite.push_back(makeMedIm04(params));
  suite.push_back(makeMxM(params));
  suite.push_back(makeRadar(params));
  suite.push_back(makeShape(params));
  suite.push_back(makeTrack(params));
  suite.push_back(makeUsonic(params));
  return suite;
}

Workload concurrentScenario(const std::vector<Application>& suite,
                            std::size_t count) {
  check(count >= 1 && !suite.empty(),
        "concurrentScenario: need a non-empty suite and count >= 1");
  Workload merged;
  for (std::size_t i = 0; i < count; ++i) {
    appendWorkload(merged, suite[i % suite.size()].workload);
  }
  return merged;
}

}  // namespace laps

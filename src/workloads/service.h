#pragma once
/// \file service.h
/// \brief Synthetic keyed service workload for open-mode saturation
///        studies (docs/ARCHITECTURE.md §10).
///
/// Models a request-serving tier: every process is one request against a
/// small keyed store — a `get` streams a key's value array into private
/// scratch, a `put` streams scratch back over the value array. Requests
/// that hit the same key touch the same array, so data sharing (the
/// locality signal the paper's schedulers exploit) arises purely from
/// key overlap — tunable via the key count and a hot-key skew — rather
/// than from hand-wired stage pipelines. Requests carry no dependences:
/// the open-workload arrival stream and admission control alone drive
/// the dynamics, which is exactly what a saturation sweep wants to
/// isolate.
///
/// Generation consumes a single laps::Rng stream through the integer
/// helpers only (below), so a seed fixes the workload bit-for-bit on
/// every platform.

#include <cstdint>

#include "taskgraph/graph.h"

namespace laps {

/// Knobs of the keyed service generator. Defaults give ~96 requests
/// over 24 keys with a strong hot-key skew and a 90% read mix — enough
/// overlap that locality-aware policies separate from locality-blind
/// ones, small enough for sub-second sweeps.
struct ServiceWorkloadParams {
  std::uint64_t seed = 1;          ///< fixes keys and read/write mix
  std::size_t requestCount = 96;   ///< processes generated
  std::size_t keyCount = 24;       ///< distinct value arrays
  std::size_t keysPerRequest = 2;  ///< keys each request touches
  /// Requests per arrival cohort (task): request i belongs to task
  /// i / requestsPerCohort, so cohort granularity admits consecutive
  /// requests together and per-process granularity streams them singly.
  std::size_t requestsPerCohort = 8;
  /// Read fraction in permille: a request is a `get` when a draw from
  /// [0,1000) lands below this (integer-only — no floating point).
  std::uint32_t readPermille = 900;
  /// Hot-key skew: with probability hotPermille/1000 a key draw picks
  /// among the first hotKeyCount keys, else among the rest. Zero
  /// hotKeyCount (or hotKeyCount == keyCount) disables the skew.
  std::uint32_t hotPermille = 800;
  std::size_t hotKeyCount = 4;
  std::int64_t valueElems = 256;   ///< elements per value array (4 B each)
  std::int64_t computeCyclesPerElem = 1;

  /// Throws laps::Error on out-of-range knobs.
  void validate() const;
};

/// Generates the keyed service workload described above: one value
/// array per key, one private scratch array and one process per
/// request, tasks of requestsPerCohort consecutive requests, no
/// dependence edges.
Workload makeServiceWorkload(const ServiceWorkloadParams& params = {});

}  // namespace laps

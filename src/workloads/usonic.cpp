/// Usonic — feature-based object recognition (paper Table 1).
///
/// The largest task of the suite (37 processes, matching the paper's
/// upper bound):
///   preprocess(8) -> extract(8) -> match(16) -> aggregate(4) -> decide(1)
///  * preprocess: in-place signal conditioning over row blocks;
///  * extract: windowed feature computation, one-to-one aligned with
///    preprocess blocks (re-reads the same signal rows);
///  * match: 16 processes each score ALL features (4 KB, L1-resident)
///    against their own codebook block — the strongest read-sharing
///    pattern in the suite, and with 16 processes on 8 cores half of
///    them run as back-to-back successors;
///  * aggregate: score reduction over feature-row blocks;
///  * decide: final argmax scan.

#include "workloads/apps.h"
#include "workloads/common.h"

namespace laps {

using workloads::read;
using workloads::scaled;
using workloads::v;
using workloads::write;

Application makeUsonic(const AppParams& params) {
  Application app;
  app.name = "Usonic";
  app.description = "feature-based object recognition";
  Workload& w = app.workload;

  const std::int64_t frames = scaled(128, params.scale, 16);  // signal rows
  const std::int64_t width = scaled(64, params.scale, 8);     // samples/row
  const std::int64_t cbRows = scaled(256, params.scale, 16);  // codebook
  constexpr std::int64_t kFeat = 8;

  const ArrayId signal = w.arrays.add("signal", {frames, width}, 4);
  const ArrayId feat = w.arrays.add("feat", {frames, kFeat}, 4);
  const ArrayId codebook = w.arrays.add("codebook", {cbRows, kFeat}, 4);
  // scores is a per-codebook-entry reduction (one accumulator per row),
  // so the match stage's output traffic is tiny compared with its reused
  // inputs (feat and the codebook block).
  const ArrayId scores = w.arrays.add("scores", {cbRows}, 4);
  const ArrayId result = w.arrays.add("result", {frames}, 4);
  // Per-frame distance weights (2 KB), swept once per codebook row.
  const ArrayId weights = w.arrays.add("weights", {frames * 4}, 4);

  // preprocess: (s, f, w) — signal[f][w] = g(signal[f][w]), two
  // block-level sweeps.
  const LoopNest preNest{IterationSpace::box({{0, 2}, {0, frames}, {0, width}}),
                         {read(signal, {v(1, 3), v(2, 3)}),
                          write(signal, {v(1, 3), v(2, 3)})},
                         1};
  const auto preStage =
      addParallelLoop(w, 0, "Usonic.preprocess", preNest, 8, /*splitDim=*/1);

  // extract: (f, d, t) — feat[f][d] += signal[f][d*(width/kFeat)+t].
  const std::int64_t stride = std::max<std::int64_t>(1, width / kFeat);
  const LoopNest extractNest{
      IterationSpace::box({{0, frames}, {0, kFeat}, {0, 4}}),
      {read(signal, {v(0, 3), v(1, 3).times(stride).plus(v(2, 3))}),
       write(feat, {v(0, 3), v(1, 3)})},
      1};
  const auto extractStage =
      addParallelLoop(w, 0, "Usonic.extract", extractNest, 8);
  linkStages(w.graph, preStage, extractStage, StageLink::OneToOne);

  // match: (cb, f, d) — scores[cb] += feat[f][4d] * codebook[cb][4d].
  // Parallelized over codebook blocks: every process sweeps all features
  // once per codebook row — the feature array (4 KB) is the hot resident
  // block the locality scheduler keeps on a core.
  const LoopNest matchNest{
      IterationSpace({LoopDim{0, cbRows, 1}, LoopDim{0, frames, 2},
                      LoopDim{0, 2, 1}}),
      {read(feat, {v(1, 3), v(2, 3).times(4)}),
       read(codebook, {v(0, 3), v(2, 3).times(4)}),
       read(weights, {v(1, 3).times(4).plus(v(2, 3))}),
       write(scores, {v(0, 3)})},
      1};
  const auto matchStage = addParallelLoop(w, 0, "Usonic.match", matchNest, 16);
  linkStages(w.graph, extractStage, matchStage, StageLink::AllToAll);

  // aggregate: (f, cb16) — result[f] = max(result[f], scores[cb16*s]).
  const std::int64_t cbStep = std::max<std::int64_t>(1, cbRows / 16);
  const LoopNest aggNest{
      IterationSpace::box({{0, frames}, {0, 16}}),
      {read(scores, {v(1, 2).times(cbStep)}),
       write(result, {v(0, 2)})},
      1};
  const auto aggStage = addParallelLoop(w, 0, "Usonic.aggregate", aggNest, 4);
  linkStages(w.graph, matchStage, aggStage, StageLink::AllToAll);

  // decide: argmax over the result vector.
  ProcessSpec decide;
  decide.name = "Usonic.decide";
  decide.nests.push_back(LoopNest{IterationSpace::box({{0, frames}}),
                                  {read(result, {v(0, 1)})},
                                  2});
  const ProcessId decideId = w.graph.addProcess(std::move(decide));
  linkStages(w.graph, aggStage, {decideId}, StageLink::AllToAll);

  return app;
}

}  // namespace laps

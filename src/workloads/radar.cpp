/// Radar — radar imaging (paper Table 1).
///
/// Classic pulse-Doppler pipeline (33 processes):
///   compress(12) -> cornerturn(12) -> doppler(4) -> cfar(4) -> merge(1)
///  * compress: per-pulse matched filter against a shared chirp; the tap
///    reach gives adjacent pulse blocks a halo overlap;
///  * cornerturn: transpose (strided column reads — inherently
///    locality-hostile, as on real radar pipelines);
///  * doppler: wide row blocks with shared twiddles;
///  * cfar: guard-cell stencil aligned one-to-one with doppler blocks;
///  * merge: scans the detection map.

#include "workloads/apps.h"
#include "workloads/common.h"

namespace laps {

using workloads::read;
using workloads::scaled;
using workloads::v;
using workloads::write;

Application makeRadar(const AppParams& params) {
  Application app;
  app.name = "Radar";
  app.description = "radar imaging";
  Workload& w = app.workload;

  const std::int64_t pulses = scaled(96, params.scale, 12);
  const std::int64_t bins = scaled(72, params.scale, 12);
  constexpr std::int64_t kTaps = 4;

  const ArrayId raw = w.arrays.add("raw", {pulses, bins}, 4);
  // Matched-filter coefficients per range bin (~1.1 KB, re-swept by
  // every compress process row) and FFT twiddles per pulse (~1.5 KB):
  // the hot lookup tables of the pipeline.
  const ArrayId chirp = w.arrays.add("chirp", {bins * kTaps}, 4);
  const ArrayId rc = w.arrays.add("rc", {pulses, bins}, 4);
  const ArrayId ct = w.arrays.add("ct", {bins, pulses}, 4);
  const ArrayId twiddle = w.arrays.add("twiddle", {pulses * kTaps}, 4);
  const ArrayId dop = w.arrays.add("dop", {bins, pulses}, 4);
  const ArrayId det = w.arrays.add("det", {bins, pulses}, 4);

  // compress: (s, p, b, t) — rc[p][b] += raw[p+t][b] * chirp[t], two
  // block-level sweeps; the p+t halo is shared with the neighbouring
  // pulse block.
  const LoopNest compressNest{
      IterationSpace::box({{0, 2}, {0, pulses - kTaps}, {0, bins}, {0, kTaps}}),
      {read(raw, {v(1, 4).plus(v(3, 4)), v(2, 4)}),
       read(chirp, {v(2, 4).times(kTaps).plus(v(3, 4))}),
       write(rc, {v(1, 4), v(2, 4)})},
      1};
  const auto compressStage =
      addParallelLoop(w, 0, "Radar.compress", compressNest, 12, /*splitDim=*/1);

  // cornerturn: (s, b, p) — ct[b][p] = rc[p][b], two block-level sweeps.
  const LoopNest turnNest{IterationSpace::box({{0, 2}, {0, bins}, {0, pulses}}),
                          {read(rc, {v(2, 3), v(1, 3)}),
                           write(ct, {v(1, 3), v(2, 3)})},
                          1};
  const auto turnStage =
      addParallelLoop(w, 0, "Radar.cornerturn", turnNest, 12, /*splitDim=*/1);
  linkStages(w.graph, compressStage, turnStage, StageLink::AllToAll);

  // doppler: (s, b, p, t) — dop[b][p] += ct[b][p] * twiddle[t], two
  // block-level sweeps over each process's ~7 KB row block.
  const LoopNest dopplerNest{
      IterationSpace::box({{0, 2}, {0, bins}, {0, pulses}, {0, kTaps}}),
      {read(ct, {v(1, 4), v(2, 4)}),
       read(twiddle, {v(2, 4).times(kTaps).plus(v(3, 4))}),
       write(dop, {v(1, 4), v(2, 4)})},
      1};
  const auto dopplerStage =
      addParallelLoop(w, 0, "Radar.doppler", dopplerNest, 4, /*splitDim=*/1);
  linkStages(w.graph, turnStage, dopplerStage, StageLink::AllToAll);

  // cfar: (b, p) — det[b][p] = f(dop[b][p], dop[b][p+1], dop[b][p+2]).
  const LoopNest cfarNest{
      IterationSpace::box({{0, bins}, {0, pulses - 2}}),
      {read(dop, {v(0, 2), v(1, 2)}), read(dop, {v(0, 2), v(1, 2).shift(1)}),
       read(dop, {v(0, 2), v(1, 2).shift(2)}),
       write(det, {v(0, 2), v(1, 2)})},
      1};
  const auto cfarStage = addParallelLoop(w, 0, "Radar.cfar", cfarNest, 4);
  linkStages(w.graph, dopplerStage, cfarStage, StageLink::OneToOne);

  // merge: subsampled scan of the detection map.
  ProcessSpec merge;
  merge.name = "Radar.merge";
  const std::int64_t mergeStep = std::max<std::int64_t>(1, pulses / 16);
  merge.nests.push_back(LoopNest{
      IterationSpace::box({{0, bins}, {0, 16}}),
      {read(det, {v(0, 2), v(1, 2).times(mergeStep)})},
      2});
  const ProcessId mergeId = w.graph.addProcess(std::move(merge));
  linkStages(w.graph, cfarStage, {mergeId}, StageLink::AllToAll);

  return app;
}

}  // namespace laps

#pragma once
/// \file apps.h
/// \brief The six applications of paper Table 1 as workload generators.
///
/// The original benchmarks are proprietary; these generators reproduce
/// the properties the scheduler actually observes (see
/// docs/ARCHITECTURE.md §2):
///  * array-intensive affine loop nests from image/video processing,
///  * 9-37 processes per task (paper §4), staged with dependences,
///  * heavy intra-application data sharing (shared read arrays, halo
///    overlap, producer-consumer rows),
///  * zero inter-application sharing.
///
/// | Task     | Description (Table 1)                    | Processes |
/// |----------|------------------------------------------|-----------|
/// | Med-Im04 | medical image reconstruction             | 25        |
/// | MxM      | triple matrix multiplication             | 20        |
/// | Radar    | radar imaging                            | 33        |
/// | Shape    | pattern recognition and shape analysis   | 9         |
/// | Track    | visual tracking control                  | 13        |
/// | Usonic   | feature-based object recognition         | 37        |

#include <string>
#include <vector>

#include "taskgraph/builder.h"
#include "taskgraph/graph.h"

namespace laps {

/// Generation parameters shared by all applications.
struct AppParams {
  /// Scales the primary problem dimensions (and thus trace length).
  /// 1.0 keeps full-suite simulations in the seconds range on a laptop.
  /// Consumed only by workloads::scaled(), whose single-multiply
  /// arithmetic is platform-identical (see common.h).
  // LINT-ALLOW(no-float): input knob consumed only by the exact scaled() helper
  double scale = 1.0;
};

/// A generated application: one task's workload plus its Table 1 row.
struct Application {
  std::string name;
  std::string description;
  Workload workload;  ///< single task with task id 0

  [[nodiscard]] std::size_t processCount() const {
    return workload.graph.processCount();
  }
};

Application makeMedIm04(const AppParams& params = {});
Application makeMxM(const AppParams& params = {});
Application makeRadar(const AppParams& params = {});
Application makeShape(const AppParams& params = {});
Application makeTrack(const AppParams& params = {});
Application makeUsonic(const AppParams& params = {});

/// All six applications in the paper's Table 1 order (the order Fig. 7
/// accumulates them in).
std::vector<Application> standardSuite(const AppParams& params = {});

/// Merges the first \p count applications of \p suite into one workload
/// whose tasks run concurrently (paper Fig. 7's |T| axis). Arrays and
/// task ids are remapped; there is no inter-application sharing. Counts
/// beyond the suite size cycle through it (application i is
/// suite[i % size]), each instance fully independent — the way the
/// |T| axis extends to hundreds of resident applications.
///
/// Under an open workload (MpsocConfig::arrivals,
/// docs/ARCHITECTURE.md §9) each merged task is one arrival cohort, in
/// this merge order: application i is the i-th cohort to launch. The
/// zero inter-application sharing and absence of cross-task dependences
/// are exactly what the cohort arrival model assumes (a later cohort
/// never depends on one that has not arrived).
Workload concurrentScenario(const std::vector<Application>& suite,
                            std::size_t count);

}  // namespace laps

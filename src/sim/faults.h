#pragma once
/// \file faults.h
/// \brief Deterministic fault injection for the MPSoC engine
///        (docs/ARCHITECTURE.md §13).
///
/// A production service must keep meeting its sojourn SLOs when a core
/// dies or a request crashes mid-flight; the paper's platform assumes
/// neither ever happens. A FaultPlan makes the simulated platform
/// unreliable in a fully seeded way: three independent event classes —
/// permanent core failure, transient core outage (down for a fixed
/// number of cycles, then recovered cold), and process crash (the
/// running process loses its progress and re-executes under a
/// RetryPolicy) — each arriving at integer-geometric (memoryless)
/// inter-fault distances drawn by the same Q0.64 survival-inversion
/// machinery as sim/arrivals' Exponential gaps.
///
/// Determinism: every gap, target draw and backoff jitter comes from a
/// sub-stream derived from FaultPlan::seed (see FaultStream), consumed
/// through integer-only laps::Rng helpers — a (workload, plan) pair
/// injects the identical fault sequence on every platform, compiler and
/// thread count. Disabled (the default: every mean zero), the engine
/// never constructs any of this and takes the exact fault-free code
/// path, so all committed baselines stay byte-identical.

#include <cstdint>
#include <vector>

#include "sim/arrivals.h"
#include "util/rng.h"

namespace laps {

/// The three injected event classes, in tie-break priority order: when
/// several classes fire at the same cycle, they apply in enum order.
enum class FaultClass {
  CoreFailure,   ///< a core goes down permanently
  CoreOutage,    ///< a core goes down, recovers after outageDownCycles
  ProcessCrash,  ///< the running process loses its progress
};

/// Short stable name ("CoreFailure", "CoreOutage", "ProcessCrash").
[[nodiscard]] const char* to_string(FaultClass kind);

/// The independent Rng sub-streams derived from FaultPlan::seed, in
/// derivation order (faultStreamSeed). Splitting per purpose keeps the
/// classes uncorrelated and means enabling one class never shifts the
/// draws of another.
enum class FaultStream {
  FailureGaps,  ///< inter-failure distances
  OutageGaps,   ///< inter-outage distances
  CrashGaps,    ///< inter-crash distances
  Targets,      ///< which core / which running process is hit
  RetryJitter,  ///< seeded jitter added to retry backoff delays
};

/// Seed of one \ref FaultStream sub-stream of \p planSeed: the k-th
/// draw of an Rng seeded with planSeed, k = the stream's enum index.
[[nodiscard]] std::uint64_t faultStreamSeed(std::uint64_t planSeed,
                                            FaultStream stream);

/// How crashed processes re-execute. A crashed process leaves the
/// system immediately (its progress is gone) and re-enters as a fresh
/// arrival after an integer exponential backoff — admission control
/// sees the retry exactly like any other arrival, so QueueCap/SloShed
/// can shed retries under overload. A process that exhausts
/// maxAttempts (or whose retry is shed) is permanently failed.
struct RetryPolicy {
  /// Re-executions granted after a crash; 0 = the first crash is fatal.
  std::uint32_t maxAttempts = 3;

  /// Backoff before re-arrival k (1-based):
  ///   min(backoffBaseCycles << (k - 1), backoffCapCycles)
  ///   + jitter drawn uniformly from [0, backoffJitterCycles]
  /// — classic capped integer exponential backoff with seeded jitter.
  std::int64_t backoffBaseCycles = 2'000;
  std::int64_t backoffCapCycles = 1'000'000;
  std::int64_t backoffJitterCycles = 0;

  /// Throws laps::Error on a non-positive base, a cap below the base
  /// (or past the overflow guard), or negative jitter.
  void validate() const;
};

/// Backoff delay before retry attempt \p attempt (1-based; see
/// RetryPolicy). \p jitterRng is the FaultStream::RetryJitter stream;
/// it is consumed only when backoffJitterCycles > 0, so jitter-free
/// plans draw nothing.
[[nodiscard]] std::int64_t retryBackoffCycles(const RetryPolicy& policy,
                                              std::uint32_t attempt,
                                              Rng& jitterRng);

/// The seeded fault configuration of one run. A class with mean 0 is
/// disabled; with every class disabled (the default) the plan is
/// inert and the engine behaves bit-identically to a fault-free run.
struct FaultPlan {
  /// Root seed every sub-stream derives from (see FaultStream).
  std::uint64_t seed = 1;

  /// Mean cycles between permanent core failures (0 = disabled).
  /// A failure that would leave no core able to ever run again — every
  /// other core already permanently down — is suppressed (counted in
  /// FaultStats::faultsSuppressed), so injection can degrade the
  /// platform but never wedge it.
  std::int64_t meanCoreFailureCycles = 0;

  /// Mean cycles between transient core outages (0 = disabled).
  std::int64_t meanCoreOutageCycles = 0;

  /// Mean cycles between process crashes (0 = disabled). Each crash
  /// hits one currently-running process; with nothing running the
  /// event is suppressed.
  std::int64_t meanCrashCycles = 0;

  /// How long a transient outage keeps its core down (> 0 when outages
  /// are enabled). The core returns with cold caches.
  std::int64_t outageDownCycles = 50'000;

  /// Cycles charged to a fault-displaced process's next segment (cold
  /// L1 on whatever core resumes it), outside the quantum like switch
  /// overhead. Accounted in FaultStats::migrationPenaltyCycles.
  std::int64_t migrationPenaltyCycles = 2'000;

  /// Extra displacement penalty when the platform has a shared L2
  /// (MpsocConfig::sharedL2): re-warming the larger shared level.
  std::int64_t l2RewarmPenaltyCycles = 0;

  /// Crash recovery policy (see RetryPolicy).
  RetryPolicy retry{};

  /// True when any fault class can fire.
  [[nodiscard]] bool enabled() const {
    return meanCoreFailureCycles > 0 || meanCoreOutageCycles > 0 ||
           meanCrashCycles > 0;
  }

  /// Throws laps::Error on a negative mean or penalty, a non-positive
  /// outage duration while outages are enabled, or an invalid retry
  /// policy.
  void validate() const;
};

/// One injected fault: \p kind fires at \p cycle. Targets are not part
/// of the event — the engine picks them from the FaultStream::Targets
/// stream against the set eligible when the event applies (the timeline
/// cannot know which cores are up or which processes run).
struct FaultEvent {
  std::int64_t cycle = 0;
  FaultClass kind = FaultClass::CoreFailure;
};

/// Lazily merges the (infinite) per-class fault streams of a FaultPlan
/// into one nondecreasing event sequence. Each enabled class draws its
/// gaps from its own GapSampler (ArrivalDistribution::Exponential — the
/// integer-geometric memoryless distribution) seeded from its own
/// sub-stream; the first event of a class fires one gap after cycle 0.
/// Ties break in FaultClass enum order. Construction validates the
/// plan, which must be enabled().
class FaultTimeline {
 public:
  explicit FaultTimeline(const FaultPlan& plan);

  /// The next pending fault without consuming it.
  [[nodiscard]] const FaultEvent& peek() const { return next_; }

  /// Consumes and returns the next fault, advancing its class's stream.
  FaultEvent pop();

 private:
  void refresh();  ///< recomputes next_ from the per-class heads

  struct ClassStream {
    FaultClass kind;
    GapSampler sampler;
    std::int64_t nextCycle;
  };
  std::vector<ClassStream> streams_;  // at most 3, FaultClass order
  FaultEvent next_{};
};

}  // namespace laps

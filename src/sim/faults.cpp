#include "sim/faults.h"

#include <algorithm>
#include <limits>

#include "util/error.h"

namespace laps {

namespace {

/// Overflow guard for backoff arithmetic: a cap this large shifted or
/// added to any simulated cycle still fits int64 comfortably.
constexpr std::int64_t kMaxBackoffCapCycles =
    std::numeric_limits<std::int64_t>::max() / 8;

}  // namespace

const char* to_string(FaultClass kind) {
  switch (kind) {
    case FaultClass::CoreFailure: return "CoreFailure";
    case FaultClass::CoreOutage: return "CoreOutage";
    case FaultClass::ProcessCrash: return "ProcessCrash";
  }
  fail("to_string: unknown FaultClass");
}

std::uint64_t faultStreamSeed(std::uint64_t planSeed, FaultStream stream) {
  Rng seeder(planSeed);
  std::uint64_t seed = 0;
  for (int k = 0; k <= static_cast<int>(stream); ++k) seed = seeder();
  return seed;
}

void RetryPolicy::validate() const {
  check(backoffBaseCycles > 0,
        "RetryPolicy: backoffBaseCycles must be positive");
  check(backoffCapCycles >= backoffBaseCycles,
        "RetryPolicy: backoffCapCycles must be >= backoffBaseCycles");
  check(backoffCapCycles <= kMaxBackoffCapCycles,
        "RetryPolicy: backoffCapCycles past the overflow guard");
  check(backoffJitterCycles >= 0,
        "RetryPolicy: backoffJitterCycles must be >= 0");
  check(backoffJitterCycles <= kMaxBackoffCapCycles,
        "RetryPolicy: backoffJitterCycles past the overflow guard");
}

std::int64_t retryBackoffCycles(const RetryPolicy& policy,
                                std::uint32_t attempt, Rng& jitterRng) {
  check(attempt >= 1, "retryBackoffCycles: attempts are 1-based");
  // Doubling with an explicit cap instead of a shift: the cap is the
  // overflow guard (validate bounds it), so delay * 2 cannot wrap.
  std::int64_t delay = policy.backoffBaseCycles;
  for (std::uint32_t k = 1; k < attempt && delay < policy.backoffCapCycles;
       ++k) {
    delay = std::min(policy.backoffCapCycles, delay * 2);
  }
  delay = std::min(delay, policy.backoffCapCycles);
  if (policy.backoffJitterCycles > 0) {
    delay += jitterRng.range(0, policy.backoffJitterCycles);
  }
  return delay;
}

void FaultPlan::validate() const {
  check(meanCoreFailureCycles >= 0,
        "FaultPlan: meanCoreFailureCycles must be >= 0");
  check(meanCoreOutageCycles >= 0,
        "FaultPlan: meanCoreOutageCycles must be >= 0");
  check(meanCrashCycles >= 0, "FaultPlan: meanCrashCycles must be >= 0");
  if (meanCoreOutageCycles > 0) {
    check(outageDownCycles > 0,
          "FaultPlan: outageDownCycles must be positive while outages are "
          "enabled");
  }
  check(outageDownCycles >= 0, "FaultPlan: outageDownCycles must be >= 0");
  check(migrationPenaltyCycles >= 0,
        "FaultPlan: migrationPenaltyCycles must be >= 0");
  check(l2RewarmPenaltyCycles >= 0,
        "FaultPlan: l2RewarmPenaltyCycles must be >= 0");
  retry.validate();
}

FaultTimeline::FaultTimeline(const FaultPlan& plan) {
  plan.validate();
  check(plan.enabled(), "FaultTimeline: every fault class is disabled");
  const auto addStream = [&](FaultClass kind, std::int64_t mean,
                             FaultStream stream) {
    if (mean <= 0) return;
    // The Exponential GapSampler is exactly the integer-geometric
    // machinery the arrival streams use; a synthesized schedule reuses
    // it verbatim (same Q0.64 survival inversion, same draw order).
    ArrivalSchedule gaps;
    gaps.seed = faultStreamSeed(plan.seed, stream);
    gaps.meanInterArrivalCycles = mean;
    gaps.distribution = ArrivalDistribution::Exponential;
    streams_.push_back(ClassStream{kind, GapSampler(gaps), 0});
    streams_.back().nextCycle = streams_.back().sampler.next();
  };
  addStream(FaultClass::CoreFailure, plan.meanCoreFailureCycles,
            FaultStream::FailureGaps);
  addStream(FaultClass::CoreOutage, plan.meanCoreOutageCycles,
            FaultStream::OutageGaps);
  addStream(FaultClass::ProcessCrash, plan.meanCrashCycles,
            FaultStream::CrashGaps);
  refresh();
}

void FaultTimeline::refresh() {
  // streams_ is in FaultClass order, so scanning with a strict < keeps
  // the documented tie-break: equal cycles fire in enum order.
  std::size_t best = 0;
  for (std::size_t i = 1; i < streams_.size(); ++i) {
    if (streams_[i].nextCycle < streams_[best].nextCycle) best = i;
  }
  next_ = FaultEvent{streams_[best].nextCycle, streams_[best].kind};
}

FaultEvent FaultTimeline::pop() {
  const FaultEvent event = next_;
  for (ClassStream& stream : streams_) {
    if (stream.kind == event.kind) {
      stream.nextCycle += stream.sampler.next();
      break;
    }
  }
  refresh();
  return event;
}

}  // namespace laps

#include "sim/replay.h"

#include <algorithm>
#include <vector>

#include "trace/trace.h"

namespace laps {
namespace {

/// A data stream's position while a run executes.
struct StreamState {
  std::uint64_t addr = 0;
  std::int64_t stride = 0;
  bool isWrite = false;
};

}  // namespace

std::int64_t replaySegmentRunLength(ProcessTraceCursor& cursor,
                                    MemorySystem& mem,
                                    std::optional<std::int64_t> quantum,
                                    std::int64_t segmentStartCycle) {
  const MemoryConfig& cfg = mem.config();
  const bool contended = mem.contended();
  const bool modelI = cfg.modelICache;
  const std::int64_t iHit = cfg.l1i.hitLatencyCycles;
  const std::int64_t dHit = cfg.l1d.hitLatencyCycles;
  const std::int64_t dLine = cfg.l1d.lineBytes;

  std::int64_t cycles = 0;
  bool overQuantum = false;
  TraceRun run;
  std::vector<StreamState> pos;
  // Nest whose code body is verified fully resident in the I-cache; while
  // it stays the current nest, every fetch is a guaranteed hit (only this
  // process's fetches touch the I-cache within a segment), so fetch
  // accounting can be deferred and committed arithmetically per chunk.
  std::optional<std::size_t> warmNest;

  while (!overQuantum && cursor.peekRun(run)) {
    const auto K = static_cast<std::int64_t>(run.streams.size());
    const std::int64_t compute = run.computeCyclesPerIter;
    std::int64_t consumed = 0;  // trace steps consumed of this run

    // When fetchDeferred (warm body), doStep skips its instruction fetch
    // — a known hit with zero stall — and commitFetches accounts the
    // chunk's fetches in bulk instead.
    bool fetchDeferred = false;

    // Commits the deferred instruction fetches of steps
    // [fromStep, consumed) of this run: all hits (warm body), with exact
    // per-event stamps. The fetch stream cycles through the body's P
    // slots, so the last min(S, P) fetches carry every slot's final
    // stamp.
    const auto commitFetches = [&](std::int64_t fromStep) {
      if (!fetchDeferred) return;
      const std::int64_t steps = consumed - fromStep;
      if (steps <= 0) return;
      const std::uint64_t iclock0 = mem.instrClock();
      const auto slots = static_cast<std::int64_t>(
          static_cast<std::uint64_t>(run.bodyBytes) / kInstrFetchBytes);
      const std::uint64_t phase =
          (run.bodyCursor +
           static_cast<std::uint64_t>(fromStep) * kInstrFetchBytes) %
          static_cast<std::uint64_t>(run.bodyBytes) / kInstrFetchBytes;
      const std::int64_t touched = std::min(steps, slots);
      for (std::int64_t t = steps - touched; t < steps; ++t) {
        const std::uint64_t slot = (phase + static_cast<std::uint64_t>(t)) %
                                   static_cast<std::uint64_t>(slots);
        mem.instrTouch(run.bodyBase + slot * kInstrFetchBytes,
                       iclock0 + static_cast<std::uint64_t>(t) + 1);
      }
      mem.instrBulkHits(steps);
    };

    // One trace step, per-event style: instruction fetch (hits are
    // pipelined; only the miss penalty stalls), data access for stream j
    // (j < 0 = pure-compute step), compute cycles on the iteration's last
    // step, then the quantum check — exactly MpsocSimulator's loop body.
    const auto doStep = [&](std::int64_t j, std::uint64_t dataAddr,
                            bool isWrite) {
      if (modelI && !fetchDeferred) {
        const std::uint64_t fetchAddr =
            run.bodyBase +
            (run.bodyCursor +
             static_cast<std::uint64_t>(consumed) * kInstrFetchBytes) %
                static_cast<std::uint64_t>(run.bodyBytes);
        const std::int64_t iLat =
            mem.instrFetch(fetchAddr, segmentStartCycle + cycles);
        if (iLat > iHit) cycles += iLat - iHit;
      }
      if (j >= 0) {
        cycles += mem.dataAccess(dataAddr, isWrite,
                                 segmentStartCycle + cycles);
      }
      if (j < 0 || j == K - 1) cycles += compute;
      ++consumed;
      if (quantum && cycles >= *quantum) overQuantum = true;
    };

    if (run.partialIteration) {
      for (std::int64_t j = 0; j < K && !overQuantum; ++j) {
        doStep(j, run.streams[j].baseAddr, run.streams[j].isWrite);
      }
      cursor.consume(consumed);
      continue;
    }

    pos.clear();
    for (const RunStream& s : run.streams) {
      pos.push_back(StreamState{s.baseAddr, s.strideBytes, s.isWrite});
    }
    std::int64_t itersLeft = run.iterations;

    // One full iteration per-event at the current stream positions.
    const auto doIteration = [&]() {
      if (K == 0) {
        doStep(-1, 0, false);
      } else {
        for (std::int64_t j = 0; j < K && !overQuantum; ++j) {
          doStep(j, pos[static_cast<std::size_t>(j)].addr,
                 pos[static_cast<std::size_t>(j)].isWrite);
        }
      }
      if (overQuantum) return;
      --itersLeft;
      for (StreamState& s : pos) {
        s.addr += static_cast<std::uint64_t>(s.stride);
      }
    };

    // If any stream jumps to a new line every iteration, it caps every
    // chunk at one iteration and the chunk machinery is pure overhead:
    // run the whole run per-event in a tight loop instead (with fetch
    // accounting still deferred once the body is warm).
    bool jumper = false;
    for (const StreamState& s : pos) {
      if (s.stride >= dLine || s.stride <= -dLine) {
        jumper = true;
        break;
      }
    }

    while (itersLeft > 0 && !overQuantum) {
      // Is this nest's body warm in the I-cache? (Probe once; fetches
      // cannot evict it afterwards, so the answer is sticky per nest.)
      bool iWarm = !modelI;
      if (modelI) {
        if (warmNest == std::optional<std::size_t>{run.nestIndex}) {
          iWarm = true;
        } else {
          iWarm = true;
          for (std::int64_t b = 0; b < run.bodyBytes;
               b += static_cast<std::int64_t>(kInstrFetchBytes)) {
            if (!mem.icache().probe(run.bodyBase +
                                    static_cast<std::uint64_t>(b))) {
              iWarm = false;
              break;
            }
          }
          if (iWarm) warmNest = run.nestIndex;
        }
      }
      fetchDeferred = modelI && iWarm;
      const std::int64_t chunkStart = consumed;

      // Single-stream runs without a quantum: the whole remainder
      // resolves with one associative search per cache line
      // (MemorySystem::accessRun), classification included. On a
      // contended hierarchy the fuse would mistime misses (it cannot
      // interleave the per-iteration compute cycles), so data streams
      // fall through to the chunked path there.
      if (!quantum && K <= 1 && iWarm && (K == 0 || !contended)) {
        if (K == 1) {
          const StreamState& s = pos.front();
          cycles += mem.accessRun(s.addr, s.stride, itersLeft, s.isWrite);
        }
        cycles += itersLeft * compute;
        consumed += itersLeft;
        itersLeft = 0;
        commitFetches(chunkStart);
        break;
      }

      if (jumper) {
        while (itersLeft > 0 && !overQuantum) doIteration();
        commitFetches(chunkStart);
        break;
      }

      // Chunk: the iterations whose accesses all stay in their current
      // cache lines. After the first (per-event) iteration establishes
      // those lines, the rest of the chunk cannot miss or evict.
      std::int64_t chunk = itersLeft;
      for (const StreamState& s : pos) {
        chunk = std::min(chunk, lineRunLength(s.addr, s.stride, dLine));
      }

      const std::uint64_t missesBefore = mem.dcache().stats().misses;
      doIteration();
      if (overQuantum) {
        commitFetches(chunkStart);
        break;
      }
      std::int64_t rest = chunk - 1;
      if (rest == 0) {
        commitFetches(chunkStart);
        continue;
      }

      // The bulk shortcut needs every fetch to hit (warm body) and every
      // stream's line to have survived the first iteration. A hit leaves
      // its line resident and a miss fills it, so only a first-iteration
      // miss — which may have evicted another stream's line from a shared
      // set — makes the probes necessary.
      bool resident = iWarm;
      if (resident && K > 1 &&
          mem.dcache().stats().misses != missesBefore) {
        for (const StreamState& s : pos) {
          if (!mem.dcache().probe(s.addr -
                                  static_cast<std::uint64_t>(s.stride))) {
            resident = false;
            break;
          }
        }
      }
      if (!resident) {
        while (rest-- > 0 && !overQuantum) doIteration();
        commitFetches(chunkStart);
        continue;
      }

      // How much of the chunk's remainder does the quantum allow? A bulk
      // iteration's steps cost dHit each, plus the compute cycles on its
      // last step (everything hits). Find the exact step on which the
      // per-event loop would stop.
      std::int64_t takeIters = rest;  // complete iterations to commit
      std::int64_t takeExtra = 0;     // steps of one further partial iteration
      const std::int64_t stepsPerIter = std::max<std::int64_t>(K, 1);
      const std::int64_t perIter = K * dHit + compute;
      if (quantum && perIter > 0) {
        const std::int64_t budget = *quantum - cycles;  // >= 1 here
        const std::int64_t fullBelow = (budget - 1) / perIter;
        if (fullBelow < rest) {
          const std::int64_t gap = budget - fullBelow * perIter;
          std::int64_t within = stepsPerIter;
          if (K > 0 && dHit > 0) {
            within = std::min<std::int64_t>(K, (gap + dHit - 1) / dHit);
          }
          if (within >= stepsPerIter) {
            takeIters = fullBelow + 1;
            takeExtra = 0;
          } else {
            takeIters = fullBelow;
            takeExtra = within;
          }
          overQuantum = true;
        }
      }

      const std::int64_t bulkSteps = takeIters * stepsPerIter + takeExtra;
      if (bulkSteps > 0) {
        cycles += takeIters * perIter + takeExtra * dHit;

        if (K > 0) {
          if (quantum) {
            // Exact per-event LRU stamps: bulk access (q, j) — iteration
            // q, stream j — is the (q*K + j + 1)-th data access after the
            // current clock. A partial final iteration (takeExtra) can
            // reorder streams' final stamps, so each line is re-stamped
            // explicitly.
            const std::uint64_t dclock0 = mem.dataClock();
            for (std::int64_t j = 0; j < K; ++j) {
              const std::int64_t lastIter =
                  j < takeExtra ? takeIters : takeIters - 1;
              if (lastIter < 0) continue;  // stream has no bulk access
              const StreamState& s = pos[static_cast<std::size_t>(j)];
              mem.dataTouch(
                  s.addr - static_cast<std::uint64_t>(s.stride), s.isWrite,
                  dclock0 + static_cast<std::uint64_t>(lastIter * K + j + 1));
            }
          }
          // Without a quantum the chunk commits whole iterations, so the
          // streams' final per-event stamps are ordered exactly like the
          // first-iteration stamps they already carry (by stream index),
          // and dirty bits were set by the first iteration's real
          // accesses. LRU decisions compare stamps only within a set and
          // only by order, so advancing the clock alone is behaviorally
          // exact — every later access still outranks the chunk's lines.
          mem.dataBulkHits(takeIters * K + takeExtra);
          // The skipped accesses are no-ops for the miss classifier as
          // long as they cycle the shadow LRU's MRU block completely; a
          // partial final iteration is not a complete cycle, so replay
          // exactly those accesses into the shadow to leave it in the
          // per-event order (they are shadow hits — nothing is counted).
          for (std::int64_t j = 0; j < takeExtra; ++j) {
            const StreamState& s = pos[static_cast<std::size_t>(j)];
            mem.dataShadowTouch(s.addr - static_cast<std::uint64_t>(s.stride));
          }
        }

        consumed += bulkSteps;
        itersLeft -= takeIters;
        for (StreamState& s : pos) {
          s.addr += static_cast<std::uint64_t>(s.stride * takeIters);
        }
      }
      commitFetches(chunkStart);
    }

    cursor.consume(consumed);
  }
  return cycles;
}

}  // namespace laps

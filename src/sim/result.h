#pragma once
/// \file result.h
/// \brief Metrics produced by one MPSoC simulation run.

#include <cstdint>
#include <vector>

#include "cache/cache.h"
#include "cache/miss_class.h"
#include "sched/scheduler.h"
#include "taskgraph/process.h"

namespace laps {

/// Execution record of one process.
struct ProcessRunRecord {
  ProcessId id = 0;
  std::int64_t arrivalCycle = 0;      ///< 0 in closed workloads
  std::int64_t firstStartCycle = -1;  ///< -1 = never ran
  std::int64_t completionCycle = -1;  ///< -1 = did not complete
  std::size_t lastCore = 0;           ///< core that ran the final segment
  std::uint32_t segments = 0;         ///< 1 = ran uninterrupted
  /// Open workloads only: the process exceeded its lifetime and was
  /// retired before finishing its trace. completionCycle then holds the
  /// lifetime deadline — when the process logically left — even when
  /// the engine only enforced it at a later scheduling boundary.
  bool retired = false;
  /// Open workloads only: admission control turned the process away at
  /// arrival. It never ran (firstStartCycle -1, segments 0), the
  /// scheduling policy never heard of it, and completionCycle holds the
  /// arrival cycle. Rejected processes are excluded from the sojourn
  /// percentiles.
  bool rejected = false;
  /// Fault injection only: the process crashed and its retry budget ran
  /// out (or its retry was shed by admission control) — it left the
  /// system without completing. completionCycle holds the failure
  /// cycle; like rejected processes, failed ones are excluded from the
  /// sojourn percentiles.
  bool failed = false;
  /// Fault injection only: crashes this process suffered (each one
  /// restarted its trace from the beginning).
  std::uint32_t crashes = 0;
};

/// Fault-injection and availability accounting of one run (all zero
/// when MpsocConfig::faults is disabled — the fault-free engine).
struct FaultStats {
  std::uint64_t coreFailures = 0;   ///< permanent core failures applied
  std::uint64_t coreOutages = 0;    ///< transient outages applied
  std::uint64_t coreRecoveries = 0; ///< outage recoveries processed
  /// Injected events that found no valid target: a permanent failure
  /// that would have wedged the platform (no other core left able to
  /// run), an outage with every core already down, or a crash with
  /// nothing running.
  std::uint64_t faultsSuppressed = 0;
  std::uint64_t processCrashes = 0;    ///< crash events applied
  std::uint64_t retriesScheduled = 0;  ///< crash retries queued
  std::uint64_t retriesShed = 0;       ///< retries denied by admission
  /// Processes whose crash retry budget ran out (or whose retry was
  /// shed): they left the system without completing.
  std::uint64_t failedProcesses = 0;
  /// Running processes displaced by a core going down (preempted with
  /// progress kept; their next segment pays the migration penalty).
  std::uint64_t faultMigrations = 0;
  /// Penalty cycles actually charged to displaced processes' resumes
  /// (migration + optional L2 re-warm), outside the quantum like
  /// switch overhead.
  std::uint64_t migrationPenaltyCycles = 0;
  /// Core-cycles spent unavailable (down), summed over cores — neither
  /// busy nor idle in the per-core accounting.
  std::uint64_t coreDownCycles = 0;
};

/// Exact p50/p95/p99 order statistics over recorded sojourn times
/// (exit cycle - arrival cycle of every admitted process, completed or
/// retired — no sampling). All zero when no sojourn was recorded.
struct SojournPercentiles {
  std::int64_t p50 = 0;
  std::int64_t p95 = 0;
  std::int64_t p99 = 0;
  std::size_t samples = 0;  ///< sojourns the percentiles rank over
};

/// Per-arrival-cohort metrics of an open workload (one cohort = all
/// processes of one task, arriving together).
struct CohortStats {
  TaskId task = 0;                  ///< task id of this cohort
  std::int64_t arrivalCycle = 0;    ///< when the cohort entered
  std::int64_t completionCycle = 0; ///< last exit (completion or retire)
  std::size_t processCount = 0;
  std::size_t retiredCount = 0;     ///< processes killed by the lifetime
  std::size_t rejectedCount = 0;    ///< processes turned away at arrival
  std::size_t failedCount = 0;      ///< processes lost to crash failures
  /// Sum over the cohort's completed-or-retired processes of
  /// (exit cycle - arrival cycle) — divide by completedCount() +
  /// retiredCount for the mean sojourn time.
  std::int64_t totalLatencyCycles = 0;
  /// Exact sojourn order statistics over the cohort's completed-or-
  /// retired processes (rejected and failed ones never sojourned).
  SojournPercentiles sojourn;

  /// Response time of the whole cohort.
  [[nodiscard]] std::int64_t makespanCycles() const {
    return completionCycle - arrivalCycle;
  }

  /// Goodput of the cohort: processes that ran to completion — neither
  /// rejected at the door, retired by the lifetime, nor permanently
  /// failed after crashes.
  [[nodiscard]] std::size_t completedCount() const {
    return processCount - retiredCount - rejectedCount - failedCount;
  }
};

/// Everything a simulation run reports.
struct SimResult {
  std::int64_t makespanCycles = 0;  ///< completion of the last process
  /// makespan / clock — a readout derived from makespanCycles after the
  /// run; every comparison and baseline uses the integer cycles.
  // LINT-ALLOW(no-float): derived readout of the integer makespan; reporting only
  double seconds = 0.0;

  CacheStats dcacheTotal;  ///< summed over cores
  CacheStats icacheTotal;
  MissBreakdown dataMisses;  ///< populated when classification enabled

  /// \name Shared-level statistics (zeros when the hierarchy is flat)
  /// @{
  bool sharedL2Enabled = false;       ///< an L2 sat under the L1s
  CacheStats l2Total;                 ///< shared L2, summed over banks
  std::uint64_t l2BankWaitCycles = 0; ///< queueing behind busy L2 banks
  /// Off-chip write-backs of dirty L1 data that no L2 counter sees:
  /// copies flushed by inclusion back-invalidation past a clean L2
  /// entry, and L1 victims whose L2 line was already gone. Disjoint
  /// from l2Total.dirtyEvictions.
  std::uint64_t inclusionWritebacks = 0;
  std::uint64_t busTransactions = 0;  ///< demand fills + write-backs
  std::uint64_t busWaitCycles = 0;    ///< queueing for a free bus slot
  /// @}

  /// \name NoC / directory statistics (zeros on Flat/Bus interconnects)
  /// @{
  bool nocEnabled = false;            ///< a Mesh/Xbar NoC routed misses
  std::uint64_t nocTransfers = 0;     ///< demand transfers routed
  std::uint64_t nocPostedTransfers = 0;  ///< write-backs + invalidations
  std::uint64_t nocHopCycles = 0;     ///< summed per-hop latency (demand)
  std::uint64_t nocLinkWaitCycles = 0;   ///< link queueing (demand)
  /// Resume penalties charged for moving a process between tiles
  /// (hops × NocConfig::migrationHopCycles, outside the quantum).
  std::uint64_t nocMigrationPenaltyCycles = 0;
  bool directoryEnabled = false;      ///< targeted back-invalidation ran
  std::uint64_t directoryInvalidationsSent = 0;
  /// Probes the broadcast protocol would have issued that the sharer
  /// mask filtered out.
  std::uint64_t directoryInvalidationsFiltered = 0;
  /// @}

  std::uint64_t contextSwitches = 0;  ///< segments that changed the process
  std::uint64_t preemptions = 0;      ///< quantum expirations
  std::uint64_t migrations = 0;       ///< resumes on a different core

  /// \name Open-workload statistics (empty/zero in closed workloads)
  /// @{
  /// Per-arrival-cohort metrics, in arrival order (= task order).
  std::vector<CohortStats> cohorts;
  /// Processes retired at their lifetime deadline before completing.
  std::uint64_t retiredProcesses = 0;
  /// Processes admission control turned away at arrival (never
  /// scheduled; the policy saw no event for them).
  std::uint64_t rejectedProcesses = 0;
  /// Exact global sojourn order statistics over all admitted processes.
  SojournPercentiles sojourn;
  /// Fault-injection and availability accounting (all zero when
  /// MpsocConfig::faults is disabled).
  FaultStats faults;
  /// @}

  /// Cycles spent on context-switch overhead (summed over cores). Kept
  /// out of coreBusyCycles: switch overhead is neither useful work nor
  /// idleness, and counting it as busy would inflate utilization().
  std::uint64_t switchOverheadCycles = 0;

  std::vector<std::int64_t> coreBusyCycles;  ///< per core, useful work only
  std::vector<std::int64_t> coreIdleCycles;  ///< per core (until makespan)

  std::vector<ProcessRunRecord> processes;  ///< indexed by ProcessId

  /// The policy's own decision-work counters (scheduling overhead, not
  /// simulated time): rebuilds/patches/steals for replanning policies,
  /// zeros for the rest.
  PolicyStats policy;

  /// Total data references simulated.
  [[nodiscard]] std::uint64_t dataReferences() const {
    return dcacheTotal.accesses;
  }

  /// Goodput of the run: processes that ran to completion — neither
  /// rejected at admission, retired by the lifetime, nor permanently
  /// failed after crashes.
  [[nodiscard]] std::size_t completedProcesses() const {
    return processes.size() -
           static_cast<std::size_t>(rejectedProcesses + retiredProcesses +
                                    faults.failedProcesses);
  }

  /// Overall data-cache miss rate (reporting only; see CacheStats).
  // LINT-ALLOW(no-float): presentation-only rate over final integer counters
  [[nodiscard]] double dataMissRate() const { return dcacheTotal.missRate(); }

  /// Mean core utilization in [0, 1] (reporting only; see engine.cpp).
  // LINT-ALLOW(no-float): presentation-only mean over final integer busy counters
  [[nodiscard]] double utilization() const;
};

}  // namespace laps

#pragma once
/// \file engine.h
/// \brief The discrete-event MPSoC simulator (Simics substitute).
///
/// Execution model (documented approximations in docs/ARCHITECTURE.md
/// §§6-7):
///  * every core owns a private MemorySystem (split L1 I/D); cache
///    contents persist across context switches — the effect the paper's
///    scheduler exploits;
///  * all cores share one MemoryHierarchy below the L1s: flat fixed-
///    latency memory by default (the paper platform), optionally a
///    shared banked L2 and a bounded off-chip bus
///    (MpsocConfig::sharedL2/bus), in which case a miss's latency
///    depends on the absolute cycle it issues and the other cores'
///    traffic;
///  * a process trace step costs: instruction-fetch latency + data-access
///    latency (2 on hit, 2+75 on miss with Table 2 defaults) + its
///    compute cycles;
///  * scheduling decisions happen when a core goes idle (process finished
///    or quantum expired) and when new processes become ready;
///  * with an arrival schedule (MpsocConfig::arrivals, docs §§9-10) the
///    workload is open: task cohorts or individual processes are
///    admitted mid-simulation (the policy hears onArrival, the live
///    sharing matrix gains the row incrementally), processes that
///    outlive their deadline are retired at the next scheduling
///    boundary (onExit; dependents are released as on completion), and
///    SimResult reports per-cohort latency plus exact p50/p95/p99
///    sojourn order statistics;
///  * admission control (MpsocConfig::admission, docs §10) is consulted
///    once per arriving process before the policy hears anything: a
///    rejected process is a non-event to the policy, releases its
///    dependents immediately, and is counted in
///    SimResult::rejectedProcesses / CohortStats::rejectedCount;
///  * a preempted process resumes where it stopped, on any core;
///  * context switches cost MpsocConfig::switchCycles, charged outside
///    the quantum (overhead must not shrink the policy's time slice) and
///    reported separately from useful work (SimResult::switchOverheadCycles);
///  * with a FaultPlan (MpsocConfig::faults, docs §13; requires an
///    arrival schedule) the platform is unreliable: seeded fault events
///    interleave with the event loop (arrivals, then retries, then
///    recoveries, then injections, then core events at equal cycles).
///    A failing or transiently-outaged core goes down at its next
///    segment boundary (immediately when idle); its displaced process
///    is preempted with progress kept and pays a migration penalty on
///    resume, while a down core is never offered work again until it
///    recovers (cold). A crashed process loses all progress, leaves the
///    system through the same departure path as lifetime retirement,
///    and re-enters as a fresh arrival after a seeded exponential
///    backoff — admission control can shed the retry; a process out of
///    retry budget is permanently failed (SimResult::faults).
///
/// Traces replay either per event or run-length encoded
/// (MpsocConfig::replayMode; see sim/replay.h) with bit-identical
/// results. The simulation is fully deterministic: identical inputs
/// (workload, layout, policy, config) produce identical results.

#include <cstdint>
#include <memory>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "layout/address_space.h"
#include "sched/scheduler.h"
#include "sim/config.h"
#include "sim/result.h"
#include "taskgraph/graph.h"
#include "trace/cursor.h"

namespace laps {

/// Runs one workload under one scheduling policy on the simulated MPSoC.
class MpsocSimulator {
 public:
  /// \p workload, \p space and \p policy must outlive the simulator.
  /// \p sharing is handed to the policy (may be empty for policies that
  /// ignore it, but sizes must match when present).
  MpsocSimulator(const Workload& workload, const AddressSpace& space,
                 const SharingMatrix& sharing, SchedulerPolicy& policy,
                 MpsocConfig config);

  /// Open workloads: supply precomputed per-process footprints so run()
  /// does not recompute them for the incremental sharing-matrix
  /// maintenance (the experiment harness already has them). Must cover
  /// every process of the workload; ignored in closed mode.
  void provideFootprints(std::vector<Footprint> footprints);

  /// Simulates to completion and returns the metrics. Throws laps::Error
  /// if the policy strands work (deadlock) or schedules an ineligible
  /// process.
  SimResult run();

  /// \name Audit-liveness test seams
  /// Prove the engine's compiled-in fault checkers fire (see
  /// tests/sim/fault_test.cpp): the seams skew the checked state without
  /// touching the simulation itself, so an audit build must abort while
  /// a default build still returns the unperturbed result.
  /// @{
  /// coreUpForDispatch sees \p core as down on its next dispatch.
  void auditPretendCoreDownForTest(std::size_t core) {
    auditPretendDownCoreForTest_ = core;
  }
  /// departureConservation sees \p skew phantom departures.
  void auditSkewDepartureCountForTest(std::size_t skew) {
    auditDepartureSkewForTest_ = skew;
  }
  /// @}

 private:
  struct Core {
    std::unique_ptr<MemorySystem> memory;
    std::optional<ProcessId> current;       // running this segment
    std::optional<ProcessId> lastScheduled; // last process that ran here
    std::int64_t freeAt = 0;                // cycle the core becomes free
    std::int64_t busyCycles = 0;
  };

  /// Why a process terminally left the system. Every terminal departure
  /// goes through markDeparted with exactly one reason, which is what
  /// the departure-conservation audit counts (docs/ARCHITECTURE.md §13).
  enum class DepartureReason {
    Completed,  ///< ran its trace to the end
    Retired,    ///< overstayed its lifetime deadline
    Rejected,   ///< turned away by admission control at arrival
    Failed,     ///< crash retry budget exhausted, or retry shed
  };

  /// Executes one segment of \p process on \p core starting at \p now;
  /// returns the segment's end cycle.
  std::int64_t runSegment(std::size_t coreIdx, ProcessId process,
                          std::int64_t now);

  /// The single terminal-departure path: marks \p process gone at \p now
  /// for \p reason, does the per-reason accounting, and releases its
  /// dependents — a retired, rejected or permanently failed producer
  /// must not strand its consumers. \p coreIdx is recorded as the last
  /// core for Completed/Retired (ignored otherwise — the process was
  /// not on a core when it departed).
  void markDeparted(ProcessId process, std::size_t coreIdx, std::int64_t now,
                    DepartureReason reason);

  /// Open workloads: removes \p process from the live set — the policy
  /// hears onExit, the live sharing matrix drops the row, inSystem_
  /// falls. Shared by terminal departures out of the system and the
  /// *temporary* crash departure (which may re-enter via a retry).
  void leaveSystem(ProcessId process);

  /// Handles arrival batch \p batchIdx at \p now (one cohort in cohort
  /// granularity, one process in per-process granularity): consults
  /// admission control per process, activates admitted rows in the live
  /// sharing matrix, announces onArrival for every admitted process
  /// before any onReady.
  void admitBatch(std::size_t batchIdx, std::int64_t now);

  /// Applies injected fault \p event at \p now: picks the target from
  /// the Targets stream among the currently eligible cores/processes,
  /// defers busy-core faults to the segment boundary
  /// (pendingCoreFault_/crashPending_), and counts events with no valid
  /// target as suppressed.
  void applyFault(const FaultEvent& event, std::int64_t now);

  /// Takes idle, up core \p coreIdx down at \p now (permanently, or
  /// transiently with a recovery queued). Busy cores reach here at
  /// their segment boundary, after the displaced process was handled.
  void takeCoreDown(std::size_t coreIdx, std::int64_t now, bool permanent);

  /// \p process crashed at its segment boundary on \p coreIdx: all
  /// progress is lost, the process leaves the live set, and either a
  /// retry is scheduled (seeded exponential backoff) or — with the
  /// budget exhausted — it departs permanently failed.
  void handleCrash(ProcessId process, std::size_t coreIdx, std::int64_t now);

  /// Fires onReady(\p process) exactly once per stay in the system
  /// (guarded by readyAnnounced_; a crash departure resets the guard so
  /// a readmitted retry is announced afresh). The multi-path release
  /// logic — batch admission, departure release — funnels through here.
  void announceReady(ProcessId process);

  /// Lifetime deadline of \p process (max int64 when unlimited).
  [[nodiscard]] std::int64_t deadline(ProcessId process) const;

  const Workload* workload_;
  const AddressSpace* space_;
  const SharingMatrix* sharing_;
  SchedulerPolicy* policy_;
  MpsocConfig config_;
  /// The effective shared-level descriptor (config_.resolvedPlatform(),
  /// validated once in the constructor) — the only platform shape the
  /// engine reads after construction.
  PlatformConfig platform_;

  std::shared_ptr<MemoryHierarchy> hierarchy_;  // shared by all cores
  std::vector<Core> cores_;
  std::vector<std::optional<ProcessTraceCursor>> cursors_;
  std::vector<std::size_t> remainingPreds_;
  std::vector<std::optional<std::size_t>> lastRanOn_;  // migration detection
  std::vector<bool> completed_;       // terminally departed (any reason)
  std::size_t departedCount_ = 0;     // terminal departures, all reasons
  std::size_t departedCompleted_ = 0; // natural completions among them
  SimResult result_;

  /// \name Open-workload state (inert when config_.arrivals is empty)
  /// @{
  bool openWorkload_ = false;
  std::vector<bool> arrived_;
  std::vector<bool> readyAnnounced_;           // onReady fired already
  std::vector<std::int64_t> arrivalCycle_;     // per process
  std::vector<std::size_t> cohortOfProcess_;   // index into cohorts
  std::vector<std::vector<ProcessId>> cohortMembers_;
  std::vector<std::int64_t> cohortArrival_;
  /// One arrival event: the processes admitted together at a cycle (a
  /// whole cohort, or a single process in per-process granularity).
  struct ArrivalBatch {
    std::int64_t cycle = 0;
    std::vector<ProcessId> members;
  };
  std::vector<ArrivalBatch> arrivalBatches_;
  AdmissionController admission_;
  std::size_t inSystem_ = 0;      // admitted, not yet exited
  std::size_t runningCount_ = 0;  // currently inside a segment
  /// Per-process footprints for the incremental sharing-matrix
  /// maintenance: provideFootprints()'s copy, else computed per run.
  std::vector<Footprint> footprints_;
  bool footprintsProvided_ = false;
  /// The sharing matrix the policy actually sees in open mode: rows are
  /// activated on arrival (SharingMatrix::addProcess) and cleared on
  /// exit, so the policy only ever reads values of live processes —
  /// identical, for those, to the full precomputed matrix.
  SharingMatrix liveSharing_;
  /// @}

  /// \name Fault-injection state (inert when config_.faults is disabled)
  /// @{
  bool faultsActive_ = false;
  std::optional<FaultTimeline> faultTimeline_;
  Rng faultTargetRng_{0};   ///< FaultStream::Targets
  Rng retryJitterRng_{0};   ///< FaultStream::RetryJitter
  /// A fault aimed at a busy core, waiting for its segment boundary.
  /// Failure overrides a pending Outage (the harsher event wins).
  enum class PendingCoreFault : std::uint8_t { None, Outage, Failure };
  std::vector<bool> coreDown_;             // per core: unavailable now
  std::vector<bool> corePermanentlyDown_;  // per core: never recovers
  std::vector<std::int64_t> coreDownSince_;
  std::vector<PendingCoreFault> pendingCoreFault_;
  std::vector<bool> crashPending_;          // per core: crash at boundary
  std::vector<std::uint32_t> crashCount_;   // per process
  std::vector<bool> migrationPenaltyDue_;   // per process: charge on resume
  /// (cycle, id) min-heaps; ties break on the smaller id, so equal-cycle
  /// retries/recoveries process in deterministic order.
  using TimedEvent = std::pair<std::int64_t, std::size_t>;
  using TimedEventQueue =
      std::priority_queue<TimedEvent, std::vector<TimedEvent>, std::greater<>>;
  TimedEventQueue retryQueue_;     // crashed processes awaiting re-arrival
  TimedEventQueue recoveryQueue_;  // transiently-down cores
  /// @}

  /// \name Audit test seams (see the public ...ForTest setters)
  /// @{
  std::optional<std::size_t> auditPretendDownCoreForTest_;
  std::size_t auditDepartureSkewForTest_ = 0;
  /// @}
};

}  // namespace laps

#pragma once
/// \file engine.h
/// \brief The discrete-event MPSoC simulator (Simics substitute).
///
/// Execution model (documented approximations in docs/ARCHITECTURE.md
/// §§6-7):
///  * every core owns a private MemorySystem (split L1 I/D); cache
///    contents persist across context switches — the effect the paper's
///    scheduler exploits;
///  * all cores share one MemoryHierarchy below the L1s: flat fixed-
///    latency memory by default (the paper platform), optionally a
///    shared banked L2 and a bounded off-chip bus
///    (MpsocConfig::sharedL2/bus), in which case a miss's latency
///    depends on the absolute cycle it issues and the other cores'
///    traffic;
///  * a process trace step costs: instruction-fetch latency + data-access
///    latency (2 on hit, 2+75 on miss with Table 2 defaults) + its
///    compute cycles;
///  * scheduling decisions happen when a core goes idle (process finished
///    or quantum expired) and when new processes become ready;
///  * with an arrival schedule (MpsocConfig::arrivals, docs §§9-10) the
///    workload is open: task cohorts or individual processes are
///    admitted mid-simulation (the policy hears onArrival, the live
///    sharing matrix gains the row incrementally), processes that
///    outlive their deadline are retired at the next scheduling
///    boundary (onExit; dependents are released as on completion), and
///    SimResult reports per-cohort latency plus exact p50/p95/p99
///    sojourn order statistics;
///  * admission control (MpsocConfig::admission, docs §10) is consulted
///    once per arriving process before the policy hears anything: a
///    rejected process is a non-event to the policy, releases its
///    dependents immediately, and is counted in
///    SimResult::rejectedProcesses / CohortStats::rejectedCount;
///  * a preempted process resumes where it stopped, on any core;
///  * context switches cost MpsocConfig::switchCycles, charged outside
///    the quantum (overhead must not shrink the policy's time slice) and
///    reported separately from useful work (SimResult::switchOverheadCycles).
///
/// Traces replay either per event or run-length encoded
/// (MpsocConfig::replayMode; see sim/replay.h) with bit-identical
/// results. The simulation is fully deterministic: identical inputs
/// (workload, layout, policy, config) produce identical results.

#include <memory>
#include <optional>
#include <vector>

#include "layout/address_space.h"
#include "sched/scheduler.h"
#include "sim/config.h"
#include "sim/result.h"
#include "taskgraph/graph.h"
#include "trace/cursor.h"

namespace laps {

/// Runs one workload under one scheduling policy on the simulated MPSoC.
class MpsocSimulator {
 public:
  /// \p workload, \p space and \p policy must outlive the simulator.
  /// \p sharing is handed to the policy (may be empty for policies that
  /// ignore it, but sizes must match when present).
  MpsocSimulator(const Workload& workload, const AddressSpace& space,
                 const SharingMatrix& sharing, SchedulerPolicy& policy,
                 MpsocConfig config);

  /// Open workloads: supply precomputed per-process footprints so run()
  /// does not recompute them for the incremental sharing-matrix
  /// maintenance (the experiment harness already has them). Must cover
  /// every process of the workload; ignored in closed mode.
  void provideFootprints(std::vector<Footprint> footprints);

  /// Simulates to completion and returns the metrics. Throws laps::Error
  /// if the policy strands work (deadlock) or schedules an ineligible
  /// process.
  SimResult run();

 private:
  struct Core {
    std::unique_ptr<MemorySystem> memory;
    std::optional<ProcessId> current;       // running this segment
    std::optional<ProcessId> lastScheduled; // last process that ran here
    std::int64_t freeAt = 0;                // cycle the core becomes free
    std::int64_t busyCycles = 0;
  };

  /// Executes one segment of \p process on \p core starting at \p now;
  /// returns the segment's end cycle.
  std::int64_t runSegment(std::size_t coreIdx, ProcessId process,
                          std::int64_t now);

  /// Marks \p process gone at \p now — naturally completed (\p retired
  /// false) or retired at its lifetime deadline — and announces newly
  /// ready successors to the policy. Either way dependents are released,
  /// so retirement cannot strand downstream work.
  void exitProcess(ProcessId process, std::size_t coreIdx, std::int64_t now,
                   bool retired);

  /// Handles arrival batch \p batchIdx at \p now (one cohort in cohort
  /// granularity, one process in per-process granularity): consults
  /// admission control per process, activates admitted rows in the live
  /// sharing matrix, announces onArrival for every admitted process
  /// before any onReady.
  void admitBatch(std::size_t batchIdx, std::int64_t now);

  /// Turns \p process away at arrival: it is counted as rejected,
  /// released like an exit (dependents must not deadlock), and the
  /// policy never hears of it.
  void rejectProcess(ProcessId process, std::int64_t now);

  /// Fires onReady(\p process) exactly once (guarded by
  /// readyAnnounced_). The multi-path release logic — batch admission,
  /// exit release, reject release — funnels through here.
  void announceReady(ProcessId process);

  /// Lifetime deadline of \p process (max int64 when unlimited).
  [[nodiscard]] std::int64_t deadline(ProcessId process) const;

  const Workload* workload_;
  const AddressSpace* space_;
  const SharingMatrix* sharing_;
  SchedulerPolicy* policy_;
  MpsocConfig config_;

  std::shared_ptr<MemoryHierarchy> hierarchy_;  // shared by all cores
  std::vector<Core> cores_;
  std::vector<std::optional<ProcessTraceCursor>> cursors_;
  std::vector<std::size_t> remainingPreds_;
  std::vector<std::optional<std::size_t>> lastRanOn_;  // migration detection
  std::vector<bool> completed_;
  std::size_t completedCount_ = 0;
  SimResult result_;

  /// \name Open-workload state (inert when config_.arrivals is empty)
  /// @{
  bool openWorkload_ = false;
  std::vector<bool> arrived_;
  std::vector<bool> readyAnnounced_;           // onReady fired already
  std::vector<std::int64_t> arrivalCycle_;     // per process
  std::vector<std::size_t> cohortOfProcess_;   // index into cohorts
  std::vector<std::vector<ProcessId>> cohortMembers_;
  std::vector<std::int64_t> cohortArrival_;
  /// One arrival event: the processes admitted together at a cycle (a
  /// whole cohort, or a single process in per-process granularity).
  struct ArrivalBatch {
    std::int64_t cycle = 0;
    std::vector<ProcessId> members;
  };
  std::vector<ArrivalBatch> arrivalBatches_;
  AdmissionController admission_;
  std::size_t inSystem_ = 0;      // admitted, not yet exited
  std::size_t runningCount_ = 0;  // currently inside a segment
  /// Per-process footprints for the incremental sharing-matrix
  /// maintenance: provideFootprints()'s copy, else computed per run.
  std::vector<Footprint> footprints_;
  bool footprintsProvided_ = false;
  /// The sharing matrix the policy actually sees in open mode: rows are
  /// activated on arrival (SharingMatrix::addProcess) and cleared on
  /// exit, so the policy only ever reads values of live processes —
  /// identical, for those, to the full precomputed matrix.
  SharingMatrix liveSharing_;
  /// @}
};

}  // namespace laps

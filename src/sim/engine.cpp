#include "sim/engine.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "sim/replay.h"
#include "util/audit.h"
#include "util/error.h"
#include "util/stats.h"

namespace laps {

// Reporting-only readout of final integer busy counters; nothing here
// re-enters the simulation.
// LINT-ALLOW(no-float): presentation-only mean over final integer busy counters
double SimResult::utilization() const {
  if (makespanCycles <= 0 || coreBusyCycles.empty()) return 0.0;
  // LINT-ALLOW(no-float): presentation-only mean over final integer busy counters
  double busy = 0.0;
  // LINT-ALLOW(no-float): presentation-only mean over final integer busy counters
  for (const auto c : coreBusyCycles) busy += static_cast<double>(c);
  // LINT-ALLOW(no-float): presentation-only mean over final integer busy counters
  return busy / (static_cast<double>(makespanCycles) *
                 // LINT-ALLOW(no-float): presentation-only mean over final integer busy counters
                 static_cast<double>(coreBusyCycles.size()));
}

MpsocSimulator::MpsocSimulator(const Workload& workload,
                               const AddressSpace& space,
                               const SharingMatrix& sharing,
                               SchedulerPolicy& policy, MpsocConfig config)
    : workload_(&workload),
      space_(&space),
      sharing_(&sharing),
      policy_(&policy),
      config_(config) {
  check(config_.coreCount >= 1, "MpsocSimulator: need at least one core");
  check(sharing.size() == workload.graph.processCount(),
        "MpsocSimulator: sharing matrix size mismatch");
  config_.memory.l1d.validate();
  if (config_.memory.modelICache) config_.memory.l1i.validate();
  // One eager validation point for the whole shared-level shape: the
  // descriptor (or its legacy-field equivalent) checks each enabled
  // component plus the cross-field rules.
  platform_ = config_.resolvedPlatform();
  platform_.validate(config_.coreCount);
  config_.admission.validate();
}

std::int64_t MpsocSimulator::runSegment(std::size_t coreIdx, ProcessId process,
                                        std::int64_t now) {
  Core& core = cores_[coreIdx];

  // The offer path skips down cores; this compiled-in check proves no
  // other path can slip a segment onto one (the ForTest seam lets the
  // audit suite show the checker is live).
  LAPS_AUDIT(audit::coreUpForDispatch(
      coreDown_[coreIdx] || auditPretendDownCoreForTest_ == coreIdx, coreIdx));

  // Switch overhead is charged outside the quantum comparison: the OS
  // timer starts when the process actually runs, so dispatch overhead
  // must not shrink the time slice the policy grants. A fault-displaced
  // process's resume additionally pays the migration penalty (cold L1
  // on whatever core took it in, plus the shared-L2 re-warm when the
  // platform has one) — also outside the quantum, but accounted
  // separately (FaultStats::migrationPenaltyCycles).
  std::int64_t switchOverhead = 0;
  if (faultsActive_ && migrationPenaltyDue_[process]) {
    migrationPenaltyDue_[process] = false;
    const std::int64_t penalty =
        config_.faults->migrationPenaltyCycles +
        (platform_.sharedL2 ? config_.faults->l2RewarmPenaltyCycles : 0);
    switchOverhead += penalty;
    result_.faults.migrationPenaltyCycles +=
        static_cast<std::uint64_t>(penalty);
  }
  const bool isSwitch = core.lastScheduled != std::optional<ProcessId>{process};
  if (isSwitch) {
    switchOverhead += config_.switchCycles;
    ++result_.contextSwitches;
    result_.switchOverheadCycles +=
        static_cast<std::uint64_t>(config_.switchCycles);
    if (config_.flushOnSwitch) core.memory->flushAll();
  }
  if (lastRanOn_[process] && *lastRanOn_[process] != coreIdx) {
    ++result_.migrations;
    // On a NoC the resume's warm state moves across the die: charge the
    // distance-scaled penalty outside the quantum, like switch overhead.
    // migrationHopCycles defaults to 0, keeping pre-NoC runs exact.
    if (platform_.nocEnabled() && platform_.noc.migrationHopCycles > 0) {
      const NocTopology& topo = hierarchy_->noc()->topology();
      const std::int64_t penalty =
          platform_.noc.migrationHopCycles *
          topo.hops(static_cast<std::int64_t>(*lastRanOn_[process]),
                    static_cast<std::int64_t>(coreIdx));
      switchOverhead += penalty;
      result_.nocMigrationPenaltyCycles += static_cast<std::uint64_t>(penalty);
    }
  }

  if (!cursors_[process]) {
    cursors_[process].emplace(workload_->graph.process(process),
                              workload_->arrays, *space_);
  }
  ProcessTraceCursor& cursor = *cursors_[process];

  auto& record = result_.processes[process];
  if (record.firstStartCycle < 0) record.firstStartCycle = now;

  std::optional<std::int64_t> quantum = policy_->quantum();
  const std::int64_t iHit = config_.memory.l1i.hitLatencyCycles;
  MemorySystem& mem = *core.memory;

  // Event times are popped in non-decreasing order, so no later segment
  // can issue a shared-level request before this one starts: retire the
  // contention calendars up to here.
  hierarchy_->retireBefore(now);
  const std::int64_t segStart = now + switchOverhead;

  // Lifetime enforcement: cap the segment at the process's deadline so
  // an overstaying process is cut exactly there (the caller retires it
  // when the segment ends at or past the deadline). The cap acts like a
  // per-segment quantum, so it composes with preemptive policies.
  if (openWorkload_ && config_.arrivals->processLifetimeCycles) {
    const std::int64_t remain =
        std::max<std::int64_t>(deadline(process) - segStart, 1);
    quantum = quantum ? std::min(*quantum, remain) : remain;
  }

  std::int64_t cycles = 0;
  if (config_.replayMode == ReplayMode::RunLength) {
    cycles = replaySegmentRunLength(cursor, mem, quantum, segStart);
  } else {
    TraceStep step;
    while (cursor.next(step)) {
      // Fetch hits are pipelined (hidden); only the miss penalty stalls.
      const std::int64_t iLat = mem.instrFetch(step.instrAddr,
                                               segStart + cycles);
      if (iLat > iHit) cycles += iLat - iHit;
      if (step.isRef) {
        cycles += mem.dataAccess(step.dataAddr, step.isWrite,
                                 segStart + cycles);
      }
      cycles += step.computeCycles;
      if (quantum && cycles >= *quantum && !cursor.done()) break;
    }
  }

  core.current = process;
  core.lastScheduled = process;
  core.busyCycles += cycles;  // useful work; overhead counted separately
  lastRanOn_[process] = coreIdx;
  ++record.segments;
  return now + switchOverhead + cycles;
}

void MpsocSimulator::provideFootprints(std::vector<Footprint> footprints) {
  check(footprints.size() == workload_->graph.processCount(),
        "MpsocSimulator::provideFootprints: footprint count mismatch");
  footprints_ = std::move(footprints);
  footprintsProvided_ = true;
}

std::int64_t MpsocSimulator::deadline(ProcessId process) const {
  if (!openWorkload_ || !config_.arrivals->processLifetimeCycles) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return arrivalCycle_[process] + *config_.arrivals->processLifetimeCycles;
}

void MpsocSimulator::leaveSystem(ProcessId process) {
  policy_->onExit(process);
  liveSharing_.removeProcess(process);
  --inSystem_;
  LAPS_AUDIT(liveSharing_.auditInvariants());
  LAPS_AUDIT(
      audit::activeSetAgreement(liveSharing_, arrived_, completed_, inSystem_));
}

void MpsocSimulator::markDeparted(ProcessId process, std::size_t coreIdx,
                                  std::int64_t now, DepartureReason reason) {
  // A retired process logically left at its deadline; the engine may
  // only *notice* later (a waiting process is lazily retired at its
  // next pick). Record the deadline, not the notice time — otherwise a
  // starvation-prone policy would be credited unbounded sojourn for
  // processes the lifetime model says were already gone.
  if (reason == DepartureReason::Retired) {
    now = std::min(now, deadline(process));
  }
  completed_[process] = true;
  ++departedCount_;
  auto& record = result_.processes[process];
  record.completionCycle = now;
  switch (reason) {
    case DepartureReason::Completed:
      record.lastCore = coreIdx;
      ++departedCompleted_;
      policy_->onComplete(process);
      break;
    case DepartureReason::Retired:
      record.lastCore = coreIdx;
      record.retired = true;
      ++result_.retiredProcesses;
      break;
    case DepartureReason::Rejected:
      record.arrivalCycle = now;
      record.rejected = true;
      ++result_.rejectedProcesses;
      break;
    case DepartureReason::Failed:
      record.failed = true;
      ++result_.faults.failedProcesses;
      break;
  }
  if (openWorkload_) {
    CohortStats& cohort = result_.cohorts[cohortOfProcess_[process]];
    switch (reason) {
      case DepartureReason::Completed:
      case DepartureReason::Retired:
        leaveSystem(process);
        // Feed the exit's sojourn into the admission controller's SLO
        // estimator (SloShed; a no-op state update for the other kinds).
        admission_.recordSojourn(now - arrivalCycle_[process]);
        cohort.completionCycle = std::max(cohort.completionCycle, now);
        cohort.totalLatencyCycles += now - arrivalCycle_[process];
        if (reason == DepartureReason::Retired) ++cohort.retiredCount;
        break;
      case DepartureReason::Rejected:
        // Never entered the system: no onExit, no sojourn. arrived_
        // stays false, so the release below can never make it ready
        // even when its own predecessors later complete.
        ++cohort.rejectedCount;
        break;
      case DepartureReason::Failed:
        // The crash departure already removed the process from the
        // live set (handleCrash; a shed retry was never readmitted),
        // so only the terminal accounting happens here. Failed
        // processes never sojourned — they are excluded from the
        // percentiles and the SLO estimator, like rejected ones.
        ++cohort.failedCount;
        break;
    }
  }
  // Dependents are released on every terminal departure: a retired,
  // rejected or permanently failed producer must not strand its
  // consumers (they run against whatever data exists — the simulation
  // models timing, not values).
  for (const ProcessId succ : workload_->graph.successors(process)) {
    check(remainingPreds_[succ] > 0, "MpsocSimulator: dependence accounting");
    if (--remainingPreds_[succ] == 0 && arrived_[succ]) {
      announceReady(succ);
    }
  }
  // Conservation after every departure: a double departure or one that
  // skipped its reason's accounting fires at the event, not at the end
  // of the run (the ForTest skew proves the checker is live).
  LAPS_AUDIT(audit::departureConservation(
      departedCount_ + auditDepartureSkewForTest_, departedCompleted_,
      static_cast<std::size_t>(result_.rejectedProcesses),
      static_cast<std::size_t>(result_.retiredProcesses),
      static_cast<std::size_t>(result_.faults.failedProcesses)));
}

void MpsocSimulator::announceReady(ProcessId process) {
  if (readyAnnounced_[process]) return;
  readyAnnounced_[process] = true;
  policy_->onReady(process);
}

void MpsocSimulator::takeCoreDown(std::size_t coreIdx, std::int64_t now,
                                  bool permanent) {
  Core& core = cores_[coreIdx];
  // Only idle cores go down directly (a busy core's fault waits at
  // pendingCoreFault_ until its segment boundary, where current has
  // already been cleared and freeAt set to now — zero idle here).
  result_.coreIdleCycles[coreIdx] += now - core.freeAt;
  core.freeAt = now;
  coreDown_[coreIdx] = true;
  coreDownSince_[coreIdx] = now;
  if (permanent) {
    corePermanentlyDown_[coreIdx] = true;
    ++result_.faults.coreFailures;
  } else {
    ++result_.faults.coreOutages;
    recoveryQueue_.emplace(now + config_.faults->outageDownCycles, coreIdx);
  }
  policy_->onCoreDown(coreIdx);
}

void MpsocSimulator::applyFault(const FaultEvent& event, std::int64_t now) {
  // Targets are drawn at application time against the currently
  // eligible set; an event with no valid target draws nothing and is
  // counted suppressed, so enabling one fault class never shifts
  // another class's draws.
  switch (event.kind) {
    case FaultClass::CoreFailure: {
      // Eligible: cores that could still fail permanently. At least one
      // core must stay capable of running work, so a failure that would
      // wedge the platform is suppressed, not applied.
      std::vector<std::size_t> eligible;
      for (std::size_t c = 0; c < config_.coreCount; ++c) {
        if (!corePermanentlyDown_[c] &&
            pendingCoreFault_[c] != PendingCoreFault::Failure) {
          eligible.push_back(c);
        }
      }
      if (eligible.size() <= 1) {
        ++result_.faults.faultsSuppressed;
        return;
      }
      const std::size_t c =
          eligible[faultTargetRng_.below(eligible.size())];
      if (pendingCoreFault_[c] == PendingCoreFault::Outage) {
        // The harsher event wins: the pending outage never applies
        // (counted suppressed) and the boundary takes the core down
        // for good.
        pendingCoreFault_[c] = PendingCoreFault::Failure;
        ++result_.faults.faultsSuppressed;
      } else if (coreDown_[c]) {
        // Already transiently down: the failure makes it permanent.
        // The policy heard onCoreDown at the outage and simply never
        // hears onCoreUp; the queued recovery is dropped when popped.
        corePermanentlyDown_[c] = true;
        ++result_.faults.coreFailures;
      } else if (cores_[c].current) {
        pendingCoreFault_[c] = PendingCoreFault::Failure;
      } else {
        takeCoreDown(c, now, /*permanent=*/true);
      }
      return;
    }
    case FaultClass::CoreOutage: {
      // Eligible: up cores with no fault already pending.
      std::vector<std::size_t> eligible;
      for (std::size_t c = 0; c < config_.coreCount; ++c) {
        if (!coreDown_[c] && pendingCoreFault_[c] == PendingCoreFault::None) {
          eligible.push_back(c);
        }
      }
      if (eligible.empty()) {
        ++result_.faults.faultsSuppressed;
        return;
      }
      const std::size_t c =
          eligible[faultTargetRng_.below(eligible.size())];
      if (cores_[c].current) {
        pendingCoreFault_[c] = PendingCoreFault::Outage;
      } else {
        takeCoreDown(c, now, /*permanent=*/false);
      }
      return;
    }
    case FaultClass::ProcessCrash: {
      // Eligible: cores running a process not already doomed to crash
      // at this boundary (a second crash of the same segment changes
      // nothing — all progress is lost either way).
      std::vector<std::size_t> eligible;
      for (std::size_t c = 0; c < config_.coreCount; ++c) {
        if (cores_[c].current && !crashPending_[c]) eligible.push_back(c);
      }
      if (eligible.empty()) {
        ++result_.faults.faultsSuppressed;
        return;
      }
      crashPending_[eligible[faultTargetRng_.below(eligible.size())]] = true;
      return;
    }
  }
  fail("applyFault: unknown FaultClass");
}

void MpsocSimulator::handleCrash(ProcessId process, std::size_t coreIdx,
                                 std::int64_t now) {
  const RetryPolicy& retry = config_.faults->retry;
  ++result_.faults.processCrashes;
  ++result_.processes[process].crashes;
  ++crashCount_[process];
  // All progress is lost: the trace restarts from the beginning on the
  // next attempt, and the resume bookkeeping forgets the core (a
  // restart is a fresh run, not a migration).
  cursors_[process].reset();
  lastRanOn_[process].reset();
  migrationPenaltyDue_[process] = false;
  // Temporary departure: the process leaves the live set (the policy
  // hears onExit) and, if retried, re-enters through admission like
  // any other arrival. arrived_ drops first so the active-set audit
  // inside leaveSystem sees a consistent live set; dependents are NOT
  // released — the process may still complete on a retry.
  arrived_[process] = false;
  readyAnnounced_[process] = false;
  leaveSystem(process);
  if (crashCount_[process] > retry.maxAttempts) {
    markDeparted(process, coreIdx, now, DepartureReason::Failed);
  } else {
    retryQueue_.emplace(
        now + retryBackoffCycles(retry, crashCount_[process], retryJitterRng_),
        process);
    ++result_.faults.retriesScheduled;
  }
}

void MpsocSimulator::admitBatch(std::size_t batchIdx, std::int64_t now) {
  // Admission control first, then every admitted arrival is announced
  // before any readiness: replanning policies patch their plan with the
  // whole batch in view before the first dispatch decision against it,
  // and rejected processes are non-events to the policy.
  const ArrivalBatch& batch = arrivalBatches_[batchIdx];
  for (const ProcessId p : batch.members) {
    if (!admission_.admit(inSystem_ - runningCount_)) {
      markDeparted(p, 0, now, DepartureReason::Rejected);
      continue;
    }
    arrived_[p] = true;
    ++inSystem_;
    result_.processes[p].arrivalCycle = now;
    liveSharing_.addProcess(footprints_, p);
    policy_->onArrival(p);
  }
  // announceReady's exactly-once guard matters here: an in-batch
  // rejection may have already released an admitted batch member via
  // markDeparted's dependent release.
  for (const ProcessId p : batch.members) {
    if (arrived_[p] && remainingPreds_[p] == 0) announceReady(p);
  }
  // The incremental row updates must leave the matrix exactly where a
  // from-scratch compute over the live set would: symmetric, zero
  // outside the active set, and in agreement with the engine's own
  // live-process bookkeeping.
  LAPS_AUDIT(liveSharing_.auditInvariants());
  LAPS_AUDIT(
      audit::activeSetAgreement(liveSharing_, arrived_, completed_, inSystem_));
}

SimResult MpsocSimulator::run() {
  const std::size_t n = workload_->graph.processCount();

  result_ = SimResult{};
  result_.processes.resize(n);
  for (ProcessId p = 0; p < n; ++p) result_.processes[p].id = p;
  result_.coreBusyCycles.assign(config_.coreCount, 0);
  result_.coreIdleCycles.assign(config_.coreCount, 0);

  hierarchy_ = std::make_shared<MemoryHierarchy>(
      config_.memory.memLatencyCycles, platform_, config_.coreCount,
      config_.memory.l1d.lineBytes);
  cores_.clear();
  for (std::size_t c = 0; c < config_.coreCount; ++c) {
    Core core;
    // The core index is the MemorySystem's NoC node and directory bit;
    // constructing in core order also registers the data caches in core
    // order, which the directory's mask relies on.
    core.memory = std::make_unique<MemorySystem>(config_.memory, hierarchy_, c);
    cores_.push_back(std::move(core));
  }
  cursors_.assign(n, std::nullopt);
  completed_.assign(n, false);
  departedCount_ = 0;
  departedCompleted_ = 0;
  lastRanOn_.assign(n, std::nullopt);
  remainingPreds_.resize(n);
  std::vector<bool> running(n, false);

  // Open-workload state: arrival batches (cohort or per-process
  // granularity), per-process arrival bookkeeping, admission control,
  // and the incrementally-maintained live sharing matrix. Inert in
  // closed mode — the closed path below is untouched.
  openWorkload_ = config_.arrivals.has_value();
  arrived_.assign(n, !openWorkload_);
  readyAnnounced_.assign(n, false);
  arrivalCycle_.assign(n, 0);
  cohortOfProcess_.clear();
  cohortMembers_.clear();
  cohortArrival_.clear();
  arrivalBatches_.clear();
  admission_ = AdmissionController(config_.admission);
  inSystem_ = openWorkload_ ? 0 : n;
  runningCount_ = 0;
  if (!footprintsProvided_) footprints_.clear();
  liveSharing_ = SharingMatrix{};
  if (openWorkload_) {
    config_.arrivals->validate();
    const std::vector<TaskId> tasks = workload_->graph.tasks();
    check(!tasks.empty(), "MpsocSimulator: open workload has no tasks");
    cohortMembers_.resize(tasks.size());
    cohortOfProcess_.assign(n, 0);
    result_.cohorts.resize(tasks.size());
    for (std::size_t k = 0; k < tasks.size(); ++k) {
      cohortMembers_[k] = workload_->graph.processesOfTask(tasks[k]);
      for (const ProcessId p : cohortMembers_[k]) cohortOfProcess_[p] = k;
      result_.cohorts[k].task = tasks[k];
      result_.cohorts[k].processCount = cohortMembers_[k].size();
    }
    if (config_.arrivals->granularity == ArrivalGranularity::Cohort) {
      // PR 5 semantics: one batch per cohort, all members together.
      cohortArrival_ = cohortArrivalCycles(*config_.arrivals, tasks.size());
      arrivalBatches_.resize(tasks.size());
      for (std::size_t k = 0; k < tasks.size(); ++k) {
        arrivalBatches_[k] = ArrivalBatch{cohortArrival_[k], cohortMembers_[k]};
        for (const ProcessId p : cohortMembers_[k]) {
          arrivalCycle_[p] = cohortArrival_[k];
        }
      }
    } else {
      // Per-process streams: one batch per process, in process-id
      // order; a cohort's arrival is its first member's.
      const std::vector<std::int64_t> perProcess =
          processArrivalCycles(*config_.arrivals, n);
      arrivalBatches_.resize(n);
      cohortArrival_.assign(tasks.size(),
                            std::numeric_limits<std::int64_t>::max());
      for (ProcessId p = 0; p < n; ++p) {
        arrivalBatches_[p] = ArrivalBatch{perProcess[p], {p}};
        arrivalCycle_[p] = perProcess[p];
        std::int64_t& cohortArrival = cohortArrival_[cohortOfProcess_[p]];
        cohortArrival = std::min(cohortArrival, perProcess[p]);
      }
    }
    for (std::size_t k = 0; k < tasks.size(); ++k) {
      // result_.processes[p].arrivalCycle is stamped by admitBatch —
      // every batch is eventually admitted (the event loop drains
      // arrivalBatches_ completely).
      result_.cohorts[k].arrivalCycle = cohortArrival_[k];
      result_.cohorts[k].completionCycle = cohortArrival_[k];
    }
    if (!footprintsProvided_) footprints_ = workload_->footprints();
    liveSharing_ = SharingMatrix::inactive(n);
  }

  // Fault injection (docs §13). Disabled — the default, including a
  // FaultPlan with every mean zero — none of this state is consulted on
  // the hot path beyond one boolean, and the run is bit-identical to a
  // fault-free engine.
  if (config_.faults) config_.faults->validate();
  faultsActive_ = config_.faults.has_value() && config_.faults->enabled();
  faultTimeline_.reset();
  if (faultsActive_) {
    check(openWorkload_,
          "MpsocConfig::faults requires an arrival schedule (open workload)");
    faultTimeline_.emplace(*config_.faults);
    faultTargetRng_ =
        Rng(faultStreamSeed(config_.faults->seed, FaultStream::Targets));
    retryJitterRng_ =
        Rng(faultStreamSeed(config_.faults->seed, FaultStream::RetryJitter));
  }
  coreDown_.assign(config_.coreCount, false);
  corePermanentlyDown_.assign(config_.coreCount, false);
  coreDownSince_.assign(config_.coreCount, 0);
  pendingCoreFault_.assign(config_.coreCount, PendingCoreFault::None);
  crashPending_.assign(config_.coreCount, false);
  crashCount_.assign(n, 0);
  migrationPenaltyDue_.assign(n, false);
  retryQueue_ = TimedEventQueue{};
  recoveryQueue_ = TimedEventQueue{};

  const SchedContext context{&workload_->graph,
                             openWorkload_ ? &liveSharing_ : sharing_,
                             config_.coreCount, workload_, space_,
                             hierarchy_->noc() ? &hierarchy_->noc()->topology()
                                               : nullptr};
  policy_->reset(context);
  for (ProcessId p = 0; p < n; ++p) {
    remainingPreds_[p] = workload_->graph.predecessors(p).size();
    if (!openWorkload_ && remainingPreds_[p] == 0) {
      announceReady(p);
    }
  }
  std::size_t nextBatch = 0;
  if (openWorkload_ && arrivalBatches_[0].cycle == 0) {
    admitBatch(nextBatch++, 0);
  }

  // Busy cores, ordered by segment end time (core index breaks ties).
  using Event = std::pair<std::int64_t, std::size_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

  // Offers work to an idle core; returns true when a segment started.
  // A picked process whose lifetime already expired is retired on the
  // spot (it never gets another segment) and the policy is asked again —
  // lazy retirement at the scheduling boundary keeps every policy's
  // ready-queue bookkeeping valid without new obligations.
  const auto offer = [&](std::size_t coreIdx, std::int64_t now) {
    if (coreDown_[coreIdx]) return false;  // a down core is never offered
    while (true) {
      const auto pick =
          policy_->pickNext(coreIdx, cores_[coreIdx].lastScheduled);
      if (!pick) return false;
      const ProcessId p = *pick;
      check(p < n, "scheduler picked an unknown process");
      check(!completed_[p], "scheduler picked a completed process");
      check(!running[p], "scheduler picked a process already running");
      check(arrived_[p], "scheduler picked a process that has not arrived");
      check(remainingPreds_[p] == 0, "scheduler picked a dependent process");
      if (deadline(p) <= now) {
        markDeparted(p, lastRanOn_[p].value_or(coreIdx), now,
                     DepartureReason::Retired);
        continue;
      }
      result_.coreIdleCycles[coreIdx] += now - cores_[coreIdx].freeAt;
      running[p] = true;
      ++runningCount_;
      const std::int64_t end = runSegment(coreIdx, p, now);
      events.emplace(end, coreIdx);
      return true;
    }
  };
  const auto offerIdleCores = [&](std::int64_t now) {
    for (std::size_t c = 0; c < config_.coreCount; ++c) {
      if (!cores_[c].current) offer(c, now);
    }
  };

  for (std::size_t c = 0; c < config_.coreCount; ++c) {
    offer(c, 0);
  }

  // The event loop merges five sources in fixed priority at equal
  // cycles: arrivals, then crash retries, then outage recoveries, then
  // fault injections, then core events. Arrivals-before-core-events is
  // the PR 5 discipline (a core freeing at t must see the processes
  // arriving at t) extended to the fault sources; injections beat core
  // events so a fault at t lands on the segment ending at t. The fault
  // timeline is infinite, so injections never keep the loop alive by
  // themselves — one is consumed only when due at or before the next
  // real event. Recoveries alone sustain the loop only while processes
  // remain (an all-cores-down platform must wake up to finish them).
  constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::max();
  std::int64_t now = 0;
  while (!events.empty() || nextBatch < arrivalBatches_.size() ||
         !retryQueue_.empty() ||
         (departedCount_ < n && !recoveryQueue_.empty())) {
    const std::int64_t nextArrival =
        nextBatch < arrivalBatches_.size() ? arrivalBatches_[nextBatch].cycle
                                           : kNever;
    const std::int64_t nextRetry =
        retryQueue_.empty() ? kNever : retryQueue_.top().first;
    const std::int64_t nextRecovery =
        recoveryQueue_.empty() ? kNever : recoveryQueue_.top().first;
    const std::int64_t nextCore = events.empty() ? kNever : events.top().first;
    const std::int64_t t = std::min(std::min(nextArrival, nextRetry),
                                    std::min(nextRecovery, nextCore));
    const std::int64_t nextInjection =
        faultsActive_ ? faultTimeline_->peek().cycle : kNever;

    // An injection strictly earlier than every real event applies
    // first; at equal cycles the sources drain in the documented
    // priority (arrival, retry, recovery, injection, core), handled by
    // the second injection branch below. t is a real event (the loop
    // condition holds), so the timeline never sustains the loop.
    if (faultsActive_ && nextInjection < t) {
      const FaultEvent event = faultTimeline_->pop();
      LAPS_AUDIT(audit::cycleMonotone(now, event.cycle));
      now = event.cycle;
      applyFault(event, now);
      offerIdleCores(now);
      continue;
    }

    if (nextArrival <= t) {
      LAPS_AUDIT(audit::cycleMonotone(now, t));
      now = t;
      admitBatch(nextBatch++, now);
      offerIdleCores(now);
      continue;
    }
    if (nextRetry <= t) {
      LAPS_AUDIT(audit::cycleMonotone(now, t));
      now = t;
      const auto p = static_cast<ProcessId>(retryQueue_.top().second);
      retryQueue_.pop();
      // A retry re-enters through admission control like any other
      // arrival, so QueueCap/SloShed can shed it under overload — a
      // shed retry permanently fails the process.
      if (!admission_.admit(inSystem_ - runningCount_)) {
        ++result_.faults.retriesShed;
        markDeparted(p, 0, now, DepartureReason::Failed);
      } else {
        arrived_[p] = true;
        ++inSystem_;
        // result_.processes[p].arrivalCycle keeps the ORIGINAL arrival:
        // sojourn and the lifetime deadline are measured from when the
        // request first entered, so crashes cannot launder SLO time.
        liveSharing_.addProcess(footprints_, p);
        policy_->onArrival(p);
        if (remainingPreds_[p] == 0) announceReady(p);
        LAPS_AUDIT(liveSharing_.auditInvariants());
        LAPS_AUDIT(audit::activeSetAgreement(liveSharing_, arrived_,
                                             completed_, inSystem_));
      }
      offerIdleCores(now);
      continue;
    }
    if (nextRecovery <= t) {
      LAPS_AUDIT(audit::cycleMonotone(now, t));
      now = t;
      const std::size_t c = recoveryQueue_.top().second;
      recoveryQueue_.pop();
      // A core permanently failed mid-outage never recovers; its queued
      // recovery is simply dropped.
      if (!corePermanentlyDown_[c]) {
        coreDown_[c] = false;
        result_.faults.coreDownCycles +=
            static_cast<std::uint64_t>(now - coreDownSince_[c]);
        ++result_.faults.coreRecoveries;
        Core& core = cores_[c];
        core.freeAt = now;
        core.memory->flushAll();  // the outage lost the caches
        core.lastScheduled.reset();
        policy_->onCoreUp(c);
      }
      offerIdleCores(now);
      continue;
    }
    if (faultsActive_ && nextInjection <= t) {
      const FaultEvent event = faultTimeline_->pop();
      LAPS_AUDIT(audit::cycleMonotone(now, event.cycle));
      now = event.cycle;
      applyFault(event, now);
      // onCoreDown may have re-homed planned work onto cores that were
      // idle for lack of it.
      offerIdleCores(now);
      continue;
    }

    const auto [tc, coreIdx] = events.top();
    events.pop();
    // This branch is taken only when every pending arrival/retry/
    // recovery is strictly later and every due injection has been
    // applied (they all win ties), and popped event times never run
    // backwards.
    LAPS_AUDIT(audit::arrivalBeforeCore(tc, nextArrival));
    LAPS_AUDIT(audit::faultBeforeCore(tc, nextInjection));
    LAPS_AUDIT(audit::cycleMonotone(now, tc));
    now = tc;
    Core& core = cores_[coreIdx];
    const ProcessId p = *core.current;
    core.current.reset();
    core.freeAt = now;
    running[p] = false;
    --runningCount_;
    const bool crashed = faultsActive_ && crashPending_[coreIdx];
    const bool displaced =
        faultsActive_ && pendingCoreFault_[coreIdx] != PendingCoreFault::None;
    if (crashed) {
      // The crash point precedes the boundary, so it wins even over a
      // finished trace (documented approximation, docs §13).
      crashPending_[coreIdx] = false;
      handleCrash(p, coreIdx, now);
    } else if (cursors_[p]->done()) {
      markDeparted(p, coreIdx, now, DepartureReason::Completed);
    } else if (deadline(p) <= now) {
      // The lifetime cap cut this segment: the process overstayed.
      markDeparted(p, coreIdx, now, DepartureReason::Retired);
    } else {
      ++result_.preemptions;
      policy_->onPreempt(p);
      if (displaced) {
        // Displaced by the core going down: progress is kept, but the
        // resume pays the migration penalty (charged in runSegment).
        migrationPenaltyDue_[p] = true;
        ++result_.faults.faultMigrations;
      }
    }
    if (displaced) {
      const bool permanent =
          pendingCoreFault_[coreIdx] == PendingCoreFault::Failure;
      pendingCoreFault_[coreIdx] = PendingCoreFault::None;
      takeCoreDown(coreIdx, now, permanent);
    }
    // The finishing core first, then any core that was starved — new
    // readiness may have unblocked them.
    offer(coreIdx, now);
    offerIdleCores(now);
  }

  check(departedCount_ == n,
        "MpsocSimulator: deadlock — " + std::to_string(n - departedCount_) +
            " process(es) never completed (policy stranded work)");

  result_.makespanCycles = now;
  result_.seconds = config_.cyclesToSeconds(now);
  result_.policy = policy_->stats();
  if (openWorkload_) {
    // Exact sojourn order statistics, per cohort and global, over the
    // admitted processes (rejected ones never sojourned). No sampling:
    // every sojourn is ranked.
    const auto fill = [](SojournPercentiles& out,
                         std::vector<std::int64_t>& sojourns) {
      out.samples = sojourns.size();
      if (sojourns.empty()) return;
      out.p50 = percentileNearestRank(sojourns, 50);
      out.p95 = percentileNearestRank(sojourns, 95);
      out.p99 = percentileNearestRank(sojourns, 99);
      LAPS_AUDIT(audit::percentileOrdering(out.p50, out.p95, out.p99,
                                           out.samples));
    };
    std::vector<std::int64_t> global;
    global.reserve(n);
    std::vector<std::int64_t> perCohort;
    for (std::size_t k = 0; k < result_.cohorts.size(); ++k) {
      perCohort.clear();
      for (const ProcessId p : cohortMembers_[k]) {
        const ProcessRunRecord& record = result_.processes[p];
        if (record.rejected || record.failed) continue;
        const std::int64_t sojourn =
            record.completionCycle - record.arrivalCycle;
        perCohort.push_back(sojourn);
        global.push_back(sojourn);
      }
      fill(result_.cohorts[k].sojourn, perCohort);
      // Per-cohort admission identity: every member is a sojourn
      // sample, was rejected, or was permanently failed.
      LAPS_AUDIT(audit::admissionIdentity(
          result_.cohorts[k].sojourn.samples, result_.cohorts[k].rejectedCount,
          result_.cohorts[k].failedCount, result_.cohorts[k].processCount));
    }
    fill(result_.sojourn, global);
    LAPS_AUDIT(audit::admissionIdentity(
        result_.sojourn.samples,
        static_cast<std::size_t>(result_.rejectedProcesses),
        static_cast<std::size_t>(result_.faults.failedProcesses), n));
  }
  for (std::size_t c = 0; c < config_.coreCount; ++c) {
    result_.coreBusyCycles[c] = cores_[c].busyCycles;
    if (coreDown_[c]) {
      // A core that ends the run down was unavailable, not idle, since
      // it went down.
      result_.faults.coreDownCycles +=
          static_cast<std::uint64_t>(now - coreDownSince_[c]);
    } else {
      result_.coreIdleCycles[c] += now - cores_[c].freeAt;
    }
    result_.dcacheTotal.accumulate(cores_[c].memory->dcache().stats());
    result_.icacheTotal.accumulate(cores_[c].memory->icache().stats());
    result_.dataMisses.accumulate(cores_[c].memory->dataMissBreakdown());
  }
  if (const SharedL2* l2 = hierarchy_->l2()) {
    result_.sharedL2Enabled = true;
    result_.l2Total = l2->stats();
    result_.l2BankWaitCycles = l2->bankWaitCycles();
    result_.inclusionWritebacks = hierarchy_->inclusionWritebacks();
  }
  if (const MemoryBus* bus = hierarchy_->bus()) {
    result_.busTransactions = bus->stats().transactions;
    result_.busWaitCycles = bus->stats().waitCycles;
  }
  if (const NocFabric* noc = hierarchy_->noc()) {
    result_.nocEnabled = true;
    result_.nocTransfers = noc->stats().transfers;
    result_.nocPostedTransfers = noc->stats().postedTransfers;
    result_.nocHopCycles = noc->stats().hopCycles;
    result_.nocLinkWaitCycles = noc->stats().linkWaitCycles;
  }
  if (const SharerDirectory* dir = hierarchy_->directory()) {
    result_.directoryEnabled = true;
    result_.directoryInvalidationsSent = dir->stats().invalidationsSent;
    result_.directoryInvalidationsFiltered =
        dir->stats().invalidationsFiltered;
  }
  return result_;
}

}  // namespace laps

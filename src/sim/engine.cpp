#include "sim/engine.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "sim/replay.h"
#include "util/audit.h"
#include "util/error.h"
#include "util/stats.h"

namespace laps {

// Reporting-only readout of final integer busy counters; nothing here
// re-enters the simulation.
// LINT-ALLOW(no-float): presentation-only mean over final integer busy counters
double SimResult::utilization() const {
  if (makespanCycles <= 0 || coreBusyCycles.empty()) return 0.0;
  // LINT-ALLOW(no-float): presentation-only mean over final integer busy counters
  double busy = 0.0;
  // LINT-ALLOW(no-float): presentation-only mean over final integer busy counters
  for (const auto c : coreBusyCycles) busy += static_cast<double>(c);
  // LINT-ALLOW(no-float): presentation-only mean over final integer busy counters
  return busy / (static_cast<double>(makespanCycles) *
                 // LINT-ALLOW(no-float): presentation-only mean over final integer busy counters
                 static_cast<double>(coreBusyCycles.size()));
}

MpsocSimulator::MpsocSimulator(const Workload& workload,
                               const AddressSpace& space,
                               const SharingMatrix& sharing,
                               SchedulerPolicy& policy, MpsocConfig config)
    : workload_(&workload),
      space_(&space),
      sharing_(&sharing),
      policy_(&policy),
      config_(config) {
  check(config_.coreCount >= 1, "MpsocSimulator: need at least one core");
  check(sharing.size() == workload.graph.processCount(),
        "MpsocSimulator: sharing matrix size mismatch");
  config_.memory.l1d.validate();
  if (config_.memory.modelICache) config_.memory.l1i.validate();
  if (config_.sharedL2) config_.sharedL2->validate();
  if (config_.bus) config_.bus->validate();
  config_.admission.validate();
}

std::int64_t MpsocSimulator::runSegment(std::size_t coreIdx, ProcessId process,
                                        std::int64_t now) {
  Core& core = cores_[coreIdx];

  // Switch overhead is charged outside the quantum comparison: the OS
  // timer starts when the process actually runs, so dispatch overhead
  // must not shrink the time slice the policy grants.
  std::int64_t switchOverhead = 0;
  const bool isSwitch = core.lastScheduled != std::optional<ProcessId>{process};
  if (isSwitch) {
    switchOverhead = config_.switchCycles;
    ++result_.contextSwitches;
    result_.switchOverheadCycles += static_cast<std::uint64_t>(switchOverhead);
    if (config_.flushOnSwitch) core.memory->flushAll();
  }
  if (lastRanOn_[process] && *lastRanOn_[process] != coreIdx) {
    ++result_.migrations;
  }

  if (!cursors_[process]) {
    cursors_[process].emplace(workload_->graph.process(process),
                              workload_->arrays, *space_);
  }
  ProcessTraceCursor& cursor = *cursors_[process];

  auto& record = result_.processes[process];
  if (record.firstStartCycle < 0) record.firstStartCycle = now;

  std::optional<std::int64_t> quantum = policy_->quantum();
  const std::int64_t iHit = config_.memory.l1i.hitLatencyCycles;
  MemorySystem& mem = *core.memory;

  // Event times are popped in non-decreasing order, so no later segment
  // can issue a shared-level request before this one starts: retire the
  // contention calendars up to here.
  hierarchy_->retireBefore(now);
  const std::int64_t segStart = now + switchOverhead;

  // Lifetime enforcement: cap the segment at the process's deadline so
  // an overstaying process is cut exactly there (the caller retires it
  // when the segment ends at or past the deadline). The cap acts like a
  // per-segment quantum, so it composes with preemptive policies.
  if (openWorkload_ && config_.arrivals->processLifetimeCycles) {
    const std::int64_t remain =
        std::max<std::int64_t>(deadline(process) - segStart, 1);
    quantum = quantum ? std::min(*quantum, remain) : remain;
  }

  std::int64_t cycles = 0;
  if (config_.replayMode == ReplayMode::RunLength) {
    cycles = replaySegmentRunLength(cursor, mem, quantum, segStart);
  } else {
    TraceStep step;
    while (cursor.next(step)) {
      // Fetch hits are pipelined (hidden); only the miss penalty stalls.
      const std::int64_t iLat = mem.instrFetch(step.instrAddr,
                                               segStart + cycles);
      if (iLat > iHit) cycles += iLat - iHit;
      if (step.isRef) {
        cycles += mem.dataAccess(step.dataAddr, step.isWrite,
                                 segStart + cycles);
      }
      cycles += step.computeCycles;
      if (quantum && cycles >= *quantum && !cursor.done()) break;
    }
  }

  core.current = process;
  core.lastScheduled = process;
  core.busyCycles += cycles;  // useful work; overhead counted separately
  lastRanOn_[process] = coreIdx;
  ++record.segments;
  return now + switchOverhead + cycles;
}

void MpsocSimulator::provideFootprints(std::vector<Footprint> footprints) {
  check(footprints.size() == workload_->graph.processCount(),
        "MpsocSimulator::provideFootprints: footprint count mismatch");
  footprints_ = std::move(footprints);
  footprintsProvided_ = true;
}

std::int64_t MpsocSimulator::deadline(ProcessId process) const {
  if (!openWorkload_ || !config_.arrivals->processLifetimeCycles) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return arrivalCycle_[process] + *config_.arrivals->processLifetimeCycles;
}

void MpsocSimulator::exitProcess(ProcessId process, std::size_t coreIdx,
                                 std::int64_t now, bool retired) {
  // A retired process logically left at its deadline; the engine may
  // only *notice* later (a waiting process is lazily retired at its
  // next pick). Record the deadline, not the notice time — otherwise a
  // starvation-prone policy would be credited unbounded sojourn for
  // processes the lifetime model says were already gone.
  if (retired) now = std::min(now, deadline(process));
  completed_[process] = true;
  ++completedCount_;
  auto& record = result_.processes[process];
  record.completionCycle = now;
  record.lastCore = coreIdx;
  record.retired = retired;
  if (retired) {
    ++result_.retiredProcesses;
  } else {
    policy_->onComplete(process);
  }
  if (openWorkload_) {
    policy_->onExit(process);
    liveSharing_.removeProcess(process);
    --inSystem_;
    LAPS_AUDIT(liveSharing_.auditInvariants());
    LAPS_AUDIT(audit::activeSetAgreement(liveSharing_, arrived_, completed_,
                                         inSystem_));
    // Feed the exit's sojourn into the admission controller's SLO
    // estimator (SloShed; a no-op state update for the other kinds).
    admission_.recordSojourn(now - arrivalCycle_[process]);
    CohortStats& cohort = result_.cohorts[cohortOfProcess_[process]];
    cohort.completionCycle = std::max(cohort.completionCycle, now);
    cohort.totalLatencyCycles += now - arrivalCycle_[process];
    if (retired) ++cohort.retiredCount;
  }
  // Dependents are released on retirement too: a killed producer must
  // not strand its consumers (they run against whatever data exists —
  // the simulation models timing, not values).
  for (const ProcessId succ : workload_->graph.successors(process)) {
    check(remainingPreds_[succ] > 0, "MpsocSimulator: dependence accounting");
    if (--remainingPreds_[succ] == 0 && arrived_[succ]) {
      announceReady(succ);
    }
  }
}

void MpsocSimulator::announceReady(ProcessId process) {
  if (readyAnnounced_[process]) return;
  readyAnnounced_[process] = true;
  policy_->onReady(process);
}

void MpsocSimulator::rejectProcess(ProcessId process, std::int64_t now) {
  completed_[process] = true;
  ++completedCount_;
  auto& record = result_.processes[process];
  record.arrivalCycle = now;
  record.completionCycle = now;
  record.rejected = true;
  ++result_.rejectedProcesses;
  ++result_.cohorts[cohortOfProcess_[process]].rejectedCount;
  // A rejected producer releases its dependents exactly like an exiting
  // one — the admission decision must never strand downstream work. A
  // rejected process itself can never become ready: arrived_ stays
  // false, so the release path skips it even when its own predecessors
  // later complete.
  for (const ProcessId succ : workload_->graph.successors(process)) {
    check(remainingPreds_[succ] > 0, "MpsocSimulator: dependence accounting");
    if (--remainingPreds_[succ] == 0 && arrived_[succ]) {
      announceReady(succ);
    }
  }
}

void MpsocSimulator::admitBatch(std::size_t batchIdx, std::int64_t now) {
  // Admission control first, then every admitted arrival is announced
  // before any readiness: replanning policies patch their plan with the
  // whole batch in view before the first dispatch decision against it,
  // and rejected processes are non-events to the policy.
  const ArrivalBatch& batch = arrivalBatches_[batchIdx];
  for (const ProcessId p : batch.members) {
    if (!admission_.admit(inSystem_ - runningCount_)) {
      rejectProcess(p, now);
      continue;
    }
    arrived_[p] = true;
    ++inSystem_;
    result_.processes[p].arrivalCycle = now;
    liveSharing_.addProcess(footprints_, p);
    policy_->onArrival(p);
  }
  // announceReady's exactly-once guard matters here: an in-batch
  // rejection may have already released an admitted batch member via
  // rejectProcess.
  for (const ProcessId p : batch.members) {
    if (arrived_[p] && remainingPreds_[p] == 0) announceReady(p);
  }
  // The incremental row updates must leave the matrix exactly where a
  // from-scratch compute over the live set would: symmetric, zero
  // outside the active set, and in agreement with the engine's own
  // live-process bookkeeping.
  LAPS_AUDIT(liveSharing_.auditInvariants());
  LAPS_AUDIT(
      audit::activeSetAgreement(liveSharing_, arrived_, completed_, inSystem_));
}

SimResult MpsocSimulator::run() {
  const std::size_t n = workload_->graph.processCount();

  result_ = SimResult{};
  result_.processes.resize(n);
  for (ProcessId p = 0; p < n; ++p) result_.processes[p].id = p;
  result_.coreBusyCycles.assign(config_.coreCount, 0);
  result_.coreIdleCycles.assign(config_.coreCount, 0);

  hierarchy_ = std::make_shared<MemoryHierarchy>(
      config_.memory.memLatencyCycles, config_.sharedL2, config_.bus,
      config_.memory.l1d.lineBytes);
  cores_.clear();
  for (std::size_t c = 0; c < config_.coreCount; ++c) {
    Core core;
    core.memory = std::make_unique<MemorySystem>(config_.memory, hierarchy_);
    cores_.push_back(std::move(core));
  }
  cursors_.assign(n, std::nullopt);
  completed_.assign(n, false);
  completedCount_ = 0;
  lastRanOn_.assign(n, std::nullopt);
  remainingPreds_.resize(n);
  std::vector<bool> running(n, false);

  // Open-workload state: arrival batches (cohort or per-process
  // granularity), per-process arrival bookkeeping, admission control,
  // and the incrementally-maintained live sharing matrix. Inert in
  // closed mode — the closed path below is untouched.
  openWorkload_ = config_.arrivals.has_value();
  arrived_.assign(n, !openWorkload_);
  readyAnnounced_.assign(n, false);
  arrivalCycle_.assign(n, 0);
  cohortOfProcess_.clear();
  cohortMembers_.clear();
  cohortArrival_.clear();
  arrivalBatches_.clear();
  admission_ = AdmissionController(config_.admission);
  inSystem_ = openWorkload_ ? 0 : n;
  runningCount_ = 0;
  if (!footprintsProvided_) footprints_.clear();
  liveSharing_ = SharingMatrix{};
  if (openWorkload_) {
    config_.arrivals->validate();
    const std::vector<TaskId> tasks = workload_->graph.tasks();
    check(!tasks.empty(), "MpsocSimulator: open workload has no tasks");
    cohortMembers_.resize(tasks.size());
    cohortOfProcess_.assign(n, 0);
    result_.cohorts.resize(tasks.size());
    for (std::size_t k = 0; k < tasks.size(); ++k) {
      cohortMembers_[k] = workload_->graph.processesOfTask(tasks[k]);
      for (const ProcessId p : cohortMembers_[k]) cohortOfProcess_[p] = k;
      result_.cohorts[k].task = tasks[k];
      result_.cohorts[k].processCount = cohortMembers_[k].size();
    }
    if (config_.arrivals->granularity == ArrivalGranularity::Cohort) {
      // PR 5 semantics: one batch per cohort, all members together.
      cohortArrival_ = cohortArrivalCycles(*config_.arrivals, tasks.size());
      arrivalBatches_.resize(tasks.size());
      for (std::size_t k = 0; k < tasks.size(); ++k) {
        arrivalBatches_[k] = ArrivalBatch{cohortArrival_[k], cohortMembers_[k]};
        for (const ProcessId p : cohortMembers_[k]) {
          arrivalCycle_[p] = cohortArrival_[k];
        }
      }
    } else {
      // Per-process streams: one batch per process, in process-id
      // order; a cohort's arrival is its first member's.
      const std::vector<std::int64_t> perProcess =
          processArrivalCycles(*config_.arrivals, n);
      arrivalBatches_.resize(n);
      cohortArrival_.assign(tasks.size(),
                            std::numeric_limits<std::int64_t>::max());
      for (ProcessId p = 0; p < n; ++p) {
        arrivalBatches_[p] = ArrivalBatch{perProcess[p], {p}};
        arrivalCycle_[p] = perProcess[p];
        std::int64_t& cohortArrival = cohortArrival_[cohortOfProcess_[p]];
        cohortArrival = std::min(cohortArrival, perProcess[p]);
      }
    }
    for (std::size_t k = 0; k < tasks.size(); ++k) {
      // result_.processes[p].arrivalCycle is stamped by admitBatch —
      // every batch is eventually admitted (the event loop drains
      // arrivalBatches_ completely).
      result_.cohorts[k].arrivalCycle = cohortArrival_[k];
      result_.cohorts[k].completionCycle = cohortArrival_[k];
    }
    if (!footprintsProvided_) footprints_ = workload_->footprints();
    liveSharing_ = SharingMatrix::inactive(n);
  }

  const SchedContext context{&workload_->graph,
                             openWorkload_ ? &liveSharing_ : sharing_,
                             config_.coreCount, workload_, space_};
  policy_->reset(context);
  for (ProcessId p = 0; p < n; ++p) {
    remainingPreds_[p] = workload_->graph.predecessors(p).size();
    if (!openWorkload_ && remainingPreds_[p] == 0) {
      announceReady(p);
    }
  }
  std::size_t nextBatch = 0;
  if (openWorkload_ && arrivalBatches_[0].cycle == 0) {
    admitBatch(nextBatch++, 0);
  }

  // Busy cores, ordered by segment end time (core index breaks ties).
  using Event = std::pair<std::int64_t, std::size_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

  // Offers work to an idle core; returns true when a segment started.
  // A picked process whose lifetime already expired is retired on the
  // spot (it never gets another segment) and the policy is asked again —
  // lazy retirement at the scheduling boundary keeps every policy's
  // ready-queue bookkeeping valid without new obligations.
  const auto offer = [&](std::size_t coreIdx, std::int64_t now) {
    while (true) {
      const auto pick =
          policy_->pickNext(coreIdx, cores_[coreIdx].lastScheduled);
      if (!pick) return false;
      const ProcessId p = *pick;
      check(p < n, "scheduler picked an unknown process");
      check(!completed_[p], "scheduler picked a completed process");
      check(!running[p], "scheduler picked a process already running");
      check(arrived_[p], "scheduler picked a process that has not arrived");
      check(remainingPreds_[p] == 0, "scheduler picked a dependent process");
      if (deadline(p) <= now) {
        exitProcess(p, lastRanOn_[p].value_or(coreIdx), now,
                    /*retired=*/true);
        continue;
      }
      result_.coreIdleCycles[coreIdx] += now - cores_[coreIdx].freeAt;
      running[p] = true;
      ++runningCount_;
      const std::int64_t end = runSegment(coreIdx, p, now);
      events.emplace(end, coreIdx);
      return true;
    }
  };

  for (std::size_t c = 0; c < config_.coreCount; ++c) {
    offer(c, 0);
  }

  std::int64_t now = 0;
  while (!events.empty() || nextBatch < arrivalBatches_.size()) {
    // Arrivals first at equal cycles: a core freeing at t must see the
    // processes that arrive at t.
    const std::int64_t nextArrival =
        nextBatch < arrivalBatches_.size()
            ? arrivalBatches_[nextBatch].cycle
            : std::numeric_limits<std::int64_t>::max();
    if (events.empty() || nextArrival <= events.top().first) {
      LAPS_AUDIT(audit::cycleMonotone(now, nextArrival));
      now = nextArrival;
      admitBatch(nextBatch++, now);
      for (std::size_t c = 0; c < config_.coreCount; ++c) {
        if (!cores_[c].current) offer(c, now);
      }
      continue;
    }
    const auto [t, coreIdx] = events.top();
    events.pop();
    // This branch is taken only when every pending arrival is strictly
    // later than the popped core event (arrivals win ties), and popped
    // event times never run backwards.
    LAPS_AUDIT(audit::arrivalBeforeCore(t, nextArrival));
    LAPS_AUDIT(audit::cycleMonotone(now, t));
    now = t;
    Core& core = cores_[coreIdx];
    const ProcessId p = *core.current;
    core.current.reset();
    core.freeAt = now;
    running[p] = false;
    --runningCount_;
    if (cursors_[p]->done()) {
      exitProcess(p, coreIdx, now, /*retired=*/false);
    } else if (deadline(p) <= now) {
      // The lifetime cap cut this segment: the process overstayed.
      exitProcess(p, coreIdx, now, /*retired=*/true);
    } else {
      ++result_.preemptions;
      policy_->onPreempt(p);
    }
    // The finishing core first, then any core that was starved — new
    // readiness may have unblocked them.
    offer(coreIdx, now);
    for (std::size_t c = 0; c < config_.coreCount; ++c) {
      if (!cores_[c].current) offer(c, now);
    }
  }

  check(completedCount_ == n,
        "MpsocSimulator: deadlock — " +
            std::to_string(n - completedCount_) +
            " process(es) never completed (policy stranded work)");

  result_.makespanCycles = now;
  result_.seconds = config_.cyclesToSeconds(now);
  result_.policy = policy_->stats();
  if (openWorkload_) {
    // Exact sojourn order statistics, per cohort and global, over the
    // admitted processes (rejected ones never sojourned). No sampling:
    // every sojourn is ranked.
    const auto fill = [](SojournPercentiles& out,
                         std::vector<std::int64_t>& sojourns) {
      out.samples = sojourns.size();
      if (sojourns.empty()) return;
      out.p50 = percentileNearestRank(sojourns, 50);
      out.p95 = percentileNearestRank(sojourns, 95);
      out.p99 = percentileNearestRank(sojourns, 99);
      LAPS_AUDIT(audit::percentileOrdering(out.p50, out.p95, out.p99,
                                           out.samples));
    };
    std::vector<std::int64_t> global;
    global.reserve(n);
    std::vector<std::int64_t> perCohort;
    for (std::size_t k = 0; k < result_.cohorts.size(); ++k) {
      perCohort.clear();
      for (const ProcessId p : cohortMembers_[k]) {
        const ProcessRunRecord& record = result_.processes[p];
        if (record.rejected) continue;
        const std::int64_t sojourn =
            record.completionCycle - record.arrivalCycle;
        perCohort.push_back(sojourn);
        global.push_back(sojourn);
      }
      fill(result_.cohorts[k].sojourn, perCohort);
      // Per-cohort admission identity: every member is a sojourn
      // sample or was rejected.
      LAPS_AUDIT(audit::admissionIdentity(
          result_.cohorts[k].sojourn.samples, result_.cohorts[k].rejectedCount,
          result_.cohorts[k].processCount));
    }
    fill(result_.sojourn, global);
    LAPS_AUDIT(audit::admissionIdentity(
        result_.sojourn.samples,
        static_cast<std::size_t>(result_.rejectedProcesses), n));
  }
  for (std::size_t c = 0; c < config_.coreCount; ++c) {
    result_.coreBusyCycles[c] = cores_[c].busyCycles;
    result_.coreIdleCycles[c] += now - cores_[c].freeAt;
    result_.dcacheTotal.accumulate(cores_[c].memory->dcache().stats());
    result_.icacheTotal.accumulate(cores_[c].memory->icache().stats());
    result_.dataMisses.accumulate(cores_[c].memory->dataMissBreakdown());
  }
  if (const SharedL2* l2 = hierarchy_->l2()) {
    result_.sharedL2Enabled = true;
    result_.l2Total = l2->stats();
    result_.l2BankWaitCycles = l2->bankWaitCycles();
    result_.inclusionWritebacks = hierarchy_->inclusionWritebacks();
  }
  if (const MemoryBus* bus = hierarchy_->bus()) {
    result_.busTransactions = bus->stats().transactions;
    result_.busWaitCycles = bus->stats().waitCycles;
  }
  return result_;
}

}  // namespace laps

#include "sim/engine.h"

#include <algorithm>
#include <queue>

#include "sim/replay.h"
#include "util/error.h"

namespace laps {

double SimResult::utilization() const {
  if (makespanCycles <= 0 || coreBusyCycles.empty()) return 0.0;
  double busy = 0.0;
  for (const auto c : coreBusyCycles) busy += static_cast<double>(c);
  return busy / (static_cast<double>(makespanCycles) *
                 static_cast<double>(coreBusyCycles.size()));
}

MpsocSimulator::MpsocSimulator(const Workload& workload,
                               const AddressSpace& space,
                               const SharingMatrix& sharing,
                               SchedulerPolicy& policy, MpsocConfig config)
    : workload_(&workload),
      space_(&space),
      sharing_(&sharing),
      policy_(&policy),
      config_(config) {
  check(config_.coreCount >= 1, "MpsocSimulator: need at least one core");
  check(sharing.size() == workload.graph.processCount(),
        "MpsocSimulator: sharing matrix size mismatch");
  config_.memory.l1d.validate();
  if (config_.memory.modelICache) config_.memory.l1i.validate();
  if (config_.sharedL2) config_.sharedL2->validate();
  if (config_.bus) config_.bus->validate();
}

std::int64_t MpsocSimulator::runSegment(std::size_t coreIdx, ProcessId process,
                                        std::int64_t now) {
  Core& core = cores_[coreIdx];

  // Switch overhead is charged outside the quantum comparison: the OS
  // timer starts when the process actually runs, so dispatch overhead
  // must not shrink the time slice the policy grants.
  std::int64_t switchOverhead = 0;
  const bool isSwitch = core.lastScheduled != std::optional<ProcessId>{process};
  if (isSwitch) {
    switchOverhead = config_.switchCycles;
    ++result_.contextSwitches;
    result_.switchOverheadCycles += static_cast<std::uint64_t>(switchOverhead);
    if (config_.flushOnSwitch) core.memory->flushAll();
  }
  if (lastRanOn_[process] && *lastRanOn_[process] != coreIdx) {
    ++result_.migrations;
  }

  if (!cursors_[process]) {
    cursors_[process].emplace(workload_->graph.process(process),
                              workload_->arrays, *space_);
  }
  ProcessTraceCursor& cursor = *cursors_[process];

  auto& record = result_.processes[process];
  if (record.firstStartCycle < 0) record.firstStartCycle = now;

  const std::optional<std::int64_t> quantum = policy_->quantum();
  const std::int64_t iHit = config_.memory.l1i.hitLatencyCycles;
  MemorySystem& mem = *core.memory;

  // Event times are popped in non-decreasing order, so no later segment
  // can issue a shared-level request before this one starts: retire the
  // contention calendars up to here.
  hierarchy_->retireBefore(now);
  const std::int64_t segStart = now + switchOverhead;

  std::int64_t cycles = 0;
  if (config_.replayMode == ReplayMode::RunLength) {
    cycles = replaySegmentRunLength(cursor, mem, quantum, segStart);
  } else {
    TraceStep step;
    while (cursor.next(step)) {
      // Fetch hits are pipelined (hidden); only the miss penalty stalls.
      const std::int64_t iLat = mem.instrFetch(step.instrAddr,
                                               segStart + cycles);
      if (iLat > iHit) cycles += iLat - iHit;
      if (step.isRef) {
        cycles += mem.dataAccess(step.dataAddr, step.isWrite,
                                 segStart + cycles);
      }
      cycles += step.computeCycles;
      if (quantum && cycles >= *quantum && !cursor.done()) break;
    }
  }

  core.current = process;
  core.lastScheduled = process;
  core.busyCycles += cycles;  // useful work; overhead counted separately
  lastRanOn_[process] = coreIdx;
  ++record.segments;
  return now + switchOverhead + cycles;
}

void MpsocSimulator::complete(ProcessId process, std::size_t coreIdx,
                              std::int64_t now) {
  completed_[process] = true;
  ++completedCount_;
  auto& record = result_.processes[process];
  record.completionCycle = now;
  record.lastCore = coreIdx;
  policy_->onComplete(process);
  for (const ProcessId succ : workload_->graph.successors(process)) {
    check(remainingPreds_[succ] > 0, "MpsocSimulator: dependence accounting");
    if (--remainingPreds_[succ] == 0) {
      policy_->onReady(succ);
    }
  }
}

SimResult MpsocSimulator::run() {
  const std::size_t n = workload_->graph.processCount();

  result_ = SimResult{};
  result_.processes.resize(n);
  for (ProcessId p = 0; p < n; ++p) result_.processes[p].id = p;
  result_.coreBusyCycles.assign(config_.coreCount, 0);
  result_.coreIdleCycles.assign(config_.coreCount, 0);

  hierarchy_ = std::make_shared<MemoryHierarchy>(
      config_.memory.memLatencyCycles, config_.sharedL2, config_.bus,
      config_.memory.l1d.lineBytes);
  cores_.clear();
  for (std::size_t c = 0; c < config_.coreCount; ++c) {
    Core core;
    core.memory = std::make_unique<MemorySystem>(config_.memory, hierarchy_);
    cores_.push_back(std::move(core));
  }
  cursors_.assign(n, std::nullopt);
  completed_.assign(n, false);
  completedCount_ = 0;
  lastRanOn_.assign(n, std::nullopt);
  remainingPreds_.resize(n);
  std::vector<bool> running(n, false);

  const SchedContext context{&workload_->graph, sharing_, config_.coreCount,
                             workload_, space_};
  policy_->reset(context);
  for (ProcessId p = 0; p < n; ++p) {
    remainingPreds_[p] = workload_->graph.predecessors(p).size();
    if (remainingPreds_[p] == 0) {
      policy_->onReady(p);
    }
  }

  // Busy cores, ordered by segment end time (core index breaks ties).
  using Event = std::pair<std::int64_t, std::size_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

  // Offers work to an idle core; returns true when a segment started.
  const auto offer = [&](std::size_t coreIdx, std::int64_t now) {
    const auto pick = policy_->pickNext(coreIdx, cores_[coreIdx].lastScheduled);
    if (!pick) return false;
    const ProcessId p = *pick;
    check(p < n, "scheduler picked an unknown process");
    check(!completed_[p], "scheduler picked a completed process");
    check(!running[p], "scheduler picked a process already running");
    check(remainingPreds_[p] == 0, "scheduler picked a dependent process");
    result_.coreIdleCycles[coreIdx] += now - cores_[coreIdx].freeAt;
    running[p] = true;
    const std::int64_t end = runSegment(coreIdx, p, now);
    events.emplace(end, coreIdx);
    return true;
  };

  for (std::size_t c = 0; c < config_.coreCount; ++c) {
    offer(c, 0);
  }

  std::int64_t now = 0;
  while (!events.empty()) {
    const auto [t, coreIdx] = events.top();
    events.pop();
    now = t;
    Core& core = cores_[coreIdx];
    const ProcessId p = *core.current;
    core.current.reset();
    core.freeAt = now;
    running[p] = false;
    if (cursors_[p]->done()) {
      complete(p, coreIdx, now);
    } else {
      ++result_.preemptions;
      policy_->onPreempt(p);
    }
    // The finishing core first, then any core that was starved — new
    // readiness may have unblocked them.
    offer(coreIdx, now);
    for (std::size_t c = 0; c < config_.coreCount; ++c) {
      if (!cores_[c].current) offer(c, now);
    }
  }

  check(completedCount_ == n,
        "MpsocSimulator: deadlock — " +
            std::to_string(n - completedCount_) +
            " process(es) never completed (policy stranded work)");

  result_.makespanCycles = now;
  result_.seconds = config_.cyclesToSeconds(now);
  for (std::size_t c = 0; c < config_.coreCount; ++c) {
    result_.coreBusyCycles[c] = cores_[c].busyCycles;
    result_.coreIdleCycles[c] += now - cores_[c].freeAt;
    result_.dcacheTotal.accumulate(cores_[c].memory->dcache().stats());
    result_.icacheTotal.accumulate(cores_[c].memory->icache().stats());
    result_.dataMisses.accumulate(cores_[c].memory->dataMissBreakdown());
  }
  if (const SharedL2* l2 = hierarchy_->l2()) {
    result_.sharedL2Enabled = true;
    result_.l2Total = l2->stats();
    result_.l2BankWaitCycles = l2->bankWaitCycles();
    result_.inclusionWritebacks = hierarchy_->inclusionWritebacks();
  }
  if (const MemoryBus* bus = hierarchy_->bus()) {
    result_.busTransactions = bus->stats().transactions;
    result_.busWaitCycles = bus->stats().waitCycles;
  }
  return result_;
}

}  // namespace laps

#pragma once
/// \file arrivals.h
/// \brief Open-workload arrival schedules (docs/ARCHITECTURE.md §9).
///
/// The paper's schedulers assume the whole process set is resident
/// before cycle 0. The in-OS use case is open: applications launch and
/// exit at run time. An ArrivalSchedule makes the simulated workload
/// open — *tasks* (applications) arrive as whole cohorts at seeded
/// inter-arrival distances, and an optional per-process lifetime retires
/// processes that overstay it.
///
/// Determinism: inter-arrival gaps are drawn from laps::Rng (integer
/// rejection sampling, no floating point), so a (workload, schedule)
/// pair produces the same arrival cycles on every platform and build.

#include <cstdint>
#include <optional>
#include <vector>

namespace laps {

/// When and for how long processes are resident in an open workload.
///
/// Cohort granularity is the task: all processes of one task arrive
/// together (an application launches with its whole process graph), in
/// the workload's task order. The first cohort arrives at cycle 0 so
/// the simulation always has work; cohort k+1 arrives a seeded uniform
/// gap in [1, 2*meanInterArrivalCycles - 1] after cohort k (mean =
/// meanInterArrivalCycles, integer-exact).
struct ArrivalSchedule {
  /// Seed of the inter-arrival stream.
  std::uint64_t seed = 1;

  /// Mean cycles between successive cohort arrivals (> 0).
  std::int64_t meanInterArrivalCycles = 200'000;

  /// Optional residence cap: a process still unfinished
  /// processLifetimeCycles after its arrival is retired at the next
  /// scheduling boundary (> 0 when set). Retirement releases the
  /// process's dependents like a completion, so open workloads never
  /// deadlock on a killed producer.
  std::optional<std::int64_t> processLifetimeCycles;

  /// Throws laps::Error on a non-positive mean or lifetime.
  void validate() const;
};

/// Arrival cycle of each of \p cohortCount cohorts under \p schedule:
/// element 0 is 0, gaps are seeded as documented above. Monotonically
/// non-decreasing (strictly increasing for cohortCount > 1).
[[nodiscard]] std::vector<std::int64_t> cohortArrivalCycles(
    const ArrivalSchedule& schedule, std::size_t cohortCount);

}  // namespace laps

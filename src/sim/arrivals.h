#pragma once
/// \file arrivals.h
/// \brief Open-workload arrival schedules (docs/ARCHITECTURE.md §§9-10).
///
/// The paper's schedulers assume the whole process set is resident
/// before cycle 0. The in-OS use case is open: applications launch and
/// exit at run time. An ArrivalSchedule makes the simulated workload
/// open — work arrives at seeded inter-arrival distances, either as
/// whole task cohorts (an application launches with its whole process
/// graph) or as individual processes (a service ingesting a stream of
/// short requests), and an optional per-process lifetime retires
/// processes that overstay it.
///
/// Determinism: every inter-arrival gap is drawn with integer-only
/// arithmetic from laps::Rng (rejection sampling, fixed-point survival
/// functions, integer square roots — never a libm call), so a
/// (workload, schedule) pair produces the same arrival cycles on every
/// platform and build. See docs/ARCHITECTURE.md §10 for the
/// construction of each distribution.

#include <cstdint>
#include <optional>
#include <vector>

#include "util/rng.h"

namespace laps {

/// What one arrival event admits.
enum class ArrivalGranularity {
  /// All processes of one task arrive together, in the workload's task
  /// order (PR 5 semantics; the default, bit-identical to the original
  /// cohort engine).
  Cohort,
  /// Each process arrives individually, in process-id order. Tasks
  /// still group processes for the per-cohort statistics; a cohort's
  /// arrival cycle is its first member's. Dependences are unaffected: a
  /// process that arrives before a predecessor completes simply waits.
  PerProcess,
};

/// The seeded integer distribution of inter-arrival gaps. All three are
/// exactly reproducible across platforms: they never touch floating
/// point.
enum class ArrivalDistribution {
  /// Uniform on [1, 2*mean - 1]: mean exactly meanInterArrivalCycles,
  /// bounded support, no tail. The PR 5 scheme (and byte-compatible
  /// with it: same Rng draws in the same order).
  Uniform,
  /// Geometric on {1, 2, ...} with success probability 1/mean — the
  /// integer analogue of an exponential (memoryless, light tail). Gaps
  /// are sampled by inverting the fixed-point survival function
  /// q^k (q = 1 - 1/mean in Q0.64), so cost is O(log gap), not O(gap).
  Exponential,
  /// Bounded Pareto-like heavy tail: gaps span paretoSpanOctaves
  /// octaves [L*2^j, L*2^(j+1)) whose probabilities decay as
  /// 2^(-alpha*j) (uniform within an octave), alpha =
  /// paretoAlphaHalves/2. L is derived from the configured mean, so the
  /// empirical mean still tracks meanInterArrivalCycles (to within
  /// rounding of L). P(gap > k*mean) decays polynomially in k — far
  /// heavier than Exponential's e^(-k) — which is what makes open
  /// service workloads bursty.
  BoundedPareto,
};

/// When and for how long processes are resident in an open workload.
///
/// The first arrival is at cycle 0 so the simulation always has work;
/// arrival k+1 follows arrival k by a seeded gap >= 1 drawn from
/// \ref distribution with mean meanInterArrivalCycles.
struct ArrivalSchedule {
  /// Seed of the inter-arrival stream.
  std::uint64_t seed = 1;

  /// Mean cycles between successive arrivals (> 0).
  std::int64_t meanInterArrivalCycles = 200'000;

  /// Optional residence cap: a process still unfinished
  /// processLifetimeCycles after its arrival is retired at the next
  /// scheduling boundary (> 0 when set). Retirement releases the
  /// process's dependents like a completion, so open workloads never
  /// deadlock on a killed producer.
  std::optional<std::int64_t> processLifetimeCycles;

  /// Cohort (default, PR 5 semantics) or per-process arrivals.
  ArrivalGranularity granularity = ArrivalGranularity::Cohort;

  /// Inter-arrival gap distribution (default: the PR 5 uniform scheme).
  ArrivalDistribution distribution = ArrivalDistribution::Uniform;

  /// BoundedPareto tail index alpha in half-units: alpha =
  /// paretoAlphaHalves / 2 (default 3 -> alpha = 1.5). Halves keep the
  /// octave decay ratio 2^(-alpha) computable with integer square
  /// roots. In [1, 16].
  int paretoAlphaHalves = 3;

  /// BoundedPareto support width: gaps span [L, L * 2^spanOctaves).
  /// In [1, 24].
  int paretoSpanOctaves = 8;

  /// Throws laps::Error on a non-positive mean or lifetime, or Pareto
  /// knobs outside their documented ranges.
  void validate() const;
};

/// Draws the seeded inter-arrival gaps of an ArrivalSchedule, one call
/// per gap. Every draw is >= 1; the long-run mean tracks
/// meanInterArrivalCycles (exactly for Uniform and Exponential, to
/// within rounding of the minimum gap for BoundedPareto). Construction
/// validates the schedule.
class GapSampler {
 public:
  explicit GapSampler(const ArrivalSchedule& schedule);

  /// Next inter-arrival gap in cycles (>= 1).
  [[nodiscard]] std::int64_t next();

 private:
  [[nodiscard]] std::int64_t nextGeometric();
  [[nodiscard]] std::int64_t nextPareto();

  ArrivalDistribution distribution_;
  std::int64_t mean_;
  Rng rng_;
  /// Exponential: survival ratio q = 1 - 1/mean in Q0.64 fixed point,
  /// and a sanity cap on the (astronomically unlikely) extreme tail.
  std::uint64_t geomSurvivalQ64_ = 0;
  std::int64_t maxGap_ = 0;
  /// BoundedPareto: smallest gap L, octave count, per-octave cumulative
  /// weights in Q0.32 (cumWeights_.back() is the total).
  std::int64_t paretoMinGap_ = 1;
  int paretoOctaves_ = 0;
  std::vector<std::uint64_t> paretoCumWeights_;
};

/// Arrival cycle of each of \p cohortCount cohorts under \p schedule:
/// element 0 is 0, later elements follow at seeded gaps. Monotonically
/// increasing for cohortCount > 1. Ignores \ref
/// ArrivalSchedule::granularity — this is the cohort-granularity
/// stream, byte-compatible with PR 5 for the default Uniform
/// distribution.
[[nodiscard]] std::vector<std::int64_t> cohortArrivalCycles(
    const ArrivalSchedule& schedule, std::size_t cohortCount);

/// Arrival cycle of each of \p processCount individually-arriving
/// processes (ArrivalGranularity::PerProcess), in process-id order:
/// element 0 is 0, later elements follow at seeded gaps from the same
/// distribution machinery as cohortArrivalCycles.
[[nodiscard]] std::vector<std::int64_t> processArrivalCycles(
    const ArrivalSchedule& schedule, std::size_t processCount);

}  // namespace laps

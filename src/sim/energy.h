#pragma once
/// \file energy.h
/// \brief First-order energy accounting (extension).
///
/// The paper motivates locality-aware scheduling by performance *and
/// power*, but reports only execution times. This model makes the power
/// claim measurable: off-chip accesses dominate (nJ each), so removing
/// misses saves energy roughly proportionally. Default per-event energies
/// are in the range embedded 180 nm-era literature reports (order of
/// magnitude is what matters for A/B comparisons, not the absolute mJ).

#include <cstdint>

#include "sim/result.h"

namespace laps {

/// Per-event and per-cycle energies in nanojoules.
///
/// Off-chip events are what actually left the chip: without a shared L2
/// they are the L1 misses plus L1 write-backs; with one
/// (SimResult::sharedL2Enabled) the L2 filters them down to its own
/// misses, its dirty evictions and the inclusion write-backs of dirty
/// L1 copies (SimResult::inclusionWritebacks), and each L2 access costs
/// l2AccessNj on chip instead.
struct EnergyModel {
  double l1AccessNj = 0.2;       ///< one L1 (I or D) access
  double l2AccessNj = 1.0;       ///< one shared-L2 (bank) access
  double offChipAccessNj = 6.0;  ///< one off-chip read or write-back
  double coreBusyNjPerCycle = 0.15;
  double coreIdleNjPerCycle = 0.015;

  /// Total energy of a run in millijoules.
  [[nodiscard]] double totalMj(const SimResult& result) const;
};

}  // namespace laps

#include "sim/admission.h"

#include "util/error.h"

namespace laps {

std::string to_string(AdmissionKind kind) {
  switch (kind) {
    case AdmissionKind::AdmitAll:
      return "AdmitAll";
    case AdmissionKind::QueueCap:
      return "QueueCap";
    case AdmissionKind::SloShed:
      return "SloShed";
  }
  throw Error("to_string: unknown AdmissionKind");
}

void AdmissionConfig::validate() const {
  check(sloTargetCycles > 0,
        "AdmissionConfig: sloTargetCycles must be positive");
  check(sloEwmaShift >= 0 && sloEwmaShift <= 30,
        "AdmissionConfig: sloEwmaShift must be in [0, 30]");
}

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config) {
  config_.validate();
}

bool AdmissionController::admit(std::size_t waitingCount) const {
  switch (config_.kind) {
    case AdmissionKind::AdmitAll:
      return true;
    case AdmissionKind::QueueCap:
      return waitingCount < config_.queueCap;
    case AdmissionKind::SloShed:
      return ewma_ <= config_.sloTargetCycles;
  }
  throw Error("AdmissionController: unknown AdmissionKind");
}

void AdmissionController::recordSojourn(std::int64_t sojournCycles) {
  ewma_ += (sojournCycles - ewma_) >> config_.sloEwmaShift;
}

}  // namespace laps

#include "sim/energy.h"

namespace laps {

double EnergyModel::totalMj(const SimResult& result) const {
  const double l1Accesses = static_cast<double>(result.dcacheTotal.accesses) +
                            static_cast<double>(result.icacheTotal.accesses);
  const double offChip = static_cast<double>(result.dcacheTotal.misses) +
                         static_cast<double>(result.icacheTotal.misses) +
                         static_cast<double>(result.dcacheTotal.dirtyEvictions);
  double busy = 0.0;
  double idle = 0.0;
  for (const auto c : result.coreBusyCycles) busy += static_cast<double>(c);
  for (const auto c : result.coreIdleCycles) idle += static_cast<double>(c);
  const double nj = l1Accesses * l1AccessNj + offChip * offChipAccessNj +
                    busy * coreBusyNjPerCycle + idle * coreIdleNjPerCycle;
  return nj * 1e-6;  // nJ -> mJ
}

}  // namespace laps

#include "sim/energy.h"

namespace laps {

double EnergyModel::totalMj(const SimResult& result) const {
  const double l1Accesses = static_cast<double>(result.dcacheTotal.accesses) +
                            static_cast<double>(result.icacheTotal.accesses);
  const double l2Accesses = static_cast<double>(result.l2Total.accesses);
  // With a shared L2 the off-chip traffic is what the L2 could not
  // absorb: its misses, its dirty evictions, and the dirty L1 copies
  // its inclusion back-invalidation flushed past a clean L2 entry.
  // Without one every L1 miss and write-back goes off chip (l2Accesses
  // is zero then, so the L2 term vanishes and the formula reduces to
  // the pre-hierarchy model exactly).
  const double offChip =
      result.sharedL2Enabled
          ? static_cast<double>(result.l2Total.misses) +
                static_cast<double>(result.l2Total.dirtyEvictions) +
                static_cast<double>(result.inclusionWritebacks)
          : static_cast<double>(result.dcacheTotal.misses) +
                static_cast<double>(result.icacheTotal.misses) +
                static_cast<double>(result.dcacheTotal.dirtyEvictions);
  double busy = 0.0;
  double idle = 0.0;
  for (const auto c : result.coreBusyCycles) busy += static_cast<double>(c);
  for (const auto c : result.coreIdleCycles) idle += static_cast<double>(c);
  const double nj = l1Accesses * l1AccessNj + l2Accesses * l2AccessNj +
                    offChip * offChipAccessNj + busy * coreBusyNjPerCycle +
                    idle * coreIdleNjPerCycle;
  return nj * 1e-6;  // nJ -> mJ
}

}  // namespace laps

#pragma once
/// \file admission.h
/// \brief Admission control for open workloads (docs/ARCHITECTURE.md §10).
///
/// Under overload an open system must choose between unbounded queueing
/// (sojourn percentiles diverge) and shedding load. The engine consults
/// an AdmissionController at every arrival, *before* the scheduling
/// policy hears anything: a rejected process is a non-event to the
/// policy (no onArrival/onReady/onExit), it releases its dependents
/// immediately (a rejected producer must not strand consumers), and it
/// is counted in SimResult::rejectedProcesses and the per-cohort reject
/// stats instead of the sojourn percentiles.
///
/// All state is integer-only (the EWMA uses a power-of-two smoothing
/// shift), so admission decisions are platform-identical.

#include <cstddef>
#include <cstdint>
#include <string>

namespace laps {

/// The admission policies bench_saturation ablates.
enum class AdmissionKind {
  /// Admit everything (the default; open-mode behavior of PR 5).
  AdmitAll,
  /// Bounded waiting room: admit only while fewer than queueCap
  /// admitted processes are waiting (in the system but not running), so
  /// the waiting count never exceeds queueCap. queueCap == 0 rejects
  /// every arrival.
  QueueCap,
  /// SLO-driven shedding: reject arrivals while the running
  /// exponentially-weighted moving average of observed sojourns exceeds
  /// sloTargetCycles. Feedback keeps tail latency of the admitted work
  /// bounded where AdmitAll diverges.
  SloShed,
};

/// Short stable name ("AdmitAll", "QueueCap", "SloShed").
[[nodiscard]] std::string to_string(AdmissionKind kind);

/// Admission policy configuration. Defaults are the PR 5 semantics:
/// everything is admitted.
struct AdmissionConfig {
  AdmissionKind kind = AdmissionKind::AdmitAll;

  /// QueueCap: maximum number of admitted-but-not-running processes.
  std::size_t queueCap = 64;

  /// SloShed: sojourn-EWMA target in cycles (> 0).
  std::int64_t sloTargetCycles = 1'000'000;

  /// SloShed: EWMA smoothing ewma += (sojourn - ewma) >> sloEwmaShift;
  /// shift 3 weighs each new sojourn 1/8. In [0, 30].
  int sloEwmaShift = 3;

  /// Throws laps::Error on a non-positive SLO target or an
  /// out-of-range smoothing shift.
  void validate() const;
};

/// Per-run admission state: decides arrivals, tracks the sojourn EWMA.
class AdmissionController {
 public:
  AdmissionController() = default;
  /// Validates \p config.
  explicit AdmissionController(const AdmissionConfig& config);

  /// Decision for one arriving process given the current number of
  /// admitted-but-not-running processes. Pure in the controller state:
  /// the caller records the consequences (the controller holds no queue
  /// of its own).
  [[nodiscard]] bool admit(std::size_t waitingCount) const;

  /// Feeds one observed sojourn (exit cycle - arrival cycle, completed
  /// or retired) into the SLO estimator.
  void recordSojourn(std::int64_t sojournCycles);

  /// Current sojourn EWMA in cycles (0 until the first exit).
  [[nodiscard]] std::int64_t sojournEwma() const { return ewma_; }

 private:
  AdmissionConfig config_{};
  std::int64_t ewma_ = 0;
};

}  // namespace laps

#pragma once
/// \file config.h
/// \brief MPSoC platform configuration (paper Table 2 defaults).

#include <cstddef>
#include <cstdint>
#include <optional>

#include "cache/bus.h"
#include "cache/hierarchy.h"
#include "cache/platform.h"
#include "cache/shared_l2.h"
#include "sim/admission.h"
#include "sim/arrivals.h"
#include "sim/faults.h"
#include "util/error.h"

namespace laps {

/// How the simulator replays process traces.
enum class ReplayMode {
  /// One cache-model access per trace step (the original loop).
  PerEvent,
  /// Run-length-encoded replay: strided runs are resolved per cache line
  /// in bulk (sim/replay.h). Bit-identical results to PerEvent, several
  /// times faster — the default since the differential suite
  /// (tests/sim/replay_test.cpp) proved the equivalence.
  RunLength,
};

/// The simulated platform. Defaults reproduce Table 2 of the paper:
/// 8 processors, 8 KB 2-way data/instruction caches, 2-cycle cache
/// access, 75-cycle off-chip access, 200 MHz cores — and no shared L2
/// or bus contention (sharedL2/bus disabled), so the default miss path
/// is the paper's fixed latency, bit-identical to the pre-hierarchy
/// simulator.
struct MpsocConfig {
  std::size_t coreCount = 8;
  MemoryConfig memory{};            ///< replicated per core (private L1s)

  /// The shared-level topology in one composable descriptor
  /// (cache/platform.h): interconnect {Flat, Bus, Mesh, Xbar} ×
  /// coherence {Broadcast, Directory} × optional shared L2, validated
  /// eagerly in one place. Unset = derive the descriptor from the
  /// legacy sharedL2/bus fields below (resolvedPlatform()).
  std::optional<PlatformConfig> platform;

  /// \name Legacy shared-level toggles (deprecation shims)
  /// The pre-PlatformConfig surface, kept so every existing call site
  /// and committed baseline stays byte-identical. resolvedPlatform()
  /// maps them onto the equivalent descriptor; setting them *and*
  /// `platform` is an eager configuration error, not a precedence rule.
  /// New code should set `platform` instead.
  /// @{
  /// Optional shared banked L2 between the L1s and memory
  /// (docs/ARCHITECTURE.md §7). Disabled = paper platform.
  std::optional<SharedL2Config> sharedL2;
  /// Optional off-chip bus with bounded outstanding transactions and
  /// queueing delay. Disabled = fixed memory.memLatencyCycles per miss.
  std::optional<BusConfig> bus;
  /// @}

  /// Optional open-workload arrival schedule (docs/ARCHITECTURE.md
  /// §§9-10): work arrives at seeded inter-arrival distances — whole
  /// task cohorts or individual processes, uniform / geometric /
  /// heavy-tailed gaps — and an optional lifetime retires overstaying
  /// processes. Disabled = the paper's closed workload (everything
  /// resident at cycle 0), bit-identical to the pre-arrival simulator.
  std::optional<ArrivalSchedule> arrivals;

  /// Optional deterministic fault injection (docs/ARCHITECTURE.md §13):
  /// seeded permanent core failures, transient core outages and process
  /// crashes with retry/backoff, interleaved into the event loop.
  /// Requires an arrival schedule (crash retries re-enter as arrivals).
  /// Absent — or present with every class mean zero — the engine takes
  /// the exact fault-free path, bit-identical to the pre-fault
  /// simulator.
  std::optional<FaultPlan> faults;

  /// Admission control for open workloads (docs/ARCHITECTURE.md §10):
  /// consulted once per arriving process, before the scheduling policy
  /// hears anything. The default AdmitAll keeps PR 5 semantics
  /// bit-identical; ignored entirely in closed workloads.
  AdmissionConfig admission{};

  /// Table 2: 200 MHz. Only consumed by cyclesToSeconds below — the
  /// simulation itself is pure integer cycles.
  // LINT-ALLOW(no-float): cycle-to-seconds readout only; the model never reads it
  double clockHz = 200e6;
  std::int64_t switchCycles = 400;  ///< context-switch overhead per switch
  bool flushOnSwitch = false;       ///< ablation: cold caches after switch
  ReplayMode replayMode = ReplayMode::RunLength;  ///< trace replay engine

  /// Reporting conversion of a final integer cycle count; never feeds
  /// back into simulation state.
  // LINT-ALLOW(no-float): presentation-only conversion of final cycle counts
  [[nodiscard]] double cyclesToSeconds(std::int64_t cycles) const {
    // LINT-ALLOW(no-float): presentation-only conversion of final cycle counts
    return static_cast<double>(cycles) / clockHz;
  }

  /// The effective platform descriptor: `platform` when set, otherwise
  /// the descriptor equivalent to the legacy sharedL2/bus fields (the
  /// deprecation shim — byte-identical results by construction, since
  /// both spellings build the same MemoryHierarchy). Throws laps::Error
  /// when both surfaces are set at once.
  [[nodiscard]] PlatformConfig resolvedPlatform() const {
    if (platform) {
      check(!sharedL2 && !bus,
            "MpsocConfig: set either `platform` or the legacy "
            "sharedL2/bus fields, not both");
      return *platform;
    }
    PlatformConfig resolved;
    resolved.sharedL2 = sharedL2;
    if (bus) {
      resolved.interconnect = InterconnectKind::Bus;
      resolved.bus = *bus;
    }
    return resolved;
  }
};

}  // namespace laps

#include "sim/arrivals.h"

#include <limits>

#include "util/error.h"
#include "util/rng.h"

namespace laps {

void ArrivalSchedule::validate() const {
  check(meanInterArrivalCycles > 0,
        "ArrivalSchedule: meanInterArrivalCycles must be positive");
  // The gap draw computes 2*mean - 1 in int64: bound the mean so that
  // intermediate cannot overflow (which would wrap negative and
  // silently collapse every gap to 1 cycle).
  check(meanInterArrivalCycles <=
            std::numeric_limits<std::int64_t>::max() / 2,
        "ArrivalSchedule: meanInterArrivalCycles too large (2*mean must "
        "fit in int64)");
  check(!processLifetimeCycles || *processLifetimeCycles > 0,
        "ArrivalSchedule: processLifetimeCycles must be positive when set");
}

std::vector<std::int64_t> cohortArrivalCycles(const ArrivalSchedule& schedule,
                                              std::size_t cohortCount) {
  schedule.validate();
  std::vector<std::int64_t> arrivals;
  arrivals.reserve(cohortCount);
  Rng rng(schedule.seed);
  std::int64_t cycle = 0;
  for (std::size_t k = 0; k < cohortCount; ++k) {
    arrivals.push_back(cycle);
    // Uniform on [1, 2*mean - 1]: integer-exact with mean exactly
    // meanInterArrivalCycles (the mean == 1 edge collapses to a fixed
    // gap of 1).
    const std::int64_t hi = 2 * schedule.meanInterArrivalCycles - 1;
    cycle += rng.range(1, hi >= 1 ? hi : 1);
  }
  return arrivals;
}

}  // namespace laps

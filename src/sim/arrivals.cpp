#include "sim/arrivals.h"

#include <limits>

#include "util/error.h"

namespace laps {
namespace {

using U128 = unsigned __int128;

/// Q0.64 fixed-point multiply: floor(a * b / 2^64). Both operands
/// represent values in [0, 1); exact integer arithmetic, so identical on
/// every platform.
std::uint64_t qmul(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::uint64_t>((static_cast<U128>(a) * b) >> 64);
}

/// Largest x with x*x <= v (integer square root of a 128-bit value).
std::uint64_t isqrt128(U128 v) {
  std::uint64_t x = 0;
  for (int b = 63; b >= 0; --b) {
    const std::uint64_t cand = x | (std::uint64_t{1} << b);
    if (static_cast<U128>(cand) * cand <= v) x = cand;
  }
  return x;
}

/// 2^(-alphaHalves/2) in Q0.64: an exact shift for whole alphas, an
/// integer square root (2^63.5 = sqrt(2^127)) for the half steps.
std::uint64_t octaveDecayQ64(int alphaHalves) {
  if (alphaHalves % 2 == 0) {
    return std::uint64_t{1} << (64 - alphaHalves / 2);
  }
  return isqrt128(static_cast<U128>(1) << 127) >> ((alphaHalves - 1) / 2);
}

}  // namespace

void ArrivalSchedule::validate() const {
  check(meanInterArrivalCycles > 0,
        "ArrivalSchedule: meanInterArrivalCycles must be positive");
  // The uniform gap draw computes 2*mean - 1 in int64: bound the mean so
  // that intermediate cannot overflow (which would wrap negative and
  // silently collapse every gap to 1 cycle).
  check(meanInterArrivalCycles <=
            std::numeric_limits<std::int64_t>::max() / 2,
        "ArrivalSchedule: meanInterArrivalCycles too large (2*mean must "
        "fit in int64)");
  check(!processLifetimeCycles || *processLifetimeCycles > 0,
        "ArrivalSchedule: processLifetimeCycles must be positive when set");
  check(paretoAlphaHalves >= 1 && paretoAlphaHalves <= 16,
        "ArrivalSchedule: paretoAlphaHalves must be in [1, 16]");
  check(paretoSpanOctaves >= 1 && paretoSpanOctaves <= 24,
        "ArrivalSchedule: paretoSpanOctaves must be in [1, 24]");
  if (distribution == ArrivalDistribution::BoundedPareto) {
    check(meanInterArrivalCycles <=
              std::numeric_limits<std::int64_t>::max() >> paretoSpanOctaves,
          "ArrivalSchedule: meanInterArrivalCycles too large for "
          "paretoSpanOctaves (largest gap must fit in int64)");
  }
}

GapSampler::GapSampler(const ArrivalSchedule& schedule)
    : distribution_(schedule.distribution),
      mean_(schedule.meanInterArrivalCycles),
      rng_(schedule.seed) {
  schedule.validate();
  switch (distribution_) {
    case ArrivalDistribution::Uniform:
      break;
    case ArrivalDistribution::Exponential: {
      // Survival ratio q = 1 - 1/mean in Q0.64 (truncation error 2^-64,
      // irrelevant next to the distribution itself). mean == 1 gives
      // q == 0: every gap collapses to 1, like the uniform edge case.
      const auto m = static_cast<std::uint64_t>(mean_);
      geomSurvivalQ64_ = m <= 1 ? 0 : ~std::uint64_t{0} - ~std::uint64_t{0} / m;
      // Tail sanity cap at 64*mean (survival e^-64; never reached in
      // practice, but it bounds the doubling search and the arithmetic).
      maxGap_ = mean_ > (std::numeric_limits<std::int64_t>::max() >> 6)
                    ? std::numeric_limits<std::int64_t>::max()
                    : 64 * mean_;
      break;
    }
    case ArrivalDistribution::BoundedPareto: {
      // Octave weights w_j = r^j, r = 2^(-alpha), kept in Q0.32 so the
      // cumulative table fits comfortably in 64 bits.
      const std::uint64_t r = octaveDecayQ64(schedule.paretoAlphaHalves);
      paretoOctaves_ = schedule.paretoSpanOctaves;
      paretoCumWeights_.resize(static_cast<std::size_t>(paretoOctaves_));
      std::uint64_t w = std::uint64_t{1} << 32;  // w_0 = 1.0 in Q0.32
      std::uint64_t cum = 0;
      U128 weighted = 0;  // S = sum_j w_j * 2^j, for the mean solve
      for (int j = 0; j < paretoOctaves_; ++j) {
        cum += w;
        weighted += static_cast<U128>(w) << j;
        paretoCumWeights_[static_cast<std::size_t>(j)] = cum;
        // w stays Q0.32: (Q0.32 * Q0.64) >> 64 = Q0.32.
        w = static_cast<std::uint64_t>((static_cast<U128>(w) * r) >> 64);
      }
      // The mean of the mixture is L * 3*S/(2*W) - 1/2 (uniform within
      // octave j on [L*2^j, L*2^(j+1) - 1]), so the smallest gap L that
      // hits the configured mean is L = (2*mean + 1) * W / (3*S),
      // rounded. L >= 1 keeps gaps positive; the empirical mean then
      // tracks the configured one to within rounding of L.
      const U128 numer =
          static_cast<U128>(2 * static_cast<U128>(mean_) + 1) * cum;
      const U128 denom = 3 * weighted;
      const U128 l = (numer + denom / 2) / denom;
      paretoMinGap_ = l < 1 ? 1 : static_cast<std::int64_t>(l);
      break;
    }
  }
}

std::int64_t GapSampler::next() {
  switch (distribution_) {
    case ArrivalDistribution::Exponential:
      return nextGeometric();
    case ArrivalDistribution::BoundedPareto:
      return nextPareto();
    case ArrivalDistribution::Uniform:
      break;
  }
  // Uniform on [1, 2*mean - 1]: integer-exact with mean exactly mean_
  // (the mean == 1 edge collapses to a fixed gap of 1). Byte-compatible
  // with the PR 5 cohort scheme: one Rng::range call per gap.
  const std::int64_t hi = 2 * mean_ - 1;
  return rng_.range(1, hi >= 1 ? hi : 1);
}

std::int64_t GapSampler::nextGeometric() {
  // Invert the survival function: the gap is the smallest k >= 1 with
  // q^k <= u for one uniform 64-bit draw u, i.e. P(gap > k) = q^k. All
  // powers are floored Q0.64 products, so the whole sample is exact
  // integer arithmetic; cost is O(log gap) multiplies.
  const std::uint64_t u = rng_();
  const std::uint64_t q = geomSurvivalQ64_;
  if (q == 0 || u >= q) return 1;

  // Doubling phase: powers[j] = q^(2^j); stop at the first <= u. The
  // exponent cap keeps k + 1 <= 2 * maxGap_ overflow-free.
  int jCap = 1;
  while (jCap < 62 && (std::int64_t{1} << jCap) < maxGap_) ++jCap;
  std::uint64_t powers[64];
  powers[0] = q;
  int bracket = 0;
  while (powers[bracket] > u && bracket < jCap) {
    powers[bracket + 1] = qmul(powers[bracket], powers[bracket]);
    ++bracket;
  }
  // The gap lies in (2^(bracket-1), 2^bracket]. Refine by filling in
  // lower exponent bits while keeping the invariant pk = q^k > u.
  std::int64_t k = std::int64_t{1} << (bracket - 1);
  std::uint64_t pk = powers[bracket - 1];
  for (int b = bracket - 2; b >= 0; --b) {
    const std::uint64_t cand = qmul(pk, powers[b]);
    if (cand > u) {
      k += std::int64_t{1} << b;
      pk = cand;
    }
  }
  return std::min(k + 1, maxGap_);
}

std::int64_t GapSampler::nextPareto() {
  // Pick the octave from the truncated-geometric weight table, then a
  // uniform offset within it.
  const std::uint64_t t = rng_.below(paretoCumWeights_.back());
  std::size_t octave = 0;
  while (t >= paretoCumWeights_[octave]) ++octave;
  const std::int64_t lo = paretoMinGap_ << octave;
  const std::int64_t hi = (paretoMinGap_ << (octave + 1)) - 1;
  return rng_.range(lo, hi);
}

namespace {

std::vector<std::int64_t> arrivalCycles(const ArrivalSchedule& schedule,
                                        std::size_t count) {
  GapSampler gaps(schedule);
  std::vector<std::int64_t> arrivals;
  arrivals.reserve(count);
  std::int64_t cycle = 0;
  for (std::size_t k = 0; k < count; ++k) {
    arrivals.push_back(cycle);
    cycle += gaps.next();
  }
  return arrivals;
}

}  // namespace

std::vector<std::int64_t> cohortArrivalCycles(const ArrivalSchedule& schedule,
                                              std::size_t cohortCount) {
  return arrivalCycles(schedule, cohortCount);
}

std::vector<std::int64_t> processArrivalCycles(const ArrivalSchedule& schedule,
                                               std::size_t processCount) {
  return arrivalCycles(schedule, processCount);
}

}  // namespace laps

#pragma once
/// \file replay.h
/// \brief Run-length trace replay (MpsocConfig::replayMode == RunLength).
///
/// The per-event simulator loop touches the cache model once per trace
/// step; with thousands of concurrent processes that is the simulation
/// bottleneck. replaySegmentRunLength consumes TraceRuns instead
/// (ProcessTraceCursor::peekRun/consume) and resolves each cache line's
/// group of consecutive accesses in bulk. The result is guaranteed
/// bit-identical to the per-event loop — same cycles, cache statistics,
/// LRU stamps, miss classification and preemption points — because every
/// analytical shortcut is guarded by an exact residency check and falls
/// back to per-event execution when the claim could fail (see
/// docs/ARCHITECTURE.md §6 for the equivalence argument).

#include <cstdint>
#include <optional>

#include "cache/hierarchy.h"
#include "trace/cursor.h"

namespace laps {

/// Executes one scheduling segment of \p cursor's process against
/// \p mem: replays trace runs until the process finishes or the
/// accumulated work cycles reach \p quantum (nullopt = non-preemptive).
/// Returns the segment's work cycles; the cursor is left exactly where
/// the per-event loop of MpsocSimulator::runSegment would leave it.
///
/// \p segmentStartCycle is the absolute cycle the segment begins at; it
/// only matters on a contended hierarchy (shared L2 / bus), where every
/// miss issues at segmentStartCycle + the work cycles accumulated so
/// far — exactly the per-event loop's timing. Bulk-committed steps are
/// guaranteed L1 hits and never reach the shared levels, so the
/// bit-identity between replay modes survives contention; the one
/// shortcut whose timing would drift (the whole-run accessRun fuse,
/// which cannot interleave compute cycles between misses) is skipped
/// when the hierarchy is contended.
std::int64_t replaySegmentRunLength(ProcessTraceCursor& cursor,
                                    MemorySystem& mem,
                                    std::optional<std::int64_t> quantum,
                                    std::int64_t segmentStartCycle = 0);

}  // namespace laps

#pragma once
/// \file address_space.h
/// \brief Main-memory placement of arrays (the paper's addr(.) function).
///
/// The AddressSpace assigns every array a base address and applies the
/// per-array LayoutTransform, yielding the byte address of any element —
/// the composition map(addr'(.)) of §3 is then evaluated by the cache
/// model. Bases are aligned so the Fig. 4 no-conflict guarantee holds.

#include <cstdint>
#include <vector>

#include "layout/transform.h"
#include "region/array.h"
#include "region/interval_set.h"

namespace laps {

/// Placement options.
struct AddressSpaceOptions {
  /// Base of the data segment (code lives below; see trace module).
  std::uint64_t dataBase = 0x1000'0000;
  /// Minimum alignment of every array base. The default is MMU-page
  /// alignment, as embedded allocators give large arrays — which is why
  /// hot arrays of different applications tend to collide in the same
  /// cache sets (the paper's premise). Transformed arrays are
  /// additionally aligned to their cache page.
  std::int64_t alignBytes = 4096;
};

/// Assigns array base addresses and applies layout transforms.
class AddressSpace {
 public:
  /// Lays out every array of \p arrays consecutively with identity
  /// transforms.
  explicit AddressSpace(const ArrayTable& arrays,
                        AddressSpaceOptions options = {});

  /// Installs \p transform for \p array and re-packs all bases
  /// (transformed arrays consume ~2x address span and page alignment).
  void setTransform(ArrayId array, const LayoutTransform& transform);

  [[nodiscard]] const LayoutTransform& transformOf(ArrayId array) const;

  /// Byte address of the element at row-major offset \p linearElem.
  [[nodiscard]] std::uint64_t elementAddress(ArrayId array,
                                             std::int64_t linearElem) const {
    const Slot& slot = slots_.at(array);
    const std::int64_t natural = linearElem * slot.elemSize;
    return slot.base + static_cast<std::uint64_t>(slot.transform.apply(natural));
  }

  [[nodiscard]] std::uint64_t baseOf(ArrayId array) const;

  /// Address span [base, base+span) reserved for \p array.
  [[nodiscard]] std::int64_t spanOf(ArrayId array) const;

  /// Converts an element-offset footprint into the byte-address intervals
  /// the array occupies under the current layout (exact; used by the
  /// conflict analyzer).
  [[nodiscard]] IntervalSet byteIntervals(ArrayId array,
                                          const IntervalSet& elements) const;

  /// One past the highest assigned address.
  [[nodiscard]] std::uint64_t end() const { return end_; }

  [[nodiscard]] std::size_t arrayCount() const { return slots_.size(); }

 private:
  struct Slot {
    std::uint64_t base = 0;
    std::int64_t naturalBytes = 0;
    std::int64_t elemSize = 4;
    LayoutTransform transform;
  };

  void repack();

  AddressSpaceOptions options_;
  std::vector<Slot> slots_;  // indexed by ArrayId
  std::uint64_t end_ = 0;
};

}  // namespace laps

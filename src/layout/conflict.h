#pragma once
/// \file conflict.h
/// \brief Pairwise array conflict analysis (input to paper Fig. 5).
///
/// Two arrays conflict when lines of both map to the same cache set: if
/// they are live on one core at the same time (same process, or
/// successive processes on the same core), each co-mapped line pair can
/// produce conflict misses. The conflict matrix entry M[x][y] counts the
/// pairs of (x-line, y-line) that share a cache set under the current
/// address layout — an exact, geometry-derived proxy for the paper's
/// "number of conflicts".

#include <cstdint>
#include <span>
#include <vector>

#include "cache/config.h"
#include "layout/address_space.h"
#include "region/footprint.h"
#include "util/table.h"

namespace laps {

/// Per-set line occupancy of one array's footprint under a layout.
/// occupancy[s] = number of distinct cache lines of the array that map to
/// set s.
[[nodiscard]] std::vector<std::int64_t> setOccupancy(
    const IntervalSet& byteIntervals, const CacheConfig& cache);

/// Symmetric array-by-array conflict-count matrix.
class ConflictMatrix {
 public:
  ConflictMatrix() = default;
  explicit ConflictMatrix(std::size_t n);

  /// Computes conflicts from the union footprint of every array across
  /// \p processFootprints, placed by \p space, indexed by \p cache.
  ///
  /// When \p arrayRefCounts is provided (total dynamic references per
  /// array, indexed by ArrayId), each pair's geometric collision count is
  /// weighted by the smaller of the two arrays' reference densities
  /// (references per distinct line). Co-mapped lines only thrash when
  /// both are re-referenced, so this steers the Fig. 5 selection toward
  /// hot tables rather than single-pass streams.
  static ConflictMatrix compute(const ArrayTable& arrays,
                                std::span<const Footprint> processFootprints,
                                const AddressSpace& space,
                                const CacheConfig& cache,
                                std::span<const std::int64_t> arrayRefCounts = {});

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] std::int64_t at(std::size_t x, std::size_t y) const;
  void set(std::size_t x, std::size_t y, std::int64_t value);

  /// Mean over unordered pairs x < y — the paper's default threshold T.
  [[nodiscard]] std::int64_t averagePairConflicts() const;

  /// Renders as a table labelled by array names.
  [[nodiscard]] Table toTable(const ArrayTable& arrays) const;

 private:
  [[nodiscard]] std::size_t idx(std::size_t x, std::size_t y) const;

  std::size_t n_ = 0;
  std::vector<std::int64_t> cells_;
};

}  // namespace laps

#include "layout/relayout.h"

#include <memory>
#include <unordered_set>

#include "util/error.h"

namespace laps {

std::size_t RelayoutPlan::relayoutCount() const {
  std::size_t count = 0;
  for (const auto& t : transforms) {
    if (!t.isIdentity()) ++count;
  }
  return count;
}

PairEligibility alwaysEligible() {
  return [](ArrayId, ArrayId) { return true; };
}

RelayoutPlan planRelayout(const ConflictMatrix& conflicts,
                          const CacheConfig& cache,
                          const PairEligibility& eligible,
                          std::optional<std::int64_t> thresholdOverride,
                          const RelayoutLimits& limits) {
  const std::size_t n = conflicts.size();
  RelayoutPlan plan;
  plan.transforms.assign(n, LayoutTransform{});
  if (thresholdOverride) {
    plan.threshold = *thresholdOverride;
  } else if (n >= 2) {
    // The paper sets T to the average conflict count over all pairs. We
    // average over the *actionable* pairs (eligible and within the size
    // guard): pairs the algorithm can never transform — e.g. two large
    // streaming arrays — would otherwise inflate T and starve every
    // actionable pair. With fewer than two actionable pairs the
    // actionable mean degenerates (a single pair would block itself), so
    // we fall back to the paper's plain all-pairs mean.
    std::int64_t total = 0;
    std::int64_t count = 0;
    for (std::size_t x = 0; x < n; ++x) {
      for (std::size_t y = x + 1; y < n; ++y) {
        if (!eligible(static_cast<ArrayId>(x), static_cast<ArrayId>(y))) continue;
        if (!limits.fits(static_cast<ArrayId>(x)) ||
            !limits.fits(static_cast<ArrayId>(y))) {
          continue;
        }
        total += conflicts.at(x, y);
        ++count;
      }
    }
    plan.threshold =
        count > 1 ? total / count : conflicts.averagePairConflicts();
  }
  if (n < 2) return plan;

  const std::int64_t page = cache.cachePageBytes();
  const std::int64_t half = page / 2;
  std::vector<bool> relayouted(n, false);

  // Working copy of the matrix (entries are zeroed as pairs are consumed).
  ConflictMatrix m(n);
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = 0; y < n; ++y) {
      m.set(x, y, conflicts.at(x, y));
    }
  }

  // Picks the max-conflict pair among pairs with at least one fresh array;
  // returns false when none remains.
  const auto selectMax = [&](std::size_t& outX, std::size_t& outY) {
    std::int64_t best = -1;
    for (std::size_t x = 0; x < n; ++x) {
      for (std::size_t y = x + 1; y < n; ++y) {
        if (relayouted[x] && relayouted[y]) continue;
        if (m.at(x, y) > best) {
          best = m.at(x, y);
          outX = x;
          outY = y;
        }
      }
    }
    return best >= 0;
  };

  std::size_t x = 0;
  std::size_t y = 0;
  if (!selectMax(x, y)) return plan;
  while (m.at(x, y) > plan.threshold) {
    m.set(x, y, 0);
    m.set(y, x, 0);
    plan.examinedPairs.emplace_back(static_cast<ArrayId>(x),
                                    static_cast<ArrayId>(y));
    if (eligible(static_cast<ArrayId>(x), static_cast<ArrayId>(y)) &&
        limits.fits(static_cast<ArrayId>(x)) &&
        limits.fits(static_cast<ArrayId>(y))) {
      const auto opposite = [&](std::int64_t phase) {
        return phase == 0 ? half : std::int64_t{0};
      };
      if (relayouted[x] && !relayouted[y]) {
        plan.transforms[y] = LayoutTransform::interleave(
            page, opposite(plan.transforms[x].phase()));
        relayouted[y] = true;
      } else if (relayouted[y] && !relayouted[x]) {
        plan.transforms[x] = LayoutTransform::interleave(
            page, opposite(plan.transforms[y].phase()));
        relayouted[x] = true;
      } else if (!relayouted[x] && !relayouted[y]) {
        plan.transforms[x] = LayoutTransform::interleave(page, 0);
        plan.transforms[y] = LayoutTransform::interleave(page, half);
        relayouted[x] = true;
        relayouted[y] = true;
      }
      // Both already re-layouted: their layouts were fixed by pairs with
      // higher conflict counts; leave them as-is (paper Fig. 5).
    }
    if (!selectMax(x, y)) break;
  }
  return plan;
}

PairEligibility scheduleEligibility(
    const std::vector<std::vector<std::uint32_t>>& corePlans,
    std::span<const Footprint> footprints, std::size_t arrayCount) {
  // Collect eligible unordered pairs into a flat hash set of packed
  // keys. Contains-only: the set is populated here and then queried by
  // the returned predicate — never iterated — so hash order cannot leak
  // into any result (pinned against a std::set oracle by
  // EligibilityOrderInsensitive in tests/layout/relayout_test.cpp).
  // LINT-ALLOW(unordered-container): contains-only pair set, never iterated; oracle-tested
  auto packed = std::make_shared<std::unordered_set<std::uint64_t>>();
  const auto addPairs = [&](const std::vector<ArrayId>& a,
                            const std::vector<ArrayId>& b) {
    for (const ArrayId x : a) {
      for (const ArrayId y : b) {
        if (x == y) continue;
        const std::uint64_t lo = std::min(x, y);
        const std::uint64_t hi = std::max(x, y);
        packed->insert(lo * arrayCount + hi);
      }
    }
  };
  for (const auto& plan : corePlans) {
    for (std::size_t i = 0; i < plan.size(); ++i) {
      check(plan[i] < footprints.size(),
            "scheduleEligibility: process id out of range");
      const auto arrays = footprints[plan[i]].arrays();
      // Arrays within the same process compete with each other.
      addPairs(arrays, arrays);
      // Arrays of successively scheduled processes compete.
      if (i + 1 < plan.size()) {
        addPairs(arrays, footprints[plan[i + 1]].arrays());
      }
    }
  }
  return [packed, arrayCount](ArrayId x, ArrayId y) {
    if (x == y) return false;
    const std::uint64_t lo = std::min(x, y);
    const std::uint64_t hi = std::max(x, y);
    return packed->contains(lo * arrayCount + hi);
  };
}

}  // namespace laps

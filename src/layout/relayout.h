#pragma once
/// \file relayout.h
/// \brief The greedy array re-layout selection of paper Fig. 5.
///
/// The algorithm repeatedly picks the pair of arrays with the highest
/// conflict count; if the pair is "eligible" (the arrays actually compete
/// on a core: accessed by the same process or by two processes scheduled
/// back-to-back on one core) the arrays receive interleaved layouts with
/// opposite phases so they can no longer conflict. It stops when the best
/// remaining pair is below the threshold T (default: the mean conflict
/// count over all pairs).

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "cache/config.h"
#include "layout/conflict.h"
#include "layout/transform.h"

namespace laps {

/// Predicate deciding whether a pair of arrays competes on a core.
using PairEligibility = std::function<bool(ArrayId, ArrayId)>;

/// Outcome of the Fig. 5 selection.
struct RelayoutPlan {
  /// Per-array transform (identity where untouched); indexed by ArrayId.
  std::vector<LayoutTransform> transforms;
  /// The threshold T the run used.
  std::int64_t threshold = 0;
  /// Pairs examined in order (diagnostics).
  std::vector<std::pair<ArrayId, ArrayId>> examinedPairs;
  /// Number of arrays that received a non-identity layout.
  [[nodiscard]] std::size_t relayoutCount() const;
};

/// Size guard for the interleave transform (engineering refinement over
/// the paper, documented in docs/ARCHITECTURE.md §5): an interleaved
/// array occupies
/// only half of the cache sets, so the transform is counter-productive
/// for arrays whose accessed working set exceeds half the cache — they
/// would thrash against themselves. Arrays above the limit keep their
/// identity layout.
struct RelayoutLimits {
  /// Accessed bytes per array (indexed by ArrayId); empty disables the
  /// guard.
  std::vector<std::int64_t> arrayFootprintBytes;
  /// Maximum footprint eligible for transformation (typically
  /// cache size / 2); 0 disables the guard.
  std::int64_t maxFootprintBytes = 0;

  [[nodiscard]] bool fits(ArrayId array) const {
    if (maxFootprintBytes <= 0 || arrayFootprintBytes.empty()) return true;
    return arrayFootprintBytes.at(array) <= maxFootprintBytes;
  }
};

/// Runs the Fig. 5 greedy selection.
/// \param conflicts   pairwise conflict matrix (not modified)
/// \param cache       supplies the cache page size for the transforms
/// \param eligible    pair competition predicate; pass alwaysEligible()
///                    to consider every pair
/// \param thresholdOverride  use a fixed T instead of the mean
/// \param limits      working-set size guard (see RelayoutLimits)
[[nodiscard]] RelayoutPlan planRelayout(
    const ConflictMatrix& conflicts, const CacheConfig& cache,
    const PairEligibility& eligible,
    std::optional<std::int64_t> thresholdOverride = std::nullopt,
    const RelayoutLimits& limits = {});

/// Eligibility that accepts every pair.
[[nodiscard]] PairEligibility alwaysEligible();

/// Builds the paper's eligibility relation from a per-core schedule:
/// arrays are eligible when some process touches both, or when two
/// processes scheduled successively on the same core touch one each.
/// \param corePlans   per-core ordered process lists (the LS plan)
/// \param footprints  per-process footprints (indexed by ProcessId)
/// \param arrayCount  total number of arrays
[[nodiscard]] PairEligibility scheduleEligibility(
    const std::vector<std::vector<std::uint32_t>>& corePlans,
    std::span<const Footprint> footprints, std::size_t arrayCount);

}  // namespace laps

#include "layout/conflict.h"

#include "util/error.h"

namespace laps {

std::vector<std::int64_t> setOccupancy(const IntervalSet& byteIntervals,
                                       const CacheConfig& cache) {
  const std::int64_t line = cache.lineBytes;
  const std::int64_t sets = cache.numSets();
  // First collapse byte intervals to distinct line indices (coalesced so a
  // line straddled by two intervals is counted once).
  IntervalSet::Builder lineBuilder(byteIntervals.pieceCount());
  for (const Interval& iv : byteIntervals.pieces()) {
    lineBuilder.add(iv.lo / line, (iv.hi - 1) / line + 1);
  }
  const IntervalSet lines = lineBuilder.build();

  std::vector<std::int64_t> occupancy(static_cast<std::size_t>(sets), 0);
  for (const Interval& iv : lines.pieces()) {
    const std::int64_t count = iv.length();
    const std::int64_t full = count / sets;  // whole wraps touch every set
    if (full > 0) {
      for (auto& o : occupancy) o += full;
    }
    const std::int64_t rest = count % sets;
    std::int64_t s = iv.lo % sets;
    for (std::int64_t k = 0; k < rest; ++k) {
      occupancy[static_cast<std::size_t>(s)] += 1;
      s = (s + 1) % sets;
    }
  }
  return occupancy;
}

ConflictMatrix::ConflictMatrix(std::size_t n) : n_(n), cells_(n * n, 0) {}

std::size_t ConflictMatrix::idx(std::size_t x, std::size_t y) const {
  check(x < n_ && y < n_, "ConflictMatrix: index out of range");
  return x * n_ + y;
}

std::int64_t ConflictMatrix::at(std::size_t x, std::size_t y) const {
  return cells_[idx(x, y)];
}

void ConflictMatrix::set(std::size_t x, std::size_t y, std::int64_t value) {
  cells_[idx(x, y)] = value;
}

ConflictMatrix ConflictMatrix::compute(
    const ArrayTable& arrays, std::span<const Footprint> processFootprints,
    const AddressSpace& space, const CacheConfig& cache,
    std::span<const std::int64_t> arrayRefCounts) {
  const std::size_t n = arrays.size();
  // Union footprint of each array over all processes.
  std::vector<IntervalSet> elements(n);
  for (const Footprint& fp : processFootprints) {
    for (const auto& [id, set] : fp.perArray()) {
      elements[id] = elements[id].unite(set);
    }
  }
  // Per-array set occupancy under the current layout, plus reference
  // density (average dynamic references per distinct line).
  std::vector<std::vector<std::int64_t>> occupancy(n);
  std::vector<std::int64_t> density(n, 1);
  for (std::size_t a = 0; a < n; ++a) {
    occupancy[a] = setOccupancy(
        space.byteIntervals(static_cast<ArrayId>(a), elements[a]), cache);
    if (!arrayRefCounts.empty()) {
      std::int64_t lines = 0;
      for (const auto o : occupancy[a]) lines += o;
      density[a] = std::max<std::int64_t>(
          1, arrayRefCounts[a] / std::max<std::int64_t>(1, lines));
    }
  }

  ConflictMatrix m(n);
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = x + 1; y < n; ++y) {
      std::int64_t conflicts = 0;
      for (std::size_t s = 0; s < occupancy[x].size(); ++s) {
        conflicts += occupancy[x][s] * occupancy[y][s];
      }
      conflicts *= std::min(density[x], density[y]);
      m.set(x, y, conflicts);
      m.set(y, x, conflicts);
    }
  }
  return m;
}

std::int64_t ConflictMatrix::averagePairConflicts() const {
  if (n_ < 2) return 0;
  std::int64_t total = 0;
  std::int64_t pairs = 0;
  for (std::size_t x = 0; x < n_; ++x) {
    for (std::size_t y = x + 1; y < n_; ++y) {
      total += at(x, y);
      ++pairs;
    }
  }
  return total / pairs;
}

Table ConflictMatrix::toTable(const ArrayTable& arrays) const {
  std::vector<std::string> headers{""};
  for (std::size_t y = 0; y < n_; ++y) headers.push_back(arrays.at(static_cast<ArrayId>(y)).name);
  Table t(std::move(headers));
  for (std::size_t x = 0; x < n_; ++x) {
    t.row().cell(arrays.at(static_cast<ArrayId>(x)).name);
    for (std::size_t y = 0; y < n_; ++y) {
      t.cell(at(x, y));
    }
  }
  return t;
}

}  // namespace laps

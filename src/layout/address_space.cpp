#include "layout/address_space.h"

#include "util/error.h"

namespace laps {
namespace {

std::uint64_t alignUp(std::uint64_t value, std::int64_t align) {
  const auto a = static_cast<std::uint64_t>(align);
  return (value + a - 1) / a * a;
}

}  // namespace

AddressSpace::AddressSpace(const ArrayTable& arrays,
                           AddressSpaceOptions options)
    : options_(options) {
  check(options_.alignBytes > 0, "AddressSpace: alignBytes must be positive");
  slots_.reserve(arrays.size());
  for (const ArrayInfo& info : arrays.all()) {
    Slot slot;
    slot.naturalBytes = info.sizeBytes();
    slot.elemSize = info.elemSize;
    slots_.push_back(slot);
  }
  repack();
}

void AddressSpace::repack() {
  std::uint64_t cursor = options_.dataBase;
  for (Slot& slot : slots_) {
    std::int64_t align = options_.alignBytes;
    if (!slot.transform.isIdentity()) {
      // Fig. 4 requires page-aligned bases for the phase guarantee.
      align = std::max(align, slot.transform.pageBytes());
    }
    cursor = alignUp(cursor, align);
    slot.base = cursor;
    cursor += static_cast<std::uint64_t>(
        slot.transform.spanBytes(slot.naturalBytes));
  }
  end_ = cursor;
}

void AddressSpace::setTransform(ArrayId array, const LayoutTransform& transform) {
  check(array < slots_.size(), "AddressSpace::setTransform: unknown array");
  slots_[array].transform = transform;
  repack();
}

const LayoutTransform& AddressSpace::transformOf(ArrayId array) const {
  check(array < slots_.size(), "AddressSpace::transformOf: unknown array");
  return slots_[array].transform;
}

std::uint64_t AddressSpace::baseOf(ArrayId array) const {
  check(array < slots_.size(), "AddressSpace::baseOf: unknown array");
  return slots_[array].base;
}

std::int64_t AddressSpace::spanOf(ArrayId array) const {
  check(array < slots_.size(), "AddressSpace::spanOf: unknown array");
  return slots_[array].transform.spanBytes(slots_[array].naturalBytes);
}

IntervalSet AddressSpace::byteIntervals(ArrayId array,
                                        const IntervalSet& elements) const {
  check(array < slots_.size(), "AddressSpace::byteIntervals: unknown array");
  const Slot& slot = slots_[array];
  const auto base = static_cast<std::int64_t>(slot.base);
  IntervalSet::Builder builder(elements.pieceCount());
  for (const Interval& iv : elements.pieces()) {
    const std::int64_t loByte = iv.lo * slot.elemSize;
    const std::int64_t hiByte = iv.hi * slot.elemSize;
    if (slot.transform.isIdentity()) {
      builder.add(base + loByte, base + hiByte);
      continue;
    }
    // The transform is affine within each half-page chunk: split the byte
    // range at chunk boundaries and shift each piece.
    const std::int64_t half = slot.transform.pageBytes() / 2;
    std::int64_t cursor = loByte;
    while (cursor < hiByte) {
      const std::int64_t chunk = cursor / half;
      const std::int64_t chunkEnd = (chunk + 1) * half;
      const std::int64_t pieceEnd = std::min(hiByte, chunkEnd);
      const std::int64_t shifted = slot.transform.apply(cursor);
      builder.add(base + shifted, base + shifted + (pieceEnd - cursor));
      cursor = pieceEnd;
    }
  }
  return builder.build();
}

}  // namespace laps

#pragma once
/// \file transform.h
/// \brief The data re-layout transformation of paper Fig. 4.
///
/// A transformed array is split into chunks of half a cache page
/// (C = cache size / associativity) and the chunks are spread one cache
/// page apart:
///     addr'(e) = 2·addr(e) − addr(e) mod (C/2) + b,   b ∈ {0, C/2}.
/// Writing addr = q·(C/2) + r this is addr' = q·C + r + b, i.e. chunk q
/// occupies byte range [qC + b, qC + b + C/2). Arrays with different b
/// therefore occupy disjoint set-index ranges and can never conflict —
/// at the price of doubling the array's address span.

#include <cstdint>

#include "util/error.h"

namespace laps {

/// Per-array address transformation (identity or half-page interleave).
class LayoutTransform {
 public:
  /// Identity layout (the default for every array).
  LayoutTransform() = default;

  /// Interleaved layout with cache page \p pageBytes and phase \p phase
  /// (must be 0 or pageBytes/2).
  static LayoutTransform interleave(std::int64_t pageBytes, std::int64_t phase);

  [[nodiscard]] bool isIdentity() const { return pageBytes_ == 0; }
  [[nodiscard]] std::int64_t pageBytes() const { return pageBytes_; }
  [[nodiscard]] std::int64_t phase() const { return phase_; }

  /// Maps a byte offset relative to the array base. The array base must
  /// itself be aligned to pageBytes for the no-conflict guarantee.
  [[nodiscard]] std::int64_t apply(std::int64_t byteOffset) const {
    if (pageBytes_ == 0) return byteOffset;
    const std::int64_t half = pageBytes_ / 2;
    return 2 * byteOffset - byteOffset % half + phase_;
  }

  /// Bytes of address space the transformed array needs when its natural
  /// size is \p naturalBytes (≈ 2x for interleaved layouts).
  [[nodiscard]] std::int64_t spanBytes(std::int64_t naturalBytes) const {
    if (pageBytes_ == 0) return naturalBytes;
    const std::int64_t half = pageBytes_ / 2;
    const std::int64_t chunks = (naturalBytes + half - 1) / half;
    return chunks * pageBytes_;
  }

  friend bool operator==(const LayoutTransform&, const LayoutTransform&) = default;

 private:
  LayoutTransform(std::int64_t pageBytes, std::int64_t phase)
      : pageBytes_(pageBytes), phase_(phase) {}

  std::int64_t pageBytes_ = 0;  // 0 = identity
  std::int64_t phase_ = 0;
};

}  // namespace laps

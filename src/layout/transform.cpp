#include "layout/transform.h"

namespace laps {

LayoutTransform LayoutTransform::interleave(std::int64_t pageBytes,
                                            std::int64_t phase) {
  check(pageBytes > 0 && pageBytes % 2 == 0,
        "LayoutTransform: pageBytes must be positive and even");
  check(phase == 0 || phase == pageBytes / 2,
        "LayoutTransform: phase must be 0 or pageBytes/2");
  return LayoutTransform(pageBytes, phase);
}

}  // namespace laps

#include "cache/config.h"

#include <sstream>

#include "util/error.h"

namespace laps {
namespace {

bool isPowerOfTwo(std::int64_t x) { return x > 0 && (x & (x - 1)) == 0; }

}  // namespace

void CacheConfig::validate() const {
  check(sizeBytes > 0, "CacheConfig: sizeBytes must be positive");
  check(assoc > 0, "CacheConfig: assoc must be positive");
  check(lineBytes > 0, "CacheConfig: lineBytes must be positive");
  check(hitLatencyCycles >= 0, "CacheConfig: negative hit latency");
  check(isPowerOfTwo(lineBytes), "CacheConfig: lineBytes must be a power of two");
  check(sizeBytes % (assoc * lineBytes) == 0,
        "CacheConfig: sizeBytes must be divisible by assoc*lineBytes");
  check(isPowerOfTwo(numSets()), "CacheConfig: number of sets must be a power of two");
}

std::string CacheConfig::toString() const {
  std::ostringstream os;
  os << sizeBytes / 1024 << "KB " << assoc << "-way " << lineBytes
     << "B lines (" << numSets() << " sets, page " << cachePageBytes()
     << "B)";
  return os.str();
}

}  // namespace laps

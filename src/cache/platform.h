#pragma once
/// \file platform.h
/// \brief Composable platform descriptor: cores × interconnect ×
/// coherence, replacing MpsocConfig's accreted optional toggles.
///
/// Before this redesign the shared-level shape was spread over two
/// independent optionals (`MpsocConfig::sharedL2`, `MpsocConfig::bus`)
/// whose four combinations were validated in the engine, and adding the
/// NoC would have made that eight. PlatformConfig collapses the axes
/// into one descriptor validated eagerly in one place:
///
///   interconnect  Flat | Bus | Mesh | Xbar   (how misses travel)
///   coherence     Broadcast | Directory      (how inclusion recalls)
///   sharedL2      optional banked inclusive L2 (orthogonal to both)
///
/// The legacy fields still work: MpsocConfig::resolvedPlatform() maps
/// them onto the equivalent descriptor (a thin deprecation shim), so
/// every existing call site and committed baseline stays byte-identical
/// — setting both surfaces at once is an eager error, not a silent
/// precedence rule.

#include <optional>
#include <string_view>

#include "cache/bus.h"
#include "cache/noc.h"
#include "cache/shared_l2.h"

namespace laps {

/// How misses travel from a core to the shared levels and memory.
enum class InterconnectKind {
  Flat,  ///< fixed latency, no contention (the paper's abstraction)
  Bus,   ///< single shared split-transaction bus (cache/bus.h)
  Mesh,  ///< 2D mesh NoC, XY routing (cache/noc.h)
  Xbar,  ///< single-stage crossbar NoC (cache/noc.h)
};

/// How the inclusive shared L2 recalls victim lines from private L1s.
enum class CoherenceKind {
  Broadcast,  ///< probe every L1 (the pre-directory protocol)
  Directory,  ///< targeted probes via a sharer bitmask (cache/directory.h)
};

[[nodiscard]] constexpr std::string_view interconnectKindName(
    InterconnectKind kind) {
  switch (kind) {
    case InterconnectKind::Flat: return "flat";
    case InterconnectKind::Bus: return "bus";
    case InterconnectKind::Mesh: return "mesh";
    case InterconnectKind::Xbar: return "xbar";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view coherenceKindName(
    CoherenceKind kind) {
  switch (kind) {
    case CoherenceKind::Broadcast: return "broadcast";
    case CoherenceKind::Directory: return "directory";
  }
  return "?";
}

/// The platform's shared-level topology (see file comment). The default
/// descriptor is the paper's platform: flat memory, broadcast recalls,
/// no shared L2.
struct PlatformConfig {
  InterconnectKind interconnect = InterconnectKind::Flat;
  CoherenceKind coherence = CoherenceKind::Broadcast;
  /// Banked inclusive shared L2 between the L1s and memory.
  std::optional<SharedL2Config> sharedL2;
  /// Bus timing; consumed only when interconnect == Bus.
  BusConfig bus{};
  /// NoC geometry and timing; consumed only when interconnect is
  /// Mesh or Xbar.
  NocConfig noc{};

  [[nodiscard]] bool nocEnabled() const {
    return interconnect == InterconnectKind::Mesh ||
           interconnect == InterconnectKind::Xbar;
  }
  [[nodiscard]] bool busEnabled() const {
    return interconnect == InterconnectKind::Bus;
  }
  /// The NocTopologyKind of a NoC interconnect; nocEnabled() required.
  [[nodiscard]] NocTopologyKind nocKind() const;

  /// Validates the whole descriptor eagerly: each enabled component's
  /// own invariants, plus the cross-field rules (Directory coherence
  /// requires a shared L2 to own the directory and a NoC to route the
  /// targeted invalidations over, and at most 64 cores for the sharer
  /// bitmask). Throws laps::Error.
  void validate(std::size_t coreCount) const;
};

}  // namespace laps

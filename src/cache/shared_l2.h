#pragma once
/// \file shared_l2.h
/// \brief Shared, banked, inclusive second-level cache.
///
/// The paper's platform (Table 2) has only private L1s over off-chip
/// memory; SharedL2 is the optional on-chip level the platform-realism
/// work adds (docs/ARCHITECTURE.md §7). It is a single cache shared by
/// every core, split into address-interleaved banks — bank = line index
/// mod bankCount — each bank an independent SetAssocCache with its own
/// MSHR-less occupancy calendar: one request occupies its bank for
/// bankBusyCycles, and a second request to the same bank queues
/// (BusyTimeline), so bank conflicts between cores add latency even on
/// L2 hits.
///
/// Inclusion: every L1-resident *data* line is also L2-resident. When a
/// bank evicts a line, the owning MemoryHierarchy back-invalidates that
/// line in every registered L1 data cache. Code lines are read-only and
/// are exempt (no coherence to maintain; see ARCHITECTURE.md §7).

#include <cstdint>
#include <optional>
#include <vector>

#include "cache/bus.h"
#include "cache/cache.h"
#include "cache/config.h"

namespace laps {

/// Geometry and timing of the shared L2. Sizes are totals over all
/// banks; each bank is sizeBytes/bankCount large with the same
/// associativity and line size.
struct SharedL2Config {
  std::int64_t sizeBytes = 256 * 1024;  ///< total capacity
  std::int64_t assoc = 8;               ///< ways per set (every bank)
  std::int64_t lineBytes = 32;          ///< must match the L1 line size
  std::int64_t bankCount = 8;           ///< address-interleaved banks
  std::int64_t hitLatencyCycles = 8;    ///< tag+data access on a hit
  std::int64_t bankBusyCycles = 4;      ///< per-request bank occupancy

  /// Geometry of one bank.
  [[nodiscard]] CacheConfig bankConfig() const;

  /// The whole L2 viewed as one cache (set space of the contention-aware
  /// scheduler's conflict analysis).
  [[nodiscard]] CacheConfig aggregateConfig() const;

  /// Throws laps::Error on inconsistent geometry (non-positive fields,
  /// capacity not divisible into banks, invalid bank geometry).
  void validate() const;
};

/// Outcome of one L2 access (see SharedL2::access).
struct L2AccessResult {
  AccessOutcome outcome = AccessOutcome::Hit;
  std::int64_t bankWaitCycles = 0;  ///< queueing behind the bank
  /// Line displaced by a miss's fill: the hierarchy back-invalidates it
  /// in the L1s (inclusion) and writes it back when dirty.
  std::optional<std::uint64_t> evictedLineAddr;
  bool evictedLineDirty = false;
};

/// The shared banked L2 (see file comment). Latency composition and
/// back-invalidation live in MemoryHierarchy; this class owns the banks,
/// their calendars and the statistics.
class SharedL2 {
 public:
  explicit SharedL2(const SharedL2Config& config);

  /// One lookup at absolute cycle \p now. Misses allocate (fills arrive
  /// clean; dirtiness flows in through writeback()).
  L2AccessResult access(std::uint64_t addr, std::int64_t now);

  /// An L1 evicted a dirty copy of \p addr's line: mark the L2 copy
  /// dirty so its eventual eviction counts as an off-chip write-back.
  /// Returns false — and does nothing — when the line is absent (the
  /// hierarchy then routes the write-back off chip instead).
  bool writeback(std::uint64_t addr);

  /// True when \p addr's line is L2-resident (no side effects).
  [[nodiscard]] bool probe(std::uint64_t addr) const;

  /// Bank index of \p addr (line-interleaved).
  [[nodiscard]] std::int64_t bankOf(std::uint64_t addr) const;

  /// Statistics summed over banks.
  [[nodiscard]] CacheStats stats() const;

  /// Total cycles requests spent queueing behind busy banks.
  [[nodiscard]] std::uint64_t bankWaitCycles() const { return bankWait_; }

  void resetStats();

  /// Prunes every bank calendar (see BusyTimeline::retireBefore).
  void retireBefore(std::int64_t cycle);

  [[nodiscard]] const SharedL2Config& config() const { return config_; }

 private:
  /// Banks see a folded address space (line index divided by bankCount)
  /// so consecutive lines of one bank map to consecutive sets.
  [[nodiscard]] std::uint64_t fold(std::uint64_t addr) const;
  [[nodiscard]] std::uint64_t unfold(std::uint64_t foldedLineAddr,
                                     std::int64_t bank) const;

  SharedL2Config config_;
  std::vector<SetAssocCache> banks_;
  std::vector<BusyTimeline> calendars_;
  std::uint64_t bankWait_ = 0;
};

}  // namespace laps

#include "cache/shared_l2.h"

#include "util/error.h"

namespace laps {

CacheConfig SharedL2Config::bankConfig() const {
  CacheConfig bank;
  bank.sizeBytes = sizeBytes / bankCount;
  bank.assoc = assoc;
  bank.lineBytes = lineBytes;
  bank.hitLatencyCycles = hitLatencyCycles;
  return bank;
}

CacheConfig SharedL2Config::aggregateConfig() const {
  CacheConfig whole;
  whole.sizeBytes = sizeBytes;
  whole.assoc = assoc;
  whole.lineBytes = lineBytes;
  whole.hitLatencyCycles = hitLatencyCycles;
  return whole;
}

void SharedL2Config::validate() const {
  check(bankCount >= 1, "SharedL2Config: bankCount must be >= 1");
  check(sizeBytes % bankCount == 0,
        "SharedL2Config: sizeBytes must divide evenly into banks");
  check(hitLatencyCycles >= 1,
        "SharedL2Config: hitLatencyCycles must be >= 1");
  check(bankBusyCycles >= 1, "SharedL2Config: bankBusyCycles must be >= 1");
  bankConfig().validate();
}

SharedL2::SharedL2(const SharedL2Config& config) : config_(config) {
  config_.validate();
  const CacheConfig bank = config_.bankConfig();
  banks_.reserve(static_cast<std::size_t>(config_.bankCount));
  for (std::int64_t b = 0; b < config_.bankCount; ++b) {
    banks_.emplace_back(bank);
  }
  calendars_.resize(static_cast<std::size_t>(config_.bankCount));
}

std::int64_t SharedL2::bankOf(std::uint64_t addr) const {
  return static_cast<std::int64_t>(
      (addr / static_cast<std::uint64_t>(config_.lineBytes)) %
      static_cast<std::uint64_t>(config_.bankCount));
}

std::uint64_t SharedL2::fold(std::uint64_t addr) const {
  const auto line = static_cast<std::uint64_t>(config_.lineBytes);
  const auto banks = static_cast<std::uint64_t>(config_.bankCount);
  return (addr / line / banks) * line + addr % line;
}

std::uint64_t SharedL2::unfold(std::uint64_t foldedLineAddr,
                               std::int64_t bank) const {
  const auto line = static_cast<std::uint64_t>(config_.lineBytes);
  const auto banks = static_cast<std::uint64_t>(config_.bankCount);
  return (foldedLineAddr / line * banks + static_cast<std::uint64_t>(bank)) *
         line;
}

L2AccessResult SharedL2::access(std::uint64_t addr, std::int64_t now) {
  const std::int64_t bank = bankOf(addr);
  const auto b = static_cast<std::size_t>(bank);

  L2AccessResult result;
  const std::int64_t start =
      calendars_[b].reserve(now, config_.bankBusyCycles);
  result.bankWaitCycles = start - now;
  bankWait_ += static_cast<std::uint64_t>(result.bankWaitCycles);

  EvictionInfo evicted;
  // Fills arrive clean: dirtiness only flows in through writeback().
  result.outcome = banks_[b].access(fold(addr), /*isWrite=*/false, &evicted);
  if (evicted.evicted) {
    result.evictedLineAddr = unfold(evicted.lineAddr, bank);
    result.evictedLineDirty = evicted.dirty;
  }
  return result;
}

bool SharedL2::writeback(std::uint64_t addr) {
  const auto b = static_cast<std::size_t>(bankOf(addr));
  const std::uint64_t folded = fold(addr);
  if (!banks_[b].probe(folded)) return false;
  // Merge the dirty bit without perturbing statistics or LRU order:
  // touch() keeps the newer stamp, and stamp 0 never wins.
  banks_[b].touch(folded, /*isWrite=*/true, /*lastUseStamp=*/0);
  return true;
}

bool SharedL2::probe(std::uint64_t addr) const {
  const auto b = static_cast<std::size_t>(bankOf(addr));
  return banks_[b].probe(fold(addr));
}

CacheStats SharedL2::stats() const {
  CacheStats total;
  for (const SetAssocCache& bank : banks_) total.accumulate(bank.stats());
  return total;
}

void SharedL2::resetStats() {
  for (SetAssocCache& bank : banks_) bank.resetStats();
  bankWait_ = 0;
}

void SharedL2::retireBefore(std::int64_t cycle) {
  for (BusyTimeline& calendar : calendars_) calendar.retireBefore(cycle);
}

}  // namespace laps

#include "cache/platform.h"

#include "util/error.h"

namespace laps {

NocTopologyKind PlatformConfig::nocKind() const {
  check(nocEnabled(), "PlatformConfig: interconnect has no NoC topology");
  return interconnect == InterconnectKind::Mesh ? NocTopologyKind::Mesh
                                                : NocTopologyKind::Xbar;
}

void PlatformConfig::validate(std::size_t coreCount) const {
  check(coreCount >= 1, "PlatformConfig: core count must be positive");
  if (sharedL2) sharedL2->validate();
  if (busEnabled()) bus.validate();
  if (nocEnabled()) noc.validate(static_cast<std::int64_t>(coreCount));
  if (coherence == CoherenceKind::Directory) {
    check(sharedL2.has_value(),
          "PlatformConfig: Directory coherence requires a shared L2 "
          "(the directory tracks its inclusive residents)");
    check(nocEnabled(),
          "PlatformConfig: Directory coherence requires a Mesh or Xbar "
          "interconnect to route targeted invalidations over");
    check(coreCount <= 64,
          "PlatformConfig: Directory coherence supports at most 64 cores");
  }
}

}  // namespace laps

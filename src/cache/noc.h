#pragma once
/// \file noc.h
/// \brief On-chip interconnect model: mesh / crossbar topology with
/// integer per-hop latency and per-link contention calendars.
///
/// The paper's platform (and this library's Bus extension) treats every
/// core as equidistant from the shared levels: a miss costs the same
/// from any tile. Real MPSoCs route traffic over a network-on-chip —
/// per-hop latency, per-link bandwidth, and congestion that depends on
/// which tiles are talking. This file models that in the spirit of
/// McSimA+'s crossbar/directory timing cores, split in two:
///
///  * NocTopology — the pure geometry oracle: hop distances (Manhattan
///    on a mesh, 0/1 on a crossbar) and the center-out spiral tile
///    order the region-growing initial mapping walks. Stateless and
///    integer-only, so the schedulers can consult it at decision time
///    without touching simulation state;
///  * NocFabric — the timed network: one BusyTimeline calendar per
///    directed link (the bus's gap-filling machinery, reused verbatim),
///    XY dimension-order routing on the mesh, one output port per
///    destination on the crossbar. A demand transfer books every link
///    on its route and returns hop latency plus queueing wait; a posted
///    transfer (write-back, invalidation) occupies links without
///    stalling its requester — exactly the bus's demand/posted split.
///
/// Disabled-equivalence: with hopCycles == 0 and linkWidthBytes == 0
/// (the defaults) every transfer is free and bookless, so a platform
/// with a zero-cost NoC is bit-identical to the flat one — the
/// differential tests in tests/cache/noc_test.cpp pin it, like PR 3's
/// hierarchy differentials.

#include <cstdint>
#include <vector>

#include "cache/bus.h"

namespace laps {

/// Interconnect geometry kinds a NocTopology can take. The platform
/// descriptor (cache/platform.h) selects one via InterconnectKind.
enum class NocTopologyKind {
  Mesh,  ///< 2D mesh, XY routing, Manhattan hop distance
  Xbar,  ///< single-stage crossbar: every pair one hop apart
};

/// On-chip network configuration. All-zero timing (the default) makes
/// every transfer free: the NoC adds no latency and books no link, so
/// results are bit-identical to the flat platform.
struct NocConfig {
  /// Mesh columns; 0 derives the squarest grid holding every node
  /// (integer ceil-sqrt). Ignored by the crossbar.
  std::int64_t meshCols = 0;
  /// Latency of one link traversal. 0 = free routing.
  std::int64_t hopCycles = 0;
  /// Link data width; a transfer occupies each route link for
  /// ceil(lineBytes / linkWidthBytes) cycles. 0 = infinite bandwidth
  /// (no calendars, no queueing).
  std::int64_t linkWidthBytes = 0;
  /// Resume penalty per hop between the tile a process last ran on and
  /// the tile resuming it (its warm state moves across the die),
  /// charged by the engine outside the quantum like switch overhead.
  /// 0 = migrations stay free, the pre-NoC behavior.
  std::int64_t migrationHopCycles = 0;

  /// Throws laps::Error on negative fields or a column count that
  /// cannot tile \p nodeCount nodes.
  void validate(std::int64_t nodeCount) const;
};

/// Pure geometry oracle of one interconnect instance (see file
/// comment). Copyable and cheap; safe to hand to schedulers.
class NocTopology {
 public:
  NocTopology(NocTopologyKind kind, std::int64_t nodeCount,
              std::int64_t meshCols = 0);

  [[nodiscard]] NocTopologyKind kind() const { return kind_; }
  [[nodiscard]] std::int64_t nodeCount() const { return nodeCount_; }
  [[nodiscard]] std::int64_t cols() const { return cols_; }
  [[nodiscard]] std::int64_t rows() const { return rows_; }

  /// Hop distance between nodes \p a and \p b: Manhattan on the mesh,
  /// 0/1 on the crossbar. Symmetric; obeys the triangle inequality
  /// (property-tested in tests/cache/noc_test.cpp).
  [[nodiscard]] std::int64_t hops(std::int64_t a, std::int64_t b) const;

  /// Network diameter: the maximum hops() over any node pair.
  [[nodiscard]] std::int64_t maxHops() const;

  /// Total hop distance from \p node to every node — the centrality
  /// measure the region-growing mapping prefers small values of.
  [[nodiscard]] std::int64_t eccentricity(std::int64_t node) const;

  /// Center-out spiral visiting order of every node (a permutation of
  /// [0, nodeCount)): the walk the region-growing initial mapping of
  /// buildLocalityPlan takes, so early (hot) placements land on central
  /// tiles with small average distance to everything. The crossbar is
  /// distance-degenerate: id order.
  [[nodiscard]] std::vector<std::int64_t> spiralOrder() const;

 private:
  NocTopologyKind kind_;
  std::int64_t nodeCount_;
  std::int64_t cols_ = 1;
  std::int64_t rows_ = 1;
};

/// Counters accumulated by the fabric.
struct NocStats {
  std::uint64_t transfers = 0;        ///< demand transfers routed
  std::uint64_t postedTransfers = 0;  ///< posted transfers routed
  std::uint64_t hopCycles = 0;        ///< summed per-hop latency (demand)
  std::uint64_t linkWaitCycles = 0;   ///< summed link queueing (demand)
};

/// The timed network: per-directed-link BusyTimeline calendars over a
/// NocTopology (see file comment).
class NocFabric {
 public:
  /// \p lineBytes sizes one transfer (a cache line or its request).
  NocFabric(const NocConfig& config, std::int64_t nodeCount,
            std::int64_t lineBytes, NocTopologyKind kind);

  /// Routes one demand transfer \p src -> \p dst issued at \p now:
  /// books every link on the route and returns the total latency
  /// (hops * hopCycles + queueing wait). 0 when src == dst.
  std::int64_t demandTransfer(std::int64_t src, std::int64_t dst,
                              std::int64_t now);

  /// Routes one posted transfer (write-back, targeted invalidation):
  /// occupies the route's links — delaying later demand traffic — but
  /// the requester does not stall, so no latency is returned.
  void postedTransfer(std::int64_t src, std::int64_t dst, std::int64_t now);

  /// Prunes every link calendar (see BusyTimeline::retireBefore).
  void retireBefore(std::int64_t cycle);

  [[nodiscard]] const NocStats& stats() const { return stats_; }
  void resetStats() { stats_ = NocStats{}; }

  /// True when transfers can cost cycles (non-zero hop latency or
  /// finite link width) — i.e. when the fabric is not the zero-cost
  /// bit-identity configuration.
  [[nodiscard]] bool timed() const {
    return config_.hopCycles > 0 || occupancyCycles_ > 0;
  }

  [[nodiscard]] const NocTopology& topology() const { return topology_; }
  [[nodiscard]] const NocConfig& config() const { return config_; }

 private:
  /// Shared routing core of both transfer kinds; returns the latency.
  std::int64_t route(std::int64_t src, std::int64_t dst, std::int64_t now,
                     bool demand);
  /// Books one link hop at \p t; returns the cycle the head moves on.
  std::int64_t traverseLink(std::size_t linkId, std::int64_t t,
                            std::int64_t* wait);

  NocConfig config_;
  NocTopology topology_;
  std::int64_t occupancyCycles_ = 0;  ///< per-link cycles of one transfer
  /// Mesh: 4 directed links per node (E, W, S, N); crossbar: one output
  /// port per destination node. Unused edge links stay empty.
  std::vector<BusyTimeline> links_;
  NocStats stats_;
};

}  // namespace laps

#pragma once
/// \file cache.h
/// \brief Set-associative cache model with true-LRU replacement.
///
/// This is the on-chip L1 model of the MPSoC simulator. It is a timing /
/// contents model (tags only, no data), write-allocate + write-back.
/// Cache state deliberately persists across context switches on the same
/// core: that persistence is the mechanism the paper's scheduler exploits.

#include <cstdint>
#include <vector>

#include "cache/config.h"

namespace laps {

/// Outcome of one cache access.
enum class AccessOutcome : std::uint8_t { Hit, Miss };

/// What a miss's fill displaced (see SetAssocCache::access). The shared
/// levels use it to write dirty victims back down and to back-invalidate
/// L1 copies of lines an inclusive L2 evicts.
struct EvictionInfo {
  bool evicted = false;        ///< a valid line was displaced
  bool dirty = false;          ///< ... and it was dirty (write-back)
  std::uint64_t lineAddr = 0;  ///< base byte address of the victim line
};

/// Hit/miss tally of one bulk strided run (see SetAssocCache::accessRun).
struct AccessRunOutcome {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
};

/// Number of consecutive elements of the strided stream addr,
/// addr + strideBytes, ... that fall in the cache line containing addr
/// (INT64_MAX for stride 0). The unit of run-length-encoded cache
/// resolution: all those accesses after the first are guaranteed hits.
[[nodiscard]] std::int64_t lineRunLength(std::uint64_t addr,
                                         std::int64_t strideBytes,
                                         std::int64_t lineBytes);

/// Counters accumulated by a cache instance.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirtyEvictions = 0;  ///< write-backs to memory
  /// Lines dropped by flush() or inclusion back-invalidation
  /// (invalidateLine).
  std::uint64_t invalidations = 0;

  /// Reporting-only rate derived from the final integer counters; never
  /// feeds back into cache or scheduler state.
  // LINT-ALLOW(no-float): presentation-only rate over final integer counters
  [[nodiscard]] double missRate() const {
    if (accesses == 0) return 0.0;
    // LINT-ALLOW(no-float): presentation-only rate over final integer counters
    return static_cast<double>(misses) / static_cast<double>(accesses);
  }

  /// Element-wise sum (aggregation across cores).
  void accumulate(const CacheStats& other);
};

/// A single set-associative, true-LRU, write-back cache.
class SetAssocCache {
 public:
  explicit SetAssocCache(CacheConfig config);

  /// Simulates one access; updates contents, LRU order and statistics.
  /// When \p evicted is non-null it reports the line a miss displaced
  /// (untouched on hits and fill-into-invalid).
  AccessOutcome access(std::uint64_t addr, bool isWrite,
                       EvictionInfo* evicted = nullptr);

  /// Simulates \p count accesses of the strided stream addr,
  /// addr + strideBytes, ... with final state and statistics identical to
  /// \p count access() calls, but resolves each cache line's group of
  /// consecutive accesses with a single tag lookup (one associative
  /// search per line touched instead of one per element).
  AccessRunOutcome accessRun(std::uint64_t addr, std::int64_t strideBytes,
                             std::int64_t count, bool isWrite);

  /// LRU clock (the stamp of the most recent access). The run-length
  /// replay path reads it to compute exact per-access stamps for the
  /// accesses it resolves in bulk.
  [[nodiscard]] std::uint64_t clock() const { return useClock_; }

  /// Accounts \p count accesses that are known to hit without touching
  /// line metadata: bumps the access/hit counters and the LRU clock.
  /// Pair with touch() to re-stamp the lines those accesses would have
  /// touched.
  void bulkHits(std::int64_t count);

  /// Re-stamps the line containing \p addr as used at \p lastUseStamp
  /// (monotone: keeps the line's stamp if it is already newer) and merges
  /// the dirty bit. The line must be resident (throws otherwise); verify
  /// with probe() first.
  void touch(std::uint64_t addr, bool isWrite, std::uint64_t lastUseStamp);

  /// Invalidates everything (dirty lines count as write-backs).
  void flush();

  /// Drops the line containing \p addr if resident (inclusion
  /// back-invalidation from a shared outer level). Counts an
  /// invalidation — and a write-back when the line was dirty — and
  /// returns true when the dropped line was dirty, i.e. when its data
  /// must still go off chip.
  bool invalidateLine(std::uint64_t addr);

  /// True when the line containing \p addr is resident (no side effects).
  [[nodiscard]] bool probe(std::uint64_t addr) const;

  /// Number of valid lines currently resident.
  [[nodiscard]] std::int64_t residentLines() const;

  /// Base byte addresses of every resident line, in set-major way order
  /// (deterministic). Audit/diagnostics only — the inclusion audit
  /// (MemoryHierarchy::auditInclusion) enumerates L1 contents with it;
  /// never called on a model hot path.
  [[nodiscard]] std::vector<std::uint64_t> residentLineAddrs() const;

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  void resetStats() { stats_ = CacheStats{}; }

  [[nodiscard]] const CacheConfig& config() const { return config_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lastUse = 0;  // global stamp for LRU
    bool valid = false;
    bool dirty = false;
  };

  /// Associative search for \p addr's line: returns the hit way, or
  /// nullptr with \p victim set to the replacement candidate (first
  /// invalid way, else true-LRU). The single definition of the victim
  /// policy — access(), accessRun() and touch() all resolve through it.
  Way* lookup(std::uint64_t addr, Way** victim);

  CacheConfig config_;
  std::vector<Way> ways_;  // numSets * assoc, set-major
  CacheStats stats_;
  std::uint64_t useClock_ = 0;
};

}  // namespace laps

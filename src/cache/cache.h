#pragma once
/// \file cache.h
/// \brief Set-associative cache model with true-LRU replacement.
///
/// This is the on-chip L1 model of the MPSoC simulator. It is a timing /
/// contents model (tags only, no data), write-allocate + write-back.
/// Cache state deliberately persists across context switches on the same
/// core: that persistence is the mechanism the paper's scheduler exploits.

#include <cstdint>
#include <vector>

#include "cache/config.h"

namespace laps {

/// Outcome of one cache access.
enum class AccessOutcome : std::uint8_t { Hit, Miss };

/// Counters accumulated by a cache instance.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirtyEvictions = 0;  ///< write-backs to memory
  std::uint64_t invalidations = 0;   ///< lines dropped by flush()

  [[nodiscard]] double missRate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }

  /// Element-wise sum (aggregation across cores).
  void accumulate(const CacheStats& other);
};

/// A single set-associative, true-LRU, write-back cache.
class SetAssocCache {
 public:
  explicit SetAssocCache(CacheConfig config);

  /// Simulates one access; updates contents, LRU order and statistics.
  AccessOutcome access(std::uint64_t addr, bool isWrite);

  /// Invalidates everything (dirty lines count as write-backs).
  void flush();

  /// True when the line containing \p addr is resident (no side effects).
  [[nodiscard]] bool probe(std::uint64_t addr) const;

  /// Number of valid lines currently resident.
  [[nodiscard]] std::int64_t residentLines() const;

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  void resetStats() { stats_ = CacheStats{}; }

  [[nodiscard]] const CacheConfig& config() const { return config_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lastUse = 0;  // global stamp for LRU
    bool valid = false;
    bool dirty = false;
  };

  CacheConfig config_;
  std::vector<Way> ways_;  // numSets * assoc, set-major
  CacheStats stats_;
  std::uint64_t useClock_ = 0;
};

}  // namespace laps

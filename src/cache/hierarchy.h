#pragma once
/// \file hierarchy.h
/// \brief The composable memory hierarchy: private split L1s over an
/// optional shared banked L2 and an optional contended off-chip bus.
///
/// Table 2 of the paper: 8 KB 2-way data and instruction caches per
/// processor, 2-cycle cache access, 75-cycle off-chip access — private
/// L1s straight over off-chip memory. That flat model is the default.
/// The platform-realism extension (docs/ARCHITECTURE.md §7) composes
/// two optional levels under the L1s:
///
///   MemorySystem (per core: split L1 I/D)
///     └─ MemoryHierarchy (shared by all cores)
///          ├─ SharedL2        (banked, inclusive; optional)
///          ├─ MemoryBus       (bounded outstanding transactions) — or —
///          ├─ NocFabric       (mesh/crossbar, per-link calendars)
///          ├─ SharerDirectory (targeted back-invalidation; optional)
///          └─ fixed memLatencyCycles on the flat interconnect
///
/// The shared-level shape is described by a PlatformConfig
/// (cache/platform.h): interconnect {Flat, Bus, Mesh, Xbar} ×
/// coherence {Broadcast, Directory} × optional shared L2. With
/// everything disabled the miss path is the paper's constant off-chip
/// latency, bit-identical to the pre-hierarchy simulator (the
/// differential suite and the committed bench baselines enforce this).
/// With contended levels enabled, a miss's latency depends on the
/// absolute cycle it issues and on the other cores' traffic: bank
/// conflicts, bus queueing and NoC link congestion are how co-scheduled
/// processes now interfere — and on a NoC, on *which tile* the
/// requester sits (distance to the bank's home tile and the memory
/// controller at node 0).

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cache/bus.h"
#include "cache/cache.h"
#include "cache/directory.h"
#include "cache/miss_class.h"
#include "cache/noc.h"
#include "cache/platform.h"
#include "cache/shared_l2.h"

namespace laps {

/// Configuration of one core's memory system.
struct MemoryConfig {
  CacheConfig l1d{};                  ///< data cache (Table 2 defaults)
  CacheConfig l1i{};                  ///< instruction cache
  std::int64_t memLatencyCycles = 75; ///< off-chip access (Table 2)
  bool modelICache = true;            ///< simulate instruction fetches
  bool classifyMisses = false;        ///< enable 3C classification (slower)
};

/// The levels below the private L1s, shared by every core. Composes an
/// optional SharedL2 and an optional MemoryBus; with neither, a miss
/// costs the fixed memLatencyCycles (the paper's platform, exactly).
class MemoryHierarchy {
 public:
  /// Flat off-chip memory with a fixed latency (paper default).
  explicit MemoryHierarchy(std::int64_t memLatencyCycles = 75);

  /// Legacy composition shim: optional shared L2 and optional bus.
  /// \p memLatencyCycles is the off-chip latency used when \p bus is
  /// absent. Equivalent to the PlatformConfig constructor with the
  /// descriptor MpsocConfig::resolvedPlatform() would derive.
  MemoryHierarchy(std::int64_t memLatencyCycles,
                  const std::optional<SharedL2Config>& l2,
                  const std::optional<BusConfig>& bus,
                  std::int64_t lineBytes);

  /// Full composition from a platform descriptor (cache/platform.h):
  /// interconnect {Flat, Bus, Mesh, Xbar} × coherence {Broadcast,
  /// Directory} × optional shared L2. \p coreCount sizes the NoC (one
  /// node per core; the memory controller sits at node 0 and L2 bank b
  /// is homed at node b % coreCount) and the directory's sharer mask.
  MemoryHierarchy(std::int64_t memLatencyCycles,
                  const PlatformConfig& platform, std::size_t coreCount,
                  std::int64_t lineBytes);

  /// Latency beyond the L1 of a miss on \p addr issued at absolute cycle
  /// \p now. May back-invalidate registered L1 data caches (inclusion)
  /// and post write-back bus/NoC traffic. \p core is the requesting
  /// core's index (its NoC node and directory bit); \p dataFill marks
  /// fills that install the line in the requester's L1 *data* cache, so
  /// the directory can record the sharer — instruction fetches leave it
  /// false (icaches are inclusion-exempt and never probed). Both extra
  /// arguments are ignored by the flat/bus/broadcast paths, keeping
  /// every legacy two-argument call site exact.
  std::int64_t missLatency(std::uint64_t addr, std::int64_t now,
                           std::size_t core = 0, bool dataFill = false);

  /// \name Dirty L1 victim write-backs (two phases)
  /// Phase 1, *before* the miss's own fill: try to absorb the
  /// write-back on chip by dirty-marking the victim's L2 copy — doing
  /// this first closes the window in which the same miss's L2 fill
  /// could evict that (still clean) copy and silently drop the dirty
  /// data. Returns true when absorbed. Phase 2, *after* the fill
  /// resolved: an unabsorbed write-back leaves the chip as posted
  /// traffic — it occupies the bus, delaying later demand, but never
  /// stalls its own requester.
  /// @{
  bool absorbL1Writeback(std::uint64_t lineAddr);
  void postL1Writeback(std::int64_t now);
  /// @}

  /// \name L1 registration (inclusion back-invalidation targets)
  /// MemorySystem registers its data cache on construction. Instruction
  /// caches are exempt: code lines are read-only, so an inclusion
  /// violation on code has no observable effect — and exempting them
  /// keeps the run-length replayer's warm-body fetch claim intact.
  /// @{
  void registerDataCache(SetAssocCache* l1d);
  void unregisterDataCache(SetAssocCache* l1d);
  /// @}

  /// True when at least one contended level (L2, bus, or a NoC with
  /// non-zero timing) is enabled — i.e. when a miss's latency depends
  /// on \p now. A zero-cost NoC never adds latency, so it deliberately
  /// does not count: the flat fast paths stay bit-identical.
  [[nodiscard]] bool contended() const {
    return l2_.has_value() || bus_.has_value() || (noc_ && noc_->timed());
  }

  [[nodiscard]] const SharedL2* l2() const {
    return l2_ ? &*l2_ : nullptr;
  }
  [[nodiscard]] const MemoryBus* bus() const {
    return bus_ ? &*bus_ : nullptr;
  }
  [[nodiscard]] const NocFabric* noc() const {
    return noc_ ? &*noc_ : nullptr;
  }
  [[nodiscard]] const SharerDirectory* directory() const {
    return directory_ ? &*directory_ : nullptr;
  }

  /// Off-chip write-backs of dirty L1 data that no L2 statistic sees:
  /// copies flushed by inclusion back-invalidation past a clean L2
  /// entry, and victims whose L2 line was already gone when the L1
  /// evicted them (energy accounting).
  [[nodiscard]] std::uint64_t inclusionWritebacks() const {
    return inclusionWritebacks_;
  }

  void resetStats();

  /// Prunes the L2 bank and bus calendars; call once no future request
  /// can be issued before \p cycle (the engine does, at segment starts).
  /// Under LAPSCHED_AUDIT also runs the full inclusion audit — segment
  /// starts are the natural cadence for the O(resident L1 lines) scan.
  void retireBefore(std::int64_t cycle);

  /// Audit checker (docs/ARCHITECTURE.md §11): inclusion — every line
  /// resident in a registered L1 data cache must also be L2-resident
  /// (instruction caches are exempt by design, see the registration
  /// notes above). A violation means a back-invalidation was missed and
  /// the L1s are serving hits on data the shared level no longer
  /// tracks. No-op without an L2. Throws laps::AuditError on violation.
  /// Tests inject violations by registering an L1 that holds lines the
  /// L2 never saw.
  void auditInclusion() const;

 private:
  /// Audit checker: after back-invalidating \p lineAddr, no registered
  /// L1 data cache may still hold it (the cheap per-miss slice of
  /// auditInclusion).
  void auditLineAbsent(std::uint64_t lineAddr) const;

  /// NoC node of L2 bank \p bank (its home tile).
  [[nodiscard]] std::int64_t bankHomeNode(std::int64_t bank) const;

  std::int64_t memLatencyCycles_;
  std::optional<SharedL2> l2_;
  std::optional<MemoryBus> bus_;
  std::optional<NocFabric> noc_;
  std::optional<SharerDirectory> directory_;
  std::vector<SetAssocCache*> l1DataCaches_;
  std::uint64_t inclusionWritebacks_ = 0;
};

/// One core's private split L1s, delegating misses to a MemoryHierarchy
/// (its own flat one by default, or a hierarchy shared with the other
/// cores). Returns the latency of each access in cycles; keeps hit/miss
/// statistics. \p nowCycles parameters are the absolute cycle an access
/// issues at — ignored (and defaultable) on the flat hierarchy, where
/// latencies are time-independent.
class MemorySystem {
 public:
  /// \p shared is the hierarchy below the L1s; when null, a private
  /// flat hierarchy with config.memLatencyCycles is created (the paper
  /// platform). \p coreIndex identifies this core to the shared levels
  /// (its NoC node and directory sharer bit); irrelevant — and safely
  /// defaultable — on flat/bus/broadcast platforms. Directory-coherent
  /// platforms require distinct, in-range indices.
  explicit MemorySystem(const MemoryConfig& config,
                        std::shared_ptr<MemoryHierarchy> shared = nullptr,
                        std::size_t coreIndex = 0);
  ~MemorySystem();
  MemorySystem(const MemorySystem&) = delete;
  MemorySystem& operator=(const MemorySystem&) = delete;

  /// One data reference at absolute cycle \p nowCycles; returns its
  /// latency in cycles.
  std::int64_t dataAccess(std::uint64_t addr, bool isWrite,
                          std::int64_t nowCycles = 0);

  /// \p count data references of the strided stream addr,
  /// addr + strideBytes, ...; returns their summed latency. On the flat
  /// hierarchy this is exactly equivalent to \p count dataAccess calls
  /// (cache state, statistics and miss classification included) but
  /// resolves each cache line's group of consecutive accesses with one
  /// lookup, and feeds the classifier once per line instead of once per
  /// element — the skipped accesses re-touch the shadow cache's
  /// most-recently-used line, which is a no-op for the 3C state and
  /// counters. On a contended hierarchy each miss issues at \p nowCycles
  /// advanced by the latency accumulated so far (the run is assumed
  /// back-to-back, with no interleaved compute).
  std::int64_t accessRun(std::uint64_t addr, std::int64_t strideBytes,
                         std::int64_t count, bool isWrite,
                         std::int64_t nowCycles = 0);

  /// One instruction fetch at absolute cycle \p nowCycles; returns its
  /// latency in cycles (0 when instruction modeling is disabled).
  std::int64_t instrFetch(std::uint64_t addr, std::int64_t nowCycles = 0);

  /// \name Bulk-replay primitives
  /// The run-length replay path (sim/replay.cpp) accounts the guaranteed
  /// hits it skips directly on the caches: bulkHits for the counters and
  /// LRU clock, touch for the exact final stamps of the lines involved.
  /// Bypassing the miss classifier here is exact — every skipped access
  /// re-touches shadow-cache lines that are already the most recently
  /// used, in an order that provably leaves the shadow state unchanged —
  /// see docs/ARCHITECTURE.md §6. Guaranteed hits never leave the L1,
  /// so none of these touch the shared levels.
  /// @{
  [[nodiscard]] std::uint64_t dataClock() const { return dcache_.clock(); }
  void dataBulkHits(std::int64_t count) { dcache_.bulkHits(count); }
  void dataTouch(std::uint64_t addr, bool isWrite, std::uint64_t stamp) {
    dcache_.touch(addr, isWrite, stamp);
  }
  /// Replays one skipped (guaranteed-hit) access into the miss
  /// classifier's shadow LRU only. Needed when a bulk commit ends
  /// mid-iteration: the partial iteration's accesses rotate the shadow's
  /// most-recently-used block, which complete cycles do not.
  void dataShadowTouch(std::uint64_t addr) {
    if (classifier_) classifier_->record(addr, /*realMiss=*/false);
  }
  [[nodiscard]] std::uint64_t instrClock() const { return icache_.clock(); }
  void instrBulkHits(std::int64_t count) { icache_.bulkHits(count); }
  void instrTouch(std::uint64_t addr, std::uint64_t stamp) {
    icache_.touch(addr, /*isWrite=*/false, stamp);
  }
  /// @}

  /// Invalidates both caches (used by the flush-on-switch ablation).
  /// Dirty lines count as write-backs in the L1 statistics; their L2
  /// copies are not dirty-marked (documented approximation, §7).
  void flushAll();

  /// True when the hierarchy below the L1s is contended (shared L2 or
  /// bus enabled) — i.e. when access latencies depend on nowCycles.
  [[nodiscard]] bool contended() const { return hierarchy_->contended(); }

  [[nodiscard]] const SetAssocCache& dcache() const { return dcache_; }
  [[nodiscard]] const SetAssocCache& icache() const { return icache_; }
  [[nodiscard]] const MemoryConfig& config() const { return config_; }
  [[nodiscard]] const MemoryHierarchy& hierarchy() const {
    return *hierarchy_;
  }

  /// Data-miss classification; zeros unless classifyMisses was set.
  [[nodiscard]] MissBreakdown dataMissBreakdown() const;

  void resetStats();

 private:
  /// Latency beyond the L1 of a data miss on \p addr issuing at
  /// \p issueCycle, with \p evicted the L1 line the fill displaced.
  /// The one definition of the dirty-victim ordering invariant: absorb
  /// into the L2 copy *before* the fill (which could evict that copy),
  /// post an unabsorbed write-back at the miss's completion (so the
  /// requester never stalls on its own write-back).
  std::int64_t missBeyondL1(std::uint64_t addr, const EvictionInfo& evicted,
                            std::int64_t issueCycle);

  MemoryConfig config_;
  std::shared_ptr<MemoryHierarchy> hierarchy_;
  std::size_t coreIndex_;
  SetAssocCache dcache_;
  SetAssocCache icache_;
  std::optional<MissClassifier> classifier_;
};

}  // namespace laps

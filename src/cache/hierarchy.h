#pragma once
/// \file hierarchy.h
/// \brief Per-core memory system: split L1 I/D caches over off-chip memory.
///
/// Table 2 of the paper: 8 KB 2-way data and instruction caches per
/// processor, 2-cycle cache access, 75-cycle off-chip access. Each core
/// of the MPSoC owns one MemorySystem; there is no shared L2 (the paper
/// models none).

#include <cstdint>
#include <memory>
#include <optional>

#include "cache/cache.h"
#include "cache/miss_class.h"

namespace laps {

/// Configuration of one core's memory system.
struct MemoryConfig {
  CacheConfig l1d{};                  ///< data cache (Table 2 defaults)
  CacheConfig l1i{};                  ///< instruction cache
  std::int64_t memLatencyCycles = 75; ///< off-chip access (Table 2)
  bool modelICache = true;            ///< simulate instruction fetches
  bool classifyMisses = false;        ///< enable 3C classification (slower)
};

/// One core's private L1s plus the off-chip latency model. Returns the
/// latency of each access in cycles; keeps hit/miss statistics.
class MemorySystem {
 public:
  explicit MemorySystem(const MemoryConfig& config);

  /// One data reference; returns its latency in cycles.
  std::int64_t dataAccess(std::uint64_t addr, bool isWrite);

  /// One instruction fetch; returns its latency in cycles
  /// (0 when instruction modeling is disabled).
  std::int64_t instrFetch(std::uint64_t addr);

  /// Invalidates both caches (used by the flush-on-switch ablation).
  void flushAll();

  [[nodiscard]] const SetAssocCache& dcache() const { return dcache_; }
  [[nodiscard]] const SetAssocCache& icache() const { return icache_; }
  [[nodiscard]] const MemoryConfig& config() const { return config_; }

  /// Data-miss classification; zeros unless classifyMisses was set.
  [[nodiscard]] MissBreakdown dataMissBreakdown() const;

  void resetStats();

 private:
  MemoryConfig config_;
  SetAssocCache dcache_;
  SetAssocCache icache_;
  std::optional<MissClassifier> classifier_;
};

}  // namespace laps
